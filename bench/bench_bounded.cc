// E16: result-bounded sources — paging loops, refinement, and completeness.
//
// The same car mediator is run with the source's ResultBound contract swept
// across the regimes of the bounded-interface model:
//
//   unbounded     — the reference. Every other configuration is judged
//                   against its row counts.
//   paged-*       — bound 2000 with paging at page sizes 100 / 500 / 2000:
//                   the paging loop must recover the EXACT reference answer,
//                   paying one access per page (cost = k1·pages + k2·rows).
//   paged-faulty  — paging with scripted mid-loop transients: the per-page
//                   retry discipline resumes at the faulted offset, so the
//                   answer stays exact and only the retry counters move.
//   hard-2000     — bound 2000 WITHOUT paging: broad sub-queries are
//                   provably partial; every shortfall must carry a
//                   completeness marker naming the source (the acceptance
//                   bar: zero silently-truncated answers).
//   capped-4      — paging with an access limit of 4 calls per sub-query:
//                   the loop stops at the cap and marks the truncation.
//
// Four workloads ride each configuration: a selective conjunction (fits
// under the bound — all regimes identical), the paper's motivating example
// query, one broad single-make query (over the bound), and a disjunctive
// style query the planner splits into a union of two over-bound form
// queries.
//
// Results print as a table and are emitted as BENCH_bounded.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/fault_policy.h"
#include "expr/condition_parser.h"
#include "mediator/mediator.h"
#include "workload/datasets.h"

namespace gencompact::bench {
namespace {

constexpr size_t kNumCars = 20000;
constexpr uint64_t kSeed = 7;
constexpr int kRepetitions = 3;

struct BoundConfig {
  std::string name;
  ResultBound bound;
  bool page_faults = false;  ///< script transients at page offsets
  bool expect_exact = true;  ///< must match the unbounded row counts
};

struct QuerySpec {
  std::string name;
  ConditionPtr cond;
  std::vector<std::string> attrs;
};

struct Cell {
  std::string config;
  std::string workload;
  double ms = 0;  // best-of-kRepetitions end-to-end query time
  size_t rows = 0;
  bool complete = true;
  size_t markers = 0;        // truncation markers on the answer
  uint64_t pages = 0;        // bounded pages fetched (last repetition)
  uint64_t splits = 0;       // plan-time refinement splits (last repetition)
  uint64_t retries = 0;      // source retries (last repetition)
  std::string reason;        // first marker's reason, "" when complete
  bool parity = true;        // rows match the unbounded reference
};

ConditionPtr MustParse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  if (!cond.ok()) {
    std::printf("bad condition %s: %s\n", text.c_str(),
                cond.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(cond).value();
}

std::unique_ptr<Mediator> MakeMediator(const ResultBound& bound) {
  Dataset dataset = MakeCarSource(kNumCars, kSeed);
  dataset.description.set_result_bound(bound);
  Mediator::Options options;
  options.partial_results = true;  // marked-partial answers, not failures
  options.retry.max_attempts = 4;
  options.retry.backoff.base = std::chrono::microseconds(1);
  options.retry.backoff.cap = std::chrono::microseconds(10);
  auto mediator = std::make_unique<Mediator>(options);
  const Status registered = mediator->RegisterSource(
      std::move(dataset.description), std::move(dataset.table));
  if (!registered.ok()) {
    std::printf("RegisterSource: %s\n", registered.ToString().c_str());
    std::exit(1);
  }
  return mediator;
}

/// Transient faults keyed on page-start offsets: each listed page fails
/// once, then succeeds on the retry — recoverable inside max_attempts = 4.
void ScriptPageFaults(Mediator* mediator, const ResultBound& bound) {
  Result<CatalogEntry*> entry = mediator->catalog()->Find("cars");
  if (!entry.ok()) return;
  const uint64_t page = bound.EffectivePageSize();
  FaultPolicy policy;
  for (uint64_t offset = 0; offset < 4 * page; offset += page) {
    policy.page_faults.push_back({offset, /*fail_count=*/1});
  }
  (*entry)->source()->set_fault_policy(policy);
}

Cell RunCell(Mediator* mediator, const BoundConfig& config,
             const QuerySpec& query) {
  Cell cell;
  cell.config = config.name;
  cell.workload = query.name;
  double best_ms = 0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    if (config.page_faults) {
      // Re-arm the schedule each repetition: fail counts are consumed.
      ScriptPageFaults(mediator, config.bound);
    }
    const Mediator::Stats before = mediator->StatsSnapshot();
    const auto start = std::chrono::steady_clock::now();
    const Result<Mediator::QueryResult> result = mediator->QueryCondition(
        "cars", query.cond, query.attrs, Strategy::kGenCompact);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (!result.ok()) {
      std::printf("ERROR %s/%s: %s\n", config.name.c_str(),
                  query.name.c_str(), result.status().ToString().c_str());
      cell.parity = false;
      return cell;
    }
    const Mediator::Stats after = mediator->StatsSnapshot();
    cell.rows = result->rows.size();
    cell.complete = result->completeness.complete;
    cell.markers = result->completeness.truncated_sources.size();
    cell.reason = cell.markers > 0
                      ? result->completeness.truncated_sources[0].reason
                      : "";
    cell.pages = after.bounded.pages_fetched - before.bounded.pages_fetched;
    cell.splits =
        after.bounded.refinement_splits - before.bounded.refinement_splits;
    cell.retries =
        after.fault_tolerance.retries - before.fault_tolerance.retries;
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  cell.ms = best_ms;
  return cell;
}

void WriteJson(const std::vector<Cell>& cells, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bounded\",\n");
  std::fprintf(f, "  \"table_rows\": %zu,\n", kNumCars);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"repetitions\": %d,\n", kRepetitions);
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(
        f,
        "    {\"config\": \"%s\", \"workload\": \"%s\", \"ms\": %.3f, "
        "\"rows\": %zu, \"complete\": %s, \"markers\": %zu, "
        "\"pages\": %llu, \"splits\": %llu, \"retries\": %llu, "
        "\"parity\": %s}%s\n",
        c.config.c_str(), c.workload.c_str(), c.ms, c.rows,
        c.complete ? "true" : "false", c.markers,
        static_cast<unsigned long long>(c.pages),
        static_cast<unsigned long long>(c.splits),
        static_cast<unsigned long long>(c.retries),
        c.parity ? "true" : "false", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

int Run() {
  std::printf("cars table: %zu rows, bound sweep over the paging regimes\n\n",
              kNumCars);

  // The workloads (attrs chosen so duplicate elimination doesn't mask row
  // counts: model is near-unique).
  Dataset reference_dataset = MakeCarSource(kNumCars, kSeed);
  std::vector<QuerySpec> queries;
  queries.push_back(
      {"selective",
       MustParse("make = \"BMW\" and style = \"sedan\" and price <= 32000"),
       {"make", "model", "price"}});
  queries.push_back({"example", reference_dataset.example_condition,
                     reference_dataset.example_attrs});
  queries.push_back(
      {"broad", MustParse("make = \"Toyota\""), {"make", "model", "price"}});
  queries.push_back({"union",
                     MustParse("style = \"suv\" or style = \"wagon\""),
                     {"make", "model", "style"}});

  const auto paged = [](uint64_t bound, uint64_t page,
                        uint64_t accesses = 0) {
    ResultBound b;
    b.result_bound = bound;
    b.supports_paging = true;
    b.page_size = page;
    b.max_accesses = accesses;
    return b;
  };
  std::vector<BoundConfig> configs;
  configs.push_back({"unbounded", ResultBound{}});
  configs.push_back({"paged-100", paged(2000, 100)});
  configs.push_back({"paged-500", paged(2000, 500)});
  configs.push_back({"paged-2000", paged(2000, 0)});
  {
    BoundConfig faulty{"paged-faulty", paged(2000, 500)};
    faulty.page_faults = true;
    configs.push_back(faulty);
  }
  {
    ResultBound hard;
    hard.result_bound = 2000;
    BoundConfig config{"hard-2000", hard};
    config.expect_exact = false;  // broad queries are provably partial
    configs.push_back(config);
  }
  {
    BoundConfig config{"capped-4", paged(2000, 500, /*accesses=*/4)};
    config.expect_exact = false;  // the cap stops the loop at 2000 rows
    configs.push_back(config);
  }

  const std::vector<int> widths = {12, 9, 8, 6, 8, 6, 6, 7, 26};
  PrintRow({"config", "workload", "ms", "rows", "complete", "pages",
            "splits", "retries", "marker"},
           widths);
  PrintRule(widths);

  std::vector<Cell> cells;
  std::vector<size_t> reference_rows;
  bool exact_ok = true;
  bool no_silent_truncation = true;
  bool faults_absorbed = true;
  for (const BoundConfig& config : configs) {
    std::unique_ptr<Mediator> mediator = MakeMediator(config.bound);
    for (size_t q = 0; q < queries.size(); ++q) {
      Cell cell = RunCell(mediator.get(), config, queries[q]);
      if (config.name == "unbounded") {
        reference_rows.push_back(cell.rows);
      } else {
        cell.parity = cell.rows == reference_rows[q];
        if (config.expect_exact &&
            (!cell.parity || !cell.complete || cell.markers > 0)) {
          exact_ok = false;
        }
        // The tentpole's acceptance bar: an answer short of the reference
        // is NEVER silent — it is marked incomplete with a named source.
        if (cell.rows < reference_rows[q] &&
            (cell.complete || cell.markers == 0)) {
          no_silent_truncation = false;
        }
        if (config.page_faults && cell.retries == 0) {
          faults_absorbed = false;  // the schedule never fired
        }
      }
      PrintRow({cell.config, cell.workload, FormatDouble(cell.ms, 2),
                std::to_string(cell.rows), cell.complete ? "yes" : "NO",
                std::to_string(cell.pages), std::to_string(cell.splits),
                std::to_string(cell.retries),
                cell.reason.substr(0, 26)},
               widths);
      cells.push_back(std::move(cell));
    }
    PrintRule(widths);
  }

  std::printf(
      "\nACCEPTANCE paged/faulty configurations recover the exact answer: "
      "%s\n",
      exact_ok ? "PASS" : "FAIL");
  std::printf("ACCEPTANCE zero silently-truncated answers: %s\n",
              no_silent_truncation ? "PASS" : "FAIL");
  std::printf("ACCEPTANCE scripted page faults fired and were retried: %s\n",
              faults_absorbed ? "PASS" : "FAIL");

  WriteJson(cells, "BENCH_bounded.json");
  return exact_ok && no_silent_truncation && faults_absorbed ? 0 : 1;
}

}  // namespace
}  // namespace gencompact::bench

int main() { return gencompact::bench::Run(); }
