// E7 ("Table 3"): cost-model validation.
//
// Section 6.2 argues the linear model k1 + k2·|result| approximates the
// real communication + processing cost "to a first degree". We compare the
// planner's estimated plan cost against the true Equation-1 cost computed
// with the actual row counts after execution, over random queries on the
// two motivating datasets, and report correlation and error statistics.

#include <cmath>

#include "bench/bench_util.h"
#include "workload/datasets.h"
#include "workload/random_condition.h"

namespace gencompact::bench {
namespace {

struct Stats {
  size_t n = 0;
  double sum_est = 0;
  double sum_true = 0;
  double sum_est2 = 0;
  double sum_true2 = 0;
  double sum_cross = 0;
  double sum_rel_err = 0;

  void Add(double est, double truth) {
    ++n;
    sum_est += est;
    sum_true += truth;
    sum_est2 += est * est;
    sum_true2 += truth * truth;
    sum_cross += est * truth;
    if (truth > 0) sum_rel_err += std::fabs(est - truth) / truth;
  }

  double Pearson() const {
    const double num = static_cast<double>(n) * sum_cross - sum_est * sum_true;
    const double den =
        std::sqrt(static_cast<double>(n) * sum_est2 - sum_est * sum_est) *
        std::sqrt(static_cast<double>(n) * sum_true2 - sum_true * sum_true);
    return den > 0 ? num / den : 0;
  }
};

void Run(const char* title, Dataset dataset, uint64_t seed) {
  SourceHandle handle(dataset.description, dataset.table.get());
  Source source(dataset.table.get(), &handle.description());
  Rng rng(seed);
  const std::vector<AttributeDomain> domains =
      ExtractDomains(*dataset.table, 8, &rng);

  Stats stats;
  size_t feasible = 0;
  size_t attempted = 0;
  for (int trial = 0; trial < 120; ++trial) {
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 1 + rng.NextIndex(5);
    const ConditionPtr cond = RandomCondition(domains, cond_options, &rng);
    AttributeSet attrs;
    attrs.Add(static_cast<int>(rng.NextIndex(handle.schema().num_attributes())));
    ++attempted;
    const StrategyOutcome outcome =
        RunStrategy(Strategy::kGenCompact, &handle, &source, cond, attrs);
    if (!outcome.feasible) continue;
    ++feasible;
    stats.Add(outcome.estimated_cost, outcome.true_cost);
  }

  std::printf("\n## %s\n", title);
  std::printf("queries: %zu attempted, %zu feasible\n", attempted, feasible);
  std::printf("Pearson r (estimated vs true cost): %.3f\n", stats.Pearson());
  std::printf("mean estimated cost: %.1f   mean true cost: %.1f\n",
              stats.n ? stats.sum_est / static_cast<double>(stats.n) : 0,
              stats.n ? stats.sum_true / static_cast<double>(stats.n) : 0);
  std::printf("mean relative error: %.2f\n",
              stats.n ? stats.sum_rel_err / static_cast<double>(stats.n) : 0);
}

}  // namespace
}  // namespace gencompact::bench

int main() {
  std::printf("# E7: cost-model validation (estimate vs Equation-1 true cost)\n");
  gencompact::bench::Run("Bookstore dataset",
                         gencompact::MakeBookstore(50000, 42), 11);
  gencompact::bench::Run("Car dataset", gencompact::MakeCarSource(40000, 7), 13);
  std::printf(
      "\nExpected shape: strong positive correlation (r well above 0.5); "
      "errors come from the independence assumption and default "
      "`contains` selectivities.\n");
  return 0;
}
