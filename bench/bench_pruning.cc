// E4 ("Fig 3"): pruning-rule effectiveness.
//
// Section 6.3's claim: PR1-PR3 "yield rich dividends" — they keep the
// number of sub-plans Q handed to the MCSC solver very small without ever
// changing the optimum. This binary ablates each rule and reports planning
// time, sub-plans materialized, max Q, and the best cost (which must be
// identical across rows for each query size).

#include <chrono>

#include "bench/bench_util.h"
#include "planner/gen_compact.h"
#include "workload/datasets.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact::bench {
namespace {

struct AblationRow {
  const char* label;
  bool pr1;
  bool pr2;
  bool pr3;
};

void Run() {
  constexpr AblationRow kRows[] = {
      {"all pruning on", true, true, true},
      {"PR1 off", false, true, true},
      {"PR2 off", true, false, true},
      {"PR3 off", true, true, false},
      {"all pruning off", false, false, false},
  };

  for (size_t atoms : {4, 6, 8}) {
    Rng rng(7700 + atoms);
    const Schema schema({{"s1", ValueType::kString},
                         {"s2", ValueType::kString},
                         {"n1", ValueType::kInt},
                         {"n2", ValueType::kInt}});
    const std::unique_ptr<Table> table =
        MakeRandomTable("src", schema, 1000, 12, 60, &rng);
    RandomCapabilityOptions cap_options;
    cap_options.download_probability = 1.0;
    const SourceDescription description =
        RandomCapability("src", schema, cap_options, &rng);
    SourceHandle handle(description, table.get());
    const std::vector<AttributeDomain> domains = ExtractDomains(*table, 6, &rng);

    std::vector<ConditionPtr> conditions;
    for (int i = 0; i < 20; ++i) {
      RandomConditionOptions cond_options;
      cond_options.num_atoms = atoms;
      conditions.push_back(RandomCondition(domains, cond_options, &rng));
    }
    AttributeSet attrs;
    attrs.Add(0);
    attrs.Add(2);

    std::printf("\n## %zu-atom queries (20 queries, totals)\n\n", atoms);
    const std::vector<int> widths = {18, 12, 13, 9, 14};
    PrintRow({"configuration", "time (ms)", "sub-plans", "max Q", "cost sum"},
             widths);
    PrintRule(widths);

    for (const AblationRow& row : kRows) {
      GenCompactOptions options;
      options.ipg.pr1 = row.pr1;
      options.ipg.pr2 = row.pr2;
      options.ipg.pr3 = row.pr3;

      double cost_sum = 0;
      size_t subplans = 0;
      size_t max_q = 0;
      const auto start = std::chrono::steady_clock::now();
      for (const ConditionPtr& cond : conditions) {
        GenCompactPlanner planner(&handle, options);
        const Result<PlanPtr> plan = planner.Plan(cond, attrs);
        if (plan.ok()) cost_sum += handle.cost_model().PlanCost(**plan);
        subplans += planner.stats().ipg.total_subplans;
        max_q = std::max(max_q, planner.stats().ipg.max_subplans);
      }
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      PrintRow({row.label, FormatDouble(ms, 2), std::to_string(subplans),
                std::to_string(max_q), FormatDouble(cost_sum, 1)},
               widths);
    }
  }
}

}  // namespace
}  // namespace gencompact::bench

int main() {
  std::printf("# E4: pruning-rule ablation (PR1/PR2/PR3, Section 6.3)\n");
  gencompact::bench::Run();
  std::printf(
      "\nExpected shape: 'cost sum' identical in every row (pruning never "
      "loses the optimum), and 'max Q' — the sub-plan count handed to the "
      "MCSC combination step — collapses by orders of magnitude with the "
      "rules on. The paper solves MCSC by enumerating all 2^Q sub-plan "
      "subsets, so Q ~ 10 (pruned) is practical while Q in the thousands "
      "(unpruned) is impossible; our subset-DP solver (see bench_mcsc) is "
      "immune to Q, which is why wall-clock times here stay flat.\n");
  return 0;
}
