// E1 ("Table 1"): the paper's two motivating examples, quantified.
//
// Reproduces Section 1's claims:
//  * Bookstore (Ex. 1.1): GenCompact's two-query plan extracts fewer than 20
//    entries; the Garlic/CNF plan extracts over 2,000; DISCO has no feasible
//    plan; conventional (naive) optimizers ship an unsupported query.
//  * Cars (Ex. 1.2): GenCompact uses 2 source queries; DNF uses 4 (same rows
//    transferred); CNF transfers many more entries than necessary.

#include "bench/bench_util.h"
#include "common/strings.h"
#include "workload/datasets.h"

namespace gencompact::bench {
namespace {

void RunDataset(const char* title, Dataset dataset) {
  SourceHandle handle(dataset.description, dataset.table.get());
  Source source(dataset.table.get(), &handle.description());

  std::printf("\n## %s (%zu rows)\n", title, dataset.table->num_rows());
  std::printf("Target query: SP(%s, %s)\n\n",
              dataset.example_condition->ToString().c_str(),
              ("{" + Join(dataset.example_attrs, ", ") + "}").c_str());

  const std::vector<int> widths = {24, 9, 9, 12, 11, 11, 11};
  PrintRow({"strategy", "feasible", "queries", "rows moved", "result", "true cost",
            "est cost"},
           widths);
  PrintRule(widths);

  const Result<AttributeSet> attrs =
      handle.schema().MakeSet(dataset.example_attrs);
  for (Strategy strategy :
       {Strategy::kGenCompact, Strategy::kGenModular, Strategy::kCnf,
        Strategy::kDnf, Strategy::kDisco, Strategy::kNaive}) {
    const StrategyOutcome outcome = RunStrategy(
        strategy, &handle, &source, dataset.example_condition, *attrs);
    std::string feasible = outcome.feasible ? "yes" : "no";
    if (outcome.rejected_at_source) feasible = "REJECTED";
    PrintRow({StrategyName(strategy), feasible,
              outcome.feasible ? std::to_string(outcome.source_queries) : "-",
              outcome.feasible ? std::to_string(outcome.rows_transferred) : "-",
              outcome.feasible ? std::to_string(outcome.result_rows) : "-",
              outcome.feasible ? FormatDouble(outcome.true_cost) : "-",
              outcome.feasible ? FormatDouble(outcome.estimated_cost) : "-"},
             widths);
  }
}

}  // namespace
}  // namespace gencompact::bench

int main() {
  std::printf("# E1: motivating examples (paper Section 1)\n");
  gencompact::bench::RunDataset(
      "Example 1.1: Internet bookstore",
      gencompact::MakeBookstore(50000, /*seed=*/42));
  gencompact::bench::RunDataset(
      "Example 1.2: car shopping guide",
      gencompact::MakeCarSource(40000, /*seed=*/7));
  std::printf(
      "\nExpected shape: GenCompact=2 queries each; bookstore rows moved "
      "<20 for GenCompact vs >2000 for CNF; DISCO infeasible; Naive "
      "rejected by the source.\n");
  return 0;
}
