// Hedged-request benchmark (E13): tail latency vs extra source load.
//
// Four client threads replay single-SP queries against one mediator whose
// source charges a 200us round trip — except for a seeded fraction of "slow"
// calls that take 10ms (stragglers: an overloaded mirror, a lossy path). Per
// slow-call rate {0%, 5%, 20%} the workload runs twice, hedging off and on
// (digest p90 hedge point, warmed before measuring), and reports client-side
// p50/p99, queries/sec, and the extra source calls hedging spent.
//
// Expected shape: at a low straggler rate the hedge point sits at the fast
// mode's latency, so every straggler is raced and p99 collapses from the
// slow-call latency to ~2x the fast round trip — for a few percent of extra
// source calls (acceptance: ≥2x p99 reduction at 5% for ≤10% extra calls).
// At 0% nothing fires (no digest excursions past p90 but scheduling noise);
// at 20% the p90 hedge point itself drifts into the slow mode and hedging
// fades out gracefully — the digest self-limits, no config knob needed.
// Results are also emitted as BENCH_hedge.json for tooling.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "expr/condition_parser.h"
#include "mediator/mediator.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact::bench {
namespace {

constexpr size_t kSourceRows = 500;
constexpr size_t kClientThreads = 4;
constexpr size_t kQueriesPerThread = 300;
constexpr size_t kWarmupQueries = 144;  // fills the digest past min_samples
constexpr std::chrono::microseconds kFastLatency{200};
// Straggler cost: 50x the fast round trip, but small enough that abandoned
// slow calls (a hedge win cannot interrupt an in-flight sleep) do not
// saturate the executor pool and turn queueing delay into false stragglers.
constexpr std::chrono::microseconds kSlowLatency{10000};
// Hedge-delay floor: keeps scheduling noise in the fast mode (client-side
// p99 ~1-2ms under 8 contending threads) from firing hedges on calls that
// were never stragglers. The digest's p90 arms the timer; the floor
// debounces it, spending the extra-call budget on true stragglers only.
constexpr std::chrono::microseconds kHedgeFloor{2000};
constexpr uint64_t kFaultSeed = 7;

constexpr const char* kSourceSsdl = R"(
  source S(k: string, v: int) {
    rule s2 -> v < $int;
    rule s3 -> v >= $int;
    export s2 : {k, v};
    export s3 : {k, v};
  })";

struct Config {
  double slow_rate = 0;
  bool hedged = false;
  size_t queries = 0;
  size_t errors = 0;
  double seconds = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  uint64_t source_calls = 0;  // measured phase only
  uint64_t hedges_launched = 0;
  uint64_t hedges_won = 0;
};

double PercentileMs(std::vector<double>* latencies_ms, double p) {
  if (latencies_ms->empty()) return 0;
  std::sort(latencies_ms->begin(), latencies_ms->end());
  const size_t index = std::min(
      latencies_ms->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies_ms->size())));
  return (*latencies_ms)[index];
}

struct Workload {
  std::vector<ConditionPtr> conditions;
};

Workload MakeWorkload() {
  Workload workload;
  for (int x = 2; x < 50; x += 2) {
    workload.conditions.push_back(
        *ParseCondition("v < " + std::to_string(x)));
    workload.conditions.push_back(
        *ParseCondition("v >= " + std::to_string(100 - x)));
  }
  return workload;
}

std::unique_ptr<Mediator> MakeMediator(bool hedged, double slow_rate) {
  Mediator::Options options;
  options.num_threads = kClientThreads;
  options.cache_shards = 16;
  options.track_latency = true;  // digest feeds the snapshot even unhedged
  options.hedge.enabled = hedged;
  options.hedge.quantile = 0.90;
  options.hedge.min_samples = 50;
  options.hedge.min_delay = kHedgeFloor;
  auto mediator = std::make_unique<Mediator>(options);

  Result<SourceDescription> description = ParseSsdl(kSourceSsdl);
  if (!description.ok()) return nullptr;
  auto table = std::make_unique<Table>("S", description->schema());
  for (size_t i = 0; i < kSourceRows; ++i) {
    if (!table
             ->AppendValues({Value::String("r" + std::to_string(i % 37)),
                             Value::Int(static_cast<int64_t>(i % 100))})
             .ok()) {
      return nullptr;
    }
  }
  if (!mediator->RegisterSource(std::move(description).value(),
                                std::move(table))
           .ok()) {
    return nullptr;
  }

  const Result<CatalogEntry*> entry = mediator->catalog()->Find("S");
  if (!entry.ok()) return nullptr;
  (*entry)->source()->set_simulated_latency(kFastLatency);
  FaultPolicy faults;
  faults.seed = kFaultSeed;
  faults.slow_call_rate = slow_rate;
  faults.slow_latency = kSlowLatency;
  (*entry)->source()->set_fault_policy(faults);
  return mediator;
}

Config RunConfig(double slow_rate, bool hedged, bool print_rates) {
  Config config;
  config.slow_rate = slow_rate;
  config.hedged = hedged;
  std::unique_ptr<Mediator> mediator = MakeMediator(hedged, slow_rate);
  const Workload workload = MakeWorkload();
  if (mediator == nullptr || workload.conditions.empty()) return config;

  // Warmup: caches every plan and feeds the latency digest past
  // hedge.min_samples, so the measured phase runs with hedging armed.
  for (size_t q = 0; q < kWarmupQueries; ++q) {
    (void)mediator->QueryCondition(
        "S", workload.conditions[q % workload.conditions.size()], {"v"},
        Strategy::kGenCompact);
  }

  const Mediator::Stats before = mediator->StatsSnapshot();
  std::vector<std::vector<double>> latencies_ms(kClientThreads);
  std::vector<size_t> errors(kClientThreads, 0);
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (size_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([t, &mediator, &workload, &latencies_ms, &errors]() {
      latencies_ms[t].reserve(kQueriesPerThread);
      for (size_t q = 0; q < kQueriesPerThread; ++q) {
        const ConditionPtr& condition =
            workload.conditions[(t * 31 + q) % workload.conditions.size()];
        const auto q_start = std::chrono::steady_clock::now();
        const Result<Mediator::QueryResult> result =
            mediator->QueryCondition("S", condition, {"v"},
                                     Strategy::kGenCompact);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - q_start)
                              .count();
        if (result.ok()) {
          latencies_ms[t].push_back(ms);
        } else {
          ++errors[t];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  config.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();

  std::vector<double> all_ms;
  for (size_t t = 0; t < kClientThreads; ++t) {
    all_ms.insert(all_ms.end(), latencies_ms[t].begin(),
                  latencies_ms[t].end());
    config.errors += errors[t];
  }
  config.queries = all_ms.size();
  config.qps = config.seconds > 0
                   ? static_cast<double>(config.queries) / config.seconds
                   : 0;
  config.p50_ms = PercentileMs(&all_ms, 0.50);
  config.p99_ms = PercentileMs(&all_ms, 0.99);

  const Mediator::Stats after = mediator->StatsSnapshot();
  if (!after.sources.empty() && !before.sources.empty()) {
    config.source_calls = after.sources[0].source.queries_received -
                          before.sources[0].source.queries_received;
  }
  config.hedges_launched = after.fault_tolerance.hedges_launched -
                           before.fault_tolerance.hedges_launched;
  config.hedges_won =
      after.fault_tolerance.hedges_won - before.fault_tolerance.hedges_won;

  if (print_rates) {
    std::printf("\n--- interval rates (%.0f%% slow, hedging %s) ---\n%s",
                slow_rate * 100, hedged ? "on" : "off",
                after.DiffSince(before).ToString().c_str());
    std::printf("--- mediator stats snapshot ---\n%s\n",
                after.ToString().c_str());
  }
  return config;
}

void WriteJson(const std::vector<Config>& configs, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"hedging\",\n");
  std::fprintf(f, "  \"fast_latency_us\": %lld,\n",
               static_cast<long long>(kFastLatency.count()));
  std::fprintf(f, "  \"slow_latency_us\": %lld,\n",
               static_cast<long long>(kSlowLatency.count()));
  std::fprintf(f, "  \"client_threads\": %zu,\n", kClientThreads);
  std::fprintf(f, "  \"hedge_quantile\": 0.90,\n");
  std::fprintf(f, "  \"configs\": [\n");
  for (size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    std::fprintf(f,
                 "    {\"slow_rate\": %.2f, \"hedged\": %s, "
                 "\"queries\": %zu, \"errors\": %zu, \"seconds\": %.4f, "
                 "\"qps\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"source_calls\": %llu, \"hedges_launched\": %llu, "
                 "\"hedges_won\": %llu}%s\n",
                 c.slow_rate, c.hedged ? "true" : "false", c.queries,
                 c.errors, c.seconds, c.qps, c.p50_ms, c.p99_ms,
                 static_cast<unsigned long long>(c.source_calls),
                 static_cast<unsigned long long>(c.hedges_launched),
                 static_cast<unsigned long long>(c.hedges_won),
                 i + 1 < configs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

// A p99 over ~1200 samples is one scheduler hiccup away from a spike, so
// each configuration runs three times and the trial with the median p99 is
// reported — standard practice for tail-latency benches on shared machines.
Config RunConfigMedian(double slow_rate, bool hedged, bool print_rates) {
  std::vector<Config> trials;
  for (int t = 0; t < 3; ++t) {
    trials.push_back(RunConfig(slow_rate, hedged, print_rates && t == 0));
  }
  std::sort(trials.begin(), trials.end(),
            [](const Config& a, const Config& b) { return a.p99_ms < b.p99_ms; });
  return trials[1];
}

void Run() {
  std::printf(
      "# Hedged requests: tail latency vs extra source load "
      "(%lldus fast / %lldus straggler round trips)\n\n",
      static_cast<long long>(kFastLatency.count()),
      static_cast<long long>(kSlowLatency.count()));
  const std::vector<double> slow_rates = {0.0, 0.05, 0.20};
  std::vector<Config> configs;
  for (const double rate : slow_rates) {
    configs.push_back(
        RunConfigMedian(rate, /*hedged=*/false, /*print_rates=*/false));
    configs.push_back(RunConfigMedian(rate, /*hedged=*/true,
                                      /*print_rates=*/rate == 0.05));
  }

  const std::vector<int> widths = {9, 7, 8, 9, 9, 9, 11, 9, 7};
  PrintRow({"slow rate", "hedge", "queries", "qps", "p50 ms", "p99 ms",
            "src calls", "launched", "won"},
           widths);
  PrintRule(widths);
  for (const Config& c : configs) {
    PrintRow({FormatDouble(c.slow_rate, 2), c.hedged ? "on" : "off",
              std::to_string(c.queries), FormatDouble(c.qps, 1),
              FormatDouble(c.p50_ms, 2), FormatDouble(c.p99_ms, 2),
              std::to_string(c.source_calls),
              std::to_string(c.hedges_launched),
              std::to_string(c.hedges_won)},
             widths);
  }

  // Acceptance verdict at the 5% straggler rate: p99 at least halved for at
  // most 10% extra source calls.
  const Config* off = nullptr;
  const Config* on = nullptr;
  for (const Config& c : configs) {
    if (c.slow_rate == 0.05) (c.hedged ? on : off) = &c;
  }
  if (off != nullptr && on != nullptr && off->source_calls > 0 &&
      on->p99_ms > 0) {
    const double p99_reduction = off->p99_ms / on->p99_ms;
    const double extra_calls =
        static_cast<double>(on->source_calls) /
            static_cast<double>(off->source_calls) -
        1.0;
    const bool pass = p99_reduction >= 2.0 && extra_calls <= 0.10;
    std::printf(
        "\nacceptance @5%% slow: p99 reduction %.2fx (need >= 2x), "
        "extra source calls %.1f%% (need <= 10%%) -> %s\n",
        p99_reduction, extra_calls * 100, pass ? "PASS" : "FAIL");
  }
  WriteJson(configs, "BENCH_hedge.json");
}

}  // namespace
}  // namespace gencompact::bench

int main() {
  gencompact::bench::Run();
  std::printf(
      "\nExpected shape: at low straggler rates hedging collapses p99 to "
      "~2x the fast round trip for a few %% extra calls; at high rates the "
      "digest's hedge point drifts into the slow mode and hedging "
      "self-limits.\n");
  return 0;
}
