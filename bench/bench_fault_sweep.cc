// Fault sweep: mediator throughput and answer quality as the source gets
// flakier.
//
// A Zipf-skewed feasible workload replays against one mediator while the
// source injects seeded transient faults at 0% / 5% / 20%, once with fault
// tolerance off (any injected fault kills its query) and once with the full
// discipline on (retries + decorrelated-jitter backoff + circuit breaker +
// partial answers). Reported per cell: queries/sec, success rate, partial
// answers, retries spent. Results are also emitted as BENCH_fault.json.
//
// Time runs on a FakeClock, so backoff sleeps cost nothing and the sweep is
// deterministic: the qps column isolates the *work* overhead of recovery
// (extra round trips), not sleep time.
//
// Expected shape: without tolerance the success rate tracks (1 - rate) per
// source call (compounding for multi-sub-query plans); with tolerance the
// success rate stays ~1.0 at every fault level, paid for with extra source
// calls per query.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/clock.h"
#include "mediator/mediator.h"
#include "workload/datasets.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"
#include "workload/zipf.h"

namespace gencompact::bench {
namespace {

constexpr size_t kSourceRows = 500;
constexpr size_t kDistinctQueries = 24;
constexpr size_t kQueries = 1500;
constexpr double kZipfSkew = 1.1;
constexpr uint64_t kSeed = 42;

Schema BenchSchema() {
  return Schema({{"s1", ValueType::kString},
                 {"s2", ValueType::kString},
                 {"s3", ValueType::kString},
                 {"n1", ValueType::kInt},
                 {"n2", ValueType::kInt}});
}

struct WorkItem {
  ConditionPtr condition;
  std::vector<std::string> attrs;
};

struct Cell {
  double fault_rate = 0;
  bool tolerant = false;
  size_t queries = 0;
  size_t ok = 0;
  size_t partial = 0;
  size_t failed = 0;
  uint64_t retries = 0;
  uint64_t source_calls = 0;
  double seconds = 0;
  double qps = 0;
  double success_rate = 0;
};

struct Environment {
  std::unique_ptr<Mediator> mediator;
  std::vector<WorkItem> workload;
  FakeClock* clock;  // owned by caller, outlives the mediator
};

Environment MakeEnvironment(bool tolerant, FakeClock* clock) {
  Environment env;
  env.clock = clock;
  Rng rng(kSeed);
  const Schema schema = BenchSchema();
  std::unique_ptr<Table> table =
      MakeRandomTable("src", schema, kSourceRows, 16, 100, &rng);
  RandomCapabilityOptions cap_options;
  cap_options.download_probability = 0.2;
  const SourceDescription description =
      RandomCapability("src", schema, cap_options, &rng);
  const std::vector<AttributeDomain> domains = ExtractDomains(*table, 6, &rng);

  Mediator::Options options;
  options.clock = clock;
  if (tolerant) {
    options.retry.max_attempts = 5;
    options.retry.backoff.base = std::chrono::microseconds(200);
    options.retry.backoff.cap = std::chrono::microseconds(2000);
    options.enable_circuit_breaker = true;
    options.breaker.failure_threshold = 10;
    options.breaker.open_duration = std::chrono::microseconds(5000);
    options.partial_results = true;
  }
  env.mediator = std::make_unique<Mediator>(options);
  if (!env.mediator->RegisterSource(description, std::move(table)).ok()) {
    return env;
  }

  // Feasible queries only, probed before any fault policy is installed.
  while (env.workload.size() < kDistinctQueries) {
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 2 + rng.NextIndex(4);
    WorkItem item;
    item.condition = RandomCondition(domains, cond_options, &rng);
    item.attrs = {schema
                      .attribute(static_cast<int>(
                          rng.NextIndex(schema.num_attributes())))
                      .name};
    const Result<Mediator::QueryResult> probe = env.mediator->QueryCondition(
        "src", item.condition, item.attrs, Strategy::kGenCompact);
    if (!probe.ok()) continue;
    env.workload.push_back(std::move(item));
  }
  return env;
}

Cell RunCell(double fault_rate, bool tolerant) {
  FakeClock clock;
  Environment env = MakeEnvironment(tolerant, &clock);
  Cell cell;
  cell.fault_rate = fault_rate;
  cell.tolerant = tolerant;
  if (env.workload.empty()) return cell;

  {
    const Result<CatalogEntry*> entry = env.mediator->catalog()->Find("src");
    if (!entry.ok()) return cell;
    FaultPolicy policy;
    policy.seed = kSeed;
    policy.transient_error_rate = fault_rate;
    (*entry)->source()->set_fault_policy(policy);
  }

  const ZipfSampler zipf(env.workload.size(), kZipfSkew);
  // Same replay stream in every cell: tolerant and intolerant runs see the
  // identical query sequence, so columns are directly comparable.
  Rng replay_rng(kSeed * 31);
  const auto start = std::chrono::steady_clock::now();
  for (size_t q = 0; q < kQueries; ++q) {
    const WorkItem& item = env.workload[zipf.Sample(&replay_rng)];
    const Result<Mediator::QueryResult> result = env.mediator->QueryCondition(
        "src", item.condition, item.attrs, Strategy::kGenCompact);
    if (!result.ok()) {
      ++cell.failed;
    } else if (!result->completeness.complete) {
      ++cell.partial;
    } else {
      ++cell.ok;
    }
  }
  cell.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  cell.queries = kQueries;
  cell.qps = cell.seconds > 0
                 ? static_cast<double>(cell.queries) / cell.seconds
                 : 0;
  // Partial answers are answers: the query did not fail.
  cell.success_rate =
      static_cast<double>(cell.ok + cell.partial) / static_cast<double>(kQueries);

  const Mediator::Stats stats = env.mediator->StatsSnapshot();
  cell.retries = stats.fault_tolerance.retries;
  if (!stats.sources.empty()) {
    cell.source_calls = stats.sources[0].source.queries_received;
  }
  return cell;
}

void WriteJson(const std::vector<Cell>& cells, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"fault_sweep\",\n");
  std::fprintf(f, "  \"queries_per_cell\": %zu,\n", kQueries);
  std::fprintf(f, "  \"distinct_queries\": %zu,\n", kDistinctQueries);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"fault_rate\": %.2f, \"tolerant\": %s, "
                 "\"queries\": %zu, \"ok\": %zu, \"partial\": %zu, "
                 "\"failed\": %zu, \"retries\": %llu, "
                 "\"source_calls\": %llu, \"qps\": %.1f, "
                 "\"success_rate\": %.4f}%s\n",
                 c.fault_rate, c.tolerant ? "true" : "false", c.queries, c.ok,
                 c.partial, c.failed,
                 static_cast<unsigned long long>(c.retries),
                 static_cast<unsigned long long>(c.source_calls), c.qps,
                 c.success_rate, i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void Run() {
  const std::vector<double> rates = {0.0, 0.05, 0.20};
  std::vector<Cell> cells;
  for (const double rate : rates) {
    cells.push_back(RunCell(rate, /*tolerant=*/false));
    cells.push_back(RunCell(rate, /*tolerant=*/true));
  }

  const std::vector<int> widths = {7, 10, 9, 9, 9, 9, 9, 12, 10};
  PrintRow({"faults", "tolerant", "ok", "partial", "failed", "retries",
            "qps", "src calls", "success"},
           widths);
  PrintRule(widths);
  for (const Cell& c : cells) {
    PrintRow({FormatDouble(c.fault_rate, 2), c.tolerant ? "yes" : "no",
              std::to_string(c.ok), std::to_string(c.partial),
              std::to_string(c.failed), std::to_string(c.retries),
              FormatDouble(c.qps, 0), std::to_string(c.source_calls),
              FormatDouble(c.success_rate, 4)},
             widths);
  }
  WriteJson(cells, "BENCH_fault.json");
}

}  // namespace
}  // namespace gencompact::bench

int main() {
  std::printf(
      "# Fault sweep: success rate and throughput vs injected transient "
      "fault rate,\n# fault tolerance off vs on (retries + breaker + "
      "partial answers)\n\n");
  gencompact::bench::Run();
  std::printf(
      "\nExpected shape: without tolerance the success rate decays with the "
      "fault rate;\nwith tolerance it stays ~1.0 at the cost of extra "
      "source calls per query.\n");
  return 0;
}
