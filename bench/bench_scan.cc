// E15: the columnar batch data plane vs the row-at-a-time reference path.
//
// Single-threaded SP(C, A, R) scans over the car dataset, one row per cell:
// the width-0 reference path (per-row EvalCondition + Row projection + set
// insertion) against the batched path (compiled kernels over selection
// vectors, column-wise batch hashing, id-level dedup, columnar wire
// encode/decode — exactly what Source::Execute runs at batch_width > 0) at
// widths 64 / 256 / 1024 / 4096.
//
// Workloads:
//   large-transfer — every row passes the condition and the projection is
//     duplicate-heavy (few distinct tuples): the paper's expensive case,
//     where the mediator ships and deduplicates a large transfer. The
//     acceptance target lives here: best batched width >= 4x the row path.
//   download-all   — trivial condition, full attribute set (every tuple
//     unique): materialization-bound; batching must still win.
//   selective      — a narrow conjunction (few matches): evaluation-bound;
//     vectorized kernels shine, little to materialize.
//
// Results print as a table and are emitted as BENCH_scan.json. Row counts
// are identical across widths by construction (the differential fuzzer
// asserts the stronger type-exact parity).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/scan.h"
#include "expr/condition_parser.h"
#include "workload/datasets.h"

namespace gencompact::bench {
namespace {

constexpr size_t kNumCars = 200000;
constexpr uint64_t kSeed = 7;
constexpr int kRepetitions = 5;
const size_t kWidths[] = {0, 64, 256, 1024, 4096};

struct Workload {
  std::string name;
  ConditionPtr condition;
  AttributeSet attrs;
};

struct Cell {
  std::string workload;
  size_t width = 0;       // 0 = row reference path
  double ms = 0;          // best-of-kRepetitions scan time
  double mrows_per_sec = 0;
  double speedup = 1.0;   // vs width 0 of the same workload
  size_t result_rows = 0;
  uint64_t wire_bytes = 0;
};

Cell RunCell(const Table& table, const Workload& workload, size_t width) {
  Cell cell;
  cell.workload = workload.name;
  cell.width = width;
  ScanOptions options;
  options.batch_width = width;
  // What Source::Execute does: unconditioned local download-all scans skip
  // the wire round-trip (nothing crosses a "network" for a local table dump).
  options.wire_encode = width > 0 && !workload.condition->is_true();
  double best_ms = 0;
  for (int rep = 0; rep < kRepetitions; ++rep) {
    ScanMetrics metrics;
    const auto start = std::chrono::steady_clock::now();
    const Result<RowSet> rows =
        ScanTable(table, *workload.condition, workload.attrs, options, &metrics);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    if (!rows.ok()) {
      std::printf("ERROR: %s\n", rows.status().ToString().c_str());
      return cell;
    }
    cell.result_rows = rows->size();
    cell.wire_bytes = metrics.wire_bytes;
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  cell.ms = best_ms;
  cell.mrows_per_sec =
      best_ms > 0 ? static_cast<double>(table.num_rows()) / best_ms / 1000.0
                  : 0;
  return cell;
}

void WriteJson(const std::vector<Cell>& cells, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"scan\",\n");
  std::fprintf(f, "  \"table_rows\": %zu,\n", kNumCars);
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kSeed));
  std::fprintf(f, "  \"repetitions\": %d,\n", kRepetitions);
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    std::fprintf(f,
                 "    {\"workload\": \"%s\", \"batch_width\": %zu, "
                 "\"ms\": %.3f, \"mrows_per_sec\": %.2f, "
                 "\"speedup_vs_row\": %.2f, \"result_rows\": %zu, "
                 "\"wire_bytes\": %llu}%s\n",
                 c.workload.c_str(), c.width, c.ms, c.mrows_per_sec, c.speedup,
                 c.result_rows, static_cast<unsigned long long>(c.wire_bytes),
                 i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

ConditionPtr MustParse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  if (!cond.ok()) {
    std::printf("bad condition %s: %s\n", text.c_str(),
                cond.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(cond).value();
}

int Run() {
  const Dataset dataset = MakeCarSource(kNumCars, kSeed);
  const Table& table = *dataset.table;
  const Schema& schema = table.schema();
  std::printf("cars table: %zu rows, %zu attributes\n\n", table.num_rows(),
              schema.num_attributes());

  std::vector<Workload> workloads;
  // Every car has year > 0: all rows pass, and {make, size, color} has few
  // distinct combinations — a maximally duplicate-heavy large transfer.
  workloads.push_back({"large-transfer", MustParse("year > 0"),
                       *schema.MakeSet({"make", "size", "color"})});
  workloads.push_back(
      {"download-all", ConditionNode::True(), schema.AllAttributes()});
  workloads.push_back(
      {"selective",
       MustParse("make = \"BMW\" and style = \"sedan\" and price <= 32000"),
       *schema.MakeSet({"make", "model", "price"})});

  // Build the lazy ColumnStore outside the timings: Source pays it once per
  // table, not once per query.
  (void)table.columns();

  const std::vector<int> widths = {15, 7, 9, 11, 9, 9, 12};
  PrintRow({"workload", "width", "ms", "Mrows/s", "speedup", "rows",
            "wire bytes"},
           widths);
  PrintRule(widths);

  std::vector<Cell> cells;
  double large_transfer_best_speedup = 0;
  bool scaling_ok = true;
  for (const Workload& workload : workloads) {
    double row_ms = 0;
    double prev_mrows = 0;
    for (const size_t width : kWidths) {
      Cell cell = RunCell(table, workload, width);
      if (width == 0) {
        row_ms = cell.ms;
      } else {
        cell.speedup = cell.ms > 0 ? row_ms / cell.ms : 0;
        if (workload.name == "large-transfer") {
          large_transfer_best_speedup =
              std::max(large_transfer_best_speedup, cell.speedup);
          // Throughput must not collapse as the width grows: every batched
          // width at least holds the smallest batched width's pace.
          if (prev_mrows > 0 && cell.mrows_per_sec < 0.5 * prev_mrows) {
            scaling_ok = false;
          }
          prev_mrows = std::max(prev_mrows, cell.mrows_per_sec);
        }
      }
      PrintRow({workload.name,
                width == 0 ? "row" : std::to_string(width),
                FormatDouble(cell.ms, 2), FormatDouble(cell.mrows_per_sec, 1),
                width == 0 ? "1.0" : FormatDouble(cell.speedup, 2),
                std::to_string(cell.result_rows),
                std::to_string(cell.wire_bytes)},
               widths);
      cells.push_back(std::move(cell));
    }
    PrintRule(widths);
  }

  std::printf(
      "\nACCEPTANCE large-transfer best batched speedup: %.2fx "
      "(target >= 4x): %s\n",
      large_transfer_best_speedup,
      large_transfer_best_speedup >= 4.0 ? "PASS" : "FAIL");
  std::printf("ACCEPTANCE throughput scales with batch width: %s\n",
              scaling_ok ? "PASS" : "FAIL");

  WriteJson(cells, "BENCH_scan.json");
  return large_transfer_best_speedup >= 4.0 && scaling_ok ? 0 : 1;
}

}  // namespace
}  // namespace gencompact::bench

int main() { return gencompact::bench::Run(); }
