// E10 (ablations): the design choices DESIGN.md documents, measured.
//
//  A. Commutativity closure of descriptions (Section 6.1): how much
//     feasibility the closure buys on order-sensitive descriptions, and
//     what it costs in grammar size.
//  B. Safe vs. strict (paper) ∧-combination: how often the exactness-
//     preserving mode loses feasibility or pays extra cost.
//  C. Mediator-cost extension (k3): whether charging mediator
//     postprocessing changes plan choice (the paper's Equation 1 charges
//     source queries only).

#include "bench/bench_util.h"
#include "workload/datasets.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact::bench {
namespace {

Schema BenchSchema() {
  return Schema({{"s1", ValueType::kString},
                 {"s2", ValueType::kString},
                 {"n1", ValueType::kInt},
                 {"n2", ValueType::kInt}});
}

struct Env {
  std::unique_ptr<Table> table;
  SourceDescription description{"src", Schema{}};
  std::vector<AttributeDomain> domains;

  Env(uint64_t seed, const RandomCapabilityOptions& cap_options)
      : description("src", BenchSchema()) {
    Rng rng(seed);
    table = MakeRandomTable("src", BenchSchema(), 800, 12, 60, &rng);
    description = RandomCapability("src", BenchSchema(), cap_options, &rng);
    domains = ExtractDomains(*table, 6, &rng);
  }
};

void ClosureAblation() {
  std::printf("\n## A. Commutativity closure of descriptions\n\n");
  const std::vector<int> widths = {26, 12, 12, 14};
  PrintRow({"configuration", "feasible", "avg rules", "avg plan cost"},
           widths);
  PrintRule(widths);

  for (const bool closed : {true, false}) {
    size_t feasible = 0;
    size_t total = 0;
    double rules = 0;
    double cost_sum = 0;
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      // Order-sensitive regime: multi-slot conjunctive forms only, no
      // single-atom fallback and (almost) no downloads, so conjunct order
      // is load-bearing.
      RandomCapabilityOptions cap_options;
      cap_options.download_probability = 0.05;
      cap_options.atomic_forms_probability = 0.0;
      cap_options.optional_slot_probability = 0.15;
      cap_options.num_conjunctive_forms = 4;
      Env env(seed, cap_options);
      SourceHandle handle(env.description, env.table.get(),
                          /*apply_commutativity_closure=*/closed);
      rules += static_cast<double>(handle.description().grammar().rules().size());
      Rng rng(seed * 977);
      for (int q = 0; q < 12; ++q) {
        RandomConditionOptions cond_options;
        cond_options.num_atoms = 2 + rng.NextIndex(4);
        const ConditionPtr cond =
            RandomCondition(env.domains, cond_options, &rng);
        AttributeSet attrs;
        attrs.Add(static_cast<int>(rng.NextIndex(4)));
        ++total;
        const std::unique_ptr<PlannerStrategy> planner =
            MakePlanner(Strategy::kGenCompact, &handle);
        const Result<PlanPtr> plan = planner->Plan(cond, attrs);
        if (plan.ok()) {
          ++feasible;
          cost_sum += handle.cost_model().PlanCost(**plan);
        }
      }
    }
    PrintRow({closed ? "closure applied" : "original description",
              std::to_string(feasible) + "/" + std::to_string(total),
              FormatDouble(rules / 10, 1),
              FormatDouble(feasible ? cost_sum / static_cast<double>(feasible)
                                    : 0,
                           1)},
             widths);
  }
}

void SafeModeAblation() {
  std::printf("\n## B. Safe vs strict (paper) combination mode\n\n");
  const std::vector<int> widths = {26, 12, 16, 16};
  PrintRow({"mode", "feasible", "avg est cost", "multi-plan ∩ used"}, widths);
  PrintRule(widths);

  for (const bool safe : {false, true}) {
    size_t feasible = 0;
    size_t total = 0;
    double cost_sum = 0;
    size_t intersections = 0;
    for (uint64_t seed = 21; seed <= 30; ++seed) {
      RandomCapabilityOptions cap_options;
      cap_options.export_all_probability = 0.5;
      cap_options.download_probability = 0.1;
      Env env(seed, cap_options);
      SourceHandle handle(env.description, env.table.get());
      Rng rng(seed * 1013);
      for (int q = 0; q < 12; ++q) {
        RandomConditionOptions cond_options;
        cond_options.num_atoms = 3 + rng.NextIndex(3);
        cond_options.or_probability = 0.2;  // conjunctive-heavy
        const ConditionPtr cond =
            RandomCondition(env.domains, cond_options, &rng);
        AttributeSet attrs;
        attrs.Add(static_cast<int>(rng.NextIndex(4)));
        ++total;
        GenCompactOptions options;
        options.ipg.safe_combination = safe;
        GenCompactPlanner planner(&handle, options);
        const Result<PlanPtr> plan = planner.Plan(cond, attrs);
        if (!plan.ok()) continue;
        ++feasible;
        cost_sum += handle.cost_model().PlanCost(**plan);
        // Count plans that actually intersect multiple source queries.
        std::vector<const PlanNode*> queue = {plan->get()};
        while (!queue.empty()) {
          const PlanNode* node = queue.back();
          queue.pop_back();
          if (node->kind() == PlanNode::Kind::kIntersect) {
            ++intersections;
            break;
          }
          for (const PlanPtr& child : node->children()) {
            queue.push_back(child.get());
          }
        }
      }
    }
    PrintRow({safe ? "safe (default)" : "strict (paper)",
              std::to_string(feasible) + "/" + std::to_string(total),
              FormatDouble(feasible ? cost_sum / static_cast<double>(feasible)
                                    : 0,
                           1),
              std::to_string(intersections)},
             widths);
  }
}

void MediatorCostAblation() {
  std::printf("\n## C. Mediator postprocessing charge (k3 extension)\n\n");
  const std::vector<int> widths = {16, 16, 20};
  PrintRow({"k3", "avg est cost", "avg source queries"}, widths);
  PrintRule(widths);

  for (const double k3 : {0.0, 0.5, 2.0}) {
    double cost_sum = 0;
    double query_sum = 0;
    size_t feasible = 0;
    for (uint64_t seed = 41; seed <= 50; ++seed) {
      RandomCapabilityOptions cap_options;
      cap_options.download_probability = 0.5;
      Env env(seed, cap_options);
      SourceHandle handle(env.description, env.table.get(),
                          /*apply_commutativity_closure=*/true, k3);
      Rng rng(seed * 733);
      for (int q = 0; q < 10; ++q) {
        RandomConditionOptions cond_options;
        cond_options.num_atoms = 2 + rng.NextIndex(4);
        const ConditionPtr cond =
            RandomCondition(env.domains, cond_options, &rng);
        AttributeSet attrs;
        attrs.Add(static_cast<int>(rng.NextIndex(4)));
        const std::unique_ptr<PlannerStrategy> planner =
            MakePlanner(Strategy::kGenCompact, &handle);
        const Result<PlanPtr> plan = planner->Plan(cond, attrs);
        if (!plan.ok()) continue;
        ++feasible;
        cost_sum += handle.cost_model().PlanCost(**plan);
        query_sum += static_cast<double>((*plan)->CountSourceQueries());
      }
    }
    PrintRow({FormatDouble(k3, 1),
              FormatDouble(feasible ? cost_sum / static_cast<double>(feasible) : 0,
                           1),
              FormatDouble(feasible ? query_sum / static_cast<double>(feasible) : 0,
                           2)},
             widths);
  }
}

}  // namespace
}  // namespace gencompact::bench

int main() {
  std::printf("# E10: design-choice ablations (DESIGN.md)\n");
  gencompact::bench::ClosureAblation();
  gencompact::bench::SafeModeAblation();
  gencompact::bench::MediatorCostAblation();
  std::printf(
      "\nExpected shape: (A) the closure raises feasibility at the price of "
      "more grammar rules (parsing stays fast — bench_check); (B) strict "
      "mode is never less feasible than safe mode and the modes only "
      "diverge when multi-plan intersections appear; (C) a nonzero k3 "
      "shifts plans toward fewer, larger source queries.\n");
  return 0;
}
