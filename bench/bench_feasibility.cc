// E5 ("Table 2"): feasible-plan generation across capability mixes.
//
// The paper's claim (Sections 1-2): existing systems choose infeasible
// plans when feasible plans exist (conventional optimizers), or fail to
// find feasible plans at all (DISCO; CNF/DNF on awkward shapes). For each
// strategy we count, over random capability mixes and random queries:
// feasible plans found, "no plan" reports, and plans rejected by the
// capability-enforcing source at execution time.

#include "bench/bench_util.h"
#include "workload/datasets.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact::bench {
namespace {

struct Counts {
  size_t feasible = 0;
  size_t no_plan = 0;
  size_t rejected = 0;
};

void Run(const char* title, RandomCapabilityOptions cap_options) {
  constexpr size_t kEnvs = 15;
  constexpr size_t kQueriesPerEnv = 12;
  const std::vector<Strategy> strategies = {
      Strategy::kGenCompact, Strategy::kCnf, Strategy::kDnf, Strategy::kDisco,
      Strategy::kNaive};
  std::vector<Counts> counts(strategies.size());
  size_t gencompact_only = 0;
  size_t total = 0;

  for (size_t env_id = 0; env_id < kEnvs; ++env_id) {
    Rng rng(31000 + env_id);
    const Schema schema({{"s1", ValueType::kString},
                         {"s2", ValueType::kString},
                         {"s3", ValueType::kString},
                         {"n1", ValueType::kInt},
                         {"n2", ValueType::kInt}});
    const std::unique_ptr<Table> table =
        MakeRandomTable("src", schema, 500, 12, 60, &rng);
    const SourceDescription description =
        RandomCapability("src", schema, cap_options, &rng);
    SourceHandle handle(description, table.get());
    Source source(table.get(), &handle.description());
    const std::vector<AttributeDomain> domains = ExtractDomains(*table, 6, &rng);

    for (size_t q = 0; q < kQueriesPerEnv; ++q) {
      RandomConditionOptions cond_options;
      cond_options.num_atoms = 2 + rng.NextIndex(5);
      const ConditionPtr cond = RandomCondition(domains, cond_options, &rng);
      AttributeSet attrs;
      attrs.Add(static_cast<int>(rng.NextIndex(schema.num_attributes())));
      ++total;

      bool gc_feasible = false;
      bool other_feasible = false;
      for (size_t s = 0; s < strategies.size(); ++s) {
        const StrategyOutcome outcome =
            RunStrategy(strategies[s], &handle, &source, cond, attrs);
        if (outcome.feasible) {
          ++counts[s].feasible;
          if (s == 0) gc_feasible = true;
          if (s > 0 && strategies[s] != Strategy::kNaive) other_feasible = true;
        } else if (outcome.rejected_at_source) {
          ++counts[s].rejected;
        } else {
          ++counts[s].no_plan;
        }
      }
      if (gc_feasible && !other_feasible) ++gencompact_only;
    }
  }

  std::printf("\n## %s (%zu queries)\n\n", title, total);
  const std::vector<int> widths = {24, 10, 10, 22};
  PrintRow({"strategy", "feasible", "no plan", "rejected by source"}, widths);
  PrintRule(widths);
  for (size_t s = 0; s < strategies.size(); ++s) {
    PrintRow({StrategyName(strategies[s]), std::to_string(counts[s].feasible),
              std::to_string(counts[s].no_plan),
              std::to_string(counts[s].rejected)},
             widths);
  }
  std::printf("\nQueries only GenCompact could plan (vs CNF/DNF/DISCO): %zu\n",
              gencompact_only);
}

}  // namespace
}  // namespace gencompact::bench

int main() {
  std::printf("# E5: feasibility across capability mixes\n");

  gencompact::RandomCapabilityOptions generous;
  generous.download_probability = 0.4;
  gencompact::bench::Run("Generous capabilities (downloads common)", generous);

  gencompact::RandomCapabilityOptions restrictive;
  restrictive.download_probability = 0.0;
  restrictive.atomic_forms_probability = 0.3;
  restrictive.export_all_probability = 0.4;
  gencompact::bench::Run("Restrictive capabilities (no downloads)", restrictive);

  std::printf(
      "\nExpected shape: GenCompact's feasible count is the maximum in "
      "every row; Naive never reports 'no plan' but is rejected by the "
      "source whenever the query is genuinely unsupported.\n");
  return 0;
}
