// E2 ("Fig 1"): plan quality across query sizes.
//
// Random target queries (2..8 atoms) against a random-capability source;
// for each strategy: fraction of queries with a feasible plan, and the mean
// estimated-cost ratio vs GenCompact on queries where both are feasible.
// The paper's claim: GenCompact plans are never worse and often far better,
// because it examines a much larger space of feasible plans.

#include "bench/bench_util.h"
#include "workload/datasets.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact::bench {
namespace {

Schema BenchSchema() {
  return Schema({{"s1", ValueType::kString},
                 {"s2", ValueType::kString},
                 {"s3", ValueType::kString},
                 {"n1", ValueType::kInt},
                 {"n2", ValueType::kInt}});
}

struct Accumulator {
  size_t feasible = 0;
  double ratio_sum = 0.0;
  size_t ratio_count = 0;
};

void Run() {
  constexpr size_t kEnvs = 12;
  constexpr size_t kQueriesPerEnv = 15;
  const std::vector<Strategy> strategies = {Strategy::kGenCompact,
                                            Strategy::kCnf, Strategy::kDnf,
                                            Strategy::kDisco};

  const std::vector<int> widths = {7, 16, 16, 16, 16};
  std::printf("Columns: feasible%% (mean est-cost ratio vs GenCompact)\n\n");
  PrintRow({"atoms", "GenCompact", "CNF(Garlic)", "DNF", "DISCO"}, widths);
  PrintRule(widths);

  for (size_t atoms = 2; atoms <= 8; ++atoms) {
    std::vector<Accumulator> acc(strategies.size());
    size_t total = 0;
    for (size_t env_id = 0; env_id < kEnvs; ++env_id) {
      Rng rng(1000 * atoms + env_id);
      const Schema schema = BenchSchema();
      const std::unique_ptr<Table> table =
          MakeRandomTable("src", schema, 2000, 16, 100, &rng);
      RandomCapabilityOptions cap_options;
      cap_options.download_probability = 0.3;
      const SourceDescription description =
          RandomCapability("src", schema, cap_options, &rng);
      SourceHandle handle(description, table.get());
      const std::vector<AttributeDomain> domains =
          ExtractDomains(*table, 6, &rng);

      for (size_t q = 0; q < kQueriesPerEnv; ++q) {
        RandomConditionOptions cond_options;
        cond_options.num_atoms = atoms;
        const ConditionPtr cond = RandomCondition(domains, cond_options, &rng);
        AttributeSet attrs;
        attrs.Add(static_cast<int>(rng.NextIndex(schema.num_attributes())));
        attrs.Add(static_cast<int>(rng.NextIndex(schema.num_attributes())));
        ++total;

        std::vector<double> costs(strategies.size(), -1);
        for (size_t s = 0; s < strategies.size(); ++s) {
          const std::unique_ptr<PlannerStrategy> planner =
              MakePlanner(strategies[s], &handle);
          const Result<PlanPtr> plan = planner->Plan(cond, attrs);
          if (!plan.ok()) continue;
          ++acc[s].feasible;
          costs[s] = handle.cost_model().PlanCost(**plan);
        }
        if (costs[0] <= 0) continue;
        for (size_t s = 1; s < strategies.size(); ++s) {
          if (costs[s] < 0) continue;
          acc[s].ratio_sum += costs[s] / costs[0];
          ++acc[s].ratio_count;
        }
        acc[0].ratio_sum += 1.0;
        ++acc[0].ratio_count;
      }
    }

    std::vector<std::string> cells = {std::to_string(atoms)};
    for (size_t s = 0; s < strategies.size(); ++s) {
      const double pct =
          100.0 * static_cast<double>(acc[s].feasible) / static_cast<double>(total);
      std::string cell = FormatDouble(pct, 0) + "%";
      if (acc[s].ratio_count > 0) {
        cell += " (" +
                FormatDouble(acc[s].ratio_sum /
                                 static_cast<double>(acc[s].ratio_count),
                             2) +
                "x)";
      }
      cells.push_back(std::move(cell));
    }
    PrintRow(cells, widths);
  }
}

}  // namespace
}  // namespace gencompact::bench

int main() {
  std::printf("# E2: plan quality vs query size (random capability mixes)\n\n");
  gencompact::bench::Run();
  std::printf(
      "\nExpected shape: GenCompact has the highest feasibility at every "
      "size and a 1.00x ratio by definition; baselines' ratios grow with "
      "query size.\n");
  return 0;
}
