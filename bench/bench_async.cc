// E18: the async event-loop executor vs thread-per-fetch under high fan-out,
// plus admission control bounding time-to-answer under overload.
//
// Part 1 — fan-out. One slow source (2ms simulated round trip) and a
// Zipf-skewed workload of feasible target queries, two execution modes:
//
//   pool  — async_executor off. kPoolThreads blocking clients drain the
//           query stream; every simulated round trip parks the thread that
//           issued it, so at most kPoolThreads transfers are in flight.
//   async — async_executor on. ONE submitter thread keeps kWindow queries
//           in flight through Mediator::QueryAsync; every round trip is a
//           timer on the event loop, so in-flight count is bounded by the
//           window (and the in-flight limiter), not by thread count.
//
// Acceptance: the async mode sustains >= 4x the pool mode's queries/sec, or
// failing that holds >= 4x the pool path's in-flight transfers per worker
// thread (peak limiter occupancy vs one transfer per pool thread).
//
// Part 2 — overload. Offered load far beyond the limiter's drain capacity,
// admission control off vs on. The baseline has no deadline and no gate: it
// queues everything, so every query eventually answers OK but time-to-answer
// grows linearly with the backlog. The admission run caps the backlog
// (max_pending) and enforces a per-query SLO (query_deadline): queries
// arriving past the cap, or whose expected queue wait already exceeds the
// budget, are shed BEFORE planning, so the answered queries see a bounded
// queue and p99 time-to-answer (a shed IS an answer — an instant one) stays
// near the SLO instead of the backlog depth. The hard cap is what makes the
// leg deterministic: the SLO gate's latency estimate is warmup-dominated
// and sits within a few percent of the 12ms budget at this queue depth, so
// alone it flips between shedding the whole flood and none of it.
//
// Acceptance: admission keeps p99 time-to-answer below the no-admission run
// while shedding a nonzero share of the offered load.
//
// Exit code is non-zero when an acceptance fails; results go to
// BENCH_async.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mediator/mediator.h"
#include "workload/datasets.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"
#include "workload/zipf.h"

namespace gencompact::bench {
namespace {

constexpr size_t kSourceRows = 2000;
constexpr size_t kDistinctQueries = 64;
constexpr size_t kTotalQueries = 768;
constexpr double kZipfSkew = 1.1;
constexpr std::chrono::microseconds kSourceLatency{2000};  // 2ms round trip
constexpr size_t kPoolThreads = 8;   // blocking clients = pool-path workers
constexpr size_t kWindow = 64;       // async submitter's in-flight target
constexpr uint64_t kSeed = 42;

// Overload leg: offered load >> drain capacity, per-query deadline.
constexpr size_t kOverloadQueries = 512;
constexpr size_t kOverloadWindow = 256;
constexpr size_t kOverloadDrain = 8;  // limiter global cap = drain width
constexpr std::chrono::microseconds kOverloadDeadline{12000};

Schema BenchSchema() {
  return Schema({{"s1", ValueType::kString},
                 {"s2", ValueType::kString},
                 {"s3", ValueType::kString},
                 {"n1", ValueType::kInt},
                 {"n2", ValueType::kInt}});
}

struct ModeResult {
  std::string mode;
  size_t queries = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t errors = 0;  // non-shed failures (deadline misses under overload)
  double seconds = 0;
  double qps = 0;
  size_t peak_inflight = 0;  // limiter gauge (async modes only)
  double p50_ms = 0;         // time-to-answer percentiles (overload legs)
  double p99_ms = 0;
};

/// A fresh mediator plus a replayable SQL workload. Every mode rebuilds the
/// identical environment from the same seed.
struct Environment {
  std::unique_ptr<Mediator> mediator;
  std::vector<std::string> workload;
};

Environment MakeEnvironment(Mediator::Options options, uint64_t seed) {
  Environment env;
  Rng rng(seed);
  const Schema schema = BenchSchema();
  std::unique_ptr<Table> table =
      MakeRandomTable("src", schema, kSourceRows, 16, 100, &rng);
  RandomCapabilityOptions cap_options;
  cap_options.download_probability = 0.2;
  const SourceDescription description =
      RandomCapability("src", schema, cap_options, &rng);
  const std::vector<AttributeDomain> domains = ExtractDomains(*table, 6, &rng);

  env.mediator = std::make_unique<Mediator>(options);
  if (!env.mediator->RegisterSource(description, std::move(table)).ok()) {
    return env;
  }

  // Feasible queries only, probed through the same SQL entry point the
  // replay uses (this also filters conditions whose text form round-trips
  // imperfectly through the parser). Probing happens BEFORE the simulated
  // latency is dialed in, so it is cheap.
  while (env.workload.size() < kDistinctQueries) {
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 2 + rng.NextIndex(4);
    const ConditionPtr condition = RandomCondition(domains, cond_options, &rng);
    const std::string& attr =
        schema
            .attribute(static_cast<int>(rng.NextIndex(schema.num_attributes())))
            .name;
    const std::string sql =
        "SELECT " + attr + " FROM src WHERE " + condition->ToString();
    if (!env.mediator->Query(sql).ok()) continue;
    env.workload.push_back(sql);
  }
  return env;
}

void SetSourceLatency(Environment* env, std::chrono::microseconds latency) {
  const Result<CatalogEntry*> entry = env->mediator->catalog()->Find("src");
  if (entry.ok()) (*entry)->source()->set_simulated_latency(latency);
}

/// Pool mode: kPoolThreads clients issue blocking queries; each in-flight
/// round trip costs one parked thread.
ModeResult RunPool(uint64_t seed) {
  ModeResult result;
  result.mode = "pool";
  Mediator::Options options;
  options.num_threads = kPoolThreads;
  Environment env = MakeEnvironment(options, seed);
  if (env.workload.empty()) return result;
  SetSourceLatency(&env, kSourceLatency);
  const ZipfSampler zipf(env.workload.size(), kZipfSkew);
  std::atomic<size_t> errors{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(kPoolThreads);
  for (size_t t = 0; t < kPoolThreads; ++t) {
    clients.emplace_back([t, seed, &env, &zipf, &errors]() {
      Rng thread_rng(seed * 7919 + t);
      for (size_t q = 0; q < kTotalQueries / kPoolThreads; ++q) {
        const std::string& sql = env.workload[zipf.Sample(&thread_rng)];
        if (!env.mediator->Query(sql).ok()) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.queries = (kTotalQueries / kPoolThreads) * kPoolThreads;
  result.errors = errors.load();
  result.ok = result.queries - result.errors;
  result.qps = result.seconds > 0
                   ? static_cast<double>(result.queries) / result.seconds
                   : 0;
  return result;
}

double PercentileMs(std::vector<double>* latencies, double q) {
  if (latencies->empty()) return 0;
  std::sort(latencies->begin(), latencies->end());
  const size_t index = std::min(
      latencies->size() - 1,
      static_cast<size_t>(q * static_cast<double>(latencies->size())));
  return (*latencies)[index];
}

/// Windowed async submitter shared by the fan-out and overload legs: one
/// thread keeps `window` queries in flight via QueryAsync and records each
/// query's time-to-answer (completion OR shed — a fast failure is an answer).
ModeResult RunAsyncWindow(const std::string& mode, Mediator::Options options,
                          uint64_t seed, size_t total, size_t window,
                          std::chrono::microseconds latency) {
  ModeResult result;
  result.mode = mode;
  Environment env = MakeEnvironment(options, seed);
  if (env.workload.empty()) return result;
  SetSourceLatency(&env, latency);
  const ZipfSampler zipf(env.workload.size(), kZipfSkew);
  Rng rng(seed * 7919);

  std::mutex mu;
  std::condition_variable cv;
  size_t in_flight = 0;
  size_t done = 0;
  size_t ok = 0;
  size_t shed = 0;
  size_t errors = 0;
  std::vector<double> answer_ms;
  answer_ms.reserve(total);

  const Mediator::Stats before = env.mediator->StatsSnapshot();
  const auto start = std::chrono::steady_clock::now();
  for (size_t q = 0; q < total; ++q) {
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return in_flight < window; });
      ++in_flight;
    }
    const std::string& sql = env.workload[zipf.Sample(&rng)];
    const auto issued = std::chrono::steady_clock::now();
    env.mediator->QueryAsync(sql, [&, issued](Result<Mediator::QueryResult> r) {
      const double ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - issued)
                            .count();
      std::lock_guard<std::mutex> lock(mu);
      --in_flight;
      ++done;
      answer_ms.push_back(ms);
      if (r.ok()) {
        ++ok;
      } else if (r.status().code() == StatusCode::kUnavailable &&
                 r.status().message().find("admission control") !=
                     std::string::npos) {
        ++shed;
      } else {
        ++errors;
      }
      cv.notify_all();
    });
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return done == total; });
  }
  result.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  result.queries = total;
  result.ok = ok;
  result.shed = shed;
  result.errors = errors;
  result.qps = result.seconds > 0
                   ? static_cast<double>(result.queries) / result.seconds
                   : 0;
  result.p50_ms = PercentileMs(&answer_ms, 0.50);
  result.p99_ms = PercentileMs(&answer_ms, 0.99);

  const Mediator::Stats after = env.mediator->StatsSnapshot();
  result.peak_inflight = after.scheduler.peak_inflight;
  std::printf("\n--- interval rates (%s) ---\n%s", mode.c_str(),
              after.DiffSince(before).ToString().c_str());
  return result;
}

ModeResult RunAsync(uint64_t seed) {
  Mediator::Options options;
  options.num_threads = kPoolThreads;  // scan offload pool, same size as pool
  options.async_executor = true;
  options.inflight.global = 2 * kWindow;  // gauge, not the bottleneck here
  return RunAsyncWindow("async", options, seed, kTotalQueries, kWindow,
                        kSourceLatency);
}

ModeResult RunOverload(uint64_t seed, bool admission) {
  Mediator::Options options;
  options.async_executor = true;
  options.inflight.global = kOverloadDrain;
  if (admission) {
    // SLO-aware: a deadline to shed against, enforced before planning, plus
    // a hard backlog cap — 4 drain waves of queue is the most a query can
    // sit behind and still answer inside the 12ms budget at ~2ms per trip.
    options.query_deadline = kOverloadDeadline;
    options.admission.enabled = true;
    options.admission.drain_width = kOverloadDrain;
    options.admission.max_pending = 4 * kOverloadDrain;
  }
  ModeResult result = RunAsyncWindow(
      admission ? "overload+admission" : "overload", options, seed,
      kOverloadQueries, kOverloadWindow, kSourceLatency);
  return result;
}

void WriteJson(const std::vector<ModeResult>& modes, double speedup,
               double inflight_per_worker, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"async\",\n");
  std::fprintf(f, "  \"source_latency_us\": %lld,\n",
               static_cast<long long>(kSourceLatency.count()));
  std::fprintf(f, "  \"distinct_queries\": %zu,\n", kDistinctQueries);
  std::fprintf(f, "  \"total_queries\": %zu,\n", kTotalQueries);
  std::fprintf(f, "  \"zipf_skew\": %.2f,\n", kZipfSkew);
  std::fprintf(f, "  \"pool_threads\": %zu,\n", kPoolThreads);
  std::fprintf(f, "  \"async_window\": %zu,\n", kWindow);
  std::fprintf(f, "  \"overload_window\": %zu,\n", kOverloadWindow);
  std::fprintf(f, "  \"overload_drain\": %zu,\n", kOverloadDrain);
  std::fprintf(f, "  \"overload_deadline_us\": %lld,\n",
               static_cast<long long>(kOverloadDeadline.count()));
  std::fprintf(f, "  \"speedup\": %.2f,\n", speedup);
  std::fprintf(f, "  \"inflight_per_worker\": %.2f,\n", inflight_per_worker);
  std::fprintf(f, "  \"modes\": [\n");
  for (size_t i = 0; i < modes.size(); ++i) {
    const ModeResult& m = modes[i];
    std::fprintf(
        f,
        "    {\"mode\": \"%s\", \"queries\": %zu, \"ok\": %zu, "
        "\"shed\": %zu, \"errors\": %zu, \"seconds\": %.4f, \"qps\": %.1f, "
        "\"peak_inflight\": %zu, \"p50_ms\": %.2f, \"p99_ms\": %.2f}%s\n",
        m.mode.c_str(), m.queries, m.ok, m.shed, m.errors, m.seconds, m.qps,
        m.peak_inflight, m.p50_ms, m.p99_ms,
        i + 1 < modes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

int Run() {
  const ModeResult pool = RunPool(kSeed);
  const ModeResult async = RunAsync(kSeed);
  const ModeResult overload = RunOverload(kSeed, /*admission=*/false);
  const ModeResult admitted = RunOverload(kSeed, /*admission=*/true);

  const std::vector<int> widths = {19, 8, 6, 6, 7, 8, 9, 8, 8, 8};
  PrintRow({"mode", "queries", "ok", "shed", "errors", "seconds", "qps",
            "inflight", "p50 ms", "p99 ms"},
           widths);
  PrintRule(widths);
  for (const ModeResult& m : {pool, async, overload, admitted}) {
    PrintRow({m.mode, std::to_string(m.queries), std::to_string(m.ok),
              std::to_string(m.shed), std::to_string(m.errors),
              FormatDouble(m.seconds, 3), FormatDouble(m.qps, 1),
              std::to_string(m.peak_inflight), FormatDouble(m.p50_ms, 2),
              FormatDouble(m.p99_ms, 2)},
             widths);
  }

  const double speedup = pool.qps > 0 ? async.qps / pool.qps : 0;
  // One loop thread drives all async transfers; each pool transfer holds a
  // whole worker thread hostage for its duration.
  const double inflight_per_worker = static_cast<double>(async.peak_inflight);
  const bool throughput_ok = speedup >= 4.0;
  const bool inflight_ok =
      inflight_per_worker >= 4.0 * static_cast<double>(kPoolThreads);
  std::printf("\nACCEPTANCE async vs pool sustained throughput: %.2fx "
              "(target >= 4x): %s\n",
              speedup, throughput_ok ? "PASS" : "FAIL");
  std::printf("ACCEPTANCE in-flight transfers per worker thread: %.1f "
              "(pool path: 1.0, target >= %.1f): %s\n",
              inflight_per_worker, 4.0 * static_cast<double>(kPoolThreads),
              inflight_ok ? "PASS" : "FAIL");
  const bool errors_ok = pool.errors == 0 && async.errors == 0;
  if (!errors_ok) {
    std::printf("ACCEPTANCE zero errors on the fan-out legs: FAIL "
                "(pool %zu, async %zu)\n",
                pool.errors, async.errors);
  }
  const bool overload_ok =
      admitted.shed > 0 && admitted.p99_ms < overload.p99_ms;
  std::printf("ACCEPTANCE shed-before-planning bounds p99 under overload: "
              "%.2fms (admission, %zu shed) vs %.2fms (no admission): %s\n",
              admitted.p99_ms, admitted.shed, overload.p99_ms,
              overload_ok ? "PASS" : "FAIL");

  WriteJson({pool, async, overload, admitted}, speedup, inflight_per_worker,
            "BENCH_async.json");
  return (throughput_ok || inflight_ok) && errors_ok && overload_ok ? 0 : 1;
}

}  // namespace
}  // namespace gencompact::bench

int main() {
  std::printf(
      "# Async executor: one event loop vs thread-per-fetch "
      "(simulated %lldus source round trip)\n\n",
      static_cast<long long>(gencompact::bench::kSourceLatency.count()));
  return gencompact::bench::Run();
}
