// E9 (extension, "Fig 6"): the complex-query extension — capability-
// sensitive bind-join vs. independent evaluation for two-source joins.
//
// The paper defers complex queries to [2] but positions selection queries
// as "the building blocks of more complex queries". This benchmark shows
// the building blocks composing: as the left side becomes more selective
// (fewer distinct join keys), the bind-join transfers dramatically fewer
// rows than evaluating the right side independently; with an unselective
// left side, independent evaluation wins.

#include "bench/bench_util.h"
#include "expr/condition_parser.h"
#include "mediator/join.h"
#include "ssdl/capability_builder.h"
#include "workload/datasets.h"

namespace gencompact::bench {
namespace {

constexpr const char* kMakes[] = {"m00", "m01", "m02", "m03", "m04", "m05",
                                  "m06", "m07", "m08", "m09", "m10", "m11",
                                  "m12", "m13", "m14", "m15", "m16", "m17",
                                  "m18", "m19"};

std::unique_ptr<Catalog> BuildCatalog() {
  auto catalog = std::make_unique<Catalog>();

  // Left: listing source, supports make/price conjunctions and download.
  Schema cars_schema({{"make", ValueType::kString},
                      {"model", ValueType::kString},
                      {"price", ValueType::kInt}});
  CapabilityBuilder cars_builder("cars", cars_schema);
  (void)cars_builder.AddConjunctiveForm(
      "f",
      {{"make", {CompareOp::kEq}, true, false},
       {"price", {CompareOp::kLt, CompareOp::kLe}, true, false}},
      {"make", "model", "price"});
  (void)cars_builder.AddDownload("dl", {"make", "model", "price"});
  SourceDescription cars_desc = cars_builder.Build();
  cars_desc.set_cost_constants(10.0, 1.0);

  Rng rng(4242);
  auto cars_table = std::make_unique<Table>("cars", cars_schema);
  for (int i = 0; i < 20000; ++i) {
    const std::string make(kMakes[rng.NextIndex(20)]);
    (void)cars_table->AppendValues(
        {Value::String(make), Value::String(make + "_" + std::to_string(i)),
         Value::Int(rng.NextInt(5000, 60000))});
  }
  (void)catalog->Register(std::move(cars_desc), std::move(cars_table));

  // Right: dealer directory; make (or make list) required OR full download,
  // so both join methods are feasible and the planner must choose by cost.
  Schema dealers_schema({{"make", ValueType::kString},
                         {"dealer", ValueType::kString},
                         {"rating", ValueType::kInt}});
  CapabilityBuilder dealers_builder("dealers", dealers_schema);
  (void)dealers_builder.AddConjunctiveForm(
      "f", {{"make", {CompareOp::kEq}, false, true}},
      {"make", "dealer", "rating"});
  (void)dealers_builder.AddDownload("dl", {"make", "dealer", "rating"});
  SourceDescription dealers_desc = dealers_builder.Build();
  dealers_desc.set_cost_constants(8.0, 1.0);

  auto dealers_table = std::make_unique<Table>("dealers", dealers_schema);
  for (int i = 0; i < 5000; ++i) {
    (void)dealers_table->AppendValues(
        {Value::String(kMakes[rng.NextIndex(20)]),
         Value::String("d" + std::to_string(i)), Value::Int(rng.NextInt(1, 5))});
  }
  (void)catalog->Register(std::move(dealers_desc), std::move(dealers_table));
  return catalog;
}

void Run() {
  std::unique_ptr<Catalog> catalog = BuildCatalog();
  CatalogEntry* left = *catalog->Find("cars");
  CatalogEntry* right = *catalog->Find("dealers");

  const std::vector<int> widths = {22, 13, 12, 14, 14, 12};
  PrintRow({"left selectivity", "chosen", "queries", "rows (bind)",
            "rows (indep)", "results"},
           widths);
  PrintRule(widths);

  // Vary left selectivity: one make (1 key) ... no filter (20 keys).
  struct Case {
    const char* label;
    const char* condition;
  };
  const Case kCases[] = {
      {"1 make", "cars.make = \"m03\" and cars.price < 20000"},
      {"price < 8000", "cars.price < 8000"},
      {"price < 20000", "cars.price < 20000"},
      {"all cars", "true"},
  };

  for (const Case& c : kCases) {
    JoinQuery query;
    query.left_source = "cars";
    query.right_source = "dealers";
    query.keys = {{"cars.make", "dealers.make"}};
    const Result<ConditionPtr> cond = ParseCondition(c.condition);
    if (!cond.ok()) continue;
    query.condition = *cond;
    query.select = {"dealers.dealer"};

    // Cost-based choice.
    JoinProcessor chooser(left, right);
    const Result<JoinPlanOutcome> outcome = chooser.Plan(query);
    const Result<RowSet> rows = chooser.Execute(query);

    // Forced variants for the transfer comparison.
    JoinOptions bind_options;
    bind_options.force_method = JoinMethod::kBind;
    JoinProcessor bind(left, right, bind_options);
    const Result<RowSet> bind_rows = bind.Execute(query);

    JoinOptions indep_options;
    indep_options.force_method = JoinMethod::kIndependent;
    JoinProcessor indep(left, right, indep_options);
    const Result<RowSet> indep_rows = indep.Execute(query);

    PrintRow(
        {c.label,
         outcome.ok() ? JoinMethodName(outcome->method) : "-",
         rows.ok() ? std::to_string(chooser.stats().left.source_queries +
                                    chooser.stats().right.source_queries)
                   : "-",
         bind_rows.ok() ? std::to_string(bind.stats().right.rows_transferred)
                        : "-",
         indep_rows.ok()
             ? std::to_string(indep.stats().right.rows_transferred)
             : "-",
         rows.ok() ? std::to_string(rows->size()) : "-"},
        widths);
  }
}

}  // namespace
}  // namespace gencompact::bench

int main() {
  std::printf(
      "# E9 (extension): bind-join vs independent right-side evaluation\n\n");
  gencompact::bench::Run();
  std::printf(
      "\nExpected shape: with a selective left side the bind-join moves a "
      "small fraction of the dealer directory and is chosen; as left "
      "selectivity vanishes the independent download becomes cheaper and "
      "the cost model switches methods.\n");
  return 0;
}
