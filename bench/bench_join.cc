// E9 (extension, "Fig 6"): the complex-query extension — capability-
// sensitive bind-join vs. independent evaluation for two-source joins.
//
// The paper defers complex queries to [2] but positions selection queries
// as "the building blocks of more complex queries". This benchmark shows
// the building blocks composing: as the left side becomes more selective
// (fewer distinct join keys), the bind-join transfers dramatically fewer
// rows than evaluating the right side independently; with an unselective
// left side, independent evaluation wins.
//
// E17: N-source federation planning — star and chain query graphs at 3, 5,
// and 8 sources, comparing the DPccp-style DP enumerator against the greedy
// and left-deep baselines on modeled plan cost, planning wall-clock, and
// execution wall-clock. Emitted as BENCH_join.json; exits nonzero when DP
// loses its optimality guarantee (a baseline beats it) or the three modes
// disagree on the answer.

#include <chrono>

#include "bench/bench_util.h"
#include "expr/condition_parser.h"
#include "mediator/federation.h"
#include "mediator/join.h"
#include "ssdl/capability_builder.h"
#include "workload/datasets.h"

namespace gencompact::bench {
namespace {

constexpr const char* kMakes[] = {"m00", "m01", "m02", "m03", "m04", "m05",
                                  "m06", "m07", "m08", "m09", "m10", "m11",
                                  "m12", "m13", "m14", "m15", "m16", "m17",
                                  "m18", "m19"};

std::unique_ptr<Catalog> BuildCatalog() {
  auto catalog = std::make_unique<Catalog>();

  // Left: listing source, supports make/price conjunctions and download.
  Schema cars_schema({{"make", ValueType::kString},
                      {"model", ValueType::kString},
                      {"price", ValueType::kInt}});
  CapabilityBuilder cars_builder("cars", cars_schema);
  (void)cars_builder.AddConjunctiveForm(
      "f",
      {{"make", {CompareOp::kEq}, true, false},
       {"price", {CompareOp::kLt, CompareOp::kLe}, true, false}},
      {"make", "model", "price"});
  (void)cars_builder.AddDownload("dl", {"make", "model", "price"});
  SourceDescription cars_desc = cars_builder.Build();
  cars_desc.set_cost_constants(10.0, 1.0);

  Rng rng(4242);
  auto cars_table = std::make_unique<Table>("cars", cars_schema);
  for (int i = 0; i < 20000; ++i) {
    const std::string make(kMakes[rng.NextIndex(20)]);
    (void)cars_table->AppendValues(
        {Value::String(make), Value::String(make + "_" + std::to_string(i)),
         Value::Int(rng.NextInt(5000, 60000))});
  }
  (void)catalog->Register(std::move(cars_desc), std::move(cars_table));

  // Right: dealer directory; make (or make list) required OR full download,
  // so both join methods are feasible and the planner must choose by cost.
  Schema dealers_schema({{"make", ValueType::kString},
                         {"dealer", ValueType::kString},
                         {"rating", ValueType::kInt}});
  CapabilityBuilder dealers_builder("dealers", dealers_schema);
  (void)dealers_builder.AddConjunctiveForm(
      "f", {{"make", {CompareOp::kEq}, false, true}},
      {"make", "dealer", "rating"});
  (void)dealers_builder.AddDownload("dl", {"make", "dealer", "rating"});
  SourceDescription dealers_desc = dealers_builder.Build();
  dealers_desc.set_cost_constants(8.0, 1.0);

  auto dealers_table = std::make_unique<Table>("dealers", dealers_schema);
  for (int i = 0; i < 5000; ++i) {
    (void)dealers_table->AppendValues(
        {Value::String(kMakes[rng.NextIndex(20)]),
         Value::String("d" + std::to_string(i)), Value::Int(rng.NextInt(1, 5))});
  }
  (void)catalog->Register(std::move(dealers_desc), std::move(dealers_table));
  return catalog;
}

void Run() {
  std::unique_ptr<Catalog> catalog = BuildCatalog();
  CatalogEntry* left = *catalog->Find("cars");
  CatalogEntry* right = *catalog->Find("dealers");

  const std::vector<int> widths = {22, 13, 12, 14, 14, 12};
  PrintRow({"left selectivity", "chosen", "queries", "rows (bind)",
            "rows (indep)", "results"},
           widths);
  PrintRule(widths);

  // Vary left selectivity: one make (1 key) ... no filter (20 keys).
  struct Case {
    const char* label;
    const char* condition;
  };
  const Case kCases[] = {
      {"1 make", "cars.make = \"m03\" and cars.price < 20000"},
      {"price < 8000", "cars.price < 8000"},
      {"price < 20000", "cars.price < 20000"},
      {"all cars", "true"},
  };

  for (const Case& c : kCases) {
    JoinQuery query;
    query.left_source = "cars";
    query.right_source = "dealers";
    query.keys = {{"cars.make", "dealers.make"}};
    const Result<ConditionPtr> cond = ParseCondition(c.condition);
    if (!cond.ok()) continue;
    query.condition = *cond;
    query.select = {"dealers.dealer"};

    // Cost-based choice.
    JoinProcessor chooser(left, right);
    const Result<JoinPlanOutcome> outcome = chooser.Plan(query);
    const Result<RowSet> rows = chooser.Execute(query);

    // Forced variants for the transfer comparison.
    JoinOptions bind_options;
    bind_options.force_method = JoinMethod::kBind;
    JoinProcessor bind(left, right, bind_options);
    const Result<RowSet> bind_rows = bind.Execute(query);

    JoinOptions indep_options;
    indep_options.force_method = JoinMethod::kIndependent;
    JoinProcessor indep(left, right, indep_options);
    const Result<RowSet> indep_rows = indep.Execute(query);

    PrintRow(
        {c.label,
         outcome.ok() ? JoinMethodName(outcome->method) : "-",
         rows.ok() ? std::to_string(chooser.stats().left.source_queries +
                                    chooser.stats().right.source_queries)
                   : "-",
         bind_rows.ok() ? std::to_string(bind.stats().right.rows_transferred)
                        : "-",
         indep_rows.ok()
             ? std::to_string(indep.stats().right.rows_transferred)
             : "-",
         rows.ok() ? std::to_string(rows->size()) : "-"},
        widths);
  }
}

// ---------------------------------------------------------------------------
// E17: N-source federation planning (DP vs greedy vs left-deep)
// ---------------------------------------------------------------------------

constexpr uint64_t kFedSeed = 1717;

struct FedCell {
  std::string topology;
  int sources = 0;
  std::string mode;
  bool feasible = false;
  double plan_cost = 0.0;
  double plan_ms = 0.0;
  double exec_ms = 0.0;
  size_t rows = 0;
  size_t dp_subsets = 0;
  bool greedy_used = false;
};

std::string FedKey(const Rng& /*unused*/, int i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%03d", i);
  return buf;
}

// Star: r0(k, v) at the center, satellites r1..r{n-1}(k, w) each joined to
// the center on k. Satellites hold one row per key, so the answer size stays
// flat as sources are added — the planner's job, not the data's, grows.
void BuildStar(int n, Catalog* catalog, FederatedQuery* query) {
  Rng rng(kFedSeed + static_cast<uint64_t>(n));
  {
    Schema schema({{"k", ValueType::kString}, {"v", ValueType::kInt}});
    CapabilityBuilder builder("r0", schema);
    (void)builder.AddConjunctiveForm(
        "f",
        {{"v", {CompareOp::kLt}, true, false}, {"k", {CompareOp::kEq}, true, true}},
        {"k", "v"});
    (void)builder.AddDownload("dl", {"k", "v"});
    SourceDescription desc = builder.Build();
    desc.set_cost_constants(10.0, 1.0);
    auto table = std::make_unique<Table>("r0", schema);
    for (int i = 0; i < 400; ++i) {
      (void)table->AppendValues({Value::String(FedKey(rng, rng.NextInt(0, 63))),
                                 Value::Int(rng.NextInt(0, 999))});
    }
    (void)catalog->Register(std::move(desc), std::move(table));
  }
  query->sources = {"r0"};
  for (int s = 1; s < n; ++s) {
    const std::string name = "r" + std::to_string(s);
    Schema schema({{"k", ValueType::kString}, {"w", ValueType::kInt}});
    CapabilityBuilder builder(name, schema);
    (void)builder.AddConjunctiveForm(
        "f", {{"k", {CompareOp::kEq}, false, true}}, {"k", "w"});
    (void)builder.AddDownload("dl", {"k", "w"});
    SourceDescription desc = builder.Build();
    desc.set_cost_constants(5.0, 1.0);
    auto table = std::make_unique<Table>(name, schema);
    for (int i = 0; i < 64; ++i) {
      (void)table->AppendValues(
          {Value::String(FedKey(rng, i)), Value::Int(rng.NextInt(0, 999))});
    }
    (void)catalog->Register(std::move(desc), std::move(table));
    query->sources.push_back(name);
    query->keys.push_back({"r0.k", name + ".k"});
  }
  query->condition = *ParseCondition("r0.v < 100");
  query->select = {"r0.k", "r0.v"};
}

// Chain: r0 — r1 — ... — r{n-1}, each hop joining r_i.right to r_{i+1}.left
// over a shared 256-value link domain, one row per key on average.
void BuildChain(int n, Catalog* catalog, FederatedQuery* query) {
  Rng rng(kFedSeed * 31 + static_cast<uint64_t>(n));
  for (int s = 0; s < n; ++s) {
    const std::string name = "r" + std::to_string(s);
    Schema schema({{"left", ValueType::kString},
                   {"right", ValueType::kString},
                   {"v", ValueType::kInt}});
    CapabilityBuilder builder(name, schema);
    (void)builder.AddConjunctiveForm(
        "f",
        {{"v", {CompareOp::kLt}, true, false},
         {"left", {CompareOp::kEq}, true, true},
         {"right", {CompareOp::kEq}, true, true}},
        {"left", "right", "v"});
    (void)builder.AddDownload("dl", {"left", "right", "v"});
    SourceDescription desc = builder.Build();
    desc.set_cost_constants(10.0, 1.0);
    auto table = std::make_unique<Table>(name, schema);
    for (int i = 0; i < 256; ++i) {
      char left[16], right[16];
      std::snprintf(left, sizeof(left), "x%03d", rng.NextInt(0, 255));
      std::snprintf(right, sizeof(right), "x%03d", rng.NextInt(0, 255));
      (void)table->AppendValues({Value::String(left), Value::String(right),
                                 Value::Int(rng.NextInt(0, 999))});
    }
    (void)catalog->Register(std::move(desc), std::move(table));
    query->sources.push_back(name);
    if (s > 0) {
      query->keys.push_back(
          {"r" + std::to_string(s - 1) + ".right", name + ".left"});
    }
  }
  query->condition = *ParseCondition("r0.v < 100");
  query->select = {"r0.left", "r0.v"};
}

FedCell RunFedMode(Catalog* catalog, const FederatedQuery& query,
                   const std::string& topology, int n,
                   JoinEnumerator::Mode mode, const std::string& label) {
  FedCell cell;
  cell.topology = topology;
  cell.sources = n;
  cell.mode = label;

  std::vector<CatalogEntry*> entries;
  for (const std::string& name : query.sources) {
    entries.push_back(*catalog->Find(name));
  }
  FederationOptions options;
  options.enumerate.mode = mode;
  FederationProcessor processor(std::move(entries), options);

  const auto plan_start = std::chrono::steady_clock::now();
  const Result<FederationPlanOutcome> outcome = processor.Plan(query);
  cell.plan_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - plan_start)
                     .count();
  if (!outcome.ok()) return cell;
  cell.plan_cost = outcome->estimated_cost;
  cell.dp_subsets = outcome->enumeration.stats.subsets_expanded;
  cell.greedy_used = outcome->enumeration.stats.used_greedy;

  const auto exec_start = std::chrono::steady_clock::now();
  const Result<RowSet> rows = processor.Execute(query);
  cell.exec_ms = std::chrono::duration<double, std::milli>(
                     std::chrono::steady_clock::now() - exec_start)
                     .count();
  if (!rows.ok()) return cell;
  cell.feasible = true;
  cell.rows = rows->size();
  return cell;
}

void WriteFedJson(const std::vector<FedCell>& cells, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"join\",\n");
  std::fprintf(f, "  \"experiment\": \"E17\",\n");
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(kFedSeed));
  std::fprintf(f, "  \"cells\": [\n");
  for (size_t i = 0; i < cells.size(); ++i) {
    const FedCell& c = cells[i];
    std::fprintf(
        f,
        "    {\"topology\": \"%s\", \"sources\": %d, \"mode\": \"%s\", "
        "\"feasible\": %s, \"plan_cost\": %.3f, \"plan_ms\": %.3f, "
        "\"exec_ms\": %.3f, \"rows\": %zu, \"dp_subsets\": %zu, "
        "\"greedy_used\": %s}%s\n",
        c.topology.c_str(), c.sources, c.mode.c_str(),
        c.feasible ? "true" : "false", c.plan_cost, c.plan_ms, c.exec_ms,
        c.rows, c.dp_subsets, c.greedy_used ? "true" : "false",
        i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

bool RunE17() {
  const std::vector<int> widths = {8, 7, 9, 12, 10, 10, 8, 11};
  PrintRow({"topology", "sources", "mode", "plan cost", "plan ms", "exec ms",
            "rows", "dp subsets"},
           widths);
  PrintRule(widths);

  std::vector<FedCell> cells;
  bool dp_optimal = true;
  bool answers_agree = true;
  bool all_feasible = true;

  const struct {
    const char* name;
    void (*build)(int, Catalog*, FederatedQuery*);
  } kTopologies[] = {{"star", BuildStar}, {"chain", BuildChain}};
  const struct {
    JoinEnumerator::Mode mode;
    const char* label;
  } kModes[] = {{JoinEnumerator::Mode::kDp, "dp"},
                {JoinEnumerator::Mode::kGreedy, "greedy"},
                {JoinEnumerator::Mode::kLeftDeep, "leftdeep"}};

  for (const auto& topology : kTopologies) {
    for (const int n : {3, 5, 8}) {
      Catalog catalog;
      FederatedQuery query;
      topology.build(n, &catalog, &query);

      double dp_cost = 0.0;
      size_t dp_rows = 0;
      for (const auto& m : kModes) {
        FedCell cell =
            RunFedMode(&catalog, query, topology.name, n, m.mode, m.label);
        if (!cell.feasible) all_feasible = false;
        if (m.mode == JoinEnumerator::Mode::kDp) {
          dp_cost = cell.plan_cost;
          dp_rows = cell.rows;
        } else if (cell.feasible) {
          // DP is exact over the same cost model: a baseline beating it is
          // an enumerator regression, and the answer never depends on the
          // join order chosen.
          if (dp_cost > cell.plan_cost * (1.0 + 1e-9)) dp_optimal = false;
          if (cell.rows != dp_rows) answers_agree = false;
        }
        PrintRow({cell.topology, std::to_string(cell.sources), cell.mode,
                  FormatDouble(cell.plan_cost, 1),
                  FormatDouble(cell.plan_ms, 3), FormatDouble(cell.exec_ms, 3),
                  std::to_string(cell.rows), std::to_string(cell.dp_subsets)},
                 widths);
        cells.push_back(std::move(cell));
      }
      PrintRule(widths);
    }
  }

  std::printf("\nACCEPTANCE every mode plans and executes: %s\n",
              all_feasible ? "PASS" : "FAIL");
  std::printf("ACCEPTANCE DP cost <= greedy and left-deep cost: %s\n",
              dp_optimal ? "PASS" : "FAIL");
  std::printf("ACCEPTANCE all modes return the same answer: %s\n",
              answers_agree ? "PASS" : "FAIL");

  WriteFedJson(cells, "BENCH_join.json");
  return all_feasible && dp_optimal && answers_agree;
}

}  // namespace
}  // namespace gencompact::bench

int main() {
  std::printf(
      "# E9 (extension): bind-join vs independent right-side evaluation\n\n");
  gencompact::bench::Run();
  std::printf(
      "\nExpected shape: with a selective left side the bind-join moves a "
      "small fraction of the dealer directory and is chosen; as left "
      "selectivity vanishes the independent download becomes cheaper and "
      "the cost model switches methods.\n");
  std::printf("\n# E17: N-source federation planning (DP vs baselines)\n\n");
  const bool ok = gencompact::bench::RunE17();
  std::printf(
      "\nExpected shape: DP's modeled cost lower-bounds both baselines at "
      "every size; planning stays sub-millisecond through 8 sources while "
      "the baselines' plan quality drifts.\n");
  return ok ? 0 : 1;
}
