// E6 ("Fig 4"): supportability checking (Check / SSDL parsing) performance.
//
// Section 6.1's claim: "the parser still runs in time linear in the size of
// the condition expression, irrespective of the number of CFG rules in the
// source description". We benchmark Check over growing condition sizes and
// growing grammars (the commutativity closure multiplies rule counts), and
// report Earley items per token as the linearity witness.

#include <benchmark/benchmark.h>

#include "expr/condition.h"
#include "ssdl/capability_builder.h"
#include "ssdl/check.h"
#include "ssdl/closure.h"

namespace gencompact {
namespace {

Schema BenchSchema() {
  return Schema({{"a", ValueType::kString},
                 {"b", ValueType::kString},
                 {"n", ValueType::kInt}});
}

SourceDescription FullBooleanDescription() {
  const Schema schema = BenchSchema();
  CapabilityBuilder builder("src", schema);
  const Status status = builder.AddFullBoolean(
      "all",
      {{"a", {CompareOp::kEq}, false, false},
       {"b", {CompareOp::kEq}, false, false},
       {"n", {CompareOp::kEq, CompareOp::kLt, CompareOp::kGe}, false, false}},
      {"a", "b", "n"});
  (void)status;
  return builder.Build();
}

// Alternating ∧/∨ condition with `atoms` leaves.
ConditionPtr MakeCondition(size_t atoms) {
  std::vector<ConditionPtr> leaves;
  for (size_t i = 0; i < atoms; ++i) {
    leaves.push_back(ConditionNode::Atom(
        i % 3 == 0 ? "a" : (i % 3 == 1 ? "b" : "n"), CompareOp::kEq,
        i % 3 == 2 ? Value::Int(static_cast<int64_t>(i))
                   : Value::String("v" + std::to_string(i))));
  }
  // Pair up alternately to build a balanced alternating tree.
  bool use_and = true;
  while (leaves.size() > 1) {
    std::vector<ConditionPtr> next;
    for (size_t i = 0; i + 1 < leaves.size(); i += 2) {
      next.push_back(use_and
                         ? ConditionNode::And({leaves[i], leaves[i + 1]})
                         : ConditionNode::Or({leaves[i], leaves[i + 1]}));
    }
    if (leaves.size() % 2 == 1) next.push_back(leaves.back());
    leaves = std::move(next);
    use_and = !use_and;
  }
  return leaves.front();
}

void BM_CheckByConditionSize(benchmark::State& state) {
  const SourceDescription description = FullBooleanDescription();
  const ConditionPtr cond = MakeCondition(static_cast<size_t>(state.range(0)));
  const size_t tokens = TokenizeCondition(*cond).size();
  size_t items = 0;
  for (auto _ : state) {
    // Fresh checker each round: we measure parsing, not memoization.
    Checker checker(&description);
    benchmark::DoNotOptimize(checker.Check(*cond));
    items = checker.total_earley_items();
  }
  state.counters["tokens"] = static_cast<double>(tokens);
  state.counters["items_per_token"] =
      static_cast<double>(items) / static_cast<double>(tokens);
}
BENCHMARK(BM_CheckByConditionSize)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_CheckByGrammarSize(benchmark::State& state) {
  // Conjunctive-form description whose closure multiplies the rule count:
  // `segments` slots -> up to segments! permuted rules.
  const size_t segments = static_cast<size_t>(state.range(0));
  const Schema schema({{"a0", ValueType::kInt},
                       {"a1", ValueType::kInt},
                       {"a2", ValueType::kInt},
                       {"a3", ValueType::kInt},
                       {"a4", ValueType::kInt},
                       {"a5", ValueType::kInt}});
  CapabilityBuilder builder("src", schema);
  std::vector<CapabilityBuilder::Slot> slots;
  std::vector<std::string> names;
  for (size_t i = 0; i < segments; ++i) {
    slots.push_back({"a" + std::to_string(i), {CompareOp::kEq}, false, false});
    names.push_back("a" + std::to_string(i));
  }
  const Status status = builder.AddConjunctiveForm("f", slots, names);
  (void)status;
  const SourceDescription closed = CommutativityClosure(builder.Build());

  // The probe condition: the slots in reverse order (needs the closure).
  std::vector<ConditionPtr> atoms;
  for (size_t i = segments; i-- > 0;) {
    atoms.push_back(ConditionNode::Atom("a" + std::to_string(i),
                                        CompareOp::kEq, Value::Int(1)));
  }
  const ConditionPtr cond = atoms.size() == 1
                                ? atoms.front()
                                : ConditionNode::And(std::move(atoms));

  for (auto _ : state) {
    Checker checker(&closed);
    benchmark::DoNotOptimize(checker.Check(*cond));
  }
  state.counters["grammar_rules"] =
      static_cast<double>(closed.grammar().rules().size());
}
BENCHMARK(BM_CheckByGrammarSize)->DenseRange(1, 6)->Unit(benchmark::kMicrosecond);

void BM_CheckMemoized(benchmark::State& state) {
  const SourceDescription description = FullBooleanDescription();
  const ConditionPtr cond = MakeCondition(16);
  Checker checker(&description);
  checker.Check(*cond);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.Check(*cond));
  }
}
BENCHMARK(BM_CheckMemoized)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace gencompact

BENCHMARK_MAIN();
