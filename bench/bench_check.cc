// E6 ("Fig 4"): supportability checking (Check / SSDL parsing) performance.
//
// Section 6.1's claim: "the parser still runs in time linear in the size of
// the condition expression, irrespective of the number of CFG rules in the
// source description". We benchmark Check over growing condition sizes and
// growing grammars (the commutativity closure multiplies rule counts), and
// report Earley items per token as the linearity witness.

// E14 rides in the same binary: a recurring-workload experiment for the
// cross-query Check memo. A Zipf-distributed stream of recurring queries is
// planned cold (no second level — every recurrence re-parses because its
// interned ConditionId died with the previous occurrence) and warm (the
// fingerprint-keyed memo recognizes recurrences across condition lifetimes),
// writing BENCH_checkmemo.json with the warm-over-cold planning speedup.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "expr/condition.h"
#include "expr/condition_parser.h"
#include "planner/planner.h"
#include "planner/source_handle.h"
#include "ssdl/capability_builder.h"
#include "ssdl/check.h"
#include "ssdl/check_memo.h"
#include "ssdl/closure.h"
#include "storage/table.h"

namespace gencompact {
namespace {

Schema BenchSchema() {
  return Schema({{"a", ValueType::kString},
                 {"b", ValueType::kString},
                 {"n", ValueType::kInt}});
}

SourceDescription FullBooleanDescription() {
  const Schema schema = BenchSchema();
  CapabilityBuilder builder("src", schema);
  const Status status = builder.AddFullBoolean(
      "all",
      {{"a", {CompareOp::kEq}, false, false},
       {"b", {CompareOp::kEq}, false, false},
       {"n", {CompareOp::kEq, CompareOp::kLt, CompareOp::kGe}, false, false}},
      {"a", "b", "n"});
  (void)status;
  return builder.Build();
}

// Alternating ∧/∨ condition with `atoms` leaves.
ConditionPtr MakeCondition(size_t atoms) {
  std::vector<ConditionPtr> leaves;
  for (size_t i = 0; i < atoms; ++i) {
    leaves.push_back(ConditionNode::Atom(
        i % 3 == 0 ? "a" : (i % 3 == 1 ? "b" : "n"), CompareOp::kEq,
        i % 3 == 2 ? Value::Int(static_cast<int64_t>(i))
                   : Value::String("v" + std::to_string(i))));
  }
  // Pair up alternately to build a balanced alternating tree.
  bool use_and = true;
  while (leaves.size() > 1) {
    std::vector<ConditionPtr> next;
    for (size_t i = 0; i + 1 < leaves.size(); i += 2) {
      next.push_back(use_and
                         ? ConditionNode::And({leaves[i], leaves[i + 1]})
                         : ConditionNode::Or({leaves[i], leaves[i + 1]}));
    }
    if (leaves.size() % 2 == 1) next.push_back(leaves.back());
    leaves = std::move(next);
    use_and = !use_and;
  }
  return leaves.front();
}

void BM_CheckByConditionSize(benchmark::State& state) {
  const SourceDescription description = FullBooleanDescription();
  const ConditionPtr cond = MakeCondition(static_cast<size_t>(state.range(0)));
  const size_t tokens = TokenizeCondition(*cond).size();
  size_t items = 0;
  for (auto _ : state) {
    // Fresh checker each round: we measure parsing, not memoization.
    Checker checker(&description);
    benchmark::DoNotOptimize(checker.Check(*cond));
    items = checker.total_earley_items();
  }
  state.counters["tokens"] = static_cast<double>(tokens);
  state.counters["items_per_token"] =
      static_cast<double>(items) / static_cast<double>(tokens);
}
BENCHMARK(BM_CheckByConditionSize)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Unit(benchmark::kMicrosecond);

void BM_CheckByGrammarSize(benchmark::State& state) {
  // Conjunctive-form description whose closure multiplies the rule count:
  // `segments` slots -> up to segments! permuted rules.
  const size_t segments = static_cast<size_t>(state.range(0));
  const Schema schema({{"a0", ValueType::kInt},
                       {"a1", ValueType::kInt},
                       {"a2", ValueType::kInt},
                       {"a3", ValueType::kInt},
                       {"a4", ValueType::kInt},
                       {"a5", ValueType::kInt}});
  CapabilityBuilder builder("src", schema);
  std::vector<CapabilityBuilder::Slot> slots;
  std::vector<std::string> names;
  for (size_t i = 0; i < segments; ++i) {
    slots.push_back({"a" + std::to_string(i), {CompareOp::kEq}, false, false});
    names.push_back("a" + std::to_string(i));
  }
  const Status status = builder.AddConjunctiveForm("f", slots, names);
  (void)status;
  const SourceDescription closed = CommutativityClosure(builder.Build());

  // The probe condition: the slots in reverse order (needs the closure).
  std::vector<ConditionPtr> atoms;
  for (size_t i = segments; i-- > 0;) {
    atoms.push_back(ConditionNode::Atom("a" + std::to_string(i),
                                        CompareOp::kEq, Value::Int(1)));
  }
  const ConditionPtr cond = atoms.size() == 1
                                ? atoms.front()
                                : ConditionNode::And(std::move(atoms));

  for (auto _ : state) {
    Checker checker(&closed);
    benchmark::DoNotOptimize(checker.Check(*cond));
  }
  state.counters["grammar_rules"] =
      static_cast<double>(closed.grammar().rules().size());
}
BENCHMARK(BM_CheckByGrammarSize)->DenseRange(1, 6)->Unit(benchmark::kMicrosecond);

void BM_CheckMemoized(benchmark::State& state) {
  const SourceDescription description = FullBooleanDescription();
  const ConditionPtr cond = MakeCondition(16);
  Checker checker(&description);
  checker.Check(*cond);  // warm
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.Check(*cond));
  }
}
BENCHMARK(BM_CheckMemoized)->Unit(benchmark::kNanosecond);

}  // namespace

// ---------------------------------------------------------------------------
// E14: cold vs warm planning over a recurring Zipf workload.

namespace bench_memo {
namespace {

constexpr size_t kSegments = 6;       // closure: 6! = 720 permuted rules
constexpr size_t kDistinctQueries = 64;
constexpr size_t kDraws = 600;
constexpr double kZipfS = 1.1;

uint64_t SplitMix(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

Schema MemoSchema() {
  std::vector<AttributeDef> attrs;
  for (size_t i = 0; i < kSegments; ++i) {
    attrs.push_back({"a" + std::to_string(i), ValueType::kInt});
  }
  return Schema(attrs);
}

// Conjunctive-form description whose commutativity closure makes Check the
// dominant planning cost — the regime the memo targets.
SourceDescription ClosedDescription() {
  const Schema schema = MemoSchema();
  CapabilityBuilder builder("src", schema);
  std::vector<CapabilityBuilder::Slot> slots;
  std::vector<std::string> names;
  for (size_t i = 0; i < kSegments; ++i) {
    slots.push_back({"a" + std::to_string(i), {CompareOp::kEq}, false, false});
    names.push_back("a" + std::to_string(i));
  }
  const Status status = builder.AddConjunctiveForm("f", slots, names);
  (void)status;
  return CommutativityClosure(builder.Build());
}

// Distinct query texts: every query binds all segments, with rotated atom
// order (each rotation is a different structure, supportable only through
// the closure) and distinct constants (distinct fingerprints).
std::vector<std::string> QueryTexts() {
  std::vector<std::string> texts;
  for (size_t q = 0; q < kDistinctQueries; ++q) {
    std::string text;
    for (size_t i = 0; i < kSegments; ++i) {
      const size_t attr = (i + q) % kSegments;
      if (!text.empty()) text += " and ";
      text += "a" + std::to_string(attr) + " = " +
              std::to_string(static_cast<unsigned long long>(q * 7 + attr));
    }
    texts.push_back(std::move(text));
  }
  return texts;
}

// Zipf(s) draw sequence over the query ranks, deterministic by seed.
std::vector<size_t> ZipfDraws() {
  std::vector<double> cdf(kDistinctQueries);
  double total = 0.0;
  for (size_t rank = 0; rank < kDistinctQueries; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank + 1), kZipfS);
    cdf[rank] = total;
  }
  uint64_t rng = 20260806ull;
  std::vector<size_t> draws;
  draws.reserve(kDraws);
  for (size_t i = 0; i < kDraws; ++i) {
    const double u =
        total * (static_cast<double>(SplitMix(&rng) >> 11) * 0x1p-53);
    const size_t pick = static_cast<size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    draws.push_back(pick < kDistinctQueries ? pick : kDistinctQueries - 1);
  }
  return draws;
}

struct MemoRun {
  const char* name;
  size_t memo_capacity;
  double verify_rate;
  double seconds = 0.0;
  double mean_us = 0.0;
  size_t plans_ok = 0;
  CheckMemo::Stats memo;
};

void RunConfig(const SourceDescription& description, const Table& table,
               const std::vector<std::string>& texts,
               const std::vector<size_t>& draws, MemoRun* run) {
  SourceHandle handle(description, &table,
                      /*apply_commutativity_closure=*/false);  // pre-closed
  std::unique_ptr<CheckMemo> memo;
  if (run->memo_capacity > 0) {
    memo = std::make_unique<CheckMemo>(run->memo_capacity, /*shards=*/8,
                                       run->verify_rate);
    handle.checker()->EnableSharedMemo(memo.get(), /*source_id=*/0,
                                       /*epoch=*/0);
  }
  const std::unique_ptr<PlannerStrategy> planner =
      MakePlanner(Strategy::kGenCompact, &handle);
  AttributeSet attrs;
  attrs.Add(0);
  attrs.Add(1);

  const auto start = std::chrono::steady_clock::now();
  for (const size_t pick : draws) {
    // Each recurrence is re-parsed and dropped, exactly like a query whose
    // cached plan was evicted: the interned id dies, the structure recurs.
    const Result<ConditionPtr> cond = ParseCondition(texts[pick]);
    if (!cond.ok()) continue;
    const Result<PlanPtr> plan = planner->Plan(*cond, attrs);
    if (plan.ok()) ++run->plans_ok;
  }
  const auto end = std::chrono::steady_clock::now();
  run->seconds = std::chrono::duration<double>(end - start).count();
  run->mean_us = run->seconds * 1e6 / static_cast<double>(draws.size());
  if (memo != nullptr) run->memo = memo->stats();
}

void WriteJson(const std::vector<MemoRun>& runs, size_t grammar_rules,
               double warm_speedup, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"check_memo\",\n");
  std::fprintf(f, "  \"distinct_queries\": %zu,\n", kDistinctQueries);
  std::fprintf(f, "  \"draws\": %zu,\n", kDraws);
  std::fprintf(f, "  \"zipf_s\": %.2f,\n", kZipfS);
  std::fprintf(f, "  \"grammar_rules\": %zu,\n", grammar_rules);
  std::fprintf(f, "  \"configs\": [\n");
  for (size_t i = 0; i < runs.size(); ++i) {
    const MemoRun& r = runs[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"memo_capacity\": %zu, "
                 "\"verify_rate\": %.2f, \"seconds\": %.4f, "
                 "\"mean_us_per_query\": %.1f, \"plans_ok\": %zu, "
                 "\"l2_hits\": %zu, \"l2_hit_rate\": %.3f, "
                 "\"verified_hits\": %zu, \"verify_mismatches\": %zu}%s\n",
                 r.name, r.memo_capacity, r.verify_rate, r.seconds, r.mean_us,
                 r.plans_ok, r.memo.hits, r.memo.hit_rate, r.memo.verified_hits,
                 r.memo.verify_mismatches, i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"warm_speedup\": %.2f\n}\n", warm_speedup);
  std::fclose(f);
}

void Run() {
  const SourceDescription description = ClosedDescription();
  const Schema schema = MemoSchema();
  Table table("src", schema);
  for (int64_t row = 0; row < 8; ++row) {
    std::vector<Value> values;
    for (size_t i = 0; i < kSegments; ++i) {
      values.push_back(Value::Int(row * 7 + static_cast<int64_t>(i)));
    }
    (void)table.AppendValues(values);
  }
  const std::vector<std::string> texts = QueryTexts();
  const std::vector<size_t> draws = ZipfDraws();

  std::vector<MemoRun> runs = {
      {"cold", /*memo_capacity=*/0, /*verify_rate=*/0.0},
      {"warm", /*memo_capacity=*/4096, /*verify_rate=*/0.0},
      {"warm_verify_all", /*memo_capacity=*/4096, /*verify_rate=*/1.0},
  };
  std::printf(
      "\nE14: recurring Zipf workload (%zu draws over %zu distinct queries, "
      "s=%.1f), grammar %zu rules\n",
      kDraws, kDistinctQueries, kZipfS,
      description.grammar().rules().size());
  std::printf("%-18s %10s %14s %10s %10s\n", "config", "seconds", "us/query",
              "l2_hits", "hit_rate");
  for (MemoRun& run : runs) {
    RunConfig(description, table, texts, draws, &run);
    std::printf("%-18s %10.4f %14.1f %10zu %10.3f\n", run.name, run.seconds,
                run.mean_us, run.memo.hits, run.memo.hit_rate);
  }

  const double warm_speedup =
      runs[1].seconds > 0.0 ? runs[0].seconds / runs[1].seconds : 0.0;
  std::printf("\nacceptance: warm-over-cold planning speedup %.2fx "
              "(need >= 2x) -> %s\n",
              warm_speedup, warm_speedup >= 2.0 ? "PASS" : "FAIL");
  if (runs[2].memo.verify_mismatches != 0) {
    std::printf("WARNING: %zu verify mismatches in warm_verify_all\n",
                runs[2].memo.verify_mismatches);
  }
  WriteJson(runs, description.grammar().rules().size(), warm_speedup,
            "BENCH_checkmemo.json");
}

}  // namespace
}  // namespace bench_memo
}  // namespace gencompact

int main(int argc, char** argv) {
  gencompact::bench_memo::Run();  // E14, writes BENCH_checkmemo.json
  benchmark::Initialize(&argc, argv);  // E6 microbenchmarks below
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
