// Multi-client mediator throughput under simulated Internet latency.
//
// M client threads replay a Zipf-skewed workload of feasible target queries
// against one shared Mediator whose sources charge a per-query round-trip
// latency (the k1 of Equation 1 made wall-clock real). Reported per client
// count: queries/sec, p50/p99 latency, and plan-cache hit rate — the
// concurrency counterpart of the paper's cost-model experiments. Results are
// also emitted as BENCH_throughput.json for tooling.
//
// Expected shape: queries/sec scales near-linearly with client threads
// (clients sleep on independent simulated round trips concurrently), and
// the executor's parallel Union/Intersection dispatch pushes per-query p50
// below the sum of its sub-queries' latencies.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "mediator/mediator.h"
#include "workload/datasets.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"
#include "workload/zipf.h"

namespace gencompact::bench {
namespace {

constexpr size_t kSourceRows = 2000;
constexpr size_t kDistinctQueries = 48;
constexpr size_t kQueriesPerThread = 240;
constexpr double kZipfSkew = 1.1;
constexpr std::chrono::microseconds kSourceLatency{1000};  // 1ms round trip
constexpr size_t kExecutorThreads = 8;
constexpr size_t kCacheShards = 16;

Schema BenchSchema() {
  return Schema({{"s1", ValueType::kString},
                 {"s2", ValueType::kString},
                 {"s3", ValueType::kString},
                 {"n1", ValueType::kInt},
                 {"n2", ValueType::kInt}});
}

/// One replayable target query.
struct WorkItem {
  ConditionPtr condition;
  std::vector<std::string> attrs;
};

struct Config {
  size_t client_threads = 1;
  double seconds = 0;
  double qps = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double cache_hit_rate = 0;
  size_t queries = 0;
  size_t errors = 0;
};

double PercentileMs(std::vector<double>* latencies_ms, double p) {
  if (latencies_ms->empty()) return 0;
  std::sort(latencies_ms->begin(), latencies_ms->end());
  const size_t index = std::min(
      latencies_ms->size() - 1,
      static_cast<size_t>(p * static_cast<double>(latencies_ms->size())));
  return (*latencies_ms)[index];
}

/// Builds a fresh mediator with one random-capability source plus a workload
/// of `kDistinctQueries` feasible queries against it.
struct Environment {
  std::unique_ptr<Mediator> mediator;
  std::vector<WorkItem> workload;
};

Environment MakeEnvironment(uint64_t seed) {
  Environment env;
  Rng rng(seed);
  const Schema schema = BenchSchema();
  std::unique_ptr<Table> table =
      MakeRandomTable("src", schema, kSourceRows, 16, 100, &rng);
  RandomCapabilityOptions cap_options;
  cap_options.download_probability = 0.2;
  const SourceDescription description =
      RandomCapability("src", schema, cap_options, &rng);
  const std::vector<AttributeDomain> domains = ExtractDomains(*table, 6, &rng);

  Mediator::Options options;
  options.num_threads = kExecutorThreads;
  options.cache_shards = kCacheShards;
  env.mediator = std::make_unique<Mediator>(options);
  if (!env.mediator->RegisterSource(description, std::move(table)).ok()) {
    return env;
  }

  // Generate feasible queries only: clients replay real, answerable traffic.
  while (env.workload.size() < kDistinctQueries) {
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 2 + rng.NextIndex(4);
    WorkItem item;
    item.condition = RandomCondition(domains, cond_options, &rng);
    item.attrs = {
        schema.attribute(static_cast<int>(rng.NextIndex(schema.num_attributes())))
            .name};
    const Result<Mediator::QueryResult> probe = env.mediator->QueryCondition(
        "src", item.condition, item.attrs, Strategy::kGenCompact);
    if (!probe.ok()) continue;
    env.workload.push_back(std::move(item));
  }
  return env;
}

Config RunConfig(size_t client_threads, uint64_t seed) {
  Environment env = MakeEnvironment(seed);
  Config config;
  config.client_threads = client_threads;
  if (env.workload.empty()) return config;

  // Latency is injected after workload generation so the feasibility probes
  // above stay fast; every measured query pays the round trip.
  {
    const Result<CatalogEntry*> entry = env.mediator->catalog()->Find("src");
    if (!entry.ok()) return config;
    (*entry)->source()->set_simulated_latency(kSourceLatency);
  }

  const ZipfSampler zipf(env.workload.size(), kZipfSkew);
  std::vector<std::vector<double>> latencies_ms(client_threads);
  std::vector<size_t> errors(client_threads, 0);

  const Mediator::Stats before = env.mediator->StatsSnapshot();
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(client_threads);
  for (size_t t = 0; t < client_threads; ++t) {
    clients.emplace_back([t, seed, &env, &zipf, &latencies_ms, &errors]() {
      Rng thread_rng(seed * 7919 + t);
      latencies_ms[t].reserve(kQueriesPerThread);
      for (size_t q = 0; q < kQueriesPerThread; ++q) {
        const WorkItem& item = env.workload[zipf.Sample(&thread_rng)];
        const auto q_start = std::chrono::steady_clock::now();
        const Result<Mediator::QueryResult> result =
            env.mediator->QueryCondition("src", item.condition, item.attrs,
                                         Strategy::kGenCompact);
        const double ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - q_start)
                              .count();
        if (result.ok()) {
          latencies_ms[t].push_back(ms);
        } else {
          ++errors[t];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  config.seconds = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();

  std::vector<double> all_ms;
  for (size_t t = 0; t < client_threads; ++t) {
    all_ms.insert(all_ms.end(), latencies_ms[t].begin(), latencies_ms[t].end());
    config.errors += errors[t];
  }
  config.queries = all_ms.size();
  config.qps = config.seconds > 0
                   ? static_cast<double>(config.queries) / config.seconds
                   : 0;
  config.p50_ms = PercentileMs(&all_ms, 0.50);
  config.p99_ms = PercentileMs(&all_ms, 0.99);
  config.cache_hit_rate = env.mediator->plan_cache().hit_rate();

  // The mediator-wide observability snapshot for the largest configuration:
  // interner pool growth, memo efficacy, per-source counters in one read —
  // plus the measured interval rendered as rates (qps, hit rates) via
  // DiffSince, the same diff path operators would use between two scrapes.
  if (client_threads >= 8) {
    const Mediator::Stats after = env.mediator->StatsSnapshot();
    std::printf("\n--- interval rates (%zu clients, measured phase) ---\n%s",
                client_threads, after.DiffSince(before).ToString().c_str());
    std::printf("--- mediator stats snapshot (%zu clients) ---\n%s\n",
                client_threads, after.ToString().c_str());
  }
  return config;
}

void WriteJson(const std::vector<Config>& configs, const char* path) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::printf("WARNING: could not open %s for writing\n", path);
    return;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"throughput\",\n");
  std::fprintf(f, "  \"source_latency_us\": %lld,\n",
               static_cast<long long>(kSourceLatency.count()));
  std::fprintf(f, "  \"distinct_queries\": %zu,\n", kDistinctQueries);
  std::fprintf(f, "  \"zipf_skew\": %.2f,\n", kZipfSkew);
  std::fprintf(f, "  \"executor_threads\": %zu,\n", kExecutorThreads);
  std::fprintf(f, "  \"cache_shards\": %zu,\n", kCacheShards);
  std::fprintf(f, "  \"configs\": [\n");
  for (size_t i = 0; i < configs.size(); ++i) {
    const Config& c = configs[i];
    std::fprintf(f,
                 "    {\"client_threads\": %zu, \"queries\": %zu, "
                 "\"errors\": %zu, \"seconds\": %.4f, \"qps\": %.1f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, "
                 "\"cache_hit_rate\": %.4f}%s\n",
                 c.client_threads, c.queries, c.errors, c.seconds, c.qps,
                 c.p50_ms, c.p99_ms, c.cache_hit_rate,
                 i + 1 < configs.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", path);
}

void Run() {
  const std::vector<size_t> thread_counts = {1, 4, 8};
  std::vector<Config> configs;
  for (const size_t threads : thread_counts) {
    configs.push_back(RunConfig(threads, /*seed=*/42));
  }

  const std::vector<int> widths = {8, 9, 10, 9, 9, 9, 7};
  PrintRow({"clients", "queries", "qps", "p50 ms", "p99 ms", "hit rate",
            "errors"},
           widths);
  PrintRule(widths);
  for (const Config& c : configs) {
    PrintRow({std::to_string(c.client_threads), std::to_string(c.queries),
              FormatDouble(c.qps, 1), FormatDouble(c.p50_ms, 2),
              FormatDouble(c.p99_ms, 2), FormatDouble(c.cache_hit_rate, 3),
              std::to_string(c.errors)},
             widths);
  }
  if (configs.size() >= 2 && configs.front().qps > 0) {
    std::printf("\nscaling: %.2fx queries/sec at %zu clients vs 1 client\n",
                configs.back().qps / configs.front().qps,
                configs.back().client_threads);
  }
  WriteJson(configs, "BENCH_throughput.json");
}

}  // namespace
}  // namespace gencompact::bench

int main() {
  std::printf(
      "# Throughput: concurrent clients vs one shared mediator "
      "(simulated %lldus source round trip)\n\n",
      static_cast<long long>(gencompact::bench::kSourceLatency.count()));
  gencompact::bench::Run();
  std::printf(
      "\nExpected shape: near-linear qps scaling with clients (independent "
      "round trips overlap), high cache hit rate from the Zipf skew.\n");
  return 0;
}
