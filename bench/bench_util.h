#ifndef GENCOMPACT_BENCH_BENCH_UTIL_H_
#define GENCOMPACT_BENCH_BENCH_UTIL_H_

// Shared helpers for the experiment binaries: a markdown-ish table printer
// and a strategy runner that plans + executes + collects transfer stats.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "plan/plan_validator.h"
#include "planner/planner.h"

namespace gencompact::bench {

/// Prints a fixed-width table row.
inline void PrintRow(const std::vector<std::string>& cells,
                     const std::vector<int>& widths) {
  std::string line = "|";
  for (size_t i = 0; i < cells.size(); ++i) {
    const int width = i < widths.size() ? widths[i] : 12;
    char buf[256];
    std::snprintf(buf, sizeof(buf), " %-*s |", width, cells[i].c_str());
    line += buf;
  }
  std::printf("%s\n", line.c_str());
}

inline void PrintRule(const std::vector<int>& widths) {
  std::string line = "|";
  for (int width : widths) {
    line += std::string(static_cast<size_t>(width) + 2, '-');
    line += "|";
  }
  std::printf("%s\n", line.c_str());
}

inline std::string FormatDouble(double v, int precision = 1) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

/// Outcome of planning + executing one target query with one strategy.
struct StrategyOutcome {
  bool feasible = false;
  bool rejected_at_source = false;  ///< naive baseline hitting enforcement
  size_t source_queries = 0;
  uint64_t rows_transferred = 0;
  size_t result_rows = 0;
  double estimated_cost = 0.0;
  double true_cost = 0.0;
  double planning_micros = 0.0;
};

inline StrategyOutcome RunStrategy(Strategy strategy, SourceHandle* handle,
                                   Source* source, const ConditionPtr& cond,
                                   const AttributeSet& attrs) {
  StrategyOutcome outcome;
  const std::unique_ptr<PlannerStrategy> planner = MakePlanner(strategy, handle);
  const auto start = std::chrono::steady_clock::now();
  const Result<PlanPtr> plan = planner->Plan(cond, attrs);
  outcome.planning_micros =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start)
          .count();
  if (!plan.ok()) return outcome;
  Executor executor(source);
  const Result<RowSet> rows = executor.Execute(**plan);
  if (!rows.ok()) {
    outcome.rejected_at_source = true;
    return outcome;
  }
  outcome.feasible = true;
  outcome.source_queries = executor.stats().source_queries;
  outcome.rows_transferred = executor.stats().rows_transferred;
  outcome.result_rows = rows->size();
  outcome.estimated_cost = handle->cost_model().PlanCost(**plan);
  const SourceDescription& description = handle->description();
  outcome.true_cost =
      executor.stats().TrueCost(description.k1(), description.k2());
  return outcome;
}

}  // namespace gencompact::bench

#endif  // GENCOMPACT_BENCH_BENCH_UTIL_H_
