// E8 ("Fig 5"): Minimum-Cost Set Cover solver scaling.
//
// Section 6.4.2: MCSC is NP-complete; the paper enumerates all 2^Q sub-plan
// subsets and relies on PR2/PR3 to keep Q small. We benchmark the paper's
// enumeration against our subset-DP (exact, O(2^k·Q)) and the greedy
// fallback, over random instances.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "planner/set_cover.h"

namespace gencompact {
namespace {

std::vector<SetCoverCandidate> MakeInstance(size_t k, size_t q, Rng* rng) {
  const uint32_t universe = (uint32_t{1} << k) - 1;
  std::vector<SetCoverCandidate> candidates;
  candidates.reserve(q);
  // Guarantee coverability: singletons first.
  for (size_t i = 0; i < k && candidates.size() < q; ++i) {
    candidates.push_back({uint32_t{1} << i,
                          1.0 + static_cast<double>(rng->NextBelow(50)) / 10});
  }
  while (candidates.size() < q) {
    candidates.push_back({1 + static_cast<uint32_t>(rng->NextBelow(universe)),
                          1.0 + static_cast<double>(rng->NextBelow(100)) / 10});
  }
  return candidates;
}

void RunSolver(benchmark::State& state, SetCoverAlgorithm algorithm) {
  const size_t k = static_cast<size_t>(state.range(0));
  const size_t q = static_cast<size_t>(state.range(1));
  Rng rng(k * 1000 + q);
  const std::vector<SetCoverCandidate> candidates = MakeInstance(k, q, &rng);
  const uint32_t universe = (uint32_t{1} << k) - 1;
  double cost = 0;
  for (auto _ : state) {
    const SetCoverResult result =
        SolveMinCostSetCover(universe, candidates, algorithm);
    benchmark::DoNotOptimize(result);
    cost = result.cost;
  }
  state.counters["cover_cost"] = cost;
}

void BM_McscSubsetDp(benchmark::State& state) {
  RunSolver(state, SetCoverAlgorithm::kSubsetDp);
}
void BM_McscEnumerate(benchmark::State& state) {
  RunSolver(state, SetCoverAlgorithm::kEnumerate);
}
void BM_McscGreedy(benchmark::State& state) {
  RunSolver(state, SetCoverAlgorithm::kGreedy);
}

// Args: {universe size k, candidate count Q}.
static void InstanceShapes(benchmark::internal::Benchmark* b) {
  for (int k : {4, 6, 8}) {
    for (int q : {6, 10, 14, 18, 22}) {
      b->Args({k, q});
    }
  }
}

BENCHMARK(BM_McscSubsetDp)->Apply(InstanceShapes)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_McscEnumerate)->Apply(InstanceShapes)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_McscGreedy)->Apply(InstanceShapes)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace gencompact

BENCHMARK_MAIN();
