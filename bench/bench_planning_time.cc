// E3 ("Fig 2"): plan-generation efficiency — GenCompact vs GenModular.
//
// The paper's claim: GenCompact generates the same plans as GenModular but
// is far more efficient, because it avoids the rewrite-space explosion
// (commutativity folded into the description closure; associativity and
// copy absorbed by IPG). Wall-clock per Plan() call, same target query.

#include <benchmark/benchmark.h>

#include <optional>

#include "expr/intern.h"
#include "planner/gen_compact.h"
#include "planner/gen_modular.h"
#include "workload/datasets.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact {
namespace {

struct Env {
  std::unique_ptr<Table> table;
  SourceDescription description{"src", Schema{}};
  std::unique_ptr<SourceHandle> handle;
  ConditionPtr condition;
  AttributeSet attrs;

  explicit Env(size_t atoms) {
    Rng rng(9000 + atoms);
    const Schema schema({{"s1", ValueType::kString},
                         {"s2", ValueType::kString},
                         {"n1", ValueType::kInt},
                         {"n2", ValueType::kInt}});
    table = MakeRandomTable("src", schema, 1000, 12, 60, &rng);
    RandomCapabilityOptions cap_options;
    cap_options.download_probability = 1.0;  // every query plannable
    description = RandomCapability("src", schema, cap_options, &rng);
    handle = std::make_unique<SourceHandle>(description, table.get());
    const std::vector<AttributeDomain> domains = ExtractDomains(*table, 6, &rng);
    RandomConditionOptions cond_options;
    cond_options.num_atoms = atoms;
    condition = RandomCondition(domains, cond_options, &rng);
    attrs.Add(0);
    attrs.Add(2);
  }
};

void BM_GenCompact(benchmark::State& state) {
  Env env(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    GenCompactPlanner planner(env.handle.get());
    benchmark::DoNotOptimize(planner.Plan(env.condition, env.attrs));
  }
}
BENCHMARK(BM_GenCompact)->DenseRange(2, 9)->Unit(benchmark::kMicrosecond);

// Hash-consing ablation: the same GenCompact planning workload with the
// condition interner on (arg 1 = 1) vs off (arg 1 = 0, fresh uniquely-id'd
// nodes per construction). With interning off, the (ConditionId, attrs)
// memo tables in IPG/EPG and the Checker degrade to per-object behavior —
// structurally equal sub-conditions produced by the rewrite no longer
// share planning work — which is exactly the tax the interner removes.
// Compare rows pairwise per atom count: interning/N/1 vs interning/N/0.
void BM_GenCompactInterning(benchmark::State& state) {
  const bool interning_on = state.range(1) == 1;
  std::optional<ScopedInterningDisabled> off;
  if (!interning_on) off.emplace();
  Env env(static_cast<size_t>(state.range(0)));
  const ConditionInterner::Stats before = ConditionInterner::Global().stats();
  for (auto _ : state) {
    GenCompactPlanner planner(env.handle.get());
    benchmark::DoNotOptimize(planner.Plan(env.condition, env.attrs));
  }
  const ConditionInterner::Stats after = ConditionInterner::Global().stats();
  state.counters["interning"] = interning_on ? 1 : 0;
  state.counters["pool_hits"] = static_cast<double>(after.hits - before.hits);
  state.counters["plans_per_sec"] = benchmark::Counter(
      static_cast<double>(state.iterations()), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_GenCompactInterning)
    ->ArgsProduct({benchmark::CreateDenseRange(6, 10, /*step=*/1), {1, 0}})
    ->Unit(benchmark::kMicrosecond);

void BM_GenModular(benchmark::State& state) {
  Env env(static_cast<size_t>(state.range(0)));
  // Large rewrite budget so GenModular actually explores its space (the
  // default budget would silently truncate the search and look "fast"
  // while missing plans). `budget_hit=1` marks sizes where even 20k CTs
  // was not enough to close the rewrite space.
  GenModularOptions options;
  options.rewrite.max_cts = 20000;
  bool budget_hit = false;
  double cts = 0;
  for (auto _ : state) {
    GenModularPlanner planner(env.handle.get(), options);
    benchmark::DoNotOptimize(planner.Plan(env.condition, env.attrs));
    budget_hit = planner.stats().rewrite_budget_exhausted;
    cts = static_cast<double>(planner.stats().num_cts);
  }
  state.counters["CTs"] = cts;
  state.counters["budget_hit"] = budget_hit ? 1 : 0;
}
// GenModular's rewrite closure explodes; 6+ atoms take minutes even with
// the truncating budget.
BENCHMARK(BM_GenModular)->DenseRange(2, 5)->Unit(benchmark::kMicrosecond);

// The number of CTs each scheme examines (complexity counter, reported as
// an iteration-invariant metric).
void BM_RewriteSpaceCts(benchmark::State& state) {
  Env env(static_cast<size_t>(state.range(0)));
  size_t gm_cts = 0;
  size_t gc_cts = 0;
  for (auto _ : state) {
    GenModularPlanner gm(env.handle.get());
    benchmark::DoNotOptimize(gm.Plan(env.condition, env.attrs));
    gm_cts = gm.stats().num_cts;
    GenCompactPlanner gc(env.handle.get());
    benchmark::DoNotOptimize(gc.Plan(env.condition, env.attrs));
    gc_cts = gc.stats().num_cts;
  }
  state.counters["GenModular_CTs"] = static_cast<double>(gm_cts);
  state.counters["GenCompact_CTs"] = static_cast<double>(gc_cts);
}
BENCHMARK(BM_RewriteSpaceCts)->DenseRange(2, 6)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace gencompact

BENCHMARK_MAIN();
