#!/usr/bin/env bash
# CI entry point: Release build + full test suite, then the seeded
# differential harness replayed over a small seed matrix (the default 439
# that gates commits plus four fresh bases — GENCOMPACT_TEST_SEED reseeds
# the random capability/query generators, so each base is a brand-new set of
# planner-equivalence, Choice-resolution, row-vs-batch data-plane parity,
# bounded-source paging/truncation, join-order-enumeration oracle, and
# multi-source federation answer-equivalence cases), then a ThreadSanitizer
# build running the concurrency tests (thread pool, sharded plan cache,
# condition interner, cross-query Check memo, parallel executor, concurrent
# mediator clients, hedge races), then an AddressSanitizer pass over the
# interner hammer (the weak-entry pool must hold nothing alive: leak check)
# and the fault / hedging / differential suites. A dedicated
# GENCOMPACT_CHECK_VERIFY=1 leg re-runs the mediator, differential, fuzz,
# and memo suites with the shared Check memo at 100% verify-on-hit: every
# single second-level hit is re-checked against a fresh Earley run, and one
# mismatch anywhere fails the leg.
#
# Usage: scripts/ci.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "=== Release build + full ctest ==="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${PREFIX}-release" -j "${JOBS}"
ctest --test-dir "${PREFIX}-release" --output-on-failure -j "${JOBS}"

echo "=== Differential harness seed matrix ==="
for seed in 439 1009 2027 4391 9001; do
  echo "--- GENCOMPACT_TEST_SEED=${seed} ---"
  GENCOMPACT_TEST_SEED="${seed}" \
    "${PREFIX}-release/tests/gencompact_tests" \
    --gtest_filter='Seeds/DifferentialTest*:Seeds/CheckFuzzTest*:Seeds/BatchParityTest*:BoundedFuzzTest*:JoinEnum*:JoinFuzzTest*:Seeds/AsyncParityTest*' \
    --gtest_brief=1
done

echo "=== Check-memo 100% verify-on-hit leg ==="
GENCOMPACT_CHECK_VERIFY=1 \
  "${PREFIX}-release/tests/gencompact_tests" \
  --gtest_filter='MediatorFixture*:MediatorCheckMemo*:MediatorConcurrency*:Seeds/DifferentialTest*:Seeds/CheckFuzzTest*:CheckMemo*:ConditionIntern*' \
  --gtest_brief=1

echo "=== ThreadSanitizer build + concurrency tests ==="
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGENCOMPACT_SANITIZE=thread
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target gencompact_tests
"${PREFIX}-tsan/tests/gencompact_tests" --gtest_filter='ThreadPool*:PlanCacheConcurrency*:MediatorConcurrency*:ConditionInternHammer*:CheckMemo*:ExecFixture.Parallel*:ExecFixture.Duplicate*:ExecFixture.Concurrent*:FaultInjector*:CircuitBreaker*:FaultExec*:MediatorFault*:FaultAcceptance*:HedgeFixture*:LatencyTracker*:P2Quantile*:JoinFailover*:BatchConcurrency*:Bounded*:Federation*:JoinFuzzTest*:EventLoop*:InflightLimiter*:AdmissionController*:AdaptiveHedge*:AsyncExec*:AsyncMediator*:JoinDeadline*'

echo "=== AddressSanitizer build + interner hammer (leak check) + fault suite ==="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGENCOMPACT_SANITIZE=address
cmake --build "${PREFIX}-asan" -j "${JOBS}" --target gencompact_tests
"${PREFIX}-asan/tests/gencompact_tests" --gtest_filter='ConditionIntern*:CheckMemo*:PlanCache*:Fault*:CircuitBreaker*:MediatorFault*:HedgeFixture*:LatencyTracker*:P2Quantile*:JoinFailover*:Seeds/DifferentialTest*:Seeds/CheckFuzzTest*:Seeds/BatchParityTest*:Batch*:ColumnStore*:WireFormat*:RowHash*:Bounded*:JoinEnum*:JoinFuzzTest*:Federation*:EventLoop*:InflightLimiter*:AdmissionController*:AdaptiveHedge*:AsyncExec*:AsyncMediator*:SyncDeadline*:Seeds/AsyncParityTest*'

echo "=== Fault-sweep bench smoke (writes BENCH_fault.json) ==="
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_fault_sweep
"${PREFIX}-release/bench/bench_fault_sweep"

echo "=== Hedging bench smoke (writes BENCH_hedge.json) ==="
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_hedging
"${PREFIX}-release/bench/bench_hedging"

echo "=== Check-memo bench smoke (writes BENCH_checkmemo.json) ==="
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_check
# The empty filter skips the E6 microbenchmarks; the E14 Zipf cold/warm
# comparison (and its >= 2x warm-speedup acceptance print) always runs.
"${PREFIX}-release/bench/bench_check" --benchmark_filter='^$'

echo "=== Scan bench smoke (writes BENCH_scan.json) ==="
# E15: exits non-zero unless the large-transfer workload's best batched
# width is >= 4x the row path and throughput holds up as the width grows.
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_scan
"${PREFIX}-release/bench/bench_scan"

echo "=== Bounded bench smoke (writes BENCH_bounded.json) ==="
# E16: exits non-zero unless paged configurations recover the exact
# unbounded answer and every short answer carries a truncation marker.
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_bounded
"${PREFIX}-release/bench/bench_bounded"

echo "=== Join bench smoke (writes BENCH_join.json) ==="
# E17: exits non-zero unless the DP enumerator's modeled cost lower-bounds
# the greedy and left-deep baselines and all modes agree on the answer.
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_join
"${PREFIX}-release/bench/bench_join"

echo "=== Async-executor forced-on leg (GENCOMPACT_ASYNC=1) ==="
# Every mediator constructed in these suites runs the event-loop executor
# instead of the thread pool; answers, completeness markers, and the seeded
# differential harness must not notice.
GENCOMPACT_ASYNC=1 \
  "${PREFIX}-release/tests/gencompact_tests" \
  --gtest_filter='MediatorFixture*:MediatorFault*:MediatorCheckMemo*:MediatorConcurrency*:Seeds/DifferentialTest*:Bounded*:Federation*' \
  --gtest_brief=1

echo "=== Async bench smoke (writes BENCH_async.json) ==="
# E18: exits non-zero unless the event loop sustains >= 4x the pool path's
# in-flight transfers per worker thread (or >= 4x its throughput) and
# admission keeps p99 time-to-answer bounded under overload.
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_async
"${PREFIX}-release/bench/bench_async"

echo "=== CI OK ==="
