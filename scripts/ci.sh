#!/usr/bin/env bash
# CI entry point: Release build + full test suite, then a ThreadSanitizer
# build running the concurrency tests (thread pool, sharded plan cache,
# condition interner, parallel executor, concurrent mediator clients), then
# an AddressSanitizer pass over the interner hammer (the weak-entry pool
# must hold nothing alive: leak check).
#
# Usage: scripts/ci.sh [build-dir-prefix]
set -euo pipefail

cd "$(dirname "$0")/.."
PREFIX="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

echo "=== Release build + full ctest ==="
cmake -B "${PREFIX}-release" -S . -DCMAKE_BUILD_TYPE=Release
cmake --build "${PREFIX}-release" -j "${JOBS}"
ctest --test-dir "${PREFIX}-release" --output-on-failure -j "${JOBS}"

echo "=== ThreadSanitizer build + concurrency tests ==="
cmake -B "${PREFIX}-tsan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGENCOMPACT_SANITIZE=thread
cmake --build "${PREFIX}-tsan" -j "${JOBS}" --target gencompact_tests
"${PREFIX}-tsan/tests/gencompact_tests" --gtest_filter='ThreadPool*:PlanCacheConcurrency*:MediatorConcurrency*:ConditionInternHammer*:ExecFixture.Parallel*:ExecFixture.Duplicate*:FaultInjector*:CircuitBreaker*:FaultExec*:MediatorFault*:FaultAcceptance*'

echo "=== AddressSanitizer build + interner hammer (leak check) + fault suite ==="
cmake -B "${PREFIX}-asan" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DGENCOMPACT_SANITIZE=address
cmake --build "${PREFIX}-asan" -j "${JOBS}" --target gencompact_tests
"${PREFIX}-asan/tests/gencompact_tests" --gtest_filter='ConditionIntern*:PlanCache*:Fault*:CircuitBreaker*:MediatorFault*'

echo "=== Fault-sweep bench smoke (writes BENCH_fault.json) ==="
cmake --build "${PREFIX}-release" -j "${JOBS}" --target bench_fault_sweep
"${PREFIX}-release/bench/bench_fault_sweep"

echo "=== CI OK ==="
