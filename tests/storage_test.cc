#include <gtest/gtest.h>

#include "storage/row.h"
#include "storage/row_set.h"
#include "storage/table.h"
#include "storage/table_stats.h"

namespace gencompact {
namespace {

Schema TestSchema() {
  return Schema({{"name", ValueType::kString},
                 {"score", ValueType::kInt},
                 {"ratio", ValueType::kDouble}});
}

TEST(RowLayoutTest, FullLayoutSlots) {
  const RowLayout layout(AttributeSet::AllOf(3), 3);
  EXPECT_EQ(layout.SlotOf(0), 0);
  EXPECT_EQ(layout.SlotOf(2), 2);
  EXPECT_EQ(layout.width(), 3u);
}

TEST(RowLayoutTest, ProjectedLayoutSlots) {
  AttributeSet attrs;
  attrs.Add(0);
  attrs.Add(2);
  const RowLayout layout(attrs, 3);
  EXPECT_EQ(layout.SlotOf(0), 0);
  EXPECT_EQ(layout.SlotOf(1), -1);
  EXPECT_EQ(layout.SlotOf(2), 1);
  EXPECT_FALSE(layout.HasAttribute(1));
}

TEST(RowLayoutTest, ProjectNarrows) {
  const RowLayout full(AttributeSet::AllOf(3), 3);
  AttributeSet narrow_attrs;
  narrow_attrs.Add(2);
  const RowLayout narrow(narrow_attrs, 3);
  const Row row({Value::String("a"), Value::Int(1), Value::Double(0.5)});
  const Row projected = full.Project(row, narrow);
  ASSERT_EQ(projected.size(), 1u);
  EXPECT_EQ(projected.value(0), Value::Double(0.5));
}

TEST(RowSetTest, Deduplicates) {
  RowSet set(RowLayout(AttributeSet::AllOf(1), 1));
  EXPECT_TRUE(set.Insert(Row({Value::Int(1)})));
  EXPECT_FALSE(set.Insert(Row({Value::Int(1)})));
  EXPECT_TRUE(set.Insert(Row({Value::Int(2)})));
  EXPECT_EQ(set.size(), 2u);
}

TEST(RowSetTest, UnionAndIntersect) {
  const RowLayout layout(AttributeSet::AllOf(1), 1);
  RowSet a(layout);
  RowSet b(layout);
  a.Insert(Row({Value::Int(1)}));
  a.Insert(Row({Value::Int(2)}));
  b.Insert(Row({Value::Int(2)}));
  b.Insert(Row({Value::Int(3)}));
  EXPECT_EQ(RowSet::UnionOf(a, b).size(), 3u);
  const RowSet both = RowSet::IntersectOf(a, b);
  EXPECT_EQ(both.size(), 1u);
  EXPECT_TRUE(both.Contains(Row({Value::Int(2)})));
}

TEST(RowSetTest, ProjectToDeduplicates) {
  const RowLayout layout(AttributeSet::AllOf(2), 2);
  RowSet set(layout);
  set.Insert(Row({Value::Int(1), Value::String("x")}));
  set.Insert(Row({Value::Int(1), Value::String("y")}));
  AttributeSet first;
  first.Add(0);
  EXPECT_EQ(set.ProjectTo(first, 2).size(), 1u);
}

TEST(RowSetTest, SortedRowsIsDeterministic) {
  RowSet set(RowLayout(AttributeSet::AllOf(1), 1));
  set.Insert(Row({Value::Int(3)}));
  set.Insert(Row({Value::Int(1)}));
  set.Insert(Row({Value::Int(2)}));
  const std::vector<Row> sorted = set.SortedRows();
  EXPECT_EQ(sorted[0].value(0), Value::Int(1));
  EXPECT_EQ(sorted[2].value(0), Value::Int(3));
}

TEST(TableTest, AppendValidatesWidth) {
  Table table("t", TestSchema());
  EXPECT_FALSE(table.AppendValues({Value::String("x")}).ok());
  EXPECT_TRUE(
      table.AppendValues({Value::String("x"), Value::Int(1), Value::Double(0.5)})
          .ok());
  EXPECT_EQ(table.num_rows(), 1u);
}

TEST(TableTest, AppendValidatesTypes) {
  Table table("t", TestSchema());
  EXPECT_FALSE(
      table.AppendValues({Value::Int(3), Value::Int(1), Value::Double(0.5)})
          .ok());
  // Nulls pass for any declared type; ints pass for double attributes.
  EXPECT_TRUE(
      table.AppendValues({Value::Null(), Value::Int(1), Value::Int(2)}).ok());
}

TEST(TableStatsTest, CountsAndDistinct) {
  Table table("t", TestSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table
                    .AppendValues({Value::String(i % 2 ? "a" : "b"),
                                   Value::Int(i), Value::Double(i * 0.5)})
                    .ok());
  }
  const TableStats stats = TableStats::Compute(table);
  EXPECT_EQ(stats.num_rows(), 10u);
  EXPECT_EQ(stats.attribute(0).num_distinct, 2u);
  EXPECT_EQ(stats.attribute(1).num_distinct, 10u);
  EXPECT_TRUE(stats.attribute(1).has_range);
  EXPECT_EQ(stats.attribute(1).min_value, 0.0);
  EXPECT_EQ(stats.attribute(1).max_value, 9.0);
}

TEST(TableStatsTest, CommonValuesTrackExactCounts) {
  Table table("t", Schema({{"k", ValueType::kString}}));
  for (int i = 0; i < 7; ++i) ASSERT_TRUE(table.AppendValues({Value::String("hot")}).ok());
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(table.AppendValues({Value::String("cold")}).ok());
  const TableStats stats = TableStats::Compute(table);
  EXPECT_EQ(stats.CommonValueCount(0, Value::String("hot")), 7u);
  EXPECT_EQ(stats.CommonValueCount(0, Value::String("cold")), 3u);
  EXPECT_FALSE(stats.CommonValueCount(0, Value::String("warm")).has_value());
}

TEST(TableStatsTest, NullsExcludedFromStats) {
  Table table("t", Schema({{"v", ValueType::kInt}}));
  ASSERT_TRUE(table.AppendValues({Value::Null()}).ok());
  ASSERT_TRUE(table.AppendValues({Value::Int(5)}).ok());
  const TableStats stats = TableStats::Compute(table);
  EXPECT_EQ(stats.attribute(0).num_non_null, 1u);
  EXPECT_EQ(stats.attribute(0).num_distinct, 1u);
}

}  // namespace
}  // namespace gencompact
