// Result-bounded sources (DESIGN.md "Result bounds & completeness"):
//  - SSDL `bound N [page M] [accesses K]` parsing, validation, round trip;
//  - Source-level paged protocol: deterministic page slices, silent
//    truncation on the plain call, offset rejection without paging;
//  - Executor paging loop: exact answers via paging, per-page retries that
//    resume at the right offset (no duplicate / dropped rows), access
//    limits, breaker trips and budget exhaustion mid-loop;
//  - three-outcome classification and exact-via-refinement plan rewrites;
//  - mediator completeness markers, truncation stats, and avoid-set
//    re-planning around a truncated bounded source;
//  - result_bound = 0 stays bit-identical to the unbounded mediator.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "exec/circuit_breaker.h"
#include "exec/executor.h"
#include "exec/fault_policy.h"
#include "expr/condition_parser.h"
#include "mediator/mediator.h"
#include "plan/bounded.h"
#include "planner/source_handle.h"
#include "ssdl/description_io.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

// ---------------------------------------------------------------------------
// SSDL model: parsing, validation, round trip.
// ---------------------------------------------------------------------------

TEST(BoundedSsdlTest, ParsesBoundPageAndAccesses) {
  const Result<SourceDescription> description = ParseSsdl(R"(
    source R(k: string, v: int) {
      cost 10.0 1.0;
      bound 100 page 25 accesses 8;
      rule s1 -> k = $string;
      export s1 : {k, v};
    })");
  ASSERT_TRUE(description.ok()) << description.status().ToString();
  const ResultBound& bound = description->result_bound();
  EXPECT_TRUE(bound.bounded());
  EXPECT_EQ(bound.result_bound, 100u);
  EXPECT_TRUE(bound.supports_paging);
  EXPECT_EQ(bound.page_size, 25u);
  EXPECT_EQ(bound.max_accesses, 8u);
  EXPECT_EQ(bound.EffectivePageSize(), 25u);
}

TEST(BoundedSsdlTest, BoundAloneDisablesPaging) {
  const Result<SourceDescription> description = ParseSsdl(R"(
    source R(k: string, v: int) {
      bound 7;
      rule s1 -> k = $string;
      export s1 : {k, v};
    })");
  ASSERT_TRUE(description.ok());
  const ResultBound& bound = description->result_bound();
  EXPECT_TRUE(bound.bounded());
  EXPECT_FALSE(bound.supports_paging);
  EXPECT_EQ(bound.max_accesses, 0u);
  // Without paging the whole bound is the single "page".
  EXPECT_EQ(bound.EffectivePageSize(), 7u);
}

TEST(BoundedSsdlTest, OmittedBoundMeansUnbounded) {
  const Result<SourceDescription> description = ParseSsdl(R"(
    source R(k: string, v: int) {
      rule s1 -> k = $string;
      export s1 : {k, v};
    })");
  ASSERT_TRUE(description.ok());
  EXPECT_FALSE(description->result_bound().bounded());
  EXPECT_EQ(description->result_bound().EffectivePageSize(), 0u);
}

TEST(BoundedSsdlTest, RejectsMalformedBoundClauses) {
  const char* bad[] = {
      "source R(k: string) { bound 0; rule s1 -> k = $string; "
      "export s1 : {k}; }",  // zero bound
      "source R(k: string) { bound 10 page 20; rule s1 -> k = $string; "
      "export s1 : {k}; }",  // page > bound
      "source R(k: string) { bound 10 pages 2; rule s1 -> k = $string; "
      "export s1 : {k}; }",  // unknown clause
      "source R(k: string) { bound; rule s1 -> k = $string; "
      "export s1 : {k}; }",  // missing count
  };
  for (const char* text : bad) {
    const Result<SourceDescription> description = ParseSsdl(text);
    ASSERT_FALSE(description.ok()) << text;
    EXPECT_EQ(description.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(BoundedSsdlTest, BoundSurvivesWriteParseRoundTrip) {
  const Result<SourceDescription> original = ParseSsdl(R"(
    source R(k: string, v: int) {
      cost 10.0 1.0;
      bound 50 page 10 accesses 4;
      rule s1 -> k = $string;
      export s1 : {k, v};
    })");
  ASSERT_TRUE(original.ok());
  const Result<std::string> text = WriteSsdl(*original);
  ASSERT_TRUE(text.ok());
  const Result<SourceDescription> reparsed = ParseSsdl(*text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(reparsed->result_bound(), original->result_bound());
}

// ---------------------------------------------------------------------------
// Source-level paged protocol.
// ---------------------------------------------------------------------------

constexpr const char* kBoundedSsdlTemplate = R"(
source R(k: string, v: int) {
  cost 10.0 1.0;
  %s
  rule s1 -> k = $string;
  rule s2 -> v < $int;
  rule s3 -> v >= $int;
  rule s4 -> v < $int or v >= $int;
  export s1 : {k, v};
  export s2 : {k, v};
  export s3 : {k, v};
  export s4 : {k, v};
})";

std::string BoundedSsdl(const std::string& bound_line) {
  char text[1024];
  std::snprintf(text, sizeof(text), kBoundedSsdlTemplate, bound_line.c_str());
  return text;
}

class BoundedSourceTest : public ::testing::Test {
 protected:
  /// (Re)builds the fixture source with the given `bound ...;` line ("" for
  /// unbounded). 10 rows: k alternates odd/even, v = 0..9.
  void Build(const std::string& bound_line) {
    Result<SourceDescription> description = ParseSsdl(BoundedSsdl(bound_line));
    ASSERT_TRUE(description.ok()) << description.status().ToString();
    description_.emplace(std::move(description).value());
    table_ = std::make_unique<Table>("R", description_->schema());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(table_
                      ->AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                      Value::Int(i)})
                      .ok());
    }
    source_ = std::make_unique<Source>(table_.get(), &*description_);
  }

  AttributeSet Attrs(const std::vector<std::string>& names) {
    return *description_->schema().MakeSet(names);
  }

  std::optional<SourceDescription> description_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<Source> source_;
};

TEST_F(BoundedSourceTest, PlainExecuteSilentlyTruncatesToTheBound) {
  Build("bound 4;");
  const Result<RowSet> rows =
      source_->Execute(*Parse("v < 9"), Attrs({"k", "v"}));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // 9 matching rows, bound 4 ship
  EXPECT_EQ(source_->stats().pages_served, 1u);
  EXPECT_EQ(source_->stats().truncated_responses, 1u);
}

TEST_F(BoundedSourceTest, PagesTileTheAnswerExactly) {
  Build("bound 4 page 3;");
  const ConditionPtr cond = Parse("v < 8");  // 8 matching rows
  RowSet all(RowLayout(Attrs({"k", "v"}), description_->schema().num_attributes()));
  PageInfo info;
  uint64_t offset = 0;
  size_t pages = 0;
  do {
    const Result<RowSet> page =
        source_->ExecutePage(*cond, Attrs({"k", "v"}), PageRequest{offset},
                             &info);
    ASSERT_TRUE(page.ok());
    EXPECT_TRUE(info.bounded);
    EXPECT_LE(page->size(), 3u);
    for (const Row& row : page->rows()) {
      EXPECT_TRUE(all.Insert(row)) << "page shipped a duplicate row";
    }
    offset = info.next_offset;
    ++pages;
  } while (info.has_more);
  EXPECT_EQ(all.size(), 8u);
  EXPECT_EQ(pages, 3u);  // 3 + 3 + 2
  EXPECT_EQ(source_->stats().pages_served, 3u);
  EXPECT_EQ(source_->stats().truncated_responses, 2u);  // last page is final
}

TEST_F(BoundedSourceTest, RepeatedPageRequestShipsIdenticalRows) {
  Build("bound 4 page 3;");
  const ConditionPtr cond = Parse("v < 8");
  PageInfo info;
  const Result<RowSet> first =
      source_->ExecutePage(*cond, Attrs({"k", "v"}), PageRequest{3}, &info);
  const Result<RowSet> second =
      source_->ExecutePage(*cond, Attrs({"k", "v"}), PageRequest{3}, &info);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Canonical order is a pure function of the immutable table and the
  // condition — a retried page can neither duplicate nor drop rows.
  ASSERT_EQ(first->size(), second->size());
  for (const Row& row : first->rows()) {
    EXPECT_TRUE(second->Contains(row));
  }
}

TEST_F(BoundedSourceTest, OffsetRejectedWithoutPagingSupport) {
  Build("bound 4;");
  PageInfo info;
  const Result<RowSet> page = source_->ExecutePage(
      *Parse("v < 9"), Attrs({"k", "v"}), PageRequest{4}, &info);
  ASSERT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kUnsupported);

  Build("");  // unbounded sources likewise have no page 2
  const Result<RowSet> beyond = source_->ExecutePage(
      *Parse("v < 9"), Attrs({"k", "v"}), PageRequest{4}, &info);
  ASSERT_FALSE(beyond.ok());
  EXPECT_EQ(beyond.status().code(), StatusCode::kUnsupported);
}

TEST_F(BoundedSourceTest, PageFaultScheduleFailsExactlyTheTargetedOffset) {
  Build("bound 4 page 2;");
  FaultPolicy policy;
  policy.page_faults.push_back({/*offset=*/2, /*fail_count=*/1});
  source_->set_fault_policy(policy);
  const ConditionPtr cond = Parse("v < 6");
  PageInfo info;
  // Offset 0 is clean; offset 2 fails once, then succeeds on re-request.
  ASSERT_TRUE(source_->ExecutePage(*cond, Attrs({"k", "v"}), PageRequest{0},
                                   &info)
                  .ok());
  const Result<RowSet> faulted = source_->ExecutePage(
      *cond, Attrs({"k", "v"}), PageRequest{2}, &info);
  ASSERT_FALSE(faulted.ok());
  EXPECT_EQ(faulted.status().code(), StatusCode::kUnavailable);
  ASSERT_TRUE(source_->ExecutePage(*cond, Attrs({"k", "v"}), PageRequest{2},
                                   &info)
                  .ok());
}

// ---------------------------------------------------------------------------
// Executor paging loop.
// ---------------------------------------------------------------------------

class BoundedExecutorTest : public BoundedSourceTest {
 protected:
  ExecOptions RetryOptions(size_t attempts) {
    ExecOptions options;
    options.retry.max_attempts = attempts;
    options.retry.backoff.base = std::chrono::microseconds(1);
    options.retry.backoff.cap = std::chrono::microseconds(2);
    options.clock = &clock_;
    return options;
  }

  /// The reference answer from an unbounded twin of the same table.
  RowSet Reference(const std::string& cond, bool* ok = nullptr) {
    Result<SourceDescription> description = ParseSsdl(BoundedSsdl(""));
    EXPECT_TRUE(description.ok());
    Source unbounded(table_.get(), &*description);
    Result<RowSet> rows =
        unbounded.Execute(*Parse(cond), Attrs({"k", "v"}));
    EXPECT_TRUE(rows.ok());
    if (ok != nullptr) *ok = rows.ok();
    return std::move(rows).value();
  }

  FakeClock clock_;
};

TEST_F(BoundedExecutorTest, PagingLoopRecoversTheExactAnswer) {
  Build("bound 4 page 3;");
  Executor executor(source_.get());
  const PlanPtr plan =
      PlanNode::SourceQuery(Parse("v < 8"), Attrs({"k", "v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  const RowSet expected = Reference("v < 8");
  ASSERT_EQ(rows->size(), expected.size());
  for (const Row& row : expected.rows()) EXPECT_TRUE(rows->Contains(row));
  EXPECT_EQ(executor.stats().pages_fetched, 3u);
  EXPECT_EQ(executor.stats().truncated_sub_queries, 0u);
  EXPECT_TRUE(executor.truncation_records().empty());
  // rows_transferred counts what actually shipped: the page sizes sum to
  // the full answer, nothing twice.
  EXPECT_EQ(executor.stats().rows_transferred, expected.size());
}

TEST_F(BoundedExecutorTest, MidPageTransientRetriesResumeAtTheSameOffset) {
  Build("bound 4 page 2;");
  FaultPolicy policy;
  policy.page_faults.push_back({/*offset=*/2, /*fail_count=*/2});
  policy.page_faults.push_back({/*offset=*/6, /*fail_count=*/1});
  source_->set_fault_policy(policy);

  Executor executor(source_.get(), nullptr, RetryOptions(4));
  const PlanPtr plan =
      PlanNode::SourceQuery(Parse("v < 8"), Attrs({"k", "v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  const RowSet expected = Reference("v < 8");
  // Exact: the retried pages re-read their own offsets — no duplicates, no
  // gaps, bit-identical to the unbounded answer.
  ASSERT_EQ(rows->size(), expected.size());
  for (const Row& row : expected.rows()) EXPECT_TRUE(rows->Contains(row));
  EXPECT_EQ(executor.stats().retries, 3u);
  EXPECT_EQ(executor.stats().pages_fetched, 4u);  // 8 rows / 2 per page
  EXPECT_TRUE(executor.truncation_records().empty());
}

TEST_F(BoundedExecutorTest, NonPagingBoundYieldsMarkedPartialAnswer) {
  Build("bound 4;");
  ExecOptions options = RetryOptions(1);
  options.partial_pages = true;
  Executor executor(source_.get(), nullptr, options);
  const PlanPtr plan =
      PlanNode::SourceQuery(Parse("v < 9"), Attrs({"k", "v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // the bound's worth of the 9 true rows
  // Every shipped row is a true answer row: a strict subset, never garbage.
  const RowSet expected = Reference("v < 9");
  for (const Row& row : rows->rows()) EXPECT_TRUE(expected.Contains(row));

  EXPECT_EQ(executor.stats().truncated_sub_queries, 1u);
  const std::vector<TruncationRecord> records = executor.truncation_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].source, "R");
  EXPECT_EQ(records[0].bound, 4u);
  EXPECT_EQ(records[0].rows_lower_bound, 4u);
  EXPECT_NE(records[0].reason.find("does not page"), std::string::npos)
      << records[0].reason;
}

TEST_F(BoundedExecutorTest, AccessLimitStopsTheLoopWithAMarker) {
  Build("bound 4 page 2 accesses 3;");
  ExecOptions options;
  options.partial_pages = true;
  Executor executor(source_.get(), nullptr, options);
  const PlanPtr plan =
      PlanNode::SourceQuery(Parse("v < 9"), Attrs({"k", "v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 6u);  // 3 accesses x 2-row pages of the 9 true rows
  EXPECT_EQ(executor.stats().pages_fetched, 3u);
  const std::vector<TruncationRecord> records = executor.truncation_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].rows_lower_bound, 6u);
  EXPECT_NE(records[0].reason.find("access limit"), std::string::npos)
      << records[0].reason;
}

TEST_F(BoundedExecutorTest, RetryBudgetExhaustionMidLoopKeepsThePrefix) {
  Build("bound 4 page 2;");
  FaultPolicy policy;
  // Page at offset 4 fails more times than the retry discipline tolerates.
  policy.page_faults.push_back({/*offset=*/4, /*fail_count=*/10});
  source_->set_fault_policy(policy);

  ExecOptions options = RetryOptions(3);
  options.partial_pages = true;
  Executor executor(source_.get(), nullptr, options);
  const PlanPtr plan =
      PlanNode::SourceQuery(Parse("v < 9"), Attrs({"k", "v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // pages at offsets 0 and 2 arrived
  const RowSet expected = Reference("v < 9");
  for (const Row& row : rows->rows()) EXPECT_TRUE(expected.Contains(row));
  const std::vector<TruncationRecord> records = executor.truncation_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].rows_lower_bound, 4u);
  EXPECT_NE(records[0].reason.find("paging interrupted"), std::string::npos)
      << records[0].reason;

  // Without partial_pages the same failure fails the sub-query outright —
  // the strict (non-degraded) semantics.
  source_->set_fault_policy(policy);
  Executor strict(source_.get(), nullptr, RetryOptions(3));
  const Result<RowSet> failed = strict.Execute(*plan);
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(strict.truncation_records().empty());
}

TEST_F(BoundedExecutorTest, BreakerTripMidLoopYieldsMarkedPartialAnswer) {
  Build("bound 4 page 2;");
  FaultPolicy policy;
  policy.page_faults.push_back({/*offset=*/4, /*fail_count=*/10});
  source_->set_fault_policy(policy);

  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 2;
  CircuitBreaker breaker(breaker_options, &clock_);
  ExecOptions options = RetryOptions(5);
  options.breaker = &breaker;
  options.partial_pages = true;
  Executor executor(source_.get(), nullptr, options);
  const PlanPtr plan =
      PlanNode::SourceQuery(Parse("v < 9"), Attrs({"k", "v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  // The breaker opened while page 3 was retrying; the two clean pages
  // survive as a marked partial answer and the loop stopped probing.
  EXPECT_EQ(rows->size(), 4u);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  ASSERT_EQ(executor.truncation_records().size(), 1u);
  EXPECT_EQ(executor.truncation_records()[0].rows_lower_bound, 4u);
}

// ---------------------------------------------------------------------------
// Classification and refinement.
// ---------------------------------------------------------------------------

class BoundedPlanningTest : public BoundedSourceTest {
 protected:
  /// A SourceHandle over the fixture's description/table — the planner-side
  /// view with a real cardinality estimator.
  std::unique_ptr<SourceHandle> Handle() {
    return std::make_unique<SourceHandle>(*description_, table_.get());
  }
};

TEST_F(BoundedPlanningTest, ClassifiesAllThreeOutcomes) {
  Build("bound 4 page 2;");
  std::unique_ptr<SourceHandle> handle = Handle();
  const CostModel& cost = handle->cost_model();
  const AttributeSet attrs = Attrs({"k", "v"});
  const ResultBound& bound = description_->result_bound();

  EXPECT_EQ(ClassifySourceQuery(Parse("v < 2"), attrs, ResultBound{}, cost,
                                handle->checker()),
            BoundedOutcome::kUnbounded);
  EXPECT_EQ(ClassifySourceQuery(Parse("v < 2"), attrs, bound, cost,
                                handle->checker()),
            BoundedOutcome::kFitsUnderBound);
  EXPECT_EQ(ClassifySourceQuery(Parse("v < 9"), attrs, bound, cost,
                                handle->checker()),
            BoundedOutcome::kExactViaPaging);

  // Non-paging bound: an over-bound disjunction the grammar supports piece
  // by piece refines; an over-bound atom has nothing to split.
  Build("bound 4;");
  std::unique_ptr<SourceHandle> non_paging = Handle();
  const ResultBound& hard = description_->result_bound();
  EXPECT_EQ(
      ClassifySourceQuery(Parse("v < 3 or v >= 7"), attrs, hard,
                          non_paging->cost_model(), non_paging->checker()),
      BoundedOutcome::kExactViaRefinement);
  EXPECT_EQ(ClassifySourceQuery(Parse("v < 9"), attrs, hard,
                                non_paging->cost_model(),
                                non_paging->checker()),
            BoundedOutcome::kLikelyPartial);
}

TEST_F(BoundedPlanningTest, RefinementSplitsIntoUnionOfFittingPieces) {
  Build("bound 4;");
  std::unique_ptr<SourceHandle> handle = Handle();
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3 or v >= 7"),
                                             Attrs({"k", "v"}));
  const BoundedRefinement refined =
      RefineBoundedPlan(plan, description_->result_bound(),
                        handle->cost_model(), handle->checker());
  EXPECT_EQ(refined.splits, 1u);
  ASSERT_NE(refined.plan, plan);
  EXPECT_EQ(refined.plan->kind(), PlanNode::Kind::kUnion);
  EXPECT_EQ(refined.plan->children().size(), 2u);
  for (const PlanPtr& child : refined.plan->children()) {
    EXPECT_EQ(child->kind(), PlanNode::Kind::kSourceQuery);
  }
}

TEST_F(BoundedPlanningTest, RefinementLeavesFittingPlansAlone) {
  Build("bound 4;");
  std::unique_ptr<SourceHandle> handle = Handle();
  const PlanPtr plan =
      PlanNode::SourceQuery(Parse("v < 2"), Attrs({"k", "v"}));
  const BoundedRefinement refined =
      RefineBoundedPlan(plan, description_->result_bound(),
                        handle->cost_model(), handle->checker());
  EXPECT_EQ(refined.splits, 0u);
  EXPECT_EQ(refined.plan, plan);  // shared, not rebuilt
}

TEST_F(BoundedPlanningTest, BoundShapesTheCostModel) {
  Build("bound 4 page 2;");
  std::unique_ptr<SourceHandle> paged = Handle();
  Build("bound 4;");
  std::unique_ptr<SourceHandle> hard = Handle();
  Build("");
  std::unique_ptr<SourceHandle> free = Handle();
  const AttributeSet attrs = Attrs({"k", "v"});
  const ConditionNode& big = *Parse("v < 9");  // est well over the bound

  const double unbounded_cost = free->cost_model().SourceQueryCost(big, attrs);
  // Paging pays one k1 per page the loop will drive.
  EXPECT_GT(paged->cost_model().SourceQueryCost(big, attrs), unbounded_cost);
  // A non-paging over-bound query carries the truncation-risk multiplier —
  // the analogue of the breaker's open-state penalty.
  EXPECT_GE(hard->cost_model().SourceQueryCost(big, attrs),
            unbounded_cost * hard->cost_model().truncation_risk_multiplier());

  // Under the bound (one page suffices), all three models agree exactly
  // (Equation 1).
  const ConditionPtr small = Parse("v < 2");
  EXPECT_EQ(paged->cost_model().SourceQueryCost(*small, attrs),
            free->cost_model().SourceQueryCost(*small, attrs));
  EXPECT_EQ(hard->cost_model().SourceQueryCost(*small, attrs),
            free->cost_model().SourceQueryCost(*small, attrs));
}

// ---------------------------------------------------------------------------
// Mediator end to end.
// ---------------------------------------------------------------------------

class BoundedMediatorTest : public ::testing::Test {
 protected:
  std::unique_ptr<Mediator> MakeMediator(const std::string& bound_line,
                                         Mediator::Options options = {}) {
    options.clock = &clock_;
    auto mediator = std::make_unique<Mediator>(options);
    Result<SourceDescription> description =
        ParseSsdl(BoundedSsdl(bound_line));
    EXPECT_TRUE(description.ok()) << description.status().ToString();
    auto table = std::make_unique<Table>("R", description->schema());
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(table
                      ->AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                      Value::Int(i)})
                      .ok());
    }
    EXPECT_TRUE(mediator
                    ->RegisterSource(std::move(description).value(),
                                     std::move(table))
                    .ok());
    return mediator;
  }

  FakeClock clock_;
};

TEST_F(BoundedMediatorTest, PagingRecoversExactAnswersTransparently) {
  std::unique_ptr<Mediator> bounded = MakeMediator("bound 4 page 2;");
  std::unique_ptr<Mediator> unbounded = MakeMediator("");
  const std::string sql = "SELECT k, v FROM R WHERE v < 8";
  const Result<Mediator::QueryResult> a = bounded->Query(sql);
  const Result<Mediator::QueryResult> b = unbounded->Query(sql);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->completeness.complete);
  EXPECT_TRUE(a->completeness.truncated_sources.empty());
  ASSERT_EQ(a->rows.size(), b->rows.size());
  for (const Row& row : b->rows.rows()) EXPECT_TRUE(a->rows.Contains(row));

  const Mediator::Stats stats = bounded->StatsSnapshot();
  EXPECT_EQ(stats.bounded.pages_fetched, 4u);
  EXPECT_EQ(stats.bounded.truncated_answers, 0u);
  ASSERT_EQ(stats.sources.size(), 1u);
  EXPECT_EQ(stats.sources[0].source.pages_served, 4u);
}

TEST_F(BoundedMediatorTest, RefinementRecoversExactAnswersWithoutPaging) {
  std::unique_ptr<Mediator> bounded = MakeMediator("bound 4;");
  std::unique_ptr<Mediator> unbounded = MakeMediator("");
  // The grammar supports the whole disjunction (s4), whose 6-row answer
  // exceeds the bound — but each disjunct fits, so either the cost model's
  // truncation-risk penalty steers planning to per-piece queries or the
  // refinement pass splits the single query; both recover exactness.
  const std::string sql = "SELECT k, v FROM R WHERE v < 3 or v >= 7";
  const Result<Mediator::QueryResult> a = bounded->Query(sql);
  const Result<Mediator::QueryResult> b = unbounded->Query(sql);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a->completeness.complete);
  ASSERT_EQ(a->rows.size(), b->rows.size());
  for (const Row& row : b->rows.rows()) EXPECT_TRUE(a->rows.Contains(row));
}

TEST_F(BoundedMediatorTest, TruncatedAnswerCarriesTheMarker) {
  Mediator::Options options;
  options.partial_results = true;
  std::unique_ptr<Mediator> mediator = MakeMediator("bound 4;", options);
  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k, v FROM R WHERE v < 9");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->completeness.complete);
  ASSERT_EQ(result->completeness.truncated_sources.size(), 1u);
  const Mediator::TruncatedSource& marker =
      result->completeness.truncated_sources[0];
  EXPECT_EQ(marker.source, "R");
  EXPECT_EQ(marker.bound, 4u);
  EXPECT_EQ(marker.rows_lower_bound, 4u);
  EXPECT_EQ(result->rows.size(), 4u);

  const Mediator::Stats stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.bounded.truncated_answers, 1u);
  EXPECT_EQ(stats.fault_tolerance.queries_partial, 1u);
  EXPECT_NE(stats.ToString().find("answers.truncated"), std::string::npos);
}

TEST_F(BoundedMediatorTest, ZeroBoundIsBitIdenticalToToday) {
  std::unique_ptr<Mediator> plain = MakeMediator("");
  Mediator::Options featureful;
  featureful.bounded_refinement = true;
  featureful.replan_on_truncation = true;
  featureful.partial_results = true;
  std::unique_ptr<Mediator> guarded = MakeMediator("", featureful);
  const std::vector<std::string> queries = {
      "SELECT k, v FROM R WHERE v < 8",
      "SELECT k, v FROM R WHERE k = \"odd\" or v < 3",
      "SELECT k FROM R WHERE k = \"even\"",
  };
  for (const std::string& sql : queries) {
    const Result<Mediator::QueryResult> a = plain->Query(sql);
    const Result<Mediator::QueryResult> b = guarded->Query(sql);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a->plan->ToShortString(), b->plan->ToShortString()) << sql;
    EXPECT_EQ(a->estimated_cost, b->estimated_cost) << sql;
    ASSERT_EQ(a->rows.size(), b->rows.size()) << sql;
    for (const Row& row : a->rows.rows()) {
      EXPECT_TRUE(b->rows.Contains(row)) << sql;
    }
    EXPECT_TRUE(b->completeness.complete);
  }
  const Mediator::Stats stats = guarded->StatsSnapshot();
  EXPECT_EQ(stats.bounded.pages_fetched, 0u);
  EXPECT_EQ(stats.bounded.truncated_answers, 0u);
  EXPECT_EQ(stats.bounded.refinement_splits, 0u);
}

}  // namespace
}  // namespace gencompact
