// Fault-tolerance test suite: deterministic fault injection, retry/backoff,
// circuit breaking, graceful union degradation, and avoid-set re-planning.
// Every schedule here is seeded and every "wait" runs on a FakeClock, so the
// suite is instantaneous and replays bit-identically run after run.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "exec/circuit_breaker.h"
#include "exec/executor.h"
#include "exec/fault_policy.h"
#include "expr/condition_parser.h"
#include "mediator/mediator.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

using std::chrono::microseconds;

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

TEST(BackoffTest, DelaysStayWithinPolicyBounds) {
  BackoffPolicy policy;
  policy.base = microseconds(1000);
  policy.cap = microseconds(20000);
  DecorrelatedJitterBackoff backoff(policy, /*seed=*/7);
  microseconds prev = policy.base;
  for (int i = 0; i < 200; ++i) {
    const microseconds d = backoff.NextDelay();
    EXPECT_GE(d, policy.base);
    EXPECT_LE(d, policy.cap);
    // Decorrelated jitter: each delay is drawn from [base, 3 * previous].
    EXPECT_LE(d.count(), std::min<int64_t>(3 * prev.count(),
                                           policy.cap.count()));
    prev = d;
  }
}

TEST(BackoffTest, SameSeedReplaysSameSchedule) {
  const BackoffPolicy policy;
  DecorrelatedJitterBackoff a(policy, 42);
  DecorrelatedJitterBackoff b(policy, 42);
  DecorrelatedJitterBackoff c(policy, 43);
  bool any_difference = false;
  for (int i = 0; i < 64; ++i) {
    const microseconds da = a.NextDelay();
    EXPECT_EQ(da, b.NextDelay());
    any_difference |= (da != c.NextDelay());
  }
  EXPECT_TRUE(any_difference);  // different seeds draw different jitter
}

TEST(BackoffTest, ResetRestartsTheSchedule) {
  DecorrelatedJitterBackoff a(BackoffPolicy{}, 5);
  std::vector<microseconds> first;
  for (int i = 0; i < 8; ++i) first.push_back(a.NextDelay());
  a.Reset();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.NextDelay(), first[i]);
}

// ---------------------------------------------------------------------------
// FakeClock
// ---------------------------------------------------------------------------

TEST(FakeClockTest, SleepAdvancesInsteadOfBlocking) {
  FakeClock clock;
  const auto t0 = clock.Now();
  clock.SleepFor(microseconds(5000));
  EXPECT_EQ(clock.Now() - t0, microseconds(5000));
  clock.Advance(microseconds(123));
  EXPECT_EQ(clock.Now() - t0, microseconds(5123));
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, ZeroPolicyNeverFires) {
  FaultInjector injector{FaultPolicy{}};
  EXPECT_FALSE(injector.policy().active());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.NextCall().code, StatusCode::kOk);
  }
  EXPECT_EQ(injector.stats().calls, 100u);
  EXPECT_EQ(injector.stats().injected_unavailable, 0u);
}

TEST(FaultInjectorTest, ScheduleIsDeterministicFromTheSeed) {
  FaultPolicy policy;
  policy.seed = 99;
  policy.transient_error_rate = 0.3;
  FaultInjector a(policy);
  FaultInjector b(policy);
  size_t faults = 0;
  for (int i = 0; i < 500; ++i) {
    const StatusCode code = a.NextCall().code;
    EXPECT_EQ(code, b.NextCall().code) << "call " << i;
    if (code != StatusCode::kOk) ++faults;
  }
  // ~150 expected at rate 0.3; very loose bounds, but the exact count is
  // pinned by the seed so this can never flake.
  EXPECT_GT(faults, 100u);
  EXPECT_LT(faults, 200u);
  EXPECT_EQ(a.stats().injected_unavailable, faults);
}

TEST(FaultInjectorTest, ConcurrentAggregateMatchesSequentialSchedule) {
  FaultPolicy policy;
  policy.seed = 12345;
  policy.transient_error_rate = 0.25;
  constexpr int kCalls = 2000;

  FaultInjector sequential(policy);
  for (int i = 0; i < kCalls; ++i) sequential.NextCall();

  // Faults are a pure function of (seed, call index), so however the 8
  // threads interleave, the 2000 indices drawn are the same set and the
  // aggregate counters match the sequential run exactly.
  FaultInjector concurrent(policy);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&concurrent] {
      for (int i = 0; i < kCalls / 8; ++i) concurrent.NextCall();
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(concurrent.stats().calls, sequential.stats().calls);
  EXPECT_EQ(concurrent.stats().injected_unavailable,
            sequential.stats().injected_unavailable);
}

TEST(FaultInjectorTest, OutageWindowFailsEveryCallInside) {
  FaultPolicy policy;
  policy.outages.push_back({3, 6});
  FaultInjector injector(policy);
  for (uint64_t i = 0; i < 10; ++i) {
    const StatusCode code = injector.NextCall().code;
    if (i >= 3 && i < 6) {
      EXPECT_EQ(code, StatusCode::kUnavailable) << "call " << i;
    } else {
      EXPECT_EQ(code, StatusCode::kOk) << "call " << i;
    }
  }
  EXPECT_EQ(injector.stats().injected_unavailable, 3u);
}

TEST(FaultInjectorTest, FailNextNScriptsFailuresOnAnInactivePolicy) {
  FaultInjector injector{FaultPolicy{}};
  injector.FailNextN(2);
  EXPECT_EQ(injector.NextCall().code, StatusCode::kUnavailable);
  EXPECT_EQ(injector.NextCall().code, StatusCode::kUnavailable);
  EXPECT_EQ(injector.NextCall().code, StatusCode::kOk);
}

TEST(FaultInjectorTest, StuckAndSlowCallsCarryLatency) {
  FaultPolicy policy;
  policy.seed = 4;
  policy.stuck_call_rate = 1.0;
  policy.stuck_penalty = microseconds(111);
  FaultInjector stuck(policy);
  const FaultInjector::Decision d = stuck.NextCall();
  EXPECT_EQ(d.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.extra_latency, microseconds(111));
  EXPECT_EQ(stuck.stats().injected_timeouts, 1u);

  FaultPolicy slow_policy;
  slow_policy.slow_call_rate = 1.0;
  slow_policy.slow_latency = microseconds(222);
  FaultInjector slow(slow_policy);
  const FaultInjector::Decision s = slow.NextCall();
  EXPECT_EQ(s.code, StatusCode::kOk);  // slow calls still answer
  EXPECT_EQ(s.extra_latency, microseconds(222));
  EXPECT_EQ(slow.stats().injected_slow, 1u);
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, ClosedToOpenToHalfOpenToClosed) {
  FakeClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  options.open_duration = microseconds(1000);
  CircuitBreaker breaker(options, &clock);

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_TRUE(breaker.Allow());
  breaker.OnFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_TRUE(breaker.Allow());
  breaker.OnFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Open: fast rejection, no source contact.
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.stats().rejected, 1u);

  // Window expires -> half-open admits one probe, holds the second.
  clock.Advance(microseconds(1001));
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());

  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().opened, 1u);
  EXPECT_EQ(breaker.stats().closed, 1u);
  EXPECT_EQ(breaker.stats().probes_admitted, 1u);
}

TEST(CircuitBreakerTest, FailedProbeReopensAFullWindow) {
  FakeClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_duration = microseconds(1000);
  CircuitBreaker breaker(options, &clock);

  ASSERT_TRUE(breaker.Allow());
  breaker.OnFailure();  // trips immediately
  clock.Advance(microseconds(1001));
  ASSERT_TRUE(breaker.Allow());  // probe
  breaker.OnFailure();           // probe fails
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());  // a fresh window is in force
  EXPECT_EQ(breaker.stats().opened, 2u);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveFailureStreak) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  FakeClock clock;
  CircuitBreaker breaker(options, &clock);
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(breaker.Allow());
    breaker.OnFailure();
    ASSERT_TRUE(breaker.Allow());
    breaker.OnFailure();
    ASSERT_TRUE(breaker.Allow());
    breaker.OnSuccess();  // streak broken at 2 < 3: never trips
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().opened, 0u);
}

TEST(CircuitBreakerTest, HammerConcurrentCallersKeepInvariants) {
  FakeClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_duration = microseconds(50);
  CircuitBreaker breaker(options, &clock);

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&breaker, &clock, t] {
      for (int i = 0; i < 2000; ++i) {
        if (breaker.Allow()) {
          // Mixed verdicts keep the breaker cycling through all states.
          if ((t + i) % 3 == 0) {
            breaker.OnFailure();
          } else {
            breaker.OnSuccess();
          }
        } else {
          clock.Advance(microseconds(7));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const CircuitBreaker::Stats stats = breaker.stats();
  // Every close is preceded by an open, and probes only exist because some
  // window expired.
  EXPECT_GE(stats.opened, stats.closed);
  EXPECT_GE(stats.probes_admitted, stats.closed);
  // The final Allow/OnX pairing left no probe permanently leaked: after
  // enough window time, a call gets through again.
  clock.Advance(microseconds(1000));
  EXPECT_TRUE(breaker.Allow() || breaker.Allow());
  breaker.OnSuccess();
}

// ---------------------------------------------------------------------------
// Executor-level fault tolerance (retry loop, budget, deadline, breaker,
// degradation). All on the 10-row R(k, v) source from exec_test.
// ---------------------------------------------------------------------------

class FaultExecFixture : public ::testing::Test {
 protected:
  FaultExecFixture()
      : description_(*ParseSsdl(R"(
          source R(k: string, v: int) {
            rule s1 -> k = $string;
            rule s2 -> v < $int;
            rule s3 -> v >= $int;
            export s1 : {k, v};
            export s2 : {k, v};
            export s3 : {k, v};
          })")),
        table_("R", description_.schema()),
        source_(&table_, &description_) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(table_
                      .AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                     Value::Int(i)})
                      .ok());
    }
    source_.set_fault_policy(FaultPolicy{});  // injector for FailNextN
  }

  AttributeSet Attrs(const std::vector<std::string>& names) {
    return *description_.schema().MakeSet(names);
  }

  ExecOptions RetryOptions(size_t max_attempts) {
    ExecOptions options;
    options.retry.max_attempts = max_attempts;
    options.clock = &clock_;
    return options;
  }

  SourceDescription description_;
  Table table_;
  Source source_;
  FakeClock clock_;
};

TEST_F(FaultExecFixture, SourceFailsFastWhenFaultFires) {
  source_.fault_injector()->FailNextN(1);
  const Result<RowSet> rows =
      source_.Execute(*Parse("v < 3"), Attrs({"v"}));
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(rows.status().code()));
  EXPECT_EQ(source_.stats().queries_unavailable, 1u);
  EXPECT_EQ(source_.stats().queries_answered, 0u);
}

TEST_F(FaultExecFixture, RetriesRecoverScriptedTransientFailures) {
  source_.fault_injector()->FailNextN(2);
  Executor executor(&source_, nullptr, RetryOptions(/*max_attempts=*/4));
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ(executor.stats().retries, 2u);
  EXPECT_EQ(executor.stats().failed_sub_queries, 0u);
  EXPECT_EQ(source_.stats().queries_received, 3u);
  // The FakeClock advanced by the backoff sleeps: time was "spent" without
  // the test blocking.
  EXPECT_GT(clock_.Now().time_since_epoch().count(), 0);
}

TEST_F(FaultExecFixture, AttemptCapExhaustsAndPropagates) {
  source_.fault_injector()->FailNextN(10);
  Executor executor(&source_, nullptr, RetryOptions(3));
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(executor.stats().retries, 2u);  // 3 attempts = 2 retries
  EXPECT_EQ(executor.stats().failed_sub_queries, 1u);
  EXPECT_EQ(source_.stats().queries_received, 3u);
}

TEST_F(FaultExecFixture, RetryBudgetIsSharedAcrossSubQueries) {
  source_.fault_injector()->FailNextN(100);
  ExecOptions options = RetryOptions(10);
  options.retry.retry_budget = 3;  // execution-wide, not per sub-query
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 7"), Attrs({"v"}))});
  EXPECT_FALSE(executor.Execute(*plan).ok());
  EXPECT_EQ(executor.stats().retries, 3u);
  // 1 first attempt + 3 budgeted retries; the second sub-query is never
  // reached (sequential union short-circuits on the first failure).
  EXPECT_EQ(source_.stats().queries_received, 4u);
}

TEST_F(FaultExecFixture, UnsupportedIsNeverRetried) {
  Executor executor(&source_, nullptr, RetryOptions(5));
  const PlanPtr plan = PlanNode::SourceQuery(
      Parse("k = \"odd\" and v < 5"), Attrs({"v"}));  // no rule covers this
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(executor.stats().retries, 0u);
  EXPECT_EQ(source_.stats().queries_received, 1u);
}

TEST_F(FaultExecFixture, SubQueryDeadlineCutsTheRetryLoop) {
  source_.fault_injector()->FailNextN(100);
  ExecOptions options = RetryOptions(100);
  options.retry.backoff.base = microseconds(10000);
  options.retry.sub_query_deadline = microseconds(25000);
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(executor.stats().deadlines_exceeded, 1u);
  // The loop gave up before blowing the deadline, not after: all FakeClock
  // sleep so far fits inside it.
  EXPECT_LE(clock_.Now().time_since_epoch(), microseconds(25000));
}

TEST_F(FaultExecFixture, BreakerStopsContactingADeadSource) {
  FaultPolicy dead;
  dead.transient_error_rate = 1.0;
  source_.set_fault_policy(dead);

  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 3;
  breaker_options.open_duration = microseconds(1000000000);  // stays open
  CircuitBreaker breaker(breaker_options, &clock_);

  ExecOptions options = RetryOptions(10);
  options.breaker = &breaker;
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rows.status().message().find("circuit breaker open"),
            std::string::npos);
  // Three failures trip the breaker; the remaining attempts never reach the
  // source.
  EXPECT_EQ(source_.stats().queries_received, 3u);
  EXPECT_GT(executor.stats().breaker_rejections, 0u);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // The breaker is shared per source: a *different* execution fails fast
  // without a single round trip.
  Executor second(&source_, nullptr, options);
  EXPECT_FALSE(second.Execute(*plan).ok());
  EXPECT_EQ(source_.stats().queries_received, 3u);
}

TEST_F(FaultExecFixture, BreakerRecoversThroughHalfOpenProbe) {
  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 2;
  breaker_options.open_duration = microseconds(1000);
  CircuitBreaker breaker(breaker_options, &clock_);

  ExecOptions options = RetryOptions(1);
  options.breaker = &breaker;
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));

  source_.fault_injector()->FailNextN(2);
  Executor failing(&source_, nullptr, options);
  EXPECT_FALSE(failing.Execute(*plan).ok());
  EXPECT_FALSE(failing.Execute(*plan).ok());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // While open: rejected without contact.
  const size_t received = source_.stats().queries_received;
  EXPECT_FALSE(failing.Execute(*plan).ok());
  EXPECT_EQ(source_.stats().queries_received, received);

  // The source heals, the window expires, one probe closes the breaker.
  clock_.Advance(microseconds(1001));
  const Result<RowSet> rows = failing.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST_F(FaultExecFixture, DegradedUnionReturnsAnnotatedPartialAnswer) {
  source_.fault_injector()->FailNextN(1);
  ExecOptions options;
  options.degrade_unions = true;
  options.clock = &clock_;
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("k = \"odd\""), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}))});
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);  // only the surviving v < 3 branch
  EXPECT_EQ(executor.stats().dropped_branches, 1u);
  const std::vector<std::string> dropped = executor.dropped_sub_queries();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_NE(dropped[0].find("odd"), std::string::npos);
}

TEST_F(FaultExecFixture, AllBranchesDownIsAFailureNotAnEmptyAnswer) {
  FaultPolicy dead;
  dead.outages.push_back({0, 1000000});
  source_.set_fault_policy(dead);
  ExecOptions options;
  options.degrade_unions = true;
  options.clock = &clock_;
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("k = \"odd\""), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}))});
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
}

TEST_F(FaultExecFixture, IntersectionBranchesNeverDegrade) {
  source_.fault_injector()->FailNextN(1);
  ExecOptions options;
  options.degrade_unions = true;
  options.clock = &clock_;
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::IntersectOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"}))});
  // Dropping an ∧/∩ branch would *grow* the answer: never degraded.
  EXPECT_EQ(executor.Execute(*plan).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(executor.stats().dropped_branches, 0u);
}

TEST_F(FaultExecFixture, PermanentErrorsAreNotDegradedAway) {
  ExecOptions options;
  options.degrade_unions = true;
  options.clock = &clock_;
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("k = \"odd\" and v < 5"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}))});
  // kUnsupported is a capability verdict, not an outage: it must surface.
  EXPECT_EQ(executor.Execute(*plan).status().code(),
            StatusCode::kUnsupported);
}

TEST_F(FaultExecFixture, ZeroFaultRunIsBitIdenticalWithToleranceEnabled) {
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"}))});

  Executor plain(&source_);
  const Result<RowSet> baseline = plain.Execute(*plan);
  ASSERT_TRUE(baseline.ok());

  CircuitBreaker breaker({}, &clock_);
  ExecOptions options = RetryOptions(5);
  options.breaker = &breaker;
  options.degrade_unions = true;
  source_.ResetStats();
  Executor tolerant(&source_, nullptr, options);
  const Result<RowSet> rows = tolerant.Execute(*plan);
  ASSERT_TRUE(rows.ok());

  EXPECT_EQ(rows->size(), baseline.value().size());
  for (const Row& row : baseline.value().rows()) {
    EXPECT_TRUE(rows.value().Contains(row));
  }
  EXPECT_EQ(tolerant.stats().source_queries, plain.stats().source_queries);
  EXPECT_EQ(tolerant.stats().rows_transferred,
            plain.stats().rows_transferred);
  EXPECT_EQ(tolerant.stats().retries, 0u);
  EXPECT_EQ(tolerant.stats().dropped_branches, 0u);
  EXPECT_EQ(tolerant.stats().breaker_rejections, 0u);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // No fault-tolerance path touched the clock.
  EXPECT_EQ(clock_.Now().time_since_epoch().count(), 0);
}

// ---------------------------------------------------------------------------
// Mediator-level: partial answers, re-planning, stats snapshot.
// ---------------------------------------------------------------------------

constexpr const char* kMediatorSsdl = R"(
source R(k: string, v: int) {
  rule s1 -> k = $string;
  rule s2 -> v < $int;
  rule s3 -> v >= $int;
  export s1 : {k, v};
  export s2 : {k, v};
  export s3 : {k, v};
})";

class MediatorFaultTest : public ::testing::Test {
 protected:
  std::unique_ptr<Mediator> MakeMediator(Mediator::Options options) {
    options.clock = &clock_;
    auto mediator = std::make_unique<Mediator>(options);
    Result<SourceDescription> description = ParseSsdl(kMediatorSsdl);
    EXPECT_TRUE(description.ok());
    auto table = std::make_unique<Table>("R", description->schema());
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(table
                      ->AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                      Value::Int(i)})
                      .ok());
    }
    EXPECT_TRUE(mediator
                    ->RegisterSource(std::move(description).value(),
                                     std::move(table))
                    .ok());
    return mediator;
  }

  Source* SourceOf(Mediator* mediator) {
    Result<CatalogEntry*> entry = mediator->catalog()->Find("R");
    EXPECT_TRUE(entry.ok());
    return (*entry)->source();
  }

  FakeClock clock_;
};

TEST_F(MediatorFaultTest, HardOutageYieldsAnnotatedPartialAnswer) {
  Mediator::Options options;
  options.partial_results = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  // Hard outage over the first call: whichever ∨-branch runs first dies.
  FaultPolicy policy;
  policy.outages.push_back({0, 1});
  SourceOf(mediator.get())->set_fault_policy(policy);

  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k, v FROM R WHERE k = \"odd\" or v < 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->completeness.complete);
  ASSERT_EQ(result->completeness.dropped_sub_queries.size(), 1u);
  EXPECT_EQ(result->exec.dropped_branches, 1u);
  // The full answer has 7 rows; a one-branch answer is a strict subset.
  EXPECT_GT(result->rows.size(), 0u);
  EXPECT_LT(result->rows.size(), 7u);

  const Mediator::Stats stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.fault_tolerance.queries_ok, 1u);
  EXPECT_EQ(stats.fault_tolerance.queries_partial, 1u);
  EXPECT_EQ(stats.fault_tolerance.dropped_branches, 1u);
}

TEST_F(MediatorFaultTest, CompleteAnswersStayUnannotated) {
  Mediator::Options options;
  options.partial_results = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k, v FROM R WHERE k = \"odd\" or v < 3");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->completeness.complete);
  EXPECT_TRUE(result->completeness.dropped_sub_queries.empty());
  // odd rows (v = 1, 3, 5, 7, 9) ∪ v < 3 rows (0, 1, 2) = 7 distinct rows.
  EXPECT_EQ(result->rows.size(), 7u);
}

TEST_F(MediatorFaultTest, ConjunctiveQueriesFailRatherThanDegrade) {
  Mediator::Options options;
  options.partial_results = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(100);
  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k FROM R WHERE k = \"odd\" and v < 5");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(mediator->StatsSnapshot().fault_tolerance.queries_failed, 1u);
}

TEST_F(MediatorFaultTest, ReplanRoutesAroundAFailedSubQuery) {
  Mediator::Options options;
  options.replan_on_failure = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  // Exactly the first fetch fails; with no retries configured, the
  // execution fails and the mediator asks the planner to route around the
  // failed SP. The conjunction can be fetched through either atom, so an
  // alternative exists in the Choice space.
  SourceOf(mediator.get())->fault_injector()->FailNextN(1);

  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k FROM R WHERE k = \"odd\" and v < 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->replanned);
  EXPECT_EQ(result->rows.size(), 1u);  // {k: "odd"}

  const Mediator::Stats stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.fault_tolerance.queries_replanned, 1u);
  EXPECT_EQ(stats.fault_tolerance.queries_ok, 1u);
  EXPECT_EQ(stats.fault_tolerance.queries_failed, 0u);
}

TEST_F(MediatorFaultTest, ReplanWorksAcrossPlannerStrategies) {
  // GenModular's avoidance path resolves its EPG Choice spaces directly;
  // same recovery as GenCompact's reduced-CT path.
  Mediator::Options options;
  options.replan_on_failure = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(1);
  const Result<Mediator::QueryResult> result = mediator->QueryCondition(
      "R", Parse("k = \"odd\" and v < 5"), {"k"}, Strategy::kGenModular);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->replanned);
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST_F(MediatorFaultTest, ReplanGivesUpWhenNoAlternativeAvoidsTheFailure) {
  Mediator::Options options;
  options.replan_on_failure = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(100);
  // Single-atom query: the only feasible plan IS the failed sub-query.
  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k, v FROM R WHERE v < 5");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(MediatorFaultTest, RetriesRecoverWithoutReplanOrDegradation) {
  Mediator::Options options;
  options.retry.max_attempts = 4;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(2);
  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k, v FROM R WHERE v < 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->completeness.complete);
  EXPECT_FALSE(result->replanned);
  EXPECT_EQ(result->rows.size(), 5u);
  EXPECT_EQ(result->exec.retries, 2u);
  EXPECT_EQ(mediator->StatsSnapshot().fault_tolerance.retries, 2u);
}

TEST_F(MediatorFaultTest, StatsSnapshotGathersEveryLayer) {
  Mediator::Options options;
  options.enable_circuit_breaker = true;
  options.retry.max_attempts = 2;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(1);

  ASSERT_TRUE(mediator->Query("SELECT k, v FROM R WHERE v < 5").ok());
  ASSERT_TRUE(mediator->Query("SELECT k, v FROM R WHERE v < 5").ok());

  const Mediator::Stats stats = mediator->StatsSnapshot();
  ASSERT_EQ(stats.sources.size(), 1u);
  EXPECT_EQ(stats.sources[0].name, "R");
  EXPECT_EQ(stats.sources[0].source.queries_answered, 2u);
  EXPECT_EQ(stats.sources[0].source.queries_unavailable, 1u);
  EXPECT_EQ(stats.sources[0].faults.injected_unavailable, 1u);
  EXPECT_TRUE(stats.sources[0].has_breaker);
  EXPECT_EQ(stats.sources[0].breaker_state, CircuitBreaker::State::kClosed);
  EXPECT_GT(stats.sources[0].check_calls, 0u);
  EXPECT_EQ(stats.fault_tolerance.queries_ok, 2u);
  EXPECT_EQ(stats.fault_tolerance.retries, 1u);
  // Second identical query hits the plan cache.
  EXPECT_EQ(stats.plan_cache.hits, 1u);
  EXPECT_GT(stats.interner.live_nodes, 0u);

  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("plan_cache.hits"), std::string::npos);
  EXPECT_NE(rendered.find("source[R].answered"), std::string::npos);
  EXPECT_NE(rendered.find("retries.total"), std::string::npos);
  EXPECT_NE(rendered.find("breaker"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Acceptance: with seeded 20% transient faults, the retry+breaker discipline
// recovers ≥99% of the queries a zero-retry run fails — deterministically.
// ---------------------------------------------------------------------------

class FaultAcceptanceTest : public FaultExecFixture {
 protected:
  static constexpr int kQueries = 400;

  FaultPolicy TransientPolicy(double rate) {
    FaultPolicy policy;
    policy.seed = 20240807;
    policy.transient_error_rate = rate;
    return policy;
  }

  // Runs kQueries single-SP executions and returns (#failed, #source calls).
  std::pair<size_t, uint64_t> RunSweep(const ExecOptions& options,
                                       CircuitBreaker* breaker) {
    size_t failed = 0;
    for (int i = 0; i < kQueries; ++i) {
      ExecOptions exec_options = options;
      exec_options.breaker = breaker;
      Executor executor(&source_, nullptr, exec_options);
      const PlanPtr plan = PlanNode::SourceQuery(
          Parse("v < " + std::to_string(i % 10)), Attrs({"v"}));
      if (!executor.Execute(*plan).ok()) ++failed;
    }
    return {failed, source_.fault_injector()->stats().calls};
  }
};

TEST_F(FaultAcceptanceTest, RetriesRecoverAtLeast99PercentOfFaultedQueries) {
  // Baseline: no retries under 20% transient faults.
  source_.set_fault_policy(TransientPolicy(0.20));
  ExecOptions no_retry;
  no_retry.clock = &clock_;
  const auto [f0, calls0] = RunSweep(no_retry, nullptr);
  // ~80 of 400 expected; the seed pins the exact count.
  EXPECT_GT(f0, 40u);
  EXPECT_LT(f0, 140u);

  // Same fault policy, fresh schedule, retries + breaker on.
  ExecOptions with_retry;
  with_retry.clock = &clock_;
  with_retry.retry.max_attempts = 6;
  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 8;
  breaker_options.open_duration = microseconds(1000);
  source_.set_fault_policy(TransientPolicy(0.20));
  CircuitBreaker breaker(breaker_options, &clock_);
  const auto [f1, calls1] = RunSweep(with_retry, &breaker);

  // Recovery target: the tolerant run fails at most 1% of what the
  // zero-retry run failed.
  EXPECT_LE(f1 * 100, f0) << "zero-retry failures: " << f0
                          << ", tolerant failures: " << f1;
  EXPECT_GT(calls1, calls0);  // recovery is paid for with extra round trips

  // Determinism: an identical fresh run replays the exact same schedule —
  // same failure count, same number of source calls.
  source_.set_fault_policy(TransientPolicy(0.20));
  CircuitBreaker breaker2(breaker_options, &clock_);
  const auto [f2, calls2] = RunSweep(with_retry, &breaker2);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(calls1, calls2);
}

TEST_F(FaultAcceptanceTest, ZeroFaultSweepNeverRetriesOrFails) {
  source_.set_fault_policy(TransientPolicy(0.0));
  ExecOptions with_retry;
  with_retry.clock = &clock_;
  with_retry.retry.max_attempts = 6;
  CircuitBreaker breaker({}, &clock_);
  const auto [failed, calls] = RunSweep(with_retry, &breaker);
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(calls, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(breaker.stats().rejected, 0u);
  EXPECT_EQ(clock_.Now().time_since_epoch().count(), 0);
}

// ---------------------------------------------------------------------------
// P² streaming quantiles and the per-source latency digest.
// ---------------------------------------------------------------------------

TEST(P2QuantileTest, ConstantStreamIsExactAtEveryQuantile) {
  for (const double q : {0.5, 0.9, 0.99}) {
    P2Quantile estimator(q);
    for (int i = 0; i < 50; ++i) estimator.Add(1000.0);
    EXPECT_DOUBLE_EQ(estimator.Value(), 1000.0) << "q=" << q;
    EXPECT_EQ(estimator.count(), 50u);
  }
}

TEST(P2QuantileTest, SmallSamplesAnswerWithExactOrderStatistics) {
  P2Quantile median(0.5);
  EXPECT_DOUBLE_EQ(median.Value(), 0.0);  // empty digest reads zero
  median.Add(30.0);
  median.Add(10.0);
  median.Add(20.0);
  EXPECT_DOUBLE_EQ(median.Value(), 20.0);

  P2Quantile tail(0.99);
  tail.Add(5.0);
  tail.Add(1.0);
  tail.Add(9.0);
  EXPECT_DOUBLE_EQ(tail.Value(), 9.0);
}

TEST(P2QuantileTest, TracksUniformStreamWithinTolerance) {
  // 0..10006 each exactly once, in a fixed scrambled order (7919 is coprime
  // to 10007, so i*7919 mod 10007 is a permutation — deterministic without
  // library randomness).
  P2Quantile p50(0.5);
  P2Quantile p99(0.99);
  constexpr int kN = 10007;
  for (int i = 0; i < kN; ++i) {
    const double x = static_cast<double>((i * 7919) % kN);
    p50.Add(x);
    p99.Add(x);
  }
  EXPECT_NEAR(p50.Value(), 5003.0, 0.05 * kN);
  EXPECT_GT(p99.Value(), 9500.0);
  EXPECT_LE(p99.Value(), static_cast<double>(kN));
}

TEST(LatencyTrackerTest, SnapshotCarriesCountMeanMinMaxAndQuantiles) {
  LatencyTracker tracker;
  EXPECT_EQ(tracker.Quantile(0.99), microseconds(0));
  EXPECT_EQ(tracker.snapshot().count, 0u);

  tracker.Record(microseconds(10));
  tracker.Record(microseconds(30));
  tracker.Record(microseconds(20));
  const LatencyTracker::Snapshot snap = tracker.snapshot();
  EXPECT_EQ(snap.count, 3u);
  EXPECT_EQ(snap.mean, microseconds(20));
  EXPECT_EQ(snap.min, microseconds(10));
  EXPECT_EQ(snap.max, microseconds(30));
  EXPECT_EQ(snap.p50, microseconds(20));  // exact below five samples
  EXPECT_EQ(snap.p99, microseconds(30));
}

TEST(LatencyTrackerTest, QuantileAnswersFromTheNearestTrackedEstimator) {
  // Tracked set is {0.5, 0.9, 0.95, 0.99}: 0.93 snaps to 0.95 and 0.97 to
  // 0.95 as well — identical estimator, identical answer.
  LatencyTracker tracker;
  for (int i = 1; i <= 1000; ++i) tracker.Record(microseconds(i));
  EXPECT_EQ(tracker.Quantile(0.93), tracker.Quantile(0.95));
  EXPECT_EQ(tracker.Quantile(0.97), tracker.Quantile(0.95));
  // And the tracked points themselves order sensibly on a uniform stream.
  EXPECT_LT(tracker.Quantile(0.5), tracker.Quantile(0.99));
}

TEST(LatencyTrackerTest, ConcurrentRecordsStayConsistent) {
  LatencyTracker tracker;
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&tracker] {
      for (int i = 0; i < 500; ++i) tracker.Record(microseconds(100));
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(tracker.count(), 4000u);
  const LatencyTracker::Snapshot snap = tracker.snapshot();
  EXPECT_EQ(snap.mean, microseconds(100));
  EXPECT_EQ(snap.min, microseconds(100));
  EXPECT_EQ(snap.max, microseconds(100));
  EXPECT_EQ(tracker.Quantile(0.5), microseconds(100));
}

// ---------------------------------------------------------------------------
// Hedged requests. Determinism recipe: a one-worker pool whose only worker
// is parked on a latch keeps the primary task queued, so the owner's wait is
// what decides the race — and on a FakeClock, AwaitFor advances time by
// exactly the hedge delay instead of blocking. The hedge then runs inline on
// the owner and wins while the primary is still unstarted.
// ---------------------------------------------------------------------------

class HedgeFixture : public FaultExecFixture {
 protected:
  /// Seeds the digest with identical samples so every quantile reads
  /// `value_us` exactly.
  void WarmDigest(int64_t value_us, int samples = 50) {
    for (int i = 0; i < samples; ++i) {
      tracker_.Record(microseconds(value_us));
    }
  }

  ExecOptions HedgeOptions() {
    ExecOptions options;
    options.clock = &clock_;
    options.latency = &tracker_;
    options.hedge.enabled = true;
    options.hedge.quantile = 0.99;
    options.hedge.min_samples = 20;
    return options;
  }

  /// Parks the pool's only worker until ReleaseWorker(). Submitted first, so
  /// FIFO order guarantees any later task stays queued behind it.
  void OccupyWorker(ThreadPool* pool) {
    gate_ = std::make_shared<std::promise<void>>();
    std::shared_future<void> wait = gate_->get_future().share();
    blocker_ = pool->Submit([wait] { wait.get(); });
  }
  void ReleaseWorker() {
    gate_->set_value();
    blocker_.wait();
  }

  LatencyTracker tracker_;
  std::shared_ptr<std::promise<void>> gate_;
  std::future<void> blocker_;
};

TEST_F(HedgeFixture, HedgeFiresExactlyAtTheDigestQuantile) {
  WarmDigest(1000);
  auto pool = std::make_unique<ThreadPool>(1);
  OccupyWorker(pool.get());
  Executor executor(&source_, pool.get(), HedgeOptions());
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));

  const auto t0 = clock_.Now();
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
  // The owner waited the digest's p99 — not a tick more — then hedged.
  EXPECT_EQ(clock_.Now() - t0, microseconds(1000));

  const ExecStats stats = executor.stats();
  EXPECT_EQ(stats.hedges_launched, 1u);
  EXPECT_EQ(stats.hedges_won, 1u);
  EXPECT_EQ(stats.hedges_cancelled, 1u);  // the primary never started
  EXPECT_EQ(stats.source_queries, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.failed_sub_queries, 0u);
  EXPECT_EQ(tracker_.count(), 51u);  // the winner fed the digest

  // Unblock the worker and drain the pool: the cancelled primary's task
  // shell sees the claim already taken and exits without ever contacting
  // the source.
  ReleaseWorker();
  pool.reset();
  EXPECT_EQ(source_.stats().queries_received, 1u);
}

TEST_F(HedgeFixture, HedgingStaysDisarmedBelowMinSamples) {
  WarmDigest(1000, /*samples=*/19);  // one short of min_samples
  auto pool = std::make_unique<ThreadPool>(1);
  OccupyWorker(pool.get());
  Executor executor(&source_, pool.get(), HedgeOptions());
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));

  ASSERT_TRUE(executor.Execute(*plan).ok());
  EXPECT_EQ(executor.stats().hedges_launched, 0u);
  // Disarmed hedging never consults the clock: no wait happened at all.
  EXPECT_EQ(clock_.Now().time_since_epoch().count(), 0);
  EXPECT_EQ(source_.stats().queries_received, 1u);

  // The successful inline fetch was the 20th digest sample: armed now.
  ASSERT_EQ(tracker_.count(), 20u);
  ASSERT_TRUE(executor.Execute(*plan).ok());
  EXPECT_EQ(executor.stats().hedges_launched, 1u);
  EXPECT_GT(clock_.Now().time_since_epoch().count(), 0);

  ReleaseWorker();
  pool.reset();
}

TEST_F(HedgeFixture, HedgesDrawFromTheRetryTokenBudget) {
  WarmDigest(1000);
  auto pool = std::make_unique<ThreadPool>(1);
  OccupyWorker(pool.get());
  ExecOptions options = HedgeOptions();
  options.retry.retry_budget = 0;  // no tokens: hedging is priced out
  Executor executor(&source_, pool.get(), options);
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));

  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
  // The owner still waited out the hedge point, then — with no token to
  // spend — claimed the queued primary and ran it inline.
  EXPECT_EQ(clock_.Now().time_since_epoch(), microseconds(1000));
  EXPECT_EQ(executor.stats().hedges_launched, 0u);
  EXPECT_EQ(source_.stats().queries_received, 1u);

  ReleaseWorker();
  pool.reset();
}

TEST_F(HedgeFixture, HedgesAreSuppressedWhileTheBreakerIsHalfOpen) {
  WarmDigest(1000);
  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 1;
  breaker_options.open_duration = microseconds(500);
  breaker_options.half_open_probes = 2;
  CircuitBreaker breaker(breaker_options, &clock_);
  ASSERT_TRUE(breaker.Allow());
  breaker.OnFailure();  // trips open
  clock_.Advance(microseconds(501));
  ASSERT_TRUE(breaker.Allow());  // consume one probe slot: now half-open
  ASSERT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);

  auto pool = std::make_unique<ThreadPool>(1);
  OccupyWorker(pool.get());
  ExecOptions options = HedgeOptions();
  options.breaker = &breaker;
  Executor executor(&source_, pool.get(), options);
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));

  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // Probes must measure the source, not the race: no hedge launched, the
  // primary ran as the second half-open probe and closed the breaker.
  EXPECT_EQ(executor.stats().hedges_launched, 0u);
  EXPECT_EQ(source_.stats().queries_received, 1u);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  breaker.OnSuccess();  // pair the manually consumed probe

  ReleaseWorker();
  pool.reset();
}

TEST_F(HedgeFixture, FailedHedgeFallsBackToThePrimary) {
  WarmDigest(1000);
  // The primary is parked behind the busy worker, so the hedge is the first
  // source contact — and eats the scripted fault.
  source_.fault_injector()->FailNextN(1);
  auto pool = std::make_unique<ThreadPool>(1);
  OccupyWorker(pool.get());
  Executor executor(&source_, pool.get(), HedgeOptions());
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));

  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
  const ExecStats stats = executor.stats();
  EXPECT_EQ(stats.hedges_launched, 1u);
  EXPECT_EQ(stats.hedges_won, 0u);
  EXPECT_EQ(stats.hedges_cancelled, 0u);
  EXPECT_EQ(stats.failed_sub_queries, 0u);
  EXPECT_EQ(stats.source_queries, 1u);
  EXPECT_EQ(source_.stats().queries_received, 2u);  // failed hedge + primary

  ReleaseWorker();
  pool.reset();
}

TEST_F(HedgeFixture, WinningHedgeNeverPoisonsTheDedupMap) {
  WarmDigest(1000);
  auto pool = std::make_unique<ThreadPool>(1);
  OccupyWorker(pool.get());
  Executor executor(&source_, pool.get(), HedgeOptions());
  // Two identical SP children: the second must join the first's (hedged)
  // fetch, and the cancelled loser must leave no failure residue behind.
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}))});

  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
  const ExecStats stats = executor.stats();
  EXPECT_EQ(stats.source_queries, 1u);  // dedup held across the race
  EXPECT_EQ(stats.hedges_launched, 1u);
  EXPECT_EQ(stats.hedges_won, 1u);
  EXPECT_EQ(stats.failed_sub_queries, 0u);
  EXPECT_TRUE(executor.failed_sub_query_keys().empty());
  EXPECT_TRUE(executor.dropped_sub_queries().empty());
  EXPECT_EQ(source_.stats().queries_received, 1u);

  ReleaseWorker();
  pool.reset();
  // Draining the pool ran the cancelled primary's shell: still no contact.
  EXPECT_EQ(source_.stats().queries_received, 1u);
}

TEST_F(HedgeFixture, ConcurrentHedgedExecutionsAreRaceFree) {
  // Real clock, real sleeps: the source answers in ~200us while the digest
  // promises 50us, so fetches genuinely race their hedges. Eight client
  // threads share the pool, the digest, and the source — the TSan surface.
  for (int i = 0; i < 100; ++i) tracker_.Record(microseconds(50));
  source_.set_simulated_latency(microseconds(200));
  ThreadPool pool(4);
  std::atomic<uint64_t> total_hedges{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 8; ++t) {
    clients.emplace_back([this, &pool, &total_hedges] {
      for (int i = 0; i < 10; ++i) {
        ExecOptions options;  // real clock
        options.latency = &tracker_;
        options.hedge.enabled = true;
        options.hedge.quantile = 0.5;
        options.hedge.min_samples = 10;
        Executor executor(&source_, &pool, options);
        const PlanPtr plan = PlanNode::UnionOf(
            {PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"})),
             PlanNode::SourceQuery(Parse("v >= 7"), Attrs({"v"}))});
        const Result<RowSet> rows = executor.Execute(*plan);
        EXPECT_TRUE(rows.ok()) << rows.status().ToString();
        if (rows.ok()) {
          EXPECT_EQ(rows->size(), 6u);
        }
        const ExecStats stats = executor.stats();
        EXPECT_LE(stats.hedges_won, stats.hedges_launched);
        total_hedges.fetch_add(stats.hedges_launched,
                               std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  // With a 50us digest against a 200us source, hedges must actually fire.
  EXPECT_GT(total_hedges.load(), 0u);
}

// ---------------------------------------------------------------------------
// Mediator-level resilience: load shedding, breaker-aware cost penalties,
// end-to-end hedging, and snapshot rates.
// ---------------------------------------------------------------------------

TEST_F(MediatorFaultTest, LoadSheddingFailsFastWhileTheBreakerIsOpen) {
  Mediator::Options options;
  options.enable_circuit_breaker = true;
  options.breaker.failure_threshold = 2;
  options.breaker.open_duration = microseconds(1000);
  options.load_shedding = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(2);

  const char* kSql = "SELECT k, v FROM R WHERE v < 5";
  EXPECT_FALSE(mediator->Query(kSql).ok());
  EXPECT_FALSE(mediator->Query(kSql).ok());  // breaker is open now

  const size_t received = SourceOf(mediator.get())->stats().queries_received;
  const Result<Mediator::QueryResult> shed = mediator->Query(kSql);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status().message().find("shed"), std::string::npos);
  // Shed before planning: not one more byte reached the source.
  EXPECT_EQ(SourceOf(mediator.get())->stats().queries_received, received);

  Mediator::Stats stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.fault_tolerance.queries_shed, 1u);
  EXPECT_EQ(stats.fault_tolerance.queries_failed, 2u);  // shed ≠ failed

  // Once the open window expires the effective state is half-open, so the
  // query is NOT shed: the probe goes through, succeeds, and heals the
  // breaker. EffectiveState is what keeps shedding from being forever.
  clock_.Advance(microseconds(1001));
  const Result<Mediator::QueryResult> recovered = mediator->Query(kSql);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_EQ(recovered->rows.size(), 5u);
  stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.fault_tolerance.queries_shed, 1u);
  EXPECT_EQ(stats.sources[0].breaker_state, CircuitBreaker::State::kClosed);

  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("queries.shed"), std::string::npos);
}

TEST_F(MediatorFaultTest, BreakerAwareCostsInflateK1AndBypassTheCache) {
  Mediator::Options options;
  options.enable_circuit_breaker = true;
  options.breaker.failure_threshold = 2;
  options.breaker.open_duration = microseconds(1000);
  options.breaker_aware_costs = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);

  const char* kHealthy = "SELECT k, v FROM R WHERE v < 5";
  const char* kDegraded = "SELECT k, v FROM R WHERE v >= 7";

  // Healthy: plans flow through the cache normally.
  ASSERT_TRUE(mediator->Query(kHealthy).ok());
  ASSERT_TRUE(mediator->Query(kHealthy).ok());
  Mediator::Stats stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.plan_cache.misses, 1u);
  EXPECT_EQ(stats.plan_cache.hits, 1u);
  EXPECT_EQ(stats.sources[0].cost_penalty, 1.0);
  EXPECT_EQ(stats.plan_cache.per_shard.size(), stats.plan_cache.shards);

  // Trip the breaker (two hard failures; the plans were still cache hits).
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(2);
  EXPECT_FALSE(mediator->Query(kHealthy).ok());
  EXPECT_FALSE(mediator->Query(kHealthy).ok());

  // Open breaker: k1 is inflated ×8 and the penalized plan never touches
  // the cache — no lookup, no insert.
  EXPECT_FALSE(mediator->Query(kDegraded).ok());
  stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.sources[0].cost_penalty, 8.0);
  EXPECT_EQ(stats.plan_cache.misses, 1u);
  EXPECT_EQ(stats.plan_cache.hits, 3u);
  EXPECT_EQ(stats.plan_cache.size, 1u);
  EXPECT_NE(stats.ToString().find("cost_penalty"), std::string::npos);

  // Window expires → effectively half-open (×3, still bypassing); the probe
  // succeeds and closes the breaker.
  clock_.Advance(microseconds(1001));
  ASSERT_TRUE(mediator->Query(kDegraded).ok());
  stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.plan_cache.misses, 1u);  // still bypassed while penalized
  EXPECT_EQ(stats.sources[0].breaker_state, CircuitBreaker::State::kClosed);

  // Healed: the penalty refreshes to 1 and the same query is cacheable
  // again — a miss+insert, then a hit.
  ASSERT_TRUE(mediator->Query(kDegraded).ok());
  ASSERT_TRUE(mediator->Query(kDegraded).ok());
  stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.sources[0].cost_penalty, 1.0);
  EXPECT_EQ(stats.plan_cache.misses, 2u);
  EXPECT_EQ(stats.plan_cache.hits, 4u);
  EXPECT_EQ(stats.plan_cache.size, 2u);
}

TEST_F(MediatorFaultTest, MediatorHedgesSlowFetchesEndToEnd) {
  Mediator::Options options;
  options.num_threads = 2;  // hedging needs the pool
  options.hedge.enabled = true;
  options.hedge.min_samples = 20;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);

  // Warm the per-source digest by hand (to ~100us) and make the source
  // really take 10ms: every fetch blows past the digest's p99 and hedges.
  Result<CatalogEntry*> entry = mediator->catalog()->Find("R");
  ASSERT_TRUE(entry.ok());
  ASSERT_NE((*entry)->latency_tracker(), nullptr);
  for (int i = 0; i < 50; ++i) {
    (*entry)->latency_tracker()->Record(microseconds(100));
  }
  SourceOf(mediator.get())->set_simulated_latency(microseconds(10000));

  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k, v FROM R WHERE v < 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 5u);
  EXPECT_EQ(result->exec.hedges_launched, 1u);
  // Who "wins" differs by executor. The pool path's owner thread runs the
  // hedge inline and takes its success without re-checking the primary; the
  // event loop (GENCOMPACT_ASYNC=1 leg) runs a true first-completion race,
  // which the earlier-started primary wins when both calls take 10ms.
  const char* async_env = std::getenv("GENCOMPACT_ASYNC");
  const bool async_forced = async_env != nullptr && *async_env == '1';
  const uint64_t expected_wins = async_forced ? 0u : 1u;
  EXPECT_EQ(result->exec.hedges_won, expected_wins);

  const Mediator::Stats stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.fault_tolerance.hedges_launched, 1u);
  EXPECT_EQ(stats.fault_tolerance.hedges_won, expected_wins);
  EXPECT_TRUE(stats.sources[0].has_latency);
  EXPECT_GT(stats.sources[0].latency.count, 50u);
  EXPECT_NE(stats.ToString().find("latency"), std::string::npos);
}

TEST_F(MediatorFaultTest, DiffSinceTurnsCounterDeltasIntoRates) {
  std::unique_ptr<Mediator> mediator = MakeMediator({});
  const Mediator::Stats before = mediator->StatsSnapshot();

  const char* kOk = "SELECT k, v FROM R WHERE v < 5";
  ASSERT_TRUE(mediator->Query(kOk).ok());
  ASSERT_TRUE(mediator->Query(kOk).ok());  // cache hit
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(1);
  EXPECT_FALSE(mediator->Query("SELECT k, v FROM R WHERE v >= 7").ok());

  clock_.Advance(microseconds(2000000));  // exactly 2 seconds
  const Mediator::Stats after = mediator->StatsSnapshot();
  const Mediator::Stats::Rates rates = after.DiffSince(before);
  EXPECT_DOUBLE_EQ(rates.interval_seconds, 2.0);
  EXPECT_DOUBLE_EQ(rates.qps, 1.5);  // 3 completed / 2s
  EXPECT_NEAR(rates.success_rate, 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(rates.shed_rate, 0.0);
  EXPECT_DOUBLE_EQ(rates.hedge_rate, 0.0);
  // Interval lookups: miss(v<5), hit(v<5), miss(v>=7) → 1 hit / 3 lookups.
  EXPECT_NEAR(rates.cache_hit_rate, 1.0 / 3.0, 1e-9);
  EXPECT_NE(rates.ToString().find("rates.qps"), std::string::npos);

  // Same snapshot diffed against itself: a zero interval yields zero rates
  // instead of dividing by zero.
  const Mediator::Stats::Rates zero = after.DiffSince(after);
  EXPECT_DOUBLE_EQ(zero.interval_seconds, 0.0);
  EXPECT_DOUBLE_EQ(zero.qps, 0.0);
}

// ---------------------------------------------------------------------------
// Cross-source join failover: the non-driving side falls over to a
// schema-compatible replica when the configured source is down.
// ---------------------------------------------------------------------------

class JoinFailoverTest : public ::testing::Test {
 protected:
  static constexpr const char* kLeftSsdl = R"(
    source L(k: string, v: int) {
      rule f -> v < $int | k = $string;
      export f : {k, v};
    })";

  // R1 and R2 export the same schema (k: string, w: int): replicas. The
  // recursive klist rule accepts the bound key lists a bind-join pushes.
  static std::string RightSsdl(const std::string& name) {
    return "source " + name + R"((k: string, w: int) {
      rule klist -> k = $string or k = $string
                  | k = $string or klist;
      rule f -> k = $string | klist | ( klist );
      export f : {k, w};
    })";
  }

  std::unique_ptr<Mediator> MakeMediator(Mediator::Options options) {
    options.clock = &clock_;
    auto mediator = std::make_unique<Mediator>(options);

    Result<SourceDescription> left = ParseSsdl(kLeftSsdl);
    EXPECT_TRUE(left.ok()) << left.status().ToString();
    auto left_table = std::make_unique<Table>("L", left->schema());
    for (const auto& [k, v] : std::vector<std::pair<const char*, int64_t>>{
             {"a", 1}, {"b", 2}, {"c", 3}}) {
      EXPECT_TRUE(
          left_table->AppendValues({Value::String(k), Value::Int(v)}).ok());
    }
    EXPECT_TRUE(mediator
                    ->RegisterSource(std::move(left).value(),
                                     std::move(left_table))
                    .ok());

    for (const char* name : {"R1", "R2"}) {
      Result<SourceDescription> right = ParseSsdl(RightSsdl(name));
      EXPECT_TRUE(right.ok()) << right.status().ToString();
      auto right_table = std::make_unique<Table>(name, right->schema());
      for (const auto& [k, w] : std::vector<std::pair<const char*, int64_t>>{
               {"a", 10}, {"b", 20}}) {
        EXPECT_TRUE(
            right_table->AppendValues({Value::String(k), Value::Int(w)}).ok());
      }
      EXPECT_TRUE(mediator
                      ->RegisterSource(std::move(right).value(),
                                       std::move(right_table))
                      .ok());
    }
    return mediator;
  }

  Source* SourceOf(Mediator* mediator, const std::string& name) {
    Result<CatalogEntry*> entry = mediator->catalog()->Find(name);
    EXPECT_TRUE(entry.ok());
    return (*entry)->source();
  }

  static void TakeDown(Source* source) {
    FaultPolicy outage;
    outage.outages.push_back({0, 1000000});
    source->set_fault_policy(outage);
  }

  static constexpr const char* kJoinSql =
      "SELECT L.k, L.v, R1.w FROM L JOIN R1 ON L.k = R1.k "
      "WHERE L.v < 100";

  FakeClock clock_;
};

TEST_F(JoinFailoverTest, RightSideFallsOverToTheReplica) {
  Mediator::Options options;
  options.join_failover = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  TakeDown(SourceOf(mediator.get(), "R1"));

  const Result<Mediator::QueryResult> result = mediator->Query(kJoinSql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 2u);  // keys a, b join; c has no match

  const Mediator::Stats stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.fault_tolerance.join_failovers, 1u);
  // R1 was contacted (and failed); R2 actually answered.
  EXPECT_GT(SourceOf(mediator.get(), "R1")->stats().queries_unavailable, 0u);
  EXPECT_GT(SourceOf(mediator.get(), "R2")->stats().queries_answered, 0u);
  EXPECT_NE(stats.ToString().find("join.failovers"), std::string::npos);
}

TEST_F(JoinFailoverTest, WithoutFailoverTheJoinFailsOutright) {
  std::unique_ptr<Mediator> mediator = MakeMediator({});  // failover off
  TakeDown(SourceOf(mediator.get(), "R1"));
  const Result<Mediator::QueryResult> result = mediator->Query(kJoinSql);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(mediator->StatsSnapshot().fault_tolerance.join_failovers, 0u);
}

TEST_F(JoinFailoverTest, HealthyJoinNeverConsultsTheAlternate) {
  Mediator::Options options;
  options.join_failover = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  const Result<Mediator::QueryResult> result = mediator->Query(kJoinSql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 2u);
  EXPECT_EQ(mediator->StatsSnapshot().fault_tolerance.join_failovers, 0u);
  EXPECT_EQ(SourceOf(mediator.get(), "R2")->stats().queries_received, 0u);
}

}  // namespace
}  // namespace gencompact
