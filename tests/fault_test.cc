// Fault-tolerance test suite: deterministic fault injection, retry/backoff,
// circuit breaking, graceful union degradation, and avoid-set re-planning.
// Every schedule here is seeded and every "wait" runs on a FakeClock, so the
// suite is instantaneous and replays bit-identically run after run.
#include <gtest/gtest.h>

#include <chrono>
#include <set>
#include <thread>
#include <vector>

#include "common/backoff.h"
#include "common/clock.h"
#include "common/thread_pool.h"
#include "exec/circuit_breaker.h"
#include "exec/executor.h"
#include "exec/fault_policy.h"
#include "expr/condition_parser.h"
#include "mediator/mediator.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

using std::chrono::microseconds;

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

// ---------------------------------------------------------------------------
// Backoff
// ---------------------------------------------------------------------------

TEST(BackoffTest, DelaysStayWithinPolicyBounds) {
  BackoffPolicy policy;
  policy.base = microseconds(1000);
  policy.cap = microseconds(20000);
  DecorrelatedJitterBackoff backoff(policy, /*seed=*/7);
  microseconds prev = policy.base;
  for (int i = 0; i < 200; ++i) {
    const microseconds d = backoff.NextDelay();
    EXPECT_GE(d, policy.base);
    EXPECT_LE(d, policy.cap);
    // Decorrelated jitter: each delay is drawn from [base, 3 * previous].
    EXPECT_LE(d.count(), std::min<int64_t>(3 * prev.count(),
                                           policy.cap.count()));
    prev = d;
  }
}

TEST(BackoffTest, SameSeedReplaysSameSchedule) {
  const BackoffPolicy policy;
  DecorrelatedJitterBackoff a(policy, 42);
  DecorrelatedJitterBackoff b(policy, 42);
  DecorrelatedJitterBackoff c(policy, 43);
  bool any_difference = false;
  for (int i = 0; i < 64; ++i) {
    const microseconds da = a.NextDelay();
    EXPECT_EQ(da, b.NextDelay());
    any_difference |= (da != c.NextDelay());
  }
  EXPECT_TRUE(any_difference);  // different seeds draw different jitter
}

TEST(BackoffTest, ResetRestartsTheSchedule) {
  DecorrelatedJitterBackoff a(BackoffPolicy{}, 5);
  std::vector<microseconds> first;
  for (int i = 0; i < 8; ++i) first.push_back(a.NextDelay());
  a.Reset();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(a.NextDelay(), first[i]);
}

// ---------------------------------------------------------------------------
// FakeClock
// ---------------------------------------------------------------------------

TEST(FakeClockTest, SleepAdvancesInsteadOfBlocking) {
  FakeClock clock;
  const auto t0 = clock.Now();
  clock.SleepFor(microseconds(5000));
  EXPECT_EQ(clock.Now() - t0, microseconds(5000));
  clock.Advance(microseconds(123));
  EXPECT_EQ(clock.Now() - t0, microseconds(5123));
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjectorTest, ZeroPolicyNeverFires) {
  FaultInjector injector{FaultPolicy{}};
  EXPECT_FALSE(injector.policy().active());
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(injector.NextCall().code, StatusCode::kOk);
  }
  EXPECT_EQ(injector.stats().calls, 100u);
  EXPECT_EQ(injector.stats().injected_unavailable, 0u);
}

TEST(FaultInjectorTest, ScheduleIsDeterministicFromTheSeed) {
  FaultPolicy policy;
  policy.seed = 99;
  policy.transient_error_rate = 0.3;
  FaultInjector a(policy);
  FaultInjector b(policy);
  size_t faults = 0;
  for (int i = 0; i < 500; ++i) {
    const StatusCode code = a.NextCall().code;
    EXPECT_EQ(code, b.NextCall().code) << "call " << i;
    if (code != StatusCode::kOk) ++faults;
  }
  // ~150 expected at rate 0.3; very loose bounds, but the exact count is
  // pinned by the seed so this can never flake.
  EXPECT_GT(faults, 100u);
  EXPECT_LT(faults, 200u);
  EXPECT_EQ(a.stats().injected_unavailable, faults);
}

TEST(FaultInjectorTest, ConcurrentAggregateMatchesSequentialSchedule) {
  FaultPolicy policy;
  policy.seed = 12345;
  policy.transient_error_rate = 0.25;
  constexpr int kCalls = 2000;

  FaultInjector sequential(policy);
  for (int i = 0; i < kCalls; ++i) sequential.NextCall();

  // Faults are a pure function of (seed, call index), so however the 8
  // threads interleave, the 2000 indices drawn are the same set and the
  // aggregate counters match the sequential run exactly.
  FaultInjector concurrent(policy);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&concurrent] {
      for (int i = 0; i < kCalls / 8; ++i) concurrent.NextCall();
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(concurrent.stats().calls, sequential.stats().calls);
  EXPECT_EQ(concurrent.stats().injected_unavailable,
            sequential.stats().injected_unavailable);
}

TEST(FaultInjectorTest, OutageWindowFailsEveryCallInside) {
  FaultPolicy policy;
  policy.outages.push_back({3, 6});
  FaultInjector injector(policy);
  for (uint64_t i = 0; i < 10; ++i) {
    const StatusCode code = injector.NextCall().code;
    if (i >= 3 && i < 6) {
      EXPECT_EQ(code, StatusCode::kUnavailable) << "call " << i;
    } else {
      EXPECT_EQ(code, StatusCode::kOk) << "call " << i;
    }
  }
  EXPECT_EQ(injector.stats().injected_unavailable, 3u);
}

TEST(FaultInjectorTest, FailNextNScriptsFailuresOnAnInactivePolicy) {
  FaultInjector injector{FaultPolicy{}};
  injector.FailNextN(2);
  EXPECT_EQ(injector.NextCall().code, StatusCode::kUnavailable);
  EXPECT_EQ(injector.NextCall().code, StatusCode::kUnavailable);
  EXPECT_EQ(injector.NextCall().code, StatusCode::kOk);
}

TEST(FaultInjectorTest, StuckAndSlowCallsCarryLatency) {
  FaultPolicy policy;
  policy.seed = 4;
  policy.stuck_call_rate = 1.0;
  policy.stuck_penalty = microseconds(111);
  FaultInjector stuck(policy);
  const FaultInjector::Decision d = stuck.NextCall();
  EXPECT_EQ(d.code, StatusCode::kDeadlineExceeded);
  EXPECT_EQ(d.extra_latency, microseconds(111));
  EXPECT_EQ(stuck.stats().injected_timeouts, 1u);

  FaultPolicy slow_policy;
  slow_policy.slow_call_rate = 1.0;
  slow_policy.slow_latency = microseconds(222);
  FaultInjector slow(slow_policy);
  const FaultInjector::Decision s = slow.NextCall();
  EXPECT_EQ(s.code, StatusCode::kOk);  // slow calls still answer
  EXPECT_EQ(s.extra_latency, microseconds(222));
  EXPECT_EQ(slow.stats().injected_slow, 1u);
}

// ---------------------------------------------------------------------------
// CircuitBreaker
// ---------------------------------------------------------------------------

TEST(CircuitBreakerTest, ClosedToOpenToHalfOpenToClosed) {
  FakeClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 2;
  options.open_duration = microseconds(1000);
  CircuitBreaker breaker(options, &clock);

  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_TRUE(breaker.Allow());
  breaker.OnFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  ASSERT_TRUE(breaker.Allow());
  breaker.OnFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Open: fast rejection, no source contact.
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.stats().rejected, 1u);

  // Window expires -> half-open admits one probe, holds the second.
  clock.Advance(microseconds(1001));
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());

  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().opened, 1u);
  EXPECT_EQ(breaker.stats().closed, 1u);
  EXPECT_EQ(breaker.stats().probes_admitted, 1u);
}

TEST(CircuitBreakerTest, FailedProbeReopensAFullWindow) {
  FakeClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.open_duration = microseconds(1000);
  CircuitBreaker breaker(options, &clock);

  ASSERT_TRUE(breaker.Allow());
  breaker.OnFailure();  // trips immediately
  clock.Advance(microseconds(1001));
  ASSERT_TRUE(breaker.Allow());  // probe
  breaker.OnFailure();           // probe fails
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_FALSE(breaker.Allow());  // a fresh window is in force
  EXPECT_EQ(breaker.stats().opened, 2u);
}

TEST(CircuitBreakerTest, SuccessResetsTheConsecutiveFailureStreak) {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  FakeClock clock;
  CircuitBreaker breaker(options, &clock);
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(breaker.Allow());
    breaker.OnFailure();
    ASSERT_TRUE(breaker.Allow());
    breaker.OnFailure();
    ASSERT_TRUE(breaker.Allow());
    breaker.OnSuccess();  // streak broken at 2 < 3: never trips
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.stats().opened, 0u);
}

TEST(CircuitBreakerTest, HammerConcurrentCallersKeepInvariants) {
  FakeClock clock;
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_duration = microseconds(50);
  CircuitBreaker breaker(options, &clock);

  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&breaker, &clock, t] {
      for (int i = 0; i < 2000; ++i) {
        if (breaker.Allow()) {
          // Mixed verdicts keep the breaker cycling through all states.
          if ((t + i) % 3 == 0) {
            breaker.OnFailure();
          } else {
            breaker.OnSuccess();
          }
        } else {
          clock.Advance(microseconds(7));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  const CircuitBreaker::Stats stats = breaker.stats();
  // Every close is preceded by an open, and probes only exist because some
  // window expired.
  EXPECT_GE(stats.opened, stats.closed);
  EXPECT_GE(stats.probes_admitted, stats.closed);
  // The final Allow/OnX pairing left no probe permanently leaked: after
  // enough window time, a call gets through again.
  clock.Advance(microseconds(1000));
  EXPECT_TRUE(breaker.Allow() || breaker.Allow());
  breaker.OnSuccess();
}

// ---------------------------------------------------------------------------
// Executor-level fault tolerance (retry loop, budget, deadline, breaker,
// degradation). All on the 10-row R(k, v) source from exec_test.
// ---------------------------------------------------------------------------

class FaultExecFixture : public ::testing::Test {
 protected:
  FaultExecFixture()
      : description_(*ParseSsdl(R"(
          source R(k: string, v: int) {
            rule s1 -> k = $string;
            rule s2 -> v < $int;
            rule s3 -> v >= $int;
            export s1 : {k, v};
            export s2 : {k, v};
            export s3 : {k, v};
          })")),
        table_("R", description_.schema()),
        source_(&table_, &description_) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(table_
                      .AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                     Value::Int(i)})
                      .ok());
    }
    source_.set_fault_policy(FaultPolicy{});  // injector for FailNextN
  }

  AttributeSet Attrs(const std::vector<std::string>& names) {
    return *description_.schema().MakeSet(names);
  }

  ExecOptions RetryOptions(size_t max_attempts) {
    ExecOptions options;
    options.retry.max_attempts = max_attempts;
    options.clock = &clock_;
    return options;
  }

  SourceDescription description_;
  Table table_;
  Source source_;
  FakeClock clock_;
};

TEST_F(FaultExecFixture, SourceFailsFastWhenFaultFires) {
  source_.fault_injector()->FailNextN(1);
  const Result<RowSet> rows =
      source_.Execute(*Parse("v < 3"), Attrs({"v"}));
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(IsRetryable(rows.status().code()));
  EXPECT_EQ(source_.stats().queries_unavailable, 1u);
  EXPECT_EQ(source_.stats().queries_answered, 0u);
}

TEST_F(FaultExecFixture, RetriesRecoverScriptedTransientFailures) {
  source_.fault_injector()->FailNextN(2);
  Executor executor(&source_, nullptr, RetryOptions(/*max_attempts=*/4));
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ(executor.stats().retries, 2u);
  EXPECT_EQ(executor.stats().failed_sub_queries, 0u);
  EXPECT_EQ(source_.stats().queries_received, 3u);
  // The FakeClock advanced by the backoff sleeps: time was "spent" without
  // the test blocking.
  EXPECT_GT(clock_.Now().time_since_epoch().count(), 0);
}

TEST_F(FaultExecFixture, AttemptCapExhaustsAndPropagates) {
  source_.fault_injector()->FailNextN(10);
  Executor executor(&source_, nullptr, RetryOptions(3));
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(executor.stats().retries, 2u);  // 3 attempts = 2 retries
  EXPECT_EQ(executor.stats().failed_sub_queries, 1u);
  EXPECT_EQ(source_.stats().queries_received, 3u);
}

TEST_F(FaultExecFixture, RetryBudgetIsSharedAcrossSubQueries) {
  source_.fault_injector()->FailNextN(100);
  ExecOptions options = RetryOptions(10);
  options.retry.retry_budget = 3;  // execution-wide, not per sub-query
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 7"), Attrs({"v"}))});
  EXPECT_FALSE(executor.Execute(*plan).ok());
  EXPECT_EQ(executor.stats().retries, 3u);
  // 1 first attempt + 3 budgeted retries; the second sub-query is never
  // reached (sequential union short-circuits on the first failure).
  EXPECT_EQ(source_.stats().queries_received, 4u);
}

TEST_F(FaultExecFixture, UnsupportedIsNeverRetried) {
  Executor executor(&source_, nullptr, RetryOptions(5));
  const PlanPtr plan = PlanNode::SourceQuery(
      Parse("k = \"odd\" and v < 5"), Attrs({"v"}));  // no rule covers this
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(executor.stats().retries, 0u);
  EXPECT_EQ(source_.stats().queries_received, 1u);
}

TEST_F(FaultExecFixture, SubQueryDeadlineCutsTheRetryLoop) {
  source_.fault_injector()->FailNextN(100);
  ExecOptions options = RetryOptions(100);
  options.retry.backoff.base = microseconds(10000);
  options.retry.sub_query_deadline = microseconds(25000);
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(executor.stats().deadlines_exceeded, 1u);
  // The loop gave up before blowing the deadline, not after: all FakeClock
  // sleep so far fits inside it.
  EXPECT_LE(clock_.Now().time_since_epoch(), microseconds(25000));
}

TEST_F(FaultExecFixture, BreakerStopsContactingADeadSource) {
  FaultPolicy dead;
  dead.transient_error_rate = 1.0;
  source_.set_fault_policy(dead);

  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 3;
  breaker_options.open_duration = microseconds(1000000000);  // stays open
  CircuitBreaker breaker(breaker_options, &clock_);

  ExecOptions options = RetryOptions(10);
  options.breaker = &breaker;
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(rows.status().message().find("circuit breaker open"),
            std::string::npos);
  // Three failures trip the breaker; the remaining attempts never reach the
  // source.
  EXPECT_EQ(source_.stats().queries_received, 3u);
  EXPECT_GT(executor.stats().breaker_rejections, 0u);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // The breaker is shared per source: a *different* execution fails fast
  // without a single round trip.
  Executor second(&source_, nullptr, options);
  EXPECT_FALSE(second.Execute(*plan).ok());
  EXPECT_EQ(source_.stats().queries_received, 3u);
}

TEST_F(FaultExecFixture, BreakerRecoversThroughHalfOpenProbe) {
  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 2;
  breaker_options.open_duration = microseconds(1000);
  CircuitBreaker breaker(breaker_options, &clock_);

  ExecOptions options = RetryOptions(1);
  options.breaker = &breaker;
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));

  source_.fault_injector()->FailNextN(2);
  Executor failing(&source_, nullptr, options);
  EXPECT_FALSE(failing.Execute(*plan).ok());
  EXPECT_FALSE(failing.Execute(*plan).ok());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // While open: rejected without contact.
  const size_t received = source_.stats().queries_received;
  EXPECT_FALSE(failing.Execute(*plan).ok());
  EXPECT_EQ(source_.stats().queries_received, received);

  // The source heals, the window expires, one probe closes the breaker.
  clock_.Advance(microseconds(1001));
  const Result<RowSet> rows = failing.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST_F(FaultExecFixture, DegradedUnionReturnsAnnotatedPartialAnswer) {
  source_.fault_injector()->FailNextN(1);
  ExecOptions options;
  options.degrade_unions = true;
  options.clock = &clock_;
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("k = \"odd\""), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}))});
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);  // only the surviving v < 3 branch
  EXPECT_EQ(executor.stats().dropped_branches, 1u);
  const std::vector<std::string> dropped = executor.dropped_sub_queries();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_NE(dropped[0].find("odd"), std::string::npos);
}

TEST_F(FaultExecFixture, AllBranchesDownIsAFailureNotAnEmptyAnswer) {
  FaultPolicy dead;
  dead.outages.push_back({0, 1000000});
  source_.set_fault_policy(dead);
  ExecOptions options;
  options.degrade_unions = true;
  options.clock = &clock_;
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("k = \"odd\""), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}))});
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
}

TEST_F(FaultExecFixture, IntersectionBranchesNeverDegrade) {
  source_.fault_injector()->FailNextN(1);
  ExecOptions options;
  options.degrade_unions = true;
  options.clock = &clock_;
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::IntersectOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"}))});
  // Dropping an ∧/∩ branch would *grow* the answer: never degraded.
  EXPECT_EQ(executor.Execute(*plan).status().code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(executor.stats().dropped_branches, 0u);
}

TEST_F(FaultExecFixture, PermanentErrorsAreNotDegradedAway) {
  ExecOptions options;
  options.degrade_unions = true;
  options.clock = &clock_;
  Executor executor(&source_, nullptr, options);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("k = \"odd\" and v < 5"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}))});
  // kUnsupported is a capability verdict, not an outage: it must surface.
  EXPECT_EQ(executor.Execute(*plan).status().code(),
            StatusCode::kUnsupported);
}

TEST_F(FaultExecFixture, ZeroFaultRunIsBitIdenticalWithToleranceEnabled) {
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"}))});

  Executor plain(&source_);
  const Result<RowSet> baseline = plain.Execute(*plan);
  ASSERT_TRUE(baseline.ok());

  CircuitBreaker breaker({}, &clock_);
  ExecOptions options = RetryOptions(5);
  options.breaker = &breaker;
  options.degrade_unions = true;
  source_.ResetStats();
  Executor tolerant(&source_, nullptr, options);
  const Result<RowSet> rows = tolerant.Execute(*plan);
  ASSERT_TRUE(rows.ok());

  EXPECT_EQ(rows->size(), baseline.value().size());
  for (const Row& row : baseline.value().rows()) {
    EXPECT_TRUE(rows.value().Contains(row));
  }
  EXPECT_EQ(tolerant.stats().source_queries, plain.stats().source_queries);
  EXPECT_EQ(tolerant.stats().rows_transferred,
            plain.stats().rows_transferred);
  EXPECT_EQ(tolerant.stats().retries, 0u);
  EXPECT_EQ(tolerant.stats().dropped_branches, 0u);
  EXPECT_EQ(tolerant.stats().breaker_rejections, 0u);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  // No fault-tolerance path touched the clock.
  EXPECT_EQ(clock_.Now().time_since_epoch().count(), 0);
}

// ---------------------------------------------------------------------------
// Mediator-level: partial answers, re-planning, stats snapshot.
// ---------------------------------------------------------------------------

constexpr const char* kMediatorSsdl = R"(
source R(k: string, v: int) {
  rule s1 -> k = $string;
  rule s2 -> v < $int;
  rule s3 -> v >= $int;
  export s1 : {k, v};
  export s2 : {k, v};
  export s3 : {k, v};
})";

class MediatorFaultTest : public ::testing::Test {
 protected:
  std::unique_ptr<Mediator> MakeMediator(Mediator::Options options) {
    options.clock = &clock_;
    auto mediator = std::make_unique<Mediator>(options);
    Result<SourceDescription> description = ParseSsdl(kMediatorSsdl);
    EXPECT_TRUE(description.ok());
    auto table = std::make_unique<Table>("R", description->schema());
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(table
                      ->AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                      Value::Int(i)})
                      .ok());
    }
    EXPECT_TRUE(mediator
                    ->RegisterSource(std::move(description).value(),
                                     std::move(table))
                    .ok());
    return mediator;
  }

  Source* SourceOf(Mediator* mediator) {
    Result<CatalogEntry*> entry = mediator->catalog()->Find("R");
    EXPECT_TRUE(entry.ok());
    return (*entry)->source();
  }

  FakeClock clock_;
};

TEST_F(MediatorFaultTest, HardOutageYieldsAnnotatedPartialAnswer) {
  Mediator::Options options;
  options.partial_results = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  // Hard outage over the first call: whichever ∨-branch runs first dies.
  FaultPolicy policy;
  policy.outages.push_back({0, 1});
  SourceOf(mediator.get())->set_fault_policy(policy);

  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k, v FROM R WHERE k = \"odd\" or v < 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(result->completeness.complete);
  ASSERT_EQ(result->completeness.dropped_sub_queries.size(), 1u);
  EXPECT_EQ(result->exec.dropped_branches, 1u);
  // The full answer has 7 rows; a one-branch answer is a strict subset.
  EXPECT_GT(result->rows.size(), 0u);
  EXPECT_LT(result->rows.size(), 7u);

  const Mediator::Stats stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.fault_tolerance.queries_ok, 1u);
  EXPECT_EQ(stats.fault_tolerance.queries_partial, 1u);
  EXPECT_EQ(stats.fault_tolerance.dropped_branches, 1u);
}

TEST_F(MediatorFaultTest, CompleteAnswersStayUnannotated) {
  Mediator::Options options;
  options.partial_results = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k, v FROM R WHERE k = \"odd\" or v < 3");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->completeness.complete);
  EXPECT_TRUE(result->completeness.dropped_sub_queries.empty());
  // odd rows (v = 1, 3, 5, 7, 9) ∪ v < 3 rows (0, 1, 2) = 7 distinct rows.
  EXPECT_EQ(result->rows.size(), 7u);
}

TEST_F(MediatorFaultTest, ConjunctiveQueriesFailRatherThanDegrade) {
  Mediator::Options options;
  options.partial_results = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(100);
  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k FROM R WHERE k = \"odd\" and v < 5");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(mediator->StatsSnapshot().fault_tolerance.queries_failed, 1u);
}

TEST_F(MediatorFaultTest, ReplanRoutesAroundAFailedSubQuery) {
  Mediator::Options options;
  options.replan_on_failure = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  // Exactly the first fetch fails; with no retries configured, the
  // execution fails and the mediator asks the planner to route around the
  // failed SP. The conjunction can be fetched through either atom, so an
  // alternative exists in the Choice space.
  SourceOf(mediator.get())->fault_injector()->FailNextN(1);

  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k FROM R WHERE k = \"odd\" and v < 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->replanned);
  EXPECT_EQ(result->rows.size(), 1u);  // {k: "odd"}

  const Mediator::Stats stats = mediator->StatsSnapshot();
  EXPECT_EQ(stats.fault_tolerance.queries_replanned, 1u);
  EXPECT_EQ(stats.fault_tolerance.queries_ok, 1u);
  EXPECT_EQ(stats.fault_tolerance.queries_failed, 0u);
}

TEST_F(MediatorFaultTest, ReplanWorksAcrossPlannerStrategies) {
  // GenModular's avoidance path resolves its EPG Choice spaces directly;
  // same recovery as GenCompact's reduced-CT path.
  Mediator::Options options;
  options.replan_on_failure = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(1);
  const Result<Mediator::QueryResult> result = mediator->QueryCondition(
      "R", Parse("k = \"odd\" and v < 5"), {"k"}, Strategy::kGenModular);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->replanned);
  EXPECT_EQ(result->rows.size(), 1u);
}

TEST_F(MediatorFaultTest, ReplanGivesUpWhenNoAlternativeAvoidsTheFailure) {
  Mediator::Options options;
  options.replan_on_failure = true;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(100);
  // Single-atom query: the only feasible plan IS the failed sub-query.
  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k, v FROM R WHERE v < 5");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(MediatorFaultTest, RetriesRecoverWithoutReplanOrDegradation) {
  Mediator::Options options;
  options.retry.max_attempts = 4;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(2);
  const Result<Mediator::QueryResult> result =
      mediator->Query("SELECT k, v FROM R WHERE v < 5");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->completeness.complete);
  EXPECT_FALSE(result->replanned);
  EXPECT_EQ(result->rows.size(), 5u);
  EXPECT_EQ(result->exec.retries, 2u);
  EXPECT_EQ(mediator->StatsSnapshot().fault_tolerance.retries, 2u);
}

TEST_F(MediatorFaultTest, StatsSnapshotGathersEveryLayer) {
  Mediator::Options options;
  options.enable_circuit_breaker = true;
  options.retry.max_attempts = 2;
  std::unique_ptr<Mediator> mediator = MakeMediator(options);
  SourceOf(mediator.get())->set_fault_policy(FaultPolicy{});
  SourceOf(mediator.get())->fault_injector()->FailNextN(1);

  ASSERT_TRUE(mediator->Query("SELECT k, v FROM R WHERE v < 5").ok());
  ASSERT_TRUE(mediator->Query("SELECT k, v FROM R WHERE v < 5").ok());

  const Mediator::Stats stats = mediator->StatsSnapshot();
  ASSERT_EQ(stats.sources.size(), 1u);
  EXPECT_EQ(stats.sources[0].name, "R");
  EXPECT_EQ(stats.sources[0].source.queries_answered, 2u);
  EXPECT_EQ(stats.sources[0].source.queries_unavailable, 1u);
  EXPECT_EQ(stats.sources[0].faults.injected_unavailable, 1u);
  EXPECT_TRUE(stats.sources[0].has_breaker);
  EXPECT_EQ(stats.sources[0].breaker_state, CircuitBreaker::State::kClosed);
  EXPECT_GT(stats.sources[0].check_calls, 0u);
  EXPECT_EQ(stats.fault_tolerance.queries_ok, 2u);
  EXPECT_EQ(stats.fault_tolerance.retries, 1u);
  // Second identical query hits the plan cache.
  EXPECT_EQ(stats.plan_cache.hits, 1u);
  EXPECT_GT(stats.interner.live_nodes, 0u);

  const std::string rendered = stats.ToString();
  EXPECT_NE(rendered.find("plan_cache.hits"), std::string::npos);
  EXPECT_NE(rendered.find("source[R].answered"), std::string::npos);
  EXPECT_NE(rendered.find("retries.total"), std::string::npos);
  EXPECT_NE(rendered.find("breaker"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Acceptance: with seeded 20% transient faults, the retry+breaker discipline
// recovers ≥99% of the queries a zero-retry run fails — deterministically.
// ---------------------------------------------------------------------------

class FaultAcceptanceTest : public FaultExecFixture {
 protected:
  static constexpr int kQueries = 400;

  FaultPolicy TransientPolicy(double rate) {
    FaultPolicy policy;
    policy.seed = 20240807;
    policy.transient_error_rate = rate;
    return policy;
  }

  // Runs kQueries single-SP executions and returns (#failed, #source calls).
  std::pair<size_t, uint64_t> RunSweep(const ExecOptions& options,
                                       CircuitBreaker* breaker) {
    size_t failed = 0;
    for (int i = 0; i < kQueries; ++i) {
      ExecOptions exec_options = options;
      exec_options.breaker = breaker;
      Executor executor(&source_, nullptr, exec_options);
      const PlanPtr plan = PlanNode::SourceQuery(
          Parse("v < " + std::to_string(i % 10)), Attrs({"v"}));
      if (!executor.Execute(*plan).ok()) ++failed;
    }
    return {failed, source_.fault_injector()->stats().calls};
  }
};

TEST_F(FaultAcceptanceTest, RetriesRecoverAtLeast99PercentOfFaultedQueries) {
  // Baseline: no retries under 20% transient faults.
  source_.set_fault_policy(TransientPolicy(0.20));
  ExecOptions no_retry;
  no_retry.clock = &clock_;
  const auto [f0, calls0] = RunSweep(no_retry, nullptr);
  // ~80 of 400 expected; the seed pins the exact count.
  EXPECT_GT(f0, 40u);
  EXPECT_LT(f0, 140u);

  // Same fault policy, fresh schedule, retries + breaker on.
  ExecOptions with_retry;
  with_retry.clock = &clock_;
  with_retry.retry.max_attempts = 6;
  CircuitBreakerOptions breaker_options;
  breaker_options.failure_threshold = 8;
  breaker_options.open_duration = microseconds(1000);
  source_.set_fault_policy(TransientPolicy(0.20));
  CircuitBreaker breaker(breaker_options, &clock_);
  const auto [f1, calls1] = RunSweep(with_retry, &breaker);

  // Recovery target: the tolerant run fails at most 1% of what the
  // zero-retry run failed.
  EXPECT_LE(f1 * 100, f0) << "zero-retry failures: " << f0
                          << ", tolerant failures: " << f1;
  EXPECT_GT(calls1, calls0);  // recovery is paid for with extra round trips

  // Determinism: an identical fresh run replays the exact same schedule —
  // same failure count, same number of source calls.
  source_.set_fault_policy(TransientPolicy(0.20));
  CircuitBreaker breaker2(breaker_options, &clock_);
  const auto [f2, calls2] = RunSweep(with_retry, &breaker2);
  EXPECT_EQ(f1, f2);
  EXPECT_EQ(calls1, calls2);
}

TEST_F(FaultAcceptanceTest, ZeroFaultSweepNeverRetriesOrFails) {
  source_.set_fault_policy(TransientPolicy(0.0));
  ExecOptions with_retry;
  with_retry.clock = &clock_;
  with_retry.retry.max_attempts = 6;
  CircuitBreaker breaker({}, &clock_);
  const auto [failed, calls] = RunSweep(with_retry, &breaker);
  EXPECT_EQ(failed, 0u);
  EXPECT_EQ(calls, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(breaker.stats().rejected, 0u);
  EXPECT_EQ(clock_.Now().time_since_epoch().count(), 0);
}

}  // namespace
}  // namespace gencompact
