// Unit coverage of the columnar batch data plane: ColumnStore round trips,
// cached Row hashes, the compiled evaluator (row and batch paths) against
// the reference EvalCondition, the columnar wire format, ScanTable /
// FilterRows parity between the row path and every batch width, and the
// batch paths of Source, Executor, Wrapper, and Mediator.
//
// Parity here means *exact* results: the same tuples with the same per-cell
// Value types (an Int(2) must not come back as Double(2.0), even though the
// two compare and hash equal — and even though both print "2", which is why
// the signature helper below renders type:text, not just text).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "exec/executor.h"
#include "exec/scan.h"
#include "expr/batch_eval.h"
#include "expr/condition_eval.h"
#include "expr/condition_parser.h"
#include "mediator/mediator.h"
#include "mediator/wrapper.h"
#include "ssdl/ssdl_parser.h"
#include "storage/column_batch.h"
#include "storage/wire_format.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

// Type-exact signature of a row set: sorted rows, each cell rendered as
// type:text. Two RowSets with equal signatures hold identical Values, not
// merely Compare-equal ones.
std::vector<std::string> Signature(const RowSet& rows) {
  std::vector<std::string> out;
  for (const Row& row : rows.SortedRows()) {
    std::string sig;
    for (const Value& v : row.values()) {
      sig += ValueTypeName(v.type());
      sig += ':';
      sig += v.ToString();
      sig += '|';
    }
    out.push_back(std::move(sig));
  }
  return out;
}

void ExpectExactlyEqual(const RowSet& a, const RowSet& b,
                        const std::string& context) {
  EXPECT_EQ(a.layout().attrs().bits(), b.layout().attrs().bits()) << context;
  EXPECT_EQ(Signature(a), Signature(b)) << context;
}

// A schema exercising every column kind, with storage deliberately using
// the numeric cross-typing Table::Append permits.
Schema MixedSchema() {
  return Schema({{"s", ValueType::kString},
                 {"i", ValueType::kInt},
                 {"d", ValueType::kDouble},
                 {"b", ValueType::kBool}});
}

std::unique_ptr<Table> MixedTable() {
  auto table = std::make_unique<Table>("mixed", MixedSchema());
  const auto add = [&table](Value s, Value i, Value d, Value b) {
    EXPECT_TRUE(table
                    ->Append(Row({std::move(s), std::move(i), std::move(d),
                                  std::move(b)}))
                    .ok());
  };
  add(Value::String("alpha"), Value::Int(1), Value::Double(1.5),
      Value::Bool(true));
  add(Value::String("beta"), Value::Int(-7), Value::Double(-0.25),
      Value::Bool(false));
  // Numeric cross-typing: a Double stored in the int column and an Int in
  // the double column.
  add(Value::String("gamma"), Value::Double(2.5), Value::Int(4),
      Value::Bool(true));
  add(Value::String(""), Value::Int(1), Value::Double(1.5), Value::Bool(true));
  // Nulls in every column.
  add(Value::Null(), Value::Null(), Value::Null(), Value::Null());
  add(Value::String("alpha"), Value::Null(), Value::Double(1.5), Value::Null());
  // Duplicate of row 0 (set semantics must collapse projections).
  add(Value::String("alpha"), Value::Int(1), Value::Double(1.5),
      Value::Bool(true));
  // Int(2) vs Double(2.0): Compare-equal, type-distinct.
  add(Value::String("two"), Value::Int(2), Value::Double(7.0),
      Value::Bool(false));
  add(Value::String("two"), Value::Double(2.0), Value::Double(7.0),
      Value::Bool(false));
  // Extreme numerics.
  add(Value::String("inf"), Value::Int(std::numeric_limits<int64_t>::min()),
      Value::Double(std::numeric_limits<double>::infinity()),
      Value::Bool(false));
  return table;
}

// Conditions covering every compiled kernel: typed comparisons, string
// predicates, cross-type (fixed-result) atoms, NULL constants, the trivial
// condition, and ∧/∨ nests.
std::vector<ConditionPtr> KernelConditions() {
  std::vector<ConditionPtr> conds;
  conds.push_back(ConditionNode::True());
  for (const CompareOp op :
       {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt, CompareOp::kLe,
        CompareOp::kGt, CompareOp::kGe}) {
    conds.push_back(ConditionNode::Atom("i", op, Value::Int(1)));
    conds.push_back(ConditionNode::Atom("i", op, Value::Double(2.0)));
    conds.push_back(ConditionNode::Atom("d", op, Value::Double(1.5)));
    conds.push_back(ConditionNode::Atom("d", op, Value::Int(4)));
    conds.push_back(ConditionNode::Atom("s", op, Value::String("beta")));
    conds.push_back(ConditionNode::Atom("b", op, Value::Bool(true)));
    // Cross-type atoms: fixed result per op via type ranks.
    conds.push_back(ConditionNode::Atom("s", op, Value::Int(3)));
    conds.push_back(ConditionNode::Atom("i", op, Value::String("x")));
    conds.push_back(ConditionNode::Atom("b", op, Value::Int(0)));
    // NULL constants: always false.
    conds.push_back(ConditionNode::Atom("i", op, Value::Null()));
  }
  conds.push_back(
      ConditionNode::Atom("s", CompareOp::kContains, Value::String("a")));
  conds.push_back(
      ConditionNode::Atom("s", CompareOp::kStartsWith, Value::String("al")));
  conds.push_back(
      ConditionNode::Atom("s", CompareOp::kContains, Value::String("")));
  // String predicate against a non-string column: statically false.
  conds.push_back(
      ConditionNode::Atom("i", CompareOp::kContains, Value::String("1")));
  // Connectives (including an all-filtered ∧ and an all-pass ∨ shape).
  std::vector<ConditionPtr> and_children;
  and_children.push_back(
      ConditionNode::Atom("i", CompareOp::kGe, Value::Int(0)));
  and_children.push_back(
      ConditionNode::Atom("b", CompareOp::kEq, Value::Bool(true)));
  conds.push_back(ConditionNode::And(std::move(and_children)));
  std::vector<ConditionPtr> or_children;
  or_children.push_back(
      ConditionNode::Atom("s", CompareOp::kEq, Value::String("alpha")));
  or_children.push_back(
      ConditionNode::Atom("d", CompareOp::kLt, Value::Double(0.0)));
  conds.push_back(ConditionNode::Or(std::move(or_children)));
  std::vector<ConditionPtr> never;
  never.push_back(ConditionNode::Atom("i", CompareOp::kLt, Value::Int(-100)));
  never.push_back(
      ConditionNode::Atom("s", CompareOp::kEq, Value::String("alpha")));
  conds.push_back(ConditionNode::And(std::move(never)));
  std::vector<ConditionPtr> always;
  always.push_back(
      ConditionNode::Atom("i", CompareOp::kNe, Value::Int(123456)));
  always.push_back(
      ConditionNode::Atom("b", CompareOp::kEq, Value::Bool(false)));
  conds.push_back(ConditionNode::Or(std::move(always)));
  conds.push_back(Parse(
      "(s startswith \"a\" and i <= 1) or (d > 5.0 and b = true)"));
  return conds;
}

TEST(RowHashTest, CachedHashMatchesValueFold) {
  const Row row({Value::String("x"), Value::Int(3), Value::Null()});
  size_t expected = 0x51ed270b7a2cf321ull;
  for (const Value& v : row.values()) {
    expected ^=
        v.Hash() + 0x9e3779b97f4a7c15ull + (expected << 6) + (expected >> 2);
  }
  EXPECT_EQ(row.Hash(), expected);
  // Equal rows agree; the default row equals the explicitly empty row.
  EXPECT_EQ(row.Hash(),
            Row({Value::String("x"), Value::Int(3), Value::Null()}).Hash());
  EXPECT_EQ(Row().Hash(), Row(std::vector<Value>{}).Hash());
}

TEST(RowSetTest, SortedRowsIsValueWiseNotTextual) {
  RowSet a(RowLayout(AttributeSet::FromBits(0x1), 1));
  RowSet b(RowLayout(AttributeSet::FromBits(0x1), 1));
  // Textual sorting would put "10" before "2"; Value-wise sorting must not.
  for (const int64_t v : {10, 2, 1, 30}) a.Insert(Row({Value::Int(v)}));
  for (const int64_t v : {30, 1, 10, 2}) b.Insert(Row({Value::Int(v)}));
  const std::vector<Row> sorted = a.SortedRows();
  ASSERT_EQ(sorted.size(), 4u);
  EXPECT_EQ(sorted[0].value(0), Value::Int(1));
  EXPECT_EQ(sorted[1].value(0), Value::Int(2));
  EXPECT_EQ(sorted[2].value(0), Value::Int(10));
  EXPECT_EQ(sorted[3].value(0), Value::Int(30));
  // Deterministic across insertion orders.
  EXPECT_EQ(Signature(a), Signature(b));
}

TEST(RowSetTest, MergeFromAndIntersectWithMatchStaticOps) {
  const RowLayout layout(AttributeSet::FromBits(0x1), 1);
  const auto make = [&layout](std::vector<int64_t> vs) {
    RowSet s(layout);
    for (const int64_t v : vs) s.Insert(Row({Value::Int(v)}));
    return s;
  };
  const RowSet a = make({1, 2, 3});
  const RowSet b = make({3, 4});
  RowSet merged = make({1, 2, 3});
  merged.MergeFrom(make({3, 4}));
  ExpectExactlyEqual(merged, RowSet::UnionOf(a, b), "merge");
  RowSet intersected = make({1, 2, 3});
  intersected.IntersectWith(b);
  ExpectExactlyEqual(intersected, RowSet::IntersectOf(a, b), "intersect");
  // Merging into an empty set adopts the donor's rows.
  RowSet empty(layout);
  empty.MergeFrom(make({7, 8}));
  EXPECT_EQ(empty.size(), 2u);
}

TEST(ColumnStoreTest, RoundTripsCellsExactly) {
  const std::unique_ptr<Table> owned = MixedTable();
  const Table& table = *owned;
  const ColumnStore& store = table.columns();
  ASSERT_EQ(store.num_rows(), table.num_rows());
  ASSERT_EQ(store.num_columns(), 4u);
  const std::vector<int> all_cols{0, 1, 2, 3};
  for (uint32_t r = 0; r < store.num_rows(); ++r) {
    const Row& original = table.rows()[r];
    const Row materialized = store.MaterializeRow(r, all_cols);
    ASSERT_EQ(materialized.size(), original.size());
    for (size_t c = 0; c < original.size(); ++c) {
      // Type-exact, not merely Compare-equal.
      EXPECT_EQ(materialized.value(c).type(), original.value(c).type())
          << "row " << r << " col " << c;
      EXPECT_EQ(materialized.value(c).ToString(), original.value(c).ToString())
          << "row " << r << " col " << c;
    }
    EXPECT_EQ(store.HashRow(r, all_cols), original.Hash()) << "row " << r;
  }
  // Column-wise batch hashing agrees with per-row hashing.
  std::vector<uint32_t> ids(store.num_rows());
  for (uint32_t r = 0; r < store.num_rows(); ++r) ids[r] = r;
  std::vector<size_t> hashes;
  store.HashRows(ids, all_cols, &hashes);
  ASSERT_EQ(hashes.size(), ids.size());
  for (uint32_t r = 0; r < store.num_rows(); ++r) {
    EXPECT_EQ(hashes[r], store.HashRow(r, all_cols)) << "row " << r;
  }
  // Projected hashing matches the materialized projection's cached hash.
  const std::vector<int> proj{0, 2};
  for (uint32_t r = 0; r < store.num_rows(); ++r) {
    EXPECT_EQ(store.HashRow(r, proj), store.MaterializeRow(r, proj).Hash());
  }
}

TEST(ColumnStoreTest, RowsEqualFollowsValueCompare) {
  const std::unique_ptr<Table> owned = MixedTable();
  const Table& table = *owned;
  const ColumnStore& store = table.columns();
  const std::vector<int> all_cols{0, 1, 2, 3};
  // Row 0 and row 6 are stored duplicates.
  EXPECT_TRUE(store.RowsEqual(0, 6, all_cols));
  EXPECT_FALSE(store.RowsEqual(0, 1, all_cols));
  // Rows 7 and 8 differ only in Int(2) vs Double(2.0) in column 1 —
  // Compare-equal, so they are duplicates under set semantics (exactly
  // like the row path's unordered_set over Value::operator==).
  EXPECT_TRUE(store.RowsEqual(7, 8, all_cols));
  // Null vs non-null cells differ.
  EXPECT_FALSE(store.RowsEqual(0, 5, all_cols));
  // Over the string column alone, rows 7 and 8 agree trivially.
  EXPECT_TRUE(store.RowsEqual(7, 8, {0}));
}

TEST(BatchDeduperTest, KeepsFirstOccurrenceOfEachTuple) {
  const std::unique_ptr<Table> owned = MixedTable();
  const Table& table = *owned;
  const ColumnStore& store = table.columns();
  const std::vector<int> all_cols{0, 1, 2, 3};
  BatchDeduper deduper(&store, all_cols);
  std::vector<uint32_t> kept;
  for (uint32_t r = 0; r < store.num_rows(); ++r) {
    if (deduper.AddIfNew(store.HashRow(r, all_cols), r)) kept.push_back(r);
  }
  // Row 6 duplicates row 0 and row 8 duplicates row 7 (Compare-equal);
  // everything else is distinct.
  const std::vector<uint32_t> expected{0, 1, 2, 3, 4, 5, 7, 9};
  EXPECT_EQ(kept, expected);
  EXPECT_EQ(deduper.unique_count(), expected.size());
}

TEST(CompiledEvaluatorTest, RowPathMatchesEvalCondition) {
  const std::unique_ptr<Table> owned = MixedTable();
  const Table& table = *owned;
  const Schema& schema = table.schema();
  const RowLayout full = table.FullLayout();
  for (const ConditionPtr& cond : KernelConditions()) {
    const Result<CompiledEvaluator> compiled =
        CompiledEvaluator::Compile(*cond, full, schema);
    ASSERT_TRUE(compiled.ok()) << cond->ToString();
    for (const Row& row : table.rows()) {
      const Result<bool> expected = EvalCondition(*cond, row, full, schema);
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(compiled->Matches(row), *expected)
          << cond->ToString() << " on " << row.ToString();
    }
  }
}

TEST(CompiledEvaluatorTest, BatchPathMatchesEvalCondition) {
  const std::unique_ptr<Table> owned = MixedTable();
  const Table& table = *owned;
  const Schema& schema = table.schema();
  const RowLayout full = table.FullLayout();
  const ColumnStore& store = table.columns();
  for (const ConditionPtr& cond : KernelConditions()) {
    const Result<CompiledEvaluator> compiled =
        CompiledEvaluator::Compile(*cond, full, schema);
    ASSERT_TRUE(compiled.ok()) << cond->ToString();
    for (const size_t width : {size_t{1}, size_t{3}, size_t{16}}) {
      std::vector<uint32_t> selected;
      ColumnBatch batch;
      batch.store = &store;
      for (uint32_t begin = 0; begin < store.num_rows();
           begin += static_cast<uint32_t>(width)) {
        batch.begin = begin;
        batch.end = static_cast<uint32_t>(
            std::min<size_t>(store.num_rows(), begin + width));
        compiled->FilterBatch(&batch);
        // The selection holds ascending, in-range row ids.
        for (size_t i = 0; i < batch.selection.size(); ++i) {
          ASSERT_GE(batch.selection[i], batch.begin);
          ASSERT_LT(batch.selection[i], batch.end);
          if (i > 0) {
          ASSERT_LT(batch.selection[i - 1], batch.selection[i]);
        }
        }
        selected.insert(selected.end(), batch.selection.begin(),
                        batch.selection.end());
      }
      std::vector<uint32_t> expected;
      for (uint32_t r = 0; r < store.num_rows(); ++r) {
        const Result<bool> matches =
            EvalCondition(*cond, table.rows()[r], full, schema);
        ASSERT_TRUE(matches.ok());
        if (*matches) expected.push_back(r);
      }
      EXPECT_EQ(selected, expected)
          << cond->ToString() << " at width " << width;
    }
  }
}

TEST(CompiledEvaluatorTest, CompileReportsEvalConditionErrors) {
  const std::unique_ptr<Table> owned = MixedTable();
  const Table& table = *owned;
  const ConditionPtr bad =
      ConditionNode::Atom("nope", CompareOp::kEq, Value::Int(1));
  const Result<CompiledEvaluator> compiled =
      CompiledEvaluator::Compile(*bad, table.FullLayout(), table.schema());
  ASSERT_FALSE(compiled.ok());
  const Result<bool> reference =
      EvalCondition(*bad, table.rows()[0], table.FullLayout(), table.schema());
  ASSERT_FALSE(reference.ok());
  EXPECT_EQ(compiled.status().code(), reference.status().code());
  EXPECT_EQ(compiled.status().message(), reference.status().message());
  // An attribute present in the schema but missing from the layout.
  const RowLayout narrow(*table.schema().MakeSet({"s"}),
                         table.schema().num_attributes());
  const ConditionPtr missing =
      ConditionNode::Atom("i", CompareOp::kEq, Value::Int(1));
  const Result<CompiledEvaluator> narrow_compiled =
      CompiledEvaluator::Compile(*missing, narrow, table.schema());
  ASSERT_FALSE(narrow_compiled.ok());
  EXPECT_EQ(narrow_compiled.status().code(), StatusCode::kNotFound);
}

TEST(ScanTableTest, BatchWidthsMatchRowPath) {
  const std::unique_ptr<Table> owned = MixedTable();
  const Table& table = *owned;
  const Schema& schema = table.schema();
  const std::vector<AttributeSet> projections = {
      schema.AllAttributes(), *schema.MakeSet({"s"}),
      *schema.MakeSet({"s", "d"}), *schema.MakeSet({"i", "b"})};
  for (const ConditionPtr& cond : KernelConditions()) {
    for (const AttributeSet& attrs : projections) {
      const ScanOptions row_options;  // width 0: the reference path
      const Result<RowSet> reference =
          ScanTable(table, *cond, attrs, row_options);
      ASSERT_TRUE(reference.ok()) << cond->ToString();
      for (const size_t width :
           {size_t{1}, size_t{3}, size_t{7}, size_t{64}, size_t{1024}}) {
        for (const bool wire : {false, true}) {
          ScanOptions options;
          options.batch_width = width;
          options.wire_encode = wire;
          ScanMetrics metrics;
          const Result<RowSet> batched =
              ScanTable(table, *cond, attrs, options, &metrics);
          ASSERT_TRUE(batched.ok()) << cond->ToString();
          ExpectExactlyEqual(*batched, *reference,
                             cond->ToString() + " width " +
                                 std::to_string(width) +
                                 (wire ? " wire" : ""));
          EXPECT_EQ(metrics.wire_bytes > 0, wire) << cond->ToString();
        }
      }
    }
  }
}

TEST(FilterRowsTest, BatchWidthsMatchRowPath) {
  const std::unique_ptr<Table> owned = MixedTable();
  const Table& table = *owned;
  const Schema& schema = table.schema();
  // Intermediate result: the full table projected to {s, i, d}.
  const AttributeSet in_attrs = *schema.MakeSet({"s", "i", "d"});
  const Result<RowSet> input =
      ScanTable(table, *ConditionNode::True(), in_attrs, ScanOptions());
  ASSERT_TRUE(input.ok());
  const std::vector<AttributeSet> out_sets = {in_attrs, *schema.MakeSet({"s"}),
                                              *schema.MakeSet({"i", "d"})};
  std::vector<ConditionPtr> conds;
  conds.push_back(ConditionNode::True());
  conds.push_back(ConditionNode::Atom("i", CompareOp::kGe, Value::Int(0)));
  conds.push_back(
      ConditionNode::Atom("s", CompareOp::kContains, Value::String("a")));
  conds.push_back(Parse("d < 1.0 or s = \"two\""));
  conds.push_back(ConditionNode::Atom("i", CompareOp::kLt, Value::Int(-1000)));
  for (const ConditionPtr& cond : conds) {
    for (const AttributeSet& out : out_sets) {
      const Result<RowSet> reference = FilterRows(*input, *cond, out, schema,
                                                  /*batch_width=*/0);
      ASSERT_TRUE(reference.ok()) << cond->ToString();
      for (const size_t width : {size_t{1}, size_t{5}, size_t{64}}) {
        const Result<RowSet> batched =
            FilterRows(*input, *cond, out, schema, width);
        ASSERT_TRUE(batched.ok()) << cond->ToString();
        ExpectExactlyEqual(
            *batched, *reference,
            cond->ToString() + " width " + std::to_string(width));
      }
    }
  }
}

TEST(WireFormatTest, RoundTripsEdgeValues) {
  const std::unique_ptr<Table> owned = MixedTable();
  const Table& table = *owned;
  const Schema& schema = table.schema();
  const Result<RowSet> rows = ScanTable(table, *ConditionNode::True(),
                                        schema.AllAttributes(), ScanOptions());
  ASSERT_TRUE(rows.ok());
  const std::string wire = EncodeColumnar(*rows, schema);
  const Result<RowSet> decoded = DecodeColumnar(wire);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ExpectExactlyEqual(*decoded, *rows, "wire round trip");
}

TEST(WireFormatTest, RoundTripsEmptySet) {
  const Schema schema = MixedSchema();
  const RowSet empty(
      RowLayout(*schema.MakeSet({"s", "b"}), schema.num_attributes()));
  const Result<RowSet> decoded = DecodeColumnar(EncodeColumnar(empty, schema));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_TRUE(decoded->empty());
  EXPECT_EQ(decoded->layout().attrs().bits(), empty.layout().attrs().bits());
}

TEST(WireFormatTest, RejectsMalformedBuffers) {
  const Schema schema = MixedSchema();
  RowSet rows(RowLayout(schema.AllAttributes(), schema.num_attributes()));
  rows.Insert(Row({Value::String("x"), Value::Int(1), Value::Double(2.0),
                   Value::Bool(true)}));
  const std::string wire = EncodeColumnar(rows, schema);
  EXPECT_FALSE(DecodeColumnar("GARBAGE!").ok());
  // Truncations at every prefix length must fail cleanly, never crash.
  for (size_t len = 0; len < wire.size(); ++len) {
    EXPECT_FALSE(DecodeColumnar(std::string_view(wire.data(), len)).ok())
        << "prefix " << len;
  }
  // Trailing bytes are rejected too.
  EXPECT_FALSE(DecodeColumnar(wire + "x").ok());
  // A flipped magic byte is rejected.
  std::string bad_magic = wire;
  bad_magic[0] = static_cast<char>(bad_magic[0] ^ 0x5a);
  EXPECT_FALSE(DecodeColumnar(bad_magic).ok());
}

constexpr const char* kScanSsdl = R"(
source R(k: string, v: int) {
  rule s1 -> k = $string;
  rule s2 -> v < $int;
  rule s3 -> v >= $int;
  export s1 : {k, v};
  export s2 : {k, v};
  export s3 : {k, v};
})";

class BatchSourceFixture : public ::testing::Test {
 protected:
  BatchSourceFixture()
      : description_(*ParseSsdl(kScanSsdl)),
        table_("R", description_.schema()),
        row_source_(&table_, &description_),
        batch_source_(&table_, &description_) {
    for (int i = 0; i < 100; ++i) {
      EXPECT_TRUE(table_
                      .AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                     Value::Int(i % 10)})
                      .ok());
    }
    batch_source_.set_batch_width(16);
  }

  AttributeSet Attrs(const std::vector<std::string>& names) {
    return *description_.schema().MakeSet(names);
  }

  SourceDescription description_;
  Table table_;
  Source row_source_;
  Source batch_source_;
};

TEST_F(BatchSourceFixture, BatchExecuteMatchesRowExecute) {
  for (const char* text : {"k = \"odd\"", "v < 6", "v >= 9"}) {
    for (const std::vector<std::string>& attrs :
         {std::vector<std::string>{"k", "v"}, std::vector<std::string>{"k"},
          std::vector<std::string>{"v"}}) {
      const Result<RowSet> row_rows =
          row_source_.Execute(*Parse(text), Attrs(attrs));
      const Result<RowSet> batch_rows =
          batch_source_.Execute(*Parse(text), Attrs(attrs));
      ASSERT_TRUE(row_rows.ok());
      ASSERT_TRUE(batch_rows.ok());
      ExpectExactlyEqual(*batch_rows, *row_rows, text);
    }
  }
  // The batch source shipped its answers through the wire encoding; the row
  // source never did.
  EXPECT_GT(batch_source_.stats().wire_bytes, 0u);
  EXPECT_EQ(row_source_.stats().wire_bytes, 0u);
  EXPECT_EQ(batch_source_.stats().queries_answered,
            row_source_.stats().queries_answered);
}

TEST_F(BatchSourceFixture, BatchSourceStillRejectsUnsupported) {
  const Result<RowSet> rows =
      batch_source_.Execute(*Parse("k = \"odd\" and v < 5"), Attrs({"k"}));
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnsupported);
}

TEST_F(BatchSourceFixture, ExecutorBatchPlansMatchRowPlans) {
  std::vector<PlanPtr> plans;
  plans.push_back(PlanNode::MediatorSp(
      Parse("k = \"odd\""), Attrs({"v"}),
      PlanNode::SourceQuery(Parse("v < 8"), Attrs({"k", "v"}))));
  {
    std::vector<PlanPtr> children;
    children.push_back(PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})));
    children.push_back(PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"})));
    plans.push_back(PlanNode::UnionOf(std::move(children)));
  }
  {
    std::vector<PlanPtr> children;
    children.push_back(PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})));
    children.push_back(PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"})));
    plans.push_back(PlanNode::IntersectOf(std::move(children)));
  }
  {
    std::vector<PlanPtr> inner;
    inner.push_back(PlanNode::SourceQuery(Parse("v < 6"), Attrs({"k", "v"})));
    inner.push_back(PlanNode::SourceQuery(Parse("v >= 2"), Attrs({"k", "v"})));
    std::vector<PlanPtr> outer;
    outer.push_back(PlanNode::IntersectOf(std::move(inner)));
    outer.push_back(
        PlanNode::SourceQuery(Parse("k = \"even\""), Attrs({"k", "v"})));
    plans.push_back(PlanNode::UnionOf(std::move(outer)));
  }
  for (const PlanPtr& plan : plans) {
    Executor row_exec(&row_source_);
    ExecOptions batch_options;
    batch_options.batch_width = 16;
    Executor batch_exec(&batch_source_, nullptr, batch_options);
    const Result<RowSet> row_rows = row_exec.Execute(*plan);
    const Result<RowSet> batch_rows = batch_exec.Execute(*plan);
    ASSERT_TRUE(row_rows.ok()) << plan->ToShortString();
    ASSERT_TRUE(batch_rows.ok()) << plan->ToShortString();
    ExpectExactlyEqual(*batch_rows, *row_rows, plan->ToShortString());
  }
}

TEST(WrapperBatchTest, BatchWrapperMatchesRowWrapper) {
  const Result<SourceDescription> description = ParseSsdl(kScanSsdl);
  ASSERT_TRUE(description.ok());
  Table table("R", description->schema());
  for (int i = 0; i < 60; ++i) {
    ASSERT_TRUE(table
                    .AppendValues({Value::String(i % 3 ? "a" : "b"),
                                   Value::Int(i % 7)})
                    .ok());
  }
  Wrapper row_wrapper(*description, &table);
  Wrapper batch_wrapper(*description, &table);
  batch_wrapper.set_batch_width(8);
  for (const char* text :
       {"k = \"a\" and v < 5", "v < 3 or v >= 6", "k startswith \"b\""}) {
    const Result<RowSet> row_rows = row_wrapper.Query(text, {"k", "v"});
    const Result<RowSet> batch_rows = batch_wrapper.Query(text, {"k", "v"});
    ASSERT_EQ(row_rows.ok(), batch_rows.ok()) << text;
    if (!row_rows.ok()) continue;
    ExpectExactlyEqual(*batch_rows, *row_rows, text);
  }
  EXPECT_GT(batch_wrapper.stats().wire_bytes, 0u);
  EXPECT_EQ(row_wrapper.stats().wire_bytes, 0u);
}

constexpr const char* kMediatorSsdl = R"(
source cars(make: string, model: string, year: int,
            color: string, price: int) {
  cost 10.0 1.0;
  rule s1 -> make = $string and price < $int;
  rule s2 -> make = $string and color = $string;
  export s1 : {make, model, year, color};
  export s2 : {make, model, year};
}
)";

std::unique_ptr<Table> MediatorCars(const Schema& schema) {
  auto table = std::make_unique<Table>("cars", schema);
  const auto add = [&table](const char* make, const char* model, int64_t year,
                            const char* color, int64_t price) {
    EXPECT_TRUE(table
                    ->AppendValues({Value::String(make), Value::String(model),
                                    Value::Int(year), Value::String(color),
                                    Value::Int(price)})
                    .ok());
  };
  add("BMW", "318i", 1996, "red", 21000);
  add("BMW", "528i", 1997, "black", 38000);
  add("Toyota", "Corolla", 1997, "red", 13000);
  add("Toyota", "Camry", 1998, "blue", 19000);
  add("Honda", "Civic", 1998, "red", 14000);
  return table;
}

TEST(MediatorBatchTest, BatchMediatorMatchesRowMediator) {
  Mediator row_mediator;
  Mediator::Options batch_options;
  batch_options.batch_width = 64;
  Mediator batch_mediator(batch_options);
  for (Mediator* m : {&row_mediator, &batch_mediator}) {
    Result<SourceDescription> description = ParseSsdl(kMediatorSsdl);
    ASSERT_TRUE(description.ok());
    const Schema schema = description->schema();
    ASSERT_TRUE(m->RegisterSource(std::move(description).value(),
                                  MediatorCars(schema))
                    .ok());
  }
  for (const char* sql : {
           "SELECT make, model FROM cars WHERE make = \"BMW\" and price < "
           "30000",
           "SELECT make, model, year FROM cars WHERE (make = \"BMW\" and "
           "price < 30000) or (make = \"Toyota\" and color = \"red\")",
           "SELECT model FROM cars WHERE make = \"Toyota\" and price < 20000 "
           "and color = \"blue\"",
       }) {
    const Result<Mediator::QueryResult> row_result = row_mediator.Query(sql);
    const Result<Mediator::QueryResult> batch_result =
        batch_mediator.Query(sql);
    ASSERT_EQ(row_result.ok(), batch_result.ok()) << sql;
    if (!row_result.ok()) continue;
    ExpectExactlyEqual(batch_result->rows, row_result->rows, sql);
  }
  // The batch mediator's source reports wire traffic in the stats snapshot.
  const Mediator::Stats stats = batch_mediator.StatsSnapshot();
  ASSERT_EQ(stats.sources.size(), 1u);
  EXPECT_GT(stats.sources[0].source.wire_bytes, 0u);
}

TEST(MediatorBatchTest, BatchWidthSurvivesDescriptionReload) {
  Mediator::Options options;
  options.batch_width = 32;
  Mediator mediator(options);
  Result<SourceDescription> description = ParseSsdl(kMediatorSsdl);
  ASSERT_TRUE(description.ok());
  const Schema schema = description->schema();
  ASSERT_TRUE(mediator
                  .RegisterSource(std::move(description).value(),
                                  MediatorCars(schema))
                  .ok());
  Result<CatalogEntry*> entry = mediator.catalog()->Find("cars");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ((*entry)->source()->batch_width(), 32u);
  // Reload rebuilds the enforcement wrapper; the batch width must survive.
  Result<SourceDescription> reloaded = ParseSsdl(kMediatorSsdl);
  ASSERT_TRUE(reloaded.ok());
  ASSERT_TRUE(mediator.ReloadSource(std::move(reloaded).value()).ok());
  EXPECT_EQ((*entry)->source()->batch_width(), 32u);
  const Result<Mediator::QueryResult> result = mediator.Query(
      "SELECT make, model FROM cars WHERE make = \"BMW\" and price < 30000");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);
}

}  // namespace
}  // namespace gencompact
