#include <gtest/gtest.h>

#include "baselines/cnf_planner.h"
#include "baselines/disco_planner.h"
#include "baselines/dnf_planner.h"
#include "baselines/naive_planner.h"
#include "expr/condition_parser.h"
#include "plan/plan_validator.h"
#include "planner/planner.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

// Bookstore-like source: author/title conjunctive search, no download.
class BookstoreFixture : public ::testing::Test {
 protected:
  BookstoreFixture()
      : description_(*ParseSsdl(R"(
          source books(author: string, title: string, price: int) {
            cost 10.0 1.0;
            rule f -> author = $string
                    | title contains $string
                    | author = $string and title contains $string;
            export f : {author, title, price};
          })")),
        table_("books", description_.schema()) {
    const auto add = [this](const char* author, const char* title,
                            int64_t price) {
      ASSERT_TRUE(table_
                      .AppendValues({Value::String(author), Value::String(title),
                                     Value::Int(price)})
                      .ok());
    };
    add("Freud", "the interpretation of dreams", 12);
    add("Freud", "civilization", 11);
    add("Jung", "memories dreams reflections", 14);
    add("Jung", "red book", 30);
    for (int i = 0; i < 40; ++i) {
      add(("author" + std::to_string(i)).c_str(),
          i % 2 ? "field of dreams" : "plain title", 5 + i);
    }
    handle_ = std::make_unique<SourceHandle>(description_, &table_);
  }

  AttributeSet Attrs(const std::vector<std::string>& names) {
    return *description_.schema().MakeSet(names);
  }

  // The bookstore target query of Example 1.1.
  ConditionPtr ExampleCondition() {
    return Parse(
        "(author = \"Freud\" or author = \"Jung\") and "
        "title contains \"dreams\"");
  }

  SourceDescription description_;
  Table table_;
  std::unique_ptr<SourceHandle> handle_;
};

TEST_F(BookstoreFixture, CnfShipsTitleClauseOnly) {
  // Garlic: CNF = (author∨author) ∧ (title contains): the author clause is
  // not supported, the title clause is — so it ships the title clause and
  // filters authors at the mediator.
  CnfPlanner planner(handle_.get());
  const Result<PlanPtr> plan =
      planner.Plan(ExampleCondition(), Attrs({"title"}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(ValidatePlan(**plan, handle_->checker()).ok());
  EXPECT_EQ((*plan)->kind(), PlanNode::Kind::kMediatorSp);
  EXPECT_EQ((*plan)->CountSourceQueries(), 1u);
  // The shipped query is the bare `title contains` — the expensive one.
  std::vector<const PlanNode*> queries;
  (*plan)->CollectSourceQueries(&queries);
  EXPECT_EQ(queries[0]->condition()->ToString(), "title contains \"dreams\"");
}

TEST_F(BookstoreFixture, DnfSendsTwoAuthorQueries) {
  DnfPlanner planner(handle_.get());
  const Result<PlanPtr> plan =
      planner.Plan(ExampleCondition(), Attrs({"title"}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(ValidatePlan(**plan, handle_->checker()).ok());
  EXPECT_EQ((*plan)->kind(), PlanNode::Kind::kUnion);
  EXPECT_EQ((*plan)->CountSourceQueries(), 2u);
}

TEST_F(BookstoreFixture, DiscoFailsOnExample) {
  DiscoPlanner planner(handle_.get());
  const Result<PlanPtr> plan =
      planner.Plan(ExampleCondition(), Attrs({"title"}));
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNoFeasiblePlan);
}

TEST_F(BookstoreFixture, DiscoSucceedsOnWholeConditionSupported) {
  DiscoPlanner planner(handle_.get());
  const Result<PlanPtr> plan = planner.Plan(
      Parse("author = \"Freud\" and title contains \"dreams\""),
      Attrs({"title"}));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind(), PlanNode::Kind::kSourceQuery);
}

TEST_F(BookstoreFixture, NaiveAlwaysShipsWholeCondition) {
  NaivePlanner planner(handle_.get());
  const Result<PlanPtr> plan =
      planner.Plan(ExampleCondition(), Attrs({"title"}));
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind(), PlanNode::Kind::kSourceQuery);
  // ... and that plan is NOT feasible (the point of the baseline).
  EXPECT_FALSE(ValidatePlan(**plan, handle_->checker()).ok());
}

TEST_F(BookstoreFixture, GenCompactBeatsCnfOnEstimatedCost) {
  GenCompactPlanner gencompact(handle_.get());
  CnfPlanner cnf(handle_.get());
  const AttributeSet attrs = Attrs({"title"});
  const Result<PlanPtr> gc = gencompact.Plan(ExampleCondition(), attrs);
  const Result<PlanPtr> cnf_plan = cnf.Plan(ExampleCondition(), attrs);
  ASSERT_TRUE(gc.ok());
  ASSERT_TRUE(cnf_plan.ok());
  const CostModel& model = handle_->cost_model();
  EXPECT_LE(model.PlanCost(**gc), model.PlanCost(**cnf_plan));
}

TEST_F(BookstoreFixture, MakePlannerFactoryCoversAllStrategies) {
  for (Strategy strategy :
       {Strategy::kGenCompact, Strategy::kGenModular, Strategy::kCnf,
        Strategy::kDnf, Strategy::kDisco, Strategy::kNaive}) {
    const std::unique_ptr<PlannerStrategy> planner =
        MakePlanner(strategy, handle_.get());
    ASSERT_NE(planner, nullptr);
    EXPECT_EQ(planner->name(), StrategyName(strategy));
  }
}

// Source that allows downloads: CNF/DNF/DISCO fall back to download when
// nothing is shippable.
class DownloadableFixture : public ::testing::Test {
 protected:
  DownloadableFixture()
      : description_(*ParseSsdl(R"(
          source R(a: string, p: int) {
            cost 10.0 1.0;
            rule f -> a = $string;
            rule dl -> true;
            export f : {a, p};
            export dl : {a, p};
          })")),
        table_("R", description_.schema()) {
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(table_
                      .AppendValues({Value::String(i % 3 ? "x" : "y"),
                                     Value::Int(i)})
                      .ok());
    }
    handle_ = std::make_unique<SourceHandle>(description_, &table_);
  }

  SourceDescription description_;
  Table table_;
  std::unique_ptr<SourceHandle> handle_;
};

TEST_F(DownloadableFixture, CnfDownloadFallback) {
  CnfPlanner planner(handle_.get());
  // p-only conditions are not shippable; download is.
  const Result<PlanPtr> plan =
      planner.Plan(*ParseCondition("p < 3 or p > 4"),
                   *description_.schema().MakeSet({"a"}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::vector<const PlanNode*> queries;
  (*plan)->CollectSourceQueries(&queries);
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_TRUE(queries[0]->condition()->is_true());
  EXPECT_TRUE(ValidatePlan(**plan, handle_->checker()).ok());
}

TEST_F(DownloadableFixture, DiscoDownloadFallback) {
  DiscoPlanner planner(handle_.get());
  const Result<PlanPtr> plan =
      planner.Plan(*ParseCondition("p < 3"), *description_.schema().MakeSet({"a"}));
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(ValidatePlan(**plan, handle_->checker()).ok());
}

TEST_F(DownloadableFixture, DnfPartialShipWithMediatorRest) {
  DnfPlanner planner(handle_.get());
  // Disjunct (a = "x" ∧ p < 3): ships a = "x", filters p < 3 locally.
  const Result<PlanPtr> plan = planner.Plan(
      *ParseCondition("(a = \"x\" and p < 3) or a = \"y\""),
      *description_.schema().MakeSet({"a"}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(ValidatePlan(**plan, handle_->checker()).ok());
  EXPECT_EQ((*plan)->CountSourceQueries(), 2u);
}

}  // namespace
}  // namespace gencompact
