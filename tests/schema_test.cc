#include <gtest/gtest.h>

#include "schema/attribute_set.h"
#include "schema/schema.h"

namespace gencompact {
namespace {

Schema CarSchema() {
  return Schema({{"make", ValueType::kString},
                 {"model", ValueType::kString},
                 {"year", ValueType::kInt},
                 {"color", ValueType::kString},
                 {"price", ValueType::kInt}});
}

TEST(AttributeSetTest, EmptyByDefault) {
  AttributeSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
}

TEST(AttributeSetTest, AddRemoveContains) {
  AttributeSet set;
  set.Add(3);
  set.Add(5);
  EXPECT_TRUE(set.Contains(3));
  EXPECT_TRUE(set.Contains(5));
  EXPECT_FALSE(set.Contains(4));
  set.Remove(3);
  EXPECT_FALSE(set.Contains(3));
  EXPECT_EQ(set.size(), 1u);
}

TEST(AttributeSetTest, SetAlgebra) {
  AttributeSet a;
  a.Add(0);
  a.Add(1);
  AttributeSet b;
  b.Add(1);
  b.Add(2);
  EXPECT_EQ(a.Union(b).size(), 3u);
  EXPECT_EQ(a.Intersect(b).Indices(), std::vector<int>{1});
  EXPECT_EQ(a.Minus(b).Indices(), std::vector<int>{0});
}

TEST(AttributeSetTest, SubsetSemantics) {
  AttributeSet small;
  small.Add(1);
  AttributeSet big;
  big.Add(0);
  big.Add(1);
  EXPECT_TRUE(small.IsSubsetOf(big));
  EXPECT_FALSE(big.IsSubsetOf(small));
  EXPECT_TRUE(AttributeSet().IsSubsetOf(small));
  EXPECT_TRUE(small.IsSubsetOf(small));
}

TEST(AttributeSetTest, AllOfBoundaries) {
  EXPECT_TRUE(AttributeSet::AllOf(0).empty());
  EXPECT_EQ(AttributeSet::AllOf(64).size(), 64u);
  EXPECT_EQ(AttributeSet::AllOf(5).Indices(), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(AttributeSetTest, ToStringUsesSchemaNames) {
  const Schema schema = CarSchema();
  AttributeSet set;
  set.Add(0);
  set.Add(4);
  EXPECT_EQ(set.ToString(schema), "{make, price}");
}

TEST(SchemaTest, IndexLookup) {
  const Schema schema = CarSchema();
  EXPECT_EQ(schema.IndexOf("price"), 4);
  EXPECT_FALSE(schema.IndexOf("vin").has_value());
  EXPECT_TRUE(schema.RequireIndex("make").ok());
  EXPECT_EQ(schema.RequireIndex("vin").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, MakeSet) {
  const Schema schema = CarSchema();
  const Result<AttributeSet> set = schema.MakeSet({"make", "price"});
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->Indices(), (std::vector<int>{0, 4}));
  EXPECT_FALSE(schema.MakeSet({"make", "vin"}).ok());
}

TEST(SchemaTest, AllAttributes) {
  EXPECT_EQ(CarSchema().AllAttributes().size(), 5u);
}

TEST(SchemaTest, ToStringListsTypes) {
  const std::string s = CarSchema().ToString();
  EXPECT_NE(s.find("make: string"), std::string::npos);
  EXPECT_NE(s.find("price: int"), std::string::npos);
}

}  // namespace
}  // namespace gencompact
