#include <gtest/gtest.h>

#include "expr/condition_parser.h"
#include "mediator/join.h"
#include "mediator/mediator.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

// cars: a limited form source (single make, price bound).
constexpr const char* kCarsSsdl = R"(
  source cars(make: string, model: string, price: int, year: int) {
    cost 10.0 1.0;
    rule f -> make = $string
            | make = $string and price < $int
            | price < $int;
    export f : {make, model, price, year};
  })";

// dealers: accepts one make or a list of makes, optionally with a rating
// floor — never a download.
constexpr const char* kDealersSsdl = R"(
  source dealers(make: string, city: string, rating: int, since: int) {
    cost 5.0 1.0;
    rule mlist -> make = $string or make = $string
                | make = $string or mlist;
    rule f -> make = $string
            | mlist
            | ( mlist )
            | make = $string and rating >= $int
            | ( mlist ) and rating >= $int
            | rating >= $int and make = $string
            | rating >= $int and ( mlist );
    export f : {make, city, rating, since};
  })";

class JoinFixture : public ::testing::Test {
 protected:
  JoinFixture() {
    Result<SourceDescription> cars = ParseSsdl(kCarsSsdl);
    Result<SourceDescription> dealers = ParseSsdl(kDealersSsdl);
    EXPECT_TRUE(cars.ok()) << cars.status().ToString();
    EXPECT_TRUE(dealers.ok()) << dealers.status().ToString();

    auto cars_table = std::make_unique<Table>("cars", cars->schema());
    const auto add_car = [&](const char* make, const char* model,
                             int64_t price, int64_t year) {
      EXPECT_TRUE(cars_table
                      ->AppendValues({Value::String(make), Value::String(model),
                                      Value::Int(price), Value::Int(year)})
                      .ok());
    };
    add_car("BMW", "318i", 21000, 1996);
    add_car("BMW", "528i", 38000, 1997);
    add_car("Toyota", "Corolla", 13000, 1997);
    add_car("Toyota", "Camry", 19000, 1998);
    add_car("Saab", "900", 16000, 1995);

    auto dealers_table = std::make_unique<Table>("dealers", dealers->schema());
    const auto add_dealer = [&](const char* make, const char* city,
                                int64_t rating, int64_t since) {
      EXPECT_TRUE(dealers_table
                      ->AppendValues({Value::String(make), Value::String(city),
                                      Value::Int(rating), Value::Int(since)})
                      .ok());
    };
    add_dealer("BMW", "Palo Alto", 5, 1990);
    add_dealer("BMW", "San Jose", 3, 1995);
    add_dealer("Toyota", "Palo Alto", 4, 1985);
    add_dealer("Honda", "Fremont", 4, 1992);

    EXPECT_TRUE(
        catalog_.Register(std::move(cars).value(), std::move(cars_table)).ok());
    EXPECT_TRUE(catalog_
                    .Register(std::move(dealers).value(),
                              std::move(dealers_table))
                    .ok());
    left_ = *catalog_.Find("cars");
    right_ = *catalog_.Find("dealers");
  }

  JoinQuery MakeQuery(const std::string& condition_text,
                      std::vector<std::string> select) {
    JoinQuery query;
    query.left_source = "cars";
    query.right_source = "dealers";
    query.keys = {{"cars.make", "dealers.make"}};
    Result<ConditionPtr> cond = ParseCondition(condition_text);
    EXPECT_TRUE(cond.ok()) << cond.status().ToString();
    query.condition = std::move(cond).value();
    query.select = std::move(select);
    return query;
  }

  Catalog catalog_;
  CatalogEntry* left_ = nullptr;
  CatalogEntry* right_ = nullptr;
};

TEST_F(JoinFixture, OutputSchemaQualifiesBothSides) {
  JoinProcessor processor(left_, right_);
  const Result<Schema> schema = processor.OutputSchema(MakeQuery("true", {}));
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_attributes(), 8u);
  EXPECT_TRUE(schema->IndexOf("cars.make").has_value());
  EXPECT_TRUE(schema->IndexOf("dealers.city").has_value());
}

TEST_F(JoinFixture, BasicJoinMatchesGroundTruth) {
  JoinProcessor processor(left_, right_);
  const JoinQuery query = MakeQuery(
      "cars.price < 30000",
      {"cars.model", "dealers.city"});
  const Result<RowSet> rows = processor.Execute(query);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // Cars < 30000: 318i(BMW), Corolla, Camry(Toyota), 900(Saab, no dealer).
  // BMW dealers: Palo Alto, San Jose; Toyota dealers: Palo Alto.
  // Rows: (318i,PA), (318i,SJ), (Corolla,PA), (Camry,PA).
  EXPECT_EQ(rows->size(), 4u);
}

TEST_F(JoinFixture, PushdownSplitsPerSourceConjuncts) {
  JoinProcessor processor(left_, right_);
  JoinQuery pushdown = MakeQuery(
      "cars.price < 30000 and dealers.rating >= 4",
      {"cars.model", "dealers.city", "dealers.rating"});
  const Result<JoinPlanOutcome> outcome = processor.Plan(pushdown);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  // Both conjuncts push down to their sources; nothing is residual.
  EXPECT_TRUE(outcome->residual->is_true());

  const Result<RowSet> rows = processor.Execute(pushdown);
  ASSERT_TRUE(rows.ok());
  // Rating >= 4 dealers: BMW/Palo Alto(5), Toyota/Palo Alto(4),
  // Honda/Fremont(4). Joined: 318i+PA, Corolla+PA, Camry+PA.
  EXPECT_EQ(rows->size(), 3u);
}

TEST_F(JoinFixture, MixedDisjunctionBecomesResidual) {
  JoinProcessor processor(left_, right_);
  const JoinQuery query = MakeQuery(
      "cars.price < 30000 and (cars.year >= 1998 or dealers.rating >= 5)",
      {"cars.model", "dealers.city"});
  const Result<JoinPlanOutcome> outcome = processor.Plan(query);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->residual->is_true());

  const Result<RowSet> rows = processor.Execute(query);
  ASSERT_TRUE(rows.ok());
  // (318i: year 1996, BMW dealers PA(5): keep PA only),
  // (Corolla 1997, Toyota PA(4): drop), (Camry 1998, Toyota PA: keep).
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(JoinFixture, BindJoinIsChosenWhenRightCannotRunIndependently) {
  // The dealers source requires a make to be specified (no download, no
  // rating-only queries): an independent right-side plan for `true` is
  // infeasible, so the processor must bind.
  JoinProcessor processor(left_, right_);
  const JoinQuery query =
      MakeQuery("cars.make = \"BMW\"", {"cars.model", "dealers.city"});
  const Result<JoinPlanOutcome> outcome = processor.Plan(query);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->method, JoinMethod::kBind);

  const Result<RowSet> rows = processor.Execute(query);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 4u);  // 2 BMW cars x 2 BMW dealers
  EXPECT_GE(processor.stats().bind_batches, 1u);
  // The bind transfers only BMW dealers (2), not the whole dealer table.
  EXPECT_EQ(processor.stats().right.rows_transferred, 2u);
}

TEST_F(JoinFixture, ForcedMethodsAgreeOnResults) {
  const JoinQuery query = MakeQuery("cars.price < 30000 and dealers.rating >= 4",
                                    {"cars.model", "dealers.city"});
  JoinOptions bind_options;
  bind_options.force_method = JoinMethod::kBind;
  JoinProcessor bind_processor(left_, right_, bind_options);
  const Result<RowSet> bind_rows = bind_processor.Execute(query);
  ASSERT_TRUE(bind_rows.ok()) << bind_rows.status().ToString();

  // Independent is infeasible here (dealers cannot answer rating >= 4
  // without a make) — so compare bind against hand-computed truth instead.
  EXPECT_EQ(bind_rows->size(), 3u);
}

TEST_F(JoinFixture, SmallBindBatchesChunkCorrectly) {
  JoinOptions options;
  options.bind_batch_size = 1;  // one make per right query
  options.force_method = JoinMethod::kBind;
  JoinProcessor processor(left_, right_, options);
  const JoinQuery query = MakeQuery("cars.price < 40000", {"dealers.city"});
  const Result<RowSet> rows = processor.Execute(query);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // Distinct left makes: BMW, Toyota, Saab -> 3 batches.
  EXPECT_EQ(processor.stats().bind_batches, 3u);
  EXPECT_EQ(rows->size(), 2u);  // cities: Palo Alto, San Jose
}

TEST_F(JoinFixture, ErrorsOnUnknownQualifiedAttribute) {
  JoinProcessor processor(left_, right_);
  const JoinQuery query = MakeQuery("cars.bogus = 1", {});
  EXPECT_EQ(processor.Plan(query).status().code(), StatusCode::kNotFound);
}

TEST_F(JoinFixture, ErrorsOnMissingKeys) {
  JoinProcessor processor(left_, right_);
  JoinQuery query = MakeQuery("true", {});
  query.keys.clear();
  EXPECT_EQ(processor.Plan(query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ParseJoinSqlTest, ParsesFullForm) {
  const Result<ParsedJoinQuery> parsed = ParseJoinSql(
      "SELECT cars.model, dealers.city FROM cars JOIN dealers "
      "ON cars.make = dealers.make AND cars.year = dealers.since "
      "WHERE cars.price < 30000");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->left_source, "cars");
  EXPECT_EQ(parsed->right_source, "dealers");
  ASSERT_EQ(parsed->keys.size(), 2u);
  EXPECT_EQ(parsed->keys[0].first, "cars.make");
  EXPECT_EQ(parsed->keys[1].second, "dealers.since");
  EXPECT_EQ(parsed->condition->ToString(), "cars.price < 30000");
}

TEST(ParseJoinSqlTest, NoWhereClause) {
  const Result<ParsedJoinQuery> parsed =
      ParseJoinSql("SELECT * FROM a JOIN b ON a.x = b.y");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->select_list.empty());
  EXPECT_TRUE(parsed->condition->is_true());
}

TEST(ParseJoinSqlTest, RejectsMalformed) {
  EXPECT_FALSE(ParseJoinSql("SELECT * FROM a JOIN b").ok());
  EXPECT_FALSE(ParseJoinSql("SELECT * FROM a JOIN b ON a.x").ok());
  EXPECT_FALSE(ParseJoinSql("FROM a JOIN b ON a.x = b.y").ok());
}

TEST(IsJoinQueryTest, Detection) {
  EXPECT_TRUE(IsJoinQuery("SELECT * FROM a JOIN b ON a.x = b.y"));
  EXPECT_FALSE(IsJoinQuery("SELECT * FROM a WHERE x = \"join\""));
  EXPECT_FALSE(IsJoinQuery("SELECT * FROM a"));
}

TEST_F(JoinFixture, MediatorDispatchesJoinSql) {
  // Rebuild the fixture state inside a Mediator.
  Mediator mediator;
  Result<SourceDescription> cars = ParseSsdl(kCarsSsdl);
  Result<SourceDescription> dealers = ParseSsdl(kDealersSsdl);
  ASSERT_TRUE(cars.ok());
  ASSERT_TRUE(dealers.ok());
  auto cars_table = std::make_unique<Table>("cars", cars->schema());
  ASSERT_TRUE(cars_table
                  ->AppendValues({Value::String("BMW"), Value::String("318i"),
                                  Value::Int(21000), Value::Int(1996)})
                  .ok());
  auto dealers_table = std::make_unique<Table>("dealers", dealers->schema());
  ASSERT_TRUE(dealers_table
                  ->AppendValues({Value::String("BMW"),
                                  Value::String("Palo Alto"), Value::Int(5),
                                  Value::Int(1990)})
                  .ok());
  ASSERT_TRUE(
      mediator.RegisterSource(std::move(cars).value(), std::move(cars_table))
          .ok());
  ASSERT_TRUE(mediator
                  .RegisterSource(std::move(dealers).value(),
                                  std::move(dealers_table))
                  .ok());

  const Result<Mediator::QueryResult> result = mediator.Query(
      "SELECT cars.model, dealers.city FROM cars JOIN dealers "
      "ON cars.make = dealers.make WHERE cars.price < 30000");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 1u);
  EXPECT_GE(result->exec.source_queries, 2u);
  EXPECT_GT(result->true_cost, 0.0);
}

}  // namespace
}  // namespace gencompact
