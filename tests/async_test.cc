// Async event-loop executor suite: the in-flight limiter, admission control
// (both the backlog gate and the query-count gate), the AsyncScheduler DAG
// walk, deadline discipline (including the fix for backoff sleeps that held
// pool threads past expired deadlines), join deadline propagation, the
// adaptive hedge quantile, and the mediator's QueryAsync entry point. Every
// wait that can run on a FakeClock does (the loop's Clock::AwaitFor advances
// virtual time instead of blocking); the handful of tests that need real
// concurrency (the query-count shed, join budgets) use real sleeps with wide
// margins.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "exec/admission.h"
#include "exec/async_scheduler.h"
#include "exec/event_loop.h"
#include "exec/executor.h"
#include "exec/fault_policy.h"
#include "exec/inflight_limiter.h"
#include "exec/latency_tracker.h"
#include "expr/condition_parser.h"
#include "mediator/join.h"
#include "mediator/mediator.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

using std::chrono::microseconds;

constexpr std::chrono::steady_clock::time_point kNoDeadline{};

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

bool SameRows(const RowSet& a, const RowSet& b) {
  if (a.size() != b.size()) return false;
  for (const Row& row : a.rows()) {
    if (!b.Contains(row)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// InflightLimiter
// ---------------------------------------------------------------------------

TEST(InflightLimiterTest, UnlimitedByDefaultGrantsInline) {
  InflightLimiter limiter(InflightLimiterOptions{});
  int granted = 0;
  for (int i = 0; i < 5; ++i) {
    limiter.Acquire(1, kNoDeadline, [&](Status s) {
      EXPECT_TRUE(s.ok());
      ++granted;
    });
  }
  EXPECT_EQ(granted, 5);
  EXPECT_EQ(limiter.inflight(), 5u);
  EXPECT_EQ(limiter.queue_depth(), 0u);
  for (int i = 0; i < 5; ++i) limiter.Release(1);
  EXPECT_EQ(limiter.inflight(), 0u);
  EXPECT_EQ(limiter.admitted(), 5u);
}

TEST(InflightLimiterTest, GlobalCapQueuesAndGrantsFifoOnRelease) {
  InflightLimiterOptions options;
  options.global = 2;
  InflightLimiter limiter(options);
  std::vector<int> granted;
  const auto grant = [&granted](int id) {
    return [&granted, id](Status s) {
      EXPECT_TRUE(s.ok());
      granted.push_back(id);
    };
  };
  limiter.Acquire(1, kNoDeadline, grant(0));
  limiter.Acquire(1, kNoDeadline, grant(1));
  limiter.Acquire(1, kNoDeadline, grant(2));
  limiter.Acquire(2, kNoDeadline, grant(3));
  EXPECT_EQ(granted, (std::vector<int>{0, 1}));
  EXPECT_EQ(limiter.inflight(), 2u);
  EXPECT_EQ(limiter.queue_depth(), 2u);
  EXPECT_EQ(limiter.pending(), 4u);
  limiter.Release(1);
  EXPECT_EQ(granted, (std::vector<int>{0, 1, 2}));
  limiter.Release(1);
  EXPECT_EQ(granted, (std::vector<int>{0, 1, 2, 3}));
  limiter.Release(1);
  limiter.Release(2);
  EXPECT_EQ(limiter.inflight(), 0u);
  EXPECT_EQ(limiter.peak_inflight(), 2u);
  EXPECT_EQ(limiter.peak_queue_depth(), 2u);
  EXPECT_EQ(limiter.admitted(), 4u);
}

TEST(InflightLimiterTest, PerSourceCapDoesNotStarveOtherSources) {
  InflightLimiterOptions options;
  options.per_source = 1;
  InflightLimiter limiter(options);
  std::vector<int> granted;
  const auto grant = [&granted](int id) {
    return [&granted, id](Status s) {
      EXPECT_TRUE(s.ok());
      granted.push_back(id);
    };
  };
  limiter.Acquire(1, kNoDeadline, grant(0));  // source 1 at cap
  limiter.Acquire(1, kNoDeadline, grant(1));  // queued behind it
  limiter.Acquire(2, kNoDeadline, grant(2));  // different source: not blocked
  EXPECT_EQ(granted, (std::vector<int>{0, 2}));
  // FIFO per source: a later fetch for source 1 queues behind the earlier
  // waiter even though it would also fail the capacity check on its own.
  limiter.Acquire(1, kNoDeadline, grant(3));
  EXPECT_EQ(limiter.queue_depth(), 2u);
  limiter.Release(1);
  EXPECT_EQ(granted, (std::vector<int>{0, 2, 1}));
  limiter.Release(1);
  EXPECT_EQ(granted, (std::vector<int>{0, 2, 1, 3}));
}

TEST(InflightLimiterTest, ExpiredWaitersFailOnTheNextGrantPass) {
  FakeClock clock;
  clock.Advance(std::chrono::seconds(1));  // keep Now() distinct from "none"
  InflightLimiterOptions options;
  options.global = 1;
  InflightLimiter limiter(options, &clock);
  limiter.Acquire(1, kNoDeadline, [](Status s) { EXPECT_TRUE(s.ok()); });
  Status waiter = Status::OK();
  limiter.Acquire(1, clock.Now() + microseconds(1000),
                  [&waiter](Status s) { waiter = s; });
  EXPECT_EQ(limiter.queue_depth(), 1u);
  clock.Advance(microseconds(2000));  // the waiter's deadline passes
  limiter.Release(1);
  EXPECT_EQ(waiter.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(limiter.deadline_failures(), 1u);
  EXPECT_EQ(limiter.inflight(), 0u);
  EXPECT_EQ(limiter.queue_depth(), 0u);
}

TEST(InflightLimiterTest, AlreadyExpiredAcquireFailsWithoutQueueing) {
  FakeClock clock;
  clock.Advance(std::chrono::seconds(1));
  InflightLimiterOptions options;
  options.global = 1;
  InflightLimiter limiter(options, &clock);
  limiter.Acquire(1, kNoDeadline, [](Status s) { EXPECT_TRUE(s.ok()); });
  Status late = Status::OK();
  limiter.Acquire(1, clock.Now() - microseconds(1),
                  [&late](Status s) { late = s; });
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(limiter.queue_depth(), 0u);
  EXPECT_EQ(limiter.deadline_failures(), 1u);
}

TEST(InflightLimiterTest, TryAcquireNeverQueues) {
  InflightLimiterOptions options;
  options.global = 1;
  InflightLimiter limiter(options);
  EXPECT_TRUE(limiter.TryAcquire(1));
  EXPECT_FALSE(limiter.TryAcquire(1));  // at the cap: skip, don't wait
  EXPECT_EQ(limiter.queue_depth(), 0u);
  limiter.Release(1);
  EXPECT_TRUE(limiter.TryAcquire(2));
  limiter.Release(2);
}

// ---------------------------------------------------------------------------
// AdmissionController
// ---------------------------------------------------------------------------

TEST(AdmissionControllerTest, DisabledAdmitsEverything) {
  AdmissionController admission(AdmissionOptions{});
  EXPECT_TRUE(
      admission.Admit(1000, microseconds(10000), microseconds(1)).ok());
  EXPECT_EQ(admission.rejections(), 0u);
}

TEST(AdmissionControllerTest, BacklogCapSheds) {
  AdmissionOptions options;
  options.enabled = true;
  options.max_pending = 4;
  AdmissionController admission(options);
  EXPECT_TRUE(admission.Admit(3, microseconds(0), microseconds(0)).ok());
  const Status shed = admission.Admit(4, microseconds(0), microseconds(0));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.ToString().find("admission control"), std::string::npos);
  EXPECT_EQ(admission.rejections(), 1u);
}

TEST(AdmissionControllerTest, DoomedDeadlineSheds) {
  AdmissionOptions options;
  options.enabled = true;
  options.drain_width = 1;
  AdmissionController admission(options);
  // One observed round trip already exceeds the budget: hopeless.
  const Status shed =
      admission.Admit(0, microseconds(10000), microseconds(1000));
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.ToString().find("exceeds deadline"), std::string::npos);
  // The same trip fits a 20ms budget.
  EXPECT_TRUE(
      admission.Admit(0, microseconds(10000), microseconds(20000)).ok());
}

TEST(AdmissionControllerTest, DrainWidthScalesTheExpectedWait) {
  AdmissionOptions options;
  options.enabled = true;
  options.drain_width = 4;
  AdmissionController narrow(options);
  // Backlog of 8 drained 4 at a time: (1 + 8/4) trips of 1ms = 3ms > 2ms.
  EXPECT_FALSE(narrow.Admit(8, microseconds(1000), microseconds(2000)).ok());
  options.drain_width = 8;
  AdmissionController wide(options);
  // Same backlog drained 8-wide: 2ms, exactly the budget — admitted.
  EXPECT_TRUE(wide.Admit(8, microseconds(1000), microseconds(2000)).ok());
}

TEST(AdmissionControllerTest, NoLatencySignalOrNoDeadlineAdmits) {
  AdmissionOptions options;
  options.enabled = true;
  options.drain_width = 1;
  AdmissionController admission(options);
  // No digest yet (est 0): nothing to reason with, admit.
  EXPECT_TRUE(admission.Admit(50, microseconds(0), microseconds(1)).ok());
  // No deadline (budget 0): nothing to miss, admit.
  EXPECT_TRUE(admission.Admit(50, microseconds(10000), microseconds(0)).ok());
}

TEST(AdmissionControllerTest, QueryCountGateShedsPastCapPlusQueue) {
  AdmissionController admission(AdmissionOptions{});
  // Gate disabled: any load admits.
  EXPECT_TRUE(admission.AdmitQuery(100, 0, 0).ok());
  // Below the cap: run.
  EXPECT_TRUE(admission.AdmitQuery(1, 2, 0).ok());
  // At the cap with queue allowance: tolerated as backlog.
  EXPECT_TRUE(admission.AdmitQuery(2, 2, 1).ok());
  // Past cap + queue: shed.
  const Status shed = admission.AdmitQuery(3, 2, 1);
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.ToString().find("max_inflight_queries"), std::string::npos);
  EXPECT_NE(shed.ToString().find("admission control"), std::string::npos);
  EXPECT_EQ(admission.rejections(), 1u);
  // Zero queue allowance sheds exactly at the cap.
  EXPECT_FALSE(admission.AdmitQuery(1, 1, 0).ok());
  EXPECT_EQ(admission.rejections(), 2u);
}

// ---------------------------------------------------------------------------
// Adaptive hedge quantile — straggler-rate convergence.
// ---------------------------------------------------------------------------

TEST(AdaptiveHedgeTest, FixedPolicyIgnoresTheDigest) {
  LatencyTracker tracker;
  for (int i = 0; i < 100; ++i) {
    tracker.Record(microseconds(i % 10 == 0 ? 10000 : 1000));
  }
  HedgePolicy policy;
  policy.quantile = 0.97;
  EXPECT_DOUBLE_EQ(EffectiveHedgeQuantile(policy, tracker), 0.97);
}

TEST(AdaptiveHedgeTest, NoStragglersStaysAtTheCeiling) {
  LatencyTracker tracker;
  for (int i = 0; i < 100; ++i) tracker.Record(microseconds(1000));
  EXPECT_DOUBLE_EQ(tracker.straggler_rate(), 0.0);
  HedgePolicy policy;
  policy.adaptive = true;
  EXPECT_DOUBLE_EQ(EffectiveHedgeQuantile(policy, tracker), 0.99);
}

TEST(AdaptiveHedgeTest, TenPercentStragglersConvergeToTheFloor) {
  // Every 10th call takes 10x the median: the measured straggler rate
  // converges to ~0.1, so the adaptive quantile (1 - rate) hits the 0.90
  // floor — a fat-tailed source hedges as early as the policy allows.
  LatencyTracker tracker;
  for (int i = 1; i <= 300; ++i) {
    tracker.Record(microseconds(i % 10 == 0 ? 10000 : 1000));
  }
  EXPECT_NEAR(tracker.straggler_rate(), 0.1, 0.02);
  HedgePolicy policy;
  policy.adaptive = true;
  EXPECT_NEAR(EffectiveHedgeQuantile(policy, tracker), 0.90, 0.015);
}

TEST(AdaptiveHedgeTest, ModerateStragglerRateLandsBetweenTheClamps) {
  // ~5% stragglers: the quantile settles near 0.95, strictly inside
  // [min_quantile, max_quantile].
  LatencyTracker tracker;
  for (int i = 1; i <= 400; ++i) {
    tracker.Record(microseconds(i % 20 == 0 ? 10000 : 1000));
  }
  EXPECT_NEAR(tracker.straggler_rate(), 0.05, 0.015);
  HedgePolicy policy;
  policy.adaptive = true;
  const double quantile = EffectiveHedgeQuantile(policy, tracker);
  EXPECT_NEAR(quantile, 0.95, 0.02);
  EXPECT_GT(quantile, policy.min_quantile);
  EXPECT_LT(quantile, policy.max_quantile);
}

// ---------------------------------------------------------------------------
// Shared single-source fixture.
// ---------------------------------------------------------------------------

constexpr const char* kSingleSourceSsdl = R"(
  source R(k: string, v: int) {
    rule s1 -> k = $string;
    rule s2 -> v < $int;
    rule s3 -> v >= $int;
    export s1 : {k, v};
    export s2 : {k, v};
    export s3 : {k, v};
  })";

// ---------------------------------------------------------------------------
// Satellite fix regression: the SYNC executor's retry loop used to park a
// pool thread on a backoff sleep even when the query's absolute deadline had
// already passed (or the sleep itself would overshoot it). On a FakeClock
// the old behavior is visible as virtual time spent past the deadline.
// ---------------------------------------------------------------------------

class SyncDeadlineTest : public ::testing::Test {
 protected:
  SyncDeadlineTest()
      : description_(*ParseSsdl(kSingleSourceSsdl)),
        table_("R", description_.schema()),
        source_(&table_, &description_) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(table_
                      .AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                     Value::Int(i)})
                      .ok());
    }
    source_.set_fault_policy(FaultPolicy{});
  }

  SourceDescription description_;
  Table table_;
  Source source_;
  FakeClock clock_;
};

TEST_F(SyncDeadlineTest, BackoffNeverSleepsPastTheQueryDeadline) {
  source_.fault_injector()->FailNextN(100);
  ExecOptions options;
  options.clock = &clock_;
  options.retry.max_attempts = 10;
  // base == cap pins the jitter draw: every delay is exactly 10ms — double
  // the 5ms budget, so the very first backoff would overshoot.
  options.retry.backoff.base = microseconds(10000);
  options.retry.backoff.cap = microseconds(10000);
  const auto deadline_point = clock_.Now() + microseconds(5000);
  options.deadline = deadline_point;
  Executor executor(&source_, /*pool=*/nullptr, options);
  const PlanPtr plan = PlanNode::SourceQuery(
      Parse("v < 3"), *description_.schema().MakeSet({"v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(rows.status().ToString().find("query deadline exceeded after 1"),
            std::string::npos);
  // The fix: the sleep was never scheduled — virtual time did not move, let
  // alone past the deadline. (The old code slept first and noticed later.)
  EXPECT_LT(clock_.Now(), deadline_point);
  const ExecStats stats = executor.stats();
  EXPECT_EQ(stats.deadlines_exceeded, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(source_.stats().queries_received, 1u);
}

TEST_F(SyncDeadlineTest, ExpiredDeadlineFailsFastWithoutContactingTheSource) {
  ExecOptions options;
  options.clock = &clock_;
  options.retry.max_attempts = 10;
  options.deadline = clock_.Now() + microseconds(5000);
  clock_.Advance(microseconds(6000));  // the deadline passes before we start
  Executor executor(&source_, /*pool=*/nullptr, options);
  const PlanPtr plan = PlanNode::SourceQuery(
      Parse("v < 3"), *description_.schema().MakeSet({"v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(rows.status().ToString().find("query deadline expired before"),
            std::string::npos);
  EXPECT_EQ(source_.stats().queries_received, 0u);
  EXPECT_EQ(executor.stats().deadlines_exceeded, 1u);
}

// ---------------------------------------------------------------------------
// AsyncScheduler — on the 10-row R(k, v) source from the fault suite.
// ---------------------------------------------------------------------------

class AsyncExecFixture : public ::testing::Test {
 protected:
  AsyncExecFixture()
      : description_(*ParseSsdl(kSingleSourceSsdl)),
        table_("R", description_.schema()),
        source_(&table_, &description_),
        loop_(&clock_) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(table_
                      .AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                     Value::Int(i)})
                      .ok());
    }
    source_.set_fault_policy(FaultPolicy{});  // injector for FailNextN
  }

  AttributeSet Attrs(const std::vector<std::string>& names) {
    return *description_.schema().MakeSet(names);
  }

  Result<RowSet> Run(const PlanNode& plan, AsyncExecOptions options,
                     ExecStats* stats = nullptr,
                     std::vector<std::string>* dropped = nullptr) {
    options.exec.clock = &clock_;
    AsyncScheduler scheduler(&source_, &loop_, options);
    Result<RowSet> rows = scheduler.Execute(plan);
    if (stats != nullptr) *stats = scheduler.stats();
    if (dropped != nullptr) *dropped = scheduler.dropped_sub_queries();
    return rows;
  }

  SourceDescription description_;
  Table table_;
  Source source_;
  FakeClock clock_;  // declared before loop_: the loop is destroyed first
  EventLoop loop_;
};

TEST_F(AsyncExecFixture, MatchesBlockingExecutorOnUnions) {
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 3"), Attrs({"k", "v"})),
       PlanNode::SourceQuery(Parse("k = \"odd\""), Attrs({"k", "v"}))});
  Executor blocking(&source_);
  const Result<RowSet> sync_rows = blocking.Execute(*plan);
  ASSERT_TRUE(sync_rows.ok()) << sync_rows.status().ToString();
  const size_t sync_received = source_.stats().queries_received;
  source_.ResetStats();

  ExecStats stats;
  const Result<RowSet> async_rows = Run(*plan, AsyncExecOptions{}, &stats);
  ASSERT_TRUE(async_rows.ok()) << async_rows.status().ToString();
  EXPECT_TRUE(SameRows(*async_rows, *sync_rows));
  EXPECT_EQ(async_rows->size(), 7u);  // {0,1,2} plus odds, (odd,1) shared
  EXPECT_EQ(stats.source_queries, blocking.stats().source_queries);
  EXPECT_EQ(stats.rows_transferred, blocking.stats().rows_transferred);
  EXPECT_EQ(source_.stats().queries_received, sync_received);
}

TEST_F(AsyncExecFixture, DuplicateSubQueriesAreFetchedOnce) {
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}))});
  ExecStats stats;
  const Result<RowSet> rows = Run(*plan, AsyncExecOptions{}, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ(stats.source_queries, 1u);
  EXPECT_EQ(source_.stats().queries_received, 1u);
}

TEST_F(AsyncExecFixture, RetriesRecoverScriptedTransientFailures) {
  source_.fault_injector()->FailNextN(2);
  AsyncExecOptions options;
  options.exec.retry.max_attempts = 4;
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  const auto t0 = clock_.Now();
  ExecStats stats;
  const Result<RowSet> rows = Run(*plan, options, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.failed_sub_queries, 0u);
  EXPECT_EQ(source_.stats().queries_received, 3u);
  // Backoff sleeps were timers on the FakeClock: virtual time was spent
  // without the test blocking.
  EXPECT_GT((clock_.Now() - t0).count(), 0);
}

TEST_F(AsyncExecFixture, AttemptCapExhaustsAndPropagates) {
  source_.fault_injector()->FailNextN(10);
  AsyncExecOptions options;
  options.exec.retry.max_attempts = 3;
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  ExecStats stats;
  const Result<RowSet> rows = Run(*plan, options, &stats);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(stats.retries, 2u);  // 3 attempts = 2 retries
  EXPECT_EQ(stats.failed_sub_queries, 1u);
  EXPECT_EQ(source_.stats().queries_received, 3u);
}

TEST_F(AsyncExecFixture, SubQueryDeadlineCutsTheRetryLoop) {
  source_.fault_injector()->FailNextN(100);
  AsyncExecOptions options;
  options.exec.retry.max_attempts = 100;
  options.exec.retry.backoff.base = microseconds(10000);
  options.exec.retry.sub_query_deadline = microseconds(25000);
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  ExecStats stats;
  const Result<RowSet> rows = Run(*plan, options, &stats);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(rows.status().ToString().find("sub-query deadline exceeded"),
            std::string::npos);
  EXPECT_EQ(stats.deadlines_exceeded, 1u);
}

TEST_F(AsyncExecFixture, QueryDeadlineFailsFastWithoutBackoffOvershoot) {
  // The async counterpart of the SyncDeadlineTest regression: a backoff
  // sleep that would overshoot ExecOptions::deadline is never armed as a
  // timer either.
  source_.fault_injector()->FailNextN(100);
  AsyncExecOptions options;
  options.exec.retry.max_attempts = 10;
  options.exec.retry.backoff.base = microseconds(10000);
  options.exec.retry.backoff.cap = microseconds(10000);
  options.exec.deadline = clock_.Now() + microseconds(5000);
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  ExecStats stats;
  const Result<RowSet> rows = Run(*plan, options, &stats);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(stats.deadlines_exceeded, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(source_.stats().queries_received, 1u);
}

TEST_F(AsyncExecFixture, DegradeDropsFailedUnionBranches) {
  source_.fault_injector()->FailNextN(1);
  AsyncExecOptions options;
  options.exec.degrade_unions = true;
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 7"), Attrs({"v"}))});
  ExecStats stats;
  std::vector<std::string> dropped;
  const Result<RowSet> rows = Run(*plan, options, &stats, &dropped);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);  // the surviving branch: {7, 8, 9}
  EXPECT_EQ(stats.dropped_branches, 1u);
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_NE(dropped[0].find("v < 3"), std::string::npos);
}

TEST_F(AsyncExecFixture, SimulatedLatencyIsATimerNotASleep) {
  source_.set_simulated_latency(microseconds(5000));
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  const auto t0 = clock_.Now();
  const Result<RowSet> rows = Run(*plan, AsyncExecOptions{});
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
  // The round trip elapsed on the virtual clock, not the wall clock.
  EXPECT_GE(clock_.Now() - t0, microseconds(5000));
}

TEST_F(AsyncExecFixture, LimiterSerializesFetchesOfOnePlan) {
  source_.set_simulated_latency(microseconds(1000));
  InflightLimiterOptions limiter_options;
  limiter_options.global = 1;
  InflightLimiter limiter(limiter_options, &clock_);
  AsyncExecOptions options;
  options.limiter = &limiter;
  options.source_id = 7;
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 7"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("k = \"odd\""), Attrs({"v"}))});
  const auto t0 = clock_.Now();
  ExecStats stats;
  const Result<RowSet> rows = Run(*plan, options, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // {0,1,2} u {7,8,9} u {1,3,5,7,9}
  EXPECT_EQ(rows->size(), 8u);
  EXPECT_EQ(stats.source_queries, 3u);
  // The union fans out all three fetches at once, but the limiter admits
  // exactly one round trip to the wire at a time.
  EXPECT_EQ(limiter.peak_inflight(), 1u);
  EXPECT_EQ(limiter.peak_queue_depth(), 2u);
  EXPECT_EQ(limiter.admitted(), 3u);
  EXPECT_EQ(limiter.inflight(), 0u);
  EXPECT_EQ(limiter.queue_depth(), 0u);
  EXPECT_GE(clock_.Now() - t0, microseconds(3000));  // serialized trips
}

TEST_F(AsyncExecFixture, HedgeRacesASlowPrimary) {
  // Warm digest says ~1ms; the source then serves 5ms calls, so the hedge
  // timer fires long before the primary completes. Both calls take 5ms, and
  // the primary's deadline is earlier — it wins the race deterministically.
  LatencyTracker tracker;
  for (int i = 0; i < 32; ++i) tracker.Record(microseconds(1000));
  source_.set_simulated_latency(microseconds(5000));
  AsyncExecOptions options;
  options.exec.latency = &tracker;
  options.exec.hedge.enabled = true;
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  ExecStats stats;
  const Result<RowSet> rows = Run(*plan, options, &stats);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ(stats.hedges_launched, 1u);
  EXPECT_EQ(stats.hedges_won, 0u);
  EXPECT_EQ(source_.stats().queries_received, 2u);
}

// ---------------------------------------------------------------------------
// Join deadline propagation: the left side runs under the whole-join budget;
// the right side inherits only what the left did not consume, and a budget
// the left exhausted fails the join BEFORE the right side is planned or the
// right source contacted. Real clock + real sleeps with wide margins (the
// source's simulated latency in the blocking path is a real sleep).
// ---------------------------------------------------------------------------

constexpr const char* kJoinCarsSsdl = R"(
  source cars(make: string, model: string, price: int, year: int) {
    cost 10.0 1.0;
    rule f -> make = $string
            | make = $string and price < $int
            | price < $int;
    export f : {make, model, price, year};
  })";

constexpr const char* kJoinDealersSsdl = R"(
  source dealers(make: string, city: string, rating: int, since: int) {
    cost 5.0 1.0;
    rule mlist -> make = $string or make = $string
                | make = $string or mlist;
    rule f -> make = $string
            | mlist
            | ( mlist )
            | make = $string and rating >= $int
            | ( mlist ) and rating >= $int
            | rating >= $int and make = $string
            | rating >= $int and ( mlist );
    export f : {make, city, rating, since};
  })";

class JoinDeadlineTest : public ::testing::Test {
 protected:
  JoinDeadlineTest() {
    Result<SourceDescription> cars = ParseSsdl(kJoinCarsSsdl);
    Result<SourceDescription> dealers = ParseSsdl(kJoinDealersSsdl);
    EXPECT_TRUE(cars.ok()) << cars.status().ToString();
    EXPECT_TRUE(dealers.ok()) << dealers.status().ToString();

    auto cars_table = std::make_unique<Table>("cars", cars->schema());
    const auto add_car = [&](const char* make, const char* model,
                             int64_t price, int64_t year) {
      EXPECT_TRUE(cars_table
                      ->AppendValues({Value::String(make), Value::String(model),
                                      Value::Int(price), Value::Int(year)})
                      .ok());
    };
    add_car("BMW", "318i", 21000, 1996);
    add_car("BMW", "528i", 38000, 1997);
    add_car("Toyota", "Corolla", 13000, 1997);
    add_car("Toyota", "Camry", 19000, 1998);
    add_car("Saab", "900", 16000, 1995);

    auto dealers_table = std::make_unique<Table>("dealers", dealers->schema());
    const auto add_dealer = [&](const char* make, const char* city,
                                int64_t rating, int64_t since) {
      EXPECT_TRUE(dealers_table
                      ->AppendValues({Value::String(make), Value::String(city),
                                      Value::Int(rating), Value::Int(since)})
                      .ok());
    };
    add_dealer("BMW", "Palo Alto", 5, 1990);
    add_dealer("BMW", "San Jose", 3, 1995);
    add_dealer("Toyota", "Palo Alto", 4, 1985);
    add_dealer("Honda", "Fremont", 4, 1992);

    EXPECT_TRUE(
        catalog_.Register(std::move(cars).value(), std::move(cars_table)).ok());
    EXPECT_TRUE(catalog_
                    .Register(std::move(dealers).value(),
                              std::move(dealers_table))
                    .ok());
    left_ = *catalog_.Find("cars");
    right_ = *catalog_.Find("dealers");
    right_->source()->set_fault_policy(FaultPolicy{});
  }

  JoinQuery MakeQuery() {
    JoinQuery query;
    query.left_source = "cars";
    query.right_source = "dealers";
    query.keys = {{"cars.make", "dealers.make"}};
    query.condition = Parse("cars.price < 30000");
    query.select = {"cars.model", "dealers.city"};
    return query;
  }

  Catalog catalog_;
  CatalogEntry* left_ = nullptr;
  CatalogEntry* right_ = nullptr;
};

TEST_F(JoinDeadlineTest, LeftSideExhaustingTheBudgetSkipsTheRightSide) {
  // The left side alone takes ~300ms against a 150ms budget: by the time it
  // returns, the join is already doomed — the right side must be failed
  // BEFORE planning, with zero right-source calls.
  left_->source()->set_simulated_latency(std::chrono::milliseconds(300));
  JoinOptions options;
  options.deadline = std::chrono::milliseconds(150);
  JoinProcessor processor(left_, right_, options);
  const Result<RowSet> rows = processor.Execute(MakeQuery());
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(
      rows.status().ToString().find("exhausted by the left side"),
      std::string::npos);
  EXPECT_EQ(right_->source()->stats().queries_received, 0u);
}

TEST_F(JoinDeadlineTest, SlowLeftShrinksTheRightSideBudget) {
  // Identical right-side fault schedule in both runs: one transient failure
  // whose retry needs a 200ms backoff. With a fast left the 400ms budget
  // absorbs the backoff and the retry recovers the join. With a left that
  // burns ~300ms of the same budget first, the backoff no longer fits what
  // remains — the fix refuses to schedule the sleep and the join fails with
  // the deadline instead of sleeping into it.
  JoinOptions options;
  options.deadline = std::chrono::milliseconds(400);
  options.retry.max_attempts = 3;
  options.retry.backoff.base = std::chrono::milliseconds(200);
  options.retry.backoff.cap = std::chrono::milliseconds(200);

  // Fast left: the retry fits the remaining budget.
  right_->source()->fault_injector()->FailNextN(1);
  JoinProcessor recovered(left_, right_, options);
  const Result<RowSet> ok_rows = recovered.Execute(MakeQuery());
  ASSERT_TRUE(ok_rows.ok()) << ok_rows.status().ToString();
  EXPECT_EQ(ok_rows->size(), 4u);
  EXPECT_EQ(recovered.stats().right.retries, 1u);

  // Slow left: same failure, but the left consumed the budget the backoff
  // needed. The right side is attempted once (the deadline has not passed
  // yet) and then fails instead of sleeping past the deadline.
  left_->source()->set_simulated_latency(std::chrono::milliseconds(300));
  const size_t right_received_before =
      right_->source()->stats().queries_received;
  right_->source()->fault_injector()->FailNextN(1);
  JoinProcessor doomed(left_, right_, options);
  const Result<RowSet> rows = doomed.Execute(MakeQuery());
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(right_->source()->stats().queries_received,
            right_received_before + 1);
  EXPECT_EQ(doomed.stats().right.deadlines_exceeded, 1u);
}

// ---------------------------------------------------------------------------
// Seeded interleaving confidence for the limiter + admission pair is in
// event_loop_test.cc; mediator integration below.
// ---------------------------------------------------------------------------

class AsyncMediatorTest : public ::testing::Test {
 protected:
  std::unique_ptr<Mediator> MakeMediator(Mediator::Options options,
                                         bool fake_clock = true) {
    if (fake_clock) options.clock = &clock_;
    auto mediator = std::make_unique<Mediator>(options);
    Result<SourceDescription> description = ParseSsdl(kSingleSourceSsdl);
    EXPECT_TRUE(description.ok()) << description.status().ToString();
    auto table = std::make_unique<Table>("R", description->schema());
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(table
                      ->AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                      Value::Int(i)})
                      .ok());
    }
    EXPECT_TRUE(mediator
                    ->RegisterSource(std::move(description).value(),
                                     std::move(table))
                    .ok());
    return mediator;
  }

  Source* SourceOf(Mediator* mediator) {
    const Result<CatalogEntry*> entry = mediator->catalog()->Find("R");
    EXPECT_TRUE(entry.ok());
    return (*entry)->source();
  }

  FakeClock clock_;
};

TEST_F(AsyncMediatorTest, AsyncAnswersMatchPoolAnswers) {
  Mediator::Options async_options;
  async_options.async_executor = true;
  const auto async_mediator = MakeMediator(async_options);
  const auto pool_mediator = MakeMediator(Mediator::Options{});
  for (const char* sql :
       {"SELECT v FROM R WHERE v < 5",
        "SELECT k, v FROM R WHERE k = \"odd\" or v >= 8",
        "SELECT k FROM R WHERE v < 4 and k = \"even\""}) {
    const Result<Mediator::QueryResult> a = async_mediator->Query(sql);
    const Result<Mediator::QueryResult> b = pool_mediator->Query(sql);
    ASSERT_TRUE(a.ok()) << sql << ": " << a.status().ToString();
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    EXPECT_TRUE(SameRows(a->rows, b->rows)) << sql;
    EXPECT_EQ(a->exec.source_queries, b->exec.source_queries) << sql;
    EXPECT_EQ(a->exec.rows_transferred, b->exec.rows_transferred) << sql;
  }
}

TEST_F(AsyncMediatorTest, QueryAsyncDeliversTheSameAnswer) {
  Mediator::Options options;
  options.async_executor = true;
  const auto mediator = MakeMediator(options);
  const char* sql = "SELECT v FROM R WHERE v < 5 or k = \"odd\"";
  const Result<Mediator::QueryResult> sync = mediator->Query(sql);
  ASSERT_TRUE(sync.ok()) << sync.status().ToString();

  std::promise<Result<Mediator::QueryResult>> promise;
  mediator->QueryAsync(sql, [&promise](Result<Mediator::QueryResult> r) {
    promise.set_value(std::move(r));
  });
  const Result<Mediator::QueryResult> async = promise.get_future().get();
  ASSERT_TRUE(async.ok()) << async.status().ToString();
  EXPECT_TRUE(SameRows(async->rows, sync->rows));
  EXPECT_EQ(async->exec.source_queries, sync->exec.source_queries);
  EXPECT_TRUE(async->completeness.complete);
}

TEST_F(AsyncMediatorTest, AdmissionShedsHopelessQueriesBeforePlanning) {
  Mediator::Options options;
  options.async_executor = true;
  options.admission.enabled = true;
  options.query_deadline = microseconds(1000);
  const auto mediator = MakeMediator(options);
  // One warm query measures the source at ~10ms per round trip — ten times
  // the 1ms deadline, so every later query is hopeless on arrival.
  SourceOf(mediator.get())->set_simulated_latency(microseconds(10000));
  const Result<Mediator::QueryResult> warm =
      mediator->Query("SELECT v FROM R WHERE v < 5");
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();

  const Mediator::Stats before = mediator->StatsSnapshot();
  const Result<Mediator::QueryResult> shed =
      mediator->Query("SELECT k FROM R WHERE v >= 7");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status().ToString().find("admission control"),
            std::string::npos);
  const Mediator::Stats after = mediator->StatsSnapshot();
  // Shed up front: no planning happened (no new plan-cache lookup) and the
  // source was never contacted.
  EXPECT_EQ(after.plan_cache.misses, before.plan_cache.misses);
  EXPECT_EQ(after.plan_cache.hits, before.plan_cache.hits);
  EXPECT_EQ(SourceOf(mediator.get())->stats().queries_received, 1u);
  EXPECT_EQ(after.scheduler.admission_rejections, 1u);
  EXPECT_EQ(after.fault_tolerance.queries_shed,
            before.fault_tolerance.queries_shed + 1);
}

TEST_F(AsyncMediatorTest, QueryCountGateShedsOverloadBeforePlanning) {
  // The query-count gate works on the POOL path too (no async executor):
  // max_inflight_queries = 1 with no queue allowance means a second query
  // arriving while the first still executes is shed before planning.
  Mediator::Options options;
  options.max_inflight_queries = 1;
  options.admission_queue_limit = 0;
  const auto mediator = MakeMediator(options, /*fake_clock=*/false);
  // The blocking path serves simulated latency as a real sleep: the first
  // query occupies the mediator for ~300ms.
  SourceOf(mediator.get())->set_simulated_latency(microseconds(300000));

  std::thread slow([&] {
    const Result<Mediator::QueryResult> result =
        mediator->Query("SELECT v FROM R WHERE v < 5");
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  });
  // Wait until the slow query is provably past admission AND planning (its
  // call is on the simulated wire), so the snapshot below is stable.
  const auto wait_start = std::chrono::steady_clock::now();
  while (SourceOf(mediator.get())->inflight() == 0 &&
         std::chrono::steady_clock::now() - wait_start <
             std::chrono::seconds(10)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(SourceOf(mediator.get())->inflight(), 1u);

  const Mediator::Stats before = mediator->StatsSnapshot();
  EXPECT_EQ(before.scheduler.active_queries, 1u);
  const Result<Mediator::QueryResult> shed =
      mediator->Query("SELECT k FROM R WHERE v >= 7");
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.status().ToString().find("max_inflight_queries"),
            std::string::npos);
  const Mediator::Stats after = mediator->StatsSnapshot();
  // Shed before planning: no new plan-cache traffic, no source contact.
  EXPECT_EQ(after.plan_cache.misses, before.plan_cache.misses);
  EXPECT_EQ(after.scheduler.admission_rejections, 1u);
  EXPECT_EQ(after.fault_tolerance.queries_shed,
            before.fault_tolerance.queries_shed + 1);
  EXPECT_EQ(SourceOf(mediator.get())->stats().queries_received, 1u);

  slow.join();
  // With the slow query answered, the gate admits again.
  const Result<Mediator::QueryResult> ok =
      mediator->Query("SELECT k FROM R WHERE v >= 7");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(mediator->StatsSnapshot().scheduler.active_queries, 0u);
}

TEST_F(AsyncMediatorTest, SchedulerGaugesAppearOnlyWhenAsync) {
  Mediator::Options options;
  options.async_executor = true;
  const auto async_mediator = MakeMediator(options);
  ASSERT_TRUE(async_mediator->Query("SELECT v FROM R WHERE v < 5").ok());
  const Mediator::Stats stats = async_mediator->StatsSnapshot();
  EXPECT_TRUE(stats.scheduler.enabled);
  EXPECT_GE(stats.scheduler.limiter_admitted, 1u);
  EXPECT_GE(stats.scheduler.tasks_run, 1u);
  EXPECT_EQ(stats.scheduler.inflight_fetches, 0u);  // nothing in flight now
  EXPECT_NE(stats.ToString().find("scheduler.inflight"), std::string::npos);

  const auto pool_mediator = MakeMediator(Mediator::Options{});
  ASSERT_TRUE(pool_mediator->Query("SELECT v FROM R WHERE v < 5").ok());
  const Mediator::Stats pool_stats = pool_mediator->StatsSnapshot();
  EXPECT_FALSE(pool_stats.scheduler.enabled);
  EXPECT_EQ(pool_stats.ToString().find("scheduler."), std::string::npos);
}

}  // namespace
}  // namespace gencompact
