#include <gtest/gtest.h>

#include "expr/condition_parser.h"
#include "mediator/mediator.h"
#include "planner/plan_cache.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

PlanPtr DummyPlan(const std::string& cond) {
  return PlanNode::SourceQuery(Parse(cond), AttributeSet());
}

TEST(PlanCacheTest, MissThenHit) {
  PlanCache cache(4);
  EXPECT_FALSE(cache.Lookup("k1").has_value());
  cache.Insert("k1", DummyPlan("a = 1"));
  const std::optional<PlanPtr> hit = cache.Lookup("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)->condition()->ToString(), "a = 1");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  cache.Insert("a", DummyPlan("a = 1"));
  cache.Insert("b", DummyPlan("b = 1"));
  ASSERT_TRUE(cache.Lookup("a").has_value());  // refresh a
  cache.Insert("c", DummyPlan("c = 1"));       // evicts b
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, ReinsertRefreshes) {
  PlanCache cache(2);
  cache.Insert("a", DummyPlan("a = 1"));
  cache.Insert("b", DummyPlan("b = 1"));
  cache.Insert("a", DummyPlan("a = 2"));  // refresh + replace
  cache.Insert("c", DummyPlan("c = 1"));  // evicts b
  const std::optional<PlanPtr> a = cache.Lookup("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ((*a)->condition()->ToString(), "a = 2");
  EXPECT_FALSE(cache.Lookup("b").has_value());
}

TEST(PlanCacheTest, KeySeparatesDimensions) {
  const ConditionPtr cond = Parse("a = 1");
  AttributeSet attrs1;
  attrs1.Add(0);
  AttributeSet attrs2;
  attrs2.Add(1);
  const std::string base =
      PlanCache::MakeKey("src", Strategy::kGenCompact, *cond, attrs1);
  EXPECT_NE(base, PlanCache::MakeKey("src2", Strategy::kGenCompact, *cond, attrs1));
  EXPECT_NE(base, PlanCache::MakeKey("src", Strategy::kCnf, *cond, attrs1));
  EXPECT_NE(base, PlanCache::MakeKey("src", Strategy::kGenCompact, *cond, attrs2));
  EXPECT_NE(base, PlanCache::MakeKey("src", Strategy::kGenCompact,
                                     *Parse("a = 2"), attrs1));
  EXPECT_EQ(base, PlanCache::MakeKey("src", Strategy::kGenCompact,
                                     *Parse("a = 1"), attrs1));
}

TEST(PlanCacheTest, ClearEmpties) {
  PlanCache cache(4);
  cache.Insert("a", DummyPlan("a = 1"));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
}

TEST(MediatorPlanCacheTest, RepeatedQueriesHitTheCache) {
  Result<SourceDescription> description = ParseSsdl(R"(
    source cars(make: string, model: string, price: int) {
      cost 10.0 1.0;
      rule s1 -> make = $string and price < $int;
      export s1 : {make, model, price};
    })");
  ASSERT_TRUE(description.ok());
  auto table = std::make_unique<Table>("cars", description->schema());
  ASSERT_TRUE(table
                  ->AppendValues({Value::String("BMW"), Value::String("318i"),
                                  Value::Int(21000)})
                  .ok());
  Mediator mediator;
  ASSERT_TRUE(mediator
                  .RegisterSource(std::move(description).value(),
                                  std::move(table))
                  .ok());

  const std::string sql =
      "SELECT model FROM cars WHERE make = \"BMW\" and price < 30000";
  ASSERT_TRUE(mediator.Query(sql).ok());
  EXPECT_EQ(mediator.plan_cache().hits(), 0u);
  ASSERT_TRUE(mediator.Query(sql).ok());
  ASSERT_TRUE(mediator.Query(sql).ok());
  EXPECT_EQ(mediator.plan_cache().hits(), 2u);
  // A different projection misses.
  ASSERT_TRUE(mediator
                  .Query("SELECT make FROM cars WHERE make = \"BMW\" and "
                         "price < 30000")
                  .ok());
  EXPECT_EQ(mediator.plan_cache().hits(), 2u);
  EXPECT_EQ(mediator.plan_cache().size(), 2u);
}

TEST(MediatorSimplifyTest, UnsatisfiableQueryAnswersEmptyWithoutPlanning) {
  Result<SourceDescription> description = ParseSsdl(R"(
    source cars(make: string, model: string, price: int) {
      cost 10.0 1.0;
      rule s1 -> make = $string;
      export s1 : {make, model, price};
    })");
  ASSERT_TRUE(description.ok());
  auto table = std::make_unique<Table>("cars", description->schema());
  ASSERT_TRUE(table
                  ->AppendValues({Value::String("BMW"), Value::String("318i"),
                                  Value::Int(21000)})
                  .ok());
  Mediator mediator;
  ASSERT_TRUE(mediator
                  .RegisterSource(std::move(description).value(),
                                  std::move(table))
                  .ok());

  // price predicates are unsupported — but the condition is unsatisfiable,
  // so the mediator answers locally.
  const Result<Mediator::QueryResult> result = mediator.Query(
      "SELECT model FROM cars WHERE make = \"BMW\" and make = \"Audi\"");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->rows.empty());
  EXPECT_EQ(result->exec.source_queries, 0u);
  EXPECT_EQ(result->plan, nullptr);
}

}  // namespace
}  // namespace gencompact
