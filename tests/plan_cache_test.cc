#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <thread>
#include <type_traits>
#include <vector>

#include "expr/condition_parser.h"
#include "mediator/mediator.h"
#include "planner/plan_cache.h"
#include "ssdl/ssdl_parser.h"

// Binary-wide allocation counter for the zero-allocation-per-hit assertions:
// PlanCacheKey is a POD built from field loads, so neither MakeKey nor a
// cache hit may touch the heap. Counting delegates to malloc/free, which the
// sanitizers intercept as usual.
namespace {
std::atomic<size_t> g_allocations{0};
}  // namespace

void* operator new(size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, size_t) noexcept { std::free(p); }
void operator delete[](void* p, size_t) noexcept { std::free(p); }

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

PlanPtr PlanFor(const ConditionPtr& cond) {
  return PlanNode::SourceQuery(cond, AttributeSet());
}

PlanCacheKey KeyFor(const ConditionNode& cond, uint32_t source_id = 0) {
  return PlanCache::MakeKey(source_id, Strategy::kGenCompact, cond,
                            AttributeSet());
}

TEST(PlanCacheTest, MissThenHit) {
  PlanCache cache(4);
  const ConditionPtr cond = Parse("a = 1");
  const PlanCacheKey key = KeyFor(*cond);
  EXPECT_FALSE(cache.Lookup(key).has_value());
  cache.Insert(key, PlanFor(cond));
  const std::optional<PlanPtr> hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)->condition()->ToString(), "a = 1");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  const ConditionPtr a = Parse("a = 1");
  const ConditionPtr b = Parse("b = 1");
  const ConditionPtr c = Parse("c = 1");
  cache.Insert(KeyFor(*a), PlanFor(a));
  cache.Insert(KeyFor(*b), PlanFor(b));
  ASSERT_TRUE(cache.Lookup(KeyFor(*a)).has_value());  // refresh a
  cache.Insert(KeyFor(*c), PlanFor(c));               // evicts b
  EXPECT_TRUE(cache.Lookup(KeyFor(*a)).has_value());
  EXPECT_FALSE(cache.Lookup(KeyFor(*b)).has_value());
  EXPECT_TRUE(cache.Lookup(KeyFor(*c)).has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, ReinsertRefreshes) {
  PlanCache cache(2);
  const ConditionPtr a = Parse("a = 1");
  const ConditionPtr a2 = Parse("a = 2");
  const ConditionPtr b = Parse("b = 1");
  const ConditionPtr c = Parse("c = 1");
  cache.Insert(KeyFor(*a), PlanFor(a));
  cache.Insert(KeyFor(*b), PlanFor(b));
  cache.Insert(KeyFor(*a), PlanFor(a2));  // refresh + replace
  cache.Insert(KeyFor(*c), PlanFor(c));   // evicts b
  const std::optional<PlanPtr> hit = cache.Lookup(KeyFor(*a));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)->condition()->ToString(), "a = 2");
  EXPECT_FALSE(cache.Lookup(KeyFor(*b)).has_value());
}

TEST(PlanCacheTest, KeySeparatesDimensions) {
  const ConditionPtr cond = Parse("a = 1");
  const ConditionPtr cond2 = Parse("a = 2");
  AttributeSet attrs1;
  attrs1.Add(0);
  AttributeSet attrs2;
  attrs2.Add(1);
  const PlanCacheKey base =
      PlanCache::MakeKey(0, Strategy::kGenCompact, *cond, attrs1);
  EXPECT_FALSE(base ==
               PlanCache::MakeKey(1, Strategy::kGenCompact, *cond, attrs1));
  EXPECT_FALSE(base == PlanCache::MakeKey(0, Strategy::kCnf, *cond, attrs1));
  EXPECT_FALSE(base ==
               PlanCache::MakeKey(0, Strategy::kGenCompact, *cond, attrs2));
  EXPECT_FALSE(base ==
               PlanCache::MakeKey(0, Strategy::kGenCompact, *cond2, attrs1));
  // Hash consing: a re-parse of the same text is the same condition, so it
  // builds an identical key.
  EXPECT_TRUE(base == PlanCache::MakeKey(0, Strategy::kGenCompact,
                                         *Parse("a = 1"), attrs1));
}

TEST(PlanCacheTest, KeyIsPodAndHitsAllocateNothing) {
  static_assert(std::is_trivially_copyable_v<PlanCacheKey>,
                "cache keys must be bitwise-copyable PODs");
  PlanCache cache(4);
  const ConditionPtr cond = Parse("a = 1 and b = 2");
  AttributeSet attrs;
  attrs.Add(0);
  cache.Insert(PlanCache::MakeKey(0, Strategy::kGenCompact, *cond, attrs),
               PlanFor(cond));

  // Key construction: field loads only.
  const size_t before_key = g_allocations.load();
  const PlanCacheKey key =
      PlanCache::MakeKey(0, Strategy::kGenCompact, *cond, attrs);
  const size_t after_key = g_allocations.load();
  EXPECT_EQ(before_key, after_key) << "MakeKey allocated";

  // Warm hit: hash, find, list splice — no allocation anywhere.
  ASSERT_TRUE(cache.Lookup(key).has_value());
  const size_t before_hit = g_allocations.load();
  const std::optional<PlanPtr> hit = cache.Lookup(key);
  const size_t after_hit = g_allocations.load();
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(before_hit, after_hit) << "cache hit allocated";
}

TEST(PlanCacheTest, ClearEmpties) {
  PlanCache cache(4);
  const ConditionPtr a = Parse("a = 1");
  cache.Insert(KeyFor(*a), PlanFor(a));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(KeyFor(*a)).has_value());
}

TEST(PlanCacheTest, RefreshOnInsertCountsAsRefreshNotHitOrMiss) {
  PlanCache cache(4);
  const ConditionPtr a = Parse("a = 1");
  const ConditionPtr a2 = Parse("a = 2");
  cache.Insert(KeyFor(*a), PlanFor(a));
  cache.Insert(KeyFor(*a), PlanFor(a2));  // refresh of an existing key
  EXPECT_EQ(cache.refreshes(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  ASSERT_TRUE(cache.Lookup(KeyFor(*a)).has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 1.0);
}

TEST(PlanCacheTest, HitRateReflectsLookupsOnly) {
  PlanCache cache(8);
  const ConditionPtr k = Parse("k = 1");
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);  // no lookups yet
  EXPECT_FALSE(cache.Lookup(KeyFor(*k)).has_value());
  cache.Insert(KeyFor(*k), PlanFor(k));
  ASSERT_TRUE(cache.Lookup(KeyFor(*k)).has_value());
  ASSERT_TRUE(cache.Lookup(KeyFor(*k)).has_value());
  ASSERT_TRUE(cache.Lookup(KeyFor(*k)).has_value());
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.75);  // 3 hits / 4 lookups
}

TEST(PlanCacheTest, ShardedCacheKeepsLruSemanticsPerShard) {
  PlanCache cache(64, /*num_shards=*/8);
  EXPECT_EQ(cache.num_shards(), 8u);
  std::vector<ConditionPtr> conds;
  for (int i = 0; i < 64; ++i) {
    conds.push_back(Parse("a = " + std::to_string(i)));
    cache.Insert(KeyFor(*conds.back()), PlanFor(conds.back()));
  }
  size_t found = 0;
  for (const ConditionPtr& cond : conds) {
    if (cache.Lookup(KeyFor(*cond)).has_value()) ++found;
  }
  // Hashing is uneven, so a few shards may have evicted, but the cache must
  // retain the bulk of a capacity-sized working set.
  EXPECT_GE(found, 40u);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(PlanCacheConcurrencyTest, EightThreadsHammerShardedCache) {
  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 2000;
  constexpr size_t kKeySpace = 64;
  PlanCache cache(128, /*num_shards=*/8);

  // Pre-parse the plans and keys outside the threads; the cache is the
  // object under test here, and parsing is not thread-relevant.
  std::vector<PlanPtr> plans;
  std::vector<PlanCacheKey> keys;
  plans.reserve(kKeySpace);
  keys.reserve(kKeySpace);
  for (size_t i = 0; i < kKeySpace; ++i) {
    const ConditionPtr cond = Parse("a = " + std::to_string(i));
    plans.push_back(PlanFor(cond));
    keys.push_back(KeyFor(*cond));
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cache, &plans, &keys]() {
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        const size_t k = (op * 31 + t * 17) % kKeySpace;
        if (op % 3 == 0) {
          cache.Insert(keys[k], plans[k]);
        } else if (const std::optional<PlanPtr> plan = cache.Lookup(keys[k])) {
          // Shared plans must stay alive and well-formed while other
          // threads insert/evict.
          EXPECT_EQ((*plan)->kind(), PlanNode::Kind::kSourceQuery);
        }
      }
      cache.hit_rate();  // concurrent stat reads must not race either
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every lookup was either a hit or a miss — no op lost to a race.
  const size_t inserts_per_thread = (kOpsPerThread + 2) / 3;  // ops % 3 == 0
  const size_t lookups = kThreads * (kOpsPerThread - inserts_per_thread);
  EXPECT_EQ(cache.hits() + cache.misses(), lookups);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(MediatorPlanCacheTest, RepeatedQueriesHitTheCache) {
  Result<SourceDescription> description = ParseSsdl(R"(
    source cars(make: string, model: string, price: int) {
      cost 10.0 1.0;
      rule s1 -> make = $string and price < $int;
      export s1 : {make, model, price};
    })");
  ASSERT_TRUE(description.ok());
  auto table = std::make_unique<Table>("cars", description->schema());
  ASSERT_TRUE(table
                  ->AppendValues({Value::String("BMW"), Value::String("318i"),
                                  Value::Int(21000)})
                  .ok());
  Mediator mediator;
  ASSERT_TRUE(mediator
                  .RegisterSource(std::move(description).value(),
                                  std::move(table))
                  .ok());

  const std::string sql =
      "SELECT model FROM cars WHERE make = \"BMW\" and price < 30000";
  ASSERT_TRUE(mediator.Query(sql).ok());
  EXPECT_EQ(mediator.plan_cache().hits(), 0u);
  ASSERT_TRUE(mediator.Query(sql).ok());
  ASSERT_TRUE(mediator.Query(sql).ok());
  EXPECT_EQ(mediator.plan_cache().hits(), 2u);
  // A different projection misses.
  ASSERT_TRUE(mediator
                  .Query("SELECT make FROM cars WHERE make = \"BMW\" and "
                         "price < 30000")
                  .ok());
  EXPECT_EQ(mediator.plan_cache().hits(), 2u);
  EXPECT_EQ(mediator.plan_cache().size(), 2u);
}

TEST(MediatorSimplifyTest, UnsatisfiableQueryAnswersEmptyWithoutPlanning) {
  Result<SourceDescription> description = ParseSsdl(R"(
    source cars(make: string, model: string, price: int) {
      cost 10.0 1.0;
      rule s1 -> make = $string;
      export s1 : {make, model, price};
    })");
  ASSERT_TRUE(description.ok());
  auto table = std::make_unique<Table>("cars", description->schema());
  ASSERT_TRUE(table
                  ->AppendValues({Value::String("BMW"), Value::String("318i"),
                                  Value::Int(21000)})
                  .ok());
  Mediator mediator;
  ASSERT_TRUE(mediator
                  .RegisterSource(std::move(description).value(),
                                  std::move(table))
                  .ok());

  // price predicates are unsupported — but the condition is unsatisfiable,
  // so the mediator answers locally.
  const Result<Mediator::QueryResult> result = mediator.Query(
      "SELECT model FROM cars WHERE make = \"BMW\" and make = \"Audi\"");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->rows.empty());
  EXPECT_EQ(result->exec.source_queries, 0u);
  EXPECT_EQ(result->plan, nullptr);
}

}  // namespace
}  // namespace gencompact
