#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "expr/condition_parser.h"
#include "mediator/mediator.h"
#include "planner/plan_cache.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

PlanPtr DummyPlan(const std::string& cond) {
  return PlanNode::SourceQuery(Parse(cond), AttributeSet());
}

TEST(PlanCacheTest, MissThenHit) {
  PlanCache cache(4);
  EXPECT_FALSE(cache.Lookup("k1").has_value());
  cache.Insert("k1", DummyPlan("a = 1"));
  const std::optional<PlanPtr> hit = cache.Lookup("k1");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)->condition()->ToString(), "a = 1");
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCacheTest, EvictsLeastRecentlyUsed) {
  PlanCache cache(2);
  cache.Insert("a", DummyPlan("a = 1"));
  cache.Insert("b", DummyPlan("b = 1"));
  ASSERT_TRUE(cache.Lookup("a").has_value());  // refresh a
  cache.Insert("c", DummyPlan("c = 1"));       // evicts b
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(PlanCacheTest, ReinsertRefreshes) {
  PlanCache cache(2);
  cache.Insert("a", DummyPlan("a = 1"));
  cache.Insert("b", DummyPlan("b = 1"));
  cache.Insert("a", DummyPlan("a = 2"));  // refresh + replace
  cache.Insert("c", DummyPlan("c = 1"));  // evicts b
  const std::optional<PlanPtr> a = cache.Lookup("a");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ((*a)->condition()->ToString(), "a = 2");
  EXPECT_FALSE(cache.Lookup("b").has_value());
}

TEST(PlanCacheTest, KeySeparatesDimensions) {
  const ConditionPtr cond = Parse("a = 1");
  AttributeSet attrs1;
  attrs1.Add(0);
  AttributeSet attrs2;
  attrs2.Add(1);
  const std::string base =
      PlanCache::MakeKey("src", Strategy::kGenCompact, *cond, attrs1);
  EXPECT_NE(base, PlanCache::MakeKey("src2", Strategy::kGenCompact, *cond, attrs1));
  EXPECT_NE(base, PlanCache::MakeKey("src", Strategy::kCnf, *cond, attrs1));
  EXPECT_NE(base, PlanCache::MakeKey("src", Strategy::kGenCompact, *cond, attrs2));
  EXPECT_NE(base, PlanCache::MakeKey("src", Strategy::kGenCompact,
                                     *Parse("a = 2"), attrs1));
  EXPECT_EQ(base, PlanCache::MakeKey("src", Strategy::kGenCompact,
                                     *Parse("a = 1"), attrs1));
}

TEST(PlanCacheTest, ClearEmpties) {
  PlanCache cache(4);
  cache.Insert("a", DummyPlan("a = 1"));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
}

TEST(PlanCacheTest, RefreshOnInsertCountsAsRefreshNotHitOrMiss) {
  PlanCache cache(4);
  cache.Insert("a", DummyPlan("a = 1"));
  cache.Insert("a", DummyPlan("a = 2"));  // refresh of an existing key
  EXPECT_EQ(cache.refreshes(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  ASSERT_TRUE(cache.Lookup("a").has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 1.0);
}

TEST(PlanCacheTest, HitRateReflectsLookupsOnly) {
  PlanCache cache(8);
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.0);  // no lookups yet
  EXPECT_FALSE(cache.Lookup("k").has_value());
  cache.Insert("k", DummyPlan("a = 1"));
  ASSERT_TRUE(cache.Lookup("k").has_value());
  ASSERT_TRUE(cache.Lookup("k").has_value());
  ASSERT_TRUE(cache.Lookup("k").has_value());
  EXPECT_DOUBLE_EQ(cache.hit_rate(), 0.75);  // 3 hits / 4 lookups
}

TEST(PlanCacheTest, ShardedCacheKeepsLruSemanticsPerShard) {
  PlanCache cache(64, /*num_shards=*/8);
  EXPECT_EQ(cache.num_shards(), 8u);
  for (int i = 0; i < 64; ++i) {
    cache.Insert("key" + std::to_string(i), DummyPlan("a = " + std::to_string(i)));
  }
  size_t found = 0;
  for (int i = 0; i < 64; ++i) {
    if (cache.Lookup("key" + std::to_string(i)).has_value()) ++found;
  }
  // Hashing is uneven, so a few shards may have evicted, but the cache must
  // retain the bulk of a capacity-sized working set.
  EXPECT_GE(found, 40u);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(PlanCacheConcurrencyTest, EightThreadsHammerShardedCache) {
  constexpr size_t kThreads = 8;
  constexpr size_t kOpsPerThread = 2000;
  constexpr size_t kKeySpace = 64;
  PlanCache cache(128, /*num_shards=*/8);

  // Pre-parse the plans outside the threads; the cache is the object under
  // test here, and parsing is not thread-relevant.
  std::vector<PlanPtr> plans;
  plans.reserve(kKeySpace);
  for (size_t i = 0; i < kKeySpace; ++i) {
    plans.push_back(DummyPlan("a = " + std::to_string(i)));
  }

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &cache, &plans]() {
      for (size_t op = 0; op < kOpsPerThread; ++op) {
        const size_t k = (op * 31 + t * 17) % kKeySpace;
        const std::string key = "key" + std::to_string(k);
        if (op % 3 == 0) {
          cache.Insert(key, plans[k]);
        } else if (const std::optional<PlanPtr> plan = cache.Lookup(key)) {
          // Shared plans must stay alive and well-formed while other
          // threads insert/evict.
          EXPECT_EQ((*plan)->kind(), PlanNode::Kind::kSourceQuery);
        }
      }
      cache.hit_rate();  // concurrent stat reads must not race either
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every lookup was either a hit or a miss — no op lost to a race.
  const size_t inserts_per_thread = (kOpsPerThread + 2) / 3;  // ops % 3 == 0
  const size_t lookups = kThreads * (kOpsPerThread - inserts_per_thread);
  EXPECT_EQ(cache.hits() + cache.misses(), lookups);
  EXPECT_LE(cache.size(), cache.capacity());
}

TEST(MediatorPlanCacheTest, RepeatedQueriesHitTheCache) {
  Result<SourceDescription> description = ParseSsdl(R"(
    source cars(make: string, model: string, price: int) {
      cost 10.0 1.0;
      rule s1 -> make = $string and price < $int;
      export s1 : {make, model, price};
    })");
  ASSERT_TRUE(description.ok());
  auto table = std::make_unique<Table>("cars", description->schema());
  ASSERT_TRUE(table
                  ->AppendValues({Value::String("BMW"), Value::String("318i"),
                                  Value::Int(21000)})
                  .ok());
  Mediator mediator;
  ASSERT_TRUE(mediator
                  .RegisterSource(std::move(description).value(),
                                  std::move(table))
                  .ok());

  const std::string sql =
      "SELECT model FROM cars WHERE make = \"BMW\" and price < 30000";
  ASSERT_TRUE(mediator.Query(sql).ok());
  EXPECT_EQ(mediator.plan_cache().hits(), 0u);
  ASSERT_TRUE(mediator.Query(sql).ok());
  ASSERT_TRUE(mediator.Query(sql).ok());
  EXPECT_EQ(mediator.plan_cache().hits(), 2u);
  // A different projection misses.
  ASSERT_TRUE(mediator
                  .Query("SELECT make FROM cars WHERE make = \"BMW\" and "
                         "price < 30000")
                  .ok());
  EXPECT_EQ(mediator.plan_cache().hits(), 2u);
  EXPECT_EQ(mediator.plan_cache().size(), 2u);
}

TEST(MediatorSimplifyTest, UnsatisfiableQueryAnswersEmptyWithoutPlanning) {
  Result<SourceDescription> description = ParseSsdl(R"(
    source cars(make: string, model: string, price: int) {
      cost 10.0 1.0;
      rule s1 -> make = $string;
      export s1 : {make, model, price};
    })");
  ASSERT_TRUE(description.ok());
  auto table = std::make_unique<Table>("cars", description->schema());
  ASSERT_TRUE(table
                  ->AppendValues({Value::String("BMW"), Value::String("318i"),
                                  Value::Int(21000)})
                  .ok());
  Mediator mediator;
  ASSERT_TRUE(mediator
                  .RegisterSource(std::move(description).value(),
                                  std::move(table))
                  .ok());

  // price predicates are unsupported — but the condition is unsatisfiable,
  // so the mediator answers locally.
  const Result<Mediator::QueryResult> result = mediator.Query(
      "SELECT model FROM cars WHERE make = \"BMW\" and make = \"Audi\"");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->rows.empty());
  EXPECT_EQ(result->exec.source_queries, 0u);
  EXPECT_EQ(result->plan, nullptr);
}

}  // namespace
}  // namespace gencompact
