// Stress & fuzz coverage: malformed inputs never crash and always produce
// clean Status errors; larger randomized sweeps exercise the full pipeline.

#include <gtest/gtest.h>

#include <set>

#include "exec/executor.h"
#include "expr/condition_eval.h"
#include "expr/condition_parser.h"
#include "mediator/join.h"
#include "mediator/sql_parser.h"
#include "mediator/wrapper.h"
#include "plan/plan_validator.h"
#include "planner/epg.h"
#include "planner/gen_compact.h"
#include "ssdl/ssdl_parser.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact {
namespace {

// ---------------------------------------------------------------------------
// Parser fuzzing: random byte soup and near-miss inputs.

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, ConditionParserNeverCrashes) {
  Rng rng(GetParam());
  const std::string alphabet =
      "abc ()=<>!\"0123456789_.,{}&|truefalseandorcontains$";
  for (int trial = 0; trial < 400; ++trial) {
    std::string input;
    const size_t len = rng.NextIndex(40);
    for (size_t i = 0; i < len; ++i) {
      input += alphabet[rng.NextIndex(alphabet.size())];
    }
    const Result<ConditionPtr> cond = ParseCondition(input);
    if (cond.ok()) {
      // Whatever parsed must round-trip through its own ToString.
      const Result<ConditionPtr> again = ParseCondition((*cond)->ToString());
      ASSERT_TRUE(again.ok()) << input << " -> " << (*cond)->ToString();
      EXPECT_TRUE((*cond)->StructurallyEquals(**again));
    }
  }
}

TEST_P(ParserFuzzTest, SsdlParserNeverCrashes) {
  Rng rng(GetParam() + 1);
  const std::string alphabet =
      "abcxyz ()=<>{}:;|->$\"\n0123456789_sourcerulexport,";
  for (int trial = 0; trial < 300; ++trial) {
    std::string input = "source R(a: string) {";
    const size_t len = rng.NextIndex(60);
    for (size_t i = 0; i < len; ++i) {
      input += alphabet[rng.NextIndex(alphabet.size())];
    }
    input += "}";
    const Result<SourceDescription> description = ParseSsdl(input);
    // Either a clean parse or a clean error; never a crash.
    if (description.ok()) {
      EXPECT_FALSE(description->condition_nonterminals().empty());
    }
  }
}

TEST_P(ParserFuzzTest, SqlParserNeverCrashes) {
  Rng rng(GetParam() + 2);
  const std::string alphabet = "abc .,*=<>\"selectfromwherejoinon0123456789";
  for (int trial = 0; trial < 400; ++trial) {
    std::string input;
    const size_t len = rng.NextIndex(60);
    for (size_t i = 0; i < len; ++i) {
      input += alphabet[rng.NextIndex(alphabet.size())];
    }
    (void)ParseSql(input);
    (void)ParseJoinSql(input);
    (void)IsJoinQuery(input);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest, ::testing::Values(1, 2, 3));

// ---------------------------------------------------------------------------
// Whole-pipeline sweep: wrapper over random workloads, exactness enforced.

TEST(StressTest, WrapperExactOverManyWorkloads) {
  size_t answered = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed * 31);
    const Schema schema({{"s1", ValueType::kString},
                         {"s2", ValueType::kString},
                         {"n1", ValueType::kInt},
                         {"n2", ValueType::kInt}});
    const std::unique_ptr<Table> table =
        MakeRandomTable("src", schema, 400, 10, 40, &rng);
    RandomCapabilityOptions cap_options;
    cap_options.download_probability = 0.3;
    const SourceDescription description =
        RandomCapability("src", schema, cap_options, &rng);
    Wrapper wrapper(description, table.get());
    const std::vector<AttributeDomain> domains = ExtractDomains(*table, 5, &rng);
    const RowLayout full(schema.AllAttributes(), 4);

    for (int q = 0; q < 15; ++q) {
      RandomConditionOptions cond_options;
      cond_options.num_atoms = 1 + rng.NextIndex(5);
      const ConditionPtr cond = RandomCondition(domains, cond_options, &rng);
      AttributeSet attrs;
      attrs.Add(static_cast<int>(rng.NextIndex(4)));
      attrs.Add(static_cast<int>(rng.NextIndex(4)));
      const Result<RowSet> rows = wrapper.Query(cond, attrs);
      if (!rows.ok()) {
        EXPECT_EQ(rows.status().code(), StatusCode::kNoFeasiblePlan);
        continue;
      }
      ++answered;
      // Exactness against direct evaluation.
      RowSet truth(RowLayout(attrs, 4));
      for (const Row& row : table->rows()) {
        const Result<bool> match = EvalCondition(*cond, row, full, schema);
        ASSERT_TRUE(match.ok());
        if (*match) truth.Insert(full.Project(row, truth.layout()));
      }
      ASSERT_EQ(rows->size(), truth.size()) << cond->ToString();
      for (const Row& row : truth.rows()) {
        ASSERT_TRUE(rows->Contains(row)) << cond->ToString();
      }
    }
  }
  EXPECT_GT(answered, 10u);
}

// ---------------------------------------------------------------------------
// Join sweep: random two-source joins vs a nested-loop ground truth.

TEST(StressTest, JoinMatchesNestedLoopGroundTruth) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed * 101);
    const Schema left_schema({{"k", ValueType::kString},
                              {"x", ValueType::kInt}});
    const Schema right_schema({{"k", ValueType::kString},
                               {"y", ValueType::kInt}});
    Catalog catalog;
    {
      RandomCapabilityOptions cap;
      cap.download_probability = 1.0;  // both methods always feasible
      ASSERT_TRUE(catalog
                      .Register(RandomCapability("L", left_schema, cap, &rng),
                                MakeRandomTable("L", left_schema, 120, 6, 20,
                                                &rng))
                      .ok());
      ASSERT_TRUE(catalog
                      .Register(RandomCapability("Rt", right_schema, cap, &rng),
                                MakeRandomTable("Rt", right_schema, 90, 6, 20,
                                                &rng))
                      .ok());
    }
    CatalogEntry* left = *catalog.Find("L");
    CatalogEntry* right = *catalog.Find("Rt");

    JoinQuery query;
    query.left_source = "L";
    query.right_source = "Rt";
    query.keys = {{"L.k", "Rt.k"}};
    const int64_t bound = rng.NextInt(5, 15);
    const Result<ConditionPtr> cond =
        ParseCondition("L.x < " + std::to_string(bound));
    ASSERT_TRUE(cond.ok());
    query.condition = *cond;
    query.select = {"L.k", "L.x", "Rt.y"};

    // Ground truth by nested loops.
    std::set<std::string> truth;
    for (const Row& lrow : left->table().rows()) {
      if (!(lrow.value(1) < Value::Int(bound))) continue;
      for (const Row& rrow : right->table().rows()) {
        if (!(lrow.value(0) == rrow.value(0))) continue;
        truth.insert(lrow.value(0).ToString() + "|" + lrow.value(1).ToString() +
                     "|" + rrow.value(1).ToString());
      }
    }

    for (const JoinMethod method :
         {JoinMethod::kIndependent, JoinMethod::kBind}) {
      JoinOptions options;
      options.force_method = method;
      options.bind_batch_size = 1 + rng.NextIndex(5);
      JoinProcessor processor(left, right, options);
      const Result<RowSet> rows = processor.Execute(query);
      if (!rows.ok()) {
        // The random right capability may not accept the bound value-list
        // shape; independent evaluation must always work (downloads are
        // enabled).
        ASSERT_EQ(method, JoinMethod::kBind) << rows.status().ToString();
        ASSERT_EQ(rows.status().code(), StatusCode::kNoFeasiblePlan);
        continue;
      }
      ASSERT_EQ(rows->size(), truth.size()) << JoinMethodName(method);
    }
  }
}

// ---------------------------------------------------------------------------
// EPG Choice spaces stay countable and consistent.

TEST(StressTest, EpgChoiceSpaceCounting) {
  const Result<SourceDescription> description = ParseSsdl(R"(
    source R(a: int, b: int, c: int) {
      cost 5.0 1.0;
      rule atom -> a = $int | b = $int | c = $int;
      rule f -> atom | atom and atom | atom and atom and atom;
      rule dl -> true;
      export f : {a, b, c};
      export dl : {a, b, c};
    })");
  ASSERT_TRUE(description.ok());
  Table table("R", description->schema());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(table
                    .AppendValues({Value::Int(i % 2), Value::Int(i % 3),
                                   Value::Int(i % 4)})
                    .ok());
  }
  SourceHandle handle(*description, &table);
  Epg epg(&handle);
  AttributeSet attrs;
  attrs.Add(0);
  const Result<ConditionPtr> cond = ParseCondition("a = 1 and b = 2 and c = 3");
  ASSERT_TRUE(cond.ok());
  const PlanPtr space = epg.Generate(*cond, attrs);
  ASSERT_NE(space, nullptr);
  const size_t alternatives = space->CountAlternatives();
  // Pure plan + download + many decompositions: a genuine space, not one
  // plan.
  EXPECT_GT(alternatives, 10u);
  EXPECT_LT(alternatives, 1000000u);

  // Resolving yields one of them, feasible and at least as cheap as any
  // other sampled alternative.
  const PlanPtr resolved = handle.cost_model().ResolveChoices(space);
  EXPECT_TRUE(resolved->IsResolved());
  EXPECT_EQ(resolved->CountAlternatives(), 1u);
  EXPECT_TRUE(ValidatePlan(*resolved, handle.checker()).ok());
}

}  // namespace
}  // namespace gencompact
