// Seeded differential harness: random SSDL capability mixes and random
// target queries, asserting two equivalences the rest of the PR leans on:
//
//   1. Cost parity — GenCompact (strict paper mode) and GenModular agree on
//      the optimal plan cost whenever neither hit an enumeration budget.
//      The two planners explore the same plan space by entirely different
//      routes (IPG vs per-CT EPG), so agreement is strong evidence neither
//      is silently dropping alternatives.
//
//   2. Answer equivalence — ANY resolution of the EPG Choice plan space
//      (the cost-optimal one and uniformly random ones alike) produces
//      exactly the same answer rows on the full attribute set. Choice
//      alternatives are semantically interchangeable; only their cost
//      differs. This is what makes breaker-aware cost penalties and
//      avoid-set re-planning safe: steering the pick never changes the
//      answer.
//
// The base seed comes from GENCOMPACT_TEST_SEED (default 439) so CI can run
// a seed matrix; each parameterized case derives independent sub-seeds.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>

#include "exec/executor.h"
#include "expr/canonical.h"
#include "expr/condition_eval.h"
#include "plan/plan_validator.h"
#include "planner/epg.h"
#include "planner/gen_compact.h"
#include "planner/gen_modular.h"
#include "ssdl/check_memo.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact {
namespace {

uint64_t BaseSeed() {
  const char* env = std::getenv("GENCOMPACT_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 439;
}

// With GENCOMPACT_CHECK_VERIFY=1 (a dedicated CI leg), every environment
// below routes its Checkers through one process-wide cross-query Check memo
// at 100% verify-on-hit: each fingerprint-keyed hit is re-checked against a
// fresh Earley run, and any disagreement fails the owning test. Each env
// takes a distinct source_id so the shared memo never aliases entries of
// different random descriptions.
bool CheckVerifyEnabled() {
  const char* env = std::getenv("GENCOMPACT_CHECK_VERIFY");
  return env != nullptr && *env == '1';
}

CheckMemo* SharedVerifyMemo() {
  static CheckMemo* memo =
      new CheckMemo(/*capacity=*/8192, /*shards=*/8, /*verify_rate=*/1.0);
  return memo;
}

uint32_t NextVerifySourceId() {
  static std::atomic<uint32_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

Schema DifferentialSchema() {
  return Schema({{"s1", ValueType::kString},
                 {"s2", ValueType::kString},
                 {"n1", ValueType::kInt},
                 {"n2", ValueType::kInt}});
}

RowSet DirectAnswer(const Table& table, const ConditionNode& cond,
                    const AttributeSet& attrs) {
  const Schema& schema = table.schema();
  const RowLayout full(schema.AllAttributes(), schema.num_attributes());
  const RowLayout projected(attrs, schema.num_attributes());
  RowSet out(projected);
  for (const Row& row : table.rows()) {
    const Result<bool> matches = EvalCondition(cond, row, full, schema);
    EXPECT_TRUE(matches.ok());
    if (matches.ok() && *matches) out.Insert(full.Project(row, projected));
  }
  return out;
}

bool SameRows(const RowSet& a, const RowSet& b) {
  if (a.size() != b.size()) return false;
  for (const Row& row : a.rows()) {
    if (!b.Contains(row)) return false;
  }
  return true;
}

// One random source: table, capability description, handle, wrapper.
struct DifferentialEnv {
  std::unique_ptr<Table> table;
  SourceDescription description;
  std::unique_ptr<SourceHandle> handle;
  std::unique_ptr<Source> source;
  std::vector<AttributeDomain> domains;

  explicit DifferentialEnv(uint64_t seed) : description("src", DifferentialSchema()) {
    Rng rng(seed);
    const Schema schema = DifferentialSchema();
    table = MakeRandomTable("src", schema, /*rows=*/200, /*string_pool=*/10,
                            /*value_range=*/40, &rng);
    description = RandomCapability("src", schema, RandomCapabilityOptions{}, &rng);
    handle = std::make_unique<SourceHandle>(description, table.get());
    source = std::make_unique<Source>(table.get(), &handle->description());
    domains = ExtractDomains(*table, /*max_samples=*/6, &rng);
    if (CheckVerifyEnabled()) {
      const uint32_t verify_id = NextVerifySourceId();
      handle->checker()->EnableSharedMemo(SharedVerifyMemo(), verify_id, 0);
      source->checker()->EnableSharedMemo(SharedVerifyMemo(), verify_id, 0);
    }
  }

  ~DifferentialEnv() {
    if (CheckVerifyEnabled()) {
      EXPECT_EQ(SharedVerifyMemo()->stats().verify_mismatches, 0u);
    }
  }
};

class DifferentialTest : public ::testing::TestWithParam<int> {
 protected:
  uint64_t CaseSeed() const {
    return BaseSeed() * 1000003ull + static_cast<uint64_t>(GetParam()) * 7919ull;
  }
};

// Equivalence 1: 5 random (capability, query) pairs per parameter — the two
// generation schemes land on the same optimal cost unless a budget bit says
// one of them stopped enumerating.
TEST_P(DifferentialTest, GenCompactAndGenModularAgreeOnOptimalCost) {
  Rng rng(CaseSeed() + 1);
  for (int trial = 0; trial < 5; ++trial) {
    DifferentialEnv env(CaseSeed() * 31 + static_cast<uint64_t>(trial));
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 2 + rng.NextIndex(3);
    const ConditionPtr cond = RandomCondition(env.domains, cond_options, &rng);
    AttributeSet attrs;
    attrs.Add(static_cast<int>(rng.NextIndex(4)));
    attrs.Add(static_cast<int>(rng.NextIndex(4)));

    GenCompactOptions gc_options;
    gc_options.ipg.safe_combination = false;  // paper mode: same space as EPG
    gc_options.max_cts = 512;
    GenCompactPlanner gencompact(env.handle.get(), gc_options);
    const Result<PlanPtr> gc = gencompact.Plan(cond, attrs);

    GenModularOptions gm_options;
    gm_options.rewrite.max_cts = 2048;
    GenModularPlanner genmodular(env.handle.get(), gm_options);
    const Result<PlanPtr> gm = genmodular.Plan(cond, attrs);

    ASSERT_EQ(gc.ok(), gm.ok())
        << "feasibility diverged on " << cond->ToString();
    if (!gc.ok()) continue;

    const CostModel& model = env.handle->cost_model();
    const double gc_cost = model.PlanCost(**gc);
    const double gm_cost = model.PlanCost(**gm);
    if (!genmodular.stats().rewrite_budget_exhausted &&
        !genmodular.stats().epg_incomplete &&
        !gencompact.stats().rewrite_budget_exhausted &&
        !gencompact.stats().ipg.incomplete) {
      EXPECT_NEAR(gc_cost, gm_cost, 1e-6)
          << "plan spaces diverged on " << cond->ToString()
          << "\nGC: " << (*gc)->ToShortString()
          << "\nGM: " << (*gm)->ToShortString();
    }
  }
}

// Equivalence 2: on the full attribute set (strict-mode plans are exact
// there), the cost-optimal Choice resolution and three uniformly random
// resolutions of the same EPG space return identical rows — and those rows
// are the direct answer.
TEST_P(DifferentialTest, RandomChoiceResolutionsMatchOptimalAnswer) {
  Rng rng(CaseSeed() + 2);
  for (int trial = 0; trial < 5; ++trial) {
    DifferentialEnv env(CaseSeed() * 37 + static_cast<uint64_t>(trial) + 1);
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 2 + rng.NextIndex(3);
    const ConditionPtr cond = RandomCondition(env.domains, cond_options, &rng);
    const AttributeSet attrs = env.handle->schema().AllAttributes();

    const ConditionPtr canonical = Canonicalize(cond);
    Epg epg(env.handle.get());
    const PlanPtr space = epg.Generate(canonical, attrs);
    if (space == nullptr) continue;  // this capability mix can't answer it

    const CostModel& model = env.handle->cost_model();
    const PlanPtr optimal = model.ResolveChoices(space);
    ASSERT_NE(optimal, nullptr);
    ASSERT_TRUE(
        ValidatePlanFor(*optimal, attrs, env.handle->checker()).ok());

    Executor executor(env.source.get());
    const Result<RowSet> optimal_rows = executor.Execute(*optimal);
    ASSERT_TRUE(optimal_rows.ok()) << optimal_rows.status().ToString();

    const RowSet expected = DirectAnswer(*env.table, *cond, attrs);
    EXPECT_TRUE(SameRows(*optimal_rows, expected))
        << "optimal resolution wrong on " << cond->ToString();

    for (int pick = 0; pick < 3; ++pick) {
      const PlanPtr random_plan = model.ResolveChoicesRandom(space, &rng);
      ASSERT_NE(random_plan, nullptr);
      ASSERT_TRUE(
          ValidatePlanFor(*random_plan, attrs, env.handle->checker()).ok())
          << random_plan->ToShortString();
      Executor random_exec(env.source.get());
      const Result<RowSet> random_rows = random_exec.Execute(*random_plan);
      ASSERT_TRUE(random_rows.ok()) << random_rows.status().ToString();
      EXPECT_TRUE(SameRows(*random_rows, *optimal_rows))
          << "Choice alternatives disagree on " << cond->ToString()
          << "\noptimal: " << optimal->ToShortString()
          << "\nrandom:  " << random_plan->ToShortString();
    }
  }
}

// A random resolution can cost more, but never less, than ResolveChoices'
// pick — the cost module really is choosing the minimum over the space.
TEST_P(DifferentialTest, OptimalResolutionIsCostMinimal) {
  Rng rng(CaseSeed() + 3);
  DifferentialEnv env(CaseSeed() * 41 + 2);
  for (int trial = 0; trial < 5; ++trial) {
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 2 + rng.NextIndex(3);
    const ConditionPtr cond = RandomCondition(env.domains, cond_options, &rng);
    const AttributeSet attrs = env.handle->schema().AllAttributes();

    Epg epg(env.handle.get());
    const PlanPtr space = epg.Generate(Canonicalize(cond), attrs);
    if (space == nullptr) continue;

    const CostModel& model = env.handle->cost_model();
    const double optimal_cost = model.PlanCost(*model.ResolveChoices(space));
    EXPECT_NEAR(optimal_cost, model.PlanCost(*space), 1e-6);  // min over space
    for (int pick = 0; pick < 3; ++pick) {
      const PlanPtr random_plan = model.ResolveChoicesRandom(space, &rng);
      ASSERT_NE(random_plan, nullptr);
      EXPECT_GE(model.PlanCost(*random_plan), optimal_cost - 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace gencompact
