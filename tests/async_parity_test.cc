// Seeded async-vs-pool differential fuzzer — the PR's acceptance bar: on
// random capability mixes, random feasible queries, random keyed fault
// schedules, and result-bounded/paged interfaces, the event-loop DAG walk
// and the blocking thread-pool executor must produce identical rows,
// identical completeness markers, and identical retry/transfer statistics.
//
// The fault side leans on FaultPolicy::keyed_schedule: every random-rate
// draw is a pure function of (seed, sub-query fingerprint, page offset,
// per-key attempt index), so two executors issuing the same *multiset* of
// logical calls in different global orders observe the exact same fault on
// every corresponding call. Each side runs against its own identically
// seeded environment (same table, same capability, same injector seed) so
// neither consumes the other's attempt counters.
//
// Runs under the ci.sh seed matrix via GENCOMPACT_TEST_SEED.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "exec/async_scheduler.h"
#include "exec/event_loop.h"
#include "exec/executor.h"
#include "exec/fault_policy.h"
#include "planner/gen_compact.h"
#include "planner/source_handle.h"
#include "ssdl/description.h"
#include "workload/datasets.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact {
namespace {

using std::chrono::microseconds;

bool SameRows(const RowSet& a, const RowSet& b) {
  if (a.size() != b.size()) return false;
  for (const Row& row : a.rows()) {
    if (!b.Contains(row)) return false;
  }
  return true;
}

uint64_t BaseSeed() {
  const char* env = std::getenv("GENCOMPACT_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 439;
}

Schema ParitySchema() {
  return Schema({{"s1", ValueType::kString},
                 {"s2", ValueType::kString},
                 {"n1", ValueType::kInt},
                 {"n2", ValueType::kInt}});
}

// One execution environment: a random table behind a random capability,
// optionally result-bounded, optionally under a keyed fault schedule.
// Construction is a pure function of the config, so two instances built
// from the same config are indistinguishable — the sync and async runs
// each get a private one.
struct ParityConfig {
  uint64_t seed = 0;
  // Result-bound shape: 0 = unbounded; otherwise rows per call.
  uint64_t result_bound = 0;
  bool supports_paging = false;
  uint64_t page_size = 0;
  uint64_t max_accesses = 0;
  // Keyed fault schedule (0 = fault-free).
  double transient_error_rate = 0.0;
};

struct ParityEnv {
  std::unique_ptr<Table> table;
  SourceDescription description{"src", ParitySchema()};
  std::unique_ptr<SourceHandle> handle;
  std::unique_ptr<Source> source;
  std::vector<AttributeDomain> domains;

  explicit ParityEnv(const ParityConfig& config) {
    Rng rng(config.seed);
    const Schema schema = ParitySchema();
    table = MakeRandomTable("src", schema, /*rows=*/200, /*string_pool=*/10,
                            /*value_range=*/40, &rng);
    description =
        RandomCapability("src", schema, RandomCapabilityOptions{}, &rng);
    if (config.result_bound > 0) {
      ResultBound bound;
      bound.result_bound = config.result_bound;
      bound.supports_paging = config.supports_paging;
      bound.page_size = config.page_size;
      bound.max_accesses = config.max_accesses;
      description.set_result_bound(bound);
    }
    handle = std::make_unique<SourceHandle>(description, table.get());
    source = std::make_unique<Source>(table.get(), &handle->description());
    if (config.transient_error_rate > 0) {
      FaultPolicy policy;
      policy.seed = config.seed * 2654435761ull + 1;
      policy.transient_error_rate = config.transient_error_rate;
      policy.keyed_schedule = true;
      source->set_fault_policy(policy);
    }
    domains = ExtractDomains(*table, /*max_samples=*/6, &rng);
  }
};

// Normalized completeness markers for comparison: the async walk discovers
// truncations in event order, the pool walk in branch order — the *set*
// must match.
std::vector<std::tuple<std::string, std::string, uint64_t, uint64_t>>
NormalizedTruncations(const std::vector<TruncationRecord>& records) {
  std::vector<std::tuple<std::string, std::string, uint64_t, uint64_t>> out;
  out.reserve(records.size());
  for (const TruncationRecord& record : records) {
    out.emplace_back(record.sub_query, record.source, record.bound,
                     record.rows_lower_bound);
  }
  std::sort(out.begin(), out.end());
  return out;
}

RetryPolicy ParityRetry() {
  RetryPolicy retry;
  retry.max_attempts = 4;
  // A shared budget is order-dependent when it runs out mid-execution; give
  // both sides more than any schedule can consume so parity is exact.
  retry.retry_budget = 1 << 20;
  return retry;
}

struct SideResult {
  Result<RowSet> rows = Status::Internal("not run");
  ExecStats stats;
  size_t received = 0;
  std::vector<std::tuple<std::string, std::string, uint64_t, uint64_t>>
      truncations;
};

SideResult RunSync(const ParityConfig& config, const ConditionPtr& cond,
                   bool faulty) {
  ParityEnv env(config);
  GenCompactPlanner planner(env.handle.get());
  const Result<PlanPtr> plan =
      planner.Plan(cond, env.handle->schema().AllAttributes());
  SideResult result;
  if (!plan.ok()) {
    result.rows = plan.status();
    return result;
  }
  FakeClock clock;
  ExecOptions options;
  options.clock = &clock;
  if (faulty) options.retry = ParityRetry();
  Executor executor(env.source.get(), /*pool=*/nullptr, options);
  result.rows = executor.Execute(**plan);
  result.stats = executor.stats();
  result.received = env.source->stats().queries_received;
  result.truncations = NormalizedTruncations(executor.truncation_records());
  return result;
}

SideResult RunAsync(const ParityConfig& config, const ConditionPtr& cond,
                    bool faulty) {
  ParityEnv env(config);
  GenCompactPlanner planner(env.handle.get());
  const Result<PlanPtr> plan =
      planner.Plan(cond, env.handle->schema().AllAttributes());
  SideResult result;
  if (!plan.ok()) {
    result.rows = plan.status();
    return result;
  }
  FakeClock clock;
  EventLoop loop(&clock);
  AsyncExecOptions options;
  options.exec.clock = &clock;
  if (faulty) options.exec.retry = ParityRetry();
  AsyncScheduler scheduler(env.source.get(), &loop, options);
  result.rows = scheduler.Execute(**plan);
  result.stats = scheduler.stats();
  result.received = env.source->stats().queries_received;
  result.truncations = NormalizedTruncations(scheduler.truncation_records());
  return result;
}

void ExpectParity(const ParityConfig& config, const ConditionPtr& cond,
                  bool faulty, const std::string& label) {
  const SideResult sync = RunSync(config, cond, faulty);
  const SideResult async = RunAsync(config, cond, faulty);
  if (!sync.rows.ok() || !async.rows.ok()) {
    // A schedule that exhausts retries must doom both sides identically.
    EXPECT_EQ(sync.rows.status().code(), async.rows.status().code())
        << label << ": sync " << sync.rows.status().ToString() << " vs async "
        << async.rows.status().ToString();
    return;
  }
  EXPECT_TRUE(SameRows(*sync.rows, *async.rows))
      << label << ": answers diverged on " << cond->ToString();
  EXPECT_EQ(sync.stats.source_queries, async.stats.source_queries) << label;
  EXPECT_EQ(sync.stats.rows_transferred, async.stats.rows_transferred)
      << label;
  EXPECT_EQ(sync.stats.retries, async.stats.retries) << label;
  EXPECT_EQ(sync.stats.failed_sub_queries, async.stats.failed_sub_queries)
      << label;
  EXPECT_EQ(sync.stats.pages_fetched, async.stats.pages_fetched) << label;
  EXPECT_EQ(sync.stats.truncated_sub_queries,
            async.stats.truncated_sub_queries)
      << label;
  EXPECT_EQ(sync.received, async.received) << label;
  EXPECT_EQ(sync.truncations, async.truncations) << label;
}

class AsyncParityTest : public ::testing::TestWithParam<int> {
 protected:
  uint64_t CaseSeed() const {
    return BaseSeed() * 1000003ull +
           static_cast<uint64_t>(GetParam()) * 7919ull;
  }
};

TEST_P(AsyncParityTest, UnboundedFaultFree) {
  Rng rng(CaseSeed() + 17);
  for (int trial = 0; trial < 4; ++trial) {
    ParityConfig config;
    config.seed = CaseSeed() * 47 + static_cast<uint64_t>(trial);
    ParityEnv probe(config);  // domains for condition generation
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 2 + rng.NextIndex(3);
    const ConditionPtr cond =
        RandomCondition(probe.domains, cond_options, &rng);
    ExpectParity(config, cond, /*faulty=*/false, "unbounded/clean");
  }
}

TEST_P(AsyncParityTest, UnboundedKeyedFaults) {
  Rng rng(CaseSeed() + 29);
  for (int trial = 0; trial < 4; ++trial) {
    ParityConfig config;
    config.seed = CaseSeed() * 53 + static_cast<uint64_t>(trial);
    config.transient_error_rate = 0.2;
    ParityEnv probe(config);
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 2 + rng.NextIndex(3);
    const ConditionPtr cond =
        RandomCondition(probe.domains, cond_options, &rng);
    ExpectParity(config, cond, /*faulty=*/true, "unbounded/keyed-faults");
  }
}

TEST_P(AsyncParityTest, BoundedPagedSources) {
  Rng rng(CaseSeed() + 41);
  for (int trial = 0; trial < 3; ++trial) {
    ParityConfig config;
    config.seed = CaseSeed() * 59 + static_cast<uint64_t>(trial);
    config.result_bound = 16;
    config.supports_paging = true;
    config.page_size = 16;
    ParityEnv probe(config);
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 2 + rng.NextIndex(3);
    const ConditionPtr cond =
        RandomCondition(probe.domains, cond_options, &rng);
    ExpectParity(config, cond, /*faulty=*/false, "bounded/paged");
  }
}

TEST_P(AsyncParityTest, BoundedPagedSourcesUnderKeyedFaults) {
  Rng rng(CaseSeed() + 43);
  for (int trial = 0; trial < 3; ++trial) {
    ParityConfig config;
    config.seed = CaseSeed() * 61 + static_cast<uint64_t>(trial);
    config.result_bound = 16;
    config.supports_paging = true;
    config.page_size = 16;
    config.transient_error_rate = 0.15;
    ParityEnv probe(config);
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 2 + rng.NextIndex(3);
    const ConditionPtr cond =
        RandomCondition(probe.domains, cond_options, &rng);
    ExpectParity(config, cond, /*faulty=*/true, "bounded/paged/keyed-faults");
  }
}

TEST_P(AsyncParityTest, NonPagingBoundsTruncateIdentically) {
  Rng rng(CaseSeed() + 47);
  for (int trial = 0; trial < 3; ++trial) {
    ParityConfig config;
    config.seed = CaseSeed() * 67 + static_cast<uint64_t>(trial);
    // A tight bound with no paging: broad sub-queries truncate, and both
    // sides must emit the same completeness markers.
    config.result_bound = 12;
    config.supports_paging = false;
    ParityEnv probe(config);
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 2 + rng.NextIndex(3);
    const ConditionPtr cond =
        RandomCondition(probe.domains, cond_options, &rng);
    ExpectParity(config, cond, /*faulty=*/false, "bounded/non-paging");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AsyncParityTest, ::testing::Range(0, 10));

}  // namespace
}  // namespace gencompact
