#include <gtest/gtest.h>

#include "expr/condition_eval.h"
#include "expr/condition_parser.h"
#include "ssdl/check.h"
#include "workload/datasets.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"
#include "workload/zipf.h"

namespace gencompact {
namespace {

TEST(ZipfTest, RanksAreInRangeAndSkewed) {
  Rng rng(3);
  const ZipfSampler zipf(100, 1.0);
  std::vector<size_t> counts(100, 0);
  for (int i = 0; i < 20000; ++i) {
    const size_t rank = zipf.Sample(&rng);
    ASSERT_LT(rank, 100u);
    ++counts[rank];
  }
  // Rank 0 should dominate rank 50 heavily under s = 1.
  EXPECT_GT(counts[0], counts[50] * 5);
  EXPECT_GT(counts[0], 0u);
}

TEST(ZipfTest, DegenerateSizes) {
  Rng rng(4);
  const ZipfSampler one(1, 1.0);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(one.Sample(&rng), 0u);
}

TEST(BookstoreDatasetTest, ShapeMatchesPaperExample) {
  const Dataset dataset = MakeBookstore(50000, 42);
  EXPECT_EQ(dataset.table->num_rows(), 50000u);
  const Schema& schema = dataset.table->schema();
  const RowLayout full(schema.AllAttributes(), schema.num_attributes());

  size_t dreams = 0;
  size_t protagonist_dreams = 0;
  const Result<ConditionPtr> dreams_cond =
      ParseCondition("title contains \"dreams\"");
  const Result<ConditionPtr> target = ParseCondition(
      "(author = \"Sigmund Freud\" or author = \"Carl Jung\") and "
      "title contains \"dreams\"");
  ASSERT_TRUE(dreams_cond.ok());
  ASSERT_TRUE(target.ok());
  for (const Row& row : dataset.table->rows()) {
    if (*EvalCondition(**dreams_cond, row, full, schema)) ++dreams;
    if (*EvalCondition(**target, row, full, schema)) ++protagonist_dreams;
  }
  // The paper's numbers: >2000 "dreams" titles, <20 for the two authors.
  EXPECT_GT(dreams, 2000u);
  EXPECT_GT(protagonist_dreams, 0u);
  EXPECT_LT(protagonist_dreams, 20u);
}

TEST(BookstoreDatasetTest, CapabilityRejectsTwoAuthors) {
  const Dataset dataset = MakeBookstore(2000, 1);
  Checker checker(&dataset.description);
  const Result<ConditionPtr> two_authors =
      ParseCondition("author = \"A\" or author = \"B\"");
  ASSERT_TRUE(two_authors.ok());
  EXPECT_TRUE(checker.Check(**two_authors).empty());
  const Result<ConditionPtr> single = ParseCondition(
      "author = \"A\" and title contains \"x\"");
  ASSERT_TRUE(single.ok());
  EXPECT_FALSE(checker.Check(**single).empty());
  EXPECT_TRUE(checker.CheckTrue().empty());  // no catalog download
}

TEST(CarDatasetTest, FormAcceptsSizeLists) {
  const Dataset dataset = MakeCarSource(2000, 2);
  Checker checker(&dataset.description);
  const Result<ConditionPtr> with_list = ParseCondition(
      "style = \"sedan\" and make = \"BMW\" and price <= 40000 and "
      "(size = \"compact\" or size = \"midsize\")");
  ASSERT_TRUE(with_list.ok());
  EXPECT_FALSE(checker.Check(**with_list).empty());
  // Two makes at once: rejected.
  const Result<ConditionPtr> two_makes = ParseCondition(
      "(make = \"BMW\" or make = \"Audi\") and style = \"sedan\"");
  ASSERT_TRUE(two_makes.ok());
  EXPECT_TRUE(checker.Check(**two_makes).empty());
}

TEST(CarDatasetTest, ExampleConditionIsNotDirectlySupported) {
  const Dataset dataset = MakeCarSource(2000, 2);
  Checker checker(&dataset.description);
  EXPECT_TRUE(checker.Check(*dataset.example_condition).empty());
}

TEST(RandomTableTest, RespectsSchemaAndDeterminism) {
  const Schema schema({{"s", ValueType::kString},
                       {"i", ValueType::kInt},
                       {"d", ValueType::kDouble},
                       {"b", ValueType::kBool}});
  Rng rng1(7);
  Rng rng2(7);
  const std::unique_ptr<Table> t1 = MakeRandomTable("t", schema, 50, 8, 100, &rng1);
  const std::unique_ptr<Table> t2 = MakeRandomTable("t", schema, 50, 8, 100, &rng2);
  ASSERT_EQ(t1->num_rows(), 50u);
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(t1->rows()[i], t2->rows()[i]);
  }
  for (const Row& row : t1->rows()) {
    EXPECT_EQ(row.value(0).type(), ValueType::kString);
    EXPECT_EQ(row.value(1).type(), ValueType::kInt);
    EXPECT_EQ(row.value(2).type(), ValueType::kDouble);
    EXPECT_EQ(row.value(3).type(), ValueType::kBool);
  }
}

TEST(ExtractDomainsTest, SamplesComeFromTheData) {
  const Schema schema({{"s", ValueType::kString}, {"i", ValueType::kInt}});
  Rng rng(9);
  const std::unique_ptr<Table> table = MakeRandomTable("t", schema, 100, 5, 10, &rng);
  const std::vector<AttributeDomain> domains = ExtractDomains(*table, 4, &rng);
  ASSERT_EQ(domains.size(), 2u);
  for (const AttributeDomain& domain : domains) {
    EXPECT_FALSE(domain.sample_values.empty());
    EXPECT_LE(domain.sample_values.size(), 4u);
    for (const Value& v : domain.sample_values) {
      bool found = false;
      const int index = *schema.IndexOf(domain.name);
      for (const Row& row : table->rows()) {
        if (row.value(static_cast<size_t>(index)) == v) {
          found = true;
          break;
        }
      }
      EXPECT_TRUE(found) << v.ToString();
    }
  }
}

TEST(RandomConditionTest, AtomCountAndAttributesRespected) {
  const Schema schema({{"s", ValueType::kString}, {"i", ValueType::kInt}});
  Rng rng(11);
  const std::unique_ptr<Table> table = MakeRandomTable("t", schema, 60, 5, 10, &rng);
  const std::vector<AttributeDomain> domains = ExtractDomains(*table, 4, &rng);
  for (size_t atoms = 1; atoms <= 8; ++atoms) {
    RandomConditionOptions options;
    options.num_atoms = atoms;
    const ConditionPtr cond = RandomCondition(domains, options, &rng);
    EXPECT_EQ(cond->CountAtoms(), atoms);
    const Result<AttributeSet> attrs = cond->Attributes(schema);
    EXPECT_TRUE(attrs.ok());
  }
}

TEST(RandomCapabilityTest, DeterministicAndWellFormed) {
  const Schema schema({{"s", ValueType::kString}, {"i", ValueType::kInt}});
  Rng rng1(13);
  Rng rng2(13);
  const SourceDescription d1 =
      RandomCapability("src", schema, RandomCapabilityOptions{}, &rng1);
  const SourceDescription d2 =
      RandomCapability("src", schema, RandomCapabilityOptions{}, &rng2);
  EXPECT_EQ(d1.ToString(), d2.ToString());
  EXPECT_FALSE(d1.condition_nonterminals().empty());
  EXPECT_GT(d1.grammar().rules().size(), d1.condition_nonterminals().size());
}

}  // namespace
}  // namespace gencompact
