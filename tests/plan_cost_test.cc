#include <gtest/gtest.h>

#include "cost/cost_model.h"
#include "expr/condition_parser.h"
#include "plan/plan.h"
#include "plan/plan_printer.h"
#include "plan/plan_validator.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

/// Estimator with a fixed per-condition row count for deterministic tests.
class FakeEstimator : public CardinalityEstimator {
 public:
  explicit FakeEstimator(double rows) : rows_(rows) {}
  double EstimateRows(const ConditionNode&) const override { return rows_; }

 private:
  double rows_;
};

TEST(PlanTest, FactoriesAndAccessors) {
  const ConditionPtr cond = Parse("a = 1");
  AttributeSet attrs;
  attrs.Add(0);
  const PlanPtr sq = PlanNode::SourceQuery(cond, attrs);
  EXPECT_EQ(sq->kind(), PlanNode::Kind::kSourceQuery);
  EXPECT_EQ(sq->CountSourceQueries(), 1u);
  EXPECT_TRUE(sq->IsResolved());

  const PlanPtr sp = PlanNode::MediatorSp(Parse("b = 2"), attrs, sq);
  EXPECT_EQ(sp->kind(), PlanNode::Kind::kMediatorSp);
  EXPECT_EQ(sp->children().size(), 1u);
  EXPECT_EQ(sp->CountSourceQueries(), 1u);

  const PlanPtr u = PlanNode::UnionOf({sq, sp});
  EXPECT_EQ(u->kind(), PlanNode::Kind::kUnion);
  EXPECT_EQ(u->CountSourceQueries(), 2u);
  EXPECT_EQ(u->Size(), 4u);
}

TEST(PlanTest, SingleChildSetOpsCollapse) {
  const PlanPtr sq = PlanNode::SourceQuery(Parse("a = 1"), AttributeSet());
  EXPECT_EQ(PlanNode::UnionOf({sq}).get(), sq.get());
  EXPECT_EQ(PlanNode::IntersectOf({sq}).get(), sq.get());
  EXPECT_EQ(PlanNode::Choice({sq}).get(), sq.get());
}

TEST(PlanTest, ChoiceMarksUnresolved) {
  const PlanPtr a = PlanNode::SourceQuery(Parse("a = 1"), AttributeSet());
  const PlanPtr b = PlanNode::SourceQuery(Parse("a = 2"), AttributeSet());
  const PlanPtr choice = PlanNode::Choice({a, b});
  EXPECT_FALSE(choice->IsResolved());
  EXPECT_TRUE(a->IsResolved());
}

TEST(CostModelTest, SourceQueryCostIsLinear) {
  const FakeEstimator estimator(100);
  const CostModel model(10.0, 0.5, &estimator);
  EXPECT_DOUBLE_EQ(model.SourceQueryCost(*Parse("a = 1"), AttributeSet()),
                   10.0 + 0.5 * 100);
}

TEST(CostModelTest, PlanCostSumsSourceQueriesOnly) {
  const FakeEstimator estimator(100);
  const CostModel model(10.0, 0.5, &estimator);
  AttributeSet attrs;
  const PlanPtr sq1 = PlanNode::SourceQuery(Parse("a = 1"), attrs);
  const PlanPtr sq2 = PlanNode::SourceQuery(Parse("a = 2"), attrs);
  const PlanPtr plan =
      PlanNode::UnionOf({sq1, PlanNode::MediatorSp(Parse("b = 2"), attrs, sq2)});
  // Two source queries at 60 each; mediator ops are free (Equation 1).
  EXPECT_DOUBLE_EQ(model.PlanCost(*plan), 120.0);
}

TEST(CostModelTest, MediatorExtensionTermCharges) {
  const FakeEstimator estimator(100);
  const CostModel paper(10.0, 0.5, &estimator, /*mediator_k3=*/0.0);
  const CostModel extended(10.0, 0.5, &estimator, /*mediator_k3=*/0.1);
  AttributeSet attrs;
  const PlanPtr plan = PlanNode::MediatorSp(
      Parse("b = 2"), attrs, PlanNode::SourceQuery(Parse("a = 1"), attrs));
  EXPECT_DOUBLE_EQ(paper.PlanCost(*plan), 60.0);
  EXPECT_DOUBLE_EQ(extended.PlanCost(*plan), 60.0 + 0.1 * 100);
}

TEST(CostModelTest, ChoiceCostsMinimum) {
  const FakeEstimator estimator(100);
  const CostModel model(10.0, 0.5, &estimator);
  AttributeSet attrs;
  const PlanPtr cheap = PlanNode::SourceQuery(Parse("a = 1"), attrs);
  const PlanPtr expensive = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("a = 2"), attrs),
       PlanNode::SourceQuery(Parse("a = 3"), attrs)});
  const PlanPtr choice = PlanNode::Choice({expensive, cheap});
  EXPECT_DOUBLE_EQ(model.PlanCost(*choice), 60.0);

  const PlanPtr resolved = model.ResolveChoices(choice);
  EXPECT_TRUE(resolved->IsResolved());
  EXPECT_EQ(resolved.get(), cheap.get());
}

TEST(CostModelTest, ResolveChoicesDescendsNestedStructure) {
  const FakeEstimator estimator(10);
  const CostModel model(1.0, 1.0, &estimator);
  AttributeSet attrs;
  const PlanPtr a = PlanNode::SourceQuery(Parse("a = 1"), attrs);
  const PlanPtr b = PlanNode::SourceQuery(Parse("a = 2"), attrs);
  const PlanPtr nested = PlanNode::IntersectOf(
      {PlanNode::Choice({PlanNode::UnionOf({a, b}), a}), b});
  const PlanPtr resolved = model.ResolveChoices(nested);
  EXPECT_TRUE(resolved->IsResolved());
  EXPECT_EQ(resolved->CountSourceQueries(), 2u);  // picked `a` inside
}

TEST(PlanPrinterTest, RendersTreeWithCosts) {
  const FakeEstimator estimator(5);
  const CostModel model(2.0, 1.0, &estimator);
  AttributeSet attrs;
  attrs.Add(0);
  const Schema schema({{"a", ValueType::kInt}});
  const PlanPtr plan = PlanNode::MediatorSp(
      Parse("a = 2"), attrs, PlanNode::SourceQuery(Parse("a = 1"), attrs));
  const std::string text = PrintPlan(*plan, schema, &model);
  EXPECT_NE(text.find("MediatorSelectProject"), std::string::npos);
  EXPECT_NE(text.find("SourceQuery"), std::string::npos);
  EXPECT_NE(text.find("est_rows=5"), std::string::npos);
}

TEST(PlanValidatorTest, AcceptsSupportedSourceQuery) {
  const Result<SourceDescription> description = ParseSsdl(R"(
    source R(a: string, b: int) {
      rule s1 -> a = $string;
      export s1 : {a, b};
    })");
  ASSERT_TRUE(description.ok());
  Checker checker(&*description);
  AttributeSet attrs;
  attrs.Add(1);
  const PlanPtr plan = PlanNode::SourceQuery(Parse("a = \"x\""), attrs);
  EXPECT_TRUE(ValidatePlan(*plan, &checker).ok());
  EXPECT_TRUE(ValidatePlanFor(*plan, attrs, &checker).ok());
}

TEST(PlanValidatorTest, RejectsUnsupportedSourceQuery) {
  const Result<SourceDescription> description = ParseSsdl(R"(
    source R(a: string, b: int) {
      rule s1 -> a = $string;
      export s1 : {a};
    })");
  ASSERT_TRUE(description.ok());
  Checker checker(&*description);
  // Condition unsupported:
  EXPECT_FALSE(
      ValidatePlan(*PlanNode::SourceQuery(Parse("b = 1"), AttributeSet()),
                   &checker)
          .ok());
  // Export insufficient:
  AttributeSet b_attr;
  b_attr.Add(1);
  EXPECT_FALSE(
      ValidatePlan(*PlanNode::SourceQuery(Parse("a = \"x\""), b_attr), &checker)
          .ok());
}

TEST(PlanValidatorTest, RejectsMediatorSelectionOnMissingAttrs) {
  const Result<SourceDescription> description = ParseSsdl(R"(
    source R(a: string, b: int) {
      rule s1 -> a = $string;
      export s1 : {a};
    })");
  ASSERT_TRUE(description.ok());
  Checker checker(&*description);
  AttributeSet a_attr;
  a_attr.Add(0);
  // Mediator filter on b, but the child only provides a.
  const PlanPtr plan = PlanNode::MediatorSp(
      Parse("b = 1"), a_attr, PlanNode::SourceQuery(Parse("a = \"x\""), a_attr));
  const Status status = ValidatePlan(*plan, &checker);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
}

TEST(PlanValidatorTest, RejectsUnresolvedChoice) {
  const Result<SourceDescription> description = ParseSsdl(R"(
    source R(a: string) {
      rule s1 -> a = $string;
      export s1 : {a};
    })");
  ASSERT_TRUE(description.ok());
  Checker checker(&*description);
  const PlanPtr a = PlanNode::SourceQuery(Parse("a = \"x\""), AttributeSet());
  const PlanPtr b = PlanNode::SourceQuery(Parse("a = \"y\""), AttributeSet());
  EXPECT_EQ(ValidatePlan(*PlanNode::Choice({a, b}), &checker).code(),
            StatusCode::kInternal);
}

TEST(PlanValidatorTest, ValidatePlanForChecksOutputAttrs) {
  const Result<SourceDescription> description = ParseSsdl(R"(
    source R(a: string, b: int) {
      rule s1 -> a = $string;
      export s1 : {a, b};
    })");
  ASSERT_TRUE(description.ok());
  Checker checker(&*description);
  AttributeSet a_attr;
  a_attr.Add(0);
  AttributeSet b_attr;
  b_attr.Add(1);
  const PlanPtr plan = PlanNode::SourceQuery(Parse("a = \"x\""), a_attr);
  EXPECT_TRUE(ValidatePlanFor(*plan, a_attr, &checker).ok());
  EXPECT_FALSE(ValidatePlanFor(*plan, b_attr, &checker).ok());
}

}  // namespace
}  // namespace gencompact
