#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace gencompact {
namespace {

TEST(ThreadPoolTest, SubmitReturnsTaskResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptions) {
  ThreadPool pool(2);
  std::future<int> future =
      pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ZeroThreadsRunsInline) {
  ThreadPool pool(0);
  std::future<int> future = pool.Submit([]() { return 7; });
  EXPECT_EQ(future.get(), 7);
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&sum](size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> counts(kN);
  pool.ParallelFor(kN, [&counts](size_t i) { ++counts[i]; });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(counts[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  std::atomic<size_t> executed{0};
  EXPECT_THROW(pool.ParallelFor(64,
                                [&executed](size_t i) {
                                  ++executed;
                                  if (i == 3) throw std::logic_error("bad");
                                }),
               std::logic_error);
  // Iterations claimed after the failure are skipped, never half-run.
  EXPECT_LE(executed.load(), 64u);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // More nested loops than workers: the caller-participation contract is
  // what guarantees progress here.
  ThreadPool pool(2);
  std::atomic<int> leaf_count{0};
  pool.ParallelFor(8, [&pool, &leaf_count](size_t) {
    pool.ParallelFor(8, [&leaf_count](size_t) { ++leaf_count; });
  });
  EXPECT_EQ(leaf_count.load(), 64);
}

TEST(ThreadPoolTest, ParallelForActuallyOverlapsSleeps) {
  ThreadPool pool(8);
  const auto start = std::chrono::steady_clock::now();
  pool.ParallelFor(8, [](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  // Sequential would take 400ms; allow generous scheduling slack.
  EXPECT_LT(elapsed_ms, 320.0);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 16; ++i) {
      pool.Submit([&completed]() {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ++completed;
      });
    }
    // Destructor runs here with most tasks still queued.
  }
  EXPECT_EQ(completed.load(), 16);
}

}  // namespace
}  // namespace gencompact
