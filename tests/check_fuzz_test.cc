// Seeded Checker fuzzer for the two-level Check memo: random SSDL
// capability grammars and random condition trees (the differential
// harness's generators), asserting that every memoization mode returns the
// same family of maximal export sets:
//
//   - a memo-disabled Checker, fresh per condition (ground truth — every
//     Check is a full Earley run);
//   - a persistent L1-only Checker (id-keyed memo across conditions);
//   - Checkers sharing the fingerprint-keyed second level, both the one
//     that populated an entry and cold readers that can only hit L2;
//   - an interning-ablated rebuild of the condition (fresh ConditionId,
//     same structural fingerprint), which forces the L2 path.
//
// The shared memo runs with verify_rate = 1.0, so every single L2 hit is
// re-checked against a fresh Earley run; any fingerprint collision or
// cross-mode disagreement shows up as a verify mismatch and fails the test.
// The base seed comes from GENCOMPACT_TEST_SEED (default 439) so CI runs
// this under the same seed matrix as the differential suite.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <vector>

#include "expr/condition_parser.h"
#include "expr/intern.h"
#include "planner/source_handle.h"
#include "ssdl/check.h"
#include "ssdl/check_memo.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact {
namespace {

uint64_t BaseSeed() {
  const char* env = std::getenv("GENCOMPACT_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 439;
}

Schema FuzzSchema() {
  return Schema({{"s1", ValueType::kString},
                 {"s2", ValueType::kString},
                 {"n1", ValueType::kInt},
                 {"n2", ValueType::kInt}});
}

std::vector<AttributeSet> Sorted(std::vector<AttributeSet> family) {
  std::sort(family.begin(), family.end());
  return family;
}

class CheckFuzzTest : public ::testing::TestWithParam<int> {
 protected:
  uint64_t CaseSeed() const {
    return BaseSeed() * 99991ull + static_cast<uint64_t>(GetParam()) * 7919ull;
  }
};

TEST_P(CheckFuzzTest, MemoLevelsAgreeOnMaximalExportSets) {
  Rng rng(CaseSeed());
  const Schema schema = FuzzSchema();
  const std::unique_ptr<Table> table =
      MakeRandomTable("src", schema, /*rows=*/60, /*string_pool=*/8,
                      /*value_range=*/30, &rng);
  const SourceDescription description =
      RandomCapability("src", schema, RandomCapabilityOptions{}, &rng);
  // Check against the commutativity-closed view, exactly as planning does.
  SourceHandle handle(description, table.get());
  const SourceDescription& closed = handle.description();
  const std::vector<AttributeDomain> domains =
      ExtractDomains(*table, /*max_samples=*/6, &rng);

  CheckMemo memo(/*capacity=*/256, /*shards=*/4, /*verify_rate=*/1.0);
  Checker persistent_l1(&closed);  // L1 only, survives across conditions
  Checker writer(&closed);         // populates the shared second level
  writer.EnableSharedMemo(&memo, /*source_id=*/0, /*epoch=*/0);

  RandomConditionOptions cond_options;
  for (int trial = 0; trial < 24; ++trial) {
    cond_options.num_atoms = 1 + rng.NextIndex(4);
    const ConditionPtr cond = RandomCondition(domains, cond_options, &rng);
    SCOPED_TRACE(cond->ToString());

    Checker fresh(&closed);  // memo-disabled ground truth
    const std::vector<AttributeSet> truth = Sorted(fresh.Check(*cond));

    EXPECT_EQ(Sorted(persistent_l1.Check(*cond)), truth);
    EXPECT_EQ(Sorted(persistent_l1.Check(*cond)), truth);  // L1 hit path
    EXPECT_EQ(Sorted(writer.Check(*cond)), truth);         // populates L2

    Checker reader(&closed);  // cold L1: sharing must come from L2
    reader.EnableSharedMemo(&memo, /*source_id=*/0, /*epoch=*/0);
    EXPECT_EQ(Sorted(reader.Check(*cond)), truth);
    EXPECT_EQ(reader.num_shared_hits(), 1u);

    // Structural twin with a fresh identity: interning off, rebuilt from
    // text. Same fingerprint, different ConditionId — so an id-keyed memo
    // can never serve it, and agreement proves the fingerprint-keyed level
    // is keyed on structure alone.
    {
      ScopedInterningDisabled no_interning;
      const Result<ConditionPtr> twin = ParseCondition(cond->ToString());
      ASSERT_TRUE(twin.ok());
      ASSERT_NE((*twin)->id(), cond->id());
      ASSERT_EQ((*twin)->fingerprint(), cond->fingerprint());
      Checker ablated(&closed);
      ablated.EnableSharedMemo(&memo, /*source_id=*/0, /*epoch=*/0);
      EXPECT_EQ(Sorted(ablated.Check(**twin)), truth);
      EXPECT_EQ(ablated.num_shared_hits(), 1u);
    }
  }

  const CheckMemo::Stats stats = memo.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.verified_hits, 0u);
  EXPECT_EQ(stats.verify_mismatches, 0u)
      << "an L2 hit disagreed with a fresh Earley run";
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckFuzzTest, ::testing::Range(0, 12));

}  // namespace
}  // namespace gencompact
