#include <gtest/gtest.h>

#include "exec/executor.h"
#include "expr/condition_parser.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

class ExecFixture : public ::testing::Test {
 protected:
  ExecFixture()
      : description_(*ParseSsdl(R"(
          source R(k: string, v: int) {
            rule s1 -> k = $string;
            rule s2 -> v < $int;
            rule s3 -> v >= $int;
            export s1 : {k, v};
            export s2 : {k, v};
            export s3 : {k, v};
          })")),
        table_("R", description_.schema()),
        source_(&table_, &description_) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(table_
                      .AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                     Value::Int(i)})
                      .ok());
    }
  }

  AttributeSet Attrs(const std::vector<std::string>& names) {
    return *description_.schema().MakeSet(names);
  }

  SourceDescription description_;
  Table table_;
  Source source_;
};

TEST_F(ExecFixture, SourceAnswersSupportedQuery) {
  const Result<RowSet> rows =
      source_.Execute(*Parse("k = \"odd\""), Attrs({"k", "v"}));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ(source_.stats().queries_answered, 1u);
  EXPECT_EQ(source_.stats().rows_returned, 5u);
}

TEST_F(ExecFixture, SourceRejectsUnsupportedCondition) {
  const Result<RowSet> rows =
      source_.Execute(*Parse("k = \"odd\" and v < 5"), Attrs({"k"}));
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(source_.stats().queries_rejected, 1u);
}

TEST_F(ExecFixture, SourceDeduplicatesProjectedRows) {
  const Result<RowSet> rows = source_.Execute(*Parse("v < 6"), Attrs({"k"}));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // "odd" and "even"
}

TEST_F(ExecFixture, ExecutorRunsSourceQuery) {
  Executor executor(&source_);
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ(executor.stats().source_queries, 1u);
  EXPECT_EQ(executor.stats().rows_transferred, 3u);
}

TEST_F(ExecFixture, ExecutorMediatorSelectProject) {
  Executor executor(&source_);
  // Fetch v < 8 with both attrs, filter k = "odd" at the mediator, project v.
  const PlanPtr plan = PlanNode::MediatorSp(
      Parse("k = \"odd\""), Attrs({"v"}),
      PlanNode::SourceQuery(Parse("v < 8"), Attrs({"k", "v"})));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // 1, 3, 5, 7
  EXPECT_EQ(executor.stats().rows_transferred, 8u);
}

TEST_F(ExecFixture, ExecutorUnionDeduplicates) {
  Executor executor(&source_);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"}))});
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  // Overlap rows 4 and 5 are transferred twice but deduplicated.
  EXPECT_EQ(executor.stats().rows_transferred, 12u);
}

TEST_F(ExecFixture, ExecutorIntersect) {
  Executor executor(&source_);
  const PlanPtr plan = PlanNode::IntersectOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"}))});
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // 4, 5
}

TEST_F(ExecFixture, ExecutorRefusesChoice) {
  Executor executor(&source_);
  const PlanPtr a = PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"}));
  const PlanPtr b = PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"}));
  const Result<RowSet> rows = executor.Execute(*PlanNode::Choice({a, b}));
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInternal);
}

TEST_F(ExecFixture, TrueCostFormula) {
  Executor executor(&source_);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"}))});
  ASSERT_TRUE(executor.Execute(*plan).ok());
  EXPECT_DOUBLE_EQ(executor.stats().TrueCost(10.0, 1.0), 2 * 10.0 + 12.0);
}

TEST_F(ExecFixture, UnsupportedPropagatesThroughPlan) {
  Executor executor(&source_);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("k = \"odd\" and v < 5"), Attrs({"v"}))});
  EXPECT_EQ(executor.Execute(*plan).status().code(), StatusCode::kUnsupported);
}

}  // namespace
}  // namespace gencompact
