#include <gtest/gtest.h>

#include <chrono>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "expr/condition_parser.h"
#include "planner/planner.h"
#include "ssdl/ssdl_parser.h"
#include "workload/datasets.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

class ExecFixture : public ::testing::Test {
 protected:
  ExecFixture()
      : description_(*ParseSsdl(R"(
          source R(k: string, v: int) {
            rule s1 -> k = $string;
            rule s2 -> v < $int;
            rule s3 -> v >= $int;
            export s1 : {k, v};
            export s2 : {k, v};
            export s3 : {k, v};
          })")),
        table_("R", description_.schema()),
        source_(&table_, &description_) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_TRUE(table_
                      .AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                     Value::Int(i)})
                      .ok());
    }
  }

  AttributeSet Attrs(const std::vector<std::string>& names) {
    return *description_.schema().MakeSet(names);
  }

  SourceDescription description_;
  Table table_;
  Source source_;
};

TEST_F(ExecFixture, SourceAnswersSupportedQuery) {
  const Result<RowSet> rows =
      source_.Execute(*Parse("k = \"odd\""), Attrs({"k", "v"}));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 5u);
  EXPECT_EQ(source_.stats().queries_answered, 1u);
  EXPECT_EQ(source_.stats().rows_returned, 5u);
}

TEST_F(ExecFixture, SourceRejectsUnsupportedCondition) {
  const Result<RowSet> rows =
      source_.Execute(*Parse("k = \"odd\" and v < 5"), Attrs({"k"}));
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(source_.stats().queries_rejected, 1u);
}

TEST_F(ExecFixture, SourceDeduplicatesProjectedRows) {
  const Result<RowSet> rows = source_.Execute(*Parse("v < 6"), Attrs({"k"}));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // "odd" and "even"
}

TEST_F(ExecFixture, ExecutorRunsSourceQuery) {
  Executor executor(&source_);
  const PlanPtr plan = PlanNode::SourceQuery(Parse("v < 3"), Attrs({"v"}));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
  EXPECT_EQ(executor.stats().source_queries, 1u);
  EXPECT_EQ(executor.stats().rows_transferred, 3u);
}

TEST_F(ExecFixture, ExecutorMediatorSelectProject) {
  Executor executor(&source_);
  // Fetch v < 8 with both attrs, filter k = "odd" at the mediator, project v.
  const PlanPtr plan = PlanNode::MediatorSp(
      Parse("k = \"odd\""), Attrs({"v"}),
      PlanNode::SourceQuery(Parse("v < 8"), Attrs({"k", "v"})));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 4u);  // 1, 3, 5, 7
  EXPECT_EQ(executor.stats().rows_transferred, 8u);
}

TEST_F(ExecFixture, ExecutorUnionDeduplicates) {
  Executor executor(&source_);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"}))});
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  // Overlap rows 4 and 5 are transferred twice but deduplicated.
  EXPECT_EQ(executor.stats().rows_transferred, 12u);
}

TEST_F(ExecFixture, ExecutorIntersect) {
  Executor executor(&source_);
  const PlanPtr plan = PlanNode::IntersectOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"}))});
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // 4, 5
}

TEST_F(ExecFixture, ExecutorRefusesChoice) {
  Executor executor(&source_);
  const PlanPtr a = PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"}));
  const PlanPtr b = PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"}));
  const Result<RowSet> rows = executor.Execute(*PlanNode::Choice({a, b}));
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kInternal);
}

TEST_F(ExecFixture, TrueCostFormula) {
  Executor executor(&source_);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"}))});
  ASSERT_TRUE(executor.Execute(*plan).ok());
  EXPECT_DOUBLE_EQ(executor.stats().TrueCost(10.0, 1.0), 2 * 10.0 + 12.0);
}

TEST_F(ExecFixture, UnsupportedPropagatesThroughPlan) {
  Executor executor(&source_);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("k = \"odd\" and v < 5"), Attrs({"v"}))});
  EXPECT_EQ(executor.Execute(*plan).status().code(), StatusCode::kUnsupported);
}

TEST_F(ExecFixture, DuplicateSourceQueriesAreFetchedOnce) {
  Executor executor(&source_);
  // The same SP(v < 6, {v}) appears twice; the dedup map must fetch it once
  // and share the result, so both stats and the source's own counters see a
  // single query.
  const PlanPtr dup = PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"}));
  const PlanPtr plan = PlanNode::UnionOf(
      {dup, PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"})), dup});
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  EXPECT_EQ(executor.stats().source_queries, 2u);
  EXPECT_EQ(executor.stats().rows_transferred, 12u);
  EXPECT_EQ(source_.stats().queries_received, 2u);
}

TEST_F(ExecFixture, ParallelExecutionMatchesSequentialExactly) {
  // A two-level plan mixing union, intersection, mediator postprocessing,
  // and a duplicated leaf — the shape IPG's set-cover combinations produce.
  const PlanPtr shared_leaf = PlanNode::SourceQuery(Parse("v < 8"), Attrs({"k", "v"}));
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::IntersectOf(
           {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
            PlanNode::SourceQuery(Parse("v >= 2"), Attrs({"v"}))}),
       PlanNode::MediatorSp(Parse("k = \"odd\""), Attrs({"v"}), shared_leaf),
       PlanNode::MediatorSp(Parse("k = \"even\""), Attrs({"v"}), shared_leaf)});

  Executor sequential(&source_);
  const Result<RowSet> seq_rows = sequential.Execute(*plan);
  ASSERT_TRUE(seq_rows.ok());

  ThreadPool pool(4);
  source_.ResetStats();
  Executor parallel(&source_, &pool);
  const Result<RowSet> par_rows = parallel.Execute(*plan);
  ASSERT_TRUE(par_rows.ok());

  // Bit-identical rows...
  EXPECT_EQ(par_rows->size(), seq_rows->size());
  for (const Row& row : seq_rows->rows()) {
    EXPECT_TRUE(par_rows->Contains(row));
  }
  // ...and identical transfer statistics (the dedup map makes the shared
  // leaf count once in both modes), hence identical true cost.
  EXPECT_EQ(parallel.stats().source_queries, sequential.stats().source_queries);
  EXPECT_EQ(parallel.stats().rows_transferred,
            sequential.stats().rows_transferred);
  EXPECT_DOUBLE_EQ(parallel.stats().TrueCost(10.0, 1.0),
                   sequential.stats().TrueCost(10.0, 1.0));
}

TEST_F(ExecFixture, ParallelUnionOverlapsSourceLatency) {
  source_.set_simulated_latency(std::chrono::microseconds(30000));
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 2"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v < 4"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("v >= 6"), Attrs({"v"}))});

  ThreadPool pool(4);
  Executor executor(&source_, &pool);
  const auto start = std::chrono::steady_clock::now();
  const Result<RowSet> rows = executor.Execute(*plan);
  const double elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 10u);
  // Four 30ms round trips sequentially = 120ms; parallel dispatch should
  // land well under that even with scheduling slack.
  EXPECT_LT(elapsed_ms, 100.0);
}

// The acceptance property behind the whole concurrency layer: across the
// same random environments the plan-quality benchmark uses, parallel
// execution of GenCompact's plans is indistinguishable from sequential —
// same rows, same (deduplicated) source-query count, same true cost.
TEST(ParallelExecParityTest, RandomWorkloadRowsAndTrueCostIdentical) {
  const Schema schema({{"s1", ValueType::kString},
                       {"s2", ValueType::kString},
                       {"s3", ValueType::kString},
                       {"n1", ValueType::kInt},
                       {"n2", ValueType::kInt}});
  ThreadPool pool(4);
  size_t executed = 0;
  for (uint64_t env_id = 0; env_id < 6; ++env_id) {
    Rng rng(9000 + env_id);
    const std::unique_ptr<Table> table =
        MakeRandomTable("src", schema, 500, 12, 50, &rng);
    RandomCapabilityOptions cap_options;
    cap_options.download_probability = 0.3;
    const SourceDescription description =
        RandomCapability("src", schema, cap_options, &rng);
    SourceHandle handle(description, table.get());
    Source source(table.get(), &handle.description());
    const std::vector<AttributeDomain> domains =
        ExtractDomains(*table, 6, &rng);

    for (size_t q = 0; q < 10; ++q) {
      RandomConditionOptions cond_options;
      cond_options.num_atoms = 2 + rng.NextIndex(5);
      const ConditionPtr cond = RandomCondition(domains, cond_options, &rng);
      AttributeSet attrs;
      attrs.Add(static_cast<int>(rng.NextIndex(schema.num_attributes())));
      const std::unique_ptr<PlannerStrategy> planner =
          MakePlanner(Strategy::kGenCompact, &handle);
      const Result<PlanPtr> plan = planner->Plan(cond, attrs);
      if (!plan.ok()) continue;

      Executor sequential(&source);
      const Result<RowSet> seq = sequential.Execute(**plan);
      ASSERT_TRUE(seq.ok()) << seq.status().ToString();

      Executor parallel(&source, &pool);
      const Result<RowSet> par = parallel.Execute(**plan);
      ASSERT_TRUE(par.ok()) << par.status().ToString();

      EXPECT_EQ(par->size(), seq->size());
      for (const Row& row : seq->rows()) EXPECT_TRUE(par->Contains(row));
      EXPECT_EQ(parallel.stats().source_queries,
                sequential.stats().source_queries);
      EXPECT_EQ(parallel.stats().rows_transferred,
                sequential.stats().rows_transferred);
      EXPECT_DOUBLE_EQ(
          parallel.stats().TrueCost(description.k1(), description.k2()),
          sequential.stats().TrueCost(description.k1(), description.k2()));
      ++executed;
    }
  }
  EXPECT_GE(executed, 20u);  // the sweep must actually exercise plans
}

TEST_F(ExecFixture, ParallelErrorMatchesSequentialStatus) {
  ThreadPool pool(4);
  Executor executor(&source_, &pool);
  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})),
       PlanNode::SourceQuery(Parse("k = \"odd\" and v < 5"), Attrs({"v"}))});
  EXPECT_EQ(executor.Execute(*plan).status().code(), StatusCode::kUnsupported);
}

TEST_F(ExecFixture, ParallelUnsupportedPropagatesFromEightThreads) {
  // One unsupported leaf among many healthy ones, raced across 8 workers:
  // the error must surface (not deadlock, not leak a blocked fetch) and the
  // executor must remain usable for the next execution.
  ThreadPool pool(8);
  Executor executor(&source_, &pool);
  std::vector<PlanPtr> children;
  for (int i = 1; i <= 7; ++i) {
    children.push_back(PlanNode::SourceQuery(
        Parse("v < " + std::to_string(i)), Attrs({"v"})));
  }
  children.push_back(
      PlanNode::SourceQuery(Parse("k = \"odd\" and v < 5"), Attrs({"v"})));
  const PlanPtr plan = PlanNode::UnionOf(std::move(children));
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(executor.Execute(*plan).status().code(),
              StatusCode::kUnsupported);
  }
  const PlanPtr healthy = PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"}));
  EXPECT_TRUE(executor.Execute(*healthy).ok());
}

TEST_F(ExecFixture, ParallelUnavailablePropagatesFromEightThreads) {
  // Every call fails: a hard outage. All 8 branches race to fail; the
  // surfaced status is the first (by plan order) child's failure.
  FaultPolicy dead;
  dead.outages.push_back({0, 1u << 20});
  source_.set_fault_policy(dead);
  ThreadPool pool(8);
  Executor executor(&source_, &pool);
  std::vector<PlanPtr> children;
  for (int i = 1; i <= 8; ++i) {
    children.push_back(PlanNode::SourceQuery(
        Parse("v < " + std::to_string(i)), Attrs({"v"})));
  }
  const PlanPtr plan = PlanNode::UnionOf(std::move(children));
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(executor.stats().failed_sub_queries, 8u);
}

TEST_F(ExecFixture, ParallelDegradedUnionKeepsSurvivingBranches) {
  // Exactly one injected failure under 8-way parallelism with degradation:
  // whichever branch draws it is dropped, every other branch answers, and
  // the partial answer is annotated. Repeated to exercise different
  // interleavings; counters must come out identical every time.
  source_.set_fault_policy(FaultPolicy{});
  ThreadPool pool(8);
  ExecOptions options;
  options.degrade_unions = true;
  for (int round = 0; round < 5; ++round) {
    source_.fault_injector()->FailNextN(1);
    Executor executor(&source_, &pool, options);
    std::vector<PlanPtr> children;
    for (int i = 1; i <= 8; ++i) {
      children.push_back(PlanNode::SourceQuery(
          Parse("v < " + std::to_string(i)), Attrs({"v"})));
    }
    const PlanPtr plan = PlanNode::UnionOf(std::move(children));
    const Result<RowSet> rows = executor.Execute(*plan);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(executor.stats().dropped_branches, 1u);
    EXPECT_EQ(executor.stats().source_queries, 7u);
    EXPECT_EQ(executor.dropped_sub_queries().size(), 1u);
    // The widest surviving branch is v < 8 or v < 7; either way at least
    // the v < 7 rows are present.
    EXPECT_GE(rows->size(), 7u);
  }
}

TEST_F(ExecFixture, DuplicateFailedFetchIsEvictedAndRefetched) {
  // The same sub-query appears at positions 0 and 2; position 0's fetch
  // fails (scripted) and is degraded away. The failure must NOT poison the
  // dedup map: position 2 re-fetches and succeeds.
  source_.set_fault_policy(FaultPolicy{});
  source_.fault_injector()->FailNextN(1);
  ExecOptions options;
  options.degrade_unions = true;
  Executor executor(&source_, nullptr, options);
  const PlanPtr dup = PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"}));
  const PlanPtr plan = PlanNode::UnionOf(
      {dup, PlanNode::SourceQuery(Parse("v >= 4"), Attrs({"v"})), dup});
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // v >= 4 (6 rows) ∪ re-fetched v < 6 (6 rows) = all 10 values.
  EXPECT_EQ(rows->size(), 10u);
  EXPECT_EQ(executor.stats().dropped_branches, 1u);
  EXPECT_EQ(executor.stats().source_queries, 2u);  // the two successes
  EXPECT_EQ(executor.stats().failed_sub_queries, 1u);
  // Three round trips reached the source: fail, success, re-fetch success.
  EXPECT_EQ(source_.stats().queries_received, 3u);
}

TEST_F(ExecFixture, ConcurrentWaitersObserveEvictionAndRefetch) {
  // Regression for the dedup eviction race: the owner of a failed fetch
  // must evict the map entry BEFORE signalling readiness, and a waiter that
  // observes a retryable failure must loop back and re-fetch on a fresh
  // entry instead of inheriting the failure. Eight identical branches race
  // on one sub-query; the scripted fault burns exactly one fetch
  // generation, so exactly two round trips reach the source no matter how
  // the threads interleave.
  source_.set_fault_policy(FaultPolicy{});
  ThreadPool pool(8);
  ExecOptions options;
  options.degrade_unions = true;
  for (int round = 0; round < 5; ++round) {
    source_.fault_injector()->FailNextN(1);
    source_.ResetStats();
    Executor executor(&source_, &pool, options);
    std::vector<PlanPtr> children;
    for (int i = 0; i < 8; ++i) {
      children.push_back(PlanNode::SourceQuery(Parse("v < 6"), Attrs({"v"})));
    }
    const PlanPtr plan = PlanNode::UnionOf(std::move(children));
    const Result<RowSet> rows = executor.Execute(*plan);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    EXPECT_EQ(rows->size(), 6u);
    EXPECT_EQ(executor.stats().dropped_branches, 1u);  // the doomed owner
    EXPECT_EQ(executor.stats().failed_sub_queries, 1u);
    EXPECT_EQ(executor.stats().source_queries, 1u);  // one success, shared
    EXPECT_EQ(source_.stats().queries_received, 2u);  // fail + re-fetch
    EXPECT_EQ(executor.failed_sub_query_keys().size(), 1u);
  }
}

}  // namespace
}  // namespace gencompact
