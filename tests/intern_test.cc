// Hash-consed condition identity (DESIGN.md "Identity & interning"):
//  - pool semantics: structurally equal trees are pointer-identical, nodes
//    die when the last reference drops, ids are never reused;
//  - parity: the interned pipeline plans and answers randomized queries
//    exactly like the ablation (interning disabled) pipeline — identical
//    feasibility, plan structure, cost, and rows, with DESIGN.md §5
//    invariants 1 (validator accepts) and 2 (exact answers) asserted inline
//    in both modes;
//  - a multi-threaded hammer: concurrent factories over overlapping
//    condition sets return pointer-identical roots, with node churn racing
//    the pool's unlink path (run under TSan/ASan in scripts/ci.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cost/cost_model.h"
#include "exec/executor.h"
#include "exec/source.h"
#include "expr/condition_eval.h"
#include "expr/condition_parser.h"
#include "expr/intern.h"
#include "plan/plan_printer.h"
#include "plan/plan_validator.h"
#include "planner/planner.h"
#include "planner/source_handle.h"
#include "ssdl/check.h"
#include "ssdl/check_memo.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact {
namespace {

// ---------------------------------------------------------------------------
// Pool semantics.

TEST(ConditionInternTest, StructurallyEqualParsesArePointerIdentical) {
  const Result<ConditionPtr> a = ParseCondition("a = 1 and (b = 2 or c = 3)");
  const Result<ConditionPtr> b = ParseCondition("a = 1 and (b = 2 or c = 3)");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->get(), b->get());  // the tentpole: identity IS equality
  EXPECT_EQ((*a)->id(), (*b)->id());
  EXPECT_EQ((*a)->fingerprint(), (*b)->fingerprint());

  const Result<ConditionPtr> c = ParseCondition("a = 1 and (b = 2 or c = 4)");
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->get(), c->get());
  EXPECT_NE((*a)->id(), (*c)->id());
}

TEST(ConditionInternTest, SubtreesAreSharedAcrossDistinctRoots) {
  const Result<ConditionPtr> a = ParseCondition("x = 1 and y = 2");
  const Result<ConditionPtr> b = ParseCondition("x = 1 and z = 3");
  ASSERT_TRUE(a.ok() && b.ok());
  // The "x = 1" leaf is one node, referenced by both roots.
  EXPECT_EQ((*a)->children()[0].get(), (*b)->children()[0].get());
}

TEST(ConditionInternTest, DeadNodesLeaveThePoolAndIdsNeverReused) {
  const ConditionInterner::Stats baseline = ConditionInterner::Global().stats();
  ConditionId first_id = 0;
  {
    const Result<ConditionPtr> cond = ParseCondition("zz = 42 and qq = 7");
    ASSERT_TRUE(cond.ok());
    first_id = (*cond)->id();
    EXPECT_GT(ConditionInterner::Global().stats().live_nodes,
              baseline.live_nodes);
  }
  // Last reference dropped: the nodes are gone from the pool...
  EXPECT_EQ(ConditionInterner::Global().stats().live_nodes,
            baseline.live_nodes);
  // ...and re-interning the same structure mints a fresh, larger id, so no
  // downstream id-keyed cache can alias the dead condition.
  const Result<ConditionPtr> again = ParseCondition("zz = 42 and qq = 7");
  ASSERT_TRUE(again.ok());
  EXPECT_GT((*again)->id(), first_id);
}

TEST(ConditionInternTest, DisabledModeBuildsFreshNodesWithEqualFingerprints) {
  ScopedInterningDisabled off;
  const Result<ConditionPtr> a = ParseCondition("a = 1 and b = 2");
  const Result<ConditionPtr> b = ParseCondition("a = 1 and b = 2");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->get(), b->get());  // no consing
  EXPECT_NE((*a)->id(), (*b)->id());
  // Fingerprints are structure-determined in both modes, so ConditionSet
  // (rewrite closure, simplify idempotence) behaves identically.
  EXPECT_EQ((*a)->fingerprint(), (*b)->fingerprint());
  EXPECT_TRUE((*a)->StructurallyEquals(**b));

  ConditionSet set;
  EXPECT_TRUE(set.Insert(*a));
  EXPECT_FALSE(set.Insert(*b));
  EXPECT_EQ(set.size(), 1u);
}

// ---------------------------------------------------------------------------
// Parity: interned vs ablation pipeline over randomized workloads.

struct QueryOutcome {
  bool feasible = false;
  std::string plan_text;
  double cost = 0.0;
  std::optional<RowSet> rows;
};

class ConditionInternParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConditionInternParityTest, PlansAndAnswersMatchAblation) {
  const uint64_t seed = GetParam();
  const Schema schema({{"s1", ValueType::kString},
                       {"s2", ValueType::kString},
                       {"n1", ValueType::kInt},
                       {"n2", ValueType::kInt}});
  Rng rng(seed * 31);
  const std::unique_ptr<Table> table =
      MakeRandomTable("src", schema, 300, 10, 40, &rng);
  RandomCapabilityOptions cap_options;
  cap_options.download_probability = 0.5;
  const SourceDescription description =
      RandomCapability("src", schema, cap_options, &rng);
  const std::vector<AttributeDomain> domains = ExtractDomains(*table, 5, &rng);
  const RowLayout full(schema.AllAttributes(), 4);

  // Queries as (text, projection) specs, so both phases rebuild the
  // condition through their own factory mode.
  struct QuerySpec {
    std::string text;
    AttributeSet attrs;
  };
  std::vector<QuerySpec> specs;
  for (int q = 0; q < 12; ++q) {
    RandomConditionOptions cond_options;
    cond_options.num_atoms = 1 + rng.NextIndex(8);
    const ConditionPtr cond = RandomCondition(domains, cond_options, &rng);
    QuerySpec spec;
    spec.text = cond->ToString();
    spec.attrs.Add(static_cast<int>(rng.NextIndex(4)));
    spec.attrs.Add(static_cast<int>(rng.NextIndex(4)));
    specs.push_back(std::move(spec));
  }

  // One full pipeline pass: fresh handle (fresh Checker memo), plan,
  // validate (invariant 1), execute, check exactness against direct
  // evaluation (invariant 2).
  const auto run_pipeline = [&]() -> std::vector<QueryOutcome> {
    std::vector<QueryOutcome> outcomes;
    SourceHandle handle(description, table.get());
    Source source(table.get(), &handle.description());
    const std::unique_ptr<PlannerStrategy> planner =
        MakePlanner(Strategy::kGenCompact, &handle);
    for (const QuerySpec& spec : specs) {
      const Result<ConditionPtr> cond = ParseCondition(spec.text);
      EXPECT_TRUE(cond.ok()) << spec.text;
      QueryOutcome outcome;
      const Result<PlanPtr> plan = planner->Plan(*cond, spec.attrs);
      if (!plan.ok()) {
        EXPECT_EQ(plan.status().code(), StatusCode::kNoFeasiblePlan);
        outcomes.push_back(std::move(outcome));
        continue;
      }
      outcome.feasible = true;
      // Invariant 1: every emitted plan passes the validator.
      EXPECT_TRUE(
          ValidatePlanFor(**plan, spec.attrs, handle.checker()).ok())
          << spec.text;
      outcome.plan_text = PrintPlan(**plan, schema, &handle.cost_model());
      outcome.cost = handle.cost_model().PlanCost(**plan);
      Executor executor(&source);
      Result<RowSet> rows = executor.Execute(**plan);
      EXPECT_TRUE(rows.ok()) << spec.text;
      if (rows.ok()) {
        // Invariant 2: exactly π_A(σ_C(R)).
        RowSet truth(RowLayout(spec.attrs, 4));
        for (const Row& row : table->rows()) {
          const Result<bool> match = EvalCondition(**cond, row, full, schema);
          EXPECT_TRUE(match.ok());
          if (match.ok() && *match) {
            truth.Insert(full.Project(row, truth.layout()));
          }
        }
        EXPECT_EQ(rows->size(), truth.size()) << spec.text;
        outcome.rows = std::move(rows).value();
      }
      outcomes.push_back(std::move(outcome));
    }
    return outcomes;
  };

  ASSERT_TRUE(ConditionInterner::enabled());
  const std::vector<QueryOutcome> interned = run_pipeline();
  std::vector<QueryOutcome> ablation;
  {
    ScopedInterningDisabled off;
    ablation = run_pipeline();
  }

  ASSERT_EQ(interned.size(), ablation.size());
  size_t feasible = 0;
  for (size_t i = 0; i < interned.size(); ++i) {
    SCOPED_TRACE(specs[i].text);
    ASSERT_EQ(interned[i].feasible, ablation[i].feasible);
    if (!interned[i].feasible) continue;
    ++feasible;
    // Identical plan structure and cost, bit for bit.
    EXPECT_EQ(interned[i].plan_text, ablation[i].plan_text);
    EXPECT_EQ(interned[i].cost, ablation[i].cost);
    ASSERT_TRUE(interned[i].rows.has_value() && ablation[i].rows.has_value());
    EXPECT_EQ(interned[i].rows->size(), ablation[i].rows->size());
    for (const Row& row : interned[i].rows->rows()) {
      EXPECT_TRUE(ablation[i].rows->Contains(row));
    }
  }
  EXPECT_GT(feasible, 0u) << "workload produced no feasible queries";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConditionInternParityTest,
                         ::testing::Values(1, 2, 3, 4));

// ---------------------------------------------------------------------------
// Ablation × the cross-query Check memo. The second level is keyed by
// structural fingerprint, which both interning modes compute identically —
// so results cached by interned conditions must be reachable from ablated
// rebuilds of the same trees (whose ConditionIds are all fresh), and
// 100% verify-on-hit proves every such cross-mode hit returns the exact
// family a fresh Earley run would.

TEST(ConditionInternCheckMemoTest, AblationSharesCheckResultsThroughMemo) {
  const Schema schema({{"s1", ValueType::kString},
                       {"s2", ValueType::kString},
                       {"n1", ValueType::kInt},
                       {"n2", ValueType::kInt}});
  Rng rng(4391);
  const std::unique_ptr<Table> table =
      MakeRandomTable("src", schema, 100, 8, 30, &rng);
  const SourceDescription description =
      RandomCapability("src", schema, RandomCapabilityOptions{}, &rng);
  SourceHandle handle(description, table.get());
  const std::vector<AttributeDomain> domains = ExtractDomains(*table, 5, &rng);
  const auto sorted = [](std::vector<AttributeSet> family) {
    std::sort(family.begin(), family.end());
    return family;
  };

  CheckMemo memo(/*capacity=*/128, /*shards=*/2, /*verify_rate=*/1.0);
  std::vector<std::string> texts;
  std::vector<std::vector<AttributeSet>> families;
  {
    ASSERT_TRUE(ConditionInterner::enabled());
    Checker checker(&handle.description());
    checker.EnableSharedMemo(&memo, /*source_id=*/7, /*epoch=*/3);
    for (int i = 0; i < 10; ++i) {
      RandomConditionOptions cond_options;
      cond_options.num_atoms = 1 + rng.NextIndex(5);
      const ConditionPtr cond = RandomCondition(domains, cond_options, &rng);
      texts.push_back(cond->ToString());
      families.push_back(sorted(checker.Check(*cond)));
    }
  }
  // Every interned condition above is dead now; only the fingerprint-keyed
  // memo entries survive. Rebuild each tree with interning disabled.
  {
    ScopedInterningDisabled off;
    Checker checker(&handle.description());
    checker.EnableSharedMemo(&memo, /*source_id=*/7, /*epoch=*/3);
    for (size_t i = 0; i < texts.size(); ++i) {
      SCOPED_TRACE(texts[i]);
      const Result<ConditionPtr> cond = ParseCondition(texts[i]);
      ASSERT_TRUE(cond.ok());
      EXPECT_EQ(sorted(checker.Check(**cond)), families[i]);
    }
    // Every ablated Check was answered by the shared level. (Earley still
    // ran once per hit — that's the 100% verify-on-hit re-check, not a
    // miss.)
    EXPECT_EQ(checker.num_shared_hits(), texts.size());
  }
  EXPECT_GT(memo.stats().verified_hits, 0u);
  EXPECT_EQ(memo.stats().verify_mismatches, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency hammer (run under TSan and ASan by scripts/ci.sh).

TEST(ConditionInternHammerTest, ThreadsInterningOverlappingSetsAgree) {
  // Overlapping specs with heavy shared substructure, so threads constantly
  // collide on the same pool shards.
  std::vector<std::string> specs;
  for (int i = 0; i < 24; ++i) {
    specs.push_back("a = " + std::to_string(i % 6) + " and (b = " +
                    std::to_string(i % 4) + " or c = " + std::to_string(i % 3) +
                    ") and d contains \"x" + std::to_string(i % 2) + "\"");
  }

  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 40;
  const ConditionInterner::Stats baseline = ConditionInterner::Global().stats();

  std::vector<std::vector<ConditionPtr>> held(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &specs, &held]() {
      for (size_t round = 0; round < kRounds; ++round) {
        for (size_t i = 0; i < specs.size(); ++i) {
          // Rotate per thread so different threads hit the same spec at
          // different times from different directions.
          const std::string& text = specs[(i + t * 3 + round) % specs.size()];
          Result<ConditionPtr> cond = ParseCondition(text);
          ASSERT_TRUE(cond.ok());
          // Churn: derive and immediately drop a fresh conjunction, racing
          // node destruction (the pool's unlink path) against interning.
          {
            const Result<ConditionPtr> extra =
                ParseCondition("(" + text + ") and e < " +
                               std::to_string(round % 7));
            ASSERT_TRUE(extra.ok());
          }
          if (round + 1 == kRounds) {
            held[t].push_back(std::move(cond).value());
          }
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // Every thread resolved each spec to the exact same node.
  for (size_t t = 1; t < kThreads; ++t) {
    ASSERT_EQ(held[t].size(), held[0].size());
  }
  // held[t] stores specs in thread-rotated order; compare via sorted ids.
  const auto sorted_ptrs = [](const std::vector<ConditionPtr>& conds) {
    std::vector<const ConditionNode*> ptrs;
    ptrs.reserve(conds.size());
    for (const ConditionPtr& cond : conds) ptrs.push_back(cond.get());
    std::sort(ptrs.begin(), ptrs.end());
    return ptrs;
  };
  const std::vector<const ConditionNode*> reference = sorted_ptrs(held[0]);
  for (size_t t = 1; t < kThreads; ++t) {
    EXPECT_EQ(sorted_ptrs(held[t]), reference);
  }

  // Dropping every reference empties the pool back to its baseline: the
  // weak-entry pool holds nothing alive (ASan leak check corroborates).
  held.clear();
  const ConditionInterner::Stats after = ConditionInterner::Global().stats();
  EXPECT_EQ(after.live_nodes, baseline.live_nodes);
  EXPECT_GT(after.hits, baseline.hits);
}

}  // namespace
}  // namespace gencompact
