#include <gtest/gtest.h>

#include "cost/cardinality.h"
#include "cost/cost_model.h"
#include "expr/condition_parser.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

class EstimationFixture : public ::testing::Test {
 protected:
  EstimationFixture()
      : schema_({{"cat", ValueType::kString},
                 {"n", ValueType::kInt},
                 {"text", ValueType::kString}}),
        table_("t", schema_) {
    // 1000 rows: cat in {c0..c9} uniform; n = 0..999; text has "needle" in
    // exactly 10% of rows.
    for (int i = 0; i < 1000; ++i) {
      EXPECT_TRUE(
          table_
              .AppendValues({Value::String("c" + std::to_string(i % 10)),
                             Value::Int(i),
                             Value::String(i % 10 == 3 ? "has needle here"
                                                       : "plain text")})
              .ok());
    }
    stats_ = TableStats::Compute(table_);
    estimator_ =
        std::make_unique<StatsCardinalityEstimator>(&schema_, &stats_);
  }

  double Selectivity(const std::string& cond) {
    return EstimateSelectivity(*Parse(cond), schema_, stats_);
  }

  Schema schema_;
  Table table_;
  TableStats stats_;
  std::unique_ptr<StatsCardinalityEstimator> estimator_;
};

TEST_F(EstimationFixture, EqualityUsesExactCommonValueCounts) {
  // 10 categories tracked exactly (kMaxCommonValues = 32).
  EXPECT_NEAR(Selectivity("cat = \"c3\""), 0.1, 0.01);
  EXPECT_NEAR(Selectivity("cat = \"nope\""), 0.0, 1e-9);
}

TEST_F(EstimationFixture, RangeUsesHistogram) {
  EXPECT_NEAR(Selectivity("n < 500"), 0.5, 0.05);
  EXPECT_NEAR(Selectivity("n >= 900"), 0.1, 0.05);
  EXPECT_NEAR(Selectivity("n < 0"), 0.0, 1e-9);
  EXPECT_NEAR(Selectivity("n <= 999"), 1.0, 0.01);
}

TEST_F(EstimationFixture, ContainsUsesValueSample) {
  EXPECT_NEAR(Selectivity("text contains \"needle\""), 0.1, 0.06);
  EXPECT_LT(Selectivity("text contains \"absent-token\""), 0.02);
}

TEST_F(EstimationFixture, ConnectivesCombine) {
  const double eq = Selectivity("cat = \"c3\"");
  const double range = Selectivity("n < 500");
  EXPECT_NEAR(Selectivity("cat = \"c3\" and n < 500"), eq * range, 1e-9);
  EXPECT_NEAR(Selectivity("cat = \"c3\" or n < 500"),
              1 - (1 - eq) * (1 - range), 1e-9);
  EXPECT_NEAR(Selectivity("true"), 1.0, 1e-12);
}

TEST_F(EstimationFixture, EstimateRowsScalesByTableSize) {
  EXPECT_NEAR(estimator_->EstimateRows(*Parse("cat = \"c3\"")), 100, 10);
}

TEST_F(EstimationFixture, ResultRowsCappedByDistinctCombinations) {
  // Projecting `cat` only: at most 10 distinct values, even though ~500
  // rows satisfy the predicate.
  AttributeSet cat_only;
  cat_only.Add(0);
  EXPECT_LE(estimator_->EstimateResultRows(*Parse("n < 500"), cat_only), 10.0);
  // Projecting n keeps the full estimate.
  AttributeSet n_only;
  n_only.Add(1);
  EXPECT_NEAR(estimator_->EstimateResultRows(*Parse("n < 500"), n_only), 500,
              50);
}

TEST_F(EstimationFixture, EqualityPinsDistinctBound) {
  AttributeSet cat_only;
  cat_only.Add(0);
  // cat = "c3" pins cat to one value regardless of how many rows match.
  EXPECT_LE(
      estimator_->EstimateResultRows(*Parse("cat = \"c3\""), cat_only), 1.0);
  // A value list pins it to the list size.
  EXPECT_LE(estimator_->EstimateResultRows(
                *Parse("cat = \"c3\" or cat = \"c4\""), cat_only),
            2.0);
  // Conjunct with an eq on cat pins cat even when other conjuncts exist.
  EXPECT_LE(estimator_->EstimateResultRows(
                *Parse("cat = \"c3\" and n < 500"), cat_only),
            1.0);
}

TEST_F(EstimationFixture, DistinctBoundHelper) {
  const int cat = 0;
  EXPECT_EQ(estimator_->DistinctBoundFromCondition(*Parse("cat = \"x\""), cat),
            1.0);
  EXPECT_EQ(estimator_->DistinctBoundFromCondition(
                *Parse("cat = \"x\" or cat = \"y\" or cat = \"z\""), cat),
            3.0);
  EXPECT_FALSE(estimator_
                   ->DistinctBoundFromCondition(*Parse("cat contains \"x\""),
                                                cat)
                   .has_value());
  EXPECT_FALSE(estimator_
                   ->DistinctBoundFromCondition(
                       *Parse("cat = \"x\" or n < 5"), cat)
                   .has_value());
  EXPECT_EQ(estimator_->DistinctBoundFromCondition(
                *Parse("n < 5 and cat = \"x\""), cat),
            1.0);
}

TEST_F(EstimationFixture, SelectivityClampedToUnitInterval) {
  std::vector<ConditionPtr> many;
  for (int i = 0; i < 20; ++i) {
    many.push_back(Parse("n >= 0"));
  }
  const double s =
      EstimateSelectivity(*ConditionNode::Or(std::move(many)), schema_, stats_);
  EXPECT_LE(s, 1.0);
  EXPECT_GE(s, 0.0);
}

TEST(EstimationEdgeTest, EmptyTable) {
  const Schema schema({{"a", ValueType::kInt}});
  Table table("t", schema);
  const TableStats stats = TableStats::Compute(table);
  const StatsCardinalityEstimator estimator(&schema, &stats);
  EXPECT_EQ(estimator.EstimateRows(*ParseCondition("a = 1").value()), 0.0);
}

TEST(EstimationEdgeTest, UnknownAttributeUsesDefault) {
  const Schema schema({{"a", ValueType::kInt}});
  Table table("t", schema);
  ASSERT_TRUE(table.AppendValues({Value::Int(1)}).ok());
  const TableStats stats = TableStats::Compute(table);
  // A condition over an attribute missing from the schema falls back to the
  // default selectivity instead of crashing.
  const double s = EstimateSelectivity(
      *ParseCondition("zzz = 1").value(), schema, stats);
  EXPECT_GT(s, 0.0);
  EXPECT_LE(s, 1.0);
}

}  // namespace
}  // namespace gencompact
