#include <gtest/gtest.h>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/value.h"

namespace gencompact {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = Status::Unsupported("no such capability");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kUnsupported);
  EXPECT_EQ(status.ToString(), "Unsupported: no such capability");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("nope");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(ValueTest, TypeTags) {
  EXPECT_EQ(Value::Null().type(), ValueType::kNull);
  EXPECT_EQ(Value::Bool(true).type(), ValueType::kBool);
  EXPECT_EQ(Value::Int(3).type(), ValueType::kInt);
  EXPECT_EQ(Value::Double(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value::String("x").type(), ValueType::kString);
}

TEST(ValueTest, NumericCrossTypeEquality) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
  EXPECT_LT(Value::Int(2), Value::Double(2.5));
}

TEST(ValueTest, StringOrdering) {
  EXPECT_LT(Value::String("abc"), Value::String("abd"));
  EXPECT_EQ(Value::String("abc"), Value::String("abc"));
}

TEST(ValueTest, ToStringEscapesQuotes) {
  EXPECT_EQ(Value::String("a\"b").ToString(), "\"a\\\"b\"");
  EXPECT_EQ(Value::String("a\\b").ToString(), "\"a\\\\b\"");
}

TEST(ValueTest, CrossTypeComparisonIsStable) {
  // Incomparable types order by type rank, deterministically.
  EXPECT_NE(Value::Int(1).Compare(Value::String("1")), 0);
  EXPECT_EQ(Value::Int(1).Compare(Value::String("1")),
            -Value::String("1").Compare(Value::Int(1)));
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StringsTest, ContainsAndStartsWith) {
  EXPECT_TRUE(Contains("interpretation of dreams", "dreams"));
  EXPECT_FALSE(Contains("dream", "dreams"));
  EXPECT_TRUE(StartsWith("BMW 3", "BMW"));
  EXPECT_FALSE(StartsWith("BMW", "BMW 3"));
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, NextBelowIsInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, NextIntCoversRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const int64_t v = rng.NextInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo = saw_lo || v == -2;
    saw_hi = saw_hi || v == 2;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace gencompact
