#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/condition_eval.h"
#include "expr/condition_parser.h"
#include "expr/normal_forms.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

TEST(NormalFormsTest, AtomIsBothForms) {
  const ConditionPtr atom = Parse("a = 1");
  EXPECT_TRUE(IsCnf(*atom));
  EXPECT_TRUE(IsDnf(*atom));
  EXPECT_TRUE((*ToCnf(atom))->StructurallyEquals(*atom));
  EXPECT_TRUE((*ToDnf(atom))->StructurallyEquals(*atom));
}

TEST(NormalFormsTest, BookstoreExampleToCnf) {
  // (a1 ∨ a2) ∧ t is already CNF.
  const ConditionPtr cond =
      Parse("(author = \"F\" or author = \"J\") and title contains \"d\"");
  const Result<ConditionPtr> cnf = ToCnf(cond);
  ASSERT_TRUE(cnf.ok());
  EXPECT_TRUE(IsCnf(**cnf));
  EXPECT_EQ((*cnf)->children().size(), 2u);
}

TEST(NormalFormsTest, BookstoreExampleToDnf) {
  // (a1 ∨ a2) ∧ t distributes to (a1∧t) ∨ (a2∧t).
  const ConditionPtr cond =
      Parse("(author = \"F\" or author = \"J\") and title contains \"d\"");
  const Result<ConditionPtr> dnf = ToDnf(cond);
  ASSERT_TRUE(dnf.ok());
  EXPECT_TRUE(IsDnf(**dnf));
  ASSERT_EQ((*dnf)->kind(), ConditionNode::Kind::kOr);
  EXPECT_EQ((*dnf)->children().size(), 2u);
  EXPECT_EQ((*dnf)->children()[0]->children().size(), 2u);
}

TEST(NormalFormsTest, CarExampleDnfHasFourTerms) {
  // The paper: the DNF system transforms the car query into one with four
  // terms. style ∧ (2 sizes) ∧ (2 make-price pairs) -> 4 disjuncts.
  const ConditionPtr cond = Parse(
      "style = \"sedan\" and (size = \"compact\" or size = \"midsize\") and "
      "((make = \"Toyota\" and price <= 20000) or "
      "(make = \"BMW\" and price <= 40000))");
  const Result<ConditionPtr> dnf = ToDnf(cond);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ((*dnf)->kind(), ConditionNode::Kind::kOr);
  EXPECT_EQ((*dnf)->children().size(), 4u);
}

TEST(NormalFormsTest, CarExampleCnfHasSixClauses) {
  // The paper: a CNF system converts the car query to one with six clauses.
  const ConditionPtr cond = Parse(
      "style = \"sedan\" and (size = \"compact\" or size = \"midsize\") and "
      "((make = \"Toyota\" and price <= 20000) or "
      "(make = \"BMW\" and price <= 40000))");
  const Result<ConditionPtr> cnf = ToCnf(cond);
  ASSERT_TRUE(cnf.ok());
  ASSERT_EQ((*cnf)->kind(), ConditionNode::Kind::kAnd);
  EXPECT_EQ((*cnf)->children().size(), 6u);
}

TEST(NormalFormsTest, BudgetGuardTrips) {
  // (a∨b) ∧ (a∨b) ∧ ... blows up exponentially in DNF.
  std::vector<ConditionPtr> clauses;
  for (int i = 0; i < 16; ++i) {
    clauses.push_back(Parse("a = " + std::to_string(i) + " or b = " +
                            std::to_string(i)));
  }
  const ConditionPtr cond = ConditionNode::And(std::move(clauses));
  const Result<ConditionPtr> dnf = ToDnf(cond, /*max_terms=*/1000);
  ASSERT_FALSE(dnf.ok());
  EXPECT_EQ(dnf.status().code(), StatusCode::kResourceExhausted);
}

// Property: normal forms are semantically equivalent to the original.
class NormalFormEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NormalFormEquivalenceTest, SameTruthTableOnRandomRows) {
  Rng rng(GetParam());
  const Schema schema({{"a", ValueType::kInt},
                       {"b", ValueType::kInt},
                       {"c", ValueType::kInt}});
  const RowLayout full(schema.AllAttributes(), 3);

  // Random condition over small integer domain.
  std::vector<ConditionPtr> pool;
  for (int i = 0; i < 6; ++i) {
    const std::string attr(1, static_cast<char>('a' + rng.NextIndex(3)));
    static constexpr CompareOp kOps[] = {CompareOp::kEq, CompareOp::kLt,
                                         CompareOp::kGe, CompareOp::kNe};
    pool.push_back(ConditionNode::Atom(attr, kOps[rng.NextIndex(4)],
                                       Value::Int(rng.NextInt(0, 3))));
  }
  const ConditionPtr cond = ConditionNode::And(
      {ConditionNode::Or({pool[0], pool[1]}),
       ConditionNode::Or({pool[2], ConditionNode::And({pool[3], pool[4]})}),
       pool[5]});

  const Result<ConditionPtr> cnf = ToCnf(cond);
  const Result<ConditionPtr> dnf = ToDnf(cond);
  ASSERT_TRUE(cnf.ok());
  ASSERT_TRUE(dnf.ok());
  EXPECT_TRUE(IsCnf(**cnf));
  EXPECT_TRUE(IsDnf(**dnf));

  for (int trial = 0; trial < 200; ++trial) {
    const Row row({Value::Int(rng.NextInt(0, 3)), Value::Int(rng.NextInt(0, 3)),
                   Value::Int(rng.NextInt(0, 3))});
    const bool expected = *EvalCondition(*cond, row, full, schema);
    EXPECT_EQ(*EvalCondition(**cnf, row, full, schema), expected);
    EXPECT_EQ(*EvalCondition(**dnf, row, full, schema), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalFormEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace gencompact
