// Invariant 6 (DESIGN.md): a conjunction is supported by the
// commutativity-closed description iff SOME permutation of its conjuncts is
// supported by the original description.

#include <algorithm>
#include <numeric>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "ssdl/check.h"
#include "ssdl/closure.h"
#include "workload/random_capability.h"

namespace gencompact {
namespace {

class ClosurePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ClosurePropertyTest, ClosedEqualsSomePermutationSupported) {
  Rng rng(GetParam());
  const Schema schema({{"s1", ValueType::kString},
                       {"s2", ValueType::kString},
                       {"n1", ValueType::kInt},
                       {"n2", ValueType::kInt}});
  RandomCapabilityOptions options;
  options.value_list_probability = 0;  // keep conjunct-permutation exactness
  const SourceDescription original =
      RandomCapability("src", schema, options, &rng);
  const SourceDescription closed = CommutativityClosure(original);
  Checker check_original(&original);
  Checker check_closed(&closed);

  for (int trial = 0; trial < 60; ++trial) {
    // Random conjunction of 1..4 atoms.
    const size_t n = 1 + rng.NextIndex(4);
    std::vector<ConditionPtr> atoms;
    for (size_t i = 0; i < n; ++i) {
      const int attr_index = static_cast<int>(rng.NextIndex(4));
      const AttributeDef& attr = schema.attribute(attr_index);
      static constexpr CompareOp kNumericOps[] = {CompareOp::kEq, CompareOp::kLt,
                                                  CompareOp::kLe, CompareOp::kGe};
      const CompareOp op = attr.type == ValueType::kInt
                               ? kNumericOps[rng.NextIndex(4)]
                               : (rng.NextBool(0.3) ? CompareOp::kContains
                                                    : CompareOp::kEq);
      atoms.push_back(ConditionNode::Atom(
          attr.name, op,
          attr.type == ValueType::kInt
              ? Value::Int(rng.NextInt(0, 9))
              : Value::String("v" + std::to_string(rng.NextIndex(3)))));
    }
    const ConditionPtr cond =
        ConditionNode::And(std::vector<ConditionPtr>(atoms));

    // Ground truth: try every permutation against the original description.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), size_t{0});
    std::vector<AttributeSet> union_of_exports;
    bool any_permutation = false;
    do {
      std::vector<ConditionPtr> permuted;
      for (size_t index : order) permuted.push_back(atoms[index]);
      const ConditionPtr permuted_cond =
          ConditionNode::And(std::move(permuted));
      const std::vector<AttributeSet>& family =
          check_original.Check(*permuted_cond);
      if (!family.empty()) any_permutation = true;
      for (const AttributeSet& f : family) union_of_exports.push_back(f);
    } while (std::next_permutation(order.begin(), order.end()));

    const std::vector<AttributeSet>& closed_family = check_closed.Check(*cond);
    ASSERT_EQ(!closed_family.empty(), any_permutation) << cond->ToString();

    // Every closed-description export must be attainable by some
    // permutation and vice versa (maximal-set comparison).
    for (const AttributeSet& f : closed_family) {
      bool matched = false;
      for (const AttributeSet& g : union_of_exports) {
        if (f.IsSubsetOf(g)) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << cond->ToString();
    }
    for (const AttributeSet& g : union_of_exports) {
      bool matched = false;
      for (const AttributeSet& f : closed_family) {
        if (g.IsSubsetOf(f)) {
          matched = true;
          break;
        }
      }
      EXPECT_TRUE(matched) << cond->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClosurePropertyTest,
                         ::testing::Values(7, 17, 27, 37, 47, 57));

}  // namespace
}  // namespace gencompact
