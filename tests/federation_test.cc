// N-source federation: parsing, planning, execution, two-source parity with
// the original JoinProcessor, row-vs-batch data-plane parity, and the fault
// interactions the ISSUE calls out — a breaker tripping mid-join, a paged
// result-bounded relation inside a 3-source join, and the avoid-set replan
// that adopts an alternate join order after a leaf failure. Every schedule
// runs on a FakeClock.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "exec/fault_policy.h"
#include "expr/condition_parser.h"
#include "mediator/federation.h"
#include "mediator/join.h"
#include "mediator/mediator.h"
#include "mediator/sql_parser.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

// cars: independent fetches by make/price, bindable on make (value lists).
// `extra` parameterizes the description (e.g. a result bound) per test.
constexpr const char* kCarsSsdlTemplate = R"(
  source cars(make: string, model: string, price: int) {
    cost 10.0 1.0;
    %s
    rule mlist -> make = $string or make = $string
                | make = $string or mlist;
    rule f -> make = $string
            | mlist
            | ( mlist )
            | price < $int
            | make = $string and price < $int;
    export f : {make, model, price};
  })";

// dealers: bind-only — every query must name a make (or a list of makes);
// there is no independent download.
constexpr const char* kDealersSsdl = R"(
  source dealers(make: string, city: string, rating: int) {
    cost 5.0 1.0;
    rule mlist -> make = $string or make = $string
                | make = $string or mlist;
    rule f -> make = $string
            | mlist
            | ( mlist )
            | make = $string and rating >= $int
            | ( mlist ) and rating >= $int;
    export f : {make, city, rating};
  })";

// reviews: independent fetches by score, bindable on model. `extra`
// parameterizes the description (e.g. a result bound) per test.
constexpr const char* kReviewsSsdlTemplate = R"(
  source reviews(model: string, score: int) {
    cost 10.0 1.0;
    %s
    rule mlist -> model = $string or model = $string
                | model = $string or mlist;
    rule f -> model = $string
            | mlist
            | ( mlist )
            | score >= $int
            | score >= $int and ( mlist )
            | score >= $int and model = $string
            | ( mlist ) and score >= $int
            | model = $string and score >= $int;
    export f : {model, score};
  })";

constexpr const char* kThreeWaySql =
    "SELECT cars.model, dealers.city, reviews.score FROM cars "
    "JOIN dealers ON cars.make = dealers.make "
    "JOIN reviews ON cars.model = reviews.model "
    "WHERE cars.price < 30000 and reviews.score >= 4";

// Ground truth for kThreeWaySql over the fixture tables:
//   (318i, Palo Alto, 4), (318i, San Jose, 4), (Camry, Palo Alto, 5).
constexpr size_t kThreeWayRows = 3;

std::vector<std::string> Signature(const RowSet& rows) {
  std::vector<std::string> out;
  for (const Row& row : rows.SortedRows()) {
    std::string sig;
    for (const Value& v : row.values()) {
      sig += ValueTypeName(v.type());
      sig += ':';
      sig += v.ToString();
      sig += '|';
    }
    out.push_back(std::move(sig));
  }
  std::sort(out.begin(), out.end());
  return out;
}

void RegisterFixtureSources(Mediator* mediator,
                            const std::string& reviews_extra = "",
                            const std::string& cars_extra = "") {
  char cars_ssdl[1024];
  std::snprintf(cars_ssdl, sizeof(cars_ssdl), kCarsSsdlTemplate,
                cars_extra.c_str());
  Result<SourceDescription> cars = ParseSsdl(cars_ssdl);
  Result<SourceDescription> dealers = ParseSsdl(kDealersSsdl);
  char reviews_ssdl[1024];
  std::snprintf(reviews_ssdl, sizeof(reviews_ssdl), kReviewsSsdlTemplate,
                reviews_extra.c_str());
  Result<SourceDescription> reviews = ParseSsdl(reviews_ssdl);
  ASSERT_TRUE(cars.ok()) << cars.status().ToString();
  ASSERT_TRUE(dealers.ok()) << dealers.status().ToString();
  ASSERT_TRUE(reviews.ok()) << reviews.status().ToString();

  auto cars_table = std::make_unique<Table>("cars", cars->schema());
  const auto add_car = [&](const char* make, const char* model,
                           int64_t price) {
    ASSERT_TRUE(cars_table
                    ->AppendValues({Value::String(make), Value::String(model),
                                    Value::Int(price)})
                    .ok());
  };
  add_car("BMW", "318i", 21000);
  add_car("BMW", "528i", 38000);
  add_car("Toyota", "Corolla", 13000);
  add_car("Toyota", "Camry", 19000);
  add_car("Saab", "900", 16000);

  auto dealers_table = std::make_unique<Table>("dealers", dealers->schema());
  const auto add_dealer = [&](const char* make, const char* city,
                              int64_t rating) {
    ASSERT_TRUE(dealers_table
                    ->AppendValues({Value::String(make), Value::String(city),
                                    Value::Int(rating)})
                    .ok());
  };
  add_dealer("BMW", "Palo Alto", 5);
  add_dealer("BMW", "San Jose", 3);
  add_dealer("Toyota", "Palo Alto", 4);
  add_dealer("Honda", "Fremont", 4);

  auto reviews_table = std::make_unique<Table>("reviews", reviews->schema());
  const auto add_review = [&](const char* model, int64_t score) {
    ASSERT_TRUE(
        reviews_table->AppendValues({Value::String(model), Value::Int(score)})
            .ok());
  };
  add_review("318i", 4);
  add_review("528i", 5);
  add_review("Corolla", 3);
  add_review("Camry", 5);
  add_review("900", 4);

  ASSERT_TRUE(
      mediator->RegisterSource(std::move(cars).value(), std::move(cars_table))
          .ok());
  ASSERT_TRUE(mediator
                  ->RegisterSource(std::move(dealers).value(),
                                   std::move(dealers_table))
                  .ok());
  ASSERT_TRUE(mediator
                  ->RegisterSource(std::move(reviews).value(),
                                   std::move(reviews_table))
                  .ok());
}

class FederationFixture : public ::testing::Test {
 protected:
  FederationFixture() {
    Mediator::Options options;
    options.partial_results = true;
    options.clock = &clock_;
    mediator_ = std::make_unique<Mediator>(options);
    RegisterFixtureSources(mediator_.get());
    entries_ = {*mediator_->catalog()->Find("cars"),
                *mediator_->catalog()->Find("dealers"),
                *mediator_->catalog()->Find("reviews")};
  }

  FederatedQuery ThreeWayQuery() {
    FederatedQuery query;
    query.sources = {"cars", "dealers", "reviews"};
    query.keys = {{"cars.make", "dealers.make"},
                  {"cars.model", "reviews.model"}};
    query.condition =
        std::move(ParseCondition(
                      "cars.price < 30000 and reviews.score >= 4"))
            .value();
    query.select = {"cars.model", "dealers.city", "reviews.score"};
    return query;
  }

  FakeClock clock_;
  std::unique_ptr<Mediator> mediator_;
  std::vector<CatalogEntry*> entries_;
};

// ---------------------------------------------------------------------------
// Federated SQL parsing
// ---------------------------------------------------------------------------

TEST(ParseFederatedSqlTest, ParsesThreeSourceChain) {
  const Result<ParsedFederatedQuery> parsed = ParseFederatedSql(kThreeWaySql);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->sources,
            (std::vector<std::string>{"cars", "dealers", "reviews"}));
  ASSERT_EQ(parsed->keys.size(), 2u);
  EXPECT_EQ(parsed->keys[0].first, "cars.make");
  EXPECT_EQ(parsed->keys[1].second, "reviews.model");
  EXPECT_EQ(parsed->select_list.size(), 3u);
  EXPECT_FALSE(parsed->condition->is_true());
}

TEST(ParseFederatedSqlTest, MultiKeyOnClause) {
  const Result<ParsedFederatedQuery> parsed = ParseFederatedSql(
      "SELECT * FROM a JOIN b ON a.x = b.x AND a.y = b.y JOIN c ON b.x = c.x");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->sources.size(), 3u);
  EXPECT_EQ(parsed->keys.size(), 3u);
  EXPECT_TRUE(parsed->condition->is_true());
}

TEST(ParseFederatedSqlTest, RejectsDuplicateSourcesAndMissingOn) {
  EXPECT_FALSE(
      ParseFederatedSql("SELECT * FROM a JOIN a ON a.x = a.y").ok());
  EXPECT_FALSE(
      ParseFederatedSql("SELECT * FROM a JOIN b ON a.x = b.x JOIN c").ok());
}

// ---------------------------------------------------------------------------
// Planning and execution
// ---------------------------------------------------------------------------

TEST_F(FederationFixture, OutputSchemaQualifiesEveryRelation) {
  FederationProcessor processor(entries_);
  const Result<Schema> schema = processor.OutputSchema(ThreeWayQuery());
  ASSERT_TRUE(schema.ok()) << schema.status().ToString();
  EXPECT_EQ(schema->num_attributes(), 8u);
  EXPECT_TRUE(schema->IndexOf("cars.make").has_value());
  EXPECT_TRUE(schema->IndexOf("dealers.city").has_value());
  EXPECT_TRUE(schema->IndexOf("reviews.score").has_value());
}

TEST_F(FederationFixture, PlanEnumeratesTheQueryGraph) {
  FederationProcessor processor(entries_);
  const Result<FederationPlanOutcome> outcome =
      processor.Plan(ThreeWayQuery());
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_EQ(outcome->graph.size(), 3u);
  EXPECT_EQ(outcome->graph.edges.size(), 2u);
  EXPECT_GT(outcome->estimated_cost, 0.0);
  EXPECT_GT(outcome->enumeration.stats.subsets_expanded, 0u);
  // The rendered tree names every relation.
  EXPECT_NE(outcome->tree.find("cars"), std::string::npos);
  EXPECT_NE(outcome->tree.find("dealers"), std::string::npos);
  EXPECT_NE(outcome->tree.find("reviews"), std::string::npos);
  // dealers is bind-only (no download): its independent fetch is infeasible
  // and its leaf plan absent.
  EXPECT_LT(outcome->graph.fetch_cost[1], 0.0);
  EXPECT_EQ(outcome->leaf_plans[1], nullptr);
}

TEST_F(FederationFixture, ExecutesThreeWayGroundTruth) {
  FederationProcessor processor(entries_);
  const Result<RowSet> rows = processor.Execute(ThreeWayQuery());
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), kThreeWayRows);
  EXPECT_GE(processor.stats().bind_batches, 1u);  // dealers must be bound
  EXPECT_EQ(processor.stats().joined_rows, kThreeWayRows);
}

TEST_F(FederationFixture, MixedResidualEvaluatesAtTheRoot) {
  FederatedQuery query = ThreeWayQuery();
  // A disjunction spanning cars and reviews cannot push down anywhere.
  query.condition =
      std::move(ParseCondition("cars.price < 30000 and "
                               "(cars.price < 15000 or reviews.score >= 5)"))
          .value();
  FederationProcessor processor(entries_);
  const Result<FederationPlanOutcome> outcome = processor.Plan(query);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->residual->is_true());

  const Result<RowSet> rows = processor.Execute(query);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  // price < 30000 joins: 318i (21000, score 4), Corolla (13000, score 3),
  // Camry (19000, score 5), each × their make's dealers. The residual keeps
  // Corolla (price < 15000; Toyota dealer Palo Alto) and Camry (score 5).
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(FederationFixture, ErrorsAreDiagnosable) {
  FederationProcessor processor(entries_);
  FederatedQuery query = ThreeWayQuery();
  query.condition = std::move(ParseCondition("cars.bogus = 1")).value();
  EXPECT_EQ(processor.Plan(query).status().code(), StatusCode::kNotFound);

  query = ThreeWayQuery();
  query.keys = {{"cars.make", "dealers.make"}};  // reviews disconnected
  EXPECT_EQ(processor.Plan(query).status().code(),
            StatusCode::kInvalidArgument);

  query = ThreeWayQuery();
  FederationOptions force;
  force.force_method = EdgeMethod::kBind;
  FederationProcessor forced(entries_, force);
  // force_method is a two-relation parity knob only.
  EXPECT_EQ(forced.Plan(query).status().code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Two-source regression parity with JoinProcessor
// ---------------------------------------------------------------------------

TEST_F(FederationFixture, TwoSourceParityWithJoinProcessor) {
  const auto join_query = [&]() {
    JoinQuery q;
    q.left_source = "cars";
    q.right_source = "dealers";
    q.keys = {{"cars.make", "dealers.make"}};
    q.condition = std::move(ParseCondition("cars.price < 30000")).value();
    q.select = {"cars.model", "dealers.city"};
    return q;
  }();
  const auto fed_query = [&]() {
    FederatedQuery q;
    q.sources = {"cars", "dealers"};
    q.keys = {{"cars.make", "dealers.make"}};
    q.condition = std::move(ParseCondition("cars.price < 30000")).value();
    q.select = {"cars.model", "dealers.city"};
    return q;
  }();

  JoinProcessor join_processor(entries_[0], entries_[1]);
  const Result<RowSet> join_rows = join_processor.Execute(join_query);
  ASSERT_TRUE(join_rows.ok()) << join_rows.status().ToString();

  FederationProcessor fed_processor({entries_[0], entries_[1]});
  const Result<RowSet> fed_rows = fed_processor.Execute(fed_query);
  ASSERT_TRUE(fed_rows.ok()) << fed_rows.status().ToString();

  EXPECT_EQ(Signature(*join_rows), Signature(*fed_rows));
  EXPECT_GT(join_rows->size(), 0u);

  // Forced methods agree too. dealers cannot run independently, so only the
  // bind side is feasible — kIndependent must fail identically in both.
  JoinOptions join_bind;
  join_bind.force_method = JoinMethod::kBind;
  JoinProcessor join_forced(entries_[0], entries_[1], join_bind);
  const Result<RowSet> join_bound = join_forced.Execute(join_query);
  ASSERT_TRUE(join_bound.ok()) << join_bound.status().ToString();

  FederationOptions fed_bind;
  fed_bind.force_method = EdgeMethod::kBind;
  FederationProcessor fed_forced({entries_[0], entries_[1]}, fed_bind);
  const Result<RowSet> fed_bound = fed_forced.Execute(fed_query);
  ASSERT_TRUE(fed_bound.ok()) << fed_bound.status().ToString();
  EXPECT_EQ(Signature(*join_bound), Signature(*fed_bound));

  JoinOptions join_ind;
  join_ind.force_method = JoinMethod::kIndependent;
  JoinProcessor join_ind_proc(entries_[0], entries_[1], join_ind);
  FederationOptions fed_ind;
  fed_ind.force_method = EdgeMethod::kIndependent;
  FederationProcessor fed_ind_proc({entries_[0], entries_[1]}, fed_ind);
  EXPECT_FALSE(join_ind_proc.Execute(join_query).ok());
  EXPECT_FALSE(fed_ind_proc.Execute(fed_query).ok());
}

// ---------------------------------------------------------------------------
// Row-vs-batch data-plane parity (PR 6 follow-through)
// ---------------------------------------------------------------------------

TEST_F(FederationFixture, RowAndBatchPlanesAgree) {
  FederationOptions row_options;
  row_options.exec.batch_width = 0;
  FederationProcessor row_processor(entries_, row_options);
  const Result<RowSet> row_rows = row_processor.Execute(ThreeWayQuery());
  ASSERT_TRUE(row_rows.ok()) << row_rows.status().ToString();

  for (const size_t width : {1u, 3u, 64u}) {
    FederationOptions batch_options;
    batch_options.exec.batch_width = width;
    FederationProcessor batch_processor(entries_, batch_options);
    const Result<RowSet> batch_rows =
        batch_processor.Execute(ThreeWayQuery());
    ASSERT_TRUE(batch_rows.ok())
        << "width " << width << ": " << batch_rows.status().ToString();
    EXPECT_EQ(Signature(*row_rows), Signature(*batch_rows))
        << "width " << width;
  }
  EXPECT_EQ(row_rows->size(), kThreeWayRows);
}

// ---------------------------------------------------------------------------
// Mediator dispatch and observability
// ---------------------------------------------------------------------------

TEST_F(FederationFixture, MediatorDispatchesThreeSourceSql) {
  const Result<Mediator::QueryResult> result = mediator_->Query(kThreeWaySql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), kThreeWayRows);
  EXPECT_TRUE(result->completeness.complete);
  EXPECT_GE(result->exec.source_queries, 3u);
  EXPECT_GT(result->true_cost, 0.0);
  EXPECT_GT(result->estimated_cost, 0.0);

  const Mediator::Stats stats = mediator_->StatsSnapshot();
  EXPECT_EQ(stats.join.federated_queries, 1u);
  EXPECT_GT(stats.join.plans_enumerated, 0u);
  EXPECT_GT(stats.join.dp_subsets_expanded, 0u);
  EXPECT_GE(stats.join.bind_edges_chosen, 1u);  // dealers is bind-only
  EXPECT_EQ(stats.join.greedy_fallbacks, 0u);
  // The /varz rendering carries the join block once federated queries ran.
  EXPECT_NE(stats.ToString().find("join.federated_queries"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault interactions
// ---------------------------------------------------------------------------

TEST_F(FederationFixture, BreakerTripsMidJoin) {
  // Fresh mediator with breakers on and a dead reviews source: the 3-way
  // join must fail (reviews is not an ∨-branch), the breaker must trip from
  // the join's own retries, and the next query must be rejected by the
  // breaker without burning source calls.
  FakeClock clock;
  Mediator::Options options;
  options.clock = &clock;
  options.enable_circuit_breaker = true;
  options.breaker.failure_threshold = 2;
  options.breaker.open_duration = std::chrono::microseconds(50000);
  options.retry.max_attempts = 2;
  options.retry.backoff.base = std::chrono::microseconds(1);
  options.retry.backoff.cap = std::chrono::microseconds(2);
  Mediator mediator(options);
  RegisterFixtureSources(&mediator);

  CatalogEntry* reviews = *mediator.catalog()->Find("reviews");
  FaultPolicy dead;
  dead.outages.push_back({0, 1000000});
  reviews->source()->set_fault_policy(dead);

  const Result<Mediator::QueryResult> first = mediator.Query(kThreeWaySql);
  EXPECT_FALSE(first.ok());
  ASSERT_NE(reviews->breaker(), nullptr);
  EXPECT_EQ(reviews->breaker()->state(), CircuitBreaker::State::kOpen);

  const uint64_t calls_after_first =
      reviews->source()->fault_injector()->stats().calls;
  const Result<Mediator::QueryResult> second = mediator.Query(kThreeWaySql);
  EXPECT_FALSE(second.ok());
  // The open breaker rejected the second query's reviews fetches up front.
  EXPECT_EQ(reviews->source()->fault_injector()->stats().calls,
            calls_after_first);
  EXPECT_GT(mediator.StatsSnapshot().fault_tolerance.breaker_rejections, 0u);

  // Healthy sources are unaffected: a two-source join that never touches
  // reviews still answers.
  const Result<Mediator::QueryResult> healthy = mediator.Query(
      "SELECT cars.model, dealers.city FROM cars JOIN dealers "
      "ON cars.make = dealers.make WHERE cars.price < 30000");
  ASSERT_TRUE(healthy.ok()) << healthy.status().ToString();
  EXPECT_EQ(healthy->rows.size(), 4u);
}

TEST_F(FederationFixture, PagedBoundedRelationInsideThreeWayJoin) {
  // reviews declares `bound 2 page 2`: every fetch of it is chunked into
  // bounded pages. The paging loop must recover exactness inside the join —
  // same answer, completeness intact, pages actually driven.
  FakeClock clock;
  Mediator::Options options;
  options.partial_results = true;
  options.clock = &clock;
  Mediator mediator(options);
  RegisterFixtureSources(&mediator, "bound 2 page 2;");

  const Result<Mediator::QueryResult> result = mediator.Query(kThreeWaySql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), kThreeWayRows);
  EXPECT_TRUE(result->completeness.complete)
      << "paging must recover exactness, not truncate";
  EXPECT_GT(result->exec.pages_fetched, 0u);
  EXPECT_GT(mediator.StatsSnapshot().bounded.pages_fetched, 0u);
}

TEST_F(FederationFixture, UnpagedBoundMarksTheJoinPartial) {
  // Without paging a bound silently drops rows at the source — the federated
  // answer must surface that as a truncation marker, never as a
  // complete-looking subset. The bound goes on cars: its single-atom
  // pushdown (price < 30000, 4 true rows) cannot be refined into
  // under-bound pieces, so truncation is unavoidable. (A bound on a
  // bind-side value list would be legitimately recovered by splitting the
  // list — the planner's exactness strategies are tested elsewhere.)
  FakeClock clock;
  Mediator::Options options;
  options.partial_results = true;
  options.clock = &clock;
  Mediator mediator(options);
  RegisterFixtureSources(&mediator, /*reviews_extra=*/"",
                         /*cars_extra=*/"bound 2;");

  const Result<Mediator::QueryResult> result = mediator.Query(kThreeWaySql);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_LT(result->rows.size(), kThreeWayRows);
  EXPECT_FALSE(result->completeness.complete);
  ASSERT_FALSE(result->completeness.truncated_sources.empty());
  bool names_cars = false;
  for (const Mediator::TruncatedSource& marker :
       result->completeness.truncated_sources) {
    if (marker.source == "cars") names_cars = true;
  }
  EXPECT_TRUE(names_cars);
}

TEST(FederationReplanTest, AvoidSetReplanAdoptsAlternateJoinOrder) {
  // Two relations where the optimizer's first tree fetches B independently
  // (B's estimated independent fetch undercuts the bind: A drives as many
  // distinct keys as B has, so the modeled bind transfers all of B). B's
  // first call fails retryably; the avoid-set replan marks B's independent
  // fetch infeasible, re-enumerates, and the alternate tree reaches B
  // through the bind edge — which succeeds, because the transient is gone.
  constexpr const char* kASsdl = R"(
    source A(k: string, v: int) {
      cost 10.0 1.0;
      rule f -> v >= $int | v < $int;
      export f : {k, v};
    })";
  constexpr const char* kBSsdl = R"(
    source B(k: string, w: int) {
      cost 10.0 1.0;
      rule klist -> k = $string or k = $string
                  | k = $string or klist;
      rule f -> k = $string
              | klist
              | ( klist )
              | w >= $int
              | w >= $int and ( klist )
              | w >= $int and k = $string
              | ( klist ) and w >= $int
              | k = $string and w >= $int;
      export f : {k, w};
    })";
  Catalog catalog;
  Result<SourceDescription> a = ParseSsdl(kASsdl);
  Result<SourceDescription> b = ParseSsdl(kBSsdl);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  auto a_table = std::make_unique<Table>("A", a->schema());
  auto b_table = std::make_unique<Table>("B", b->schema());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(a_table
                    ->AppendValues({Value::String("k" + std::to_string(i)),
                                    Value::Int(i)})
                    .ok());
    ASSERT_TRUE(b_table
                    ->AppendValues({Value::String("k" + std::to_string(i)),
                                    Value::Int(100 + i)})
                    .ok());
    ASSERT_TRUE(b_table
                    ->AppendValues({Value::String("k" + std::to_string(i)),
                                    Value::Int(200 + i)})
                    .ok());
  }
  ASSERT_TRUE(catalog.Register(std::move(a).value(), std::move(a_table)).ok());
  ASSERT_TRUE(catalog.Register(std::move(b).value(), std::move(b_table)).ok());
  CatalogEntry* entry_a = *catalog.Find("A");
  CatalogEntry* entry_b = *catalog.Find("B");

  FederatedQuery query;
  query.sources = {"A", "B"};
  query.keys = {{"A.k", "B.k"}};
  query.condition =
      std::move(ParseCondition("A.v >= 0 and B.w >= 0")).value();

  FakeClock clock;
  FederationOptions options;
  options.max_replans = 1;
  // A drives 6 distinct keys = B's full key domain, so a bind is modeled to
  // transfer all of B anyway; at batch size 4 its two setup round-trips make
  // it strictly dearer than B's single independent fetch.
  options.bind_batch_size = 4;
  options.exec.retry.max_attempts = 1;  // no in-executor retry: fail fast
  options.exec.clock = &clock;
  FederationProcessor processor({entry_a, entry_b}, options);

  // Round 0 must plan B's leaf as an independent fetch.
  const Result<FederationPlanOutcome> outcome = processor.Plan(query);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_EQ(outcome->enumeration.best.method, EdgeMethod::kIndependent)
      << outcome->tree;

  // B answers its first query with a transient failure, then recovers.
  FaultPolicy flaky;
  flaky.outages.push_back({0, 1});
  entry_b->source()->set_fault_policy(flaky);

  const Result<RowSet> rows = processor.Execute(query);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(processor.stats().replans, 1u);
  EXPECT_GE(processor.stats().bind_batches, 1u);  // round 1 bound B
  EXPECT_EQ(rows->size(), 12u);  // 6 keys × 2 B-rows each

  // Without the replan budget the same failure is terminal.
  entry_b->source()->set_fault_policy(FaultPolicy{});
  FaultPolicy flaky2;
  flaky2.outages.push_back({0, 1});
  FederationOptions no_replan;
  no_replan.exec.retry.max_attempts = 1;
  no_replan.exec.clock = &clock;
  FederationProcessor rigid({entry_a, entry_b}, no_replan);
  entry_b->source()->set_fault_policy(flaky2);
  EXPECT_FALSE(rigid.Execute(query).ok());
  entry_b->source()->set_fault_policy(FaultPolicy{});
}

}  // namespace
}  // namespace gencompact
