#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/condition_eval.h"
#include "expr/condition_parser.h"
#include "expr/simplify.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

AtomicCondition Atom(const std::string& text) { return Parse(text)->atom(); }

std::string SimplifyToString(const std::string& text) {
  const ConditionPtr simplified = SimplifyCondition(Parse(text));
  return simplified == nullptr ? "FALSE" : simplified->ToString();
}

TEST(AtomImpliesTest, EqualityImpliesMatchingPredicates) {
  EXPECT_TRUE(AtomImplies(Atom("a = 3"), Atom("a < 5")));
  EXPECT_TRUE(AtomImplies(Atom("a = 3"), Atom("a != 4")));
  EXPECT_TRUE(AtomImplies(Atom("a = 3"), Atom("a >= 3")));
  EXPECT_FALSE(AtomImplies(Atom("a = 7"), Atom("a < 5")));
  EXPECT_TRUE(AtomImplies(Atom("a = \"abcd\""), Atom("a contains \"bc\"")));
  EXPECT_TRUE(AtomImplies(Atom("a = \"abcd\""), Atom("a startswith \"ab\"")));
}

TEST(AtomImpliesTest, RangeChains) {
  EXPECT_TRUE(AtomImplies(Atom("a < 3"), Atom("a < 5")));
  EXPECT_TRUE(AtomImplies(Atom("a < 3"), Atom("a <= 3")));
  EXPECT_TRUE(AtomImplies(Atom("a <= 3"), Atom("a <= 3")));
  EXPECT_FALSE(AtomImplies(Atom("a <= 3"), Atom("a < 3")));
  EXPECT_TRUE(AtomImplies(Atom("a > 5"), Atom("a > 3")));
  EXPECT_TRUE(AtomImplies(Atom("a >= 5"), Atom("a > 3")));
  EXPECT_FALSE(AtomImplies(Atom("a > 3"), Atom("a > 5")));
  EXPECT_FALSE(AtomImplies(Atom("b < 3"), Atom("a < 5")));  // different attr
}

TEST(AtomImpliesTest, StringPredicates) {
  EXPECT_TRUE(AtomImplies(Atom("a startswith \"abc\""),
                          Atom("a startswith \"ab\"")));
  EXPECT_FALSE(AtomImplies(Atom("a startswith \"ab\""),
                           Atom("a startswith \"abc\"")));
  EXPECT_TRUE(AtomImplies(Atom("a contains \"abc\""), Atom("a contains \"b\"")));
  EXPECT_TRUE(
      AtomImplies(Atom("a startswith \"abc\""), Atom("a contains \"bc\"")));
}

TEST(AtomsContradictTest, EqualityPairs) {
  EXPECT_TRUE(AtomsContradict(Atom("a = 1"), Atom("a = 2")));
  EXPECT_FALSE(AtomsContradict(Atom("a = 1"), Atom("a = 1")));
  EXPECT_TRUE(AtomsContradict(Atom("a = 1"), Atom("a != 1")));
  EXPECT_TRUE(AtomsContradict(Atom("a = 7"), Atom("a < 5")));
  EXPECT_FALSE(AtomsContradict(Atom("a = 3"), Atom("a < 5")));
  EXPECT_TRUE(AtomsContradict(Atom("a = \"x\""), Atom("a contains \"yz\"")));
}

TEST(AtomsContradictTest, DisjointRanges) {
  EXPECT_TRUE(AtomsContradict(Atom("a < 3"), Atom("a > 5")));
  EXPECT_TRUE(AtomsContradict(Atom("a < 3"), Atom("a >= 3")));
  EXPECT_TRUE(AtomsContradict(Atom("a <= 3"), Atom("a > 3")));
  EXPECT_FALSE(AtomsContradict(Atom("a <= 3"), Atom("a >= 3")));  // a = 3
  EXPECT_FALSE(AtomsContradict(Atom("a < 5"), Atom("a > 3")));
  EXPECT_TRUE(AtomsContradict(Atom("a startswith \"ab\""),
                              Atom("a startswith \"cd\"")));
  EXPECT_FALSE(AtomsContradict(Atom("a startswith \"ab\""),
                               Atom("a startswith \"abc\"")));
}

TEST(SimplifyTest, Idempotence) {
  EXPECT_EQ(SimplifyToString("a = 1 and a = 1"), "a = 1");
  EXPECT_EQ(SimplifyToString("a = 1 or a = 1"), "a = 1");
}

TEST(SimplifyTest, Absorption) {
  EXPECT_EQ(SimplifyToString("a = 1 or (a = 1 and b = 2)"), "a = 1");
  EXPECT_EQ(SimplifyToString("a = 1 and (a = 1 or b = 2)"), "a = 1");
}

TEST(SimplifyTest, SubsumptionViaAtomImplication) {
  // a < 3 implies a < 5: the weaker conjunct is redundant.
  EXPECT_EQ(SimplifyToString("a < 3 and a < 5"), "a < 3");
  // In a disjunction the stronger disjunct is covered.
  EXPECT_EQ(SimplifyToString("a < 3 or a < 5"), "a < 5");
}

TEST(SimplifyTest, ContradictionYieldsFalse) {
  EXPECT_EQ(SimplifyToString("a = 1 and a = 2"), "FALSE");
  EXPECT_EQ(SimplifyToString("b = 0 or (a < 3 and a > 5)"), "b = 0");
  EXPECT_EQ(SimplifyToString("(a = 1 and a = 2) or (a = 3 and a = 4)"),
            "FALSE");
}

TEST(SimplifyTest, TautologyYieldsTrue) {
  EXPECT_EQ(SimplifyToString("a < 5 or a >= 5"), "true");
  EXPECT_EQ(SimplifyToString("a != 3 or a = 3"), "true");
  EXPECT_EQ(SimplifyToString("b = 1 and (a < 5 or a >= 5)"), "b = 1");
}

TEST(SimplifyTest, KeepsIrreducibleConditions) {
  const char* const kIrreducible[] = {
      "a = 1",
      "a = 1 and b = 2",
      "a = 1 or b = 2",
      "(a = 1 and b = 2) or (a = 3 and b = 4)",
  };
  for (const char* text : kIrreducible) {
    EXPECT_EQ(SimplifyToString(text), Parse(text)->ToString()) << text;
  }
}

TEST(SimplifyTest, NestedSimplification) {
  EXPECT_EQ(SimplifyToString("(a = 1 and a = 1) or (b = 2 and b = 3)"),
            "a = 1");
}

// Property: simplification preserves semantics on random rows.
class SimplifyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifyPropertyTest, PreservesSemantics) {
  Rng rng(GetParam());
  const Schema schema(
      {{"a", ValueType::kInt}, {"b", ValueType::kInt}, {"s", ValueType::kString}});
  const RowLayout full(schema.AllAttributes(), 3);

  const auto random_atom = [&]() -> ConditionPtr {
    if (rng.NextBool(0.25)) {
      static const char* const kStrings[] = {"ab", "abc", "cd", "x"};
      const CompareOp op = rng.NextBool() ? CompareOp::kContains
                                          : CompareOp::kStartsWith;
      return ConditionNode::Atom("s", op,
                                 Value::String(kStrings[rng.NextIndex(4)]));
    }
    static constexpr CompareOp kOps[] = {CompareOp::kEq, CompareOp::kNe,
                                         CompareOp::kLt, CompareOp::kLe,
                                         CompareOp::kGt, CompareOp::kGe};
    return ConditionNode::Atom(rng.NextBool() ? "a" : "b",
                               kOps[rng.NextIndex(6)],
                               Value::Int(rng.NextInt(0, 4)));
  };

  // Random small tree, biased toward redundancy (repeated atoms).
  for (int trial = 0; trial < 60; ++trial) {
    std::vector<ConditionPtr> atoms;
    for (int i = 0; i < 4; ++i) atoms.push_back(random_atom());
    const ConditionPtr cond = ConditionNode::Or(
        {ConditionNode::And({atoms[0], atoms[1], atoms[0]}),
         ConditionNode::And({atoms[2], atoms[3]}),
         atoms[rng.NextIndex(4)]});
    const ConditionPtr simplified = SimplifyCondition(cond);

    for (int r = 0; r < 40; ++r) {
      static const char* const kStrings[] = {"ab", "abc", "cd", "x", "abcd"};
      const Row row({Value::Int(rng.NextInt(0, 4)), Value::Int(rng.NextInt(0, 4)),
                     Value::String(kStrings[rng.NextIndex(5)])});
      const bool expected = *EvalCondition(*cond, row, full, schema);
      const bool actual =
          simplified == nullptr
              ? false
              : *EvalCondition(*simplified, row, full, schema);
      ASSERT_EQ(actual, expected)
          << "cond: " << cond->ToString() << "\nsimplified: "
          << (simplified ? simplified->ToString() : "FALSE")
          << "\nrow: " << row.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifyPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace gencompact
