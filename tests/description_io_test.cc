#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/condition_parser.h"
#include "ssdl/check.h"
#include "ssdl/closure.h"
#include "ssdl/description_io.h"
#include "ssdl/ssdl_parser.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

TEST(DescriptionIoTest, WritesParseableText) {
  const Result<SourceDescription> original = ParseSsdl(R"(
    source R(make: string, model: string, price: int) {
      cost 12.5 0.75;
      rule s1 -> make = $string and price < $int;
      rule s2 -> make = $string | model contains $string;
      export s1 : {make, model};
      export s2 : {make, model, price};
    })");
  ASSERT_TRUE(original.ok());
  const Result<std::string> text = WriteSsdl(*original);
  ASSERT_TRUE(text.ok()) << text.status().ToString();

  const Result<SourceDescription> reloaded = ParseSsdl(*text);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString() << "\n" << *text;
  EXPECT_EQ(reloaded->source_name(), "R");
  EXPECT_DOUBLE_EQ(reloaded->k1(), 12.5);
  EXPECT_DOUBLE_EQ(reloaded->k2(), 0.75);
  EXPECT_EQ(reloaded->condition_nonterminals().size(), 2u);
}

TEST(DescriptionIoTest, RoundTripPreservesLanguage) {
  const Result<SourceDescription> original = ParseSsdl(R"(
    source R(a: string, b: string, p: int) {
      rule s1 -> a = $string and p <= $int;
      rule s2 -> b = "pinned";
      export s1 : {a, b, p};
      export s2 : {a, b};
    })");
  ASSERT_TRUE(original.ok());
  const Result<std::string> text = WriteSsdl(*original);
  ASSERT_TRUE(text.ok());
  const Result<SourceDescription> reloaded = ParseSsdl(*text);
  ASSERT_TRUE(reloaded.ok());

  Checker before(&*original);
  Checker after(&*reloaded);
  const char* const kProbes[] = {
      "a = \"x\" and p <= 5",
      "p <= 5 and a = \"x\"",      // unsupported in both (no closure)
      "b = \"pinned\"",
      "b = \"other\"",             // literal mismatch
      "a = \"x\"",
      "true",
  };
  for (const char* probe : kProbes) {
    const ConditionPtr cond = Parse(probe);
    EXPECT_EQ(before.Check(*cond).empty(), after.Check(*cond).empty()) << probe;
    if (!before.Check(*cond).empty()) {
      EXPECT_EQ(before.Check(*cond), after.Check(*cond)) << probe;
    }
  }
}

TEST(DescriptionIoTest, ClosedDescriptionRoundTrips) {
  const Result<SourceDescription> original = ParseSsdl(R"(
    source R(a: string, p: int) {
      rule s1 -> a = $string and p < $int;
      export s1 : {a, p};
    })");
  ASSERT_TRUE(original.ok());
  const SourceDescription closed = CommutativityClosure(*original);
  const Result<std::string> text = WriteSsdl(closed);
  ASSERT_TRUE(text.ok());
  const Result<SourceDescription> reloaded = ParseSsdl(*text);
  ASSERT_TRUE(reloaded.ok());
  Checker checker(&*reloaded);
  EXPECT_FALSE(checker.Check(*Parse("p < 3 and a = \"x\"")).empty());
}

// Property: random capability descriptions round-trip (language-equal on
// random probe conditions).
class DescriptionIoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DescriptionIoPropertyTest, RandomCapabilitiesRoundTrip) {
  Rng rng(GetParam());
  const Schema schema({{"s1", ValueType::kString},
                       {"s2", ValueType::kString},
                       {"n1", ValueType::kInt}});
  const SourceDescription original =
      RandomCapability("src", schema, RandomCapabilityOptions{}, &rng);
  const Result<std::string> text = WriteSsdl(original);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  const Result<SourceDescription> reloaded = ParseSsdl(*text);
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString() << "\n" << *text;

  Checker before(&original);
  Checker after(&*reloaded);

  std::vector<AttributeDomain> domains;
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    AttributeDomain domain;
    domain.name = schema.attribute(static_cast<int>(a)).name;
    domain.type = schema.attribute(static_cast<int>(a)).type;
    for (int v = 0; v < 3; ++v) {
      domain.sample_values.push_back(domain.type == ValueType::kInt
                                         ? Value::Int(v)
                                         : Value::String("v" + std::to_string(v)));
    }
    domains.push_back(std::move(domain));
  }
  for (int trial = 0; trial < 40; ++trial) {
    RandomConditionOptions options;
    options.num_atoms = 1 + rng.NextIndex(4);
    const ConditionPtr cond = RandomCondition(domains, options, &rng);
    EXPECT_EQ(before.Check(*cond), after.Check(*cond)) << cond->ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DescriptionIoPropertyTest,
                         ::testing::Values(5, 15, 25, 35, 45));

}  // namespace
}  // namespace gencompact
