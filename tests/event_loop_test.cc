// EventLoop timer-wheel units and the deterministic-interleaving harness:
//  - threaded mode: posted tasks run in order on the loop thread, timers
//    fire in deadline order on a FakeClock, long delays survive wheel
//    revolutions, cancellation disarms;
//  - manual mode (SimulatedEventLoop): nothing runs until the test pumps,
//    Step() advances virtual time to the next deadline, AdvanceBy() fires
//    intermediate deadlines in order on the way;
//  - seeded tie-break: timers coalesced on one exact deadline fire in the
//    seed's permutation — the same (seed, script) replays the identical
//    schedule, and sweeping seeds explores orderings wall clocks cannot
//    reproduce. The AsyncScheduler interleaving tests drive a real plan
//    execution one event at a time and assert every seed's schedule reaches
//    the same answer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "exec/async_scheduler.h"
#include "exec/event_loop.h"
#include "exec/executor.h"
#include "exec/fault_policy.h"
#include "expr/condition_parser.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

using std::chrono::microseconds;

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

// ---------------------------------------------------------------------------
// Threaded mode.
// ---------------------------------------------------------------------------

TEST(EventLoopTest, PostedTasksRunInOrderOnTheLoopThread) {
  EventLoop loop;
  std::vector<int> order;
  bool on_loop_thread = true;
  std::promise<void> done;
  for (int i = 0; i < 10; ++i) {
    loop.Post([&, i] {
      on_loop_thread = on_loop_thread && loop.InLoopThread();
      order.push_back(i);
    });
  }
  // A separate barrier task: by the time it runs, all ten tasks above have
  // completed and been counted.
  loop.Post([&] { done.set_value(); });
  done.get_future().wait();
  EXPECT_TRUE(on_loop_thread);
  ASSERT_EQ(order.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
  const EventLoop::Stats stats = loop.stats();
  EXPECT_EQ(stats.tasks_posted, 11u);
  EXPECT_GE(stats.tasks_run, 10u);
}

TEST(EventLoopTest, TimersFireInDeadlineOrderOnFakeClock) {
  FakeClock clock;
  EventLoop loop(&clock);
  const auto t0 = clock.Now();
  std::vector<int> order;
  std::promise<void> done;
  // Arm from the loop thread so all three are in the wheel before the idle
  // loop can advance virtual time past any of them.
  loop.Post([&] {
    loop.ScheduleAfter(microseconds(5000), [&] {
      order.push_back(5);
      done.set_value();
    });
    loop.ScheduleAfter(microseconds(1000), [&] { order.push_back(1); });
    loop.ScheduleAfter(microseconds(3000), [&] { order.push_back(3); });
  });
  done.get_future().wait();
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 3);
  EXPECT_EQ(order[2], 5);
  EXPECT_EQ(loop.stats().timers_fired, 3u);
  EXPECT_EQ(loop.timer_wheel_size(), 0u);
  // Virtual time advanced to the last deadline without wall-clock waiting.
  EXPECT_GE(clock.Now() - t0, microseconds(5000));
}

TEST(EventLoopTest, LongDelaysSurviveWheelRevolutions) {
  // 500ms is ~2 revolutions of the 256 x 1024us wheel: the timer aliases
  // into its slot and must be skipped until its revolution comes around.
  FakeClock clock;
  EventLoop loop(&clock);
  const auto t0 = clock.Now();
  std::promise<void> done;
  loop.Post([&] {
    loop.ScheduleAfter(microseconds(500000), [&] { done.set_value(); });
    loop.ScheduleAfter(microseconds(1000), [] {});
  });
  done.get_future().wait();
  EXPECT_GE(clock.Now() - t0, microseconds(500000));
  EXPECT_EQ(loop.stats().timers_fired, 2u);
}

TEST(EventLoopTest, CancelledTimersNeverFire) {
  FakeClock clock;
  EventLoop loop(&clock);
  std::atomic<bool> fired{false};
  bool first_cancel = false;
  bool second_cancel = true;
  std::promise<void> done;
  loop.Post([&] {
    const EventLoop::TimerId id =
        loop.ScheduleAfter(microseconds(2000), [&] { fired = true; });
    first_cancel = loop.Cancel(id);
    second_cancel = loop.Cancel(id);  // already disarmed
    loop.ScheduleAfter(microseconds(5000), [&] { done.set_value(); });
  });
  done.get_future().wait();
  EXPECT_TRUE(first_cancel);
  EXPECT_FALSE(second_cancel);
  EXPECT_FALSE(fired.load());
  EXPECT_EQ(loop.timer_wheel_size(), 0u);
  const EventLoop::Stats stats = loop.stats();
  EXPECT_EQ(stats.timers_cancelled, 1u);
  EXPECT_EQ(stats.timers_fired, 1u);
}

// ---------------------------------------------------------------------------
// Manual mode / SimulatedEventLoop step semantics.
// ---------------------------------------------------------------------------

TEST(EventLoopTest, ManualModeRunsNothingUntilPumped) {
  SimulatedEventLoop sim;
  std::vector<int> order;
  sim.loop()->Post([&] { order.push_back(1); });
  sim.loop()->Post([&] {
    order.push_back(2);
    // Work posted by a task is NOT run in the same pump: each pump is one
    // observable scheduling round.
    sim.loop()->Post([&] { order.push_back(3); });
  });
  EXPECT_TRUE(order.empty());
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_FALSE(sim.Step());  // fully idle
}

TEST(EventLoopTest, StepAdvancesVirtualTimeToTheNextDeadlineOnly) {
  SimulatedEventLoop sim;
  std::vector<int> order;
  sim.loop()->ScheduleAfter(microseconds(4000), [&] { order.push_back(4); });
  sim.loop()->ScheduleAfter(microseconds(1000), [&] { order.push_back(1); });
  const auto t0 = sim.clock()->Now();
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(sim.clock()->Now() - t0, microseconds(1000));  // not 4000
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(order, (std::vector<int>{1, 4}));
  EXPECT_EQ(sim.clock()->Now() - t0, microseconds(4000));
  EXPECT_FALSE(sim.Step());
}

TEST(EventLoopTest, AdvanceByFiresIntermediateDeadlinesInOrder) {
  SimulatedEventLoop sim;
  std::vector<int> order;
  sim.loop()->ScheduleAfter(microseconds(5000), [&] { order.push_back(5); });
  sim.loop()->ScheduleAfter(microseconds(2000), [&] { order.push_back(2); });
  sim.loop()->ScheduleAfter(microseconds(1000), [&] { order.push_back(1); });
  const auto t0 = sim.clock()->Now();
  sim.AdvanceBy(microseconds(3000));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  // The clock lands exactly at the window's end, not at a deadline.
  EXPECT_EQ(sim.clock()->Now() - t0, microseconds(3000));
  EXPECT_EQ(sim.loop()->timer_wheel_size(), 1u);  // the 5ms timer survives
  sim.AdvanceBy(microseconds(3000));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 5}));
}

TEST(EventLoopTest, RunUntilIdleDrainsChainedTimers) {
  SimulatedEventLoop sim;
  int hops = 0;
  std::function<void()> hop = [&] {
    if (++hops < 5) sim.loop()->ScheduleAfter(microseconds(1000), hop);
  };
  sim.loop()->ScheduleAfter(microseconds(1000), hop);
  const auto t0 = sim.clock()->Now();
  const size_t ran = sim.RunUntilIdle();
  EXPECT_EQ(hops, 5);
  EXPECT_GE(ran, 5u);
  // Each hop advanced virtual time by its own delay.
  EXPECT_EQ(sim.clock()->Now() - t0, microseconds(5000));
}

// ---------------------------------------------------------------------------
// Seeded tie-break: coalesced deadlines fire in the seed's permutation.
// ---------------------------------------------------------------------------

std::vector<int> CoalescedFiringOrder(uint64_t seed) {
  SimulatedEventLoop sim(seed);
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sim.loop()->ScheduleAfter(microseconds(1000), [&order, i] {
      order.push_back(i);
    });
  }
  sim.RunUntilIdle();
  return order;
}

TEST(EventLoopTest, SeedZeroFiresCoalescedDeadlinesInScheduleOrder) {
  EXPECT_EQ(CoalescedFiringOrder(0),
            (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(EventLoopTest, SeededTieBreakReplaysExactlyAndExploresOrders) {
  bool any_differs = false;
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    const std::vector<int> first = CoalescedFiringOrder(seed);
    // Deterministic replay: same (seed, script) -> the identical schedule.
    EXPECT_EQ(first, CoalescedFiringOrder(seed)) << "seed " << seed;
    // Every permutation still fires every timer exactly once.
    EXPECT_EQ(std::set<int>(first.begin(), first.end()).size(), 8u);
    if (first != std::vector<int>({0, 1, 2, 3, 4, 5, 6, 7})) {
      any_differs = true;
    }
  }
  // The sweep explored at least one ordering the production tie-break
  // (schedule order) would never produce.
  EXPECT_TRUE(any_differs);
}

TEST(EventLoopTest, TieBreakOnlyReordersEqualDeadlines) {
  // Distinct deadlines always fire in deadline order, whatever the seed.
  for (uint64_t seed : {1ull, 7ull, 12345ull}) {
    SimulatedEventLoop sim(seed);
    std::vector<int> order;
    sim.loop()->ScheduleAfter(microseconds(3000), [&] { order.push_back(3); });
    sim.loop()->ScheduleAfter(microseconds(1000), [&] { order.push_back(1); });
    sim.loop()->ScheduleAfter(microseconds(2000), [&] { order.push_back(2); });
    sim.RunUntilIdle();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3})) << "seed " << seed;
  }
}

// ---------------------------------------------------------------------------
// Interleaving the async executor: a real plan execution stepped one event
// at a time, across a sweep of tie-break seeds. Any failing schedule would
// replay exactly from (seed, script); every schedule must reach the same
// answer and the same per-source call count.
// ---------------------------------------------------------------------------

constexpr const char* kInterleaveSsdl = R"(
  source R(k: string, v: int) {
    rule s1 -> k = $string;
    rule s2 -> v < $int;
    rule s3 -> v >= $int;
    export s1 : {k, v};
    export s2 : {k, v};
    export s3 : {k, v};
  })";

struct InterleaveRun {
  size_t rows = 0;
  size_t source_queries = 0;
  uint64_t retries = 0;
  size_t steps = 0;
  bool ok = false;
};

InterleaveRun RunInterleaved(uint64_t seed, uint64_t fail_first_n) {
  const Result<SourceDescription> description = ParseSsdl(kInterleaveSsdl);
  EXPECT_TRUE(description.ok()) << description.status().ToString();
  Table table("R", description->schema());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(table
                    .AppendValues({Value::String(i % 2 ? "odd" : "even"),
                                   Value::Int(i)})
                    .ok());
  }
  Source source(&table, &*description);
  source.set_fault_policy(FaultPolicy{});
  source.fault_injector()->FailNextN(fail_first_n);
  source.set_simulated_latency(microseconds(1000));

  SimulatedEventLoop sim(seed);
  AsyncExecOptions options;
  options.exec.clock = sim.clock();
  options.exec.retry.max_attempts = 4;
  AsyncScheduler scheduler(&source, sim.loop(), options);

  const PlanPtr plan = PlanNode::UnionOf(
      {PlanNode::SourceQuery(Parse("v < 4"), *description->schema().MakeSet(
                                                 {"k", "v"})),
       PlanNode::SourceQuery(Parse("v >= 7"), *description->schema().MakeSet(
                                                  {"k", "v"})),
       PlanNode::SourceQuery(Parse("k = \"odd\""),
                             *description->schema().MakeSet({"k", "v"}))});

  InterleaveRun run;
  bool done = false;
  Result<RowSet> answer = Status::Internal("not delivered");
  scheduler.ExecuteAsync(plan, [&](Result<RowSet> rows) {
    answer = std::move(rows);
    done = true;
  });
  // Drive the whole execution one deterministic step at a time.
  while (sim.Step()) ++run.steps;
  EXPECT_TRUE(done);
  run.ok = answer.ok();
  if (answer.ok()) run.rows = answer->size();
  run.source_queries = scheduler.stats().source_queries;
  run.retries = scheduler.stats().retries;
  return run;
}

TEST(EventLoopInterleavingTest, EverySeedSchedulesToTheSameAnswer) {
  const InterleaveRun baseline = RunInterleaved(/*seed=*/0, /*fail=*/0);
  ASSERT_TRUE(baseline.ok);
  // {0..3} u {7,8,9} u odds = {0,1,2,3,5,7,8,9}
  EXPECT_EQ(baseline.rows, 8u);
  EXPECT_EQ(baseline.source_queries, 3u);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const InterleaveRun run = RunInterleaved(seed, /*fail=*/0);
    EXPECT_TRUE(run.ok) << "seed " << seed;
    EXPECT_EQ(run.rows, baseline.rows) << "seed " << seed;
    EXPECT_EQ(run.source_queries, baseline.source_queries) << "seed " << seed;
  }
}

TEST(EventLoopInterleavingTest, RetrySchedulesReplayExactlyFromSeed) {
  // Two scripted failures land on whichever fetches the seed's schedule
  // sends out first; retries recover both. Replaying the same seed must
  // reproduce the schedule event for event (same step count), and every
  // seed's schedule recovers the same answer.
  for (uint64_t seed = 0; seed <= 6; ++seed) {
    const InterleaveRun first = RunInterleaved(seed, /*fail=*/2);
    const InterleaveRun replay = RunInterleaved(seed, /*fail=*/2);
    EXPECT_TRUE(first.ok) << "seed " << seed;
    EXPECT_EQ(first.rows, 8u) << "seed " << seed;
    EXPECT_EQ(first.retries, 2u) << "seed " << seed;
    EXPECT_EQ(first.steps, replay.steps) << "seed " << seed;
    EXPECT_EQ(first.retries, replay.retries) << "seed " << seed;
    EXPECT_EQ(first.source_queries, replay.source_queries)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace gencompact
