// Seeded multi-source answer-equivalence fuzzer: random connected query
// graphs (2–4 capability-limited sources joined on a shared string key) ×
// random per-source pushdowns and cross-source residuals × random tables,
// executed through the mediator's federated path and compared against a
// nested-loop oracle over the raw tables.
//
// Invariants:
//  - an answer the mediator reports COMPLETE is bit-identical to the
//    nested-loop join (pushdown split, bind batching, hash joins, and
//    residual evaluation lose and invent nothing);
//  - every answer is a subset of the true join — truncated sources shrink
//    it, never corrupt it;
//  - an answer smaller than the true join is NEVER silent: completeness
//    carries a truncation marker naming the bounded source.
//
// The base seed comes from GENCOMPACT_TEST_SEED (default 439) so CI can run
// a seed matrix.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "mediator/mediator.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

uint64_t BaseSeed() {
  const char* env = std::getenv("GENCOMPACT_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 439;
}

std::vector<std::string> Signature(const RowSet& rows) {
  std::vector<std::string> out;
  for (const Row& row : rows.SortedRows()) {
    std::string sig;
    for (const Value& v : row.values()) {
      sig += ValueTypeName(v.type());
      sig += ':';
      sig += v.ToString();
      sig += '|';
    }
    out.push_back(std::move(sig));
  }
  return out;
}

// Every fuzz source has the same shape: a string join key from a small
// shared pool and an int payload. Capabilities: single-key or key-list
// queries (so bind-joins and their value-list batches are always legal),
// plus int range pushdowns — but NO download, so a relation whose pushdown
// is empty cannot be fetched independently and must be reached via a bind
// edge.
constexpr const char* kSourceTemplate = R"(
source %s(k: string, v: int) {
  cost 10.0 1.0;
  %s
  rule klist -> k = $string or k = $string
              | k = $string or klist;
  rule f -> k = $string
          | klist
          | ( klist )
          | v < $int
          | v >= $int
          | v >= $int and v < $int
          | k = $string and v < $int;
  export f : {k, v};
})";

// One atom of the generated WHERE clause, kept structured so the oracle can
// evaluate it directly instead of re-parsing the SQL text.
struct Atom {
  int rel = 0;
  enum Kind { kLess, kGreaterEq, kKeyEq } kind = kLess;
  int64_t c = 0;
  std::string key;

  bool Holds(const std::string& k, int64_t v) const {
    switch (kind) {
      case kLess:
        return v < c;
      case kGreaterEq:
        return v >= c;
      case kKeyEq:
        return k == key;
    }
    return false;
  }

  std::string Render(const std::vector<std::string>& names) const {
    switch (kind) {
      case kLess:
        return names[rel] + ".v < " + std::to_string(c);
      case kGreaterEq:
        return names[rel] + ".v >= " + std::to_string(c);
      case kKeyEq:
        return names[rel] + ".k = \"" + key + "\"";
    }
    return "";
  }
};

Atom RandomAtom(int rel, Rng* rng) {
  Atom atom;
  atom.rel = rel;
  switch (rng->NextIndex(3)) {
    case 0:
      atom.kind = Atom::kLess;
      atom.c = static_cast<int64_t>(1 + rng->NextIndex(20));
      break;
    case 1:
      atom.kind = Atom::kGreaterEq;
      atom.c = static_cast<int64_t>(rng->NextIndex(20));
      break;
    default:
      atom.kind = Atom::kKeyEq;
      atom.key = "s" + std::to_string(rng->NextIndex(4));
      break;
  }
  return atom;
}

struct FuzzCase {
  std::vector<std::string> names;
  std::vector<int> parent;  ///< parent[i] for i >= 1: the join-tree edge
  std::vector<std::vector<std::pair<std::string, int64_t>>> tables;
  std::vector<Atom> conjuncts;             ///< ANDed
  std::vector<std::pair<Atom, Atom>> ors;  ///< ANDed (a or b) residuals
  int bounded_rel = -1;                    ///< -1 = no bound anywhere
  std::string sql;
};

FuzzCase RandomCase(Rng* rng) {
  FuzzCase fc;
  const size_t n = 2 + rng->NextIndex(3);  // 2..4 sources
  for (size_t i = 0; i < n; ++i) {
    fc.names.push_back("f" + std::to_string(i));
  }
  fc.parent.assign(n, -1);
  for (size_t i = 1; i < n; ++i) {
    fc.parent[i] = static_cast<int>(rng->NextIndex(i));  // random tree
  }

  fc.tables.resize(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t rows = 5 + rng->NextIndex(21);
    for (size_t r = 0; r < rows; ++r) {
      fc.tables[i].emplace_back("s" + std::to_string(rng->NextIndex(4)),
                                static_cast<int64_t>(rng->NextIndex(20)));
    }
  }

  // Relation 0 always gets an atom, so at least one leaf of every join tree
  // has a feasible independent fetch; the rest get one with probability.
  fc.conjuncts.push_back(RandomAtom(0, rng));
  for (size_t i = 1; i < n; ++i) {
    if (rng->NextBool(0.6)) fc.conjuncts.push_back(RandomAtom(i, rng));
  }
  if (rng->NextBool(0.5)) {
    const int a = static_cast<int>(rng->NextIndex(n));
    int b = static_cast<int>(rng->NextIndex(n));
    if (b == a) b = (a + 1) % static_cast<int>(n);
    fc.ors.emplace_back(RandomAtom(a, rng), RandomAtom(b, rng));
  }

  // Sometimes bound one source without paging: the only legal outcome is a
  // marked-partial subset (paged bounds are covered by bounded_fuzz_test).
  if (rng->NextBool(0.35)) {
    fc.bounded_rel = static_cast<int>(rng->NextIndex(n));
  }

  std::string sql = "SELECT * FROM " + fc.names[0];
  for (size_t i = 1; i < n; ++i) {
    sql += " JOIN " + fc.names[i] + " ON " + fc.names[fc.parent[i]] +
           ".k = " + fc.names[i] + ".k";
  }
  sql += " WHERE ";
  bool first = true;
  for (const Atom& atom : fc.conjuncts) {
    if (!first) sql += " and ";
    sql += atom.Render(fc.names);
    first = false;
  }
  for (const auto& [a, b] : fc.ors) {
    if (!first) sql += " and ";
    sql += "(" + a.Render(fc.names) + " or " + b.Render(fc.names) + ")";
    first = false;
  }
  fc.sql = std::move(sql);
  return fc;
}

// Nested-loop oracle: every tuple in the cross product that satisfies all
// join edges and the full condition, rendered to the mediator's output
// shape (all attributes, FROM order) and deduped.
std::vector<std::string> OracleSignatures(const FuzzCase& fc) {
  const size_t n = fc.names.size();
  std::set<std::string> out;
  std::vector<size_t> idx(n, 0);
  while (true) {
    bool ok = true;
    for (size_t i = 1; i < n && ok; ++i) {
      ok = fc.tables[i][idx[i]].first ==
           fc.tables[fc.parent[i]][idx[fc.parent[i]]].first;
    }
    if (ok) {
      for (const Atom& atom : fc.conjuncts) {
        const auto& [k, v] = fc.tables[atom.rel][idx[atom.rel]];
        if (!atom.Holds(k, v)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      for (const auto& [a, b] : fc.ors) {
        const auto& [ka, va] = fc.tables[a.rel][idx[a.rel]];
        const auto& [kb, vb] = fc.tables[b.rel][idx[b.rel]];
        if (!a.Holds(ka, va) && !b.Holds(kb, vb)) {
          ok = false;
          break;
        }
      }
    }
    if (ok) {
      std::string sig;
      for (size_t i = 0; i < n; ++i) {
        const auto& [k, v] = fc.tables[i][idx[i]];
        sig += "string:\"" + k + "\"|int:" + std::to_string(v) + "|";
      }
      out.insert(std::move(sig));
    }
    size_t d = 0;
    while (d < n && ++idx[d] == fc.tables[d].size()) {
      idx[d] = 0;
      ++d;
    }
    if (d == n) break;
  }
  return std::vector<std::string>(out.begin(), out.end());
}

std::unique_ptr<Mediator> BuildMediator(const FuzzCase& fc, Clock* clock,
                                        size_t batch_width) {
  Mediator::Options options;
  options.partial_results = true;
  options.retry.max_attempts = 4;
  options.retry.backoff.base = std::chrono::microseconds(1);
  options.retry.backoff.cap = std::chrono::microseconds(2);
  options.clock = clock;
  options.batch_width = batch_width;
  auto mediator = std::make_unique<Mediator>(options);
  for (size_t i = 0; i < fc.names.size(); ++i) {
    const std::string bound_line =
        static_cast<int>(i) == fc.bounded_rel ? "bound 3;" : "";
    char ssdl[1024];
    std::snprintf(ssdl, sizeof(ssdl), kSourceTemplate, fc.names[i].c_str(),
                  bound_line.c_str());
    Result<SourceDescription> description = ParseSsdl(ssdl);
    EXPECT_TRUE(description.ok()) << description.status().ToString();
    auto table = std::make_unique<Table>(fc.names[i], description->schema());
    for (const auto& [k, v] : fc.tables[i]) {
      EXPECT_TRUE(table->AppendValues({Value::String(k), Value::Int(v)}).ok());
    }
    EXPECT_TRUE(mediator
                    ->RegisterSource(std::move(description).value(),
                                     std::move(table))
                    .ok());
  }
  return mediator;
}

TEST(JoinFuzzTest, FederatedAnswersMatchNestedLoopOracle) {
  const uint64_t base = BaseSeed();
  FakeClock clock;
  size_t exact = 0, partial = 0, multiway = 0;
  constexpr size_t kTrials = 40;
  for (size_t trial = 0; trial < kTrials; ++trial) {
    Rng rng(base * 6151 + trial * 104729);
    const FuzzCase fc = RandomCase(&rng);
    if (fc.names.size() > 2) ++multiway;

    // Alternate the data plane so row-at-a-time and columnar joins are both
    // fuzzed against the same oracle.
    const size_t batch_width = rng.NextBool() ? 64 : 0;
    std::unique_ptr<Mediator> mediator = BuildMediator(fc, &clock, batch_width);
    const std::vector<std::string> truth = OracleSignatures(fc);

    const Result<Mediator::QueryResult> got = mediator->Query(fc.sql);
    ASSERT_TRUE(got.ok()) << fc.sql << ": " << got.status().ToString();
    std::vector<std::string> answer = Signature(got->rows);
    // Both sides sorted the same way (lexicographically) so set comparison
    // below is well defined; SortedRows orders by Value, not by signature.
    std::sort(answer.begin(), answer.end());

    // Subset always: the federation never invents rows.
    ASSERT_TRUE(std::includes(truth.begin(), truth.end(), answer.begin(),
                              answer.end()))
        << fc.sql << ": invented rows";

    if (got->completeness.complete) {
      ASSERT_EQ(answer, truth) << fc.sql;
      ASSERT_TRUE(got->completeness.truncated_sources.empty());
      ++exact;
    } else {
      ASSERT_FALSE(got->completeness.truncated_sources.empty()) << fc.sql;
      ++partial;
    }
    // The critical direction: a short answer is NEVER silent.
    if (answer.size() < truth.size()) {
      ASSERT_FALSE(got->completeness.complete)
          << fc.sql << ": silently truncated (" << answer.size() << " of "
          << truth.size() << " rows)";
      ASSERT_FALSE(got->completeness.truncated_sources.empty());
    }
  }
  std::printf("join fuzz: %zu exact, %zu partial, %zu multiway of %zu\n",
              exact, partial, multiway, kTrials);
  // Whatever the seed, the space must exercise exact multi-way answers.
  EXPECT_GT(exact, 0u);
  EXPECT_GT(multiway, 0u);
}

}  // namespace
}  // namespace gencompact
