// Seeded row-vs-batch differential fuzzer for the columnar data plane:
// random schemas × random tables (spiked with nulls, numeric cross-typing,
// and duplicates) × random conditions, asserting that every batch width —
// with and without the columnar wire encoding — returns *exactly* the rows
// of the width-0 reference path (same tuples, same per-cell Value types).
//
// The base seed comes from GENCOMPACT_TEST_SEED (default 439) so CI can run
// a seed matrix; each parameterized case derives independent sub-seeds.
//
// BatchConcurrencyTest at the bottom drives a multi-threaded batched
// mediator from concurrent clients — the TSan leg's coverage of the shared
// ColumnStore build (Table::columns' call_once) and the in-place batched
// set combines.

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "exec/scan.h"
#include "mediator/mediator.h"
#include "ssdl/ssdl_parser.h"
#include "workload/datasets.h"
#include "workload/random_condition.h"

namespace gencompact {
namespace {

uint64_t BaseSeed() {
  const char* env = std::getenv("GENCOMPACT_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 439;
}

// Type-exact signature (see batch_test.cc): ToString alone cannot tell
// Int(2) from Double(2.0) — both print "2" — so each cell renders as
// type:text.
std::vector<std::string> Signature(const RowSet& rows) {
  std::vector<std::string> out;
  for (const Row& row : rows.SortedRows()) {
    std::string sig;
    for (const Value& v : row.values()) {
      sig += ValueTypeName(v.type());
      sig += ':';
      sig += v.ToString();
      sig += '|';
    }
    out.push_back(std::move(sig));
  }
  return out;
}

// A random schema mixing every attribute kind (2–6 attributes, at least
// one numeric so cross-typed spikes always have a target).
Schema RandomSchema(Rng* rng) {
  const ValueType kinds[] = {ValueType::kString, ValueType::kInt,
                             ValueType::kDouble, ValueType::kBool};
  std::vector<AttributeDef> attrs;
  const size_t n = 2 + rng->NextIndex(5);
  for (size_t i = 0; i < n; ++i) {
    attrs.push_back({"a" + std::to_string(i), kinds[rng->NextIndex(4)]});
  }
  attrs.push_back({"num", rng->NextBool() ? ValueType::kInt
                                          : ValueType::kDouble});
  return Schema(attrs);
}

// Spikes MakeRandomTable's output with the storage shapes the generator
// never produces: nulls anywhere, Int cells in double columns (and vice
// versa), and exact duplicates — the corners where row/batch parity could
// plausibly crack (null-skip kernels, per-cell tags, dedup hashing).
void SpikeTable(Table* table, Rng* rng) {
  const Schema& schema = table->schema();
  const size_t spikes = 20 + rng->NextIndex(20);
  for (size_t s = 0; s < spikes; ++s) {
    if (!table->rows().empty() && rng->NextBool(0.3)) {
      // Duplicate an existing row verbatim.
      Row copy = table->rows()[rng->NextIndex(table->num_rows())];
      EXPECT_TRUE(table->Append(std::move(copy)).ok());
      continue;
    }
    std::vector<Value> values;
    for (const AttributeDef& attr : schema.attributes()) {
      if (rng->NextBool(0.25)) {
        values.push_back(Value::Null());
        continue;
      }
      switch (attr.type) {
        case ValueType::kString:
          values.push_back(
              Value::String("spike" + std::to_string(rng->NextIndex(4))));
          break;
        case ValueType::kInt:
          // Half the time a Double in the int column (cross-typing).
          values.push_back(rng->NextBool()
                               ? Value::Int(rng->NextInt(-5, 5))
                               : Value::Double(
                                     static_cast<double>(rng->NextInt(-5, 5)) +
                                     (rng->NextBool() ? 0.5 : 0.0)));
          break;
        case ValueType::kDouble:
          values.push_back(rng->NextBool()
                               ? Value::Double(rng->NextDouble() * 10.0 - 5.0)
                               : Value::Int(rng->NextInt(-5, 5)));
          break;
        case ValueType::kBool:
          values.push_back(Value::Bool(rng->NextBool()));
          break;
        case ValueType::kNull:
          values.push_back(Value::Null());
          break;
      }
    }
    EXPECT_TRUE(table->AppendValues(std::move(values)).ok());
  }
}

AttributeSet RandomProjection(const Schema& schema, Rng* rng) {
  AttributeSet attrs;
  const size_t n = schema.num_attributes();
  for (size_t i = 0; i < n; ++i) {
    if (rng->NextBool(0.5)) attrs.Add(static_cast<int>(i));
  }
  if (attrs.empty()) attrs.Add(static_cast<int>(rng->NextIndex(n)));
  return attrs;
}

class BatchParityTest : public ::testing::TestWithParam<int> {
 protected:
  uint64_t CaseSeed() const {
    return BaseSeed() * 1000003ull +
           static_cast<uint64_t>(GetParam()) * 6700417ull;
  }
};

TEST_P(BatchParityTest, ScanTableMatchesRowPathAtEveryWidth) {
  Rng rng(CaseSeed() + 1);
  for (int trial = 0; trial < 3; ++trial) {
    const Schema schema = RandomSchema(&rng);
    std::unique_ptr<Table> table =
        MakeRandomTable("fuzz", schema, /*rows=*/150 + rng.NextIndex(100),
                        /*string_pool=*/6, /*value_range=*/30, &rng);
    SpikeTable(table.get(), &rng);
    std::vector<AttributeDomain> domains =
        ExtractDomains(*table, /*max_samples=*/6, &rng);

    std::vector<ConditionPtr> conds;
    conds.push_back(ConditionNode::True());  // all-pass batches
    conds.push_back(ConditionNode::Atom(    // all-filtered batches
        schema.attribute(0).name, CompareOp::kEq, Value::Null()));
    for (int c = 0; c < 4; ++c) {
      RandomConditionOptions options;
      options.num_atoms = 1 + rng.NextIndex(5);
      conds.push_back(RandomCondition(domains, options, &rng));
    }

    for (const ConditionPtr& cond : conds) {
      const AttributeSet attrs = RandomProjection(schema, &rng);
      const Result<RowSet> reference =
          ScanTable(*table, *cond, attrs, ScanOptions());
      ASSERT_TRUE(reference.ok()) << cond->ToString();
      const std::vector<std::string> want = Signature(*reference);
      for (const size_t width :
           {size_t{1}, size_t{7}, size_t{64}, size_t{1024}}) {
        for (const bool wire : {false, true}) {
          ScanOptions options;
          options.batch_width = width;
          options.wire_encode = wire;
          ScanMetrics metrics;
          const Result<RowSet> batched =
              ScanTable(*table, *cond, attrs, options, &metrics);
          ASSERT_TRUE(batched.ok()) << cond->ToString();
          ASSERT_EQ(Signature(*batched), want)
              << "cond: " << cond->ToString() << "\nwidth " << width
              << (wire ? " wire" : "") << " seed " << CaseSeed();
          EXPECT_EQ(metrics.wire_bytes > 0, wire);
        }
      }
    }
  }
}

TEST_P(BatchParityTest, FilterRowsMatchesRowPathAtEveryWidth) {
  Rng rng(CaseSeed() + 2);
  for (int trial = 0; trial < 3; ++trial) {
    const Schema schema = RandomSchema(&rng);
    std::unique_ptr<Table> table =
        MakeRandomTable("fuzz", schema, /*rows=*/120, /*string_pool=*/5,
                        /*value_range=*/25, &rng);
    SpikeTable(table.get(), &rng);
    std::vector<AttributeDomain> domains =
        ExtractDomains(*table, /*max_samples=*/5, &rng);

    // Intermediate input: a random projection of the whole table.
    const AttributeSet in_attrs = RandomProjection(schema, &rng);
    const Result<RowSet> input =
        ScanTable(*table, *ConditionNode::True(), in_attrs, ScanOptions());
    ASSERT_TRUE(input.ok());

    for (int c = 0; c < 4; ++c) {
      // The condition may reference attributes outside the input layout —
      // then both paths must fail identically (compile-time NotFound parity).
      RandomConditionOptions options;
      options.num_atoms = 1 + rng.NextIndex(4);
      const ConditionPtr cond = RandomCondition(domains, options, &rng);
      const AttributeSet out = [&] {
        AttributeSet set;
        for (const int i : in_attrs.Indices()) {
          if (rng.NextBool(0.6)) set.Add(i);
        }
        if (set.empty()) set = in_attrs;
        return set;
      }();
      const Result<RowSet> reference =
          FilterRows(*input, *cond, out, schema, /*batch_width=*/0);
      for (const size_t width : {size_t{1}, size_t{7}, size_t{64}}) {
        const Result<RowSet> batched =
            FilterRows(*input, *cond, out, schema, width);
        ASSERT_EQ(reference.ok(), batched.ok())
            << cond->ToString() << " width " << width;
        if (!reference.ok()) {
          EXPECT_EQ(reference.status().code(), batched.status().code());
          continue;
        }
        ASSERT_EQ(Signature(*batched), Signature(*reference))
            << "cond: " << cond->ToString() << "\nwidth " << width
            << " seed " << CaseSeed();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchParityTest, ::testing::Range(0, 20));

// ---------------------------------------------------------------------------
// TSan coverage: concurrent clients against one batched mediator.

constexpr const char* kCarsSsdl = R"(
source cars(make: string, model: string, year: int,
            color: string, price: int) {
  cost 10.0 1.0;
  rule s1 -> make = $string and price < $int;
  rule s2 -> make = $string and color = $string;
  export s1 : {make, model, year, color};
  export s2 : {make, model, year};
}
)";

std::unique_ptr<Table> ConcurrencyCars() {
  Result<SourceDescription> description = ParseSsdl(kCarsSsdl);
  EXPECT_TRUE(description.ok());
  auto table = std::make_unique<Table>("cars", description->schema());
  const char* makes[] = {"BMW", "Toyota", "Honda"};
  const char* colors[] = {"red", "black", "blue"};
  for (int i = 0; i < 300; ++i) {
    EXPECT_TRUE(table
                    ->AppendValues({Value::String(makes[i % 3]),
                                    Value::String("m" + std::to_string(i % 17)),
                                    Value::Int(1990 + i % 10),
                                    Value::String(colors[i % 3]),
                                    Value::Int(10000 + (i % 40) * 1000)})
                    .ok());
  }
  return table;
}

TEST(BatchConcurrencyTest, ConcurrentClientsOnBatchedMediator) {
  // Union-shaped queries: parallel children race on the shared ColumnStore
  // build and the in-place batched set combines.
  const std::vector<std::string> queries = {
      "SELECT make, model FROM cars WHERE (make = \"BMW\" and price < 30000) "
      "or (make = \"Toyota\" and color = \"red\")",
      "SELECT make, model, year FROM cars WHERE (make = \"Honda\" and price "
      "< 25000) or (make = \"BMW\" and color = \"black\")",
      "SELECT model FROM cars WHERE make = \"Toyota\" and price < 40000",
  };

  // Reference answers from a single-threaded row-path mediator.
  Mediator reference;
  {
    Result<SourceDescription> description = ParseSsdl(kCarsSsdl);
    ASSERT_TRUE(description.ok());
    ASSERT_TRUE(reference
                    .RegisterSource(std::move(description).value(),
                                    ConcurrencyCars())
                    .ok());
  }
  std::vector<std::vector<std::string>> want;
  for (const std::string& sql : queries) {
    const Result<Mediator::QueryResult> result = reference.Query(sql);
    ASSERT_TRUE(result.ok()) << sql;
    want.push_back(Signature(result->rows));
  }

  Mediator::Options options;
  options.num_threads = 4;
  options.batch_width = 64;
  Mediator mediator(options);
  {
    Result<SourceDescription> description = ParseSsdl(kCarsSsdl);
    ASSERT_TRUE(description.ok());
    ASSERT_TRUE(mediator
                    .RegisterSource(std::move(description).value(),
                                    ConcurrencyCars())
                    .ok());
  }

  constexpr int kClients = 4;
  constexpr int kRounds = 8;
  std::vector<std::string> errors(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int round = 0; round < kRounds; ++round) {
        const size_t q = static_cast<size_t>(c + round) % queries.size();
        const Result<Mediator::QueryResult> result =
            mediator.Query(queries[q]);
        if (!result.ok()) {
          errors[c] = result.status().ToString();
          return;
        }
        if (Signature(result->rows) != want[q]) {
          errors[c] = "answer mismatch on " + queries[q];
          return;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(errors[c].empty()) << "client " << c << ": " << errors[c];
  }
}

}  // namespace
}  // namespace gencompact
