// Seeded bounded-source differential fuzzer: random result bounds (bound ×
// page × accesses) × random conditions × random tables, against an
// unbounded twin of the same table.
//
// Invariants (the tentpole's acceptance bar):
//  - an answer the mediator reports COMPLETE is bit-identical to the
//    unbounded answer (paging loops and refinement recover exactness);
//  - an answer that is smaller than the unbounded one is NEVER silent: it
//    carries a truncation marker naming the bounded source;
//  - every partial answer is a strict subset of the true answer — paging
//    never duplicates, drops, or invents rows, even with mid-page faults
//    retried at random offsets.
//
// The base seed comes from GENCOMPACT_TEST_SEED (default 439) so CI can run
// a seed matrix.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "exec/fault_policy.h"
#include "mediator/mediator.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

uint64_t BaseSeed() {
  const char* env = std::getenv("GENCOMPACT_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 439;
}

std::vector<std::string> Signature(const RowSet& rows) {
  std::vector<std::string> out;
  for (const Row& row : rows.SortedRows()) {
    std::string sig;
    for (const Value& v : row.values()) {
      sig += ValueTypeName(v.type());
      sig += ':';
      sig += v.ToString();
      sig += '|';
    }
    out.push_back(std::move(sig));
  }
  return out;
}

constexpr const char* kFuzzSsdlTemplate = R"(
source R(k: string, v: int) {
  cost 10.0 1.0;
  %s
  rule s1 -> k = $string;
  rule s2 -> v < $int;
  rule s3 -> v >= $int;
  rule s4 -> v < $int or v >= $int;
  rule s5 -> k = $string or k = $string;
  rule s6 -> v >= $int and v < $int;
  export s1 : {k, v};
  export s2 : {k, v};
  export s3 : {k, v};
  export s4 : {k, v};
  export s5 : {k, v};
  export s6 : {k, v};
})";

/// One random condition from the parametric families the fuzz grammar
/// supports end to end (constants drawn from the data domain [0, 20),
/// string keys from the 4-value pool the table uses).
std::string RandomConditionText(Rng* rng) {
  const auto c = [&] { return std::to_string(rng->NextIndex(20)); };
  const auto s = [&] {
    return "\"s" + std::to_string(rng->NextIndex(4)) + "\"";
  };
  switch (rng->NextIndex(6)) {
    case 0:
      return "v < " + c();
    case 1:
      return "v >= " + c();
    case 2:
      return "k = " + s();
    case 3: {
      // lo < hi, so the disjunction never simplifies to TRUE (an
      // unconditioned download the fuzz grammar deliberately refuses).
      const uint64_t lo = rng->NextIndex(10);
      const uint64_t hi = lo + 1 + rng->NextIndex(10);
      return "v < " + std::to_string(lo) + " or v >= " + std::to_string(hi);
    }
    case 4:
      return "k = " + s() + " or k = " + s();
    default: {
      const uint64_t lo = rng->NextIndex(10);
      const uint64_t hi = lo + 1 + rng->NextIndex(10);
      return "v >= " + std::to_string(lo) + " and v < " + std::to_string(hi);
    }
  }
}

struct FuzzMediator {
  std::unique_ptr<Mediator> mediator;
  Source* source = nullptr;
};

FuzzMediator MakeFuzzMediator(const std::string& bound_line, size_t num_rows,
                              uint64_t table_seed, Clock* clock) {
  char ssdl[1024];
  std::snprintf(ssdl, sizeof(ssdl), kFuzzSsdlTemplate, bound_line.c_str());
  Result<SourceDescription> description = ParseSsdl(ssdl);
  EXPECT_TRUE(description.ok()) << description.status().ToString();

  Rng rng(table_seed);
  auto table = std::make_unique<Table>("R", description->schema());
  for (size_t i = 0; i < num_rows; ++i) {
    EXPECT_TRUE(
        table
            ->AppendValues(
                {Value::String("s" + std::to_string(rng.NextIndex(4))),
                 Value::Int(static_cast<int64_t>(rng.NextIndex(20)))})
            .ok());
  }

  Mediator::Options options;
  options.partial_results = true;
  options.retry.max_attempts = 4;
  options.retry.backoff.base = std::chrono::microseconds(1);
  options.retry.backoff.cap = std::chrono::microseconds(2);
  options.clock = clock;
  FuzzMediator out;
  out.mediator = std::make_unique<Mediator>(options);
  EXPECT_TRUE(out.mediator
                  ->RegisterSource(std::move(description).value(),
                                   std::move(table))
                  .ok());
  Result<CatalogEntry*> entry = out.mediator->catalog()->Find("R");
  EXPECT_TRUE(entry.ok());
  out.source = (*entry)->source();
  return out;
}

TEST(BoundedFuzzTest, NoAnswerIsEverSilentlyTruncated) {
  const uint64_t base = BaseSeed();
  FakeClock clock;
  size_t exact = 0, partial = 0;
  constexpr size_t kTrials = 60;
  for (size_t trial = 0; trial < kTrials; ++trial) {
    Rng rng(base * 7919 + trial * 104729);

    // Random bound configuration: 1..12 rows per response, paging in
    // random page sizes about half the time, an access cap now and then.
    const uint64_t bound = 1 + rng.NextIndex(12);
    const bool paging = rng.NextBool();
    std::string bound_line = "bound " + std::to_string(bound);
    if (paging) {
      bound_line += " page " + std::to_string(1 + rng.NextIndex(bound));
    }
    if (rng.NextBool(0.3)) {
      bound_line += " accesses " + std::to_string(1 + rng.NextIndex(6));
    }
    bound_line += ";";

    const size_t num_rows = 20 + rng.NextIndex(41);
    const uint64_t table_seed = rng.Next();
    FuzzMediator bounded =
        MakeFuzzMediator(bound_line, num_rows, table_seed, &clock);
    FuzzMediator unbounded =
        MakeFuzzMediator("", num_rows, table_seed, &clock);

    // Sometimes script mid-page transients: the per-page retry discipline
    // must absorb them without duplicating or dropping rows.
    if (paging && rng.NextBool(0.4)) {
      FaultPolicy policy;
      policy.page_faults.push_back(
          {/*offset=*/rng.NextIndex(num_rows), /*fail_count=*/
           1 + rng.NextIndex(2)});
      bounded.source->set_fault_policy(policy);
    }

    const std::string cond = RandomConditionText(&rng);
    const std::string sql = "SELECT k, v FROM R WHERE " + cond;
    const Result<Mediator::QueryResult> a = bounded.mediator->Query(sql);
    const Result<Mediator::QueryResult> b = unbounded.mediator->Query(sql);
    ASSERT_TRUE(b.ok()) << sql << ": " << b.status().ToString();
    ASSERT_TRUE(a.ok()) << sql << " [" << bound_line
                        << "]: " << a.status().ToString();

    // Subset always: bounded answers never invent rows.
    for (const Row& row : a->rows.rows()) {
      ASSERT_TRUE(b->rows.Contains(row))
          << sql << " [" << bound_line << "]: invented row";
    }

    if (a->completeness.complete) {
      // Exactness promise: complete answers are bit-identical.
      ASSERT_EQ(Signature(a->rows), Signature(b->rows))
          << sql << " [" << bound_line << "]";
      ASSERT_TRUE(a->completeness.truncated_sources.empty());
      ++exact;
    } else {
      // ZERO silent truncation: anything short of the true answer names
      // the bounded source in its marker.
      ASSERT_FALSE(a->completeness.truncated_sources.empty())
          << sql << " [" << bound_line << "]";
      ASSERT_LT(a->rows.size(), b->rows.size())
          << sql << " [" << bound_line
          << "]: marked partial but not a strict subset";
      for (const Mediator::TruncatedSource& marker :
           a->completeness.truncated_sources) {
        EXPECT_EQ(marker.source, "R");
        EXPECT_GT(marker.bound, 0u);
        EXPECT_FALSE(marker.reason.empty());
      }
      ++partial;
    }
    // The size mismatch direction: a smaller answer MUST be marked.
    if (a->rows.size() < b->rows.size()) {
      ASSERT_FALSE(a->completeness.complete);
    }
  }
  // The configuration space must exercise both regimes, whatever the seed.
  EXPECT_GT(exact, 0u);
  EXPECT_GT(partial, 0u);
}

}  // namespace
}  // namespace gencompact
