// Coverage for guard rails and miscellaneous API surfaces: budget guards
// trip cleanly and report themselves, printers render every node kind, and
// small accessors behave.

#include <gtest/gtest.h>

#include "expr/condition_parser.h"
#include "expr/normal_forms.h"
#include "plan/plan_printer.h"
#include "planner/epg.h"
#include "planner/ipg.h"
#include "ssdl/description_io.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

// Source over many attributes that accepts any single equality and full
// downloads — wide conjunctions are plannable but trip the subset guards.
class WideFixture : public ::testing::Test {
 protected:
  WideFixture() : description_("wide", WideSchema()) {
    Grammar& grammar = description_.mutable_grammar();
    const int atom = grammar.AddNonterminal("atom");
    for (size_t i = 0; i < 18; ++i) {
      EXPECT_TRUE(grammar
                      .AddRule({atom,
                                {GrammarSymbol::Terminal(TerminalPattern::Attr(
                                     "a" + std::to_string(i))),
                                 GrammarSymbol::Terminal(
                                     TerminalPattern::Op(CompareOp::kEq)),
                                 GrammarSymbol::Terminal(
                                     TerminalPattern::Placeholder(
                                         TerminalPattern::PlaceholderType::kInt))}})
                      .ok());
    }
    const int dl = grammar.AddNonterminal("dl");
    EXPECT_TRUE(
        grammar.AddRule({dl, {GrammarSymbol::Terminal(TerminalPattern::TrueTok())}})
            .ok());
    AttributeSet all = description_.schema().AllAttributes();
    EXPECT_TRUE(description_.DeclareConditionNonterminal("atom", all).ok());
    EXPECT_TRUE(description_.DeclareConditionNonterminal("dl", all).ok());

    table_ = std::make_unique<Table>("wide", description_.schema());
    for (int r = 0; r < 5; ++r) {
      std::vector<Value> values;
      for (int i = 0; i < 18; ++i) values.push_back(Value::Int(r + i));
      EXPECT_TRUE(table_->Append(Row(std::move(values))).ok());
    }
    handle_ = std::make_unique<SourceHandle>(description_, table_.get());
  }

  static Schema WideSchema() {
    std::vector<AttributeDef> attrs;
    for (int i = 0; i < 18; ++i) {
      attrs.push_back({"a" + std::to_string(i), ValueType::kInt});
    }
    return Schema(std::move(attrs));
  }

  ConditionPtr WideConjunction(size_t n) {
    std::vector<ConditionPtr> atoms;
    for (size_t i = 0; i < n; ++i) {
      atoms.push_back(ConditionNode::Atom("a" + std::to_string(i),
                                          CompareOp::kEq,
                                          Value::Int(static_cast<int64_t>(i))));
    }
    return ConditionNode::And(std::move(atoms));
  }

  SourceDescription description_;
  std::unique_ptr<Table> table_;
  std::unique_ptr<SourceHandle> handle_;
};

TEST_F(WideFixture, IpgSubsetGuardTripsButStillPlans) {
  IpgOptions options;
  options.max_subset_children = 6;  // 16-way conjunction exceeds this
  Ipg ipg(handle_.get(), options);
  AttributeSet attrs;
  attrs.Add(0);
  const PlanPtr plan = ipg.Plan(WideConjunction(16), attrs);
  ASSERT_NE(plan, nullptr);  // download / singleton decompositions survive
  EXPECT_TRUE(ipg.stats().incomplete);
}

TEST_F(WideFixture, EpgSubsetGuardTripsButStillPlans) {
  EpgOptions options;
  options.max_and_children = 6;
  Epg epg(handle_.get(), options);
  AttributeSet attrs;
  attrs.Add(0);
  const PlanPtr space = epg.Generate(WideConjunction(16), attrs);
  ASSERT_NE(space, nullptr);
  EXPECT_TRUE(epg.incomplete());
}

TEST_F(WideFixture, EpgWithoutUniversalDownloadMatchesPaperListing) {
  // With download_at_every_node = false (the paper's literal Algorithm
  // 5.1), an ∧-rooted CT has no download fallback at the root.
  SourceDescription no_atom("nd", WideSchema());
  Grammar& grammar = no_atom.mutable_grammar();
  const int dl = grammar.AddNonterminal("dl");
  ASSERT_TRUE(
      grammar.AddRule({dl, {GrammarSymbol::Terminal(TerminalPattern::TrueTok())}})
          .ok());
  ASSERT_TRUE(no_atom
                  .DeclareConditionNonterminal("dl",
                                               no_atom.schema().AllAttributes())
                  .ok());
  SourceHandle handle(no_atom, table_.get());

  AttributeSet attrs;
  attrs.Add(0);
  EpgOptions paper_options;
  paper_options.download_at_every_node = false;
  Epg paper_epg(&handle, paper_options);
  // ∧ node: no pure plan, no child plans, and no ∨ branch to host the
  // download — the paper's listing finds nothing.
  EXPECT_EQ(paper_epg.Generate(WideConjunction(2), attrs), nullptr);

  Epg full_epg(&handle);  // default: download considered everywhere
  EXPECT_NE(full_epg.Generate(WideConjunction(2), attrs), nullptr);
}

TEST(PlanPrinterCoverageTest, RendersEveryNodeKind) {
  AttributeSet attrs;
  attrs.Add(0);
  const Schema schema({{"a", ValueType::kInt}});
  const PlanPtr sq1 = PlanNode::SourceQuery(Parse("a = 1"), attrs);
  const PlanPtr sq2 = PlanNode::SourceQuery(Parse("a = 2"), attrs);
  const PlanPtr plan = PlanNode::Choice(
      {PlanNode::UnionOf({sq1, sq2}),
       PlanNode::IntersectOf({sq1, PlanNode::MediatorSp(Parse("a = 3"), attrs,
                                                        sq2)})});
  const std::string text = PrintPlan(*plan, schema);
  EXPECT_NE(text.find("Choice"), std::string::npos);
  EXPECT_NE(text.find("Union"), std::string::npos);
  EXPECT_NE(text.find("Intersect"), std::string::npos);
  EXPECT_NE(text.find("MediatorSelectProject"), std::string::npos);
  EXPECT_NE(text.find("SourceQuery"), std::string::npos);

  const std::string short_text = plan->ToShortString();
  EXPECT_NE(short_text.find("SQ["), std::string::npos);
  EXPECT_NE(short_text.find(" | "), std::string::npos);
}

TEST(CountAlternativesTest, ChoiceArithmetic) {
  AttributeSet attrs;
  const PlanPtr a = PlanNode::SourceQuery(Parse("x = 1"), attrs);
  const PlanPtr b = PlanNode::SourceQuery(Parse("x = 2"), attrs);
  const PlanPtr c = PlanNode::SourceQuery(Parse("x = 3"), attrs);
  EXPECT_EQ(a->CountAlternatives(), 1u);
  const PlanPtr choice = PlanNode::Choice({a, b, c});
  EXPECT_EQ(choice->CountAlternatives(), 3u);
  // Union of two 3-way choices: 9 combinations.
  EXPECT_EQ(PlanNode::UnionOf({choice, PlanNode::Choice({a, b, c})})
                ->CountAlternatives(),
            9u);
  // Saturation at the cap.
  EXPECT_EQ(choice->CountAlternatives(2), 2u);
}

TEST(DescriptionToStringTest, ListsRulesAndExports) {
  const Result<SourceDescription> description = ParseSsdl(R"(
    source R(a: string) {
      rule s1 -> a = $string;
      export s1 : {a};
    })");
  ASSERT_TRUE(description.ok());
  const std::string text = description->ToString();
  EXPECT_NE(text.find("source R"), std::string::npos);
  EXPECT_NE(text.find("s1 ->"), std::string::npos);
  EXPECT_NE(text.find("export s1"), std::string::npos);
}

TEST(WriteSsdlErrorTest, AttributeClashingNonterminalRejected) {
  // Build a description whose nonterminal name equals an attribute name:
  // not expressible via ParseSsdl (it rejects the clash), so build directly.
  SourceDescription description("R", Schema({{"a", ValueType::kInt}}));
  Grammar& grammar = description.mutable_grammar();
  const int bad = grammar.AddNonterminal("a");
  ASSERT_TRUE(grammar
                  .AddRule({bad,
                            {GrammarSymbol::Terminal(TerminalPattern::Attr("a")),
                             GrammarSymbol::Terminal(TerminalPattern::Op(
                                 CompareOp::kEq)),
                             GrammarSymbol::Terminal(TerminalPattern::Placeholder(
                                 TerminalPattern::PlaceholderType::kInt))}})
                  .ok());
  ASSERT_TRUE(description
                  .DeclareConditionNonterminal("a",
                                               description.schema().AllAttributes())
                  .ok());
  EXPECT_FALSE(WriteSsdl(description).ok());
}

TEST(RewriteAtomBudgetTest, NormalFormGuardsInBaselinePlanners) {
  // Oversized DNF conversions surface as ResourceExhausted, not hangs.
  std::vector<ConditionPtr> clauses;
  for (int i = 0; i < 14; ++i) {
    clauses.push_back(Parse("a = " + std::to_string(i) + " or b = " +
                            std::to_string(i)));
  }
  const Result<ConditionPtr> dnf =
      ToDnf(ConditionNode::And(std::move(clauses)), 2000);
  EXPECT_EQ(dnf.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace gencompact
