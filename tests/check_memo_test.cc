// Cross-query Check memo (src/ssdl/check_memo.*):
//  - LRU / shard semantics of the second-level memo itself;
//  - Checker integration: a recurring condition whose interned id died
//    still hits by structural fingerprint, across Checker instances;
//  - verify-on-hit catches and repairs a poisoned entry;
//  - description reload bumps the epoch and invalidates the source's
//    entries (stale capabilities never leak into fresh plans);
//  - zero capacity = disabled, with mediator-level parity;
//  - an 8-thread hammer racing lookups, inserts, verification, and
//    invalidation on one shared memo (run under TSan/ASan in scripts/ci.sh).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "expr/condition_parser.h"
#include "mediator/mediator.h"
#include "ssdl/check.h"
#include "ssdl/check_memo.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

std::vector<AttributeSet> Family(uint64_t bits) {
  return {AttributeSet::FromBits(bits)};
}

std::vector<AttributeSet> Sorted(std::vector<AttributeSet> family) {
  std::sort(family.begin(), family.end());
  return family;
}

// ---------------------------------------------------------------------------
// Memo-level semantics.

TEST(CheckMemoTest, LruEvictsLeastRecentlyUsed) {
  CheckMemo memo(/*capacity=*/2, /*shards=*/1);
  const CheckMemoKey a{1, 0, 0};
  const CheckMemoKey b{2, 0, 0};
  const CheckMemoKey c{3, 0, 0};
  memo.Insert(a, Family(0b01));
  memo.Insert(b, Family(0b10));
  ASSERT_TRUE(memo.Lookup(a).has_value());  // refreshes a: b is now LRU
  memo.Insert(c, Family(0b11));             // evicts b
  EXPECT_TRUE(memo.Lookup(a).has_value());
  EXPECT_FALSE(memo.Lookup(b).has_value());
  EXPECT_TRUE(memo.Lookup(c).has_value());
  const CheckMemo::Stats stats = memo.stats();
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.size, 2u);
}

TEST(CheckMemoTest, ReinsertRefreshesValueAndRecency) {
  CheckMemo memo(/*capacity=*/2, /*shards=*/1);
  const CheckMemoKey a{1, 0, 0};
  memo.Insert(a, Family(0b01));
  memo.Insert(a, Family(0b11));  // refresh, not a second entry
  const auto hit = memo.Lookup(a);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ((*hit)[0].bits(), 0b11u);
  EXPECT_EQ(memo.stats().refreshes, 1u);
  EXPECT_EQ(memo.stats().size, 1u);
}

TEST(CheckMemoTest, ShardedCapacityRoundsUpPerShard) {
  CheckMemo memo(/*capacity=*/6, /*shards=*/4);
  EXPECT_EQ(memo.num_shards(), 4u);
  EXPECT_GE(memo.capacity(), 6u);  // per-shard share rounds up
  CheckMemo one(/*capacity=*/8, /*shards=*/1);
  EXPECT_EQ(one.capacity(), 8u);
}

TEST(CheckMemoTest, EpochMismatchNeverHits) {
  CheckMemo memo(/*capacity=*/16, /*shards=*/1);
  memo.Insert(CheckMemoKey{42, 7, /*epoch=*/0}, Family(0b1));
  EXPECT_FALSE(memo.Lookup(CheckMemoKey{42, 7, /*epoch=*/1}).has_value());
  EXPECT_TRUE(memo.Lookup(CheckMemoKey{42, 7, /*epoch=*/0}).has_value());
}

TEST(CheckMemoTest, InvalidateSourceDropsOnlyThatSource) {
  CheckMemo memo(/*capacity=*/16, /*shards=*/2);
  memo.Insert(CheckMemoKey{1, /*source_id=*/0, 0}, Family(0b1));
  memo.Insert(CheckMemoKey{2, /*source_id=*/0, 1}, Family(0b1));
  memo.Insert(CheckMemoKey{3, /*source_id=*/1, 0}, Family(0b1));
  EXPECT_EQ(memo.InvalidateSource(0), 2u);  // both epochs of source 0
  EXPECT_FALSE(memo.Lookup(CheckMemoKey{1, 0, 0}).has_value());
  EXPECT_FALSE(memo.Lookup(CheckMemoKey{2, 0, 1}).has_value());
  EXPECT_TRUE(memo.Lookup(CheckMemoKey{3, 1, 0}).has_value());
  EXPECT_EQ(memo.stats().invalidated, 2u);
}

TEST(CheckMemoTest, ZeroCapacityIsDisabled) {
  CheckMemo memo(/*capacity=*/0);
  EXPECT_FALSE(memo.enabled());
  memo.Insert(CheckMemoKey{1, 0, 0}, Family(0b1));
  EXPECT_FALSE(memo.Lookup(CheckMemoKey{1, 0, 0}).has_value());
  const CheckMemo::Stats stats = memo.stats();
  // A disabled memo counts nothing: no phantom misses distorting hit rates.
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.capacity, 0u);
}

TEST(CheckMemoTest, VerifySamplingIsDeterministic) {
  CheckMemo always(/*capacity=*/8, 1, /*verify_rate=*/1.0);
  CheckMemo never(/*capacity=*/8, 1, /*verify_rate=*/0.0);
  CheckMemo quarter(/*capacity=*/8, 1, /*verify_rate=*/0.25);
  int always_n = 0, never_n = 0, quarter_n = 0;
  for (int i = 0; i < 100; ++i) {
    always_n += always.SampleVerifyHit() ? 1 : 0;
    never_n += never.SampleVerifyHit() ? 1 : 0;
    quarter_n += quarter.SampleVerifyHit() ? 1 : 0;
  }
  EXPECT_EQ(always_n, 100);
  EXPECT_EQ(never_n, 0);
  EXPECT_EQ(quarter_n, 25);  // exactly 1 in 4, no randomness
}

// ---------------------------------------------------------------------------
// Checker integration.

constexpr const char* kCarsSsdl = R"(
source cars(make: string, model: string, year: int,
            color: string, price: int) {
  cost 10.0 1.0;
  rule s1 -> make = $string and price < $int;
  rule s2 -> make = $string and color = $string;
  export s1 : {make, model, year, color};
  export s2 : {make, model, year};
}
)";

SourceDescription CarsDescription() {
  Result<SourceDescription> description = ParseSsdl(kCarsSsdl);
  EXPECT_TRUE(description.ok());
  return std::move(description).value();
}

TEST(CheckMemoCheckerTest, RecurringConditionHitsAfterItsIdDied) {
  const SourceDescription description = CarsDescription();
  CheckMemo memo(/*capacity=*/64, /*shards=*/2);
  const char* text = "make = \"BMW\" and price < 30000";

  std::vector<AttributeSet> first_family;
  uint64_t first_id = 0;
  {
    Checker checker(&description);
    checker.EnableSharedMemo(&memo, /*source_id=*/0, /*epoch=*/0);
    const Result<ConditionPtr> cond = ParseCondition(text);
    ASSERT_TRUE(cond.ok());
    first_id = (*cond)->id();
    first_family = checker.Check(**cond);
    EXPECT_FALSE(first_family.empty());
    EXPECT_EQ(checker.num_shared_hits(), 0u);  // first sight: full miss
  }
  // Condition and Checker are both gone — the L1 entry died with them. A
  // recurrence re-parses to a fresh id but the same structural fingerprint,
  // and a brand-new Checker answers it from the shared memo.
  Checker checker(&description);
  checker.EnableSharedMemo(&memo, /*source_id=*/0, /*epoch=*/0);
  const Result<ConditionPtr> again = ParseCondition(text);
  ASSERT_TRUE(again.ok());
  EXPECT_NE((*again)->id(), first_id);
  EXPECT_EQ(Sorted(checker.Check(**again)), Sorted(first_family));
  EXPECT_EQ(checker.num_shared_hits(), 1u);
  EXPECT_EQ(checker.total_earley_items(), 0u);  // no parse happened
  EXPECT_GE(memo.stats().hits, 1u);
}

TEST(CheckMemoCheckerTest, VerifyOnHitRepairsPoisonedEntry) {
  const SourceDescription description = CarsDescription();
  CheckMemo memo(/*capacity=*/64, /*shards=*/1, /*verify_rate=*/1.0);
  const Result<ConditionPtr> cond =
      ParseCondition("make = \"BMW\" and price < 30000");
  ASSERT_TRUE(cond.ok());

  // Reference family from an unmemoized Checker.
  Checker reference(&description);
  const std::vector<AttributeSet> truth = reference.Check(**cond);
  ASSERT_FALSE(truth.empty());

  // Poison the memo under this condition's exact key — the shape a
  // fingerprint collision or a stale entry would take.
  const CheckMemoKey key{(*cond)->fingerprint(), /*source_id=*/0, /*epoch=*/0};
  memo.Insert(key, Family(0b1));

  Checker checker(&description);
  checker.EnableSharedMemo(&memo, /*source_id=*/0, /*epoch=*/0);
  // The hit is sampled (rate 1.0), re-checked against a fresh Earley run,
  // found wrong, and counted — the caller sees the true family.
  EXPECT_EQ(Sorted(checker.Check(**cond)), Sorted(truth));
  EXPECT_EQ(memo.stats().verify_mismatches, 1u);
  EXPECT_EQ(memo.stats().verified_hits, 1u);

  // One observed collision condemns the whole key space: the memo latches
  // itself off (enabled() false, entries dropped) and every later Check
  // falls back to a fresh Earley run — slower, never wrong.
  EXPECT_TRUE(memo.auto_disabled());
  EXPECT_FALSE(memo.enabled());
  EXPECT_EQ(memo.stats().size, 0u);
  EXPECT_TRUE(memo.stats().auto_disabled);
  Checker after(&description);
  after.EnableSharedMemo(&memo, /*source_id=*/0, /*epoch=*/0);
  EXPECT_EQ(Sorted(after.Check(**cond)), Sorted(truth));
  EXPECT_EQ(memo.stats().verify_mismatches, 1u);  // no new mismatch
  EXPECT_EQ(memo.stats().verified_hits, 1u);      // no hit, so no new sample
  EXPECT_EQ(after.num_shared_hits(), 0u);

  // The latch is one-way: inserts stay no-ops.
  memo.Insert(key, Family(0b1));
  EXPECT_FALSE(memo.Lookup(key).has_value());
  EXPECT_EQ(memo.stats().size, 0u);
}

// ---------------------------------------------------------------------------
// Mediator integration: epoch invalidation on description reload, and
// zero-capacity parity.

std::unique_ptr<Table> CarsTable(const Schema& schema) {
  auto table = std::make_unique<Table>("cars", schema);
  const auto add = [&](const char* make, const char* model, int64_t year,
                       const char* color, int64_t price) {
    EXPECT_TRUE(table
                    ->AppendValues({Value::String(make), Value::String(model),
                                    Value::Int(year), Value::String(color),
                                    Value::Int(price)})
                    .ok());
  };
  add("BMW", "318i", 1996, "red", 21000);
  add("BMW", "528i", 1997, "black", 38000);
  add("Toyota", "Corolla", 1997, "red", 13000);
  add("Toyota", "Camry", 1998, "blue", 19000);
  return table;
}

// Same source, but s1 no longer exports `color`.
constexpr const char* kCarsSsdlNarrow = R"(
source cars(make: string, model: string, year: int,
            color: string, price: int) {
  cost 10.0 1.0;
  rule s1 -> make = $string and price < $int;
  rule s2 -> make = $string and color = $string;
  export s1 : {make, model, year};
  export s2 : {make, model, year};
}
)";

TEST(CheckMemoMediatorTest, ReloadBumpsEpochAndInvalidatesStaleEntries) {
  Mediator::Options options;
  options.check_memo_capacity = 128;
  options.check_memo_verify_rate = 1.0;
  Mediator mediator(options);
  SourceDescription description = CarsDescription();
  ASSERT_TRUE(mediator
                  .RegisterSource(std::move(description),
                                  CarsTable(CarsDescription().schema()))
                  .ok());

  const std::string sql =
      "select color from cars where make = \"BMW\" and price < 30000";
  ASSERT_TRUE(mediator.Query(sql).ok());  // v1: s1 exports color

  Result<SourceDescription> narrow = ParseSsdl(kCarsSsdlNarrow);
  ASSERT_TRUE(narrow.ok());
  ASSERT_TRUE(mediator.ReloadSource(std::move(narrow).value()).ok());

  // Stale memo entries claimed `color` was exported; the epoch bump makes
  // them unreachable, so the reloaded capabilities decide feasibility.
  const auto after = mediator.Query(sql);
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kNoFeasiblePlan);

  const Mediator::Stats stats = mediator.StatsSnapshot();
  ASSERT_EQ(stats.sources.size(), 1u);
  EXPECT_EQ(stats.sources[0].description_epoch, 1u);
  EXPECT_GT(stats.check_memo.invalidated, 0u);
  EXPECT_EQ(stats.check_memo.verify_mismatches, 0u);

  // A query the narrowed description still supports works post-reload.
  EXPECT_TRUE(mediator
                  .Query("select make, model from cars where make = \"BMW\" "
                         "and price < 30000")
                  .ok());
}

TEST(CheckMemoMediatorTest, ReloadRejectsWrongNameOrSchema) {
  Mediator mediator;
  ASSERT_TRUE(mediator
                  .RegisterSource(CarsDescription(),
                                  CarsTable(CarsDescription().schema()))
                  .ok());
  // Unknown source name.
  SourceDescription other("trucks", CarsDescription().schema());
  EXPECT_EQ(mediator.ReloadSource(std::move(other)).code(),
            StatusCode::kNotFound);
  // Same name, incompatible schema.
  SourceDescription wrong_schema("cars",
                                 Schema({{"make", ValueType::kString}}));
  EXPECT_EQ(mediator.ReloadSource(std::move(wrong_schema)).code(),
            StatusCode::kInvalidArgument);
}

TEST(CheckMemoMediatorTest, ZeroCapacityMatchesMemoizedAnswersAndPlans) {
  Mediator::Options off;
  off.check_memo_capacity = 0;
  Mediator disabled(off);
  Mediator::Options on;
  on.check_memo_capacity = 256;
  on.check_memo_verify_rate = 1.0;
  Mediator enabled(on);
  for (Mediator* mediator : {&disabled, &enabled}) {
    ASSERT_TRUE(mediator
                    ->RegisterSource(CarsDescription(),
                                     CarsTable(CarsDescription().schema()))
                    .ok());
  }
  EXPECT_EQ(disabled.check_memo(), nullptr);
  ASSERT_NE(enabled.check_memo(), nullptr);

  const std::vector<std::string> queries = {
      "select make, model from cars where make = \"BMW\" and price < 30000",
      "select make from cars where make = \"Toyota\" and color = \"red\"",
      "select make, model from cars where make = \"BMW\" and price < 30000",
  };
  for (const std::string& sql : queries) {
    const auto a = disabled.Query(sql);
    const auto b = enabled.Query(sql);
    ASSERT_EQ(a.ok(), b.ok()) << sql;
    if (!a.ok()) continue;
    // Identical plans and identical answers, bit for bit.
    EXPECT_EQ(a->plan->ToShortString(), b->plan->ToShortString()) << sql;
    EXPECT_EQ(a->estimated_cost, b->estimated_cost) << sql;
    ASSERT_EQ(a->rows.size(), b->rows.size()) << sql;
    for (const Row& row : a->rows.rows()) {
      EXPECT_TRUE(b->rows.Contains(row)) << sql;
    }
  }
  EXPECT_FALSE(disabled.StatsSnapshot().check_memo.enabled);
  EXPECT_TRUE(enabled.StatsSnapshot().check_memo.enabled);
  EXPECT_EQ(enabled.StatsSnapshot().check_memo.verify_mismatches, 0u);
}

// ---------------------------------------------------------------------------
// Concurrency hammer (run under TSan and ASan by scripts/ci.sh): 8 threads
// share one memo through short-lived Checkers — every lookup either misses
// (and re-parses) or hits an entry another thread published, with half the
// hits re-verified and a racing invalidator dropping entries mid-flight.

TEST(CheckMemoHammerTest, ThreadsShareOneMemoConsistently) {
  const SourceDescription description = CarsDescription();
  const std::vector<std::string> texts = {
      "make = \"BMW\" and price < 30000",
      "make = \"Toyota\" and price < 20000",
      "make = \"BMW\" and color = \"red\"",
      "make = \"Audi\" and price < 45000",
      "make = \"Toyota\" and color = \"blue\"",
      "price < 10000",
      "make = \"BMW\"",
      "make = \"VW\" and color = \"green\"",
  };
  // Reference families from an unmemoized Checker.
  std::vector<std::vector<AttributeSet>> expected;
  {
    Checker reference(&description);
    for (const std::string& text : texts) {
      const Result<ConditionPtr> cond = ParseCondition(text);
      ASSERT_TRUE(cond.ok());
      expected.push_back(Sorted(reference.Check(**cond)));
    }
  }

  CheckMemo memo(/*capacity=*/32, /*shards=*/4, /*verify_rate=*/0.5);
  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 30;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([t, &texts, &expected, &description, &memo]() {
      for (size_t round = 0; round < kRounds; ++round) {
        // Fresh Checker per round: every L1 is cold, so all sharing runs
        // through the contested L2 path.
        Checker checker(&description);
        checker.EnableSharedMemo(&memo, /*source_id=*/0, /*epoch=*/0);
        for (size_t i = 0; i < texts.size(); ++i) {
          const size_t pick = (i + t * 3 + round) % texts.size();
          const Result<ConditionPtr> cond = ParseCondition(texts[pick]);
          ASSERT_TRUE(cond.ok());
          const std::vector<AttributeSet> family = checker.Check(**cond);
          EXPECT_EQ(Sorted(family), expected[pick]) << texts[pick];
        }
        if (t == 0 && round % 7 == 3) {
          // Race invalidation against the other threads' hits/inserts;
          // correctness must not depend on an entry surviving.
          memo.InvalidateSource(0);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  const CheckMemo::Stats stats = memo.stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_EQ(stats.verify_mismatches, 0u);
  EXPECT_LE(stats.size, stats.capacity);
}

}  // namespace
}  // namespace gencompact
