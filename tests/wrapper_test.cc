#include <gtest/gtest.h>

#include "mediator/wrapper.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

class WrapperFixture : public ::testing::Test {
 protected:
  WrapperFixture()
      : description_(*ParseSsdl(R"(
          source books(author: string, title: string, price: int) {
            cost 10.0 1.0;
            rule f -> author = $string
                    | title contains $string
                    | author = $string and title contains $string;
            export f : {author, title, price};
          })")),
        table_("books", description_.schema()) {
    const auto add = [this](const char* author, const char* title,
                            int64_t price) {
      ASSERT_TRUE(table_
                      .AppendValues({Value::String(author), Value::String(title),
                                     Value::Int(price)})
                      .ok());
    };
    add("Freud", "the interpretation of dreams", 12);
    add("Freud", "civilization", 11);
    add("Jung", "memories dreams reflections", 14);
    add("Lem", "solaris", 9);
  }

  SourceDescription description_;
  Table table_;
};

TEST_F(WrapperFixture, AnswersDirectlySupportedQuery) {
  Wrapper wrapper(description_, &table_);
  const Result<RowSet> rows = wrapper.Query("author = \"Freud\"", {"title"});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  EXPECT_EQ(wrapper.stats().source_queries, 1u);
}

TEST_F(WrapperFixture, AnswersUnsupportedShapeViaPlanning) {
  // Disjunction of authors: not supported by the form, but the wrapper
  // provides generic relational capability by splitting it.
  Wrapper wrapper(description_, &table_);
  const Result<RowSet> rows = wrapper.Query(
      "(author = \"Freud\" or author = \"Jung\") and title contains \"dreams\"",
      {"author", "title"});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
  // On this tiny catalog a single `title contains` query is cheapest; the
  // point is that the wrapper answered an unsupported shape at all.
  EXPECT_GE(wrapper.stats().source_queries, 1u);
  EXPECT_EQ(wrapper.stats().answered, 1u);
}

TEST_F(WrapperFixture, UnsatisfiableConditionSkipsSource) {
  Wrapper wrapper(description_, &table_);
  const Result<RowSet> rows = wrapper.Query(
      "author = \"Freud\" and author = \"Jung\"", {"title"});
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
  EXPECT_EQ(wrapper.stats().answered_without_source, 1u);
  EXPECT_EQ(wrapper.stats().source_queries, 0u);
}

TEST_F(WrapperFixture, SimplificationEnablesOtherwiseInfeasibleQuery) {
  // price predicates are unsupported and the source has no download, but
  // the redundant price conjunct is absorbed by the duplicate author atom
  // … actually: (author = F and author = F) collapses to a supported atom.
  Wrapper wrapper(description_, &table_);
  const Result<RowSet> rows = wrapper.Query(
      "author = \"Freud\" and author = \"Freud\"", {"title"});
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);
}

TEST_F(WrapperFixture, GenuinelyInfeasibleReportsNoPlan) {
  Wrapper wrapper(description_, &table_);
  const Result<RowSet> rows = wrapper.Query("price < 10", {"title"});
  ASSERT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kNoFeasiblePlan);
  EXPECT_EQ(wrapper.stats().infeasible, 1u);
}

TEST_F(WrapperFixture, EmptyAttrListMeansAllAttributes) {
  Wrapper wrapper(description_, &table_);
  const Result<RowSet> rows = wrapper.Query("author = \"Lem\"", {});
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ(rows->layout().width(), 3u);
}

TEST_F(WrapperFixture, MalformedConditionTextFails) {
  Wrapper wrapper(description_, &table_);
  EXPECT_EQ(wrapper.Query("author = ", {"title"}).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(wrapper.Query("author = \"x\"", {"bogus"}).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace gencompact
