#include <gtest/gtest.h>

#include "expr/condition_parser.h"
#include "ssdl/capability_builder.h"
#include "ssdl/check.h"
#include "ssdl/closure.h"
#include "ssdl/earley.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

// The paper's Example 4.1 source description.
constexpr const char* kExample41 = R"(
source R(make: string, model: string, year: int,
         color: string, price: int) {
  rule s1 -> make = $string and price < $int;
  rule s2 -> make = $string and color = $string;
  export s1 : {make, model, year, color};
  export s2 : {make, model, year};
}
)";

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

SourceDescription ParseDescription(const std::string& text) {
  Result<SourceDescription> description = ParseSsdl(text);
  EXPECT_TRUE(description.ok()) << description.status().ToString();
  return std::move(description).value();
}

TEST(GrammarTest, InternsNonterminals) {
  Grammar grammar;
  const int a = grammar.AddNonterminal("a");
  const int b = grammar.AddNonterminal("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(grammar.AddNonterminal("a"), a);
  EXPECT_EQ(grammar.FindNonterminal("b"), b);
  EXPECT_FALSE(grammar.FindNonterminal("c").has_value());
}

TEST(GrammarTest, RejectsEmptyRhs) {
  Grammar grammar;
  const int a = grammar.AddNonterminal("a");
  EXPECT_FALSE(grammar.AddRule({a, {}}).ok());
}

TEST(GrammarTest, TerminalMatching) {
  const CondToken attr_token{CondToken::Type::kAttr, "make", CompareOp::kEq, {}};
  EXPECT_TRUE(TerminalPattern::Attr("make").Matches(attr_token));
  EXPECT_FALSE(TerminalPattern::Attr("color").Matches(attr_token));

  CondToken const_token;
  const_token.type = CondToken::Type::kConst;
  const_token.value = Value::Int(5);
  EXPECT_TRUE(TerminalPattern::Placeholder(
                  TerminalPattern::PlaceholderType::kInt)
                  .Matches(const_token));
  EXPECT_FALSE(TerminalPattern::Placeholder(
                   TerminalPattern::PlaceholderType::kString)
                   .Matches(const_token));
  EXPECT_TRUE(TerminalPattern::Placeholder(
                  TerminalPattern::PlaceholderType::kFloat)
                  .Matches(const_token));  // ints satisfy $float
  EXPECT_TRUE(TerminalPattern::Literal(Value::Int(5)).Matches(const_token));
  EXPECT_FALSE(TerminalPattern::Literal(Value::Int(6)).Matches(const_token));
}

TEST(EarleyTest, RecognizesSimpleSequence) {
  Grammar grammar;
  const int s = grammar.AddNonterminal("s");
  ASSERT_TRUE(grammar
                  .AddRule({s,
                            {GrammarSymbol::Terminal(TerminalPattern::Attr("a")),
                             GrammarSymbol::Terminal(TerminalPattern::Op(
                                 CompareOp::kEq)),
                             GrammarSymbol::Terminal(TerminalPattern::Placeholder(
                                 TerminalPattern::PlaceholderType::kAny))}})
                  .ok());
  EarleyRecognizer recognizer(&grammar);
  EXPECT_TRUE(recognizer.Derives(s, TokenizeCondition(*Parse("a = 1"))));
  EXPECT_FALSE(recognizer.Derives(s, TokenizeCondition(*Parse("b = 1"))));
  EXPECT_FALSE(recognizer.Derives(s, TokenizeCondition(*Parse("a = 1 and b = 2"))));
}

TEST(EarleyTest, HandlesRecursion) {
  // list -> a = $any | a = $any or list
  Grammar grammar;
  const int list = grammar.AddNonterminal("list");
  const auto atom = std::vector<GrammarSymbol>{
      GrammarSymbol::Terminal(TerminalPattern::Attr("a")),
      GrammarSymbol::Terminal(TerminalPattern::Op(CompareOp::kEq)),
      GrammarSymbol::Terminal(
          TerminalPattern::Placeholder(TerminalPattern::PlaceholderType::kAny))};
  ASSERT_TRUE(grammar.AddRule({list, atom}).ok());
  std::vector<GrammarSymbol> rec = atom;
  rec.push_back(GrammarSymbol::Terminal(TerminalPattern::OrSep()));
  rec.push_back(GrammarSymbol::Nonterminal(list));
  ASSERT_TRUE(grammar.AddRule({list, rec}).ok());

  EarleyRecognizer recognizer(&grammar);
  EXPECT_TRUE(recognizer.Derives(list, TokenizeCondition(*Parse("a = 1"))));
  EXPECT_TRUE(recognizer.Derives(
      list, TokenizeCondition(*Parse("a = 1 or a = 2 or a = 3 or a = 4"))));
  EXPECT_FALSE(recognizer.Derives(
      list, TokenizeCondition(*Parse("a = 1 or a = 2 and a = 3"))));
}

TEST(EarleyTest, AmbiguousGrammarStillRecognizes) {
  // e -> e and e | atom : ambiguous, Earley must cope.
  Grammar grammar;
  const int e = grammar.AddNonterminal("e");
  ASSERT_TRUE(grammar
                  .AddRule({e,
                            {GrammarSymbol::Terminal(TerminalPattern::Attr("a")),
                             GrammarSymbol::Terminal(TerminalPattern::Op(
                                 CompareOp::kEq)),
                             GrammarSymbol::Terminal(TerminalPattern::Placeholder(
                                 TerminalPattern::PlaceholderType::kAny))}})
                  .ok());
  ASSERT_TRUE(grammar
                  .AddRule({e,
                            {GrammarSymbol::Nonterminal(e),
                             GrammarSymbol::Terminal(TerminalPattern::AndSep()),
                             GrammarSymbol::Nonterminal(e)}})
                  .ok());
  EarleyRecognizer recognizer(&grammar);
  EXPECT_TRUE(recognizer.Derives(
      e, TokenizeCondition(*Parse("a = 1 and a = 2 and a = 3 and a = 4"))));
}

TEST(SsdlParserTest, ParsesExample41) {
  const SourceDescription description = ParseDescription(kExample41);
  EXPECT_EQ(description.source_name(), "R");
  EXPECT_EQ(description.schema().num_attributes(), 5u);
  EXPECT_EQ(description.condition_nonterminals().size(), 2u);
}

TEST(SsdlParserTest, RejectsUnknownAttributeInExport) {
  const Result<SourceDescription> bad = ParseSsdl(R"(
    source R(a: string) {
      rule s1 -> a = $string;
      export s1 : {b};
    })");
  EXPECT_FALSE(bad.ok());
}

TEST(SsdlParserTest, RejectsExportWithoutRules) {
  const Result<SourceDescription> bad = ParseSsdl(R"(
    source R(a: string) {
      export s1 : {a};
    })");
  EXPECT_FALSE(bad.ok());
}

TEST(SsdlParserTest, RejectsUnknownSymbolInRhs) {
  const Result<SourceDescription> bad = ParseSsdl(R"(
    source R(a: string) {
      rule s1 -> bogus = $string;
      export s1 : {a};
    })");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kNotFound);
}

TEST(SsdlParserTest, RejectsDescriptionWithoutExports) {
  const Result<SourceDescription> bad = ParseSsdl(R"(
    source R(a: string) {
      rule s1 -> a = $string;
    })");
  EXPECT_FALSE(bad.ok());
}

TEST(SsdlParserTest, AlternativeBarSugar) {
  const SourceDescription description = ParseDescription(R"(
    source R(a: string, b: int) {
      rule s1 -> a = $string | b < $int;
      export s1 : {a, b};
    })");
  Checker checker(&description);
  EXPECT_FALSE(checker.Check(*Parse("a = \"x\"")).empty());
  EXPECT_FALSE(checker.Check(*Parse("b < 5")).empty());
  EXPECT_TRUE(checker.Check(*Parse("a = \"x\" and b < 5")).empty());
}

TEST(SsdlParserTest, LiteralConstantsPinValues) {
  const SourceDescription description = ParseDescription(R"(
    source R(status: string) {
      rule s1 -> status = "open";
      export s1 : {status};
    })");
  Checker checker(&description);
  EXPECT_FALSE(checker.Check(*Parse("status = \"open\"")).empty());
  EXPECT_TRUE(checker.Check(*Parse("status = \"closed\"")).empty());
}

TEST(SsdlParserTest, CostClause) {
  const SourceDescription description = ParseDescription(R"(
    source R(a: string) {
      cost 42.0 7;
      rule s1 -> a = $string;
      export s1 : {a};
    })");
  EXPECT_DOUBLE_EQ(description.k1(), 42.0);
  EXPECT_DOUBLE_EQ(description.k2(), 7.0);
}

TEST(CheckTest, Example41Supportability) {
  const SourceDescription description = ParseDescription(kExample41);
  Checker checker(&description);

  // Section 4: SP(n1, A, R) with A = {model, year} is supported...
  const ConditionPtr n1 = Parse("make = \"BMW\" and price < 40000");
  AttributeSet a;
  a.Add(*description.schema().IndexOf("model"));
  a.Add(*description.schema().IndexOf("year"));
  EXPECT_TRUE(checker.Supports(*n1, a));

  // ... and Check returns {make, model, year, color} for s1.
  const std::vector<AttributeSet>& family = checker.Check(*n1);
  ASSERT_EQ(family.size(), 1u);
  EXPECT_EQ(family[0].ToString(description.schema()),
            "{make, model, year, color}");

  // The disjunction (color = red or color = black) is not supported.
  EXPECT_TRUE(
      checker.Check(*Parse("color = \"red\" or color = \"black\"")).empty());

  // s2 exports only {make, model, year}: price cannot be projected.
  const ConditionPtr n2 = Parse("make = \"BMW\" and color = \"red\"");
  AttributeSet with_price = a;
  with_price.Add(*description.schema().IndexOf("price"));
  EXPECT_TRUE(checker.Supports(*n2, a));
  EXPECT_FALSE(checker.Supports(*n2, with_price));
}

TEST(CheckTest, OrderSensitivityWithoutClosure) {
  const SourceDescription description = ParseDescription(kExample41);
  Checker checker(&description);
  // Section 6.1: (color = red and make = BMW) cannot be evaluated — the
  // grammar specifies make first.
  EXPECT_TRUE(
      checker.Check(*Parse("color = \"red\" and make = \"BMW\"")).empty());
}

TEST(CheckTest, ClosureMakesOrderInsensitive) {
  const SourceDescription closed =
      CommutativityClosure(ParseDescription(kExample41));
  Checker checker(&closed);
  EXPECT_FALSE(
      checker.Check(*Parse("color = \"red\" and make = \"BMW\"")).empty());
  EXPECT_FALSE(
      checker.Check(*Parse("price < 9 and make = \"BMW\"")).empty());
  // Still rejects genuinely unsupported shapes.
  EXPECT_TRUE(
      checker.Check(*Parse("color = \"red\" and price < 9")).empty());
}

TEST(CheckTest, ClosurePreservesOriginalLanguage) {
  const SourceDescription original = ParseDescription(kExample41);
  const SourceDescription closed = CommutativityClosure(original);
  Checker check_original(&original);
  Checker check_closed(&closed);
  const char* const kSupported[] = {
      "make = \"BMW\" and price < 40000",
      "make = \"Toyota\" and color = \"red\"",
  };
  for (const char* text : kSupported) {
    EXPECT_FALSE(check_original.Check(*Parse(text)).empty()) << text;
    EXPECT_FALSE(check_closed.Check(*Parse(text)).empty()) << text;
  }
}

TEST(CheckTest, CheckTrueOnlyWithDownloadRule) {
  const SourceDescription no_download = ParseDescription(kExample41);
  Checker checker(&no_download);
  EXPECT_TRUE(checker.CheckTrue().empty());

  const SourceDescription with_download = ParseDescription(R"(
    source R(a: string) {
      rule s1 -> true;
      export s1 : {a};
    })");
  Checker checker2(&with_download);
  ASSERT_EQ(checker2.CheckTrue().size(), 1u);
}

TEST(CheckTest, FamilyKeepsMaximalSetsOnly) {
  // Two condition nonterminals accept the same shape with nested exports:
  // only the maximal export survives.
  const SourceDescription description = ParseDescription(R"(
    source R(a: string, b: int) {
      rule s1 -> a = $string;
      rule s2 -> a = $string;
      export s1 : {a};
      export s2 : {a, b};
    })");
  Checker checker(&description);
  const std::vector<AttributeSet>& family = checker.Check(*Parse("a = \"x\""));
  ASSERT_EQ(family.size(), 1u);
  EXPECT_EQ(family[0].size(), 2u);
}

TEST(CheckTest, IncomparableFamilyMembersBothKept) {
  const SourceDescription description = ParseDescription(R"(
    source R(a: string, b: int, c: int) {
      rule s1 -> a = $string;
      rule s2 -> a = $string;
      export s1 : {a, b};
      export s2 : {a, c};
    })");
  Checker checker(&description);
  const ConditionPtr cond = Parse("a = \"x\"");
  EXPECT_EQ(checker.Check(*cond).size(), 2u);
  // Supported for {b} and for {c}, but not {b, c} jointly.
  const Schema& schema = description.schema();
  AttributeSet b;
  b.Add(*schema.IndexOf("b"));
  AttributeSet c;
  c.Add(*schema.IndexOf("c"));
  EXPECT_TRUE(checker.Supports(*cond, b));
  EXPECT_TRUE(checker.Supports(*cond, c));
  EXPECT_FALSE(checker.Supports(*cond, b.Union(c)));
}

TEST(CheckTest, MemoizationCountsHits) {
  const SourceDescription description = ParseDescription(kExample41);
  Checker checker(&description);
  const ConditionPtr cond = Parse("make = \"BMW\" and price < 1");
  checker.Check(*cond);
  checker.Check(*cond);
  checker.Check(*cond);
  EXPECT_EQ(checker.num_checks(), 3u);
  EXPECT_EQ(checker.num_cache_hits(), 2u);
}

TEST(CapabilityBuilderTest, ConjunctiveFormWithOptionals) {
  const Schema schema({{"a", ValueType::kString},
                       {"b", ValueType::kString},
                       {"p", ValueType::kInt}});
  CapabilityBuilder builder("src", schema);
  ASSERT_TRUE(builder
                  .AddConjunctiveForm(
                      "f",
                      {{"a", {CompareOp::kEq}, false, false},
                       {"b", {CompareOp::kEq}, true, false},
                       {"p", {CompareOp::kLt}, true, false}},
                      {"a", "b", "p"})
                  .ok());
  const SourceDescription description = builder.Build();
  Checker checker(&description);
  EXPECT_FALSE(checker.Check(*Parse("a = \"x\"")).empty());
  EXPECT_FALSE(checker.Check(*Parse("a = \"x\" and b = \"y\"")).empty());
  EXPECT_FALSE(checker.Check(*Parse("a = \"x\" and p < 5")).empty());
  EXPECT_FALSE(
      checker.Check(*Parse("a = \"x\" and b = \"y\" and p < 5")).empty());
  // Mandatory slot missing:
  EXPECT_TRUE(checker.Check(*Parse("b = \"y\"")).empty());
  // Wrong operator:
  EXPECT_TRUE(checker.Check(*Parse("a = \"x\" and p > 5")).empty());
}

TEST(CapabilityBuilderTest, ValueListSlot) {
  const Schema schema({{"size", ValueType::kString}, {"x", ValueType::kInt}});
  CapabilityBuilder builder("src", schema);
  ASSERT_TRUE(builder
                  .AddConjunctiveForm("f",
                                      {{"x", {CompareOp::kEq}, false, false},
                                       {"size", {CompareOp::kEq}, false, true}},
                                      {"size", "x"})
                  .ok());
  const SourceDescription description = builder.Build();
  Checker checker(&description);
  EXPECT_FALSE(checker.Check(*Parse("x = 1 and size = \"m\"")).empty());
  EXPECT_FALSE(
      checker.Check(*Parse("x = 1 and (size = \"m\" or size = \"l\")")).empty());
  EXPECT_FALSE(checker
                   .Check(*Parse(
                       "x = 1 and (size = \"s\" or size = \"m\" or size = \"l\")"))
                   .empty());
  // Lists of anything else are rejected.
  EXPECT_TRUE(checker.Check(*Parse("x = 1 and (size = \"m\" or x = 2)")).empty());
}

TEST(CapabilityBuilderTest, AtomicForms) {
  const Schema schema({{"a", ValueType::kString}, {"p", ValueType::kInt}});
  CapabilityBuilder builder("src", schema);
  ASSERT_TRUE(builder
                  .AddAtomicForms("f",
                                  {{"a", {CompareOp::kEq}, false, false},
                                   {"p", {CompareOp::kLt, CompareOp::kGt},
                                    false, false}},
                                  {"a", "p"})
                  .ok());
  const SourceDescription description = builder.Build();
  Checker checker(&description);
  EXPECT_FALSE(checker.Check(*Parse("a = \"x\"")).empty());
  EXPECT_FALSE(checker.Check(*Parse("p < 5")).empty());
  EXPECT_TRUE(checker.Check(*Parse("a = \"x\" and p < 5")).empty());
}

TEST(CapabilityBuilderTest, FullBooleanAcceptsArbitraryShapes) {
  const Schema schema({{"a", ValueType::kString}, {"p", ValueType::kInt}});
  CapabilityBuilder builder("src", schema);
  ASSERT_TRUE(builder
                  .AddFullBoolean("f",
                                  {{"a", {CompareOp::kEq}, false, false},
                                   {"p",
                                    {CompareOp::kEq, CompareOp::kLt,
                                     CompareOp::kGe},
                                    false, false}},
                                  {"a", "p"})
                  .ok());
  const SourceDescription description = builder.Build();
  Checker checker(&description);
  const char* const kAccepted[] = {
      "a = \"x\"",
      "a = \"x\" and p < 5",
      "a = \"x\" or p < 5",
      "(a = \"x\" and p < 5) or (a = \"y\" and p >= 7)",
      "a = \"x\" and (p < 5 or (a = \"z\" and p >= 9))",
  };
  for (const char* text : kAccepted) {
    EXPECT_FALSE(checker.Check(*Parse(text)).empty()) << text;
  }
  EXPECT_TRUE(checker.Check(*Parse("a contains \"x\"")).empty());
}

TEST(CapabilityBuilderTest, DownloadForm) {
  const Schema schema({{"a", ValueType::kString}});
  CapabilityBuilder builder("src", schema);
  ASSERT_TRUE(builder.AddDownload("dl", {"a"}).ok());
  const SourceDescription description = builder.Build();
  Checker checker(&description);
  EXPECT_FALSE(checker.CheckTrue().empty());
  EXPECT_TRUE(checker.Check(*Parse("a = \"x\"")).empty());
}

}  // namespace
}  // namespace gencompact
