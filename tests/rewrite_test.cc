#include <gtest/gtest.h>

#include "common/rng.h"
#include "expr/condition_eval.h"
#include "expr/condition_parser.h"
#include "rewrite/rewrite_engine.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

bool ClosureContains(const RewriteResult& result, const std::string& text) {
  const ConditionPtr target = Parse(text);
  for (const ConditionPtr& ct : result.cts) {
    if (ct->StructurallyEquals(*target)) return true;
  }
  return false;
}

TEST(RewriteRulesTest, CommutativeSwapsAdjacentChildren) {
  RewriteRuleSet rules{true, false, false, false};
  std::vector<ConditionPtr> out;
  SingleStepRewrites(Parse("a = 1 and b = 2 and c = 3"), rules, 16, &out);
  ASSERT_EQ(out.size(), 2u);  // two adjacent transpositions
  EXPECT_EQ(out[0]->ToString(), "b = 2 and a = 1 and c = 3");
  EXPECT_EQ(out[1]->ToString(), "a = 1 and c = 3 and b = 2");
}

TEST(RewriteRulesTest, AssociativeGroupAndFlatten) {
  RewriteRuleSet rules{false, true, false, false};
  std::vector<ConditionPtr> out;
  SingleStepRewrites(Parse("a = 1 and b = 2 and c = 3"), rules, 16, &out);
  // Two adjacent-pair groupings, no flatten opportunities.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->ToString(), "(a = 1 and b = 2) and c = 3");
  EXPECT_EQ(out[1]->ToString(), "a = 1 and (b = 2 and c = 3)");

  out.clear();
  SingleStepRewrites(Parse("(a = 1 and b = 2) and c = 3"), rules, 16, &out);
  // One flatten (the nested ∧) — binary nodes cannot group further.
  bool found_flat = false;
  for (const ConditionPtr& ct : out) {
    if (ct->ToString() == "a = 1 and b = 2 and c = 3") found_flat = true;
  }
  EXPECT_TRUE(found_flat);
}

TEST(RewriteRulesTest, DistributiveBothDirections) {
  RewriteRuleSet rules{false, false, true, false};
  std::vector<ConditionPtr> out;
  SingleStepRewrites(Parse("a = 1 and (b = 2 or c = 3)"), rules, 16, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->ToString(), "(a = 1 and b = 2) or (a = 1 and c = 3)");

  out.clear();
  SingleStepRewrites(Parse("a = 1 or (b = 2 and c = 3)"), rules, 16, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0]->ToString(), "(a = 1 or b = 2) and (a = 1 or c = 3)");
}

TEST(RewriteRulesTest, CopyDuplicatesChildren) {
  RewriteRuleSet rules{false, false, false, true};
  std::vector<ConditionPtr> out;
  SingleStepRewrites(Parse("a = 1 and b = 2"), rules, /*max_atoms=*/4, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->ToString(), "a = 1 and a = 1 and b = 2");
  EXPECT_EQ(out[1]->ToString(), "a = 1 and b = 2 and b = 2");

  // The atom budget blocks further copies.
  out.clear();
  SingleStepRewrites(Parse("a = 1 and a = 1 and b = 2 and b = 2"), rules,
                     /*max_atoms=*/4, &out);
  EXPECT_TRUE(out.empty());
}

TEST(RewriteRulesTest, RewritesApplyAtNestedNodes) {
  RewriteRuleSet rules{true, false, false, false};
  std::vector<ConditionPtr> out;
  SingleStepRewrites(Parse("x = 0 or (a = 1 and b = 2)"), rules, 16, &out);
  // Swap at root + swap inside the nested ∧.
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0]->ToString(), "(a = 1 and b = 2) or x = 0");
  EXPECT_EQ(out[1]->ToString(), "x = 0 or (b = 2 and a = 1)");
}

TEST(RewriteEngineTest, CommutativeClosureIsAllPermutations) {
  RewriteOptions options;
  options.rules = RewriteRuleSet{true, false, false, false};
  options.max_cts = 100;
  const RewriteResult result =
      GenerateRewritings(Parse("a = 1 and b = 2 and c = 3"), options);
  EXPECT_EQ(result.cts.size(), 6u);  // 3! orderings
  EXPECT_FALSE(result.budget_exhausted);
  EXPECT_TRUE(ClosureContains(result, "c = 3 and b = 2 and a = 1"));
}

TEST(RewriteEngineTest, DistributiveClosureReachesBothNormalForms) {
  RewriteOptions options;
  options.rules = RewriteRuleSet::DistributiveOnly();
  options.max_cts = 100;
  options.canonicalize = true;
  const RewriteResult result = GenerateRewritings(
      Parse("(a = 1 or b = 2) and c = 3"), options);
  EXPECT_TRUE(ClosureContains(result, "(a = 1 or b = 2) and c = 3"));  // CNF
  EXPECT_TRUE(
      ClosureContains(result, "(a = 1 and c = 3) or (b = 2 and c = 3)"));  // DNF
}

TEST(RewriteEngineTest, BudgetStopsExplosion) {
  RewriteOptions options;
  options.max_cts = 50;
  const RewriteResult result = GenerateRewritings(
      Parse("(a = 1 or b = 2) and (c = 3 or d = 4) and (e = 5 or f = 6)"),
      options);
  EXPECT_EQ(result.cts.size(), 50u);
  EXPECT_TRUE(result.budget_exhausted);
}

TEST(RewriteEngineTest, FirstCtIsTheOriginal) {
  RewriteOptions options;
  const ConditionPtr cond = Parse("a = 1 and (b = 2 or c = 3)");
  const RewriteResult result = GenerateRewritings(cond, options);
  ASSERT_FALSE(result.cts.empty());
  EXPECT_TRUE(result.cts[0]->StructurallyEquals(*cond));
}

TEST(RewriteEngineTest, LeafConditionHasOnlyItself) {
  RewriteOptions options;
  const RewriteResult result = GenerateRewritings(Parse("a = 1"), options);
  EXPECT_EQ(result.cts.size(), 1u);
}

// Property: every CT in the closure is semantically equivalent to the
// original (checked on random rows).
class RewriteEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RewriteEquivalenceTest, ClosurePreservesSemantics) {
  Rng rng(GetParam());
  const Schema schema({{"a", ValueType::kInt},
                       {"b", ValueType::kInt},
                       {"c", ValueType::kInt}});
  const RowLayout full(schema.AllAttributes(), 3);

  const auto random_atom = [&]() {
    static constexpr CompareOp kOps[] = {CompareOp::kEq, CompareOp::kLt,
                                         CompareOp::kGe};
    const std::string attr(1, static_cast<char>('a' + rng.NextIndex(3)));
    return ConditionNode::Atom(attr, kOps[rng.NextIndex(3)],
                               Value::Int(rng.NextInt(0, 3)));
  };
  const ConditionPtr cond = ConditionNode::And(
      {ConditionNode::Or({random_atom(), random_atom()}),
       random_atom(),
       ConditionNode::Or({random_atom(),
                          ConditionNode::And({random_atom(), random_atom()})})});

  RewriteOptions options;
  options.max_cts = 300;
  const RewriteResult result = GenerateRewritings(cond, options);
  EXPECT_GT(result.cts.size(), 10u);

  for (int r = 0; r < 30; ++r) {
    const Row row({Value::Int(rng.NextInt(0, 3)), Value::Int(rng.NextInt(0, 3)),
                   Value::Int(rng.NextInt(0, 3))});
    const bool expected = *EvalCondition(*cond, row, full, schema);
    for (const ConditionPtr& ct : result.cts) {
      ASSERT_EQ(*EvalCondition(*ct, row, full, schema), expected)
          << "original: " << cond->ToString() << "\nrewritten: "
          << ct->ToString() << "\nrow: " << row.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriteEquivalenceTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace gencompact
