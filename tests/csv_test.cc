#include <gtest/gtest.h>

#include "storage/csv.h"

namespace gencompact {
namespace {

Schema TestSchema() {
  return Schema({{"name", ValueType::kString},
                 {"count", ValueType::kInt},
                 {"ratio", ValueType::kDouble},
                 {"flag", ValueType::kBool}});
}

TEST(CsvTest, LoadsTypedRows) {
  const Result<std::unique_ptr<Table>> table = LoadCsv(
      "name,count,ratio,flag\n"
      "alpha,3,0.5,true\n"
      "beta,-7,2,false\n",
      "t", TestSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ((*table)->num_rows(), 2u);
  const Row& row = (*table)->rows()[0];
  EXPECT_EQ(row.value(0), Value::String("alpha"));
  EXPECT_EQ(row.value(1), Value::Int(3));
  EXPECT_EQ(row.value(2), Value::Double(0.5));
  EXPECT_EQ(row.value(3), Value::Bool(true));
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  const Result<std::unique_ptr<Table>> table = LoadCsv(
      "name,count,ratio,flag\n"
      "\"a, b\",1,1.0,1\n"
      "\"say \"\"hi\"\"\",2,2.0,0\n",
      "t", TestSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->rows()[0].value(0), Value::String("a, b"));
  EXPECT_EQ((*table)->rows()[1].value(0), Value::String("say \"hi\""));
  EXPECT_EQ((*table)->rows()[1].value(3), Value::Bool(false));
}

TEST(CsvTest, EmptyUnquotedFieldIsNull) {
  const Result<std::unique_ptr<Table>> table = LoadCsv(
      "name,count,ratio,flag\n"
      ",,,\n",
      "t", TestSchema());
  ASSERT_TRUE(table.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_TRUE((*table)->rows()[0].value(i).is_null());
  }
}

TEST(CsvTest, NoHeaderMode) {
  const Result<std::unique_ptr<Table>> table =
      LoadCsv("x,1,1.5,true\n", "t", TestSchema(), /*expect_header=*/false);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->num_rows(), 1u);
}

TEST(CsvTest, HeaderMismatchFails) {
  const Result<std::unique_ptr<Table>> table =
      LoadCsv("name,n,ratio,flag\nx,1,1.5,true\n", "t", TestSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_EQ(table.status().code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, WidthMismatchReportsLine) {
  const Result<std::unique_ptr<Table>> table = LoadCsv(
      "name,count,ratio,flag\nx,1,1.5\n", "t", TestSchema());
  ASSERT_FALSE(table.ok());
  EXPECT_NE(table.status().message().find("line 2"), std::string::npos);
}

TEST(CsvTest, CoercionErrors) {
  EXPECT_FALSE(
      LoadCsv("name,count,ratio,flag\nx,notanint,1.0,true\n", "t", TestSchema())
          .ok());
  EXPECT_FALSE(
      LoadCsv("name,count,ratio,flag\nx,1,huh,true\n", "t", TestSchema()).ok());
  EXPECT_FALSE(
      LoadCsv("name,count,ratio,flag\nx,1,1.0,maybe\n", "t", TestSchema()).ok());
  EXPECT_FALSE(
      LoadCsv("name,count,ratio,flag\n\"unterminated,1,1.0,true\n", "t",
              TestSchema())
          .ok());
}

TEST(CsvTest, CrLfAndBlankLinesTolerated) {
  const Result<std::unique_ptr<Table>> table = LoadCsv(
      "name,count,ratio,flag\r\n"
      "\r\n"
      "x,1,1.0,true\r\n"
      "\n",
      "t", TestSchema());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ((*table)->num_rows(), 1u);
}

TEST(CsvTest, RoundTripThroughWriteCsv) {
  const Result<std::unique_ptr<Table>> original = LoadCsv(
      "name,count,ratio,flag\n"
      "\"a, b\",1,1.5,true\n"
      "plain,2,2.5,false\n"
      ",3,,true\n",
      "t", TestSchema());
  ASSERT_TRUE(original.ok());
  const std::string csv = WriteCsv(**original);
  const Result<std::unique_ptr<Table>> reloaded =
      LoadCsv(csv, "t", TestSchema());
  ASSERT_TRUE(reloaded.ok()) << reloaded.status().ToString() << "\n" << csv;
  ASSERT_EQ((*reloaded)->num_rows(), (*original)->num_rows());
  for (size_t r = 0; r < (*original)->num_rows(); ++r) {
    EXPECT_EQ((*reloaded)->rows()[r], (*original)->rows()[r]) << "row " << r;
  }
}

TEST(CsvTest, LoadCsvFileMissing) {
  EXPECT_EQ(LoadCsvFile("/nonexistent/file.csv", "t", TestSchema())
                .status()
                .code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace gencompact
