#include <gtest/gtest.h>

#include "expr/canonical.h"
#include "expr/condition.h"
#include "expr/condition_eval.h"
#include "expr/condition_parser.h"
#include "expr/condition_tokens.h"

namespace gencompact {
namespace {

Schema CarSchema() {
  return Schema({{"make", ValueType::kString},
                 {"color", ValueType::kString},
                 {"price", ValueType::kInt}});
}

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString() << " for: " << text;
  return cond.ok() ? std::move(cond).value() : nullptr;
}

TEST(ConditionTest, AtomToString) {
  const ConditionPtr atom =
      ConditionNode::Atom("make", CompareOp::kEq, Value::String("BMW"));
  EXPECT_EQ(atom->ToString(), "make = \"BMW\"");
  EXPECT_EQ(atom->CountAtoms(), 1u);
  EXPECT_EQ(atom->Depth(), 1u);
}

TEST(ConditionTest, ConnectorToStringParenthesizesCompounds) {
  const ConditionPtr cond = Parse(
      "make = \"BMW\" and (color = \"red\" or color = \"black\")");
  EXPECT_EQ(cond->ToString(),
            "make = \"BMW\" and (color = \"red\" or color = \"black\")");
}

TEST(ConditionTest, SingleChildConnectorCollapses) {
  const ConditionPtr atom =
      ConditionNode::Atom("price", CompareOp::kLt, Value::Int(5));
  EXPECT_EQ(ConditionNode::And({atom}).get(), atom.get());
  EXPECT_EQ(ConditionNode::Or({atom}).get(), atom.get());
}

TEST(ConditionTest, ParserBuildsNaryNodes) {
  const ConditionPtr cond = Parse("price < 1 and price < 2 and price < 3");
  ASSERT_EQ(cond->kind(), ConditionNode::Kind::kAnd);
  EXPECT_EQ(cond->children().size(), 3u);
}

TEST(ConditionTest, ParserPrecedenceOrBindsLooser) {
  const ConditionPtr cond = Parse("price < 1 and price < 2 or price < 3");
  ASSERT_EQ(cond->kind(), ConditionNode::Kind::kOr);
  EXPECT_EQ(cond->children().size(), 2u);
  EXPECT_EQ(cond->children()[0]->kind(), ConditionNode::Kind::kAnd);
}

TEST(ConditionTest, ParserInListSugar) {
  const ConditionPtr cond = Parse("color in {\"red\", \"black\"}");
  ASSERT_EQ(cond->kind(), ConditionNode::Kind::kOr);
  EXPECT_EQ(cond->children().size(), 2u);
  EXPECT_EQ(cond->children()[0]->atom().op, CompareOp::kEq);
}

TEST(ConditionTest, ParserSymbolSynonyms) {
  EXPECT_EQ(Parse("price <> 3")->atom().op, CompareOp::kNe);
  EXPECT_EQ(Parse("price == 3")->atom().op, CompareOp::kEq);
  const ConditionPtr cond = Parse("price < 1 && price < 2 || price < 3");
  EXPECT_EQ(cond->kind(), ConditionNode::Kind::kOr);
}

TEST(ConditionTest, ParserStringEscapes) {
  const ConditionPtr cond = Parse("make = \"a\\\"b\"");
  EXPECT_EQ(cond->atom().constant, Value::String("a\"b"));
}

TEST(ConditionTest, ParserNegativeAndFloatLiterals) {
  EXPECT_EQ(Parse("price < -5")->atom().constant, Value::Int(-5));
  EXPECT_EQ(Parse("price < 2.5")->atom().constant, Value::Double(2.5));
}

TEST(ConditionTest, ParserRejectsMalformedInput) {
  EXPECT_FALSE(ParseCondition("").ok());
  EXPECT_FALSE(ParseCondition("make =").ok());
  EXPECT_FALSE(ParseCondition("(make = \"x\"").ok());
  EXPECT_FALSE(ParseCondition("make = \"x\" extra").ok());
  EXPECT_FALSE(ParseCondition("make ~ \"x\"").ok());
  EXPECT_FALSE(ParseCondition("make = \"unterminated").ok());
}

TEST(ConditionTest, ParseToStringRoundTrip) {
  const char* const kCases[] = {
      "make = \"BMW\"",
      "price < 40000 and color = \"red\"",
      "(make = \"a\" and price < 1) or (make = \"b\" and price < 2)",
      "make contains \"M\" or (price >= 3 and price <= 9)",
  };
  for (const char* text : kCases) {
    const ConditionPtr cond = Parse(text);
    const ConditionPtr again = Parse(cond->ToString());
    EXPECT_TRUE(cond->StructurallyEquals(*again)) << text;
  }
}

TEST(ConditionTest, AttributesComputesAttrSet) {
  const Schema schema = CarSchema();
  const ConditionPtr cond = Parse("make = \"x\" and (price < 2 or make = \"y\")");
  const Result<AttributeSet> attrs = cond->Attributes(schema);
  ASSERT_TRUE(attrs.ok());
  EXPECT_EQ(attrs->Indices(), (std::vector<int>{0, 2}));
  EXPECT_FALSE(Parse("vin = \"z\"")->Attributes(schema).ok());
}

TEST(ConditionTest, StructuralEqualityIsOrderSensitive) {
  const ConditionPtr a = Parse("make = \"x\" and price < 2");
  const ConditionPtr b = Parse("price < 2 and make = \"x\"");
  EXPECT_FALSE(a->StructurallyEquals(*b));
  EXPECT_TRUE(a->StructurallyEquals(*Parse("make = \"x\" and price < 2")));
}

TEST(CanonicalTest, FlattensNestedSameKind) {
  const ConditionPtr nested = Parse("(price < 1 and price < 2) and price < 3");
  // The parser already flattens textual nesting of the same connector only
  // when unparenthesized; parenthesized nesting survives.
  const ConditionPtr canonical = Canonicalize(nested);
  EXPECT_EQ(canonical->children().size(), 3u);
  EXPECT_TRUE(IsCanonical(*canonical));
}

TEST(CanonicalTest, PreservesAlternation) {
  const ConditionPtr cond =
      Parse("price < 1 and (price < 2 or (price < 3 or price < 4))");
  const ConditionPtr canonical = Canonicalize(cond);
  ASSERT_EQ(canonical->kind(), ConditionNode::Kind::kAnd);
  ASSERT_EQ(canonical->children().size(), 2u);
  EXPECT_EQ(canonical->children()[1]->children().size(), 3u);
  EXPECT_TRUE(IsCanonical(*canonical));
}

TEST(CanonicalTest, TrueSimplification) {
  const ConditionPtr t = ConditionNode::True();
  const ConditionPtr atom = Parse("price < 1");
  EXPECT_TRUE(Canonicalize(ConditionNode::And({t, atom}))->is_atom());
  EXPECT_TRUE(Canonicalize(ConditionNode::Or({t, atom}))->is_true());
  EXPECT_TRUE(Canonicalize(ConditionNode::And({t, t}))->is_true());
}

TEST(CanonicalTest, PreservesChildOrder) {
  const ConditionPtr cond = Parse("(price < 2 and price < 1) and price < 3");
  const ConditionPtr canonical = Canonicalize(cond);
  EXPECT_EQ(canonical->ToString(), "price < 2 and price < 1 and price < 3");
}

TEST(EvalTest, AtomOpsAgainstRow) {
  const Schema schema = CarSchema();
  const RowLayout full(schema.AllAttributes(), 3);
  const Row row({Value::String("BMW"), Value::String("red"), Value::Int(30000)});

  const auto eval = [&](const std::string& text) {
    const Result<bool> r = EvalCondition(*Parse(text), row, full, schema);
    EXPECT_TRUE(r.ok());
    return r.ok() && *r;
  };
  EXPECT_TRUE(eval("make = \"BMW\""));
  EXPECT_FALSE(eval("make = \"Toyota\""));
  EXPECT_TRUE(eval("price < 40000"));
  EXPECT_FALSE(eval("price < 30000"));
  EXPECT_TRUE(eval("price <= 30000"));
  EXPECT_TRUE(eval("price >= 30000"));
  EXPECT_TRUE(eval("price != 1"));
  EXPECT_TRUE(eval("make contains \"MW\""));
  EXPECT_FALSE(eval("make contains \"mw\""));
  EXPECT_TRUE(eval("make startswith \"BM\""));
  EXPECT_TRUE(eval("make = \"BMW\" and (color = \"red\" or color = \"blue\")"));
  EXPECT_FALSE(eval("make = \"BMW\" and color = \"blue\""));
  EXPECT_TRUE(eval("true"));
}

TEST(EvalTest, MissingAttributeInLayoutFails) {
  const Schema schema = CarSchema();
  AttributeSet only_make;
  only_make.Add(0);
  const RowLayout layout(only_make, 3);
  const Row row({Value::String("BMW")});
  EXPECT_FALSE(EvalCondition(*Parse("price < 1"), row, layout, schema).ok());
  EXPECT_TRUE(EvalCondition(*Parse("make = \"BMW\""), row, layout, schema).ok());
}

TEST(EvalTest, NullNeverMatches) {
  const Schema schema = CarSchema();
  const RowLayout full(schema.AllAttributes(), 3);
  const Row row({Value::Null(), Value::String("red"), Value::Null()});
  EXPECT_FALSE(*EvalCondition(*Parse("make = \"BMW\""), row, full, schema));
  EXPECT_FALSE(*EvalCondition(*Parse("price < 99999"), row, full, schema));
  EXPECT_FALSE(*EvalCondition(*Parse("price != 1"), row, full, schema));
}

TEST(TokensTest, AtomSerialization) {
  const ConditionPtr cond = Parse("make = \"BMW\"");
  const std::vector<CondToken> tokens = TokenizeCondition(*cond);
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, CondToken::Type::kAttr);
  EXPECT_EQ(tokens[1].type, CondToken::Type::kOp);
  EXPECT_EQ(tokens[2].type, CondToken::Type::kConst);
  EXPECT_EQ(TokensToString(tokens), "make = \"BMW\"");
}

TEST(TokensTest, CompoundChildrenGetParens) {
  const ConditionPtr cond = Parse(
      "make = \"a\" and (color = \"r\" or color = \"b\")");
  EXPECT_EQ(TokensToString(TokenizeCondition(*cond)),
            "make = \"a\" and ( color = \"r\" or color = \"b\" )");
}

TEST(TokensTest, TrueToken) {
  const std::vector<CondToken> tokens =
      TokenizeCondition(*ConditionNode::True());
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, CondToken::Type::kTrue);
}

}  // namespace
}  // namespace gencompact
