// Exhaustive-oracle differential for the join-order enumerator.
//
// The oracle brute-forces EVERY binary join tree over a query graph by
// explicit recursion on subset partitions — no PlanTable, no subset-order
// cleverness, no canonicalization — using only the enumerator's public cost
// primitives (SubsetRows / Connected / HasCrossEdge / IndependentCost /
// BestBindCost). The differential therefore tests the *search* (DP subset
// enumeration, connectivity via table membership, split canonicalization,
// bind-candidate generation), not the cost arithmetic both sides share.
//
// Coverage: every connected graph topology on up to 5 relations (all edge
// subsets of K5 that connect), each under several seeded random
// parameterizations (rows, fetch costs — some infeasible —, selectivities,
// ndvs, bind flags). DP must return exactly the oracle minimum; greedy must
// stay within a logged ratio whenever it finds a plan.
//
// The base seed comes from GENCOMPACT_TEST_SEED (default 439) so CI can run
// a seed matrix.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <limits>
#include <random>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "planner/join_enum.h"

namespace gencompact {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

uint64_t BaseSeed() {
  const char* env = std::getenv("GENCOMPACT_TEST_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return 439;
}

// Minimal modeled cost over ALL binary join trees producing `set`, by
// explicit recursion over every (s1, s2) partition. Exponential, fine for
// n <= 5. Returns infinity when no tree is feasible.
double OracleBest(const JoinGraph& graph, uint64_t set) {
  if ((set & (set - 1)) == 0) {  // singleton
    int r = 0;
    while (((set >> r) & 1u) == 0) ++r;
    return graph.fetch_cost[r] >= 0.0 ? graph.fetch_cost[r] : kInf;
  }
  double best = kInf;
  const uint64_t low = set & (~set + 1);
  for (uint64_t s1 = (set - 1) & set; s1 != 0; s1 = (s1 - 1) & set) {
    const uint64_t s2 = set ^ s1;
    if (!JoinEnumerator::Connected(graph, s1) ||
        !JoinEnumerator::Connected(graph, s2) ||
        !JoinEnumerator::HasCrossEdge(graph, s1, s2)) {
      continue;
    }
    const double c1 = OracleBest(graph, s1);
    // Independent join: count each unordered split once.
    if ((s1 & low) != 0 && c1 < kInf) {
      const double c2 = OracleBest(graph, s2);
      if (c2 < kInf) {
        best = std::min(best, JoinEnumerator::IndependentCost(c1, c2));
      }
    }
    // Bind join: s2 must be a single relation, driven by the finished s1.
    if ((s2 & (s2 - 1)) == 0 && c1 < kInf) {
      int r = 0;
      while (((s2 >> r) & 1u) == 0) ++r;
      const JoinEnumerator::BindChoice bind = JoinEnumerator::BestBindCost(
          graph, s1, JoinEnumerator::SubsetRows(graph, s1), c1, r);
      best = std::min(best, bind.cost);
    }
  }
  return best;
}

// A random parameterization of a fixed topology. Roughly a quarter of the
// relations lose their independent fetch (fetch_cost < 0); they must then
// be reached via bind edges, or the whole graph becomes infeasible — both
// outcomes are valid oracle subjects.
JoinGraph RandomGraph(size_t n, const std::vector<std::pair<int, int>>& edges,
                      std::mt19937_64* rng) {
  JoinGraph graph;
  std::uniform_real_distribution<double> rows_dist(1.0, 2000.0);
  std::uniform_real_distribution<double> cost_dist(5.0, 500.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  std::uniform_real_distribution<double> ndv_dist(1.0, 200.0);
  graph.fetch_cost.resize(n);
  graph.rows.resize(n);
  for (size_t i = 0; i < n; ++i) {
    graph.rows[i] = rows_dist(*rng);
    graph.fetch_cost[i] = unit(*rng) < 0.25 ? -1.0 : cost_dist(*rng);
  }
  for (const auto& [a, b] : edges) {
    JoinEdge e;
    e.a = a;
    e.b = b;
    e.a_ndv = ndv_dist(*rng);
    e.b_ndv = ndv_dist(*rng);
    e.selectivity = 1.0 / std::max(e.a_ndv, e.b_ndv);
    e.bind_a = unit(*rng) < 0.6;
    e.bind_b = unit(*rng) < 0.6;
    e.bind_a_setup = cost_dist(*rng);
    e.bind_b_setup = cost_dist(*rng);
    e.bind_a_per_row = unit(*rng) * 3.0;
    e.bind_b_per_row = unit(*rng) * 3.0;
    graph.edges.push_back(e);
  }
  graph.bind_batch_size = 1 + static_cast<size_t>(unit(*rng) * 15.0);
  return graph;
}

// All edges of the complete graph on n nodes, index order.
std::vector<std::pair<int, int>> CompleteEdges(size_t n) {
  std::vector<std::pair<int, int>> edges;
  for (size_t a = 0; a < n; ++a) {
    for (size_t b = a + 1; b < n; ++b) {
      edges.emplace_back(static_cast<int>(a), static_cast<int>(b));
    }
  }
  return edges;
}

bool TopologyConnected(size_t n,
                       const std::vector<std::pair<int, int>>& edges) {
  JoinGraph probe;
  probe.fetch_cost.assign(n, 1.0);
  probe.rows.assign(n, 1.0);
  for (const auto& [a, b] : edges) {
    JoinEdge e;
    e.a = a;
    e.b = b;
    probe.edges.push_back(e);
  }
  return JoinEnumerator::Connected(probe, (uint64_t{1} << n) - 1);
}

TEST(JoinEnumOracleTest, DpMatchesExhaustiveOracleOnAllTopologiesUpTo5) {
  const uint64_t base = BaseSeed();
  size_t graphs = 0, feasible_graphs = 0, greedy_feasible = 0;
  double worst_greedy_ratio = 1.0;

  for (size_t n = 2; n <= 5; ++n) {
    const std::vector<std::pair<int, int>> all = CompleteEdges(n);
    for (uint64_t mask = 1; mask < (uint64_t{1} << all.size()); ++mask) {
      std::vector<std::pair<int, int>> edges;
      for (size_t i = 0; i < all.size(); ++i) {
        if ((mask >> i) & 1u) edges.push_back(all[i]);
      }
      if (!TopologyConnected(n, edges)) continue;

      // Several random parameterizations per topology; n=5 has hundreds of
      // connected topologies, so keep the per-topology count modest.
      const size_t trials = n <= 3 ? 8 : (n == 4 ? 4 : 2);
      for (size_t t = 0; t < trials; ++t) {
        std::mt19937_64 rng(base * 1000003ull + n * 7919ull +
                            mask * 104729ull + t);
        const JoinGraph graph = RandomGraph(n, edges, &rng);
        ++graphs;

        const uint64_t full = (uint64_t{1} << n) - 1;
        const double oracle = OracleBest(graph, full);
        const JoinEnumerator::Result dp = JoinEnumerator::Enumerate(graph);

        ASSERT_EQ(dp.feasible, oracle < kInf)
            << "n=" << n << " mask=" << mask << " trial=" << t;
        if (!dp.feasible) continue;
        ++feasible_graphs;
        EXPECT_NEAR(dp.best.cost, oracle, 1e-9 * std::max(1.0, oracle))
            << "DP missed the oracle minimum: n=" << n << " mask=" << mask
            << " trial=" << t;
        EXPECT_FALSE(dp.stats.used_greedy);

        // The chosen tree must be walkable: every decomposition present in
        // the table, and the tree's recomputed cost equal to the reported
        // best (i.e. the table is self-consistent, not just the scalar).
        bool walk_ok = true;
        const std::function<double(uint64_t)> walk =
            [&](uint64_t set) -> double {
          const auto it = dp.table.find(set);
          if (it == dp.table.end()) {
            walk_ok = false;
            return kInf;
          }
          const SubsetPlan& node = it->second;
          if (node.left == 0) return node.cost;
          const double left = walk(node.left);
          const double right = walk(node.right);
          if (node.method == EdgeMethod::kIndependent) {
            return JoinEnumerator::IndependentCost(left, right);
          }
          const JoinEnumerator::BindChoice bind =
              JoinEnumerator::BestBindCost(
                  graph, node.left,
                  JoinEnumerator::SubsetRows(graph, node.left), left,
                  node.bind_relation);
          return bind.cost;
        };
        const double recomputed = walk(full);
        EXPECT_TRUE(walk_ok) << "n=" << n << " mask=" << mask;
        EXPECT_NEAR(recomputed, dp.best.cost,
                    1e-9 * std::max(1.0, dp.best.cost));

        // Greedy: never better than DP (DP is exact over the same space).
        JoinEnumerator::Options greedy_options;
        greedy_options.mode = JoinEnumerator::Mode::kGreedy;
        const JoinEnumerator::Result greedy =
            JoinEnumerator::Enumerate(graph, greedy_options);
        if (greedy.feasible) {
          ++greedy_feasible;
          EXPECT_GE(greedy.best.cost, dp.best.cost - 1e-9);
          worst_greedy_ratio =
              std::max(worst_greedy_ratio, greedy.best.cost / dp.best.cost);
        }
      }
    }
  }
  EXPECT_GT(graphs, 700u);
  EXPECT_GT(feasible_graphs, 100u);
  std::printf(
      "join_enum oracle: %zu graphs, %zu feasible, greedy feasible on %zu, "
      "worst greedy/dp ratio %.3f\n",
      graphs, feasible_graphs, greedy_feasible, worst_greedy_ratio);
  // Greedy is a heuristic; on graphs this small it should stay within a
  // generous constant of optimal. A blow-up here means its merge rule broke.
  EXPECT_LT(worst_greedy_ratio, 50.0);
}

TEST(JoinEnumTest, DpTableContainsExactlyConnectedSubsets) {
  // Chain 0-1-2-3: subsets like {0,2} are disconnected and must be absent
  // from the PlanTable (membership doubles as the connectivity test).
  std::mt19937_64 rng(BaseSeed());
  JoinGraph graph = RandomGraph(4, {{0, 1}, {1, 2}, {2, 3}}, &rng);
  for (double& c : graph.fetch_cost) {
    if (c < 0.0) c = 50.0;  // keep every leaf feasible
  }
  const JoinEnumerator::Result dp = JoinEnumerator::Enumerate(graph);
  for (uint64_t s = 1; s < 16; ++s) {
    EXPECT_EQ(dp.table.count(s) > 0, JoinEnumerator::Connected(graph, s))
        << "subset " << s;
  }
}

TEST(JoinEnumTest, SubsetRowsIsDecompositionIndependent) {
  std::mt19937_64 rng(BaseSeed() + 1);
  const JoinGraph graph = RandomGraph(5, CompleteEdges(5), &rng);
  // rows(S) must depend only on S, never on how the DP reached it: compare
  // against the direct product formula for every subset.
  for (uint64_t s = 1; s < 32; ++s) {
    double expect = 1.0;
    for (int i = 0; i < 5; ++i) {
      if ((s >> i) & 1u) expect *= std::max(graph.rows[i], 0.0);
    }
    for (const JoinEdge& e : graph.edges) {
      if (((s >> e.a) & 1u) && ((s >> e.b) & 1u)) expect *= e.selectivity;
    }
    EXPECT_DOUBLE_EQ(JoinEnumerator::SubsetRows(graph, s), expect);
  }
}

TEST(JoinEnumTest, InfeasibleLeafReachableOnlyThroughBind) {
  // 0 -- 1 where 1 cannot fetch independently but can be bound.
  JoinGraph graph;
  graph.fetch_cost = {10.0, -1.0};
  graph.rows = {100.0, 1000.0};
  JoinEdge e;
  e.a = 0;
  e.b = 1;
  e.a_ndv = 10.0;
  e.b_ndv = 10.0;
  e.selectivity = 0.1;
  e.bind_b = true;
  e.bind_b_setup = 5.0;
  e.bind_b_per_row = 1.0;
  graph.edges.push_back(e);

  const JoinEnumerator::Result dp = JoinEnumerator::Enumerate(graph);
  ASSERT_TRUE(dp.feasible);
  EXPECT_EQ(dp.best.method, EdgeMethod::kBind);
  EXPECT_EQ(dp.best.bind_relation, 1);

  // Strip the bind flag: now nothing can reach relation 1.
  graph.edges[0].bind_b = false;
  EXPECT_FALSE(JoinEnumerator::Enumerate(graph).feasible);
}

TEST(JoinEnumTest, DisconnectedGraphIsInfeasible) {
  JoinGraph graph;
  graph.fetch_cost = {10.0, 10.0, 10.0};
  graph.rows = {10.0, 10.0, 10.0};
  JoinEdge e;
  e.a = 0;
  e.b = 1;
  graph.edges.push_back(e);  // relation 2 has no edge to anything
  EXPECT_FALSE(JoinEnumerator::Enumerate(graph).feasible);
}

TEST(JoinEnumTest, GreedyFallbackAboveDpThreshold) {
  std::mt19937_64 rng(BaseSeed() + 2);
  JoinGraph graph = RandomGraph(5, CompleteEdges(5), &rng);
  for (double& c : graph.fetch_cost) {
    if (c < 0.0) c = 50.0;  // keep everything feasible
  }
  JoinEnumerator::Options options;
  options.dp_max_relations = 4;
  const JoinEnumerator::Result result =
      JoinEnumerator::Enumerate(graph, options);
  EXPECT_TRUE(result.stats.used_greedy);
  EXPECT_TRUE(result.feasible);
}

TEST(JoinEnumTest, LeftDeepNeverBeatsDp) {
  for (uint64_t t = 0; t < 32; ++t) {
    std::mt19937_64 rng(BaseSeed() * 31ull + t);
    const JoinGraph graph = RandomGraph(4, CompleteEdges(4), &rng);
    const JoinEnumerator::Result dp = JoinEnumerator::Enumerate(graph);
    JoinEnumerator::Options options;
    options.mode = JoinEnumerator::Mode::kLeftDeep;
    const JoinEnumerator::Result ld =
        JoinEnumerator::Enumerate(graph, options);
    if (ld.feasible) {
      ASSERT_TRUE(dp.feasible);
      EXPECT_GE(ld.best.cost, dp.best.cost - 1e-9);
    }
  }
}

}  // namespace
}  // namespace gencompact
