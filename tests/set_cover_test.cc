#include <gtest/gtest.h>

#include "common/rng.h"
#include "planner/set_cover.h"

namespace gencompact {
namespace {

TEST(SetCoverTest, EmptyUniverseIsTriviallyCovered) {
  const SetCoverResult result =
      SolveMinCostSetCover(0, {}, SetCoverAlgorithm::kSubsetDp);
  EXPECT_TRUE(result.found);
  EXPECT_EQ(result.cost, 0.0);
  EXPECT_TRUE(result.chosen.empty());
}

TEST(SetCoverTest, UncoverableReportsNotFound) {
  const std::vector<SetCoverCandidate> candidates = {{0b001, 1.0}, {0b010, 1.0}};
  EXPECT_FALSE(
      SolveMinCostSetCover(0b111, candidates, SetCoverAlgorithm::kSubsetDp)
          .found);
  EXPECT_FALSE(
      SolveMinCostSetCover(0b111, candidates, SetCoverAlgorithm::kEnumerate)
          .found);
  EXPECT_FALSE(
      SolveMinCostSetCover(0b111, candidates, SetCoverAlgorithm::kGreedy).found);
}

TEST(SetCoverTest, PicksCheaperOfTwoFullCovers) {
  const std::vector<SetCoverCandidate> candidates = {{0b11, 5.0}, {0b11, 3.0}};
  const SetCoverResult result =
      SolveMinCostSetCover(0b11, candidates, SetCoverAlgorithm::kSubsetDp);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.cost, 3.0);
  EXPECT_EQ(result.chosen, std::vector<int>{1});
}

TEST(SetCoverTest, CombinationBeatsSingleton) {
  const std::vector<SetCoverCandidate> candidates = {
      {0b111, 10.0}, {0b011, 3.0}, {0b100, 2.0}};
  const SetCoverResult result =
      SolveMinCostSetCover(0b111, candidates, SetCoverAlgorithm::kSubsetDp);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.cost, 5.0);
  EXPECT_EQ(result.chosen.size(), 2u);
}

TEST(SetCoverTest, OverlappingCoversAllowed) {
  const std::vector<SetCoverCandidate> candidates = {{0b110, 2.0}, {0b011, 2.0}};
  const SetCoverResult result =
      SolveMinCostSetCover(0b111, candidates, SetCoverAlgorithm::kEnumerate);
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.cost, 4.0);
}

TEST(SetCoverTest, GreedyCanBeSuboptimal) {
  // Classic instance: greedy takes the big cheap-per-element set first.
  const std::vector<SetCoverCandidate> candidates = {
      {0b1111, 4.1},   // ratio 1.025
      {0b0011, 1.0},   // ratio 0.5
      {0b1100, 1.0}};  // ratio 0.5
  const SetCoverResult exact =
      SolveMinCostSetCover(0b1111, candidates, SetCoverAlgorithm::kSubsetDp);
  const SetCoverResult greedy =
      SolveMinCostSetCover(0b1111, candidates, SetCoverAlgorithm::kGreedy);
  ASSERT_TRUE(exact.found);
  ASSERT_TRUE(greedy.found);
  EXPECT_DOUBLE_EQ(exact.cost, 2.0);
  EXPECT_TRUE(exact.optimal);
  EXPECT_FALSE(greedy.optimal);
  EXPECT_GE(greedy.cost, exact.cost);
}

TEST(SetCoverTest, UniverseWithGapsInBitPositions) {
  // Universe {1, 3, 5}: dense compression must handle sparse bits.
  const std::vector<SetCoverCandidate> candidates = {{0b000010, 1.0},
                                                     {0b101000, 1.5}};
  const SetCoverResult result =
      SolveMinCostSetCover(0b101010, candidates, SetCoverAlgorithm::kSubsetDp);
  ASSERT_TRUE(result.found);
  EXPECT_DOUBLE_EQ(result.cost, 2.5);
}

TEST(SetCoverTest, CandidateCoverBeyondUniverseIsHarmless) {
  const std::vector<SetCoverCandidate> candidates = {{0b1111, 1.0}};
  const SetCoverResult result =
      SolveMinCostSetCover(0b0011, candidates, SetCoverAlgorithm::kSubsetDp);
  ASSERT_TRUE(result.found);
  EXPECT_DOUBLE_EQ(result.cost, 1.0);
}

// Property: subset-DP and enumeration agree on optimal cost (invariant 5).
class SetCoverAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SetCoverAgreementTest, DpMatchesEnumeration) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const size_t k = 2 + rng.NextIndex(5);  // universe size 2..6
    const uint32_t universe = (uint32_t{1} << k) - 1;
    const size_t q = 1 + rng.NextIndex(10);
    std::vector<SetCoverCandidate> candidates;
    for (size_t i = 0; i < q; ++i) {
      const uint32_t cover = 1 + static_cast<uint32_t>(rng.NextBelow(universe));
      candidates.push_back(
          {cover, 0.5 + static_cast<double>(rng.NextBelow(100)) / 10.0});
    }
    const SetCoverResult dp =
        SolveMinCostSetCover(universe, candidates, SetCoverAlgorithm::kSubsetDp);
    const SetCoverResult enumerated = SolveMinCostSetCover(
        universe, candidates, SetCoverAlgorithm::kEnumerate);
    ASSERT_EQ(dp.found, enumerated.found);
    if (dp.found) {
      EXPECT_NEAR(dp.cost, enumerated.cost, 1e-9);
      // The chosen sets must actually cover.
      uint32_t covered = 0;
      for (int index : dp.chosen) covered |= candidates[index].cover;
      EXPECT_EQ(covered & universe, universe);
    }
    // Greedy, when it finds a cover, is never better than optimal.
    const SetCoverResult greedy =
        SolveMinCostSetCover(universe, candidates, SetCoverAlgorithm::kGreedy);
    ASSERT_EQ(greedy.found, dp.found);
    if (greedy.found) {
      EXPECT_GE(greedy.cost + 1e-9, dp.cost);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetCoverAgreementTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace gencompact
