#include <gtest/gtest.h>

#include <cstdlib>
#include <thread>
#include <vector>

#include "expr/condition_parser.h"
#include "mediator/mediator.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

constexpr const char* kSsdl = R"(
source cars(make: string, model: string, year: int,
            color: string, price: int) {
  cost 10.0 1.0;
  rule s1 -> make = $string and price < $int;
  rule s2 -> make = $string and color = $string;
  export s1 : {make, model, year, color};
  export s2 : {make, model, year};
}
)";

class MediatorFixture : public ::testing::Test {
 protected:
  // With GENCOMPACT_CHECK_VERIFY=1 in the environment (a dedicated CI leg),
  // every fixture mediator runs the cross-query Check memo with 100%
  // verify-on-hit: each second-level hit is re-checked against a fresh
  // Earley run, and the destructor below asserts none ever disagreed.
  static Mediator::Options FixtureOptions() {
    Mediator::Options options;
    const char* env = std::getenv("GENCOMPACT_CHECK_VERIFY");
    if (env != nullptr && *env == '1') {
      options.check_memo_capacity = 1024;
      options.check_memo_verify_rate = 1.0;
    }
    return options;
  }

  ~MediatorFixture() override {
    if (mediator_.check_memo() != nullptr) {
      EXPECT_EQ(mediator_.check_memo()->stats().verify_mismatches, 0u);
    }
  }

  MediatorFixture() {
    Result<SourceDescription> description = ParseSsdl(kSsdl);
    EXPECT_TRUE(description.ok());
    auto table = std::make_unique<Table>("cars", description->schema());
    const auto add = [&](const char* make, const char* model, int64_t year,
                         const char* color, int64_t price) {
      EXPECT_TRUE(table
                      ->AppendValues({Value::String(make), Value::String(model),
                                      Value::Int(year), Value::String(color),
                                      Value::Int(price)})
                      .ok());
    };
    add("BMW", "318i", 1996, "red", 21000);
    add("BMW", "528i", 1997, "black", 38000);
    add("Toyota", "Corolla", 1997, "red", 13000);
    add("Toyota", "Camry", 1998, "blue", 19000);
    EXPECT_TRUE(mediator_
                    .RegisterSource(std::move(description).value(),
                                    std::move(table))
                    .ok());
  }

  Mediator mediator_{FixtureOptions()};
};

TEST(SqlParserTest, ParsesSelectList) {
  const Result<ParsedQuery> q =
      ParseSql("SELECT make, model FROM cars WHERE price < 5");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->select_list, (std::vector<std::string>{"make", "model"}));
  EXPECT_EQ(q->source, "cars");
  EXPECT_EQ(q->condition->ToString(), "price < 5");
}

TEST(SqlParserTest, SelectStarAndNoWhere) {
  const Result<ParsedQuery> q = ParseSql("select * from cars");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->select_list.empty());
  EXPECT_TRUE(q->condition->is_true());
}

TEST(SqlParserTest, KeywordsAreCaseInsensitive) {
  const Result<ParsedQuery> q =
      ParseSql("SeLeCt make FrOm cars WhErE make = \"BMW\"");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->source, "cars");
}

TEST(SqlParserTest, KeywordInsideStringLiteralIgnored) {
  const Result<ParsedQuery> q =
      ParseSql("SELECT make FROM cars WHERE make = \"from where\"");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->condition->atom().constant, Value::String("from where"));
}

TEST(SqlParserTest, RejectsMalformed) {
  EXPECT_FALSE(ParseSql("").ok());
  EXPECT_FALSE(ParseSql("FROM cars").ok());
  EXPECT_FALSE(ParseSql("SELECT make").ok());
  EXPECT_FALSE(ParseSql("SELECT FROM cars").ok());
  EXPECT_FALSE(ParseSql("SELECT make FROM").ok());
  EXPECT_FALSE(ParseSql("SELECT make FROM cars WHERE").ok());
}

TEST_F(MediatorFixture, EndToEndQuery) {
  const Result<Mediator::QueryResult> result = mediator_.Query(
      "SELECT model FROM cars WHERE "
      "(make = \"BMW\" and price < 40000) or "
      "(make = \"Toyota\" and price < 20000)");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 4u);
  EXPECT_EQ(result->exec.source_queries, 2u);
  EXPECT_GT(result->true_cost, 0.0);
  EXPECT_GT(result->estimated_cost, 0.0);
}

TEST_F(MediatorFixture, UnknownSourceFails) {
  EXPECT_EQ(mediator_.Query("SELECT x FROM nope").status().code(),
            StatusCode::kNotFound);
}

TEST_F(MediatorFixture, UnknownAttributeFails) {
  EXPECT_EQ(
      mediator_.Query("SELECT vin FROM cars WHERE make = \"BMW\"").status().code(),
      StatusCode::kNotFound);
}

TEST_F(MediatorFixture, NoFeasiblePlanSurfacesAsStatus) {
  EXPECT_EQ(mediator_.Query("SELECT model FROM cars WHERE year = 1998")
                .status()
                .code(),
            StatusCode::kNoFeasiblePlan);
}

TEST_F(MediatorFixture, ExplainReturnsValidatedPlan) {
  const Result<PlanPtr> plan = mediator_.Explain(
      "SELECT model FROM cars WHERE make = \"BMW\" and price < 30000",
      Strategy::kGenCompact);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->kind(), PlanNode::Kind::kSourceQuery);
}

TEST_F(MediatorFixture, ExplainTextMentionsOperators) {
  const Result<std::string> text = mediator_.ExplainText(
      "SELECT model FROM cars WHERE "
      "(make = \"BMW\" and price < 40000) or (make = \"Toyota\" and price < 20000)",
      Strategy::kGenCompact);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("Union"), std::string::npos);
  EXPECT_NE(text->find("SourceQuery"), std::string::npos);
}

TEST_F(MediatorFixture, ExplainAnalyzeReportsEstimatedVsActual) {
  const Result<std::string> text = mediator_.ExplainAnalyze(
      "SELECT model FROM cars WHERE "
      "(make = \"BMW\" and price < 40000) or (make = \"Toyota\" and price < 20000)",
      Strategy::kGenCompact);
  ASSERT_TRUE(text.ok()) << text.status().ToString();
  EXPECT_NE(text->find("estimated vs actual"), std::string::npos);
  EXPECT_NE(text->find("actual="), std::string::npos);
  EXPECT_NE(text->find("true cost"), std::string::npos);
}

TEST_F(MediatorFixture, ExplainAnalyzeUnsatisfiableShortCircuits) {
  const Result<std::string> text = mediator_.ExplainAnalyze(
      "SELECT model FROM cars WHERE make = \"BMW\" and make = \"Audi\"",
      Strategy::kGenCompact);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find("EmptyResult"), std::string::npos);
}

TEST_F(MediatorFixture, StrategiesCanDisagreeOnFeasibility) {
  // DISCO cannot split the disjunction and the source has no download.
  const std::string sql =
      "SELECT model FROM cars WHERE "
      "(make = \"BMW\" and price < 40000) or (make = \"Toyota\" and price < 20000)";
  EXPECT_TRUE(mediator_.Query(sql, Strategy::kGenCompact).ok());
  EXPECT_EQ(mediator_.Query(sql, Strategy::kDisco).status().code(),
            StatusCode::kNoFeasiblePlan);
}

TEST_F(MediatorFixture, NaiveStrategyRejectedAtExecution) {
  const std::string sql =
      "SELECT model FROM cars WHERE "
      "(make = \"BMW\" and price < 40000) or (make = \"Toyota\" and price < 20000)";
  const Result<Mediator::QueryResult> result =
      mediator_.Query(sql, Strategy::kNaive);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST_F(MediatorFixture, DuplicateRegistrationFails) {
  Result<SourceDescription> description = ParseSsdl(kSsdl);
  ASSERT_TRUE(description.ok());
  auto table = std::make_unique<Table>("cars", description->schema());
  EXPECT_FALSE(mediator_
                   .RegisterSource(std::move(description).value(),
                                   std::move(table))
                   .ok());
}

TEST_F(MediatorFixture, QueryConditionProgrammaticForm) {
  Result<ConditionPtr> cond = ParseCondition("make = \"BMW\" and price < 30000");
  ASSERT_TRUE(cond.ok());
  const Result<Mediator::QueryResult> result = mediator_.QueryCondition(
      "cars", *cond, {"model", "year"}, Strategy::kGenCompact);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 1u);  // 318i
}

TEST_F(MediatorFixture, StatsSnapshotSurfacesPerSourceEarleyItems) {
  const std::string sql =
      "SELECT model FROM cars WHERE make = \"BMW\" and price < 30000";
  ASSERT_TRUE(mediator_.Query(sql).ok());
  const Mediator::Stats stats = mediator_.StatsSnapshot();
  ASSERT_EQ(stats.sources.size(), 1u);
  // check_calls was always surfaced; the Earley item count behind it is the
  // matching work measure — planning this query had to parse something.
  EXPECT_GT(stats.sources[0].check_calls, 0u);
  EXPECT_GT(stats.sources[0].earley_items, 0u);
  EXPECT_EQ(stats.sources[0].description_epoch, 0u);

  // A plan-cache hit re-executes without re-planning: the enforcement
  // Check hits the wrapper Checker's memo, so no new items accrue.
  const size_t items_after_first = stats.sources[0].earley_items;
  ASSERT_TRUE(mediator_.Query(sql).ok());
  EXPECT_EQ(mediator_.StatsSnapshot().sources[0].earley_items,
            items_after_first);
}

TEST(MediatorCheckMemoTest, RecurringQueryHitsSecondLevelAfterPlanEviction) {
  Result<SourceDescription> description = ParseSsdl(kSsdl);
  ASSERT_TRUE(description.ok());
  auto table = std::make_unique<Table>("cars", description->schema());
  ASSERT_TRUE(table
                  ->AppendValues({Value::String("BMW"), Value::String("318i"),
                                  Value::Int(1996), Value::String("red"),
                                  Value::Int(21000)})
                  .ok());

  Mediator::Options options;
  // A one-entry plan cache forces eviction, which releases the cached
  // plan's pinned conditions — the recurrence then re-parses to a fresh
  // ConditionId, misses every id-keyed layer, and only the structural
  // fingerprint can recognize it.
  options.cache_capacity = 1;
  options.cache_shards = 1;
  options.check_memo_capacity = 256;
  options.check_memo_verify_rate = 1.0;  // re-check every single L2 hit
  Mediator mediator(options);
  ASSERT_TRUE(
      mediator.RegisterSource(std::move(description).value(), std::move(table))
          .ok());

  const std::string recurring =
      "SELECT model FROM cars WHERE make = \"BMW\" and price < 30000";
  const Mediator::Stats before = mediator.StatsSnapshot();
  ASSERT_TRUE(mediator.Query(recurring).ok());
  // A different query evicts the first plan (capacity 1) and kills its
  // pinned condition tree.
  ASSERT_TRUE(
      mediator.Query("SELECT year FROM cars WHERE make = \"BMW\" and "
                     "color = \"red\"")
          .ok());
  ASSERT_TRUE(mediator.Query(recurring).ok());

  const Mediator::Stats stats = mediator.StatsSnapshot();
  EXPECT_TRUE(stats.check_memo.enabled);
  EXPECT_GT(stats.check_memo.hits, 0u);
  EXPECT_GT(stats.check_memo.insertions, 0u);
  EXPECT_EQ(stats.check_memo.verify_mismatches, 0u);
  ASSERT_EQ(stats.sources.size(), 1u);
  EXPECT_GT(stats.sources[0].check_l2_hits, 0u);

  const Mediator::Stats::Rates rates = stats.DiffSince(before);
  EXPECT_GT(rates.check_l2_hit_rate, 0.0);
  EXPECT_LE(rates.check_l2_hit_rate, 1.0);

  // The observability surface names the new counters.
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("check_memo.hits"), std::string::npos);
  EXPECT_NE(text.find("check_l2_hits"), std::string::npos);
  EXPECT_NE(text.find("earley_items"), std::string::npos);
}

TEST(MediatorConcurrencyTest, ConcurrentClientsGetIdenticalAnswers) {
  Result<SourceDescription> description = ParseSsdl(kSsdl);
  ASSERT_TRUE(description.ok());
  auto table = std::make_unique<Table>("cars", description->schema());
  const auto add = [&](const char* make, const char* model, int64_t year,
                       const char* color, int64_t price) {
    ASSERT_TRUE(table
                    ->AppendValues({Value::String(make), Value::String(model),
                                    Value::Int(year), Value::String(color),
                                    Value::Int(price)})
                    .ok());
  };
  add("BMW", "318i", 1996, "red", 21000);
  add("BMW", "528i", 1997, "black", 38000);
  add("Toyota", "Corolla", 1997, "red", 13000);
  add("Toyota", "Camry", 1998, "blue", 19000);

  Mediator::Options options;
  options.num_threads = 4;
  options.cache_shards = 8;
  Mediator mediator(options);
  ASSERT_TRUE(
      mediator.RegisterSource(std::move(description).value(), std::move(table))
          .ok());

  const std::vector<std::string> queries = {
      "SELECT model FROM cars WHERE make = \"BMW\" and price < 30000",
      "SELECT model FROM cars WHERE (make = \"BMW\" and price < 30000) or "
      "(make = \"Toyota\" and price < 15000)",
      "SELECT model FROM cars WHERE make = \"Toyota\" and color = \"red\"",
  };
  const std::vector<size_t> expected_rows = {1, 2, 1};

  constexpr size_t kClients = 8;
  constexpr size_t kRounds = 25;
  std::vector<std::thread> clients;
  std::vector<size_t> failures(kClients, 0);
  for (size_t t = 0; t < kClients; ++t) {
    clients.emplace_back([t, &mediator, &queries, &expected_rows, &failures]() {
      for (size_t round = 0; round < kRounds; ++round) {
        const size_t q = (round + t) % queries.size();
        const Result<Mediator::QueryResult> result = mediator.Query(queries[q]);
        if (!result.ok() || result->rows.size() != expected_rows[q]) {
          ++failures[t];
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  for (size_t t = 0; t < kClients; ++t) EXPECT_EQ(failures[t], 0u) << t;

  // 3 distinct (query, strategy) keys were ever planned; everything else hit.
  EXPECT_EQ(mediator.plan_cache().size(), queries.size());
  EXPECT_GT(mediator.plan_cache().hit_rate(), 0.9);
}

}  // namespace
}  // namespace gencompact
