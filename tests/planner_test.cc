#include <gtest/gtest.h>

#include "exec/executor.h"
#include "expr/condition_parser.h"
#include "plan/plan_validator.h"
#include "planner/epg.h"
#include "planner/gen_compact.h"
#include "planner/gen_modular.h"
#include "planner/ipg.h"
#include "planner/mark.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

SourceDescription ParseDescription(const std::string& text) {
  Result<SourceDescription> description = ParseSsdl(text);
  EXPECT_TRUE(description.ok()) << description.status().ToString();
  return std::move(description).value();
}

// Example 4.1 source with a small concrete instance.
class Example41Fixture : public ::testing::Test {
 protected:
  Example41Fixture()
      : description_(ParseDescription(R"(
          source R(make: string, model: string, year: int,
                   color: string, price: int) {
            cost 10.0 1.0;
            rule s1 -> make = $string and price < $int;
            rule s2 -> make = $string and color = $string;
            export s1 : {make, model, year, color};
            export s2 : {make, model, year};
          })")),
        table_("R", description_.schema()) {
    const auto add = [this](const char* make, const char* model, int64_t year,
                            const char* color, int64_t price) {
      ASSERT_TRUE(table_
                      .AppendValues({Value::String(make), Value::String(model),
                                     Value::Int(year), Value::String(color),
                                     Value::Int(price)})
                      .ok());
    };
    add("BMW", "318i", 1996, "red", 21000);
    add("BMW", "528i", 1997, "black", 38000);
    add("BMW", "735i", 1998, "silver", 52000);
    add("BMW", "M3", 1998, "red", 39000);
    add("Toyota", "Corolla", 1997, "red", 13000);
    add("Toyota", "Camry", 1998, "blue", 19000);
    handle_ = std::make_unique<SourceHandle>(description_, &table_);
  }

  AttributeSet Attrs(const std::vector<std::string>& names) {
    const Result<AttributeSet> set = description_.schema().MakeSet(names);
    EXPECT_TRUE(set.ok());
    return *set;
  }

  SourceDescription description_;
  Table table_;
  std::unique_ptr<SourceHandle> handle_;
};

TEST_F(Example41Fixture, Pr1ReturnsPurePlanWhenSupported) {
  Ipg ipg(handle_.get());
  const PlanPtr plan =
      ipg.Plan(Parse("make = \"BMW\" and price < 40000"), Attrs({"model"}));
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind(), PlanNode::Kind::kSourceQuery);
  EXPECT_TRUE(ValidatePlan(*plan, handle_->checker()).ok());
}

TEST_F(Example41Fixture, ClosureEnablesReorderedPurePlan) {
  // Example 5.1's t0: (price < 40000 ∧ color = "red" ∧ make = "BMW") — no
  // part is evaluable in the written order, but the closed description
  // accepts the reordering as the grouped queries.
  Ipg ipg(handle_.get());
  const PlanPtr plan = ipg.Plan(
      Parse("price < 40000 and color = \"red\" and make = \"BMW\""),
      Attrs({"model", "year"}));
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(ValidatePlan(*plan, handle_->checker()).ok());

  // And the answer matches direct evaluation.
  Source source(&table_, &handle_->description());
  Executor executor(&source);
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->size(), 2u);  // the 318i and the M3 are red BMWs < 40000
}

TEST_F(Example41Fixture, DisjunctionSplitsIntoTwoQueries) {
  // Example 1.1's shape on the car source: the source takes one make at a
  // time; the planner must union two source queries.
  Ipg ipg(handle_.get());
  const PlanPtr plan = ipg.Plan(
      Parse("(make = \"BMW\" and price < 40000) or "
            "(make = \"Toyota\" and price < 20000)"),
      Attrs({"model"}));
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind(), PlanNode::Kind::kUnion);
  EXPECT_EQ(plan->CountSourceQueries(), 2u);
  EXPECT_TRUE(ValidatePlan(*plan, handle_->checker()).ok());
}

TEST_F(Example41Fixture, InfeasibleQueryReturnsNull) {
  Ipg ipg(handle_.get());
  // No capability mentions year conditions, and downloading is not allowed.
  EXPECT_EQ(ipg.Plan(Parse("year = 1998"), Attrs({"model"})), nullptr);
}

TEST_F(Example41Fixture, ExportLimitsMatter) {
  Ipg ipg(handle_.get());
  // s2 (make+color) does not export price.
  const PlanPtr plan = ipg.Plan(Parse("make = \"BMW\" and color = \"red\""),
                                Attrs({"price"}));
  EXPECT_EQ(plan, nullptr);
}

TEST_F(Example41Fixture, MediatorEvaluationOnExportedAttrs) {
  // (make = BMW ∧ price < 40000 ∧ color = red): s1 exports color, so the
  // mediator can filter color on the s1 query result, or intersect with an
  // s2 query. Either way a feasible plan must exist and be correct.
  Ipg ipg(handle_.get());
  const PlanPtr plan = ipg.Plan(
      Parse("make = \"BMW\" and price < 40000 and color = \"red\""),
      Attrs({"model", "year"}));
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(ValidatePlan(*plan, handle_->checker()).ok());

  Source source(&table_, &handle_->description());
  Executor executor(&source);
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 2u);  // 318i and M3
}

TEST_F(Example41Fixture, GenCompactPlannerEndToEnd) {
  GenCompactPlanner planner(handle_.get());
  const Result<PlanPtr> plan = planner.Plan(
      Parse("(make = \"BMW\" and price < 40000) or "
            "(make = \"Toyota\" and price < 20000)"),
      Attrs({"make", "model"}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(ValidatePlan(**plan, handle_->checker()).ok());
  EXPECT_GT(planner.stats().num_cts, 0u);
  EXPECT_GT(planner.stats().best_cost, 0.0);
}

TEST_F(Example41Fixture, GenCompactReportsNoFeasiblePlan) {
  GenCompactPlanner planner(handle_.get());
  const Result<PlanPtr> plan = planner.Plan(Parse("year = 1998"), Attrs({"model"}));
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNoFeasiblePlan);
}

TEST_F(Example41Fixture, Section4FeasibilityExample) {
  // Section 4's worked example, with the hand-built mediator plans of
  // Example 3.1. n1 = (make = BMW ∧ price < 40000), n2 = (color = red ∨
  // color = black), A = {model, year}.
  const ConditionPtr n1 = Parse("make = \"BMW\" and price < 40000");
  const ConditionPtr n2 = Parse("color = \"red\" or color = \"black\"");
  const AttributeSet a = Attrs({"model", "year"});
  Checker* checker = handle_->checker();

  // "SP(n1, A, R) is a supported query."
  EXPECT_TRUE(checker->Supports(*n1, a));
  // "The second source query SP(n2, A, R) is not supported."
  EXPECT_FALSE(checker->Supports(*n2, a));

  // Hence the plan SP(n1,A,R) ∩ SP(n2,A,R) is not feasible...
  const PlanPtr intersect_plan = PlanNode::IntersectOf(
      {PlanNode::SourceQuery(n1, a), PlanNode::SourceQuery(n2, a)});
  EXPECT_FALSE(ValidatePlan(*intersect_plan, checker).ok());

  // ...while SP(n2, A, SP(n1, A ∪ Attr(n2), R)) is feasible, because
  // A ∪ Attr(n2) ⊆ Check(Cond(n1), R).
  const AttributeSet a_plus =
      a.Union(*n2->Attributes(description_.schema()));
  const PlanPtr mediator_plan =
      PlanNode::MediatorSp(n2, a, PlanNode::SourceQuery(n1, a_plus));
  EXPECT_TRUE(ValidatePlan(*mediator_plan, checker).ok());
}

TEST_F(Example41Fixture, MarkModuleMarksEveryNode) {
  const ConditionPtr ct = Parse(
      "(make = \"BMW\" and price < 40000) and (color = \"red\" or "
      "color = \"black\")");
  MarkedTree marked(ct, handle_->checker());
  EXPECT_EQ(marked.num_nodes(), 7u);  // root, 2 connectors, 4 atoms
  // Root not supported; first child supported with s1 exports.
  EXPECT_TRUE(marked.ExportsOf(ct.get()).empty());
  EXPECT_FALSE(marked.ExportsOf(ct->children()[0].get()).empty());
  EXPECT_TRUE(marked.ExportsOf(ct->children()[1].get()).empty());
  EXPECT_TRUE(marked.CanExport(ct->children()[0].get(), Attrs({"model"})));
}

TEST_F(Example41Fixture, EpgGeneratesChoiceSpace) {
  Epg epg(handle_.get());
  const PlanPtr space = epg.Generate(
      Parse("(make = \"BMW\" and price < 40000) or "
            "(make = \"Toyota\" and price < 20000)"),
      Attrs({"model"}));
  ASSERT_NE(space, nullptr);
  const PlanPtr resolved = handle_->cost_model().ResolveChoices(space);
  EXPECT_TRUE(resolved->IsResolved());
  EXPECT_TRUE(ValidatePlan(*resolved, handle_->checker()).ok());
}

TEST_F(Example41Fixture, EpgReturnsNullWhenInfeasible) {
  Epg epg(handle_.get());
  EXPECT_EQ(epg.Generate(Parse("year = 1998"), Attrs({"model"})), nullptr);
}

TEST_F(Example41Fixture, GenModularFindsPlan) {
  GenModularPlanner planner(handle_.get());
  const Result<PlanPtr> plan = planner.Plan(
      Parse("price < 40000 and color = \"red\" and make = \"BMW\""),
      Attrs({"model", "year"}));
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(ValidatePlan(**plan, handle_->checker()).ok());
  EXPECT_GT(planner.stats().num_cts, 1u);
}

// Example 6.1: R supports SP(c1, A), SP(c2, A ∪ Attr(c3)), SP(c3, A ∪
// Attr(c2)). The target SP(c1 ∧ c2 ∧ c3, A) has no pure plan, but IPG must
// find the MaxEval-style impure plans.
TEST(Example61Test, MaxEvalPlansFound) {
  const SourceDescription description = ParseDescription(R"(
    source R(a: string, b: string, c: string, x: string) {
      cost 10.0 1.0;
      rule f1 -> a = $string;
      rule f2 -> b = $string;
      rule f3 -> c = $string;
      export f1 : {x};
      export f2 : {x, c};
      export f3 : {x, b};
    })");
  Table table("R", description.schema());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(table
                    .AppendValues({Value::String(i % 2 ? "a1" : "a2"),
                                   Value::String(i % 4 < 2 ? "b1" : "b2"),
                                   Value::String(i < 4 ? "c1" : "c2"),
                                   Value::String("x" + std::to_string(i))})
                    .ok());
  }
  SourceHandle handle(description, &table);

  // The paper's combination semantics (strict mode): sub-plans request A.
  IpgOptions options;
  options.safe_combination = false;
  Ipg ipg(&handle, options);

  AttributeSet x_attr;
  x_attr.Add(*description.schema().IndexOf("x"));
  const PlanPtr plan = ipg.Plan(
      Parse("a = \"a1\" and b = \"b1\" and c = \"c1\""), x_attr);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(ValidatePlan(*plan, handle.checker()).ok());
  // Best plan uses 2 source queries: SP(c1,A,R) ∩ SP(c3,A,SP(c2,A∪{c},R))
  // (or the symmetric variant) — not the 3-query all-singleton plan.
  EXPECT_EQ(plan->CountSourceQueries(), 2u);
}

TEST(DownloadOnlyTest, PlanIsDownloadPlusMediatorFilter) {
  const SourceDescription description = ParseDescription(R"(
    source R(a: string, p: int) {
      cost 5.0 1.0;
      rule dl -> true;
      export dl : {a, p};
    })");
  Table table("R", description.schema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table
                    .AppendValues({Value::String("v" + std::to_string(i % 3)),
                                   Value::Int(i)})
                    .ok());
  }
  SourceHandle handle(description, &table);
  Ipg ipg(&handle);
  AttributeSet a_attr;
  a_attr.Add(0);
  const PlanPtr plan = ipg.Plan(Parse("a = \"v1\" and p < 5"), a_attr);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->kind(), PlanNode::Kind::kMediatorSp);
  ASSERT_EQ(plan->children().size(), 1u);
  EXPECT_TRUE(plan->children()[0]->condition()->is_true());
  EXPECT_TRUE(ValidatePlan(*plan, handle.checker()).ok());

  Source source(&table, &handle.description());
  Executor executor(&source);
  const Result<RowSet> rows = executor.Execute(*plan);
  ASSERT_TRUE(rows.ok());
  // a = "v1" holds at p ∈ {1, 4, 7}; p < 5 keeps {1, 4}; projection to {a}
  // deduplicates to the single value "v1".
  EXPECT_EQ(rows->size(), 1u);
}

TEST_F(Example41Fixture, PruningRulesDoNotChangeOptimalCost) {
  const ConditionPtr cond = Parse(
      "(make = \"BMW\" and price < 40000 and color = \"red\") or "
      "(make = \"Toyota\" and price < 20000)");
  const AttributeSet attrs = Attrs({"model", "year"});

  double baseline_cost = -1;
  for (int mask = 0; mask < 8; ++mask) {
    IpgOptions options;
    options.pr1 = mask & 1;
    options.pr2 = mask & 2;
    options.pr3 = mask & 4;
    Ipg ipg(handle_.get(), options);
    const PlanPtr plan = ipg.Plan(cond, attrs);
    ASSERT_NE(plan, nullptr) << "mask=" << mask;
    const double cost = handle_->cost_model().PlanCost(*plan);
    if (baseline_cost < 0) {
      baseline_cost = cost;
    } else {
      EXPECT_NEAR(cost, baseline_cost, 1e-9) << "mask=" << mask;
    }
  }
}

TEST_F(Example41Fixture, PruningReducesWork) {
  const ConditionPtr cond = Parse(
      "(make = \"BMW\" and price < 40000 and color = \"red\") or "
      "(make = \"Toyota\" and price < 20000) or "
      "(make = \"Toyota\" and color = \"blue\")");
  const AttributeSet attrs = Attrs({"model"});

  IpgOptions all_on;
  Ipg pruned(handle_.get(), all_on);
  ASSERT_NE(pruned.Plan(cond, attrs), nullptr);

  IpgOptions all_off;
  all_off.pr1 = all_off.pr2 = all_off.pr3 = false;
  Ipg unpruned(handle_.get(), all_off);
  ASSERT_NE(unpruned.Plan(cond, attrs), nullptr);

  EXPECT_LT(pruned.stats().total_subplans, unpruned.stats().total_subplans);
}

}  // namespace
}  // namespace gencompact
