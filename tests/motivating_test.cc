// Quantitative versions of the paper's two motivating examples (Section 1),
// on the synthetic datasets of src/workload. These pin the *shape* of the
// results the paper reports: which strategies are feasible, who ships fewer
// rows, and by what rough magnitude.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "plan/plan_validator.h"
#include "planner/planner.h"
#include "workload/datasets.h"

namespace gencompact {
namespace {

struct RunOutcome {
  bool feasible = false;
  size_t source_queries = 0;
  uint64_t rows_transferred = 0;
  size_t result_rows = 0;
};

RunOutcome RunStrategy(Strategy strategy, const Dataset& dataset,
                       SourceHandle* handle, Source* source) {
  const std::unique_ptr<PlannerStrategy> planner = MakePlanner(strategy, handle);
  const Result<AttributeSet> attrs =
      handle->schema().MakeSet(dataset.example_attrs);
  EXPECT_TRUE(attrs.ok());
  const Result<PlanPtr> plan = planner->Plan(dataset.example_condition, *attrs);
  RunOutcome outcome;
  if (!plan.ok()) return outcome;
  EXPECT_TRUE(ValidatePlan(**plan, handle->checker()).ok())
      << StrategyName(strategy);
  Executor executor(source);
  const Result<RowSet> rows = executor.Execute(**plan);
  EXPECT_TRUE(rows.ok()) << rows.status().ToString();
  if (!rows.ok()) return outcome;
  outcome.feasible = true;
  outcome.source_queries = executor.stats().source_queries;
  outcome.rows_transferred = executor.stats().rows_transferred;
  outcome.result_rows = rows->size();
  return outcome;
}

class BookstoreExampleTest : public ::testing::Test {
 protected:
  BookstoreExampleTest() : dataset_(MakeBookstore(50000, /*seed=*/42)) {
    handle_ = std::make_unique<SourceHandle>(dataset_.description,
                                             dataset_.table.get());
    source_ = std::make_unique<Source>(dataset_.table.get(),
                                       &handle_->description());
  }

  Dataset dataset_;
  std::unique_ptr<SourceHandle> handle_;
  std::unique_ptr<Source> source_;
};

TEST_F(BookstoreExampleTest, GenCompactUsesTwoQueriesUnderTwentyRows) {
  const RunOutcome outcome = RunStrategy(Strategy::kGenCompact, dataset_,
                                         handle_.get(), source_.get());
  ASSERT_TRUE(outcome.feasible);
  // "We can first search for Freud-dreams, then Jung-dreams": 2 queries,
  // fewer than 20 entries extracted.
  EXPECT_EQ(outcome.source_queries, 2u);
  EXPECT_LT(outcome.rows_transferred, 20u);
  EXPECT_GT(outcome.result_rows, 0u);
}

TEST_F(BookstoreExampleTest, CnfExtractsThousands) {
  const RunOutcome outcome =
      RunStrategy(Strategy::kCnf, dataset_, handle_.get(), source_.get());
  ASSERT_TRUE(outcome.feasible);
  // Garlic ships only the title clause: over 2,000 entries come back.
  EXPECT_GT(outcome.rows_transferred, 2000u);
}

TEST_F(BookstoreExampleTest, DiscoInfeasible) {
  const RunOutcome outcome =
      RunStrategy(Strategy::kDisco, dataset_, handle_.get(), source_.get());
  EXPECT_FALSE(outcome.feasible);
}

TEST_F(BookstoreExampleTest, AllFeasibleStrategiesAgreeOnTheAnswer) {
  const RunOutcome gc = RunStrategy(Strategy::kGenCompact, dataset_,
                                    handle_.get(), source_.get());
  const RunOutcome cnf =
      RunStrategy(Strategy::kCnf, dataset_, handle_.get(), source_.get());
  const RunOutcome dnf =
      RunStrategy(Strategy::kDnf, dataset_, handle_.get(), source_.get());
  ASSERT_TRUE(gc.feasible);
  ASSERT_TRUE(cnf.feasible);
  ASSERT_TRUE(dnf.feasible);
  EXPECT_EQ(gc.result_rows, cnf.result_rows);
  EXPECT_EQ(gc.result_rows, dnf.result_rows);
}

class CarExampleTest : public ::testing::Test {
 protected:
  CarExampleTest() : dataset_(MakeCarSource(40000, /*seed=*/7)) {
    handle_ = std::make_unique<SourceHandle>(dataset_.description,
                                             dataset_.table.get());
    source_ = std::make_unique<Source>(dataset_.table.get(),
                                       &handle_->description());
  }

  Dataset dataset_;
  std::unique_ptr<SourceHandle> handle_;
  std::unique_ptr<Source> source_;
};

TEST_F(CarExampleTest, GenCompactUsesTwoQueries) {
  const RunOutcome outcome = RunStrategy(Strategy::kGenCompact, dataset_,
                                         handle_.get(), source_.get());
  ASSERT_TRUE(outcome.feasible);
  // "We can break it up into two conditions" — one per make.
  EXPECT_EQ(outcome.source_queries, 2u);
}

TEST_F(CarExampleTest, DnfUsesFourQueriesSameRows) {
  const RunOutcome gc = RunStrategy(Strategy::kGenCompact, dataset_,
                                    handle_.get(), source_.get());
  const RunOutcome dnf =
      RunStrategy(Strategy::kDnf, dataset_, handle_.get(), source_.get());
  ASSERT_TRUE(gc.feasible);
  ASSERT_TRUE(dnf.feasible);
  // "In a DNF system ... four queries are sent ... the same amount of data
  // is transferred in both cases" (sizes are disjoint per query).
  EXPECT_EQ(dnf.source_queries, 4u);
  EXPECT_EQ(dnf.rows_transferred, gc.rows_transferred);
  EXPECT_LT(gc.source_queries, dnf.source_queries);
}

TEST_F(CarExampleTest, CnfTransfersManyMoreRows) {
  const RunOutcome gc = RunStrategy(Strategy::kGenCompact, dataset_,
                                    handle_.get(), source_.get());
  const RunOutcome cnf =
      RunStrategy(Strategy::kCnf, dataset_, handle_.get(), source_.get());
  ASSERT_TRUE(gc.feasible);
  ASSERT_TRUE(cnf.feasible);
  // The CNF system ships only style+size clauses and transfers many more
  // entries than necessary.
  EXPECT_GT(cnf.rows_transferred, 4 * gc.rows_transferred);
  EXPECT_EQ(cnf.result_rows, gc.result_rows);
}

TEST_F(CarExampleTest, DiscoInfeasible) {
  const RunOutcome outcome =
      RunStrategy(Strategy::kDisco, dataset_, handle_.get(), source_.get());
  EXPECT_FALSE(outcome.feasible);
}

}  // namespace
}  // namespace gencompact
