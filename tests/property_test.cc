// Randomized invariants (DESIGN.md Section 5) over random tables, random
// capability mixes, and random target queries.

#include <gtest/gtest.h>

#include "baselines/cnf_planner.h"
#include "baselines/disco_planner.h"
#include "baselines/dnf_planner.h"
#include "exec/executor.h"
#include "expr/condition_eval.h"
#include "plan/plan_validator.h"
#include "planner/gen_compact.h"
#include "planner/gen_modular.h"
#include "workload/random_capability.h"
#include "workload/random_condition.h"

namespace gencompact {
namespace {

Schema PropertySchema() {
  return Schema({{"s1", ValueType::kString},
                 {"s2", ValueType::kString},
                 {"n1", ValueType::kInt},
                 {"n2", ValueType::kInt}});
}

// Ground truth: evaluate the condition directly over the full table and
// project (set semantics).
RowSet DirectAnswer(const Table& table, const ConditionNode& cond,
                    const AttributeSet& attrs) {
  const Schema& schema = table.schema();
  const RowLayout full(schema.AllAttributes(), schema.num_attributes());
  const RowLayout projected(attrs, schema.num_attributes());
  RowSet out(projected);
  for (const Row& row : table.rows()) {
    const Result<bool> matches = EvalCondition(cond, row, full, schema);
    EXPECT_TRUE(matches.ok());
    if (matches.ok() && *matches) out.Insert(full.Project(row, projected));
  }
  return out;
}

bool IsSubsetOfRows(const RowSet& small, const RowSet& big) {
  for (const Row& row : small.rows()) {
    if (!big.Contains(row)) return false;
  }
  return true;
}

struct PropertyEnv {
  std::unique_ptr<Table> table;
  SourceDescription description;  // pre-closure
  std::unique_ptr<SourceHandle> handle;
  std::unique_ptr<Source> source;
  std::vector<AttributeDomain> domains;

  explicit PropertyEnv(uint64_t seed)
      : description("src", PropertySchema()) {
    Rng rng(seed);
    const Schema schema = PropertySchema();
    table = MakeRandomTable("src", schema, /*rows=*/300, /*string_pool=*/12,
                            /*value_range=*/50, &rng);
    RandomCapabilityOptions options;
    description = RandomCapability("src", schema, options, &rng);
    handle = std::make_unique<SourceHandle>(description, table.get());
    source = std::make_unique<Source>(table.get(), &handle->description());
    domains = ExtractDomains(*table, /*max_samples=*/6, &rng);
  }
};

class PlannerPropertyTest : public ::testing::TestWithParam<uint64_t> {};

// Invariants 1 & 2: plans validate, execute without rejection, and (in safe
// mode) return exactly the direct answer.
TEST_P(PlannerPropertyTest, SafeModePlansAreFeasibleAndExact) {
  PropertyEnv env(GetParam());
  Rng rng(GetParam() * 7919 + 1);
  RandomConditionOptions cond_options;

  size_t feasible = 0;
  for (int trial = 0; trial < 12; ++trial) {
    cond_options.num_atoms = 2 + rng.NextIndex(4);
    const ConditionPtr cond =
        RandomCondition(env.domains, cond_options, &rng);
    AttributeSet attrs;
    attrs.Add(static_cast<int>(rng.NextIndex(4)));
    attrs.Add(static_cast<int>(rng.NextIndex(4)));

    GenCompactOptions options;  // safe_combination defaults to true
    GenCompactPlanner planner(env.handle.get(), options);
    const Result<PlanPtr> plan = planner.Plan(cond, attrs);
    if (!plan.ok()) {
      EXPECT_EQ(plan.status().code(), StatusCode::kNoFeasiblePlan);
      continue;
    }
    ++feasible;
    (void)feasible;  // some capability mixes admit no feasible query at all
    ASSERT_TRUE(ValidatePlanFor(**plan, attrs, env.handle->checker()).ok())
        << (*plan)->ToShortString();

    Executor executor(env.source.get());
    const Result<RowSet> rows = executor.Execute(**plan);
    ASSERT_TRUE(rows.ok()) << rows.status().ToString();

    const RowSet expected = DirectAnswer(*env.table, *cond, attrs);
    EXPECT_EQ(rows->size(), expected.size())
        << "condition: " << cond->ToString()
        << "\nplan: " << (*plan)->ToShortString();
    EXPECT_TRUE(IsSubsetOfRows(expected, *rows));
    EXPECT_TRUE(IsSubsetOfRows(*rows, expected));
  }
}

// Strict (paper) mode: results may be supersets when the projection loses
// the condition attributes, and are exact when all attributes are fetched.
TEST_P(PlannerPropertyTest, StrictModeIsSupersetAndExactOnFullAttrs) {
  PropertyEnv env(GetParam());
  Rng rng(GetParam() * 104729 + 2);
  RandomConditionOptions cond_options;

  for (int trial = 0; trial < 8; ++trial) {
    cond_options.num_atoms = 2 + rng.NextIndex(3);
    const ConditionPtr cond =
        RandomCondition(env.domains, cond_options, &rng);

    GenCompactOptions options;
    options.ipg.safe_combination = false;
    GenCompactPlanner planner(env.handle.get(), options);

    // Narrow projection: superset allowed.
    AttributeSet narrow;
    narrow.Add(static_cast<int>(rng.NextIndex(4)));
    const Result<PlanPtr> narrow_plan = planner.Plan(cond, narrow);
    if (narrow_plan.ok()) {
      Executor executor(env.source.get());
      const Result<RowSet> rows = executor.Execute(**narrow_plan);
      ASSERT_TRUE(rows.ok());
      EXPECT_TRUE(
          IsSubsetOfRows(DirectAnswer(*env.table, *cond, narrow), *rows));
    }

    // Full projection: exact.
    const AttributeSet all = env.handle->schema().AllAttributes();
    const Result<PlanPtr> full_plan = planner.Plan(cond, all);
    if (full_plan.ok()) {
      Executor executor(env.source.get());
      const Result<RowSet> rows = executor.Execute(**full_plan);
      ASSERT_TRUE(rows.ok());
      const RowSet expected = DirectAnswer(*env.table, *cond, all);
      EXPECT_EQ(rows->size(), expected.size()) << cond->ToString();
      EXPECT_TRUE(IsSubsetOfRows(*rows, expected));
    }
  }
}

// Invariant 4: GenCompact (paper mode) never costs more than a feasible
// baseline, and is feasible whenever a baseline is.
TEST_P(PlannerPropertyTest, GenCompactDominatesBaselines) {
  PropertyEnv env(GetParam());
  Rng rng(GetParam() * 31337 + 3);
  RandomConditionOptions cond_options;

  for (int trial = 0; trial < 10; ++trial) {
    cond_options.num_atoms = 2 + rng.NextIndex(4);
    const ConditionPtr cond =
        RandomCondition(env.domains, cond_options, &rng);
    AttributeSet attrs;
    attrs.Add(static_cast<int>(rng.NextIndex(4)));

    GenCompactOptions options;
    options.ipg.safe_combination = false;
    options.max_cts = 256;
    GenCompactPlanner gencompact(env.handle.get(), options);
    const Result<PlanPtr> gc = gencompact.Plan(cond, attrs);

    const CostModel& model = env.handle->cost_model();
    CnfPlanner cnf(env.handle.get());
    DnfPlanner dnf(env.handle.get());
    DiscoPlanner disco(env.handle.get());
    for (PlannerStrategy* baseline :
         std::initializer_list<PlannerStrategy*>{&cnf, &dnf, &disco}) {
      const Result<PlanPtr> base = baseline->Plan(cond, attrs);
      if (!base.ok()) continue;
      ASSERT_TRUE(gc.ok()) << baseline->name()
                           << " feasible but GenCompact not, for "
                           << cond->ToString();
      EXPECT_LE(model.PlanCost(**gc), model.PlanCost(**base) + 1e-6)
          << baseline->name() << " beat GenCompact on " << cond->ToString();
    }
  }
}

// Invariant 3: GenCompact (strict) matches GenModular's optimal cost on
// small queries when neither scheme hit a budget.
TEST_P(PlannerPropertyTest, GenCompactMatchesGenModular) {
  PropertyEnv env(GetParam());
  Rng rng(GetParam() * 49979 + 4);
  RandomConditionOptions cond_options;

  for (int trial = 0; trial < 4; ++trial) {
    cond_options.num_atoms = 2 + rng.NextIndex(2);  // 2-3 atoms: tractable
    const ConditionPtr cond =
        RandomCondition(env.domains, cond_options, &rng);
    AttributeSet attrs;
    attrs.Add(static_cast<int>(rng.NextIndex(4)));

    GenCompactOptions gc_options;
    gc_options.ipg.safe_combination = false;
    gc_options.max_cts = 512;
    GenCompactPlanner gencompact(env.handle.get(), gc_options);
    const Result<PlanPtr> gc = gencompact.Plan(cond, attrs);

    GenModularOptions gm_options;
    gm_options.rewrite.max_cts = 2048;
    GenModularPlanner genmodular(env.handle.get(), gm_options);
    const Result<PlanPtr> gm = genmodular.Plan(cond, attrs);

    ASSERT_EQ(gc.ok(), gm.ok()) << cond->ToString();
    if (!gc.ok()) continue;

    const CostModel& model = env.handle->cost_model();
    const double gc_cost = model.PlanCost(**gc);
    const double gm_cost = model.PlanCost(**gm);
    EXPECT_LE(gc_cost, gm_cost + 1e-6) << cond->ToString();
    if (!genmodular.stats().rewrite_budget_exhausted &&
        !genmodular.stats().epg_incomplete &&
        !gencompact.stats().rewrite_budget_exhausted &&
        !gencompact.stats().ipg.incomplete) {
      EXPECT_NEAR(gc_cost, gm_cost, 1e-6)
          << "plan spaces diverged on " << cond->ToString() << "\nGC: "
          << (*gc)->ToShortString() << "\nGM: " << (*gm)->ToShortString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerPropertyTest,
                         ::testing::Values(101, 202, 303, 404, 505, 606, 707,
                                           808, 909, 1010));

}  // namespace
}  // namespace gencompact
