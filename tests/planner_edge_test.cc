// Edge cases and deeper shapes for the plan generators, beyond the
// motivating-example scenarios of planner_test.cc.

#include <gtest/gtest.h>

#include "exec/executor.h"
#include "expr/condition_eval.h"
#include "expr/condition_parser.h"
#include "plan/plan_validator.h"
#include "planner/gen_compact.h"
#include "planner/ipg.h"
#include "ssdl/ssdl_parser.h"

namespace gencompact {
namespace {

ConditionPtr Parse(const std::string& text) {
  Result<ConditionPtr> cond = ParseCondition(text);
  EXPECT_TRUE(cond.ok()) << cond.status().ToString();
  return std::move(cond).value();
}

SourceDescription ParseDescription(const std::string& text) {
  Result<SourceDescription> description = ParseSsdl(text);
  EXPECT_TRUE(description.ok()) << description.status().ToString();
  return std::move(description).value();
}

// A source that accepts single atoms on a, b, c and value lists on a.
class AtomSourceFixture : public ::testing::Test {
 protected:
  AtomSourceFixture()
      : description_(ParseDescription(R"(
          source R(a: string, b: int, c: int) {
            cost 10.0 1.0;
            rule alist -> a = $string or a = $string
                        | a = $string or alist;
            rule f -> a = $string | b = $int | c = $int | alist;
            export f : {a, b, c};
          })")),
        table_("R", description_.schema()) {
    for (int i = 0; i < 30; ++i) {
      EXPECT_TRUE(table_
                      .AppendValues({Value::String("v" + std::to_string(i % 5)),
                                     Value::Int(i % 7), Value::Int(i % 3)})
                      .ok());
    }
    handle_ = std::make_unique<SourceHandle>(description_, &table_);
    source_ = std::make_unique<Source>(&table_, &handle_->description());
  }

  RowSet MustExecute(const PlanPtr& plan) {
    Executor executor(source_.get());
    Result<RowSet> rows = executor.Execute(*plan);
    EXPECT_TRUE(rows.ok()) << rows.status().ToString();
    return std::move(rows).value();
  }

  SourceDescription description_;
  Table table_;
  std::unique_ptr<SourceHandle> handle_;
  std::unique_ptr<Source> source_;
};

TEST_F(AtomSourceFixture, OrNodeSubsetQueriesMergeValueLists) {
  // a = v1 or a = v2 or b = 3: the a-disjuncts can ship as ONE value-list
  // query; b ships separately. Expect 2 source queries, not 3.
  Ipg ipg(handle_.get());
  AttributeSet attrs;
  attrs.Add(0);
  attrs.Add(1);
  const PlanPtr plan =
      ipg.Plan(Parse("a = \"v1\" or a = \"v2\" or b = 3"), attrs);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(ValidatePlan(*plan, handle_->checker()).ok());
  EXPECT_EQ(plan->CountSourceQueries(), 2u);

  const RowSet rows = MustExecute(plan);
  // Direct count: a in {v1,v2} -> 12 rows; b = 3 -> rows 3,10,17,24 ->
  // values (v3,3),(v0,3),(v2,3),(v4,3). Projected to (a,b): distinct pairs.
  size_t expected = 0;
  const RowLayout full(description_.schema().AllAttributes(), 3);
  RowSet truth(RowLayout(attrs, 3));
  for (const Row& row : table_.rows()) {
    const bool match = row.value(0) == Value::String("v1") ||
                       row.value(0) == Value::String("v2") ||
                       row.value(1) == Value::Int(3);
    if (match) truth.Insert(full.Project(row, truth.layout()));
  }
  expected = truth.size();
  EXPECT_EQ(rows.size(), expected);
}

TEST_F(AtomSourceFixture, DeepAlternatingConditionPlansAndExecutes) {
  const ConditionPtr cond = Parse(
      "(a = \"v1\" and (b = 1 or b = 2)) or "
      "(a = \"v2\" and (c = 0 or (b = 3 and c = 1)))");
  AttributeSet attrs;
  attrs.Add(0);
  GenCompactPlanner planner(handle_.get());
  const Result<PlanPtr> plan = planner.Plan(cond, attrs);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(ValidatePlan(**plan, handle_->checker()).ok());

  const RowSet rows = MustExecute(*plan);
  const RowLayout full(description_.schema().AllAttributes(), 3);
  RowSet truth(RowLayout(attrs, 3));
  for (const Row& row : table_.rows()) {
    const Result<bool> match =
        EvalCondition(*cond, row, full, description_.schema());
    ASSERT_TRUE(match.ok());
    if (*match) truth.Insert(full.Project(row, truth.layout()));
  }
  EXPECT_EQ(rows.size(), truth.size());
}

TEST_F(AtomSourceFixture, InSugarPlansAsValueList) {
  GenCompactPlanner planner(handle_.get());
  AttributeSet attrs;
  attrs.Add(0);
  const Result<PlanPtr> plan =
      planner.Plan(Parse("a in {\"v1\", \"v2\", \"v3\"}"), attrs);
  ASSERT_TRUE(plan.ok());
  // One value-list source query covers the whole disjunction (PR1).
  EXPECT_EQ((*plan)->CountSourceQueries(), 1u);
}

TEST_F(AtomSourceFixture, MemoizationSharesSubplansAcrossCts) {
  // A condition whose distributive rewrites revisit identical subtrees.
  const ConditionPtr cond = Parse(
      "(a = \"v1\" or a = \"v2\") and (b = 1 or c = 2)");
  AttributeSet attrs;
  attrs.Add(0);
  Ipg ipg(handle_.get());
  ASSERT_NE(ipg.Plan(cond, attrs), nullptr);
  const size_t calls_first = ipg.stats().calls;
  // Re-planning the identical condition is a pure memo hit (1 extra call).
  ASSERT_NE(ipg.Plan(cond, attrs), nullptr);
  EXPECT_EQ(ipg.stats().calls, calls_first + 1);
}

TEST_F(AtomSourceFixture, TrueConditionPlansWhenDownloadExists) {
  // This source has no download rule: SELECT * (true condition) must fail.
  GenCompactPlanner planner(handle_.get());
  const Result<PlanPtr> plan =
      planner.Plan(ConditionNode::True(), description_.schema().AllAttributes());
  EXPECT_FALSE(plan.ok());
}

TEST(SizeRestrictedSourceTest, GrammarBoundsConjunctionLength) {
  // Condition-Expression-Size Restrictions (Section 4): at most two
  // conjuncts, expressed directly in the grammar.
  const SourceDescription description = ParseDescription(R"(
    source R(a: int, b: int, c: int) {
      cost 5.0 1.0;
      rule atom -> a = $int | b = $int | c = $int;
      rule f -> atom | atom and atom;
      export f : {a, b, c};
    })");
  Table table("R", description.schema());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(table
                    .AppendValues({Value::Int(i % 2), Value::Int(i % 3),
                                   Value::Int(i % 5)})
                    .ok());
  }
  SourceHandle handle(description, &table);
  Checker* checker = handle.checker();
  EXPECT_FALSE(checker->Check(*Parse("a = 1 and b = 2")).empty());
  EXPECT_TRUE(checker->Check(*Parse("a = 1 and b = 2 and c = 3")).empty());

  // The 3-conjunct query still gets a feasible plan: ship two conjuncts,
  // evaluate the third at the mediator (exports cover all attributes).
  GenCompactPlanner planner(&handle);
  AttributeSet attrs;
  attrs.Add(0);
  const Result<PlanPtr> plan = planner.Plan(Parse("a = 1 and b = 2 and c = 3"),
                                            attrs);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(ValidatePlan(**plan, handle.checker()).ok());
  EXPECT_EQ((*plan)->CountSourceQueries(), 1u);
}

TEST(RequiredInputSourceTest, BankPinExample) {
  // Section 4's bank example: the balance attribute is exported only when
  // the PIN is supplied in the condition.
  const SourceDescription description = ParseDescription(R"(
    source bank(account: string, owner: string, balance: int, pin: string) {
      cost 5.0 1.0;
      rule basic -> account = $string;
      rule authed -> account = $string and pin = $string;
      export basic : {account, owner};
      export authed : {account, owner, balance};
    })");
  Table table("bank", description.schema());
  ASSERT_TRUE(table
                  .AppendValues({Value::String("acc1"), Value::String("alice"),
                                 Value::Int(500), Value::String("1234")})
                  .ok());
  SourceHandle handle(description, &table);

  GenCompactPlanner planner(&handle);
  AttributeSet balance;
  balance.Add(*description.schema().IndexOf("balance"));

  // Without a PIN: no way to get the balance.
  EXPECT_FALSE(planner.Plan(Parse("account = \"acc1\""), balance).ok());
  // With the PIN in the condition: supported.
  const Result<PlanPtr> plan =
      planner.Plan(Parse("account = \"acc1\" and pin = \"1234\""), balance);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->kind(), PlanNode::Kind::kSourceQuery);
}

TEST(SingleAtomConditionTest, LeafLevelPlanning) {
  const SourceDescription description = ParseDescription(R"(
    source R(a: int) {
      cost 2.0 1.0;
      rule f -> a = $int;
      export f : {a};
    })");
  Table table("R", description.schema());
  ASSERT_TRUE(table.AppendValues({Value::Int(1)}).ok());
  SourceHandle handle(description, &table);
  Ipg ipg(&handle);
  AttributeSet attrs;
  attrs.Add(0);
  EXPECT_NE(ipg.Plan(Parse("a = 1"), attrs), nullptr);
  EXPECT_EQ(ipg.Plan(Parse("a < 1"), attrs), nullptr);  // wrong operator
}

}  // namespace
}  // namespace gencompact
