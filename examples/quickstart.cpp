// Quickstart: describe a limited source in SSDL, register it with the
// mediator, and run a target query the source cannot answer directly.
//
// This is Example 4.1 of the paper — a car source that only accepts
//   make = $m and price < $p     (exports make, model, year, color)
//   make = $m and color = $c     (exports make, model, year)
// — queried with a disjunctive condition that GenCompact splits into two
// supported source queries whose results the mediator unions.

#include <cstdio>

#include "expr/condition_parser.h"
#include "mediator/mediator.h"
#include "ssdl/ssdl_parser.h"

namespace {

constexpr const char* kSsdl = R"(
source cars(make: string, model: string, year: int,
            color: string, price: int) {
  cost 10.0 1.0;                # k1 k2 of the linear cost model
  rule s1 -> make = $string and price < $int;
  rule s2 -> make = $string and color = $string;
  export s1 : {make, model, year, color};
  export s2 : {make, model, year};
}
)";

}  // namespace

int main() {
  using namespace gencompact;

  // 1. Parse the SSDL capability description.
  Result<SourceDescription> description = ParseSsdl(kSsdl);
  if (!description.ok()) {
    std::fprintf(stderr, "SSDL error: %s\n",
                 description.status().ToString().c_str());
    return 1;
  }

  // 2. Load some data behind the capability-enforcing source.
  auto table = std::make_unique<Table>("cars", description->schema());
  const auto add = [&](const char* make, const char* model, int64_t year,
                       const char* color, int64_t price) {
    (void)table->AppendValues({Value::String(make), Value::String(model),
                               Value::Int(year), Value::String(color),
                               Value::Int(price)});
  };
  add("BMW", "318i", 1996, "red", 21000);
  add("BMW", "528i", 1998, "black", 38000);
  add("BMW", "735i", 1998, "silver", 52000);
  add("Toyota", "Corolla", 1997, "red", 13000);
  add("Toyota", "Camry", 1998, "blue", 19000);
  add("Honda", "Civic", 1997, "white", 12500);

  // 3. Register with the mediator (GenCompact is the default strategy).
  Mediator mediator;
  const Status registered =
      mediator.RegisterSource(std::move(description).value(), std::move(table));
  if (!registered.ok()) {
    std::fprintf(stderr, "register error: %s\n", registered.ToString().c_str());
    return 1;
  }

  // 4. A target query the source cannot evaluate in one shot: the source
  //    takes a single make at a time, so the planner must split the
  //    disjunction.
  const std::string sql =
      "SELECT make, model, year FROM cars WHERE "
      "(make = \"BMW\" and price < 40000) or "
      "(make = \"Toyota\" and price < 20000)";

  const Result<std::string> explain =
      mediator.ExplainText(sql, Strategy::kGenCompact);
  if (!explain.ok()) {
    std::fprintf(stderr, "plan error: %s\n", explain.status().ToString().c_str());
    return 1;
  }
  std::printf("Plan:\n%s\n", explain->c_str());

  Result<Mediator::QueryResult> result = mediator.Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  std::printf("Result (%zu rows, %zu source queries, %llu rows transferred):\n",
              result->rows.size(), result->exec.source_queries,
              static_cast<unsigned long long>(result->exec.rows_transferred));
  for (const Row& row : result->rows.SortedRows()) {
    std::printf("  %s\n", row.ToString().c_str());
  }
  return 0;
}
