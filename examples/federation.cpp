// Federation example: the complex-query extension ([2]) — a two-source
// equi-join where BOTH sides are capability-limited Internet sources.
//
// cars:    a listing site (single make and/or price bound per query).
// dealers: a dealer directory whose form REQUIRES a make (one value or a
//          list) and optionally a rating floor. It cannot be downloaded and
//          cannot be searched by rating alone.
//
// "Which dealers (rating >= 4) sell sedans under $25,000, and which
// models?" — the right side cannot run independently, so the mediator
// executes a capability-sensitive bind-join: it queries the listing site,
// collects the distinct makes, and feeds them to the dealer form as value
// lists.

#include <cstdio>

#include "common/rng.h"
#include "mediator/mediator.h"
#include "ssdl/ssdl_parser.h"

using namespace gencompact;

namespace {

constexpr const char* kCarsSsdl = R"(
source cars(make: string, model: string, style: string, price: int) {
  cost 10.0 1.0;
  rule f -> make = $string
          | style = $string
          | price < $int
          | make = $string and price < $int
          | style = $string and price < $int;
  export f : {make, model, style, price};
})";

constexpr const char* kDealersSsdl = R"(
source dealers(make: string, dealer: string, city: string, rating: int) {
  cost 8.0 1.0;
  rule mlist -> make = $string or make = $string
              | make = $string or mlist;
  rule f -> make = $string
          | mlist
          | ( mlist )
          | make = $string and rating >= $int
          | ( mlist ) and rating >= $int;
  export f : {make, dealer, city, rating};
})";

}  // namespace

int main() {
  Mediator mediator;

  Result<SourceDescription> cars = ParseSsdl(kCarsSsdl);
  Result<SourceDescription> dealers = ParseSsdl(kDealersSsdl);
  if (!cars.ok() || !dealers.ok()) {
    std::fprintf(stderr, "SSDL error\n");
    return 1;
  }

  // Synthetic data.
  Rng rng(99);
  static const char* const kMakes[] = {"Toyota", "BMW",  "Honda",
                                       "Ford",   "Mazda"};
  static const char* const kStyles[] = {"sedan", "coupe", "suv"};
  auto cars_table = std::make_unique<Table>("cars", cars->schema());
  for (int i = 0; i < 3000; ++i) {
    const std::string make = kMakes[rng.NextIndex(5)];
    (void)cars_table->AppendValues(
        {Value::String(make),
         Value::String(make.substr(0, 2) + std::to_string(rng.NextInt(100, 999))),
         Value::String(kStyles[rng.NextIndex(3)]),
         Value::Int(rng.NextInt(8000, 60000))});
  }
  auto dealers_table = std::make_unique<Table>("dealers", dealers->schema());
  static const char* const kCities[] = {"Palo Alto", "San Jose", "Fremont",
                                        "Oakland"};
  for (int i = 0; i < 60; ++i) {
    (void)dealers_table->AppendValues(
        {Value::String(kMakes[rng.NextIndex(5)]),
         Value::String("Dealer #" + std::to_string(i)),
         Value::String(kCities[rng.NextIndex(4)]),
         Value::Int(rng.NextInt(1, 5))});
  }

  if (!mediator.RegisterSource(std::move(cars).value(), std::move(cars_table))
           .ok() ||
      !mediator
           .RegisterSource(std::move(dealers).value(), std::move(dealers_table))
           .ok()) {
    std::fprintf(stderr, "register failed\n");
    return 1;
  }

  const std::string sql =
      "SELECT cars.model, cars.price, dealers.dealer, dealers.city "
      "FROM cars JOIN dealers ON cars.make = dealers.make "
      "WHERE cars.style = \"sedan\" and cars.price < 25000 and "
      "dealers.rating >= 4";
  std::printf("SQL: %s\n\n", sql.c_str());

  const Result<Mediator::QueryResult> result = mediator.Query(sql);
  if (!result.ok()) {
    std::fprintf(stderr, "query failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%zu result rows; %zu source queries total, %llu rows transferred "
      "(true cost %.1f)\n",
      result->rows.size(), result->exec.source_queries,
      static_cast<unsigned long long>(result->exec.rows_transferred),
      result->true_cost);
  size_t shown = 0;
  for (const Row& row : result->rows.SortedRows()) {
    if (++shown > 8) {
      std::printf("  ... (%zu more)\n", result->rows.size() - 8);
      break;
    }
    std::printf("  %s\n", row.ToString().c_str());
  }
  std::printf(
      "\nThe dealer directory cannot be queried without a make and cannot "
      "be downloaded; the mediator bound the makes discovered on the "
      "listing site into the dealer form's value list.\n");
  return 0;
}
