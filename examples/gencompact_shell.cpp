// gencompact_shell: an interactive mediator over SSDL + CSV sources.
//
// Usage:
//   gencompact_shell <desc1.ssdl> <data1.csv> [<desc2.ssdl> <data2.csv> ...]
//   gencompact_shell --demo
//
// Each source is an SSDL description plus a CSV file matching its schema
// (header row required). Then type SQL at the prompt:
//
//   > SELECT make, model FROM cars WHERE make = "BMW" and price < 40000
//   > EXPLAIN SELECT model FROM cars WHERE ...      -- show the plan
//   > STRATEGY cnf                                  -- switch planner
//   > SELECT cars.model, dealers.city FROM cars JOIN dealers
//       ON cars.make = dealers.make WHERE ...
//   > .sources                                      -- list sources
//   > .quit
//
// The --demo mode registers the quickstart car source with a few rows.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/strings.h"
#include "mediator/mediator.h"
#include "ssdl/ssdl_parser.h"
#include "storage/csv.h"

using namespace gencompact;

namespace {

constexpr const char* kDemoSsdl = R"(
source cars(make: string, model: string, year: int,
            color: string, price: int) {
  cost 10.0 1.0;
  rule s1 -> make = $string and price < $int;
  rule s2 -> make = $string and color = $string;
  export s1 : {make, model, year, color};
  export s2 : {make, model, year};
}
)";

constexpr const char* kDemoCsv =
    "make,model,year,color,price\n"
    "BMW,318i,1996,red,21000\n"
    "BMW,528i,1998,black,38000\n"
    "BMW,735i,1998,silver,52000\n"
    "Toyota,Corolla,1997,red,13000\n"
    "Toyota,Camry,1998,blue,19000\n"
    "Honda,Civic,1997,white,12500\n";

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

Status RegisterFromText(Mediator* mediator, const std::string& ssdl_text,
                        const std::string& csv_text) {
  GC_ASSIGN_OR_RETURN(SourceDescription description, ParseSsdl(ssdl_text));
  GC_ASSIGN_OR_RETURN(
      std::unique_ptr<Table> table,
      LoadCsv(csv_text, description.source_name(), description.schema()));
  std::printf("registered source '%s' %s with %zu rows\n",
              description.source_name().c_str(),
              description.schema().ToString().c_str(), table->num_rows());
  return mediator->RegisterSource(std::move(description), std::move(table));
}

std::optional<Strategy> ParseStrategy(const std::string& name) {
  const std::string lower = ToLower(name);
  if (lower == "gencompact") return Strategy::kGenCompact;
  if (lower == "genmodular") return Strategy::kGenModular;
  if (lower == "cnf") return Strategy::kCnf;
  if (lower == "dnf") return Strategy::kDnf;
  if (lower == "disco") return Strategy::kDisco;
  if (lower == "naive") return Strategy::kNaive;
  return std::nullopt;
}

void RunQuery(Mediator* mediator, const std::string& sql, Strategy strategy) {
  const Result<Mediator::QueryResult> result = mediator->Query(sql, strategy);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  size_t shown = 0;
  for (const Row& row : result->rows.SortedRows()) {
    if (++shown > 25) {
      std::printf("  ... (%zu more rows)\n", result->rows.size() - 25);
      break;
    }
    std::printf("  %s\n", row.ToString().c_str());
  }
  std::printf(
      "-- %zu rows; %zu source queries, %llu rows transferred, true cost "
      "%.1f\n",
      result->rows.size(), result->exec.source_queries,
      static_cast<unsigned long long>(result->exec.rows_transferred),
      result->true_cost);
}

}  // namespace

int main(int argc, char** argv) {
  Mediator mediator;

  if (argc >= 2 && std::string(argv[1]) == "--demo") {
    const Status status = RegisterFromText(&mediator, kDemoSsdl, kDemoCsv);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  } else if (argc >= 3 && (argc - 1) % 2 == 0) {
    for (int i = 1; i + 1 < argc; i += 2) {
      Result<std::string> ssdl = ReadFile(argv[i]);
      Result<std::string> csv = ReadFile(argv[i + 1]);
      if (!ssdl.ok() || !csv.ok()) {
        std::fprintf(stderr, "%s\n",
                     (!ssdl.ok() ? ssdl.status() : csv.status()).ToString().c_str());
        return 1;
      }
      const Status status = RegisterFromText(&mediator, *ssdl, *csv);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    }
  } else {
    std::fprintf(stderr,
                 "usage: %s <desc.ssdl> <data.csv> [more pairs...]\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 1;
  }

  Strategy strategy = Strategy::kGenCompact;
  std::printf("strategy: GenCompact. Type SQL, EXPLAIN <sql>, ANALYZE <sql>, STRATEGY "
              "<name>, or .quit\n");
  std::string line;
  std::printf("> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    const std::string input(StripWhitespace(line));
    if (input.empty()) {
      std::printf("> ");
      std::fflush(stdout);
      continue;
    }
    if (input == ".quit" || input == ".exit") break;
    if (input == ".sources") {
      std::printf("%zu sources registered\n", mediator.catalog()->size());
    } else if (ToLower(input.substr(0, 9)) == "strategy ") {
      const std::optional<Strategy> parsed = ParseStrategy(
          std::string(StripWhitespace(input.substr(9))));
      if (parsed.has_value()) {
        strategy = *parsed;
        std::printf("strategy: %s\n", StrategyName(strategy));
      } else {
        std::printf("unknown strategy (gencompact|genmodular|cnf|dnf|disco|"
                    "naive)\n");
      }
    } else if (ToLower(input.substr(0, 8)) == "explain ") {
      const Result<std::string> text =
          mediator.ExplainText(input.substr(8), strategy);
      std::printf("%s", text.ok() ? text->c_str()
                                  : (text.status().ToString() + "\n").c_str());
    } else if (ToLower(input.substr(0, 8)) == "analyze ") {
      const Result<std::string> text =
          mediator.ExplainAnalyze(input.substr(8), strategy);
      std::printf("%s", text.ok() ? text->c_str()
                                  : (text.status().ToString() + "\n").c_str());
    } else {
      RunQuery(&mediator, input, strategy);
    }
    std::printf("> ");
    std::fflush(stdout);
  }
  return 0;
}
