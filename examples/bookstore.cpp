// Example 1.1 of the paper, end to end: the Internet bookstore.
//
// The BarnesAndNoble-style interface cannot search two authors at once, so
// the query "(Freud or Jung) about dreams" has no direct source query.
// This example shows the plan each contemporary strategy produces, executes
// the feasible ones against a 50,000-book synthetic catalog, and prints the
// rows each plan drags across the (simulated) network.

#include <cstdio>

#include "exec/executor.h"
#include "plan/plan_printer.h"
#include "planner/planner.h"
#include "workload/datasets.h"

using namespace gencompact;

int main() {
  Dataset dataset = MakeBookstore(50000, /*seed=*/42);
  SourceHandle handle(dataset.description, dataset.table.get());
  Source source(dataset.table.get(), &handle.description());

  std::printf("Source: books%s, %zu rows\n",
              handle.schema().ToString().c_str(), dataset.table->num_rows());
  std::printf("Capability (SSDL, before closure):\n%s\n",
              dataset.description.ToString().c_str());
  std::printf("Target query: SP(%s, {author, title, price})\n\n",
              dataset.example_condition->ToString().c_str());

  const Result<AttributeSet> attrs =
      handle.schema().MakeSet(dataset.example_attrs);
  if (!attrs.ok()) {
    std::fprintf(stderr, "%s\n", attrs.status().ToString().c_str());
    return 1;
  }

  for (Strategy strategy : {Strategy::kGenCompact, Strategy::kCnf,
                            Strategy::kDnf, Strategy::kDisco}) {
    std::printf("=== %s ===\n", StrategyName(strategy));
    const std::unique_ptr<PlannerStrategy> planner =
        MakePlanner(strategy, &handle);
    const Result<PlanPtr> plan =
        planner->Plan(dataset.example_condition, *attrs);
    if (!plan.ok()) {
      std::printf("  %s\n\n", plan.status().ToString().c_str());
      continue;
    }
    std::printf("%s", PrintPlan(**plan, handle.schema(),
                                &handle.cost_model())
                          .c_str());
    Executor executor(&source);
    const Result<RowSet> rows = executor.Execute(**plan);
    if (!rows.ok()) {
      std::printf("  execution failed: %s\n\n",
                  rows.status().ToString().c_str());
      continue;
    }
    std::printf("  -> %zu source queries, %llu rows transferred, %zu results\n\n",
                executor.stats().source_queries,
                static_cast<unsigned long long>(
                    executor.stats().rows_transferred),
                rows->size());
    if (strategy == Strategy::kGenCompact) {
      for (const Row& row : rows->SortedRows()) {
        std::printf("     %s\n", row.ToString().c_str());
      }
      std::printf("\n");
    }
  }
  return 0;
}
