// Example 1.2 of the paper, end to end: the car shopping guide.
//
// The web form takes single values for style, make and price, plus a LIST
// of values for size. The target condition —
//   style = sedan AND (size in {compact, midsize}) AND
//   ((make = Toyota AND price <= 20000) OR (make = BMW AND price <= 40000))
// — cannot be submitted directly. GenCompact splits it into exactly two
// form submissions; this example contrasts that with the 4-query DNF plan
// and the row-hungry CNF plan.

#include <cstdio>

#include "exec/executor.h"
#include "mediator/mediator.h"
#include "workload/datasets.h"

using namespace gencompact;

int main() {
  Dataset dataset = MakeCarSource(40000, /*seed=*/7);

  // Register with the mediator facade; this time drive everything through
  // the SQL front end.
  Mediator mediator;
  SourceDescription description = dataset.description;  // keep a copy to show
  if (Status s = mediator.RegisterSource(std::move(dataset.description),
                                         std::move(dataset.table));
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  const std::string sql =
      "SELECT make, model, price, year FROM cars WHERE "
      "style = \"sedan\" and size in {\"compact\", \"midsize\"} and "
      "((make = \"Toyota\" and price <= 20000) or "
      "(make = \"BMW\" and price <= 40000))";

  std::printf("SQL: %s\n\n", sql.c_str());

  for (Strategy strategy : {Strategy::kGenCompact, Strategy::kDnf,
                            Strategy::kCnf, Strategy::kDisco}) {
    std::printf("=== %s ===\n", StrategyName(strategy));
    const Result<std::string> explain = mediator.ExplainText(sql, strategy);
    if (!explain.ok()) {
      std::printf("  %s\n\n", explain.status().ToString().c_str());
      continue;
    }
    std::printf("%s", explain->c_str());
    const Result<Mediator::QueryResult> result = mediator.Query(sql, strategy);
    if (!result.ok()) {
      std::printf("  execution failed: %s\n\n",
                  result.status().ToString().c_str());
      continue;
    }
    std::printf(
        "  -> %zu source queries, %llu rows transferred, %zu results, "
        "true cost %.1f\n\n",
        result->exec.source_queries,
        static_cast<unsigned long long>(result->exec.rows_transferred),
        result->rows.size(), result->true_cost);
  }

  std::printf(
      "Note: the form is order-sensitive in SSDL, but the mediator plans "
      "against the commutativity-closed description (Section 6.1), so the "
      "condition can be written in any order.\n");
  return 0;
}
