// capability_explorer: a small CLI around SSDL's Check function.
//
// Feed it an SSDL description and condition expressions; it reports, for
// each condition, whether the source supports it, which attributes it can
// export (the Check family), and what the closure adds. Handy when writing
// a description for a new source.
//
// Usage:
//   capability_explorer <description.ssdl> [condition ...]
//   capability_explorer --demo
//
// With no conditions, reads one condition per line from stdin.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "expr/condition_parser.h"
#include "ssdl/check.h"
#include "ssdl/closure.h"
#include "ssdl/ssdl_parser.h"

using namespace gencompact;

namespace {

constexpr const char* kDemoSsdl = R"(
# Example 4.1 of the paper.
source R(make: string, model: string, year: int,
         color: string, price: int) {
  rule s1 -> make = $string and price < $int;
  rule s2 -> make = $string and color = $string;
  export s1 : {make, model, year, color};
  export s2 : {make, model, year};
}
)";

constexpr const char* kDemoConditions[] = {
    "make = \"BMW\" and price < 40000",
    "price < 40000 and make = \"BMW\"",
    "make = \"BMW\" and color = \"red\"",
    "color = \"red\" or color = \"black\"",
    "true",
};

void Report(const std::string& text, Checker* original, Checker* closed) {
  const Result<ConditionPtr> cond = ParseCondition(text);
  if (!cond.ok()) {
    std::printf("  parse error: %s\n", cond.status().ToString().c_str());
    return;
  }
  const Schema& schema = original->description().schema();
  const std::vector<AttributeSet>& direct = original->Check(**cond);
  const std::vector<AttributeSet>& reordered = closed->Check(**cond);
  std::printf("condition: %s\n", (*cond)->ToString().c_str());
  if (direct.empty() && reordered.empty()) {
    std::printf("  NOT supported (in any conjunct order)\n");
    return;
  }
  if (!direct.empty()) {
    std::printf("  supported as written; exports:");
  } else {
    std::printf("  supported after reordering (commutativity closure); exports:");
  }
  for (const AttributeSet& family :
       !direct.empty() ? direct : reordered) {
    std::printf(" %s", family.ToString(schema).c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string ssdl_text;
  std::vector<std::string> conditions;

  if (argc >= 2 && std::string(argv[1]) == "--demo") {
    ssdl_text = kDemoSsdl;
    for (const char* c : kDemoConditions) conditions.push_back(c);
  } else if (argc >= 2) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::fprintf(stderr, "cannot open %s\n", argv[1]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    ssdl_text = buffer.str();
    for (int i = 2; i < argc; ++i) conditions.push_back(argv[i]);
  } else {
    std::fprintf(stderr,
                 "usage: %s <description.ssdl> [condition ...]\n"
                 "       %s --demo\n",
                 argv[0], argv[0]);
    return 1;
  }

  Result<SourceDescription> description = ParseSsdl(ssdl_text);
  if (!description.ok()) {
    std::fprintf(stderr, "SSDL error: %s\n",
                 description.status().ToString().c_str());
    return 1;
  }
  const SourceDescription closed_description = CommutativityClosure(*description);
  std::printf("Loaded source '%s' %s\n", description->source_name().c_str(),
              description->schema().ToString().c_str());
  std::printf("%zu grammar rules (%zu after commutativity closure)\n\n",
              description->grammar().rules().size(),
              closed_description.grammar().rules().size());

  Checker original(&*description);
  Checker closed(&closed_description);

  if (!conditions.empty()) {
    for (const std::string& text : conditions) {
      Report(text, &original, &closed);
    }
    return 0;
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    Report(line, &original, &closed);
  }
  return 0;
}
