# Empty dependencies file for bench_mcsc.
# This may be replaced when dependencies are built.
