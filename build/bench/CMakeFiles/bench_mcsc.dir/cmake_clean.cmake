file(REMOVE_RECURSE
  "CMakeFiles/bench_mcsc.dir/bench_mcsc.cc.o"
  "CMakeFiles/bench_mcsc.dir/bench_mcsc.cc.o.d"
  "bench_mcsc"
  "bench_mcsc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mcsc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
