file(REMOVE_RECURSE
  "CMakeFiles/bench_motivating.dir/bench_motivating.cc.o"
  "CMakeFiles/bench_motivating.dir/bench_motivating.cc.o.d"
  "bench_motivating"
  "bench_motivating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
