# Empty dependencies file for bench_planning_time.
# This may be replaced when dependencies are built.
