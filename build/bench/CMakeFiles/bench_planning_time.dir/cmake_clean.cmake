file(REMOVE_RECURSE
  "CMakeFiles/bench_planning_time.dir/bench_planning_time.cc.o"
  "CMakeFiles/bench_planning_time.dir/bench_planning_time.cc.o.d"
  "bench_planning_time"
  "bench_planning_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_planning_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
