file(REMOVE_RECURSE
  "CMakeFiles/bench_pruning.dir/bench_pruning.cc.o"
  "CMakeFiles/bench_pruning.dir/bench_pruning.cc.o.d"
  "bench_pruning"
  "bench_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
