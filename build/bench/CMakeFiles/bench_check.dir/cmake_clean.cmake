file(REMOVE_RECURSE
  "CMakeFiles/bench_check.dir/bench_check.cc.o"
  "CMakeFiles/bench_check.dir/bench_check.cc.o.d"
  "bench_check"
  "bench_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
