file(REMOVE_RECURSE
  "libgencompact.a"
)
