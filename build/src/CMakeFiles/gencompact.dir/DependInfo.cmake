
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/cnf_planner.cc" "src/CMakeFiles/gencompact.dir/baselines/cnf_planner.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/baselines/cnf_planner.cc.o.d"
  "/root/repo/src/baselines/disco_planner.cc" "src/CMakeFiles/gencompact.dir/baselines/disco_planner.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/baselines/disco_planner.cc.o.d"
  "/root/repo/src/baselines/dnf_planner.cc" "src/CMakeFiles/gencompact.dir/baselines/dnf_planner.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/baselines/dnf_planner.cc.o.d"
  "/root/repo/src/baselines/naive_planner.cc" "src/CMakeFiles/gencompact.dir/baselines/naive_planner.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/baselines/naive_planner.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/gencompact.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/gencompact.dir/common/status.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/gencompact.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/common/strings.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/gencompact.dir/common/value.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/common/value.cc.o.d"
  "/root/repo/src/cost/cardinality.cc" "src/CMakeFiles/gencompact.dir/cost/cardinality.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/cost/cardinality.cc.o.d"
  "/root/repo/src/cost/cost_model.cc" "src/CMakeFiles/gencompact.dir/cost/cost_model.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/cost/cost_model.cc.o.d"
  "/root/repo/src/cost/selectivity.cc" "src/CMakeFiles/gencompact.dir/cost/selectivity.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/cost/selectivity.cc.o.d"
  "/root/repo/src/exec/executor.cc" "src/CMakeFiles/gencompact.dir/exec/executor.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/exec/executor.cc.o.d"
  "/root/repo/src/exec/source.cc" "src/CMakeFiles/gencompact.dir/exec/source.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/exec/source.cc.o.d"
  "/root/repo/src/expr/canonical.cc" "src/CMakeFiles/gencompact.dir/expr/canonical.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/expr/canonical.cc.o.d"
  "/root/repo/src/expr/compare_op.cc" "src/CMakeFiles/gencompact.dir/expr/compare_op.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/expr/compare_op.cc.o.d"
  "/root/repo/src/expr/condition.cc" "src/CMakeFiles/gencompact.dir/expr/condition.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/expr/condition.cc.o.d"
  "/root/repo/src/expr/condition_eval.cc" "src/CMakeFiles/gencompact.dir/expr/condition_eval.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/expr/condition_eval.cc.o.d"
  "/root/repo/src/expr/condition_parser.cc" "src/CMakeFiles/gencompact.dir/expr/condition_parser.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/expr/condition_parser.cc.o.d"
  "/root/repo/src/expr/condition_tokens.cc" "src/CMakeFiles/gencompact.dir/expr/condition_tokens.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/expr/condition_tokens.cc.o.d"
  "/root/repo/src/expr/normal_forms.cc" "src/CMakeFiles/gencompact.dir/expr/normal_forms.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/expr/normal_forms.cc.o.d"
  "/root/repo/src/expr/simplify.cc" "src/CMakeFiles/gencompact.dir/expr/simplify.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/expr/simplify.cc.o.d"
  "/root/repo/src/mediator/catalog.cc" "src/CMakeFiles/gencompact.dir/mediator/catalog.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/mediator/catalog.cc.o.d"
  "/root/repo/src/mediator/join.cc" "src/CMakeFiles/gencompact.dir/mediator/join.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/mediator/join.cc.o.d"
  "/root/repo/src/mediator/mediator.cc" "src/CMakeFiles/gencompact.dir/mediator/mediator.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/mediator/mediator.cc.o.d"
  "/root/repo/src/mediator/sql_parser.cc" "src/CMakeFiles/gencompact.dir/mediator/sql_parser.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/mediator/sql_parser.cc.o.d"
  "/root/repo/src/mediator/wrapper.cc" "src/CMakeFiles/gencompact.dir/mediator/wrapper.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/mediator/wrapper.cc.o.d"
  "/root/repo/src/plan/plan.cc" "src/CMakeFiles/gencompact.dir/plan/plan.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/plan/plan.cc.o.d"
  "/root/repo/src/plan/plan_printer.cc" "src/CMakeFiles/gencompact.dir/plan/plan_printer.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/plan/plan_printer.cc.o.d"
  "/root/repo/src/plan/plan_validator.cc" "src/CMakeFiles/gencompact.dir/plan/plan_validator.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/plan/plan_validator.cc.o.d"
  "/root/repo/src/planner/epg.cc" "src/CMakeFiles/gencompact.dir/planner/epg.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/planner/epg.cc.o.d"
  "/root/repo/src/planner/gen_compact.cc" "src/CMakeFiles/gencompact.dir/planner/gen_compact.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/planner/gen_compact.cc.o.d"
  "/root/repo/src/planner/gen_modular.cc" "src/CMakeFiles/gencompact.dir/planner/gen_modular.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/planner/gen_modular.cc.o.d"
  "/root/repo/src/planner/ipg.cc" "src/CMakeFiles/gencompact.dir/planner/ipg.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/planner/ipg.cc.o.d"
  "/root/repo/src/planner/mark.cc" "src/CMakeFiles/gencompact.dir/planner/mark.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/planner/mark.cc.o.d"
  "/root/repo/src/planner/plan_cache.cc" "src/CMakeFiles/gencompact.dir/planner/plan_cache.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/planner/plan_cache.cc.o.d"
  "/root/repo/src/planner/planner.cc" "src/CMakeFiles/gencompact.dir/planner/planner.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/planner/planner.cc.o.d"
  "/root/repo/src/planner/set_cover.cc" "src/CMakeFiles/gencompact.dir/planner/set_cover.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/planner/set_cover.cc.o.d"
  "/root/repo/src/planner/source_handle.cc" "src/CMakeFiles/gencompact.dir/planner/source_handle.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/planner/source_handle.cc.o.d"
  "/root/repo/src/rewrite/rewrite_engine.cc" "src/CMakeFiles/gencompact.dir/rewrite/rewrite_engine.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/rewrite/rewrite_engine.cc.o.d"
  "/root/repo/src/rewrite/rewrite_rules.cc" "src/CMakeFiles/gencompact.dir/rewrite/rewrite_rules.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/rewrite/rewrite_rules.cc.o.d"
  "/root/repo/src/schema/attribute_set.cc" "src/CMakeFiles/gencompact.dir/schema/attribute_set.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/schema/attribute_set.cc.o.d"
  "/root/repo/src/schema/schema.cc" "src/CMakeFiles/gencompact.dir/schema/schema.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/schema/schema.cc.o.d"
  "/root/repo/src/ssdl/capability_builder.cc" "src/CMakeFiles/gencompact.dir/ssdl/capability_builder.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/ssdl/capability_builder.cc.o.d"
  "/root/repo/src/ssdl/check.cc" "src/CMakeFiles/gencompact.dir/ssdl/check.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/ssdl/check.cc.o.d"
  "/root/repo/src/ssdl/closure.cc" "src/CMakeFiles/gencompact.dir/ssdl/closure.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/ssdl/closure.cc.o.d"
  "/root/repo/src/ssdl/description.cc" "src/CMakeFiles/gencompact.dir/ssdl/description.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/ssdl/description.cc.o.d"
  "/root/repo/src/ssdl/description_io.cc" "src/CMakeFiles/gencompact.dir/ssdl/description_io.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/ssdl/description_io.cc.o.d"
  "/root/repo/src/ssdl/earley.cc" "src/CMakeFiles/gencompact.dir/ssdl/earley.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/ssdl/earley.cc.o.d"
  "/root/repo/src/ssdl/grammar.cc" "src/CMakeFiles/gencompact.dir/ssdl/grammar.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/ssdl/grammar.cc.o.d"
  "/root/repo/src/ssdl/ssdl_parser.cc" "src/CMakeFiles/gencompact.dir/ssdl/ssdl_parser.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/ssdl/ssdl_parser.cc.o.d"
  "/root/repo/src/storage/csv.cc" "src/CMakeFiles/gencompact.dir/storage/csv.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/storage/csv.cc.o.d"
  "/root/repo/src/storage/row.cc" "src/CMakeFiles/gencompact.dir/storage/row.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/storage/row.cc.o.d"
  "/root/repo/src/storage/row_set.cc" "src/CMakeFiles/gencompact.dir/storage/row_set.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/storage/row_set.cc.o.d"
  "/root/repo/src/storage/table.cc" "src/CMakeFiles/gencompact.dir/storage/table.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/storage/table.cc.o.d"
  "/root/repo/src/storage/table_stats.cc" "src/CMakeFiles/gencompact.dir/storage/table_stats.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/storage/table_stats.cc.o.d"
  "/root/repo/src/workload/datasets.cc" "src/CMakeFiles/gencompact.dir/workload/datasets.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/workload/datasets.cc.o.d"
  "/root/repo/src/workload/random_capability.cc" "src/CMakeFiles/gencompact.dir/workload/random_capability.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/workload/random_capability.cc.o.d"
  "/root/repo/src/workload/random_condition.cc" "src/CMakeFiles/gencompact.dir/workload/random_condition.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/workload/random_condition.cc.o.d"
  "/root/repo/src/workload/zipf.cc" "src/CMakeFiles/gencompact.dir/workload/zipf.cc.o" "gcc" "src/CMakeFiles/gencompact.dir/workload/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
