# Empty dependencies file for gencompact.
# This may be replaced when dependencies are built.
