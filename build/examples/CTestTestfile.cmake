# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_capability_explorer "/root/repo/build/examples/capability_explorer" "--demo")
set_tests_properties(example_capability_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_federation "/root/repo/build/examples/federation")
set_tests_properties(example_federation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_bookstore "/root/repo/build/examples/bookstore")
set_tests_properties(example_bookstore PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_carshopping "/root/repo/build/examples/carshopping")
set_tests_properties(example_carshopping PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
