# Empty compiler generated dependencies file for carshopping.
# This may be replaced when dependencies are built.
