file(REMOVE_RECURSE
  "CMakeFiles/carshopping.dir/carshopping.cpp.o"
  "CMakeFiles/carshopping.dir/carshopping.cpp.o.d"
  "carshopping"
  "carshopping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carshopping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
