file(REMOVE_RECURSE
  "CMakeFiles/gencompact_shell.dir/gencompact_shell.cpp.o"
  "CMakeFiles/gencompact_shell.dir/gencompact_shell.cpp.o.d"
  "gencompact_shell"
  "gencompact_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gencompact_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
