# Empty compiler generated dependencies file for gencompact_shell.
# This may be replaced when dependencies are built.
