file(REMOVE_RECURSE
  "CMakeFiles/capability_explorer.dir/capability_explorer.cpp.o"
  "CMakeFiles/capability_explorer.dir/capability_explorer.cpp.o.d"
  "capability_explorer"
  "capability_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capability_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
