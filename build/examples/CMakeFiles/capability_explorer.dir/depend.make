# Empty dependencies file for capability_explorer.
# This may be replaced when dependencies are built.
