# Empty dependencies file for gencompact_tests.
# This may be replaced when dependencies are built.
