
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/baselines_test.cc" "tests/CMakeFiles/gencompact_tests.dir/baselines_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/baselines_test.cc.o.d"
  "/root/repo/tests/closure_property_test.cc" "tests/CMakeFiles/gencompact_tests.dir/closure_property_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/closure_property_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/gencompact_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/condition_test.cc" "tests/CMakeFiles/gencompact_tests.dir/condition_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/condition_test.cc.o.d"
  "/root/repo/tests/cost_estimation_test.cc" "tests/CMakeFiles/gencompact_tests.dir/cost_estimation_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/cost_estimation_test.cc.o.d"
  "/root/repo/tests/coverage_test.cc" "tests/CMakeFiles/gencompact_tests.dir/coverage_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/coverage_test.cc.o.d"
  "/root/repo/tests/csv_test.cc" "tests/CMakeFiles/gencompact_tests.dir/csv_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/csv_test.cc.o.d"
  "/root/repo/tests/description_io_test.cc" "tests/CMakeFiles/gencompact_tests.dir/description_io_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/description_io_test.cc.o.d"
  "/root/repo/tests/exec_test.cc" "tests/CMakeFiles/gencompact_tests.dir/exec_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/exec_test.cc.o.d"
  "/root/repo/tests/join_test.cc" "tests/CMakeFiles/gencompact_tests.dir/join_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/join_test.cc.o.d"
  "/root/repo/tests/mediator_test.cc" "tests/CMakeFiles/gencompact_tests.dir/mediator_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/mediator_test.cc.o.d"
  "/root/repo/tests/motivating_test.cc" "tests/CMakeFiles/gencompact_tests.dir/motivating_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/motivating_test.cc.o.d"
  "/root/repo/tests/normal_forms_test.cc" "tests/CMakeFiles/gencompact_tests.dir/normal_forms_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/normal_forms_test.cc.o.d"
  "/root/repo/tests/plan_cache_test.cc" "tests/CMakeFiles/gencompact_tests.dir/plan_cache_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/plan_cache_test.cc.o.d"
  "/root/repo/tests/plan_cost_test.cc" "tests/CMakeFiles/gencompact_tests.dir/plan_cost_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/plan_cost_test.cc.o.d"
  "/root/repo/tests/planner_edge_test.cc" "tests/CMakeFiles/gencompact_tests.dir/planner_edge_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/planner_edge_test.cc.o.d"
  "/root/repo/tests/planner_test.cc" "tests/CMakeFiles/gencompact_tests.dir/planner_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/planner_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/gencompact_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/rewrite_test.cc" "tests/CMakeFiles/gencompact_tests.dir/rewrite_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/rewrite_test.cc.o.d"
  "/root/repo/tests/schema_test.cc" "tests/CMakeFiles/gencompact_tests.dir/schema_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/schema_test.cc.o.d"
  "/root/repo/tests/set_cover_test.cc" "tests/CMakeFiles/gencompact_tests.dir/set_cover_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/set_cover_test.cc.o.d"
  "/root/repo/tests/simplify_test.cc" "tests/CMakeFiles/gencompact_tests.dir/simplify_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/simplify_test.cc.o.d"
  "/root/repo/tests/ssdl_test.cc" "tests/CMakeFiles/gencompact_tests.dir/ssdl_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/ssdl_test.cc.o.d"
  "/root/repo/tests/storage_test.cc" "tests/CMakeFiles/gencompact_tests.dir/storage_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/storage_test.cc.o.d"
  "/root/repo/tests/stress_test.cc" "tests/CMakeFiles/gencompact_tests.dir/stress_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/stress_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/gencompact_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/workload_test.cc.o.d"
  "/root/repo/tests/wrapper_test.cc" "tests/CMakeFiles/gencompact_tests.dir/wrapper_test.cc.o" "gcc" "tests/CMakeFiles/gencompact_tests.dir/wrapper_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gencompact.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
