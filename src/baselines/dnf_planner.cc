#include "baselines/dnf_planner.h"

#include "expr/normal_forms.h"

namespace gencompact {

namespace {

/// Plans one DNF disjunct (an ∧ of atoms or a single atom): ship the
/// longest supportable prefix-by-trailing-drop conjunction, apply the rest
/// at the mediator. Returns nullptr if nothing is shippable.
PlanPtr PlanDisjunct(const ConditionPtr& disjunct, const AttributeSet& attrs,
                     SourceHandle* source) {
  Checker* checker = source->checker();
  const Schema& schema = source->schema();

  std::vector<ConditionPtr> shipped;
  if (disjunct->kind() == ConditionNode::Kind::kAnd) {
    shipped = disjunct->children();
  } else {
    shipped = {disjunct};
  }
  std::vector<ConditionPtr> local;

  while (!shipped.empty()) {
    const ConditionPtr shipped_cond =
        ConditionNode::And(std::vector<ConditionPtr>(shipped));
    AttributeSet needed = attrs;
    bool attrs_ok = true;
    for (const ConditionPtr& atom : local) {
      const Result<AttributeSet> atom_attrs = atom->Attributes(schema);
      if (!atom_attrs.ok()) {
        attrs_ok = false;
        break;
      }
      needed = needed.Union(atom_attrs.value());
    }
    if (attrs_ok && checker->Supports(*shipped_cond, needed)) {
      if (local.empty()) {
        return PlanNode::SourceQuery(shipped_cond, attrs);
      }
      return PlanNode::MediatorSp(
          ConditionNode::And(std::vector<ConditionPtr>(local)), attrs,
          PlanNode::SourceQuery(shipped_cond, needed));
    }
    local.insert(local.begin(), shipped.back());
    shipped.pop_back();
  }
  return nullptr;
}

}  // namespace

Result<PlanPtr> DnfPlanner::Plan(const ConditionPtr& condition,
                                 const AttributeSet& attrs) {
  GC_ASSIGN_OR_RETURN(const ConditionPtr dnf, ToDnf(condition));
  std::vector<ConditionPtr> disjuncts;
  if (dnf->kind() == ConditionNode::Kind::kOr) {
    disjuncts = dnf->children();
  } else {
    disjuncts = {dnf};
  }

  std::vector<PlanPtr> parts;
  parts.reserve(disjuncts.size());
  bool all_ok = true;
  for (const ConditionPtr& disjunct : disjuncts) {
    PlanPtr part = PlanDisjunct(disjunct, attrs, source_);
    if (part == nullptr) {
      all_ok = false;
      break;
    }
    parts.push_back(std::move(part));
  }
  if (all_ok) return PlanNode::UnionOf(std::move(parts));

  // Some disjunct had no shippable part: download the whole source if the
  // description allows it.
  const Result<AttributeSet> cond_attrs =
      condition->Attributes(source_->schema());
  if (cond_attrs.ok()) {
    const AttributeSet needed = attrs.Union(cond_attrs.value());
    const ConditionPtr true_cond = ConditionNode::True();
    if (source_->checker()->Supports(*true_cond, needed)) {
      return PlanNode::MediatorSp(condition, attrs,
                                  PlanNode::SourceQuery(true_cond, needed));
    }
  }
  return Status::NoFeasiblePlan(
      "DNF strategy: a disjunct has no shippable part and the source is not "
      "downloadable");
}

}  // namespace gencompact
