#ifndef GENCOMPACT_BASELINES_DISCO_PLANNER_H_
#define GENCOMPACT_BASELINES_DISCO_PLANNER_H_

#include "planner/strategy.h"

namespace gencompact {

/// DISCO baseline (Section 2): never splits the condition — either the
/// source evaluates the entire condition expression, or the mediator
/// evaluates all of it on a full download. Fails on both motivating
/// examples of Section 1, as the paper observes.
class DiscoPlanner : public PlannerStrategy {
 public:
  explicit DiscoPlanner(SourceHandle* source) : source_(source) {}

  std::string name() const override { return "DISCO"; }

  Result<PlanPtr> Plan(const ConditionPtr& condition,
                       const AttributeSet& attrs) override;

 private:
  SourceHandle* source_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_BASELINES_DISCO_PLANNER_H_
