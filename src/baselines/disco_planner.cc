#include "baselines/disco_planner.h"

namespace gencompact {

Result<PlanPtr> DiscoPlanner::Plan(const ConditionPtr& condition,
                                   const AttributeSet& attrs) {
  Checker* checker = source_->checker();
  if (checker->Supports(*condition, attrs)) {
    return PlanNode::SourceQuery(condition, attrs);
  }
  const Result<AttributeSet> cond_attrs =
      condition->Attributes(source_->schema());
  if (cond_attrs.ok()) {
    const AttributeSet needed = attrs.Union(cond_attrs.value());
    const ConditionPtr true_cond = ConditionNode::True();
    if (checker->Supports(*true_cond, needed)) {
      return PlanNode::MediatorSp(condition, attrs,
                                  PlanNode::SourceQuery(true_cond, needed));
    }
  }
  return Status::NoFeasiblePlan(
      "DISCO strategy: whole condition unsupported and source not "
      "downloadable");
}

}  // namespace gencompact
