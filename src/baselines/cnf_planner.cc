#include "baselines/cnf_planner.h"

#include "expr/normal_forms.h"

namespace gencompact {

Result<PlanPtr> CnfPlanner::Plan(const ConditionPtr& condition,
                                 const AttributeSet& attrs) {
  Checker* checker = source_->checker();
  const Schema& schema = source_->schema();

  GC_ASSIGN_OR_RETURN(const ConditionPtr cnf, ToCnf(condition));
  std::vector<ConditionPtr> clauses;
  if (cnf->kind() == ConditionNode::Kind::kAnd) {
    clauses = cnf->children();
  } else {
    clauses = {cnf};
  }

  // Start from every clause the source can parse at all, then greedily drop
  // trailing clauses until the shipped conjunction is supported and exports
  // the attributes the mediator needs for the rest.
  std::vector<ConditionPtr> shipped;
  std::vector<ConditionPtr> local;
  for (const ConditionPtr& clause : clauses) {
    if (!checker->Check(*clause).empty()) {
      shipped.push_back(clause);
    } else {
      local.push_back(clause);
    }
  }

  while (!shipped.empty()) {
    const ConditionPtr shipped_cond =
        ConditionNode::And(std::vector<ConditionPtr>(shipped));
    AttributeSet needed = attrs;
    bool attrs_ok = true;
    for (const ConditionPtr& clause : local) {
      const Result<AttributeSet> clause_attrs = clause->Attributes(schema);
      if (!clause_attrs.ok()) {
        attrs_ok = false;
        break;
      }
      needed = needed.Union(clause_attrs.value());
    }
    if (attrs_ok && checker->Supports(*shipped_cond, needed)) {
      if (local.empty()) {
        return PlanNode::SourceQuery(shipped_cond, attrs);
      }
      return PlanNode::MediatorSp(
          ConditionNode::And(std::vector<ConditionPtr>(local)), attrs,
          PlanNode::SourceQuery(shipped_cond, needed));
    }
    local.push_back(shipped.back());
    shipped.pop_back();
  }

  // No clause shippable: attempt to download the entire source.
  const Result<AttributeSet> cond_attrs = condition->Attributes(schema);
  if (cond_attrs.ok()) {
    const AttributeSet needed = attrs.Union(cond_attrs.value());
    const ConditionPtr true_cond = ConditionNode::True();
    if (checker->Supports(*true_cond, needed)) {
      return PlanNode::MediatorSp(condition, attrs,
                                  PlanNode::SourceQuery(true_cond, needed));
    }
  }
  return Status::NoFeasiblePlan(
      "CNF strategy: no clause shippable and source not downloadable");
}

}  // namespace gencompact
