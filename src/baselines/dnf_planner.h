#ifndef GENCOMPACT_BASELINES_DNF_PLANNER_H_
#define GENCOMPACT_BASELINES_DNF_PLANNER_H_

#include "planner/strategy.h"

namespace gencompact {

/// DNF baseline (Section 1): the condition is transformed to DNF and one
/// source query is sent per disjunct, unioned by the mediator. Within a
/// disjunct, trailing atoms that prevent supportability are moved to a
/// mediator selection. A disjunct with no shippable part makes the strategy
/// fall back to downloading the whole source (if possible) for the entire
/// query.
class DnfPlanner : public PlannerStrategy {
 public:
  explicit DnfPlanner(SourceHandle* source) : source_(source) {}

  std::string name() const override { return "DNF"; }

  Result<PlanPtr> Plan(const ConditionPtr& condition,
                       const AttributeSet& attrs) override;

 private:
  SourceHandle* source_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_BASELINES_DNF_PLANNER_H_
