#include "baselines/naive_planner.h"

namespace gencompact {

Result<PlanPtr> NaivePlanner::Plan(const ConditionPtr& condition,
                                   const AttributeSet& attrs) {
  (void)source_;
  return PlanNode::SourceQuery(condition, attrs);
}

}  // namespace gencompact
