#ifndef GENCOMPACT_BASELINES_NAIVE_PLANNER_H_
#define GENCOMPACT_BASELINES_NAIVE_PLANNER_H_

#include "planner/strategy.h"

namespace gencompact {

/// Conventional-optimizer baseline (System R / DB2 / NonStop SQL, Section
/// 2): assumes the source has full relational capability and always ships
/// the entire condition. The returned plan may be INFEASIBLE — that is the
/// point: the feasibility experiment (E5) counts how often such plans are
/// rejected by the capability-enforcing source.
class NaivePlanner : public PlannerStrategy {
 public:
  explicit NaivePlanner(SourceHandle* source) : source_(source) {}

  std::string name() const override { return "Naive(full-relational)"; }

  Result<PlanPtr> Plan(const ConditionPtr& condition,
                       const AttributeSet& attrs) override;

 private:
  SourceHandle* source_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_BASELINES_NAIVE_PLANNER_H_
