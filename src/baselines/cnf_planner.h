#ifndef GENCOMPACT_BASELINES_CNF_PLANNER_H_
#define GENCOMPACT_BASELINES_CNF_PLANNER_H_

#include "planner/strategy.h"

namespace gencompact {

/// Garlic-style baseline (Section 2): the condition is transformed to CNF;
/// the conjunction of the clauses the source can evaluate is shipped as one
/// source query and the remaining clauses are applied by the mediator. If no
/// clause can be evaluated at the source, Garlic attempts to download the
/// entire source. The clause-selection is greedy (drop trailing clauses
/// until the shipped conjunction is supported with sufficient exports).
class CnfPlanner : public PlannerStrategy {
 public:
  explicit CnfPlanner(SourceHandle* source) : source_(source) {}

  std::string name() const override { return "CNF(Garlic)"; }

  Result<PlanPtr> Plan(const ConditionPtr& condition,
                       const AttributeSet& attrs) override;

 private:
  SourceHandle* source_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_BASELINES_CNF_PLANNER_H_
