#ifndef GENCOMPACT_COST_CARDINALITY_H_
#define GENCOMPACT_COST_CARDINALITY_H_

#include <algorithm>

#include "cost/selectivity.h"

namespace gencompact {

/// Cardinality estimation for source-query results: estimated row count of
/// σ_cond(R). A thin interface so GenCompact stays cost-model-pluggable
/// (Section 7: "easily adapted to ... cost models different from those
/// presented").
class CardinalityEstimator {
 public:
  virtual ~CardinalityEstimator() = default;

  /// Estimated |σ_cond(R)|.
  virtual double EstimateRows(const ConditionNode& cond) const = 0;

  /// Estimated |π_attrs(σ_cond(R))| under set semantics (source results are
  /// deduplicated). Defaults to the selection estimate; statistics-based
  /// implementations cap it by the product of the projected attributes'
  /// distinct counts.
  virtual double EstimateResultRows(const ConditionNode& cond,
                                    const AttributeSet& attrs) const {
    (void)attrs;
    return EstimateRows(cond);
  }
};

/// Statistics-based estimator over one table's TableStats.
class StatsCardinalityEstimator : public CardinalityEstimator {
 public:
  /// `schema` and `stats` must outlive the estimator.
  StatsCardinalityEstimator(const Schema* schema, const TableStats* stats,
                            SelectivityOptions options = {})
      : schema_(schema), stats_(stats), options_(options) {}

  double EstimateRows(const ConditionNode& cond) const override {
    return static_cast<double>(stats_->num_rows()) *
           EstimateSelectivity(cond, *schema_, *stats_, options_);
  }

  double EstimateResultRows(const ConditionNode& cond,
                            const AttributeSet& attrs) const override {
    const double selected = EstimateRows(cond);
    // Distinct-combination bound: the deduplicated projection cannot exceed
    // the product of the projected attributes' distinct counts — and a
    // condition that pins an attribute (equality conjunct / value list)
    // tightens that attribute's factor further.
    double distinct_bound = 1.0;
    for (int index : attrs.Indices()) {
      if (static_cast<size_t>(index) >= stats_->num_attributes()) continue;
      const uint64_t ndv = stats_->attribute(index).num_distinct;
      double factor = ndv == 0 ? 1.0 : static_cast<double>(ndv);
      const std::optional<double> pinned =
          DistinctBoundFromCondition(cond, index);
      if (pinned.has_value()) factor = std::min(factor, *pinned);
      distinct_bound *= factor;
      if (distinct_bound > selected) return selected;  // no tighter
    }
    return std::min(selected, distinct_bound);
  }

  /// Upper bound on the number of distinct values attribute `index` can
  /// take among rows satisfying `cond`: 1 under an equality conjunct, k
  /// under a k-way value list, nullopt when unconstrained. Exposed for
  /// tests.
  std::optional<double> DistinctBoundFromCondition(const ConditionNode& cond,
                                                   int index) const {
    switch (cond.kind()) {
      case ConditionNode::Kind::kTrue:
        return std::nullopt;
      case ConditionNode::Kind::kAtom: {
        if (cond.atom().op != CompareOp::kEq) return std::nullopt;
        const std::optional<int> attr = schema_->IndexOf(cond.atom().attribute);
        if (!attr.has_value() || *attr != index) return std::nullopt;
        return 1.0;
      }
      case ConditionNode::Kind::kAnd: {
        // Any conjunct's bound applies; take the tightest.
        std::optional<double> best;
        for (const ConditionPtr& child : cond.children()) {
          const std::optional<double> bound =
              DistinctBoundFromCondition(*child, index);
          if (bound.has_value() && (!best.has_value() || *bound < *best)) {
            best = bound;
          }
        }
        return best;
      }
      case ConditionNode::Kind::kOr: {
        // Bounded only if every disjunct bounds the attribute; sum.
        double total = 0;
        for (const ConditionPtr& child : cond.children()) {
          const std::optional<double> bound =
              DistinctBoundFromCondition(*child, index);
          if (!bound.has_value()) return std::nullopt;
          total += *bound;
        }
        return total;
      }
    }
    return std::nullopt;
  }

 private:
  const Schema* schema_;
  const TableStats* stats_;
  SelectivityOptions options_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_COST_CARDINALITY_H_
