#ifndef GENCOMPACT_COST_SELECTIVITY_H_
#define GENCOMPACT_COST_SELECTIVITY_H_

#include "expr/condition.h"
#include "schema/schema.h"
#include "storage/table_stats.h"

namespace gencompact {

/// Tunable default selectivities for predicates the statistics cannot
/// estimate precisely.
struct SelectivityOptions {
  double default_equality = 0.1;     ///< eq with no ndv information
  double default_inequality = 1.0 / 3.0;  ///< range op without numeric range
  double contains = 0.05;
  double starts_with = 0.02;
};

/// Estimates the fraction of rows satisfying `cond`, using per-attribute
/// statistics under the usual independence assumptions: ∧ multiplies child
/// selectivities; ∨ combines by inclusion–exclusion (1 - Π(1 - s_i)).
/// Equality uses exact common-value counts when tracked, else 1/ndv; ranges
/// use the equi-depth histogram when present, else uniform interpolation
/// over [min, max]. Unknown attributes contribute the default selectivity.
double EstimateSelectivity(const ConditionNode& cond, const Schema& schema,
                           const TableStats& stats,
                           const SelectivityOptions& options = {});

}  // namespace gencompact

#endif  // GENCOMPACT_COST_SELECTIVITY_H_
