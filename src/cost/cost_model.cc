#include "cost/cost_model.h"

#include <algorithm>

namespace gencompact {

namespace {

/// Rough output-row estimate per plan node, used only by the mediator-cost
/// extension term (k3). With the paper's model (k3 = 0) it never runs.
double EstimateOutputRows(const PlanNode& plan, const CostModel& model) {
  switch (plan.kind()) {
    case PlanNode::Kind::kSourceQuery:
      return model.EstimateResultRows(*plan.condition(), plan.attrs());
    case PlanNode::Kind::kMediatorSp: {
      const double child = EstimateOutputRows(*plan.children().front(), model);
      return std::min(child, model.EstimateRows(*plan.condition()));
    }
    case PlanNode::Kind::kUnion: {
      double total = 0;
      for (const PlanPtr& child : plan.children()) {
        total += EstimateOutputRows(*child, model);
      }
      return total;
    }
    case PlanNode::Kind::kIntersect: {
      double best = -1;
      for (const PlanPtr& child : plan.children()) {
        const double rows = EstimateOutputRows(*child, model);
        best = best < 0 ? rows : std::min(best, rows);
      }
      return best < 0 ? 0 : best;
    }
    case PlanNode::Kind::kChoice: {
      // Rows of the cheapest child (the one the cost module will pick).
      double best_cost = -1;
      double best_rows = 0;
      for (const PlanPtr& child : plan.children()) {
        const double cost = model.PlanCost(*child);
        if (best_cost < 0 || cost < best_cost) {
          best_cost = cost;
          best_rows = EstimateOutputRows(*child, model);
        }
      }
      return best_rows;
    }
  }
  return 0;
}

}  // namespace

double CostModel::PlanCost(const PlanNode& plan) const {
  switch (plan.kind()) {
    case PlanNode::Kind::kSourceQuery:
      return SourceQueryCost(*plan.condition(), plan.attrs());
    case PlanNode::Kind::kMediatorSp: {
      double cost = PlanCost(*plan.children().front());
      if (mediator_k3_ > 0) {
        cost += mediator_k3_ *
                EstimateOutputRows(*plan.children().front(), *this);
      }
      return cost;
    }
    case PlanNode::Kind::kUnion:
    case PlanNode::Kind::kIntersect: {
      double cost = 0;
      for (const PlanPtr& child : plan.children()) {
        cost += PlanCost(*child);
        if (mediator_k3_ > 0) {
          cost += mediator_k3_ * EstimateOutputRows(*child, *this);
        }
      }
      return cost;
    }
    case PlanNode::Kind::kChoice: {
      double best = -1;
      for (const PlanPtr& child : plan.children()) {
        const double cost = PlanCost(*child);
        if (best < 0 || cost < best) best = cost;
      }
      return best < 0 ? 0 : best;
    }
  }
  return 0;
}

PlanPtr CostModel::ResolveChoices(const PlanPtr& plan) const {
  switch (plan->kind()) {
    case PlanNode::Kind::kSourceQuery:
      return plan;
    case PlanNode::Kind::kMediatorSp: {
      PlanPtr child = ResolveChoices(plan->children().front());
      if (child == plan->children().front()) return plan;
      return PlanNode::MediatorSp(plan->condition(), plan->attrs(),
                                  std::move(child));
    }
    case PlanNode::Kind::kUnion:
    case PlanNode::Kind::kIntersect: {
      std::vector<PlanPtr> children;
      children.reserve(plan->children().size());
      bool changed = false;
      for (const PlanPtr& child : plan->children()) {
        PlanPtr resolved = ResolveChoices(child);
        changed = changed || resolved != child;
        children.push_back(std::move(resolved));
      }
      if (!changed) return plan;
      return plan->kind() == PlanNode::Kind::kUnion
                 ? PlanNode::UnionOf(std::move(children))
                 : PlanNode::IntersectOf(std::move(children));
    }
    case PlanNode::Kind::kChoice: {
      const PlanPtr* best = nullptr;
      double best_cost = -1;
      for (const PlanPtr& child : plan->children()) {
        const double cost = PlanCost(*child);
        if (best == nullptr || cost < best_cost) {
          best = &child;
          best_cost = cost;
        }
      }
      return ResolveChoices(*best);
    }
  }
  return plan;
}

PlanPtr CostModel::ResolveChoicesRandom(const PlanPtr& plan, Rng* rng) const {
  switch (plan->kind()) {
    case PlanNode::Kind::kSourceQuery:
      return plan;
    case PlanNode::Kind::kMediatorSp: {
      PlanPtr child = ResolveChoicesRandom(plan->children().front(), rng);
      if (child == plan->children().front()) return plan;
      return PlanNode::MediatorSp(plan->condition(), plan->attrs(),
                                  std::move(child));
    }
    case PlanNode::Kind::kUnion:
    case PlanNode::Kind::kIntersect: {
      std::vector<PlanPtr> children;
      children.reserve(plan->children().size());
      bool changed = false;
      for (const PlanPtr& child : plan->children()) {
        PlanPtr resolved = ResolveChoicesRandom(child, rng);
        changed = changed || resolved != child;
        children.push_back(std::move(resolved));
      }
      if (!changed) return plan;
      return plan->kind() == PlanNode::Kind::kUnion
                 ? PlanNode::UnionOf(std::move(children))
                 : PlanNode::IntersectOf(std::move(children));
    }
    case PlanNode::Kind::kChoice: {
      const size_t pick = rng->NextIndex(plan->children().size());
      return ResolveChoicesRandom(plan->children()[pick], rng);
    }
  }
  return plan;
}

PlanPtr CostModel::ResolveChoicesAvoiding(const PlanPtr& plan,
                                          const SubQueryAvoidSet& avoid) const {
  switch (plan->kind()) {
    case PlanNode::Kind::kSourceQuery:
      if (avoid.count(SubQueryKey(*plan->condition(), plan->attrs())) > 0) {
        return nullptr;
      }
      return plan;
    case PlanNode::Kind::kMediatorSp: {
      PlanPtr child = ResolveChoicesAvoiding(plan->children().front(), avoid);
      if (child == nullptr) return nullptr;
      if (child == plan->children().front()) return plan;
      return PlanNode::MediatorSp(plan->condition(), plan->attrs(),
                                  std::move(child));
    }
    case PlanNode::Kind::kUnion:
    case PlanNode::Kind::kIntersect: {
      // Every child is required: one unavoidable child sinks this subtree
      // (the Choice above it may still have other alternatives).
      std::vector<PlanPtr> children;
      children.reserve(plan->children().size());
      bool changed = false;
      for (const PlanPtr& child : plan->children()) {
        PlanPtr resolved = ResolveChoicesAvoiding(child, avoid);
        if (resolved == nullptr) return nullptr;
        changed = changed || resolved != child;
        children.push_back(std::move(resolved));
      }
      if (!changed) return plan;
      return plan->kind() == PlanNode::Kind::kUnion
                 ? PlanNode::UnionOf(std::move(children))
                 : PlanNode::IntersectOf(std::move(children));
    }
    case PlanNode::Kind::kChoice: {
      // Cheapest resolvable alternative; resolved subtrees are Choice-free,
      // so PlanCost is exact on them.
      PlanPtr best;
      double best_cost = -1;
      for (const PlanPtr& child : plan->children()) {
        PlanPtr resolved = ResolveChoicesAvoiding(child, avoid);
        if (resolved == nullptr) continue;
        const double cost = PlanCost(*resolved);
        if (best == nullptr || cost < best_cost) {
          best = std::move(resolved);
          best_cost = cost;
        }
      }
      return best;  // nullptr when every alternative touches the avoid-set
    }
  }
  return plan;
}

}  // namespace gencompact
