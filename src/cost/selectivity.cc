#include "cost/selectivity.h"

#include <algorithm>

namespace gencompact {

namespace {

double Clamp01(double x) { return std::min(1.0, std::max(0.0, x)); }

// Fraction of values <= bound, from the equi-depth histogram or uniform
// interpolation.
double FractionBelow(const AttributeStats& stats, double bound,
                     bool inclusive) {
  if (!stats.has_range || stats.num_non_null == 0) return 1.0 / 3.0;
  if (bound < stats.min_value) return 0.0;
  if (bound > stats.max_value || (inclusive && bound == stats.max_value)) {
    return 1.0;
  }
  if (!stats.histogram_bounds.empty()) {
    const size_t buckets = stats.histogram_bounds.size();
    double prev = stats.min_value;
    for (size_t i = 0; i < buckets; ++i) {
      const double upper = stats.histogram_bounds[i];
      if (bound <= upper) {
        const double within =
            upper > prev ? (bound - prev) / (upper - prev) : 1.0;
        return (static_cast<double>(i) + Clamp01(within)) /
               static_cast<double>(buckets);
      }
      prev = upper;
    }
    return 1.0;
  }
  if (stats.max_value == stats.min_value) return 1.0;
  return (bound - stats.min_value) / (stats.max_value - stats.min_value);
}

double AtomSelectivity(const AtomicCondition& atom, const Schema& schema,
                       const TableStats& stats,
                       const SelectivityOptions& options) {
  const std::optional<int> index = schema.IndexOf(atom.attribute);
  if (!index.has_value() ||
      static_cast<size_t>(*index) >= stats.num_attributes()) {
    return options.default_equality;
  }
  const AttributeStats& as = stats.attribute(*index);
  const double rows = static_cast<double>(stats.num_rows());
  switch (atom.op) {
    case CompareOp::kEq: {
      if (rows == 0) return 0.0;
      const std::optional<uint64_t> exact =
          stats.CommonValueCount(*index, atom.constant);
      if (exact.has_value()) return Clamp01(static_cast<double>(*exact) / rows);
      // When the tracked common values cover every distinct value, a miss
      // proves the constant does not occur at all.
      if (as.common_values.size() == as.num_distinct) return 0.0;
      if (as.num_distinct > 0) {
        return Clamp01(1.0 / static_cast<double>(as.num_distinct));
      }
      return options.default_equality;
    }
    case CompareOp::kNe:
      return Clamp01(1.0 - AtomSelectivity({atom.attribute, CompareOp::kEq,
                                            atom.constant},
                                           schema, stats, options));
    case CompareOp::kLt:
    case CompareOp::kLe: {
      if (!atom.constant.is_numeric()) return options.default_inequality;
      return Clamp01(FractionBelow(as, atom.constant.AsDouble(),
                                   atom.op == CompareOp::kLe));
    }
    case CompareOp::kGt:
    case CompareOp::kGe: {
      if (!atom.constant.is_numeric()) return options.default_inequality;
      return Clamp01(1.0 - FractionBelow(as, atom.constant.AsDouble(),
                                         atom.op == CompareOp::kGt));
    }
    case CompareOp::kContains:
    case CompareOp::kStartsWith: {
      // Estimate from the value sample when available; fall back to the
      // configured default.
      if (!as.sample_values.empty()) {
        size_t matches = 0;
        for (const Value& v : as.sample_values) {
          if (EvalCompare(atom.op, v, atom.constant)) ++matches;
        }
        // Laplace-smoothed so rare predicates keep a nonzero estimate.
        return Clamp01((static_cast<double>(matches) + 0.5) /
                       (static_cast<double>(as.sample_values.size()) + 1.0));
      }
      return atom.op == CompareOp::kContains ? options.contains
                                             : options.starts_with;
    }
  }
  return options.default_equality;
}

}  // namespace

double EstimateSelectivity(const ConditionNode& cond, const Schema& schema,
                           const TableStats& stats,
                           const SelectivityOptions& options) {
  switch (cond.kind()) {
    case ConditionNode::Kind::kTrue:
      return 1.0;
    case ConditionNode::Kind::kAtom:
      return AtomSelectivity(cond.atom(), schema, stats, options);
    case ConditionNode::Kind::kAnd: {
      double s = 1.0;
      for (const ConditionPtr& child : cond.children()) {
        s *= EstimateSelectivity(*child, schema, stats, options);
      }
      return Clamp01(s);
    }
    case ConditionNode::Kind::kOr: {
      double not_any = 1.0;
      for (const ConditionPtr& child : cond.children()) {
        not_any *= 1.0 - EstimateSelectivity(*child, schema, stats, options);
      }
      return Clamp01(1.0 - not_any);
    }
  }
  return 1.0;
}

}  // namespace gencompact
