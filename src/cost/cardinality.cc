#include "cost/cardinality.h"

namespace gencompact {

// CardinalityEstimator is header-only today; this TU anchors the vtable.

}  // namespace gencompact
