#ifndef GENCOMPACT_COST_COST_MODEL_H_
#define GENCOMPACT_COST_COST_MODEL_H_

#include "cost/cardinality.h"
#include "plan/plan.h"
#include "plan/sub_query_key.h"

namespace gencompact {

/// The paper's cost model (Section 6.2, Equation 1):
///
///   cost(plan) = Σ over source queries sq of  k1 + k2·|result(sq)|
///
/// k1 and k2 are per-source constants (communication setup plus per-row
/// transfer/processing). An optional extension term `mediator_k3` charges
/// mediator postprocessing per input row (0 by default — exactly the paper's
/// model; non-zero values are used by the ablation benchmark).
class CostModel {
 public:
  /// `estimator` must outlive the model.
  CostModel(double k1, double k2, const CardinalityEstimator* estimator,
            double mediator_k3 = 0.0)
      : k1_(k1), k2_(k2), mediator_k3_(mediator_k3), estimator_(estimator) {}

  double k1() const { return k1_; }
  double k2() const { return k2_; }

  /// Estimated result rows of SP(cond, ·, R) before projection.
  double EstimateRows(const ConditionNode& cond) const {
    return estimator_->EstimateRows(cond);
  }

  /// Estimated result rows of SP(cond, attrs, R) — deduplicated projection.
  double EstimateResultRows(const ConditionNode& cond,
                            const AttributeSet& attrs) const {
    return estimator_->EstimateResultRows(cond, attrs);
  }

  /// Cost of one source query: k1 + k2·estimated result rows.
  double SourceQueryCost(const ConditionNode& cond,
                         const AttributeSet& attrs) const {
    return k1_ + k2_ * EstimateResultRows(cond, attrs);
  }

  /// Cost of a plan. Choice nodes cost the minimum over their children
  /// (the cost module "resolves" the Choice operator, Section 5.3).
  double PlanCost(const PlanNode& plan) const;

  /// Replaces every Choice node by its cheapest child, returning a resolved
  /// (directly executable) plan.
  PlanPtr ResolveChoices(const PlanPtr& plan) const;

  /// Like ResolveChoices, but refuses every alternative that contains a
  /// sub-query in `avoid`: each Choice picks its cheapest child that can be
  /// resolved without touching the avoid-set. Returns nullptr when no such
  /// resolution exists — the plan space cannot route around the avoided
  /// sub-queries. This is the fault-tolerant re-planning primitive: the
  /// Choice plan space (EPG, Section 5.3) already enumerates the
  /// alternatives; avoiding a failed SP(C, A, R) is a constrained pick.
  PlanPtr ResolveChoicesAvoiding(const PlanPtr& plan,
                                 const SubQueryAvoidSet& avoid) const;

 private:
  double k1_;
  double k2_;
  double mediator_k3_;
  const CardinalityEstimator* estimator_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_COST_COST_MODEL_H_
