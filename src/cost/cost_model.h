#ifndef GENCOMPACT_COST_COST_MODEL_H_
#define GENCOMPACT_COST_COST_MODEL_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>

#include "common/rng.h"
#include "cost/cardinality.h"
#include "plan/plan.h"
#include "plan/sub_query_key.h"
#include "ssdl/description.h"

namespace gencompact {

/// Health-derived cost penalty of one source: a multiplier ≥ 1 applied to
/// k1 (the per-query setup cost) so Choice resolution steers toward healthy
/// sources *before* they fail (re-planning stays as the backstop). Owned by
/// the catalog entry next to the breaker and latency digest it is derived
/// from; refreshed by the mediator before planning, read lock-free on the
/// planning hot path. At the default multiplier of 1 the model is exactly
/// Equation 1.
class HealthPenalty {
 public:
  double multiplier() const {
    return multiplier_.load(std::memory_order_relaxed);
  }
  void set_multiplier(double m) {
    multiplier_.store(m, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> multiplier_{1.0};
};

/// How a source's breaker state and latency digest translate into its
/// HealthPenalty multiplier (see Mediator::Options::breaker_aware_costs).
struct CostPenaltyOptions {
  /// k1 multiplier while the breaker is open (calls are being rejected).
  double open_multiplier = 8.0;
  /// k1 multiplier while half-open (probing; capacity is one probe streak).
  double half_open_multiplier = 3.0;
  /// k1 multiplier when the digest's p99 exceeds `slow_latency_threshold`
  /// (compounds with the breaker multipliers). 1 disables the latency term.
  double slow_multiplier = 1.0;
  std::chrono::microseconds slow_latency_threshold{0};
  /// Digest observations required before the latency term is trusted.
  uint64_t min_latency_samples = 32;
};

/// The paper's cost model (Section 6.2, Equation 1):
///
///   cost(plan) = Σ over source queries sq of  k1 + k2·|result(sq)|
///
/// k1 and k2 are per-source constants (communication setup plus per-row
/// transfer/processing). An optional extension term `mediator_k3` charges
/// mediator postprocessing per input row (0 by default — exactly the paper's
/// model; non-zero values are used by the ablation benchmark).
class CostModel {
 public:
  /// `estimator` must outlive the model.
  CostModel(double k1, double k2, const CardinalityEstimator* estimator,
            double mediator_k3 = 0.0)
      : k1_(k1), k2_(k2), mediator_k3_(mediator_k3), estimator_(estimator) {}

  double k1() const { return k1_; }
  double k2() const { return k2_; }

  /// Attaches the source's health penalty; null (the default) keeps the
  /// model exactly Equation 1. The penalty object must outlive the model
  /// (both live on the catalog entry).
  void set_health_penalty(const HealthPenalty* penalty) {
    health_penalty_ = penalty;
  }
  const HealthPenalty* health_penalty() const { return health_penalty_; }

  /// k1 with the current health penalty applied — what planning pays per
  /// source query while the source is degraded.
  double effective_k1() const {
    return health_penalty_ != nullptr ? k1_ * health_penalty_->multiplier()
                                      : k1_;
  }

  /// Estimated result rows of SP(cond, ·, R) before projection.
  double EstimateRows(const ConditionNode& cond) const {
    return estimator_->EstimateRows(cond);
  }

  /// Estimated result rows of SP(cond, attrs, R) — deduplicated projection.
  double EstimateResultRows(const ConditionNode& cond,
                            const AttributeSet& attrs) const {
    return estimator_->EstimateResultRows(cond, attrs);
  }

  /// The source's result bound, copied from its description at registration.
  /// Default-constructed (bound 0 = unbounded) keeps the model exactly
  /// Equation 1.
  void set_result_bound(const ResultBound& bound) { result_bound_ = bound; }
  const ResultBound& result_bound() const { return result_bound_; }

  /// k1 multiplier charged to a non-paging bounded source query whose
  /// estimate exceeds the bound — the truncation-risk analogue of the
  /// breaker's open_multiplier: Choice resolution steers toward
  /// alternatives that can answer exactly before the truncation happens.
  void set_truncation_risk_multiplier(double m) {
    truncation_risk_multiplier_ = m;
  }
  double truncation_risk_multiplier() const {
    return truncation_risk_multiplier_;
  }

  /// Cost of one source query: k1 + k2·estimated result rows (with k1
  /// inflated by the health penalty when one is attached and active).
  ///
  /// Against a result-bounded interface the k1 term changes shape once the
  /// estimate exceeds the bound (a fitting query is one plain call — exactly
  /// Equation 1, whatever the source declares):
  ///  - paging source: one k1 per page the loop will drive —
  ///    k1·ceil(est / page_size) — because each page is a full round trip;
  ///  - non-paging source: the whole query cost is inflated by the
  ///    truncation-risk multiplier, so a plan that would come back provably
  ///    partial loses ties against an unbounded (or refinable) alternative.
  /// With no bound declared this is exactly Equation 1.
  double SourceQueryCost(const ConditionNode& cond,
                         const AttributeSet& attrs) const {
    const double est = EstimateResultRows(cond, attrs);
    if (!result_bound_.bounded() ||
        est <= static_cast<double>(result_bound_.result_bound)) {
      return effective_k1() + k2_ * est;
    }
    if (result_bound_.supports_paging) {
      const double page =
          static_cast<double>(result_bound_.EffectivePageSize());
      double pages = std::ceil(std::max(est, 1.0) / page);
      if (result_bound_.max_accesses > 0) {
        pages = std::min(pages,
                         static_cast<double>(result_bound_.max_accesses));
      }
      return effective_k1() * pages + k2_ * est;
    }
    return (effective_k1() + k2_ * est) * truncation_risk_multiplier_;
  }

  /// Cost of a plan. Choice nodes cost the minimum over their children
  /// (the cost module "resolves" the Choice operator, Section 5.3).
  double PlanCost(const PlanNode& plan) const;

  /// Replaces every Choice node by its cheapest child, returning a resolved
  /// (directly executable) plan.
  PlanPtr ResolveChoices(const PlanPtr& plan) const;

  /// Like ResolveChoices, but refuses every alternative that contains a
  /// sub-query in `avoid`: each Choice picks its cheapest child that can be
  /// resolved without touching the avoid-set. Returns nullptr when no such
  /// resolution exists — the plan space cannot route around the avoided
  /// sub-queries. This is the fault-tolerant re-planning primitive: the
  /// Choice plan space (EPG, Section 5.3) already enumerates the
  /// alternatives; avoiding a failed SP(C, A, R) is a constrained pick.
  PlanPtr ResolveChoicesAvoiding(const PlanPtr& plan,
                                 const SubQueryAvoidSet& avoid) const;

  /// Replaces every Choice node by a *uniformly random* feasible child —
  /// the differential harness's probe into the Choice plan space: any
  /// random resolution must produce the same answer rows as the optimal
  /// one. Preserves node sharing like ResolveChoices.
  PlanPtr ResolveChoicesRandom(const PlanPtr& plan, Rng* rng) const;

 private:
  double k1_;
  double k2_;
  double mediator_k3_;
  const CardinalityEstimator* estimator_;
  const HealthPenalty* health_penalty_ = nullptr;
  ResultBound result_bound_;  // bound 0 = unbounded (exactly Equation 1)
  double truncation_risk_multiplier_ = 8.0;
};

}  // namespace gencompact

#endif  // GENCOMPACT_COST_COST_MODEL_H_
