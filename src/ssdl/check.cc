#include "ssdl/check.h"

#include "expr/condition_tokens.h"

namespace gencompact {

namespace {

/// Keeps only the maximal sets under inclusion, deduplicated.
std::vector<AttributeSet> MaximalSets(std::vector<AttributeSet> sets) {
  std::vector<AttributeSet> out;
  for (const AttributeSet& candidate : sets) {
    bool dominated = false;
    for (const AttributeSet& other : sets) {
      if (other != candidate && candidate.IsSubsetOf(other)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    bool duplicate = false;
    for (const AttributeSet& kept : out) {
      if (kept == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(candidate);
  }
  return out;
}

}  // namespace

const std::vector<AttributeSet>& Checker::Check(const ConditionNode& cond) {
  num_checks_.fetch_add(1, std::memory_order_relaxed);
  const ConditionId key = cond.id();
  {
    std::shared_lock<std::shared_mutex> read_lock(cache_mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      num_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // Miss: tokenize outside any lock, then serialize the stateful Earley
  // recognizer. Double-check under the Earley lock so a concurrent miss on
  // the same id parses once.
  const std::vector<CondToken> tokens = TokenizeCondition(cond);
  std::lock_guard<std::mutex> earley_lock(earley_mu_);
  {
    std::shared_lock<std::shared_mutex> read_lock(cache_mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      num_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  const std::vector<int> deriving =
      recognizer_.DerivingNonterminals(description_->start_symbol(), tokens);
  total_earley_items_.fetch_add(recognizer_.last_item_count(),
                                std::memory_order_relaxed);
  std::vector<AttributeSet> exports;
  for (int id : deriving) {
    for (const auto& [nt, attrs] : description_->condition_nonterminals()) {
      if (nt == id) {
        exports.push_back(attrs);
        break;
      }
    }
  }
  std::lock_guard<std::shared_mutex> write_lock(cache_mu_);
  // unordered_map is node-based: concurrently-read mapped values stay put
  // across this insert, and entries are never erased.
  return cache_.emplace(key, MaximalSets(std::move(exports))).first->second;
}

const std::vector<AttributeSet>& Checker::CheckTrue() {
  // Function-local static reference (never destroyed) per the style guide's
  // static-storage-duration rules.
  static const ConditionPtr& kTrue = *new ConditionPtr(ConditionNode::True());
  return Check(*kTrue);
}

bool Checker::Supports(const ConditionNode& cond, const AttributeSet& attrs) {
  for (const AttributeSet& exported : Check(cond)) {
    if (attrs.IsSubsetOf(exported)) return true;
  }
  return false;
}

}  // namespace gencompact
