#include "ssdl/check.h"

namespace gencompact {

namespace {

/// Keeps only the maximal sets under inclusion, deduplicated.
std::vector<AttributeSet> MaximalSets(std::vector<AttributeSet> sets) {
  std::vector<AttributeSet> out;
  for (const AttributeSet& candidate : sets) {
    bool dominated = false;
    for (const AttributeSet& other : sets) {
      if (other != candidate && candidate.IsSubsetOf(other)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    bool duplicate = false;
    for (const AttributeSet& kept : out) {
      if (kept == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(candidate);
  }
  return out;
}

}  // namespace

const std::vector<AttributeSet>& Checker::CheckTokens(
    const std::string& key, const std::vector<CondToken>& tokens) {
  ++num_checks_;
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++num_cache_hits_;
    return it->second;
  }
  const std::vector<int> deriving =
      recognizer_.DerivingNonterminals(description_->start_symbol(), tokens);
  total_earley_items_ += recognizer_.last_item_count();
  std::vector<AttributeSet> exports;
  for (int id : deriving) {
    for (const auto& [nt, attrs] : description_->condition_nonterminals()) {
      if (nt == id) {
        exports.push_back(attrs);
        break;
      }
    }
  }
  return cache_.emplace(key, MaximalSets(std::move(exports))).first->second;
}

const std::vector<AttributeSet>& Checker::Check(const ConditionNode& cond) {
  return CheckTokens(cond.StructuralKey(), TokenizeCondition(cond));
}

const std::vector<AttributeSet>& Checker::CheckTrue() {
  // Function-local static reference (never destroyed) per the style guide's
  // static-storage-duration rules.
  static const ConditionPtr& kTrue = *new ConditionPtr(ConditionNode::True());
  return Check(*kTrue);
}

bool Checker::Supports(const ConditionNode& cond, const AttributeSet& attrs) {
  for (const AttributeSet& exported : Check(cond)) {
    if (attrs.IsSubsetOf(exported)) return true;
  }
  return false;
}

}  // namespace gencompact
