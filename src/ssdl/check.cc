#include "ssdl/check.h"

#include <algorithm>

#include "expr/condition_tokens.h"

namespace gencompact {

namespace {

/// Keeps only the maximal sets under inclusion, deduplicated.
std::vector<AttributeSet> MaximalSets(std::vector<AttributeSet> sets) {
  std::vector<AttributeSet> out;
  for (const AttributeSet& candidate : sets) {
    bool dominated = false;
    for (const AttributeSet& other : sets) {
      if (other != candidate && candidate.IsSubsetOf(other)) {
        dominated = true;
        break;
      }
    }
    if (dominated) continue;
    bool duplicate = false;
    for (const AttributeSet& kept : out) {
      if (kept == candidate) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) out.push_back(candidate);
  }
  return out;
}

/// Order-insensitive family equality — the verify-on-hit comparator. The
/// Earley walk is deterministic, but a memoized family may have been
/// produced by an older (equivalent) run, so compare as sets.
bool SameFamily(std::vector<AttributeSet> a, std::vector<AttributeSet> b) {
  if (a.size() != b.size()) return false;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b;
}

}  // namespace

std::vector<AttributeSet> Checker::ComputeFamilyLocked(
    const std::vector<CondToken>& tokens) {
  const std::vector<int> deriving =
      recognizer_.DerivingNonterminals(description_->start_symbol(), tokens);
  total_earley_items_.fetch_add(recognizer_.last_item_count(),
                                std::memory_order_relaxed);
  std::vector<AttributeSet> exports;
  for (int id : deriving) {
    for (const auto& [nt, attrs] : description_->condition_nonterminals()) {
      if (nt == id) {
        exports.push_back(attrs);
        break;
      }
    }
  }
  return MaximalSets(std::move(exports));
}

std::vector<AttributeSet> Checker::ComputeFamily(const ConditionNode& cond) {
  const std::vector<CondToken> tokens = TokenizeCondition(cond);
  const std::lock_guard<std::mutex> earley_lock(earley_mu_);
  return ComputeFamilyLocked(tokens);
}

const std::vector<AttributeSet>& Checker::Check(const ConditionNode& cond) {
  num_checks_.fetch_add(1, std::memory_order_relaxed);
  const ConditionId key = cond.id();
  {
    std::shared_lock<std::shared_mutex> read_lock(cache_mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      num_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  // L1 miss: try the shared cross-query memo by structural fingerprint
  // before paying for an Earley run. A sampled fraction of hits is
  // re-verified against a fresh run — a mismatch means a fingerprint
  // collision or a stale entry, which is counted and repaired rather than
  // trusted.
  if (shared_memo_ != nullptr && shared_memo_->enabled()) {
    const CheckMemoKey l2_key{cond.fingerprint(), source_id_, epoch_};
    if (std::optional<std::vector<AttributeSet>> hit =
            shared_memo_->Lookup(l2_key)) {
      num_shared_hits_.fetch_add(1, std::memory_order_relaxed);
      std::vector<AttributeSet> family = std::move(*hit);
      if (shared_memo_->SampleVerifyHit()) {
        std::vector<AttributeSet> fresh = ComputeFamily(cond);
        const bool matched = SameFamily(fresh, family);
        shared_memo_->RecordVerifyOutcome(matched);
        if (!matched) {
          family = std::move(fresh);
          shared_memo_->Insert(l2_key, family);
        }
      }
      const std::lock_guard<std::shared_mutex> write_lock(cache_mu_);
      // emplace is a no-op if a racing thread installed the id first; both
      // computed the same family, so either mapped value serves.
      return cache_.emplace(key, std::move(family)).first->second;
    }
  }
  // Full miss: tokenize outside any lock, then serialize the stateful
  // Earley recognizer. Double-check under the Earley lock so a concurrent
  // miss on the same id parses once.
  const std::vector<CondToken> tokens = TokenizeCondition(cond);
  const std::lock_guard<std::mutex> earley_lock(earley_mu_);
  {
    std::shared_lock<std::shared_mutex> read_lock(cache_mu_);
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
      num_cache_hits_.fetch_add(1, std::memory_order_relaxed);
      return it->second;
    }
  }
  std::vector<AttributeSet> family = ComputeFamilyLocked(tokens);
  if (shared_memo_ != nullptr && shared_memo_->enabled()) {
    shared_memo_->Insert({cond.fingerprint(), source_id_, epoch_}, family);
  }
  const std::lock_guard<std::shared_mutex> write_lock(cache_mu_);
  // unordered_map is node-based: concurrently-read mapped values stay put
  // across this insert, and entries are never erased.
  return cache_.emplace(key, std::move(family)).first->second;
}

const std::vector<AttributeSet>& Checker::CheckTrue() {
  // Function-local static reference (never destroyed) per the style guide's
  // static-storage-duration rules.
  static const ConditionPtr& kTrue = *new ConditionPtr(ConditionNode::True());
  return Check(*kTrue);
}

bool Checker::Supports(const ConditionNode& cond, const AttributeSet& attrs) {
  for (const AttributeSet& exported : Check(cond)) {
    if (attrs.IsSubsetOf(exported)) return true;
  }
  return false;
}

}  // namespace gencompact
