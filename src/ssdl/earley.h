#ifndef GENCOMPACT_SSDL_EARLEY_H_
#define GENCOMPACT_SSDL_EARLEY_H_

#include <vector>

#include "ssdl/grammar.h"

namespace gencompact {

/// An Earley recognizer over CondToken sequences.
///
/// The paper builds LALR parsers with YACC; we use Earley because it accepts
/// every CFG — including the ambiguous grammars produced by the
/// commutativity closure (Section 6.1) — while remaining effectively linear
/// on the small, nearly-deterministic grammars real sources need
/// (benchmarked in bench_check).
class EarleyRecognizer {
 public:
  /// `grammar` must outlive the recognizer.
  explicit EarleyRecognizer(const Grammar* grammar) : grammar_(grammar) {}

  /// Runs recognition seeded by predicting `start` at position 0 and returns
  /// the ids of all nonterminals (reachable from `start`) that derive the
  /// entire token sequence. In particular, if `start` is SSDL's `s` whose
  /// only rules are `s -> s1 | ... | sm`, the result reports exactly which
  /// condition nonterminals accept the query (plus possibly `s` itself).
  std::vector<int> DerivingNonterminals(int start,
                                        const std::vector<CondToken>& tokens) const;

  /// True iff `start` derives the entire token sequence.
  bool Derives(int start, const std::vector<CondToken>& tokens) const;

  /// Total Earley items created by the last recognition run (work measure,
  /// used by bench_check to verify near-linear behaviour).
  size_t last_item_count() const { return last_item_count_; }

 private:
  const Grammar* grammar_;
  mutable size_t last_item_count_ = 0;
};

}  // namespace gencompact

#endif  // GENCOMPACT_SSDL_EARLEY_H_
