#include "ssdl/closure.h"

#include <algorithm>
#include <numeric>

namespace gencompact {

namespace {

using Segment = std::vector<GrammarSymbol>;

// Splits `rhs` into segments separated by `sep`-kind terminals occurring at
// literal-parenthesis depth 0. Returns an empty list if there are fewer than
// two segments (nothing to permute).
std::vector<Segment> SplitTopLevel(const std::vector<GrammarSymbol>& rhs,
                                   TerminalPattern::Kind sep) {
  std::vector<Segment> segments;
  Segment current;
  int depth = 0;
  for (const GrammarSymbol& sym : rhs) {
    if (sym.is_terminal) {
      if (sym.terminal.kind == TerminalPattern::Kind::kLParen) ++depth;
      if (sym.terminal.kind == TerminalPattern::Kind::kRParen) --depth;
      if (depth == 0 && sym.terminal.kind == sep) {
        if (current.empty()) return {};  // malformed; leave rule alone
        segments.push_back(std::move(current));
        current.clear();
        continue;
      }
    }
    current.push_back(sym);
  }
  if (current.empty()) return {};
  segments.push_back(std::move(current));
  if (segments.size() < 2) return {};
  return segments;
}

void AddPermutations(const GrammarRule& rule, TerminalPattern::Kind sep,
                     size_t max_segments, Grammar* grammar) {
  const std::vector<Segment> segments = SplitTopLevel(rule.rhs, sep);
  if (segments.empty() || segments.size() > max_segments) return;

  std::vector<int> order(segments.size());
  std::iota(order.begin(), order.end(), 0);
  const TerminalPattern separator = sep == TerminalPattern::Kind::kAnd
                                        ? TerminalPattern::AndSep()
                                        : TerminalPattern::OrSep();
  while (std::next_permutation(order.begin(), order.end())) {
    GrammarRule permuted;
    permuted.lhs = rule.lhs;
    for (size_t i = 0; i < order.size(); ++i) {
      if (i > 0) {
        permuted.rhs.push_back(GrammarSymbol::Terminal(separator));
      }
      const Segment& seg = segments[static_cast<size_t>(order[i])];
      permuted.rhs.insert(permuted.rhs.end(), seg.begin(), seg.end());
    }
    if (!grammar->HasRule(permuted)) {
      // AddRule cannot fail here: lhs/nonterminal ids come from the same
      // grammar and the RHS is non-empty.
      const Status status = grammar->AddRule(std::move(permuted));
      (void)status;
    }
  }
}

}  // namespace

SourceDescription CommutativityClosure(const SourceDescription& description,
                                       const ClosureOptions& options) {
  SourceDescription closed = description;  // value copy; grammar is POD-ish
  Grammar& grammar = closed.mutable_grammar();
  // Snapshot: permutations of permutations are redundant (the permutation
  // group is closed), so only original rules need processing.
  const std::vector<GrammarRule> original_rules = grammar.rules();
  for (const GrammarRule& rule : original_rules) {
    AddPermutations(rule, TerminalPattern::Kind::kAnd, options.max_segments,
                    &grammar);
    if (options.permute_or) {
      AddPermutations(rule, TerminalPattern::Kind::kOr, options.max_segments,
                      &grammar);
    }
  }
  return closed;
}

}  // namespace gencompact
