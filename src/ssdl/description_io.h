#ifndef GENCOMPACT_SSDL_DESCRIPTION_IO_H_
#define GENCOMPACT_SSDL_DESCRIPTION_IO_H_

#include <string>

#include "common/result.h"
#include "ssdl/description.h"

namespace gencompact {

/// Serializes a SourceDescription back to the textual SSDL syntax accepted
/// by ParseSsdl, so programmatically built (or closure-expanded)
/// descriptions can be saved, diffed, and reloaded. Round-trip property:
/// ParseSsdl(WriteSsdl(d)) accepts exactly the same queries as `d`.
///
/// Start rules (`__start__ -> N`) are implicit in the export clauses and
/// are not written. InvalidArgument if a nonterminal name would not survive
/// the round trip (e.g. clashes with an attribute name).
Result<std::string> WriteSsdl(const SourceDescription& description);

}  // namespace gencompact

#endif  // GENCOMPACT_SSDL_DESCRIPTION_IO_H_
