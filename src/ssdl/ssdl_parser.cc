#include "ssdl/ssdl_parser.h"

#include <cctype>
#include <unordered_set>

#include "common/strings.h"

namespace gencompact {

namespace {

struct Tok {
  enum class Type { kIdent, kPlaceholder, kSymbol, kInt, kFloat, kString, kEnd };
  Type type = Type::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t line = 1;
};

class SsdlLexer {
 public:
  explicit SsdlLexer(std::string_view text) : text_(text) {}

  Result<std::vector<Tok>> Run() {
    std::vector<Tok> out;
    while (true) {
      SkipWhitespaceAndComments();
      if (pos_ >= text_.size()) break;
      GC_ASSIGN_OR_RETURN(Tok tok, Next());
      out.push_back(std::move(tok));
    }
    Tok end;
    end.line = line_;
    out.push_back(std::move(end));
    return out;
  }

 private:
  void SkipWhitespaceAndComments() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '#') {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  Result<Tok> Next() {
    const char c = text_[pos_];
    Tok tok;
    tok.line = line_;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      tok.type = Tok::Type::kIdent;
      tok.text = std::string(text_.substr(start, pos_ - start));
      return tok;
    }
    if (c == '$') {
      const size_t start = pos_;
      ++pos_;
      while (pos_ < text_.size() &&
             std::isalpha(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
      tok.type = Tok::Type::kPlaceholder;
      tok.text = std::string(text_.substr(start, pos_ - start));
      return tok;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      const size_t start = pos_;
      if (text_[pos_] == '-') ++pos_;
      bool is_float = false;
      while (pos_ < text_.size() &&
             (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
              (text_[pos_] == '.' && !is_float))) {
        if (text_[pos_] == '.') is_float = true;
        ++pos_;
      }
      const std::string digits(text_.substr(start, pos_ - start));
      if (is_float) {
        tok.type = Tok::Type::kFloat;
        tok.float_value = std::stod(digits);
      } else {
        tok.type = Tok::Type::kInt;
        tok.int_value = std::stoll(digits);
      }
      tok.text = digits;
      return tok;
    }
    if (c == '"') {
      ++pos_;
      std::string value;
      while (pos_ < text_.size() && text_[pos_] != '"') {
        if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
        value += text_[pos_];
        ++pos_;
      }
      if (pos_ >= text_.size()) {
        return Status::InvalidArgument("SSDL: unterminated string on line " +
                                       std::to_string(line_));
      }
      ++pos_;
      tok.type = Tok::Type::kString;
      tok.text = std::move(value);
      return tok;
    }
    static constexpr std::string_view kSymbols[] = {
        "->", "<=", ">=", "!=", "<>", "==", "{", "}", "(", ")", ":",
        ";",  ",",  "|",  "=",  "<",  ">"};
    for (std::string_view sym : kSymbols) {
      if (text_.substr(pos_, sym.size()) == sym) {
        tok.type = Tok::Type::kSymbol;
        tok.text = std::string(sym);
        pos_ += sym.size();
        return tok;
      }
    }
    return Status::InvalidArgument("SSDL: unexpected character '" +
                                   std::string(1, c) + "' on line " +
                                   std::to_string(line_));
  }

  std::string_view text_;
  size_t pos_ = 0;
  size_t line_ = 1;
};

struct RawRule {
  std::string lhs;
  std::vector<Tok> rhs;  // one alternative, already split on '|'
  size_t line = 1;
};

struct RawExport {
  std::string name;
  std::vector<std::string> attrs;
  size_t line = 1;
};

class SsdlParser {
 public:
  explicit SsdlParser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<SourceDescription> Parse() {
    GC_RETURN_IF_ERROR(ParseHeader());
    GC_RETURN_IF_ERROR(ParseBody());
    return BuildDescription();
  }

 private:
  const Tok& Peek() const { return toks_[pos_]; }
  void Advance() { ++pos_; }

  Status Expect(Tok::Type type, std::string_view text) {
    if (Peek().type != type || (!text.empty() && Peek().text != text)) {
      return Status::InvalidArgument(
          "SSDL: expected '" + std::string(text) + "' on line " +
          std::to_string(Peek().line) + ", got '" + Peek().text + "'");
    }
    Advance();
    return Status::OK();
  }

  Result<std::string> ExpectIdent() {
    if (Peek().type != Tok::Type::kIdent) {
      return Status::InvalidArgument("SSDL: expected identifier on line " +
                                     std::to_string(Peek().line));
    }
    std::string name = Peek().text;
    Advance();
    return name;
  }

  Status ParseHeader() {
    GC_RETURN_IF_ERROR(Expect(Tok::Type::kIdent, "source"));
    GC_ASSIGN_OR_RETURN(source_name_, ExpectIdent());
    GC_RETURN_IF_ERROR(Expect(Tok::Type::kSymbol, "("));
    std::vector<AttributeDef> attrs;
    while (true) {
      GC_ASSIGN_OR_RETURN(const std::string attr_name, ExpectIdent());
      GC_RETURN_IF_ERROR(Expect(Tok::Type::kSymbol, ":"));
      GC_ASSIGN_OR_RETURN(const std::string type_name, ExpectIdent());
      ValueType type;
      if (type_name == "string") {
        type = ValueType::kString;
      } else if (type_name == "int") {
        type = ValueType::kInt;
      } else if (type_name == "double" || type_name == "float") {
        type = ValueType::kDouble;
      } else if (type_name == "bool") {
        type = ValueType::kBool;
      } else {
        return Status::InvalidArgument("SSDL: unknown attribute type '" +
                                       type_name + "'");
      }
      attrs.push_back({attr_name, type});
      if (Peek().type == Tok::Type::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    GC_RETURN_IF_ERROR(Expect(Tok::Type::kSymbol, ")"));
    schema_ = Schema(std::move(attrs));
    return Status::OK();
  }

  Status ParseBody() {
    GC_RETURN_IF_ERROR(Expect(Tok::Type::kSymbol, "{"));
    while (!(Peek().type == Tok::Type::kSymbol && Peek().text == "}")) {
      if (Peek().type == Tok::Type::kEnd) {
        return Status::InvalidArgument("SSDL: unexpected end of input");
      }
      GC_ASSIGN_OR_RETURN(const std::string keyword, ExpectIdent());
      if (keyword == "rule") {
        GC_RETURN_IF_ERROR(ParseRule());
      } else if (keyword == "export") {
        GC_RETURN_IF_ERROR(ParseExport());
      } else if (keyword == "cost") {
        GC_RETURN_IF_ERROR(ParseCost());
      } else if (keyword == "bound") {
        GC_RETURN_IF_ERROR(ParseBound());
      } else {
        return Status::InvalidArgument("SSDL: unknown declaration '" + keyword +
                                       "' on line " + std::to_string(Peek().line));
      }
    }
    Advance();  // '}'
    return Status::OK();
  }

  Status ParseRule() {
    GC_ASSIGN_OR_RETURN(const std::string lhs, ExpectIdent());
    GC_RETURN_IF_ERROR(Expect(Tok::Type::kSymbol, "->"));
    RawRule raw;
    raw.lhs = lhs;
    raw.line = Peek().line;
    lhs_names_.insert(lhs);
    while (true) {
      const Tok& tok = Peek();
      if (tok.type == Tok::Type::kEnd) {
        return Status::InvalidArgument("SSDL: rule not terminated by ';'");
      }
      if (tok.type == Tok::Type::kSymbol && tok.text == ";") {
        Advance();
        break;
      }
      if (tok.type == Tok::Type::kSymbol && tok.text == "|") {
        Advance();
        if (raw.rhs.empty()) {
          return Status::InvalidArgument("SSDL: empty rule alternative");
        }
        raw_rules_.push_back(raw);
        raw.rhs.clear();
        continue;
      }
      raw.rhs.push_back(tok);
      Advance();
    }
    if (raw.rhs.empty()) {
      return Status::InvalidArgument("SSDL: empty rule RHS for '" + lhs + "'");
    }
    raw_rules_.push_back(std::move(raw));
    return Status::OK();
  }

  Status ParseExport() {
    RawExport raw;
    raw.line = Peek().line;
    GC_ASSIGN_OR_RETURN(raw.name, ExpectIdent());
    GC_RETURN_IF_ERROR(Expect(Tok::Type::kSymbol, ":"));
    GC_RETURN_IF_ERROR(Expect(Tok::Type::kSymbol, "{"));
    while (true) {
      GC_ASSIGN_OR_RETURN(std::string attr, ExpectIdent());
      raw.attrs.push_back(std::move(attr));
      if (Peek().type == Tok::Type::kSymbol && Peek().text == ",") {
        Advance();
        continue;
      }
      break;
    }
    GC_RETURN_IF_ERROR(Expect(Tok::Type::kSymbol, "}"));
    GC_RETURN_IF_ERROR(Expect(Tok::Type::kSymbol, ";"));
    raw_exports_.push_back(std::move(raw));
    return Status::OK();
  }

  Status ParseCost() {
    const auto number = [this]() -> Result<double> {
      if (Peek().type == Tok::Type::kInt) {
        const double v = static_cast<double>(Peek().int_value);
        Advance();
        return v;
      }
      if (Peek().type == Tok::Type::kFloat) {
        const double v = Peek().float_value;
        Advance();
        return v;
      }
      return Status::InvalidArgument("SSDL: expected number in cost clause");
    };
    GC_ASSIGN_OR_RETURN(k1_, number());
    GC_ASSIGN_OR_RETURN(k2_, number());
    GC_RETURN_IF_ERROR(Expect(Tok::Type::kSymbol, ";"));
    return Status::OK();
  }

  /// `bound N [page M] [accesses K];` — the result-bound contract. `page M`
  /// declares the source pageable with M rows per page; `accesses K` caps
  /// calls per sub-query.
  Status ParseBound() {
    const auto count = [this](const char* what) -> Result<uint64_t> {
      if (Peek().type != Tok::Type::kInt || Peek().int_value <= 0) {
        return Status::InvalidArgument(
            std::string("SSDL: expected positive integer for ") + what +
            " on line " + std::to_string(Peek().line));
      }
      const uint64_t v = static_cast<uint64_t>(Peek().int_value);
      Advance();
      return v;
    };
    GC_ASSIGN_OR_RETURN(result_bound_.result_bound, count("bound"));
    while (Peek().type == Tok::Type::kIdent) {
      const std::string keyword = Peek().text;
      Advance();
      if (keyword == "page") {
        GC_ASSIGN_OR_RETURN(result_bound_.page_size, count("page"));
        result_bound_.supports_paging = true;
        if (result_bound_.page_size > result_bound_.result_bound) {
          return Status::InvalidArgument(
              "SSDL: page size exceeds the result bound on line " +
              std::to_string(Peek().line));
        }
      } else if (keyword == "accesses") {
        GC_ASSIGN_OR_RETURN(result_bound_.max_accesses, count("accesses"));
      } else {
        return Status::InvalidArgument("SSDL: unknown bound clause '" +
                                       keyword + "' on line " +
                                       std::to_string(Peek().line));
      }
    }
    GC_RETURN_IF_ERROR(Expect(Tok::Type::kSymbol, ";"));
    return Status::OK();
  }

  Result<GrammarSymbol> ResolveSymbol(const Tok& tok, Grammar* grammar) {
    switch (tok.type) {
      case Tok::Type::kIdent: {
        const std::string& word = tok.text;
        if (word == "and") return GrammarSymbol::Terminal(TerminalPattern::AndSep());
        if (word == "or") return GrammarSymbol::Terminal(TerminalPattern::OrSep());
        if (word == "true") {
          return GrammarSymbol::Terminal(TerminalPattern::TrueTok());
        }
        if (word == "contains") {
          return GrammarSymbol::Terminal(TerminalPattern::Op(CompareOp::kContains));
        }
        if (word == "startswith") {
          return GrammarSymbol::Terminal(
              TerminalPattern::Op(CompareOp::kStartsWith));
        }
        if (schema_.IndexOf(word).has_value()) {
          if (lhs_names_.count(word) > 0) {
            return Status::InvalidArgument(
                "SSDL: name '" + word +
                "' is both an attribute and a rule; rename the rule");
          }
          return GrammarSymbol::Terminal(TerminalPattern::Attr(word));
        }
        if (lhs_names_.count(word) > 0) {
          return GrammarSymbol::Nonterminal(grammar->AddNonterminal(word));
        }
        return Status::NotFound("SSDL: '" + word +
                                "' is neither an attribute nor a rule (line " +
                                std::to_string(tok.line) + ")");
      }
      case Tok::Type::kPlaceholder: {
        TerminalPattern::PlaceholderType type;
        if (tok.text == "$int") {
          type = TerminalPattern::PlaceholderType::kInt;
        } else if (tok.text == "$float" || tok.text == "$double") {
          type = TerminalPattern::PlaceholderType::kFloat;
        } else if (tok.text == "$string" || tok.text == "$str") {
          type = TerminalPattern::PlaceholderType::kString;
        } else if (tok.text == "$bool") {
          type = TerminalPattern::PlaceholderType::kBool;
        } else if (tok.text == "$any") {
          type = TerminalPattern::PlaceholderType::kAny;
        } else {
          return Status::InvalidArgument("SSDL: unknown placeholder '" +
                                         tok.text + "'");
        }
        return GrammarSymbol::Terminal(TerminalPattern::Placeholder(type));
      }
      case Tok::Type::kSymbol: {
        if (tok.text == "(") {
          return GrammarSymbol::Terminal(TerminalPattern::LParen());
        }
        if (tok.text == ")") {
          return GrammarSymbol::Terminal(TerminalPattern::RParen());
        }
        const std::optional<CompareOp> op = ParseCompareOp(tok.text);
        if (op.has_value()) {
          return GrammarSymbol::Terminal(TerminalPattern::Op(*op));
        }
        return Status::InvalidArgument("SSDL: unexpected symbol '" + tok.text +
                                       "' in rule RHS (line " +
                                       std::to_string(tok.line) + ")");
      }
      case Tok::Type::kInt:
        return GrammarSymbol::Terminal(
            TerminalPattern::Literal(Value::Int(tok.int_value)));
      case Tok::Type::kFloat:
        return GrammarSymbol::Terminal(
            TerminalPattern::Literal(Value::Double(tok.float_value)));
      case Tok::Type::kString:
        return GrammarSymbol::Terminal(
            TerminalPattern::Literal(Value::String(tok.text)));
      case Tok::Type::kEnd:
        break;
    }
    return Status::Internal("SSDL: unhandled token in rule RHS");
  }

  Result<SourceDescription> BuildDescription() {
    SourceDescription description(source_name_, schema_);
    description.set_cost_constants(k1_, k2_);
    description.set_result_bound(result_bound_);
    Grammar& grammar = description.mutable_grammar();

    // Declare exports first so condition nonterminals get start rules.
    for (const RawExport& raw : raw_exports_) {
      if (lhs_names_.count(raw.name) == 0) {
        return Status::NotFound("SSDL: export of '" + raw.name +
                                "' which has no rules (line " +
                                std::to_string(raw.line) + ")");
      }
      GC_ASSIGN_OR_RETURN(const AttributeSet attrs, schema_.MakeSet(raw.attrs));
      GC_RETURN_IF_ERROR(description.DeclareConditionNonterminal(raw.name, attrs));
    }
    if (raw_exports_.empty()) {
      return Status::InvalidArgument(
          "SSDL: description has no export clauses; the source would accept "
          "no queries");
    }

    for (const RawRule& raw : raw_rules_) {
      GrammarRule rule;
      rule.lhs = grammar.AddNonterminal(raw.lhs);
      for (const Tok& tok : raw.rhs) {
        GC_ASSIGN_OR_RETURN(GrammarSymbol sym, ResolveSymbol(tok, &grammar));
        rule.rhs.push_back(std::move(sym));
      }
      GC_RETURN_IF_ERROR(grammar.AddRule(std::move(rule)));
    }
    return description;
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;

  std::string source_name_;
  Schema schema_;
  double k1_ = 1.0;
  double k2_ = 0.01;
  ResultBound result_bound_;
  std::vector<RawRule> raw_rules_;
  std::vector<RawExport> raw_exports_;
  std::unordered_set<std::string> lhs_names_;
};

}  // namespace

Result<SourceDescription> ParseSsdl(std::string_view text) {
  SsdlLexer lexer(text);
  GC_ASSIGN_OR_RETURN(std::vector<Tok> toks, lexer.Run());
  SsdlParser parser(std::move(toks));
  return parser.Parse();
}

}  // namespace gencompact
