#include "ssdl/check_memo.h"

#include <algorithm>
#include <cmath>

namespace gencompact {

CheckMemo::CheckMemo(const Options& options) {
  const size_t num_shards = std::max<size_t>(1, options.shards);
  if (options.capacity == 0) {
    shard_capacity_ = 0;  // disabled: Lookup misses silently, Insert no-ops
  } else {
    // Round up so the total never drops below the requested capacity.
    shard_capacity_ =
        std::max<size_t>(1, (options.capacity + num_shards - 1) / num_shards);
  }
  verify_rate_ = options.verify_rate;
  verify_period_ =
      verify_rate_ >= 1.0
          ? 1
          : (verify_rate_ > 0.0
                 ? static_cast<uint64_t>(std::llround(1.0 / verify_rate_))
                 : 0);
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<std::vector<AttributeSet>> CheckMemo::Lookup(
    const CheckMemoKey& key) {
  if (!enabled()) return std::nullopt;
  Shard& shard = ShardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // most recent
  return it->second->family;
}

void CheckMemo::Insert(const CheckMemoKey& key,
                       std::vector<AttributeSet> family) {
  if (!enabled()) return;
  Shard& shard = ShardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    ++shard.refreshes;
    it->second->family = std::move(family);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  ++shard.insertions;
  shard.lru.push_front(Entry{key, std::move(family)});
  shard.entries[key] = shard.lru.begin();
  while (shard.entries.size() > shard_capacity_) {
    ++shard.evictions;
    shard.entries.erase(shard.lru.back().key);
    shard.lru.pop_back();
  }
}

size_t CheckMemo::InvalidateSource(uint32_t source_id) {
  size_t dropped = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->lru.begin(); it != shard->lru.end();) {
      if (it->key.source_id == source_id) {
        shard->entries.erase(it->key);
        it = shard->lru.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
  }
  invalidated_.fetch_add(dropped, std::memory_order_relaxed);
  return dropped;
}

void CheckMemo::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->entries.clear();
  }
}

bool CheckMemo::SampleVerifyHit() {
  if (verify_period_ == 0) return false;
  if (verify_period_ == 1) return true;
  const uint64_t tick =
      verify_ticker_.fetch_add(1, std::memory_order_relaxed);
  return tick % verify_period_ == 0;
}

void CheckMemo::RecordVerifyOutcome(bool matched) {
  verified_hits_.fetch_add(1, std::memory_order_relaxed);
  if (matched) return;
  verify_mismatches_.fetch_add(1, std::memory_order_relaxed);
  // One observed collision condemns the whole key space: latch the memo
  // off (one-way) and drop the entries. Callers fall back to fresh Earley
  // runs — strictly slower, never wrong.
  if (!auto_disabled_.exchange(true, std::memory_order_relaxed)) {
    Clear();
  }
}

size_t CheckMemo::size() const {
  size_t n = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->entries.size();
  }
  return n;
}

CheckMemo::Stats CheckMemo::stats() const {
  Stats stats;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.insertions += shard->insertions;
    stats.refreshes += shard->refreshes;
    stats.evictions += shard->evictions;
    stats.size += shard->entries.size();
  }
  stats.invalidated = invalidated_.load(std::memory_order_relaxed);
  stats.verified_hits = verified_hits_.load(std::memory_order_relaxed);
  stats.verify_mismatches =
      verify_mismatches_.load(std::memory_order_relaxed);
  stats.auto_disabled = auto_disabled_.load(std::memory_order_relaxed);
  stats.capacity = capacity();
  stats.shards = num_shards();
  if (stats.hits + stats.misses > 0) {
    stats.hit_rate = static_cast<double>(stats.hits) /
                     static_cast<double>(stats.hits + stats.misses);
  }
  return stats;
}

}  // namespace gencompact
