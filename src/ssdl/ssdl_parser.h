#ifndef GENCOMPACT_SSDL_SSDL_PARSER_H_
#define GENCOMPACT_SSDL_SSDL_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "ssdl/description.h"

namespace gencompact {

/// Parses the textual form of an SSDL source description. Example (the
/// paper's Example 4.1, car source R):
///
///   source R(make: string, model: string, year: int,
///            color: string, price: int) {
///     cost 10.0 0.5;                # k1 k2, optional
///     bound 100 page 25 accesses 8; # result bound, optional (see below)
///     rule s1 -> make = $string and price < $int;
///     rule s2 -> make = $string and color = $string;
///     export s1 : {make, model, year, color};
///     export s2 : {make, model, year};
///   }
///
/// Syntax notes:
///  * `#` starts a line comment.
///  * A rule RHS is a sequence of symbols; `|` splits alternatives
///    (sugar for multiple rules with the same LHS).
///  * RHS symbols: schema attribute names, comparison operators, constant
///    placeholders ($int, $float, $string, $bool, $any), literal constants
///    (quoted strings / numbers — for sources whose forms pin a value),
///    `and`, `or`, `(`, `)`, `true`, and names of other rules
///    (nonterminal references — used for value-list and recursive shapes).
///  * `export N : {a, b}` declares N as a condition nonterminal (adding the
///    implicit start rule s -> N) exporting attributes {a, b}.
///  * `bound N [page M] [accesses K];` declares the source result-bounded:
///    at most N rows per response; `page M` makes it pageable in M-row pages
///    (M <= N); `accesses K` caps calls per sub-query. Omitted = unbounded.
///  * Rule names must not collide with attribute names.
Result<SourceDescription> ParseSsdl(std::string_view text);

}  // namespace gencompact

#endif  // GENCOMPACT_SSDL_SSDL_PARSER_H_
