#include "ssdl/capability_builder.h"

namespace gencompact {

namespace {

TerminalPattern::PlaceholderType PlaceholderFor(ValueType type) {
  switch (type) {
    case ValueType::kInt:
      return TerminalPattern::PlaceholderType::kInt;
    case ValueType::kDouble:
      return TerminalPattern::PlaceholderType::kFloat;
    case ValueType::kString:
      return TerminalPattern::PlaceholderType::kString;
    case ValueType::kBool:
      return TerminalPattern::PlaceholderType::kBool;
    case ValueType::kNull:
      return TerminalPattern::PlaceholderType::kAny;
  }
  return TerminalPattern::PlaceholderType::kAny;
}

}  // namespace

CapabilityBuilder::CapabilityBuilder(std::string source_name, Schema schema)
    : description_(std::move(source_name), std::move(schema)) {}

Result<std::vector<GrammarSymbol>> CapabilityBuilder::AtomSymbols(
    const Slot& slot, CompareOp op) const {
  const Schema& schema = description_.schema();
  GC_ASSIGN_OR_RETURN(const int index, schema.RequireIndex(slot.attr));
  const ValueType type = schema.attribute(index).type;
  return std::vector<GrammarSymbol>{
      GrammarSymbol::Terminal(TerminalPattern::Attr(slot.attr)),
      GrammarSymbol::Terminal(TerminalPattern::Op(op)),
      GrammarSymbol::Terminal(
          TerminalPattern::Placeholder(PlaceholderFor(type)))};
}

Result<int> CapabilityBuilder::SlotNonterminal(const std::string& form_name,
                                               size_t slot_index,
                                               const Slot& slot) {
  Grammar& grammar = description_.mutable_grammar();
  const std::string name =
      form_name + "__slot" + std::to_string(slot_index) + "_" + slot.attr;
  const int id = grammar.AddNonterminal(name);

  // A single atom for each allowed operator.
  for (CompareOp op : slot.ops) {
    GC_ASSIGN_OR_RETURN(std::vector<GrammarSymbol> atom, AtomSymbols(slot, op));
    GC_RETURN_IF_ERROR(grammar.AddRule({id, std::move(atom)}));
  }

  if (slot.value_list) {
    // list -> attr = $t or attr = $t | attr = $t or list
    // slot -> ( list )                (single values match the atom rules)
    const int list_id = grammar.AddNonterminal(name + "_list");
    GC_ASSIGN_OR_RETURN(std::vector<GrammarSymbol> eq_atom,
                        AtomSymbols(slot, CompareOp::kEq));
    std::vector<GrammarSymbol> two;
    two.insert(two.end(), eq_atom.begin(), eq_atom.end());
    two.push_back(GrammarSymbol::Terminal(TerminalPattern::OrSep()));
    two.insert(two.end(), eq_atom.begin(), eq_atom.end());
    GC_RETURN_IF_ERROR(grammar.AddRule({list_id, std::move(two)}));

    std::vector<GrammarSymbol> rec;
    rec.insert(rec.end(), eq_atom.begin(), eq_atom.end());
    rec.push_back(GrammarSymbol::Terminal(TerminalPattern::OrSep()));
    rec.push_back(GrammarSymbol::Nonterminal(list_id));
    GC_RETURN_IF_ERROR(grammar.AddRule({list_id, std::move(rec)}));

    std::vector<GrammarSymbol> wrapped = {
        GrammarSymbol::Terminal(TerminalPattern::LParen()),
        GrammarSymbol::Nonterminal(list_id),
        GrammarSymbol::Terminal(TerminalPattern::RParen())};
    GC_RETURN_IF_ERROR(grammar.AddRule({id, std::move(wrapped)}));
    // A bare (unparenthesized) list is how the serializer renders a
    // root-level disjunction — the form filled in with only this field.
    GC_RETURN_IF_ERROR(
        grammar.AddRule({id, {GrammarSymbol::Nonterminal(list_id)}}));
  }
  return id;
}

Status CapabilityBuilder::AddConjunctiveForm(
    const std::string& name, std::vector<Slot> slots,
    const std::vector<std::string>& export_attrs) {
  GC_ASSIGN_OR_RETURN(const AttributeSet exports,
                      description_.schema().MakeSet(export_attrs));
  GC_RETURN_IF_ERROR(description_.DeclareConditionNonterminal(name, exports));
  Grammar& grammar = description_.mutable_grammar();
  const int form_id = *grammar.FindNonterminal(name);

  std::vector<int> slot_ids;
  std::vector<size_t> optional_positions;
  for (size_t i = 0; i < slots.size(); ++i) {
    GC_ASSIGN_OR_RETURN(const int slot_id, SlotNonterminal(name, i, slots[i]));
    slot_ids.push_back(slot_id);
    if (slots[i].optional) optional_positions.push_back(i);
  }
  if (optional_positions.size() > 10) {
    return Status::ResourceExhausted(
        "conjunctive form '" + name + "' has " +
        std::to_string(optional_positions.size()) +
        " optional slots; at most 10 supported");
  }

  // One rule per subset of optional slots.
  const size_t subsets = size_t{1} << optional_positions.size();
  for (size_t mask = 0; mask < subsets; ++mask) {
    std::vector<GrammarSymbol> rhs;
    for (size_t i = 0; i < slots.size(); ++i) {
      if (slots[i].optional) {
        size_t bit = 0;
        while (optional_positions[bit] != i) ++bit;
        if ((mask >> bit & 1) == 0) continue;  // slot left blank
      }
      if (!rhs.empty()) {
        rhs.push_back(GrammarSymbol::Terminal(TerminalPattern::AndSep()));
      }
      rhs.push_back(GrammarSymbol::Nonterminal(slot_ids[i]));
    }
    if (rhs.empty()) continue;  // all-blank form accepts no condition
    GC_RETURN_IF_ERROR(grammar.AddRule({form_id, std::move(rhs)}));
  }
  return Status::OK();
}

Status CapabilityBuilder::AddAtomicForms(
    const std::string& name, std::vector<Slot> slots,
    const std::vector<std::string>& export_attrs) {
  GC_ASSIGN_OR_RETURN(const AttributeSet exports,
                      description_.schema().MakeSet(export_attrs));
  GC_RETURN_IF_ERROR(description_.DeclareConditionNonterminal(name, exports));
  Grammar& grammar = description_.mutable_grammar();
  const int form_id = *grammar.FindNonterminal(name);
  for (const Slot& slot : slots) {
    for (CompareOp op : slot.ops) {
      GC_ASSIGN_OR_RETURN(std::vector<GrammarSymbol> atom,
                          AtomSymbols(slot, op));
      GC_RETURN_IF_ERROR(grammar.AddRule({form_id, std::move(atom)}));
    }
  }
  return Status::OK();
}

Status CapabilityBuilder::AddDownload(
    const std::string& name, const std::vector<std::string>& export_attrs) {
  GC_ASSIGN_OR_RETURN(const AttributeSet exports,
                      description_.schema().MakeSet(export_attrs));
  GC_RETURN_IF_ERROR(description_.DeclareConditionNonterminal(name, exports));
  Grammar& grammar = description_.mutable_grammar();
  const int form_id = *grammar.FindNonterminal(name);
  return grammar.AddRule(
      {form_id, {GrammarSymbol::Terminal(TerminalPattern::TrueTok())}});
}

Status CapabilityBuilder::AddFullBoolean(
    const std::string& name, std::vector<Slot> slots,
    const std::vector<std::string>& export_attrs) {
  GC_ASSIGN_OR_RETURN(const AttributeSet exports,
                      description_.schema().MakeSet(export_attrs));
  GC_RETURN_IF_ERROR(description_.DeclareConditionNonterminal(name, exports));
  Grammar& grammar = description_.mutable_grammar();
  const int form_id = *grammar.FindNonterminal(name);

  // Grammar mirroring the canonical serialization: the root is an atom, an
  // and-sequence, or an or-sequence; units are atoms or parenthesized
  // sequences.
  const int atom_id = grammar.AddNonterminal(name + "__atom");
  const int unit_id = grammar.AddNonterminal(name + "__unit");
  const int andseq_id = grammar.AddNonterminal(name + "__andseq");
  const int orseq_id = grammar.AddNonterminal(name + "__orseq");

  for (const Slot& slot : slots) {
    for (CompareOp op : slot.ops) {
      GC_ASSIGN_OR_RETURN(std::vector<GrammarSymbol> atom,
                          AtomSymbols(slot, op));
      GC_RETURN_IF_ERROR(grammar.AddRule({atom_id, std::move(atom)}));
    }
  }

  GC_RETURN_IF_ERROR(
      grammar.AddRule({unit_id, {GrammarSymbol::Nonterminal(atom_id)}}));
  for (int seq : {andseq_id, orseq_id}) {
    GC_RETURN_IF_ERROR(grammar.AddRule(
        {unit_id,
         {GrammarSymbol::Terminal(TerminalPattern::LParen()),
          GrammarSymbol::Nonterminal(seq),
          GrammarSymbol::Terminal(TerminalPattern::RParen())}}));
  }

  const auto add_seq_rules = [&](int seq_id, TerminalPattern sep) -> Status {
    GC_RETURN_IF_ERROR(grammar.AddRule(
        {seq_id,
         {GrammarSymbol::Nonterminal(unit_id), GrammarSymbol::Terminal(sep),
          GrammarSymbol::Nonterminal(unit_id)}}));
    return grammar.AddRule(
        {seq_id,
         {GrammarSymbol::Nonterminal(unit_id), GrammarSymbol::Terminal(sep),
          GrammarSymbol::Nonterminal(seq_id)}});
  };
  GC_RETURN_IF_ERROR(add_seq_rules(andseq_id, TerminalPattern::AndSep()));
  GC_RETURN_IF_ERROR(add_seq_rules(orseq_id, TerminalPattern::OrSep()));

  for (int top : {atom_id, andseq_id, orseq_id}) {
    GC_RETURN_IF_ERROR(
        grammar.AddRule({form_id, {GrammarSymbol::Nonterminal(top)}}));
  }
  return Status::OK();
}

}  // namespace gencompact
