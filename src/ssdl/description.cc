#include "ssdl/description.h"

namespace gencompact {

SourceDescription::SourceDescription(std::string source_name, Schema schema)
    : source_name_(std::move(source_name)), schema_(std::move(schema)) {
  start_symbol_ = grammar_.AddNonterminal("__start__");
}

Status SourceDescription::DeclareConditionNonterminal(const std::string& name,
                                                      AttributeSet exports) {
  const int id = grammar_.AddNonterminal(name);
  for (const auto& [existing, unused] : condition_nonterminals_) {
    if (existing == id) {
      return Status::InvalidArgument("condition nonterminal '" + name +
                                     "' declared twice");
    }
  }
  condition_nonterminals_.emplace_back(id, exports);
  GrammarRule start_rule;
  start_rule.lhs = start_symbol_;
  start_rule.rhs = {GrammarSymbol::Nonterminal(id)};
  return grammar_.AddRule(std::move(start_rule));
}

AttributeSet SourceDescription::ExportsOf(int id) const {
  for (const auto& [nt, exports] : condition_nonterminals_) {
    if (nt == id) return exports;
  }
  return AttributeSet();
}

std::string ResultBound::ToString() const {
  if (!bounded()) return "";
  std::string out = "bound " + std::to_string(result_bound);
  if (supports_paging) {
    out += " page " + std::to_string(EffectivePageSize());
  }
  if (max_accesses > 0) out += " accesses " + std::to_string(max_accesses);
  return out;
}

std::string SourceDescription::ToString() const {
  std::string out = "source " + source_name_ + " " + schema_.ToString() + "\n";
  out += grammar_.ToString();
  for (const auto& [nt, exports] : condition_nonterminals_) {
    out += "export " + grammar_.NonterminalName(nt) + " : " +
           exports.ToString(schema_) + "\n";
  }
  if (result_bound_.bounded()) out += result_bound_.ToString() + "\n";
  return out;
}

}  // namespace gencompact
