#include "ssdl/description.h"

namespace gencompact {

SourceDescription::SourceDescription(std::string source_name, Schema schema)
    : source_name_(std::move(source_name)), schema_(std::move(schema)) {
  start_symbol_ = grammar_.AddNonterminal("__start__");
}

Status SourceDescription::DeclareConditionNonterminal(const std::string& name,
                                                      AttributeSet exports) {
  const int id = grammar_.AddNonterminal(name);
  for (const auto& [existing, unused] : condition_nonterminals_) {
    if (existing == id) {
      return Status::InvalidArgument("condition nonterminal '" + name +
                                     "' declared twice");
    }
  }
  condition_nonterminals_.emplace_back(id, exports);
  GrammarRule start_rule;
  start_rule.lhs = start_symbol_;
  start_rule.rhs = {GrammarSymbol::Nonterminal(id)};
  return grammar_.AddRule(std::move(start_rule));
}

AttributeSet SourceDescription::ExportsOf(int id) const {
  for (const auto& [nt, exports] : condition_nonterminals_) {
    if (nt == id) return exports;
  }
  return AttributeSet();
}

std::string SourceDescription::ToString() const {
  std::string out = "source " + source_name_ + " " + schema_.ToString() + "\n";
  out += grammar_.ToString();
  for (const auto& [nt, exports] : condition_nonterminals_) {
    out += "export " + grammar_.NonterminalName(nt) + " : " +
           exports.ToString(schema_) + "\n";
  }
  return out;
}

}  // namespace gencompact
