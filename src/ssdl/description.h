#ifndef GENCOMPACT_SSDL_DESCRIPTION_H_
#define GENCOMPACT_SSDL_DESCRIPTION_H_

#include <string>
#include <utility>
#include <vector>

#include "schema/schema.h"
#include "ssdl/grammar.h"

namespace gencompact {

/// An SSDL source description: the triplet <S, G, A> of Section 4 — a set of
/// condition nonterminals S, CFG rules G over the condition-token alphabet,
/// and attribute-set associations A. Also carries the source's schema and
/// the cost-model constants k1/k2 (Section 6.2), which are per-source.
class SourceDescription {
 public:
  SourceDescription(std::string source_name, Schema schema);

  const std::string& source_name() const { return source_name_; }
  const Schema& schema() const { return schema_; }

  Grammar& mutable_grammar() { return grammar_; }
  const Grammar& grammar() const { return grammar_; }

  /// Id of the SSDL start symbol `s`.
  int start_symbol() const { return start_symbol_; }

  /// Declares `name` as a condition nonterminal exporting `exports`:
  /// records the association and adds the start rule `s -> name`.
  /// InvalidArgument if already declared.
  Status DeclareConditionNonterminal(const std::string& name,
                                     AttributeSet exports);

  /// Condition nonterminals with their exported attribute sets.
  const std::vector<std::pair<int, AttributeSet>>& condition_nonterminals()
      const {
    return condition_nonterminals_;
  }

  /// Exported attribute set of condition nonterminal `id`, empty set if `id`
  /// is not a condition nonterminal.
  AttributeSet ExportsOf(int id) const;

  /// Cost-model constants (Equation 1): per-source-query fixed cost and
  /// per-result-row cost.
  double k1() const { return k1_; }
  double k2() const { return k2_; }
  void set_cost_constants(double k1, double k2) {
    k1_ = k1;
    k2_ = k2;
  }

  /// Multi-line dump (grammar + exports) for diagnostics.
  std::string ToString() const;

 private:
  std::string source_name_;
  Schema schema_;
  Grammar grammar_;
  int start_symbol_;
  std::vector<std::pair<int, AttributeSet>> condition_nonterminals_;
  double k1_ = 1.0;
  double k2_ = 0.01;
};

}  // namespace gencompact

#endif  // GENCOMPACT_SSDL_DESCRIPTION_H_
