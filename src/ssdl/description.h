#ifndef GENCOMPACT_SSDL_DESCRIPTION_H_
#define GENCOMPACT_SSDL_DESCRIPTION_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "schema/schema.h"
#include "ssdl/grammar.h"

namespace gencompact {

/// The result-bound/access-limit contract of one source interface: how much
/// of an answer the source is willing to ship per call, and how often it may
/// be called per sub-query. Real web forms return top-k results, paginate,
/// or rate-limit; the paper's capability model says which conditions a form
/// accepts but not how much it returns, so this rides next to the grammar in
/// the SSDL description (and, like the grammar, is covered by the source's
/// description epoch — reloading a description with different bounds orphans
/// every cached plan and memoized Check result).
///
/// The zero value means "unbounded": with result_bound == 0 every consumer
/// of the description behaves bit-identically to a build without bounds.
struct ResultBound {
  /// Maximum rows the source returns per call; 0 = unlimited (off).
  uint64_t result_bound = 0;
  /// The source accepts an offset and serves successive pages, so a paging
  /// loop can recover the exact answer bound-sized slice by slice.
  bool supports_paging = false;
  /// Rows per page when paging (<= result_bound enforced at use); 0 means
  /// "pages are result_bound rows".
  uint64_t page_size = 0;
  /// Maximum calls the source allows per sub-query (access limit); 0 =
  /// unlimited. A paging loop that hits this stops with a partial answer.
  uint64_t max_accesses = 0;

  /// True when a bound is in force.
  bool bounded() const { return result_bound > 0; }

  /// Rows one call actually ships: the page size clamped to the bound.
  uint64_t EffectivePageSize() const {
    if (!bounded()) return 0;
    return supports_paging && page_size > 0
               ? std::min(page_size, result_bound)
               : result_bound;
  }

  bool operator==(const ResultBound& other) const {
    return result_bound == other.result_bound &&
           supports_paging == other.supports_paging &&
           page_size == other.page_size && max_accesses == other.max_accesses;
  }
  bool operator!=(const ResultBound& other) const { return !(*this == other); }

  /// `bound 100 page 25 accesses 8` (only the clauses in force), empty when
  /// unbounded.
  std::string ToString() const;
};

/// An SSDL source description: the triplet <S, G, A> of Section 4 — a set of
/// condition nonterminals S, CFG rules G over the condition-token alphabet,
/// and attribute-set associations A. Also carries the source's schema and
/// the cost-model constants k1/k2 (Section 6.2), which are per-source.
class SourceDescription {
 public:
  SourceDescription(std::string source_name, Schema schema);

  const std::string& source_name() const { return source_name_; }
  const Schema& schema() const { return schema_; }

  Grammar& mutable_grammar() { return grammar_; }
  const Grammar& grammar() const { return grammar_; }

  /// Id of the SSDL start symbol `s`.
  int start_symbol() const { return start_symbol_; }

  /// Declares `name` as a condition nonterminal exporting `exports`:
  /// records the association and adds the start rule `s -> name`.
  /// InvalidArgument if already declared.
  Status DeclareConditionNonterminal(const std::string& name,
                                     AttributeSet exports);

  /// Condition nonterminals with their exported attribute sets.
  const std::vector<std::pair<int, AttributeSet>>& condition_nonterminals()
      const {
    return condition_nonterminals_;
  }

  /// Exported attribute set of condition nonterminal `id`, empty set if `id`
  /// is not a condition nonterminal.
  AttributeSet ExportsOf(int id) const;

  /// Cost-model constants (Equation 1): per-source-query fixed cost and
  /// per-result-row cost.
  double k1() const { return k1_; }
  double k2() const { return k2_; }
  void set_cost_constants(double k1, double k2) {
    k1_ = k1;
    k2_ = k2;
  }

  /// Result-bound/access-limit contract (see ResultBound). The default is
  /// unbounded; copied along with the rest of the description by the
  /// commutativity closure, so planners and the enforcing source see the
  /// same bound.
  const ResultBound& result_bound() const { return result_bound_; }
  void set_result_bound(const ResultBound& bound) { result_bound_ = bound; }

  /// Multi-line dump (grammar + exports) for diagnostics.
  std::string ToString() const;

 private:
  std::string source_name_;
  Schema schema_;
  Grammar grammar_;
  int start_symbol_;
  std::vector<std::pair<int, AttributeSet>> condition_nonterminals_;
  double k1_ = 1.0;
  double k2_ = 0.01;
  ResultBound result_bound_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_SSDL_DESCRIPTION_H_
