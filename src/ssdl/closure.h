#ifndef GENCOMPACT_SSDL_CLOSURE_H_
#define GENCOMPACT_SSDL_CLOSURE_H_

#include <cstddef>

#include "common/result.h"
#include "ssdl/description.h"

namespace gencompact {

/// Options for the description rewriting of Section 6.1.
struct ClosureOptions {
  /// Rules whose RHS splits into more than this many top-level
  /// connector-separated segments are left unpermuted (factorial growth
  /// guard); such rules are rare in practice and can be pre-split by the
  /// description author.
  size_t max_segments = 6;

  /// Also permute top-level ∨-separated segments (disjunction is
  /// commutative too; the paper's example only shows ∧).
  bool permute_or = true;
};

/// Returns a copy of `description` closed under commutativity: for every
/// rule whose RHS is a sequence of top-level `and`-separated (and optionally
/// `or`-separated) segments, all segment permutations are added as extra
/// rules. This is GenCompact's replacement for the commutativity rewrite
/// rule — it runs once when the source joins the system, so the planner
/// never has to permute condition trees at query time.
SourceDescription CommutativityClosure(const SourceDescription& description,
                                       const ClosureOptions& options = {});

}  // namespace gencompact

#endif  // GENCOMPACT_SSDL_CLOSURE_H_
