#ifndef GENCOMPACT_SSDL_CHECK_H_
#define GENCOMPACT_SSDL_CHECK_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "expr/condition.h"
#include "ssdl/description.h"
#include "ssdl/earley.h"

namespace gencompact {

/// The paper's Check function (Section 4): given a condition expression and
/// a source, reports the attributes the source exports when evaluating that
/// expression; the empty result means the condition is not supported.
///
/// Faithfulness note (see DESIGN.md): when a condition parses under several
/// condition nonterminals with different attribute associations, a single
/// attribute set is ambiguous, so Check returns the *family* of maximal
/// exported sets. `SP(C, A, R)` is supported iff A ⊆ F for some family
/// member F. Results are memoized per structural condition key.
class Checker {
 public:
  /// `description` must outlive the Checker.
  explicit Checker(const SourceDescription* description)
      : description_(description), recognizer_(&description->grammar()) {}

  /// Family of maximal exported attribute sets for `cond`; empty iff the
  /// source cannot evaluate `cond`.
  const std::vector<AttributeSet>& Check(const ConditionNode& cond);

  /// True iff SP(cond, attrs, R) is supported: the source can evaluate
  /// `cond` and export (a superset of) `attrs`.
  bool Supports(const ConditionNode& cond, const AttributeSet& attrs);

  /// Exported family for the trivially-true condition (source download).
  const std::vector<AttributeSet>& CheckTrue();

  const SourceDescription& description() const { return *description_; }

  // Instrumentation (used by benchmarks).
  size_t num_checks() const { return num_checks_; }
  size_t num_cache_hits() const { return num_cache_hits_; }
  size_t total_earley_items() const { return total_earley_items_; }

 private:
  const std::vector<AttributeSet>& CheckTokens(
      const std::string& key, const std::vector<CondToken>& tokens);

  const SourceDescription* description_;
  EarleyRecognizer recognizer_;
  std::unordered_map<std::string, std::vector<AttributeSet>> cache_;
  size_t num_checks_ = 0;
  size_t num_cache_hits_ = 0;
  size_t total_earley_items_ = 0;
};

}  // namespace gencompact

#endif  // GENCOMPACT_SSDL_CHECK_H_
