#ifndef GENCOMPACT_SSDL_CHECK_H_
#define GENCOMPACT_SSDL_CHECK_H_

#include <atomic>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "expr/condition.h"
#include "ssdl/description.h"
#include "ssdl/earley.h"

namespace gencompact {

/// The paper's Check function (Section 4): given a condition expression and
/// a source, reports the attributes the source exports when evaluating that
/// expression; the empty result means the condition is not supported.
///
/// Faithfulness note (see DESIGN.md): when a condition parses under several
/// condition nonterminals with different attribute associations, a single
/// attribute set is ambiguous, so Check returns the *family* of maximal
/// exported sets. `SP(C, A, R)` is supported iff A ⊆ F for some family
/// member F.
///
/// Results are memoized per interned ConditionId — hash-consing makes
/// structurally equal conditions share one id, so the memo hits across
/// planner invocations and across the many CT rewritings that share
/// subtrees. The memo is thread-safe (shared-lock reads, exclusive-lock
/// inserts; the stateful Earley recognizer is serialized on misses only), so
/// concurrent clients plan against one source without an external planning
/// lock. Entries are value-stable: the returned references stay valid for
/// the Checker's lifetime.
class Checker {
 public:
  /// `description` must outlive the Checker.
  explicit Checker(const SourceDescription* description)
      : description_(description), recognizer_(&description->grammar()) {}

  /// Family of maximal exported attribute sets for `cond`; empty iff the
  /// source cannot evaluate `cond`.
  const std::vector<AttributeSet>& Check(const ConditionNode& cond);

  /// True iff SP(cond, attrs, R) is supported: the source can evaluate
  /// `cond` and export (a superset of) `attrs`.
  bool Supports(const ConditionNode& cond, const AttributeSet& attrs);

  /// Exported family for the trivially-true condition (source download).
  const std::vector<AttributeSet>& CheckTrue();

  const SourceDescription& description() const { return *description_; }

  // Instrumentation (used by benchmarks).
  size_t num_checks() const {
    return num_checks_.load(std::memory_order_relaxed);
  }
  size_t num_cache_hits() const {
    return num_cache_hits_.load(std::memory_order_relaxed);
  }
  size_t total_earley_items() const {
    return total_earley_items_.load(std::memory_order_relaxed);
  }

 private:
  const SourceDescription* description_;
  EarleyRecognizer recognizer_;
  mutable std::shared_mutex cache_mu_;  // guards cache_ structure
  std::mutex earley_mu_;                // serializes the stateful recognizer
  std::unordered_map<ConditionId, std::vector<AttributeSet>> cache_;
  std::atomic<size_t> num_checks_{0};
  std::atomic<size_t> num_cache_hits_{0};
  std::atomic<size_t> total_earley_items_{0};
};

}  // namespace gencompact

#endif  // GENCOMPACT_SSDL_CHECK_H_
