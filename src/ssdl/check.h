#ifndef GENCOMPACT_SSDL_CHECK_H_
#define GENCOMPACT_SSDL_CHECK_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "expr/condition.h"
#include "ssdl/check_memo.h"
#include "ssdl/description.h"
#include "ssdl/earley.h"

namespace gencompact {

struct CondToken;

/// The paper's Check function (Section 4): given a condition expression and
/// a source, reports the attributes the source exports when evaluating that
/// expression; the empty result means the condition is not supported.
///
/// Faithfulness note (see DESIGN.md): when a condition parses under several
/// condition nonterminals with different attribute associations, a single
/// attribute set is ambiguous, so Check returns the *family* of maximal
/// exported sets. `SP(C, A, R)` is supported iff A ⊆ F for some family
/// member F.
///
/// Results are memoized at two levels:
///
///  * **L1** — per interned ConditionId. Hash-consing makes structurally
///    equal conditions share one id, so the memo hits across planner
///    invocations and across the many CT rewritings that share subtrees.
///    Entries are value-stable: returned references stay valid for the
///    Checker's lifetime.
///  * **L2** (optional) — a shared cross-query CheckMemo keyed by the
///    condition's structural fingerprint, the source id, and the source's
///    description epoch. L1 entries die with their condition; a recurring
///    query re-derives the same fingerprint and hits L2 even after the
///    original node is gone. Consulted on L1 miss, populated on Earley
///    completion; a sampled fraction of hits is re-verified against a fresh
///    Earley run (CheckMemo::Options::verify_rate) to catch fingerprint
///    collisions or stale entries.
///
/// The Checker is thread-safe (shared-lock L1 reads, exclusive-lock inserts;
/// the stateful Earley recognizer is serialized on misses only), so
/// concurrent clients plan against one source without an external planning
/// lock. Wire the shared memo before concurrent use, like the rest of
/// source configuration.
class Checker {
 public:
  /// `description` must outlive the Checker.
  explicit Checker(const SourceDescription* description)
      : description_(description), recognizer_(&description->grammar()) {}

  /// Attaches the cross-query second-level memo (must outlive the Checker).
  /// `source_id` scopes this Checker's entries; `epoch` is the description
  /// epoch the entries are valid for (a reload builds a fresh Checker wired
  /// with the bumped epoch, orphaning the old entries). Call during source
  /// registration, before concurrent queries start.
  void EnableSharedMemo(CheckMemo* memo, uint32_t source_id, uint64_t epoch) {
    shared_memo_ = memo;
    source_id_ = source_id;
    epoch_ = epoch;
  }

  /// Family of maximal exported attribute sets for `cond`; empty iff the
  /// source cannot evaluate `cond`.
  const std::vector<AttributeSet>& Check(const ConditionNode& cond);

  /// True iff SP(cond, attrs, R) is supported: the source can evaluate
  /// `cond` and export (a superset of) `attrs`.
  bool Supports(const ConditionNode& cond, const AttributeSet& attrs);

  /// Exported family for the trivially-true condition (source download).
  const std::vector<AttributeSet>& CheckTrue();

  const SourceDescription& description() const { return *description_; }

  // Instrumentation (used by benchmarks and the mediator stats snapshot).
  size_t num_checks() const {
    return num_checks_.load(std::memory_order_relaxed);
  }
  size_t num_cache_hits() const {
    return num_cache_hits_.load(std::memory_order_relaxed);
  }
  /// L1 misses answered by the shared cross-query memo.
  size_t num_shared_hits() const {
    return num_shared_hits_.load(std::memory_order_relaxed);
  }
  size_t total_earley_items() const {
    return total_earley_items_.load(std::memory_order_relaxed);
  }

 private:
  /// Tokenizes + runs Earley (serialized) and reduces to the maximal-set
  /// family; no memo is consulted or written.
  std::vector<AttributeSet> ComputeFamily(const ConditionNode& cond);
  std::vector<AttributeSet> ComputeFamilyLocked(
      const std::vector<CondToken>& tokens);

  const SourceDescription* description_;
  EarleyRecognizer recognizer_;
  mutable std::shared_mutex cache_mu_;  // guards cache_ structure
  std::mutex earley_mu_;                // serializes the stateful recognizer
  std::unordered_map<ConditionId, std::vector<AttributeSet>> cache_;
  CheckMemo* shared_memo_ = nullptr;  ///< cross-query L2, null = disabled
  uint32_t source_id_ = 0;
  uint64_t epoch_ = 0;
  std::atomic<size_t> num_checks_{0};
  std::atomic<size_t> num_cache_hits_{0};
  std::atomic<size_t> num_shared_hits_{0};
  std::atomic<size_t> total_earley_items_{0};
};

}  // namespace gencompact

#endif  // GENCOMPACT_SSDL_CHECK_H_
