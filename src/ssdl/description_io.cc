#include "ssdl/description_io.h"

#include <sstream>

namespace gencompact {

namespace {

Result<std::string> SymbolText(const GrammarSymbol& symbol,
                               const Grammar& grammar, const Schema& schema) {
  if (!symbol.is_terminal) {
    return grammar.NonterminalName(symbol.nonterminal);
  }
  const TerminalPattern& t = symbol.terminal;
  switch (t.kind) {
    case TerminalPattern::Kind::kAttr:
      return t.attr;
    case TerminalPattern::Kind::kOp:
      return std::string(CompareOpSymbol(t.op));
    case TerminalPattern::Kind::kConstPlaceholder:
      switch (t.placeholder) {
        case TerminalPattern::PlaceholderType::kAny:
          return std::string("$any");
        case TerminalPattern::PlaceholderType::kInt:
          return std::string("$int");
        case TerminalPattern::PlaceholderType::kFloat:
          return std::string("$float");
        case TerminalPattern::PlaceholderType::kString:
          return std::string("$string");
        case TerminalPattern::PlaceholderType::kBool:
          return std::string("$bool");
      }
      return Status::Internal("unknown placeholder type");
    case TerminalPattern::Kind::kConstLiteral:
      return t.literal.ToString();  // quoted/escaped for strings
    case TerminalPattern::Kind::kAnd:
      return std::string("and");
    case TerminalPattern::Kind::kOr:
      return std::string("or");
    case TerminalPattern::Kind::kLParen:
      return std::string("(");
    case TerminalPattern::Kind::kRParen:
      return std::string(")");
    case TerminalPattern::Kind::kTrue:
      return std::string("true");
  }
  (void)schema;
  return Status::Internal("unknown terminal kind");
}

const char* TypeName(ValueType type) {
  switch (type) {
    case ValueType::kString:
      return "string";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kBool:
      return "bool";
    case ValueType::kNull:
      return "string";  // no null-typed attributes in practice
  }
  return "string";
}

}  // namespace

Result<std::string> WriteSsdl(const SourceDescription& description) {
  const Schema& schema = description.schema();
  const Grammar& grammar = description.grammar();

  // Validate nonterminal names: must not clash with attribute names (the
  // parser would resolve them as attributes on reload).
  for (size_t id = 0; id < grammar.num_nonterminals(); ++id) {
    const std::string& name = grammar.NonterminalName(static_cast<int>(id));
    if (static_cast<int>(id) != description.start_symbol() &&
        schema.IndexOf(name).has_value()) {
      return Status::InvalidArgument(
          "nonterminal '" + name +
          "' clashes with an attribute name; not round-trippable");
    }
  }

  std::ostringstream out;
  out << "source " << description.source_name() << "(";
  for (size_t a = 0; a < schema.num_attributes(); ++a) {
    if (a > 0) out << ", ";
    out << schema.attribute(static_cast<int>(a)).name << ": "
        << TypeName(schema.attribute(static_cast<int>(a)).type);
  }
  out << ") {\n";
  out << "  cost " << description.k1() << " " << description.k2() << ";\n";
  if (description.result_bound().bounded()) {
    out << "  " << description.result_bound().ToString() << ";\n";
  }

  for (const GrammarRule& rule : grammar.rules()) {
    if (rule.lhs == description.start_symbol()) continue;  // implicit
    out << "  rule " << grammar.NonterminalName(rule.lhs) << " ->";
    for (const GrammarSymbol& symbol : rule.rhs) {
      GC_ASSIGN_OR_RETURN(const std::string text,
                          SymbolText(symbol, grammar, schema));
      out << " " << text;
    }
    out << ";\n";
  }

  for (const auto& [nonterminal, exports] : description.condition_nonterminals()) {
    out << "  export " << grammar.NonterminalName(nonterminal) << " : {";
    bool first = true;
    for (int index : exports.Indices()) {
      if (!first) out << ", ";
      first = false;
      out << schema.attribute(index).name;
    }
    out << "};\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace gencompact
