#include "ssdl/grammar.h"

namespace gencompact {

TerminalPattern TerminalPattern::Attr(std::string name) {
  TerminalPattern t;
  t.kind = Kind::kAttr;
  t.attr = std::move(name);
  return t;
}

TerminalPattern TerminalPattern::Op(CompareOp op) {
  TerminalPattern t;
  t.kind = Kind::kOp;
  t.op = op;
  return t;
}

TerminalPattern TerminalPattern::Placeholder(PlaceholderType type) {
  TerminalPattern t;
  t.kind = Kind::kConstPlaceholder;
  t.placeholder = type;
  return t;
}

TerminalPattern TerminalPattern::Literal(Value value) {
  TerminalPattern t;
  t.kind = Kind::kConstLiteral;
  t.literal = std::move(value);
  return t;
}

TerminalPattern TerminalPattern::AndSep() {
  TerminalPattern t;
  t.kind = Kind::kAnd;
  return t;
}

TerminalPattern TerminalPattern::OrSep() {
  TerminalPattern t;
  t.kind = Kind::kOr;
  return t;
}

TerminalPattern TerminalPattern::LParen() {
  TerminalPattern t;
  t.kind = Kind::kLParen;
  return t;
}

TerminalPattern TerminalPattern::RParen() {
  TerminalPattern t;
  t.kind = Kind::kRParen;
  return t;
}

TerminalPattern TerminalPattern::TrueTok() {
  TerminalPattern t;
  t.kind = Kind::kTrue;
  return t;
}

namespace {

bool PlaceholderMatches(TerminalPattern::PlaceholderType type, const Value& v) {
  switch (type) {
    case TerminalPattern::PlaceholderType::kAny:
      return true;
    case TerminalPattern::PlaceholderType::kInt:
      return v.type() == ValueType::kInt;
    case TerminalPattern::PlaceholderType::kFloat:
      return v.is_numeric();
    case TerminalPattern::PlaceholderType::kString:
      return v.type() == ValueType::kString;
    case TerminalPattern::PlaceholderType::kBool:
      return v.type() == ValueType::kBool;
  }
  return false;
}

const char* PlaceholderName(TerminalPattern::PlaceholderType type) {
  switch (type) {
    case TerminalPattern::PlaceholderType::kAny:
      return "$any";
    case TerminalPattern::PlaceholderType::kInt:
      return "$int";
    case TerminalPattern::PlaceholderType::kFloat:
      return "$float";
    case TerminalPattern::PlaceholderType::kString:
      return "$string";
    case TerminalPattern::PlaceholderType::kBool:
      return "$bool";
  }
  return "$?";
}

}  // namespace

bool TerminalPattern::Matches(const CondToken& token) const {
  switch (kind) {
    case Kind::kAttr:
      return token.type == CondToken::Type::kAttr && token.attr == attr;
    case Kind::kOp:
      return token.type == CondToken::Type::kOp && token.op == op;
    case Kind::kConstPlaceholder:
      return token.type == CondToken::Type::kConst &&
             PlaceholderMatches(placeholder, token.value);
    case Kind::kConstLiteral:
      return token.type == CondToken::Type::kConst && token.value == literal;
    case Kind::kAnd:
      return token.type == CondToken::Type::kAnd;
    case Kind::kOr:
      return token.type == CondToken::Type::kOr;
    case Kind::kLParen:
      return token.type == CondToken::Type::kLParen;
    case Kind::kRParen:
      return token.type == CondToken::Type::kRParen;
    case Kind::kTrue:
      return token.type == CondToken::Type::kTrue;
  }
  return false;
}

std::string TerminalPattern::ToString() const {
  switch (kind) {
    case Kind::kAttr:
      return attr;
    case Kind::kOp:
      return CompareOpSymbol(op);
    case Kind::kConstPlaceholder:
      return PlaceholderName(placeholder);
    case Kind::kConstLiteral:
      return literal.ToString();
    case Kind::kAnd:
      return "and";
    case Kind::kOr:
      return "or";
    case Kind::kLParen:
      return "(";
    case Kind::kRParen:
      return ")";
    case Kind::kTrue:
      return "true";
  }
  return "?";
}

bool TerminalPattern::operator==(const TerminalPattern& other) const {
  if (kind != other.kind) return false;
  switch (kind) {
    case Kind::kAttr:
      return attr == other.attr;
    case Kind::kOp:
      return op == other.op;
    case Kind::kConstPlaceholder:
      return placeholder == other.placeholder;
    case Kind::kConstLiteral:
      return literal == other.literal;
    default:
      return true;
  }
}

GrammarSymbol GrammarSymbol::Terminal(TerminalPattern t) {
  GrammarSymbol s;
  s.is_terminal = true;
  s.terminal = std::move(t);
  return s;
}

GrammarSymbol GrammarSymbol::Nonterminal(int id) {
  GrammarSymbol s;
  s.is_terminal = false;
  s.nonterminal = id;
  return s;
}

std::string GrammarSymbol::ToString(const Grammar& grammar) const {
  if (is_terminal) return terminal.ToString();
  return "<" + grammar.NonterminalName(nonterminal) + ">";
}

bool GrammarSymbol::operator==(const GrammarSymbol& other) const {
  if (is_terminal != other.is_terminal) return false;
  return is_terminal ? terminal == other.terminal
                     : nonterminal == other.nonterminal;
}

int Grammar::AddNonterminal(const std::string& name) {
  const std::optional<int> existing = FindNonterminal(name);
  if (existing.has_value()) return *existing;
  names_.push_back(name);
  rules_by_lhs_.emplace_back();
  return static_cast<int>(names_.size()) - 1;
}

std::optional<int> Grammar::FindNonterminal(const std::string& name) const {
  for (size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

Status Grammar::AddRule(GrammarRule rule) {
  if (rule.rhs.empty()) {
    return Status::InvalidArgument("SSDL rules must have a non-empty RHS (" +
                                   NonterminalName(rule.lhs) + ")");
  }
  if (rule.lhs < 0 || static_cast<size_t>(rule.lhs) >= names_.size()) {
    return Status::InvalidArgument("rule LHS nonterminal id out of range");
  }
  for (const GrammarSymbol& sym : rule.rhs) {
    if (!sym.is_terminal && (sym.nonterminal < 0 ||
                             static_cast<size_t>(sym.nonterminal) >= names_.size())) {
      return Status::InvalidArgument("rule RHS nonterminal id out of range");
    }
  }
  rules_by_lhs_[rule.lhs].push_back(static_cast<int>(rules_.size()));
  rules_.push_back(std::move(rule));
  return Status::OK();
}

bool Grammar::HasRule(const GrammarRule& rule) const {
  for (int index : rules_by_lhs_[rule.lhs]) {
    if (rules_[index].rhs == rule.rhs) return true;
  }
  return false;
}

std::string Grammar::ToString() const {
  std::string out;
  for (const GrammarRule& rule : rules_) {
    out += NonterminalName(rule.lhs);
    out += " ->";
    for (const GrammarSymbol& sym : rule.rhs) {
      out += ' ';
      out += sym.ToString(*this);
    }
    out += '\n';
  }
  return out;
}

}  // namespace gencompact
