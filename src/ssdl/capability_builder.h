#ifndef GENCOMPACT_SSDL_CAPABILITY_BUILDER_H_
#define GENCOMPACT_SSDL_CAPABILITY_BUILDER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "ssdl/description.h"

namespace gencompact {

/// Programmatic construction of common SSDL capability shapes, so tests,
/// examples, and workload generators don't have to hand-write grammar text.
/// Covers the restriction classes of Section 4: condition-attribute
/// restrictions, condition-expression-size restrictions (via form shapes),
/// and condition-expression-structure restrictions.
class CapabilityBuilder {
 public:
  CapabilityBuilder(std::string source_name, Schema schema);

  /// One field of a web form: an attribute with the operators the form
  /// accepts for it.
  struct Slot {
    std::string attr;
    std::vector<CompareOp> ops = {CompareOp::kEq};
    /// Optional fields may be left blank (the generated grammar accepts
    /// conjunctions both with and without the slot).
    bool optional = false;
    /// The form accepts a list of alternative values for this field
    /// (matched as `attr = v` or `(attr = v1 or attr = v2 or ...)`), as in
    /// the paper's car example where `size` takes a list of values.
    bool value_list = false;
  };

  /// Adds a conjunctive form named `name`: a query is supported if it is a
  /// conjunction of the slots, in slot order, with optional slots possibly
  /// missing (at least one slot must be present). Exports `export_attrs`.
  /// At most 10 optional slots (subset enumeration guard).
  Status AddConjunctiveForm(const std::string& name, std::vector<Slot> slots,
                            const std::vector<std::string>& export_attrs);

  /// Adds a form accepting any single atomic condition `attr op value` for
  /// the given slots (one rule per slot/op). Exports `export_attrs`.
  Status AddAtomicForms(const std::string& name, std::vector<Slot> slots,
                        const std::vector<std::string>& export_attrs);

  /// Allows downloading the source contents: accepts the trivially-true
  /// condition, exporting `export_attrs`.
  Status AddDownload(const std::string& name,
                     const std::vector<std::string>& export_attrs);

  /// Full relational capability over the given slots: any ∧/∨ combination
  /// (in the canonical serialized form) of atoms over the slots. Exports
  /// `export_attrs`.
  Status AddFullBoolean(const std::string& name, std::vector<Slot> slots,
                        const std::vector<std::string>& export_attrs);

  /// Finalizes and returns the description (builder keeps ownership until
  /// this call). k1/k2 default as in SourceDescription.
  SourceDescription Build() { return description_; }

  SourceDescription* mutable_description() { return &description_; }

 private:
  /// Appends `attr op $placeholder` symbols for a slot atom with `op`.
  Result<std::vector<GrammarSymbol>> AtomSymbols(const Slot& slot,
                                                 CompareOp op) const;

  /// Creates (once) and returns a nonterminal matching a slot occurrence:
  /// a single atom (any of the slot's ops) or, if value_list, also a
  /// parenthesized equality disjunction.
  Result<int> SlotNonterminal(const std::string& form_name, size_t slot_index,
                              const Slot& slot);

  SourceDescription description_;
  int next_helper_id_ = 0;
};

}  // namespace gencompact

#endif  // GENCOMPACT_SSDL_CAPABILITY_BUILDER_H_
