#include "ssdl/earley.h"

#include <algorithm>
#include <cstdint>
#include <unordered_set>

namespace gencompact {

namespace {

// One Earley item: rule `rule` with the dot before rhs[dot], started at
// input position `origin`.
struct Item {
  int rule;
  int dot;
  int origin;

  bool operator==(const Item& other) const {
    return rule == other.rule && dot == other.dot && origin == other.origin;
  }
};

struct ItemHash {
  size_t operator()(const Item& item) const {
    uint64_t h = static_cast<uint64_t>(item.rule);
    h = h * 0x100000001b3ull ^ static_cast<uint64_t>(item.dot);
    h = h * 0x100000001b3ull ^ static_cast<uint64_t>(item.origin);
    return static_cast<size_t>(h);
  }
};

// One chart column: the item list doubles as the worklist (items are only
// appended), with a hash set for O(1) dedup.
struct Column {
  std::vector<Item> items;
  std::unordered_set<Item, ItemHash> seen;

  bool Add(const Item& item) {
    if (!seen.insert(item).second) return false;
    items.push_back(item);
    return true;
  }
};

}  // namespace

std::vector<int> EarleyRecognizer::DerivingNonterminals(
    int start, const std::vector<CondToken>& tokens) const {
  const std::vector<GrammarRule>& rules = grammar_->rules();
  const size_t n = tokens.size();
  std::vector<Column> chart(n + 1);
  size_t items_created = 0;

  // Track which nonterminals have been predicted in each column so each
  // (column, nonterminal) pair is expanded once.
  std::vector<std::vector<bool>> predicted(
      n + 1, std::vector<bool>(grammar_->num_nonterminals(), false));

  auto predict = [&](int column, int nonterminal) {
    if (predicted[column][nonterminal]) return;
    predicted[column][nonterminal] = true;
    for (int rule_index : grammar_->RulesFor(nonterminal)) {
      if (chart[column].Add(Item{rule_index, 0, column})) ++items_created;
    }
  };

  predict(0, start);

  for (size_t pos = 0; pos <= n; ++pos) {
    Column& column = chart[pos];
    for (size_t i = 0; i < column.items.size(); ++i) {
      const Item item = column.items[i];  // copy: vector may reallocate
      const GrammarRule& rule = rules[item.rule];
      if (item.dot < static_cast<int>(rule.rhs.size())) {
        const GrammarSymbol& sym = rule.rhs[item.dot];
        if (sym.is_terminal) {
          // Scan.
          if (pos < n && sym.terminal.Matches(tokens[pos])) {
            if (chart[pos + 1].Add(Item{item.rule, item.dot + 1, item.origin})) {
              ++items_created;
            }
          }
        } else {
          // Predict.
          predict(static_cast<int>(pos), sym.nonterminal);
        }
      } else {
        // Complete: advance items in chart[origin] waiting on this LHS.
        const int completed = rule.lhs;
        const Column& origin_column = chart[item.origin];
        // The origin column can gain items only when origin == pos, in which
        // case the outer loop will revisit them; a snapshot of the current
        // size is safe because completion of a zero-length span re-runs when
        // such items appear (they are processed later in this same column).
        const size_t origin_size = origin_column.items.size();
        for (size_t j = 0; j < origin_size; ++j) {
          const Item waiting = origin_column.items[j];
          const GrammarRule& waiting_rule = rules[waiting.rule];
          if (waiting.dot < static_cast<int>(waiting_rule.rhs.size()) &&
              !waiting_rule.rhs[waiting.dot].is_terminal &&
              waiting_rule.rhs[waiting.dot].nonterminal == completed) {
            if (column.Add(Item{waiting.rule, waiting.dot + 1, waiting.origin})) {
              ++items_created;
            }
          }
        }
      }
    }
  }

  last_item_count_ = items_created;

  std::vector<int> deriving;
  for (const Item& item : chart[n].items) {
    const GrammarRule& rule = rules[item.rule];
    if (item.origin == 0 && item.dot == static_cast<int>(rule.rhs.size())) {
      if (std::find(deriving.begin(), deriving.end(), rule.lhs) ==
          deriving.end()) {
        deriving.push_back(rule.lhs);
      }
    }
  }
  return deriving;
}

bool EarleyRecognizer::Derives(int start,
                               const std::vector<CondToken>& tokens) const {
  const std::vector<int> deriving = DerivingNonterminals(start, tokens);
  return std::find(deriving.begin(), deriving.end(), start) != deriving.end();
}

}  // namespace gencompact
