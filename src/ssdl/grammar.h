#ifndef GENCOMPACT_SSDL_GRAMMAR_H_
#define GENCOMPACT_SSDL_GRAMMAR_H_

#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/condition_tokens.h"

namespace gencompact {

/// A terminal of an SSDL grammar: a pattern that matches one CondToken.
/// Constants can be matched by a typed placeholder ($int, $string, ...) or
/// pinned to a literal value (a source whose form hard-codes a value).
struct TerminalPattern {
  enum class Kind {
    kAttr,              ///< a specific attribute name
    kOp,                ///< a specific comparison operator
    kConstPlaceholder,  ///< any constant of a given type
    kConstLiteral,      ///< one specific constant
    kAnd,
    kOr,
    kLParen,
    kRParen,
    kTrue,
  };

  /// Type restriction for kConstPlaceholder.
  enum class PlaceholderType { kAny, kInt, kFloat, kString, kBool };

  Kind kind = Kind::kTrue;
  std::string attr;                                    ///< kAttr
  CompareOp op = CompareOp::kEq;                       ///< kOp
  PlaceholderType placeholder = PlaceholderType::kAny; ///< kConstPlaceholder
  Value literal;                                       ///< kConstLiteral

  static TerminalPattern Attr(std::string name);
  static TerminalPattern Op(CompareOp op);
  static TerminalPattern Placeholder(PlaceholderType type);
  static TerminalPattern Literal(Value value);
  static TerminalPattern AndSep();
  static TerminalPattern OrSep();
  static TerminalPattern LParen();
  static TerminalPattern RParen();
  static TerminalPattern TrueTok();

  bool Matches(const CondToken& token) const;

  std::string ToString() const;
  bool operator==(const TerminalPattern& other) const;
};

/// A grammar symbol: a terminal pattern or a nonterminal id.
struct GrammarSymbol {
  bool is_terminal = true;
  TerminalPattern terminal;  ///< valid when is_terminal
  int nonterminal = -1;      ///< valid when !is_terminal

  static GrammarSymbol Terminal(TerminalPattern t);
  static GrammarSymbol Nonterminal(int id);

  std::string ToString(const class Grammar& grammar) const;
  bool operator==(const GrammarSymbol& other) const;
};

/// One production `lhs -> rhs`. RHS must be non-empty (SSDL needs no
/// epsilon productions; this keeps the Earley engine simple).
struct GrammarRule {
  int lhs = -1;
  std::vector<GrammarSymbol> rhs;
};

/// A context-free grammar over the condition-token alphabet. Nonterminals
/// are interned by name; rules are stored flat and indexed by LHS.
class Grammar {
 public:
  Grammar() = default;

  /// Interns `name`, returning its id (existing id if already present).
  int AddNonterminal(const std::string& name);

  std::optional<int> FindNonterminal(const std::string& name) const;
  const std::string& NonterminalName(int id) const { return names_[id]; }
  size_t num_nonterminals() const { return names_.size(); }

  /// Adds a rule; InvalidArgument for empty RHS or out-of-range ids.
  Status AddRule(GrammarRule rule);

  const std::vector<GrammarRule>& rules() const { return rules_; }
  const std::vector<int>& RulesFor(int nonterminal) const {
    return rules_by_lhs_[nonterminal];
  }

  /// True if an identical rule (same LHS and RHS) already exists.
  bool HasRule(const GrammarRule& rule) const;

  /// Multi-line listing of the rules, for diagnostics.
  std::string ToString() const;

 private:
  std::vector<std::string> names_;
  std::vector<GrammarRule> rules_;
  std::vector<std::vector<int>> rules_by_lhs_;  // nonterminal -> rule indices
};

}  // namespace gencompact

#endif  // GENCOMPACT_SSDL_GRAMMAR_H_
