#ifndef GENCOMPACT_SSDL_CHECK_MEMO_H_
#define GENCOMPACT_SSDL_CHECK_MEMO_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "schema/attribute_set.h"

namespace gencompact {

/// Key of one cross-query Check memo entry. The Checker's first-level memo
/// is keyed by interned ConditionId, so its entries die with the condition;
/// this second level keys on the condition's 64-bit *structural* fingerprint
/// instead, which a recurring query re-derives even after the original node
/// (and its id) is gone. `source_id` scopes the entry to one registered
/// source, and `epoch` is the source's description epoch: reloading a
/// description bumps the epoch, so entries computed against the old grammar
/// can never satisfy a lookup against the new one.
struct CheckMemoKey {
  uint64_t fingerprint = 0;
  uint32_t source_id = 0;
  uint64_t epoch = 0;

  bool operator==(const CheckMemoKey& other) const {
    return fingerprint == other.fingerprint && source_id == other.source_id &&
           epoch == other.epoch;
  }
};

struct CheckMemoKeyHash {
  size_t operator()(const CheckMemoKey& key) const {
    uint64_t x = key.fingerprint ^ (uint64_t{key.source_id} << 32) ^
                 (key.epoch * 0x9e3779b97f4a7c15ull);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return static_cast<size_t>(x ^ (x >> 31));
  }
};

/// A cross-query, capacity-bounded second-level memo for the paper's
/// Check(C, R) supportability test — the mediator-side capability cache of
/// the TSIMMIS/Garlic wrapper line. One instance is shared by every Checker
/// the mediator owns (planning and enforcement alike); a Checker consults it
/// on first-level miss and populates it when an Earley run completes, so
/// Check results survive queries that plan, die, and recur.
///
/// Structure mirrors the plan cache: N independently locked LRU shards
/// (keys distributed by hash), each owning its share of the capacity, so
/// concurrent planning threads neither race nor serialize on one mutex.
/// `capacity == 0` disables the memo entirely — Lookup always misses without
/// counting, Insert is a no-op — which keeps the zero-capacity configuration
/// bit-identical to a build without the memo.
///
/// Because a fingerprint is structural (not an identity), a 64-bit collision
/// or a stale entry would silently change plan feasibility. `verify_rate`
/// arms verify-on-hit: a deterministic 1-in-round(1/rate) sample of L2 hits
/// is re-checked by the Checker against a fresh Earley run; mismatches are
/// counted (and the entry repaired) instead of trusted. CI runs one leg at
/// verify_rate = 1 so every hit is cross-checked in at least one config.
class CheckMemo {
 public:
  struct Options {
    /// Total entries across shards; 0 disables the memo.
    size_t capacity = 4096;
    /// Independently locked LRU shards (>= 1).
    size_t shards = 8;
    /// Fraction of hits re-verified against a fresh Earley run (0 = never,
    /// 1 = every hit). Sampling is deterministic, not random.
    double verify_rate = 0.0;
  };

  explicit CheckMemo(const Options& options);
  explicit CheckMemo(size_t capacity, size_t shards = 8,
                     double verify_rate = 0.0)
      : CheckMemo(Options{capacity, shards, verify_rate}) {}

  CheckMemo(const CheckMemo&) = delete;
  CheckMemo& operator=(const CheckMemo&) = delete;

  /// False iff constructed with capacity 0 (the memo is a no-op then) or
  /// the auto-disable latch has tripped.
  bool enabled() const {
    return shard_capacity_ > 0 &&
           !auto_disabled_.load(std::memory_order_relaxed);
  }

  /// True once a sampled verification observed a fingerprint collision and
  /// permanently disabled the memo (see RecordVerifyOutcome).
  bool auto_disabled() const {
    return auto_disabled_.load(std::memory_order_relaxed);
  }

  /// Returns a copy of the memoized maximal-export-set family and refreshes
  /// the entry's recency, or nullopt on miss (or when disabled).
  std::optional<std::vector<AttributeSet>> Lookup(const CheckMemoKey& key);

  /// Inserts (or refreshes) an entry, evicting the shard's least recently
  /// used entry beyond its capacity. No-op when disabled.
  void Insert(const CheckMemoKey& key, std::vector<AttributeSet> family);

  /// Drops every entry belonging to `source_id` (any epoch) — called when a
  /// source's description is reloaded, so stale entries free their capacity
  /// immediately instead of aging out. Returns the number dropped.
  size_t InvalidateSource(uint32_t source_id);

  void Clear();

  /// Deterministic verify-on-hit sampler: true for 1 in round(1/verify_rate)
  /// hits (every hit at rate >= 1, never at rate <= 0).
  bool SampleVerifyHit();

  /// Records the outcome of one sampled verification. A mismatch means a
  /// fingerprint collision or a stale entry slipped through — the caller
  /// repairs the entry, and the memo DISABLES ITSELF permanently (one-way
  /// latch): a cache whose keys have demonstrably collided cannot be
  /// trusted on the un-sampled hits either, and correctness beats the memo's
  /// latency win. Lookup then always misses and Insert no-ops, exactly like
  /// capacity 0; entries are dropped so the memory comes back too.
  void RecordVerifyOutcome(bool matched);

  double verify_rate() const { return verify_rate_; }
  size_t capacity() const { return shard_capacity_ * shards_.size(); }
  size_t num_shards() const { return shards_.size(); }
  size_t size() const;

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;
    size_t insertions = 0;
    size_t refreshes = 0;
    size_t evictions = 0;
    size_t invalidated = 0;        ///< dropped by InvalidateSource
    size_t verified_hits = 0;      ///< sampled hits re-checked by Earley
    size_t verify_mismatches = 0;  ///< verifications that caught a bad entry
    bool auto_disabled = false;    ///< latched off after a verified mismatch
    size_t size = 0;
    size_t capacity = 0;
    size_t shards = 0;
    double hit_rate = 0.0;  ///< hits / (hits + misses); 0 before any lookup
  };
  Stats stats() const;

 private:
  struct Entry {
    CheckMemoKey key;
    std::vector<AttributeSet> family;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<CheckMemoKey, std::list<Entry>::iterator,
                       CheckMemoKeyHash>
        entries;
    size_t hits = 0;
    size_t misses = 0;
    size_t insertions = 0;
    size_t refreshes = 0;
    size_t evictions = 0;
  };

  Shard& ShardFor(const CheckMemoKey& key) {
    return *shards_[CheckMemoKeyHash{}(key) % shards_.size()];
  }

  size_t shard_capacity_;
  double verify_rate_;
  uint64_t verify_period_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> verify_ticker_{0};
  std::atomic<size_t> invalidated_{0};
  std::atomic<size_t> verified_hits_{0};
  std::atomic<size_t> verify_mismatches_{0};
  std::atomic<bool> auto_disabled_{false};  // one-way latch
};

}  // namespace gencompact

#endif  // GENCOMPACT_SSDL_CHECK_MEMO_H_
