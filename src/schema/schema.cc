#include "schema/schema.h"

#include <cassert>

namespace gencompact {

Schema::Schema(std::vector<AttributeDef> attributes)
    : attributes_(std::move(attributes)) {
  assert(attributes_.size() <= 64);
}

std::optional<int> Schema::IndexOf(std::string_view name) const {
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return static_cast<int>(i);
  }
  return std::nullopt;
}

Result<int> Schema::RequireIndex(std::string_view name) const {
  const std::optional<int> index = IndexOf(name);
  if (!index.has_value()) {
    return Status::NotFound("unknown attribute: " + std::string(name));
  }
  return *index;
}

Result<AttributeSet> Schema::MakeSet(const std::vector<std::string>& names) const {
  AttributeSet set;
  for (const std::string& name : names) {
    GC_ASSIGN_OR_RETURN(const int index, RequireIndex(name));
    set.Add(index);
  }
  return set;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < attributes_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attributes_[i].name;
    out += ": ";
    out += ValueTypeName(attributes_[i].type);
  }
  out += ")";
  return out;
}

}  // namespace gencompact
