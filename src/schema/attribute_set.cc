#include "schema/attribute_set.h"

#include <bit>
#include <cassert>

#include "schema/schema.h"

namespace gencompact {

AttributeSet AttributeSet::AllOf(size_t n) {
  assert(n <= 64);
  if (n == 0) return AttributeSet();
  if (n == 64) return AttributeSet(~uint64_t{0});
  return AttributeSet((uint64_t{1} << n) - 1);
}

size_t AttributeSet::size() const { return std::popcount(bits_); }

std::vector<int> AttributeSet::Indices() const {
  std::vector<int> out;
  out.reserve(size());
  uint64_t b = bits_;
  while (b != 0) {
    const int i = std::countr_zero(b);
    out.push_back(i);
    b &= b - 1;
  }
  return out;
}

std::string AttributeSet::ToString(const Schema& schema) const {
  std::string out = "{";
  bool first = true;
  for (int i : Indices()) {
    if (!first) out += ", ";
    first = false;
    if (static_cast<size_t>(i) < schema.num_attributes()) {
      out += schema.attribute(i).name;
    } else {
      out += "#" + std::to_string(i);
    }
  }
  out += "}";
  return out;
}

}  // namespace gencompact
