#ifndef GENCOMPACT_SCHEMA_ATTRIBUTE_SET_H_
#define GENCOMPACT_SCHEMA_ATTRIBUTE_SET_H_

#include <cstdint>
#include <string>
#include <vector>

namespace gencompact {

class Schema;

/// A set of attributes of one relation, stored as a bitset over schema
/// positions. Schemas are limited to 64 attributes, which is ample for the
/// web-form style sources the paper targets.
///
/// AttributeSets appear throughout the planner: requested projections (the
/// `A` in SP(C, A, R)), `Check` results, per-node `export` marks, Attr(C).
class AttributeSet {
 public:
  /// Empty set.
  AttributeSet() = default;

  static AttributeSet FromBits(uint64_t bits) { return AttributeSet(bits); }

  /// The set {0, 1, ..., n-1}; n must be <= 64.
  static AttributeSet AllOf(size_t n);

  bool empty() const { return bits_ == 0; }
  size_t size() const;
  uint64_t bits() const { return bits_; }

  bool Contains(int index) const { return (bits_ >> index) & 1u; }
  void Add(int index) { bits_ |= (uint64_t{1} << index); }
  void Remove(int index) { bits_ &= ~(uint64_t{1} << index); }

  bool IsSubsetOf(const AttributeSet& other) const {
    return (bits_ & ~other.bits_) == 0;
  }

  AttributeSet Union(const AttributeSet& other) const {
    return AttributeSet(bits_ | other.bits_);
  }
  AttributeSet Intersect(const AttributeSet& other) const {
    return AttributeSet(bits_ & other.bits_);
  }
  AttributeSet Minus(const AttributeSet& other) const {
    return AttributeSet(bits_ & ~other.bits_);
  }

  bool operator==(const AttributeSet& other) const { return bits_ == other.bits_; }
  bool operator!=(const AttributeSet& other) const { return bits_ != other.bits_; }
  bool operator<(const AttributeSet& other) const { return bits_ < other.bits_; }

  /// Ascending list of member indices.
  std::vector<int> Indices() const;

  /// Renders as "{a, b, c}" using the schema's attribute names.
  std::string ToString(const Schema& schema) const;

 private:
  explicit AttributeSet(uint64_t bits) : bits_(bits) {}

  uint64_t bits_ = 0;
};

}  // namespace gencompact

#endif  // GENCOMPACT_SCHEMA_ATTRIBUTE_SET_H_
