#ifndef GENCOMPACT_SCHEMA_SCHEMA_H_
#define GENCOMPACT_SCHEMA_SCHEMA_H_

#include <initializer_list>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "schema/attribute_set.h"

namespace gencompact {

/// A named, typed attribute of a relation.
struct AttributeDef {
  std::string name;
  ValueType type = ValueType::kString;
};

/// The schema of one relation (an Internet source is modeled as a relation,
/// per Section 3 of the paper). At most 64 attributes.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeDef> attributes);
  Schema(std::initializer_list<AttributeDef> attributes)
      : Schema(std::vector<AttributeDef>(attributes)) {}

  size_t num_attributes() const { return attributes_.size(); }
  const AttributeDef& attribute(int index) const { return attributes_[index]; }
  const std::vector<AttributeDef>& attributes() const { return attributes_; }

  /// Position of `name`, or nullopt if absent.
  std::optional<int> IndexOf(std::string_view name) const;

  /// Position of `name`, or NotFound.
  Result<int> RequireIndex(std::string_view name) const;

  /// Set of all attribute positions.
  AttributeSet AllAttributes() const {
    return AttributeSet::AllOf(attributes_.size());
  }

  /// Builds a set from attribute names; NotFound on any unknown name.
  Result<AttributeSet> MakeSet(const std::vector<std::string>& names) const;

  /// "rel(name: type, ...)"-style rendering of the attribute list.
  std::string ToString() const;

 private:
  std::vector<AttributeDef> attributes_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_SCHEMA_SCHEMA_H_
