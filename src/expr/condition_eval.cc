#include "expr/condition_eval.h"

namespace gencompact {

Result<bool> EvalCondition(const ConditionNode& cond, const Row& row,
                           const RowLayout& layout, const Schema& schema) {
  switch (cond.kind()) {
    case ConditionNode::Kind::kTrue:
      return true;
    case ConditionNode::Kind::kAtom: {
      const AtomicCondition& atom = cond.atom();
      GC_ASSIGN_OR_RETURN(const int index, schema.RequireIndex(atom.attribute));
      const int slot = layout.SlotOf(index);
      if (slot < 0) {
        return Status::NotFound("attribute " + atom.attribute +
                                " not present in row layout");
      }
      return EvalCompare(atom.op, row.value(static_cast<size_t>(slot)),
                         atom.constant);
    }
    case ConditionNode::Kind::kAnd: {
      for (const ConditionPtr& child : cond.children()) {
        GC_ASSIGN_OR_RETURN(const bool v,
                            EvalCondition(*child, row, layout, schema));
        if (!v) return false;
      }
      return true;
    }
    case ConditionNode::Kind::kOr: {
      for (const ConditionPtr& child : cond.children()) {
        GC_ASSIGN_OR_RETURN(const bool v,
                            EvalCondition(*child, row, layout, schema));
        if (v) return true;
      }
      return false;
    }
  }
  return Status::Internal("unreachable condition kind");
}

Result<bool> ConditionCoveredBy(const ConditionNode& cond,
                                const AttributeSet& attrs,
                                const Schema& schema) {
  GC_ASSIGN_OR_RETURN(const AttributeSet needed, cond.Attributes(schema));
  return needed.IsSubsetOf(attrs);
}

}  // namespace gencompact
