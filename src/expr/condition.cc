#include "expr/condition.h"

#include <cassert>

#include "expr/intern.h"

namespace gencompact {

std::string AtomicCondition::ToString() const {
  std::string out = attribute;
  out += ' ';
  out += CompareOpSymbol(op);
  out += ' ';
  out += constant.ToString();
  return out;
}

bool AtomicCondition::operator==(const AtomicCondition& other) const {
  return attribute == other.attribute && op == other.op &&
         constant == other.constant;
}

ConditionPtr ConditionNode::True() {
  return ConditionInterner::Global().Intern(Kind::kTrue, AtomicCondition{}, {});
}

ConditionPtr ConditionNode::Atom(std::string attribute, CompareOp op,
                                 Value constant) {
  return Atom(AtomicCondition{std::move(attribute), op, std::move(constant)});
}

ConditionPtr ConditionNode::Atom(AtomicCondition atom) {
  return ConditionInterner::Global().Intern(Kind::kAtom, std::move(atom), {});
}

ConditionPtr ConditionNode::And(std::vector<ConditionPtr> children) {
  return Connector(Kind::kAnd, std::move(children));
}

ConditionPtr ConditionNode::Or(std::vector<ConditionPtr> children) {
  return Connector(Kind::kOr, std::move(children));
}

ConditionPtr ConditionNode::Connector(Kind kind,
                                      std::vector<ConditionPtr> children) {
  assert(kind == Kind::kAnd || kind == Kind::kOr);
  assert(!children.empty());
  if (children.size() == 1) return children.front();
  return ConditionInterner::Global().Intern(kind, AtomicCondition{},
                                            std::move(children));
}

Result<AttributeSet> ConditionNode::Attributes(const Schema& schema) const {
  AttributeSet set;
  switch (kind_) {
    case Kind::kTrue:
      return set;
    case Kind::kAtom: {
      GC_ASSIGN_OR_RETURN(const int index, schema.RequireIndex(atom_.attribute));
      set.Add(index);
      return set;
    }
    case Kind::kAnd:
    case Kind::kOr: {
      for (const ConditionPtr& child : children_) {
        GC_ASSIGN_OR_RETURN(const AttributeSet child_set,
                            child->Attributes(schema));
        set = set.Union(child_set);
      }
      return set;
    }
  }
  return set;
}

size_t ConditionNode::CountAtoms() const {
  switch (kind_) {
    case Kind::kTrue:
      return 0;
    case Kind::kAtom:
      return 1;
    default: {
      size_t n = 0;
      for (const ConditionPtr& child : children_) n += child->CountAtoms();
      return n;
    }
  }
}

size_t ConditionNode::Depth() const {
  if (children_.empty()) return 1;
  size_t depth = 0;
  for (const ConditionPtr& child : children_) {
    depth = std::max(depth, child->Depth());
  }
  return depth + 1;
}

void ConditionNode::AppendTo(std::string* out) const {
  switch (kind_) {
    case Kind::kTrue:
      *out += "true";
      return;
    case Kind::kAtom:
      *out += atom_.ToString();
      return;
    case Kind::kAnd:
    case Kind::kOr: {
      const char* sep = kind_ == Kind::kAnd ? " and " : " or ";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) *out += sep;
        const ConditionNode& child = *children_[i];
        if (child.is_connector()) {
          *out += '(';
          child.AppendTo(out);
          *out += ')';
        } else {
          child.AppendTo(out);
        }
      }
      return;
    }
  }
}

std::string ConditionNode::ToString() const {
  std::string out;
  AppendTo(&out);
  return out;
}

bool ConditionNode::StructurallyEquals(const ConditionNode& other) const {
  if (this == &other) return true;  // interned: the common case
  // Fingerprints are structure-determined, so a mismatch proves inequality.
  if (fingerprint_ != other.fingerprint_ || kind_ != other.kind_) return false;
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kAtom:
      return atom_ == other.atom_;
    default: {
      if (children_.size() != other.children_.size()) return false;
      for (size_t i = 0; i < children_.size(); ++i) {
        if (children_[i].get() != other.children_[i].get() &&
            !children_[i]->StructurallyEquals(*other.children_[i])) {
          return false;
        }
      }
      return true;
    }
  }
}

}  // namespace gencompact
