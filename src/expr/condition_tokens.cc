#include "expr/condition_tokens.h"

namespace gencompact {

std::string CondToken::ToString() const {
  switch (type) {
    case Type::kAttr:
      return attr;
    case Type::kOp:
      return CompareOpSymbol(op);
    case Type::kConst:
      return value.ToString();
    case Type::kAnd:
      return "and";
    case Type::kOr:
      return "or";
    case Type::kLParen:
      return "(";
    case Type::kRParen:
      return ")";
    case Type::kTrue:
      return "true";
  }
  return "?";
}

bool CondToken::operator==(const CondToken& other) const {
  if (type != other.type) return false;
  switch (type) {
    case Type::kAttr:
      return attr == other.attr;
    case Type::kOp:
      return op == other.op;
    case Type::kConst:
      return value == other.value;
    default:
      return true;
  }
}

namespace {

void Emit(const ConditionNode& cond, std::vector<CondToken>* out) {
  switch (cond.kind()) {
    case ConditionNode::Kind::kTrue: {
      CondToken t;
      t.type = CondToken::Type::kTrue;
      out->push_back(std::move(t));
      return;
    }
    case ConditionNode::Kind::kAtom: {
      const AtomicCondition& atom = cond.atom();
      CondToken a;
      a.type = CondToken::Type::kAttr;
      a.attr = atom.attribute;
      out->push_back(std::move(a));
      CondToken o;
      o.type = CondToken::Type::kOp;
      o.op = atom.op;
      out->push_back(std::move(o));
      CondToken c;
      c.type = CondToken::Type::kConst;
      c.value = atom.constant;
      out->push_back(std::move(c));
      return;
    }
    case ConditionNode::Kind::kAnd:
    case ConditionNode::Kind::kOr: {
      const CondToken::Type sep = cond.kind() == ConditionNode::Kind::kAnd
                                      ? CondToken::Type::kAnd
                                      : CondToken::Type::kOr;
      for (size_t i = 0; i < cond.children().size(); ++i) {
        if (i > 0) {
          CondToken s;
          s.type = sep;
          out->push_back(std::move(s));
        }
        const ConditionNode& child = *cond.children()[i];
        if (child.is_connector()) {
          CondToken l;
          l.type = CondToken::Type::kLParen;
          out->push_back(std::move(l));
          Emit(child, out);
          CondToken r;
          r.type = CondToken::Type::kRParen;
          out->push_back(std::move(r));
        } else {
          Emit(child, out);
        }
      }
      return;
    }
  }
}

}  // namespace

std::vector<CondToken> TokenizeCondition(const ConditionNode& cond) {
  std::vector<CondToken> out;
  Emit(cond, &out);
  return out;
}

std::string TokensToString(const std::vector<CondToken>& tokens) {
  std::string out;
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ' ';
    out += tokens[i].ToString();
  }
  return out;
}

}  // namespace gencompact
