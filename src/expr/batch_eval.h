#ifndef GENCOMPACT_EXPR_BATCH_EVAL_H_
#define GENCOMPACT_EXPR_BATCH_EVAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "expr/condition.h"
#include "schema/schema.h"
#include "storage/column_batch.h"
#include "storage/row.h"

namespace gencompact {

/// A condition compiled once per scan: the type/name resolution that
/// EvalCondition re-derives per row (schema name lookup, layout slot,
/// kernel choice per atom) happens in Compile(), and evaluation afterwards
/// is infallible — both entry points below can no longer fail.
///
/// Two entry points share one compiled program:
///   - Matches(row): the row path. Slot loads + EvalCompare, no schema
///     lookups, no Result<bool> per row. Const and thread-safe.
///   - FilterBatch(batch): the vectorized path. Each atom runs as a typed
///     kernel over the batch's selection vector; ∧ composes by chaining
///     selections (each child narrows the survivor list), ∨ by evaluating
///     children on the not-yet-matched remainder and merging the disjoint
///     match lists in row order. Uses per-node scratch buffers, so ONE
///     thread per evaluator (create one per scan; they are cheap).
///
/// Semantics are exactly EvalCondition's: NULL cells fail every atom,
/// string predicates on non-strings are false, numeric cells compare
/// numerically across kInt/kDouble, and mismatched-type comparisons order
/// by type rank (Value::Compare).
class CompiledEvaluator {
 public:
  /// Resolves and type-checks `cond` against `layout`/`schema`. NotFound
  /// (same statuses EvalCondition would produce row-by-row) if the
  /// condition mentions an attribute missing from the schema or layout.
  static Result<CompiledEvaluator> Compile(const ConditionNode& cond,
                                           const RowLayout& layout,
                                           const Schema& schema);

  /// Row path: true iff the row (laid out by the compiled layout) matches.
  bool Matches(const Row& row) const { return MatchNode(root_, row); }

  /// Batch path: fills batch->selection with the surviving row ids of
  /// [batch->begin, batch->end), ascending. Not thread-safe (scratch).
  void FilterBatch(ColumnBatch* batch) const;

 private:
  enum class Kernel : uint8_t {
    kTrue,           ///< the trivially true condition
    kAnd,            ///< intersect child selections (chained)
    kOr,             ///< merge child selections (disjoint remainders)
    kGeneralCompare, ///< atom fallback: materialize Value + EvalCompare
    kNumericCmp,     ///< numeric column vs numeric constant
    kStringCmp,      ///< string column vs string constant (=, !=, <, ...)
    kContains,       ///< string column contains string constant
    kStartsWith,     ///< string column startswith string constant
    kBoolCmp,        ///< bool column vs bool constant
    kConstFalse,     ///< statically false for every row (e.g. NULL constant)
    kNonNullConst,   ///< fixed result for non-null cells (type-rank compare)
  };

  struct Node {
    Kernel kernel = Kernel::kTrue;
    // Atom state.
    int slot = -1;                ///< column index in the compiled layout
    CompareOp op = CompareOp::kEq;
    Value constant;
    bool const_is_int = false;    ///< numeric constant is kInt
    int64_t const_int = 0;
    double const_dbl = 0.0;
    bool lt = false, eq = false, gt = false;  ///< op as a three-way mask
    // Connector state.
    std::vector<size_t> children;
  };

  size_t root_ = 0;
  std::vector<Node> nodes_;

  // Per-node scratch (selection buffers, ∨ mark bitmaps): sized to the
  // batch width on first use, reused across batches of one scan.
  mutable std::vector<std::vector<uint32_t>> sel_scratch_;
  mutable std::vector<std::vector<uint32_t>> rem_scratch_;  ///< ∨ remainders
  mutable std::vector<std::vector<uint8_t>> mark_scratch_;  ///< ∨ match marks
  mutable std::vector<uint32_t> iota_;  ///< dense root selection

  Result<size_t> CompileNode(const ConditionNode& cond, const RowLayout& layout,
                             const Schema& schema);

  bool MatchNode(size_t id, const Row& row) const;

  /// Filters `in` (n ascending row ids) through node `id`; survivors land
  /// in sel_scratch_[id], count returned. `begin` is the batch's first row
  /// id (index base of the ∨ mark bitmaps).
  size_t FilterNode(size_t id, const uint32_t* in, size_t n,
                    uint32_t begin, const ColumnStore& store) const;

  size_t FilterAtom(const Node& node, const Column& col, const uint32_t* in,
                    size_t n, uint32_t* out) const;
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXPR_BATCH_EVAL_H_
