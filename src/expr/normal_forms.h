#ifndef GENCOMPACT_EXPR_NORMAL_FORMS_H_
#define GENCOMPACT_EXPR_NORMAL_FORMS_H_

#include <cstddef>

#include "common/result.h"
#include "expr/condition.h"

namespace gencompact {

/// Converts `cond` to conjunctive normal form: an ∧ of clauses, each clause
/// an ∨ of atoms (degenerate levels collapse, so the result may be a single
/// clause or atom). This is the transformation Garlic applies (Section 2).
/// ResourceExhausted if the result would exceed `max_terms` clauses.
Result<ConditionPtr> ToCnf(const ConditionPtr& cond, size_t max_terms = 4096);

/// Converts `cond` to disjunctive normal form: an ∨ of terms, each term an
/// ∧ of atoms. ResourceExhausted if the result would exceed `max_terms`
/// terms.
Result<ConditionPtr> ToDnf(const ConditionPtr& cond, size_t max_terms = 4096);

/// True iff `cond` is an ∧ of (∨ of atoms) after canonicalization.
bool IsCnf(const ConditionNode& cond);

/// True iff `cond` is an ∨ of (∧ of atoms) after canonicalization.
bool IsDnf(const ConditionNode& cond);

}  // namespace gencompact

#endif  // GENCOMPACT_EXPR_NORMAL_FORMS_H_
