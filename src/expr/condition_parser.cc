#include "expr/condition_parser.h"

#include <cctype>
#include <string>
#include <vector>

#include "common/strings.h"

namespace gencompact {

namespace {

struct Lexeme {
  enum class Type { kIdent, kSymbol, kInt, kFloat, kString, kEnd };
  Type type = Type::kEnd;
  std::string text;
  int64_t int_value = 0;
  double float_value = 0.0;
  size_t offset = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Lexeme>> Run() {
    std::vector<Lexeme> out;
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size()) break;
      GC_ASSIGN_OR_RETURN(Lexeme lexeme, Next());
      out.push_back(std::move(lexeme));
    }
    Lexeme end;
    end.type = Lexeme::Type::kEnd;
    end.offset = text_.size();
    out.push_back(std::move(end));
    return out;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<Lexeme> Next() {
    const char c = text_[pos_];
    Lexeme lexeme;
    lexeme.offset = pos_;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      // Identifiers may be dot-qualified ("cars.make") for the multi-source
      // join extension.
      const size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_' || text_[pos_] == '.')) {
        ++pos_;
      }
      lexeme.type = Lexeme::Type::kIdent;
      lexeme.text = std::string(text_.substr(start, pos_ - start));
      return lexeme;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < text_.size() &&
         std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
      return Number();
    }
    if (c == '"') return QuotedString();
    // Multi-char symbols first.
    static constexpr std::string_view kSymbols[] = {
        "<=", ">=", "!=", "<>", "==", "&&", "||", "=", "<", ">",
        "(",  ")",  "{",  "}",  ","};
    for (std::string_view sym : kSymbols) {
      if (text_.substr(pos_, sym.size()) == sym) {
        lexeme.type = Lexeme::Type::kSymbol;
        lexeme.text = std::string(sym);
        pos_ += sym.size();
        return lexeme;
      }
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(pos_));
  }

  Result<Lexeme> Number() {
    const size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    bool is_float = false;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' && !is_float) {
        is_float = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string digits(text_.substr(start, pos_ - start));
    Lexeme lexeme;
    lexeme.offset = start;
    if (is_float) {
      lexeme.type = Lexeme::Type::kFloat;
      lexeme.float_value = std::stod(digits);
    } else {
      lexeme.type = Lexeme::Type::kInt;
      lexeme.int_value = std::stoll(digits);
    }
    lexeme.text = digits;
    return lexeme;
  }

  Result<Lexeme> QuotedString() {
    const size_t start = pos_;
    ++pos_;  // opening quote
    std::string value;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) {
        ++pos_;
      }
      value += text_[pos_];
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated string literal at offset " +
                                     std::to_string(start));
    }
    ++pos_;  // closing quote
    Lexeme lexeme;
    lexeme.type = Lexeme::Type::kString;
    lexeme.text = std::move(value);
    lexeme.offset = start;
    return lexeme;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  explicit Parser(std::vector<Lexeme> lexemes) : lexemes_(std::move(lexemes)) {}

  Result<ConditionPtr> Parse() {
    GC_ASSIGN_OR_RETURN(ConditionPtr cond, ParseOr());
    if (!AtEnd()) {
      return Status::InvalidArgument("trailing input after condition at offset " +
                                     std::to_string(Peek().offset));
    }
    return cond;
  }

 private:
  const Lexeme& Peek() const { return lexemes_[pos_]; }
  bool AtEnd() const { return Peek().type == Lexeme::Type::kEnd; }
  void Advance() { ++pos_; }

  bool ConsumeKeyword(std::string_view word) {
    if (Peek().type == Lexeme::Type::kIdent && Peek().text == word) {
      Advance();
      return true;
    }
    return false;
  }

  bool ConsumeSymbol(std::string_view sym) {
    if (Peek().type == Lexeme::Type::kSymbol && Peek().text == sym) {
      Advance();
      return true;
    }
    return false;
  }

  Result<ConditionPtr> ParseOr() {
    GC_ASSIGN_OR_RETURN(ConditionPtr first, ParseAnd());
    std::vector<ConditionPtr> children = {std::move(first)};
    while (ConsumeKeyword("or") || ConsumeSymbol("||")) {
      GC_ASSIGN_OR_RETURN(ConditionPtr next, ParseAnd());
      children.push_back(std::move(next));
    }
    return ConditionNode::Or(std::move(children));
  }

  Result<ConditionPtr> ParseAnd() {
    GC_ASSIGN_OR_RETURN(ConditionPtr first, ParseFactor());
    std::vector<ConditionPtr> children = {std::move(first)};
    while (ConsumeKeyword("and") || ConsumeSymbol("&&")) {
      GC_ASSIGN_OR_RETURN(ConditionPtr next, ParseFactor());
      children.push_back(std::move(next));
    }
    return ConditionNode::And(std::move(children));
  }

  Result<ConditionPtr> ParseFactor() {
    if (ConsumeSymbol("(")) {
      GC_ASSIGN_OR_RETURN(ConditionPtr inner, ParseOr());
      if (!ConsumeSymbol(")")) {
        return Status::InvalidArgument("expected ')' at offset " +
                                       std::to_string(Peek().offset));
      }
      return inner;
    }
    if (Peek().type != Lexeme::Type::kIdent) {
      return Status::InvalidArgument("expected attribute name at offset " +
                                     std::to_string(Peek().offset));
    }
    if (Peek().text == "true") {
      Advance();
      return ConditionNode::True();
    }
    const std::string attribute = Peek().text;
    Advance();
    return ParseAtomTail(attribute);
  }

  Result<ConditionPtr> ParseAtomTail(const std::string& attribute) {
    // `attr in { v1, v2, ... }` sugar.
    if (Peek().type == Lexeme::Type::kIdent && Peek().text == "in") {
      Advance();
      if (!ConsumeSymbol("{")) {
        return Status::InvalidArgument("expected '{' after 'in' at offset " +
                                       std::to_string(Peek().offset));
      }
      std::vector<ConditionPtr> alternatives;
      while (true) {
        GC_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        alternatives.push_back(
            ConditionNode::Atom(attribute, CompareOp::kEq, std::move(v)));
        if (ConsumeSymbol(",")) continue;
        break;
      }
      if (!ConsumeSymbol("}")) {
        return Status::InvalidArgument("expected '}' closing 'in' list at offset " +
                                       std::to_string(Peek().offset));
      }
      return ConditionNode::Or(std::move(alternatives));
    }

    std::string op_text;
    if (Peek().type == Lexeme::Type::kSymbol) {
      op_text = Peek().text;
      Advance();
    } else if (Peek().type == Lexeme::Type::kIdent &&
               (Peek().text == "contains" || Peek().text == "startswith")) {
      op_text = Peek().text;
      Advance();
    } else {
      return Status::InvalidArgument("expected comparison operator at offset " +
                                     std::to_string(Peek().offset));
    }
    const std::optional<CompareOp> op = ParseCompareOp(op_text);
    if (!op.has_value()) {
      return Status::InvalidArgument("unknown operator '" + op_text + "'");
    }
    GC_ASSIGN_OR_RETURN(Value v, ParseLiteral());
    return ConditionNode::Atom(attribute, *op, std::move(v));
  }

  Result<Value> ParseLiteral() {
    const Lexeme& lexeme = Peek();
    switch (lexeme.type) {
      case Lexeme::Type::kInt: {
        const int64_t v = lexeme.int_value;
        Advance();
        return Value::Int(v);
      }
      case Lexeme::Type::kFloat: {
        const double v = lexeme.float_value;
        Advance();
        return Value::Double(v);
      }
      case Lexeme::Type::kString: {
        std::string v = lexeme.text;
        Advance();
        return Value::String(std::move(v));
      }
      case Lexeme::Type::kIdent: {
        if (lexeme.text == "true" || lexeme.text == "false") {
          const bool v = lexeme.text == "true";
          Advance();
          return Value::Bool(v);
        }
        if (lexeme.text == "null") {
          Advance();
          return Value::Null();
        }
        return Status::InvalidArgument("expected literal, got identifier '" +
                                       lexeme.text + "'");
      }
      default:
        return Status::InvalidArgument("expected literal at offset " +
                                       std::to_string(lexeme.offset));
    }
  }

  std::vector<Lexeme> lexemes_;
  size_t pos_ = 0;
};

}  // namespace

Result<ConditionPtr> ParseCondition(std::string_view text) {
  Lexer lexer(text);
  GC_ASSIGN_OR_RETURN(std::vector<Lexeme> lexemes, lexer.Run());
  Parser parser(std::move(lexemes));
  return parser.Parse();
}

}  // namespace gencompact
