#include "expr/compare_op.h"

#include "common/strings.h"

namespace gencompact {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
    case CompareOp::kContains:
      return "contains";
    case CompareOp::kStartsWith:
      return "startswith";
  }
  return "?";
}

std::optional<CompareOp> ParseCompareOp(std::string_view symbol) {
  if (symbol == "=" || symbol == "==") return CompareOp::kEq;
  if (symbol == "!=" || symbol == "<>") return CompareOp::kNe;
  if (symbol == "<") return CompareOp::kLt;
  if (symbol == "<=") return CompareOp::kLe;
  if (symbol == ">") return CompareOp::kGt;
  if (symbol == ">=") return CompareOp::kGe;
  if (symbol == "contains") return CompareOp::kContains;
  if (symbol == "startswith") return CompareOp::kStartsWith;
  return std::nullopt;
}

bool EvalCompare(CompareOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return false;
  switch (op) {
    case CompareOp::kContains:
      return lhs.type() == ValueType::kString &&
             rhs.type() == ValueType::kString &&
             Contains(lhs.string_value(), rhs.string_value());
    case CompareOp::kStartsWith:
      return lhs.type() == ValueType::kString &&
             rhs.type() == ValueType::kString &&
             StartsWith(lhs.string_value(), rhs.string_value());
    default:
      break;
  }
  const int c = lhs.Compare(rhs);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
    default:
      return false;
  }
}

}  // namespace gencompact
