#include "expr/simplify.h"

#include "common/strings.h"
#include "expr/canonical.h"
#include "expr/intern.h"

namespace gencompact {

namespace {

bool SameAttribute(const AtomicCondition& a, const AtomicCondition& b) {
  return a.attribute == b.attribute;
}

bool IsPrefixOf(const Value& p, const Value& q) {
  return p.type() == ValueType::kString && q.type() == ValueType::kString &&
         StartsWith(q.string_value(), p.string_value());
}

bool StringContains(const Value& hay, const Value& needle) {
  return hay.type() == ValueType::kString &&
         needle.type() == ValueType::kString &&
         Contains(hay.string_value(), needle.string_value());
}

}  // namespace

bool AtomImplies(const AtomicCondition& a, const AtomicCondition& b) {
  if (!SameAttribute(a, b)) return false;
  if (a == b) return true;

  // x = v implies b iff v itself satisfies b.
  if (a.op == CompareOp::kEq) {
    return EvalCompare(b.op, a.constant, b.constant);
  }

  const Value& v = a.constant;
  const Value& w = b.constant;
  switch (a.op) {
    case CompareOp::kLt:
      // x < v ⇒ x < w iff v <= w;  x < v ⇒ x <= w iff v <= w (dense order).
      if (b.op == CompareOp::kLt || b.op == CompareOp::kLe) {
        return v.is_numeric() && w.is_numeric() && v.Compare(w) <= 0;
      }
      return false;
    case CompareOp::kLe:
      if (b.op == CompareOp::kLe) {
        return v.is_numeric() && w.is_numeric() && v.Compare(w) <= 0;
      }
      if (b.op == CompareOp::kLt) {
        return v.is_numeric() && w.is_numeric() && v.Compare(w) < 0;
      }
      return false;
    case CompareOp::kGt:
      if (b.op == CompareOp::kGt || b.op == CompareOp::kGe) {
        return v.is_numeric() && w.is_numeric() && v.Compare(w) >= 0;
      }
      return false;
    case CompareOp::kGe:
      if (b.op == CompareOp::kGe) {
        return v.is_numeric() && w.is_numeric() && v.Compare(w) >= 0;
      }
      if (b.op == CompareOp::kGt) {
        return v.is_numeric() && w.is_numeric() && v.Compare(w) > 0;
      }
      return false;
    case CompareOp::kStartsWith:
      // x startswith p ⇒ x startswith q iff q prefix of p;
      // x startswith p ⇒ x contains q if p contains q.
      if (b.op == CompareOp::kStartsWith) return IsPrefixOf(w, v);
      if (b.op == CompareOp::kContains) return StringContains(v, w);
      return false;
    case CompareOp::kContains:
      // x contains p ⇒ x contains q if p contains q.
      return b.op == CompareOp::kContains && StringContains(v, w);
    default:
      return false;
  }
}

bool AtomsContradict(const AtomicCondition& a, const AtomicCondition& b) {
  if (!SameAttribute(a, b)) return false;
  // x = v: contradiction iff v fails the other predicate.
  if (a.op == CompareOp::kEq) return !EvalCompare(b.op, a.constant, b.constant);
  if (b.op == CompareOp::kEq) return !EvalCompare(a.op, b.constant, a.constant);

  const Value& v = a.constant;
  const Value& w = b.constant;
  const bool numeric = v.is_numeric() && w.is_numeric();
  const auto upper_vs_lower = [&](CompareOp upper_op, const Value& upper,
                                  CompareOp lower_op, const Value& lower) {
    // x (< | <=) upper  ∧  x (> | >=) lower.
    const int c = upper.Compare(lower);
    if (c < 0) return true;  // upper bound below lower bound
    if (c == 0) {
      // Equal bounds: only x == bound could work, excluded unless both
      // inclusive.
      return upper_op == CompareOp::kLt || lower_op == CompareOp::kGt;
    }
    return false;
  };
  if (numeric) {
    const bool a_upper = a.op == CompareOp::kLt || a.op == CompareOp::kLe;
    const bool b_upper = b.op == CompareOp::kLt || b.op == CompareOp::kLe;
    const bool a_lower = a.op == CompareOp::kGt || a.op == CompareOp::kGe;
    const bool b_lower = b.op == CompareOp::kGt || b.op == CompareOp::kGe;
    if (a_upper && b_lower) return upper_vs_lower(a.op, v, b.op, w);
    if (b_upper && a_lower) return upper_vs_lower(b.op, w, a.op, v);
  }
  if (a.op == CompareOp::kStartsWith && b.op == CompareOp::kStartsWith) {
    // Two prefixes are jointly satisfiable only if one is a prefix of the
    // other.
    return !IsPrefixOf(v, w) && !IsPrefixOf(w, v);
  }
  return false;
}

namespace {

// Conservative implication between arbitrary conditions. Sound, not
// complete.
bool Implies(const ConditionNode& a, const ConditionNode& b) {
  if (b.is_true()) return true;
  if (a.is_true()) return b.is_true();
  if (a.is_atom() && b.is_atom()) return AtomImplies(a.atom(), b.atom());
  if (a.StructurallyEquals(b)) return true;
  // a implies (… ∨ b_i ∨ …) if it implies some disjunct.
  if (b.kind() == ConditionNode::Kind::kOr) {
    for (const ConditionPtr& child : b.children()) {
      if (Implies(a, *child)) return true;
    }
  }
  // a implies (b_1 ∧ … ∧ b_k) only if it implies all conjuncts.
  if (b.kind() == ConditionNode::Kind::kAnd) {
    bool all = true;
    for (const ConditionPtr& child : b.children()) {
      if (!Implies(a, *child)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  // (a_1 ∧ … ∧ a_k) implies b if some conjunct implies b.
  if (a.kind() == ConditionNode::Kind::kAnd) {
    for (const ConditionPtr& child : a.children()) {
      if (Implies(*child, b)) return true;
    }
  }
  // (a_1 ∨ … ∨ a_k) implies b only if every disjunct implies b.
  if (a.kind() == ConditionNode::Kind::kOr) {
    bool all = true;
    for (const ConditionPtr& child : a.children()) {
      if (!Implies(*child, b)) {
        all = false;
        break;
      }
    }
    if (all) return true;
  }
  return false;
}

// x (< v | >= v) style tautology detection for ∨ nodes.
bool AtomsExhaustive(const AtomicCondition& a, const AtomicCondition& b) {
  if (!SameAttribute(a, b)) return false;
  const Value& v = a.constant;
  const Value& w = b.constant;
  // ne v ∨ anything-matching-v: ne v alone misses only x == v.
  if (a.op == CompareOp::kNe) return EvalCompare(b.op, v, w);
  if (b.op == CompareOp::kNe) return EvalCompare(a.op, w, v);
  if (!v.is_numeric() || !w.is_numeric()) return false;
  const bool a_upper = a.op == CompareOp::kLt || a.op == CompareOp::kLe;
  const bool b_upper = b.op == CompareOp::kLt || b.op == CompareOp::kLe;
  const bool a_lower = a.op == CompareOp::kGt || a.op == CompareOp::kGe;
  const bool b_lower = b.op == CompareOp::kGt || b.op == CompareOp::kGe;
  const auto covers_line = [](CompareOp upper_op, const Value& upper,
                              CompareOp lower_op, const Value& lower) {
    // x <= upper ∨ x >= lower covers everything iff lower <= upper (with
    // at least one bound inclusive when equal).
    const int c = lower.Compare(upper);
    if (c < 0) return true;
    if (c == 0) {
      return upper_op == CompareOp::kLe || lower_op == CompareOp::kGe;
    }
    return false;
  };
  if (a_upper && b_lower) return covers_line(a.op, v, b.op, w);
  if (b_upper && a_lower) return covers_line(b.op, w, a.op, v);
  return false;
}

// nullptr encodes FALSE throughout the recursion.
ConditionPtr SimplifyRec(const ConditionPtr& cond) {
  switch (cond->kind()) {
    case ConditionNode::Kind::kTrue:
    case ConditionNode::Kind::kAtom:
      return cond;
    case ConditionNode::Kind::kAnd:
    case ConditionNode::Kind::kOr:
      break;
  }
  const bool is_and = cond->kind() == ConditionNode::Kind::kAnd;

  // Simplify children; splice same-kind connectors; fold constants.
  std::vector<ConditionPtr> children;
  for (const ConditionPtr& raw_child : cond->children()) {
    ConditionPtr child = SimplifyRec(raw_child);
    if (child == nullptr) {          // FALSE child
      if (is_and) return nullptr;    // ∧ with FALSE is FALSE
      continue;                      // ∨ drops it
    }
    if (child->is_true()) {
      if (!is_and) return ConditionNode::True();  // ∨ with TRUE is TRUE
      continue;                                   // ∧ drops it
    }
    if (child->kind() == cond->kind()) {
      for (const ConditionPtr& grandchild : child->children()) {
        children.push_back(grandchild);
      }
    } else {
      children.push_back(child);
    }
  }
  if (children.empty()) {
    return is_and ? ConditionNode::True() : nullptr;
  }

  // Idempotence: structural dedup (keep first occurrence). Interned-pointer
  // identity via ConditionSet — no rendered keys.
  {
    ConditionSet seen;
    std::vector<ConditionPtr> unique;
    for (ConditionPtr& child : children) {
      if (seen.Insert(child)) {
        unique.push_back(std::move(child));
      }
    }
    children = std::move(unique);
  }

  // Pairwise atom reasoning: contradictions kill an ∧; exhaustive pairs
  // make an ∨ true.
  for (size_t i = 0; i < children.size(); ++i) {
    if (!children[i]->is_atom()) continue;
    for (size_t j = i + 1; j < children.size(); ++j) {
      if (!children[j]->is_atom()) continue;
      if (is_and && AtomsContradict(children[i]->atom(), children[j]->atom())) {
        return nullptr;
      }
      if (!is_and && AtomsExhaustive(children[i]->atom(), children[j]->atom())) {
        return ConditionNode::True();
      }
    }
  }

  // Absorption / subsumption. In an ∧, drop X when some other child Y
  // implies X (X is redundant). In an ∨, drop X when X implies some other
  // child Y (X is covered). Mutual implication keeps the earliest child.
  std::vector<bool> removed(children.size(), false);
  for (size_t i = 0; i < children.size(); ++i) {
    for (size_t j = 0; j < children.size() && !removed[i]; ++j) {
      if (i == j || removed[j]) continue;
      const bool redundant = is_and ? Implies(*children[j], *children[i])
                                    : Implies(*children[i], *children[j]);
      if (!redundant) continue;
      const bool mutual = is_and ? Implies(*children[i], *children[j])
                                 : Implies(*children[j], *children[i]);
      if (mutual && j > i) continue;  // keep the earliest of an equal pair
      removed[i] = true;
    }
  }
  std::vector<ConditionPtr> kept;
  for (size_t i = 0; i < children.size(); ++i) {
    if (!removed[i]) kept.push_back(children[i]);
  }
  if (kept.empty()) return is_and ? ConditionNode::True() : nullptr;
  return ConditionNode::Connector(cond->kind(), std::move(kept));
}

}  // namespace

ConditionPtr SimplifyCondition(const ConditionPtr& cond) {
  return SimplifyRec(Canonicalize(cond));
}

}  // namespace gencompact
