#ifndef GENCOMPACT_EXPR_CONDITION_EVAL_H_
#define GENCOMPACT_EXPR_CONDITION_EVAL_H_

#include "common/result.h"
#include "expr/condition.h"
#include "schema/schema.h"
#include "storage/row.h"

namespace gencompact {

/// Evaluates `cond` against a row laid out by `layout` for `schema`.
/// NotFound if the condition references an attribute absent from the layout
/// (the mediator must fetch every attribute it filters on).
Result<bool> EvalCondition(const ConditionNode& cond, const Row& row,
                           const RowLayout& layout, const Schema& schema);

/// True iff all attributes mentioned by `cond` are available in `attrs`.
/// Used to validate mediator-side selections before execution.
Result<bool> ConditionCoveredBy(const ConditionNode& cond,
                                const AttributeSet& attrs,
                                const Schema& schema);

}  // namespace gencompact

#endif  // GENCOMPACT_EXPR_CONDITION_EVAL_H_
