#include "expr/batch_eval.h"

#include <cassert>
#include <cstring>

#include "common/strings.h"
#include "expr/compare_op.h"

namespace gencompact {

namespace {

// Three-way comparison identical to the Value::Compare numeric arm.
inline int ThreeWay(double a, double b) { return a == b ? 0 : (a < b ? -1 : 1); }
inline int ThreeWay(int64_t a, int64_t b) { return a == b ? 0 : (a < b ? -1 : 1); }

// Type rank used by Value::Compare for cross-type ordering.
int TypeRankOf(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
  }
  return 4;
}

}  // namespace

Result<CompiledEvaluator> CompiledEvaluator::Compile(const ConditionNode& cond,
                                                     const RowLayout& layout,
                                                     const Schema& schema) {
  CompiledEvaluator evaluator;
  GC_ASSIGN_OR_RETURN(evaluator.root_,
                      evaluator.CompileNode(cond, layout, schema));
  evaluator.sel_scratch_.resize(evaluator.nodes_.size());
  evaluator.rem_scratch_.resize(evaluator.nodes_.size());
  evaluator.mark_scratch_.resize(evaluator.nodes_.size());
  return evaluator;
}

Result<size_t> CompiledEvaluator::CompileNode(const ConditionNode& cond,
                                              const RowLayout& layout,
                                              const Schema& schema) {
  Node node;
  switch (cond.kind()) {
    case ConditionNode::Kind::kTrue:
      node.kernel = Kernel::kTrue;
      break;
    case ConditionNode::Kind::kAnd:
    case ConditionNode::Kind::kOr: {
      node.kernel = cond.kind() == ConditionNode::Kind::kAnd ? Kernel::kAnd
                                                             : Kernel::kOr;
      for (const ConditionPtr& child : cond.children()) {
        GC_ASSIGN_OR_RETURN(const size_t id,
                            CompileNode(*child, layout, schema));
        node.children.push_back(id);
      }
      break;
    }
    case ConditionNode::Kind::kAtom: {
      const AtomicCondition& atom = cond.atom();
      GC_ASSIGN_OR_RETURN(const int index,
                          schema.RequireIndex(atom.attribute));
      const int slot = layout.SlotOf(index);
      if (slot < 0) {
        return Status::NotFound("attribute " + atom.attribute +
                                " not present in row layout");
      }
      node.slot = slot;
      node.op = atom.op;
      node.constant = atom.constant;
      const ValueType column_type = schema.attribute(index).type;
      const ValueType const_type = atom.constant.type();

      // op as a three-way mask: result = {lt,eq,gt}[sign(Compare)+1].
      switch (atom.op) {
        case CompareOp::kEq:
          node.eq = true;
          break;
        case CompareOp::kNe:
          node.lt = node.gt = true;
          break;
        case CompareOp::kLt:
          node.lt = true;
          break;
        case CompareOp::kLe:
          node.lt = node.eq = true;
          break;
        case CompareOp::kGt:
          node.gt = true;
          break;
        case CompareOp::kGe:
          node.eq = node.gt = true;
          break;
        case CompareOp::kContains:
        case CompareOp::kStartsWith:
          break;
      }

      // Kernel selection (EvalCompare semantics, decided once):
      if (const_type == ValueType::kNull) {
        node.kernel = Kernel::kConstFalse;  // NULL operand: always false
      } else if (atom.op == CompareOp::kContains ||
                 atom.op == CompareOp::kStartsWith) {
        // String predicates require strings on BOTH sides.
        if (column_type == ValueType::kString &&
            const_type == ValueType::kString) {
          node.kernel = atom.op == CompareOp::kContains ? Kernel::kContains
                                                        : Kernel::kStartsWith;
        } else {
          node.kernel = Kernel::kConstFalse;
        }
      } else if ((column_type == ValueType::kInt ||
                  column_type == ValueType::kDouble) &&
                 (const_type == ValueType::kInt ||
                  const_type == ValueType::kDouble)) {
        node.kernel = Kernel::kNumericCmp;
        node.const_is_int = const_type == ValueType::kInt;
        node.const_int = node.const_is_int ? atom.constant.int_value() : 0;
        node.const_dbl = atom.constant.AsDouble();
      } else if (column_type == ValueType::kString &&
                 const_type == ValueType::kString) {
        node.kernel = Kernel::kStringCmp;
      } else if (column_type == ValueType::kBool &&
                 const_type == ValueType::kBool) {
        node.kernel = Kernel::kBoolCmp;
      } else {
        // Type ranks differ for every non-null cell: the atom is a fixed
        // result (false for null cells, like every atom).
        const int c = ThreeWay(static_cast<int64_t>(TypeRankOf(column_type)),
                               static_cast<int64_t>(TypeRankOf(const_type)));
        const bool result = (c < 0 && node.lt) || (c == 0 && node.eq) ||
                            (c > 0 && node.gt);
        node.kernel = result ? Kernel::kNonNullConst : Kernel::kConstFalse;
      }
      break;
    }
  }
  nodes_.push_back(std::move(node));
  return nodes_.size() - 1;
}

bool CompiledEvaluator::MatchNode(size_t id, const Row& row) const {
  const Node& node = nodes_[id];
  switch (node.kernel) {
    case Kernel::kTrue:
      return true;
    case Kernel::kAnd:
      for (const size_t child : node.children) {
        if (!MatchNode(child, row)) return false;
      }
      return true;
    case Kernel::kOr:
      for (const size_t child : node.children) {
        if (MatchNode(child, row)) return true;
      }
      return false;
    default:
      // Every atom kernel evaluates identically on the row path.
      return EvalCompare(node.op, row.value(static_cast<size_t>(node.slot)),
                         node.constant);
  }
}

size_t CompiledEvaluator::FilterAtom(const Node& node, const Column& col,
                                     const uint32_t* in, size_t n,
                                     uint32_t* out) const {
  size_t m = 0;
  switch (node.kernel) {
    case Kernel::kConstFalse:
      break;
    case Kernel::kNonNullConst:
      for (size_t i = 0; i < n; ++i) {
        if (!col.IsNull(in[i])) out[m++] = in[i];
      }
      break;
    case Kernel::kNumericCmp: {
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = in[i];
        const ValueType tag = col.TagAt(r);
        if (tag == ValueType::kNull) continue;
        int c;
        if (tag == ValueType::kInt && node.const_is_int) {
          c = ThreeWay(col.nums[r], node.const_int);  // exact int/int
        } else {
          c = ThreeWay(col.NumericAt(r), node.const_dbl);
        }
        if ((c < 0 && node.lt) || (c == 0 && node.eq) || (c > 0 && node.gt)) {
          out[m++] = r;
        }
      }
      break;
    }
    case Kernel::kStringCmp: {
      const std::string& rhs = node.constant.string_value();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = in[i];
        if (col.IsNull(r)) continue;
        const int cmp = col.strs[r].compare(rhs);
        const int c = cmp == 0 ? 0 : (cmp < 0 ? -1 : 1);
        if ((c < 0 && node.lt) || (c == 0 && node.eq) || (c > 0 && node.gt)) {
          out[m++] = r;
        }
      }
      break;
    }
    case Kernel::kContains: {
      const std::string& needle = node.constant.string_value();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = in[i];
        if (col.IsNull(r)) continue;
        if (Contains(col.strs[r], needle)) out[m++] = r;
      }
      break;
    }
    case Kernel::kStartsWith: {
      const std::string& prefix = node.constant.string_value();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = in[i];
        if (col.IsNull(r)) continue;
        if (StartsWith(col.strs[r], prefix)) out[m++] = r;
      }
      break;
    }
    case Kernel::kBoolCmp: {
      const bool rhs = node.constant.bool_value();
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = in[i];
        if (col.IsNull(r)) continue;
        const bool lhs = col.bools[r] != 0;
        const int c = lhs == rhs ? 0 : (lhs < rhs ? -1 : 1);
        if ((c < 0 && node.lt) || (c == 0 && node.eq) || (c > 0 && node.gt)) {
          out[m++] = r;
        }
      }
      break;
    }
    case Kernel::kGeneralCompare: {
      for (size_t i = 0; i < n; ++i) {
        const uint32_t r = in[i];
        if (EvalCompare(node.op, col.ValueAt(r), node.constant)) out[m++] = r;
      }
      break;
    }
    default:
      assert(false && "connector kernel in FilterAtom");
      break;
  }
  return m;
}

size_t CompiledEvaluator::FilterNode(size_t id, const uint32_t* in, size_t n,
                                     uint32_t begin,
                                     const ColumnStore& store) const {
  const Node& node = nodes_[id];
  std::vector<uint32_t>& out = sel_scratch_[id];
  if (out.size() < n) out.resize(n);
  switch (node.kernel) {
    case Kernel::kTrue:
      std::memcpy(out.data(), in, n * sizeof(uint32_t));
      return n;
    case Kernel::kAnd: {
      // Chain: each child narrows the previous survivor list.
      const uint32_t* cur = in;
      size_t count = n;
      for (const size_t child : node.children) {
        if (count == 0) break;
        count = FilterNode(child, cur, count, begin, store);
        cur = sel_scratch_[child].data();
      }
      if (count > 0 && cur != out.data()) {
        std::memcpy(out.data(), cur, count * sizeof(uint32_t));
      }
      return count;
    }
    case Kernel::kOr: {
      // Children see only the not-yet-matched remainder; matches are
      // disjoint, so the final result is the mark bitmap replayed over the
      // input order.
      std::vector<uint8_t>& marks = mark_scratch_[id];
      std::vector<uint32_t>& remaining = rem_scratch_[id];
      size_t max_width = 0;
      for (size_t i = 0; i < n; ++i) {
        max_width = std::max<size_t>(max_width, in[i] - begin + 1);
      }
      if (marks.size() < max_width) marks.resize(max_width);
      std::memset(marks.data(), 0, max_width);
      if (remaining.size() < n) remaining.resize(n);
      std::memcpy(remaining.data(), in, n * sizeof(uint32_t));
      size_t remaining_count = n;
      size_t matched = 0;
      for (const size_t child : node.children) {
        if (remaining_count == 0) break;
        const size_t m =
            FilterNode(child, remaining.data(), remaining_count, begin, store);
        if (m == 0) continue;
        const std::vector<uint32_t>& hits = sel_scratch_[child];
        for (size_t i = 0; i < m; ++i) marks[hits[i] - begin] = 1;
        matched += m;
        // Compact the remainder in place.
        size_t next = 0;
        for (size_t i = 0; i < remaining_count; ++i) {
          if (!marks[remaining[i] - begin]) remaining[next++] = remaining[i];
        }
        remaining_count = next;
      }
      size_t count = 0;
      for (size_t i = 0; i < n && count < matched; ++i) {
        if (marks[in[i] - begin]) out[count++] = in[i];
      }
      return count;
    }
    default:
      return FilterAtom(node, store.column(static_cast<size_t>(node.slot)),
                        in, n, out.data());
  }
}

void CompiledEvaluator::FilterBatch(ColumnBatch* batch) const {
  const size_t width = batch->width();
  if (iota_.size() < width) {
    iota_.resize(width);
  }
  for (size_t i = 0; i < width; ++i) {
    iota_[i] = batch->begin + static_cast<uint32_t>(i);
  }
  const size_t count =
      FilterNode(root_, iota_.data(), width, batch->begin, *batch->store);
  const std::vector<uint32_t>& result = sel_scratch_[root_];
  batch->selection.assign(result.begin(), result.begin() + count);
}

}  // namespace gencompact
