#ifndef GENCOMPACT_EXPR_CONDITION_PARSER_H_
#define GENCOMPACT_EXPR_CONDITION_PARSER_H_

#include <string_view>

#include "common/result.h"
#include "expr/condition.h"

namespace gencompact {

/// Parses condition text into a CT. Grammar (lowest precedence first):
///
///   expr    := term ("or" term)*
///   term    := factor ("and" factor)*
///   factor  := "(" expr ")" | "true" | atom
///   atom    := ident op literal
///            | ident "in" "{" literal ("," literal)* "}"
///   op      := "=" | "==" | "!=" | "<>" | "<" | "<=" | ">" | ">="
///            | "contains" | "startswith"
///   literal := integer | float | quoted string | "true" | "false"
///
/// "&&" / "||" are accepted as synonyms for "and" / "or". The `in` form is
/// sugar for a disjunction of equalities (the paper's car example: a form
/// that accepts a list of values for `size`). Consecutive "and"s/"or"s build
/// one n-ary node, so `a and b and c` is a single 3-child ∧.
Result<ConditionPtr> ParseCondition(std::string_view text);

}  // namespace gencompact

#endif  // GENCOMPACT_EXPR_CONDITION_PARSER_H_
