#ifndef GENCOMPACT_EXPR_SIMPLIFY_H_
#define GENCOMPACT_EXPR_SIMPLIFY_H_

#include "expr/condition.h"

namespace gencompact {

/// Semantics-preserving condition simplification, applied before planning:
///
///  * canonicalization (same-kind flattening, `true` absorption);
///  * idempotence: duplicate children of a connector are removed
///    (C ∧ C ≡ C, C ∨ C ≡ C — structural duplicates only);
///  * absorption: C1 ∨ (C1 ∧ C2) ≡ C1 and C1 ∧ (C1 ∨ C2) ≡ C1, where a
///    child is absorbed if another child's condition set is a subset of its
///    conjunct/disjunct set;
///  * contradiction/tautology detection on comparable atom pairs over the
///    same attribute (e.g. a = 1 ∧ a = 2 is unsatisfiable; a < 5 ∨ a >= 5
///    is a tautology) — conservative: only constant pairs whose types are
///    comparable are folded.
///
/// Smaller trees mean smaller IPG subset enumerations, so this directly
/// reduces planning work. Simplify never changes `π_A(σ_C(R))`.
///
/// Returns nullptr for conditions that simplify to FALSE (unsatisfiable) —
/// callers should answer such queries with the empty set without contacting
/// the source. Tautologies return ConditionNode::True().
ConditionPtr SimplifyCondition(const ConditionPtr& cond);

/// True iff the pair of atoms over the same attribute can be proven
/// jointly unsatisfiable (used by SimplifyCondition; exposed for tests).
bool AtomsContradict(const AtomicCondition& a, const AtomicCondition& b);

/// True iff atom `a` implies atom `b` (satisfying a ⇒ satisfying b), for
/// atoms over the same attribute with comparable constants.
bool AtomImplies(const AtomicCondition& a, const AtomicCondition& b);

}  // namespace gencompact

#endif  // GENCOMPACT_EXPR_SIMPLIFY_H_
