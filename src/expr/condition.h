#ifndef GENCOMPACT_EXPR_CONDITION_H_
#define GENCOMPACT_EXPR_CONDITION_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "expr/compare_op.h"
#include "schema/schema.h"

namespace gencompact {

/// A leaf Boolean condition: `attribute op constant`.
struct AtomicCondition {
  std::string attribute;
  CompareOp op = CompareOp::kEq;
  Value constant;

  std::string ToString() const;
  bool operator==(const AtomicCondition& other) const;
};

class ConditionNode;

/// Conditions are immutable and shared; rewritten trees share unchanged
/// subtrees with their originals.
using ConditionPtr = std::shared_ptr<const ConditionNode>;

/// Compact process-unique identity of an interned condition tree. Ids are
/// monotonically increasing and never reused, so caches keyed by
/// ConditionId (Check memo, plan cache, planner memos) can never confuse a
/// destroyed condition with a newly built one.
using ConditionId = uint64_t;

/// A node of a condition tree (CT, Section 3 of the paper). Leaves are
/// atomic conditions (or the trivially-true condition used for source
/// downloads); interior nodes are n-ary ∧ / ∨ connectors.
///
/// Nodes are hash-consed: the factories below return pointer-identical
/// ConditionPtrs for structurally equal trees (see ConditionInterner), each
/// carrying a precomputed 64-bit structural fingerprint and a compact
/// ConditionId. Equality is therefore a pointer comparison and hashing a
/// field load — no rendered-string keys anywhere on the planning or
/// execution hot paths.
class ConditionNode {
 public:
  enum class Kind { kTrue, kAtom, kAnd, kOr };

  /// The trivially true condition (the `SP(true, A, R)` download query).
  static ConditionPtr True();

  static ConditionPtr Atom(std::string attribute, CompareOp op, Value constant);
  static ConditionPtr Atom(AtomicCondition atom);

  /// n-ary conjunction. Requires at least one child; a single child is
  /// returned unchanged (no degenerate connector nodes are created).
  static ConditionPtr And(std::vector<ConditionPtr> children);

  /// n-ary disjunction, same conventions as And().
  static ConditionPtr Or(std::vector<ConditionPtr> children);

  /// Connector of the given kind (kAnd/kOr); convenience for generic code.
  static ConditionPtr Connector(Kind kind, std::vector<ConditionPtr> children);

  Kind kind() const { return kind_; }
  bool is_true() const { return kind_ == Kind::kTrue; }
  bool is_atom() const { return kind_ == Kind::kAtom; }
  bool is_connector() const {
    return kind_ == Kind::kAnd || kind_ == Kind::kOr;
  }

  /// Valid only for kAtom nodes.
  const AtomicCondition& atom() const { return atom_; }

  /// Children of a connector node (empty for leaves).
  const std::vector<ConditionPtr>& children() const { return children_; }

  /// 64-bit structural fingerprint: equal for structurally equal trees,
  /// precomputed at construction. Hash seed for every identity-keyed
  /// container downstream.
  uint64_t fingerprint() const { return fingerprint_; }

  /// Process-unique interned identity; pointer-equal nodes share it.
  ConditionId id() const { return id_; }

  /// Attr(C): positions of all attributes mentioned in this subtree.
  /// NotFound if an attribute is not in `schema`.
  Result<AttributeSet> Attributes(const Schema& schema) const;

  /// Number of atomic conditions in the subtree.
  size_t CountAtoms() const;

  /// Maximum node depth (a leaf has depth 1).
  size_t Depth() const;

  /// Infix rendering; compound children are parenthesized, e.g.
  /// `make = "BMW" and (color = "red" or color = "black")`. Built on demand
  /// — only EXPLAIN, the plan printer, and error messages pay for it.
  std::string ToString() const;

  /// Exact ordered structural equality (child order matters — source
  /// grammars may be order sensitive). With interning on this is a pointer
  /// comparison; the deep walk only runs for nodes built while the
  /// interning ablation had hash-consing disabled.
  bool StructurallyEquals(const ConditionNode& other) const;

 private:
  friend class ConditionInterner;

  ConditionNode(Kind kind, AtomicCondition atom,
                std::vector<ConditionPtr> children, uint64_t fingerprint,
                ConditionId id)
      : kind_(kind),
        atom_(std::move(atom)),
        children_(std::move(children)),
        fingerprint_(fingerprint),
        id_(id) {}

  void AppendTo(std::string* out) const;

  Kind kind_;
  AtomicCondition atom_;
  std::vector<ConditionPtr> children_;
  uint64_t fingerprint_;
  ConditionId id_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXPR_CONDITION_H_
