#ifndef GENCOMPACT_EXPR_CONDITION_H_
#define GENCOMPACT_EXPR_CONDITION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/value.h"
#include "expr/compare_op.h"
#include "schema/schema.h"

namespace gencompact {

/// A leaf Boolean condition: `attribute op constant`.
struct AtomicCondition {
  std::string attribute;
  CompareOp op = CompareOp::kEq;
  Value constant;

  std::string ToString() const;
  bool operator==(const AtomicCondition& other) const;
};

class ConditionNode;

/// Conditions are immutable and shared; rewritten trees share unchanged
/// subtrees with their originals.
using ConditionPtr = std::shared_ptr<const ConditionNode>;

/// A node of a condition tree (CT, Section 3 of the paper). Leaves are
/// atomic conditions (or the trivially-true condition used for source
/// downloads); interior nodes are n-ary ∧ / ∨ connectors.
class ConditionNode {
 public:
  enum class Kind { kTrue, kAtom, kAnd, kOr };

  /// The trivially true condition (the `SP(true, A, R)` download query).
  static ConditionPtr True();

  static ConditionPtr Atom(std::string attribute, CompareOp op, Value constant);
  static ConditionPtr Atom(AtomicCondition atom);

  /// n-ary conjunction. Requires at least one child; a single child is
  /// returned unchanged (no degenerate connector nodes are created).
  static ConditionPtr And(std::vector<ConditionPtr> children);

  /// n-ary disjunction, same conventions as And().
  static ConditionPtr Or(std::vector<ConditionPtr> children);

  /// Connector of the given kind (kAnd/kOr); convenience for generic code.
  static ConditionPtr Connector(Kind kind, std::vector<ConditionPtr> children);

  Kind kind() const { return kind_; }
  bool is_true() const { return kind_ == Kind::kTrue; }
  bool is_atom() const { return kind_ == Kind::kAtom; }
  bool is_connector() const {
    return kind_ == Kind::kAnd || kind_ == Kind::kOr;
  }

  /// Valid only for kAtom nodes.
  const AtomicCondition& atom() const { return atom_; }

  /// Children of a connector node (empty for leaves).
  const std::vector<ConditionPtr>& children() const { return children_; }

  /// Attr(C): positions of all attributes mentioned in this subtree.
  /// NotFound if an attribute is not in `schema`.
  Result<AttributeSet> Attributes(const Schema& schema) const;

  /// Number of atomic conditions in the subtree.
  size_t CountAtoms() const;

  /// Maximum node depth (a leaf has depth 1).
  size_t Depth() const;

  /// Infix rendering; compound children are parenthesized, e.g.
  /// `make = "BMW" and (color = "red" or color = "black")`.
  std::string ToString() const;

  /// Exact ordered structural equality (child order matters — source
  /// grammars may be order sensitive).
  bool StructurallyEquals(const ConditionNode& other) const;

  /// A string key such that two nodes have equal keys iff they are
  /// structurally equal. Used for rewrite-set deduplication and memoization.
  const std::string& StructuralKey() const { return cached_string_; }

 private:
  ConditionNode(Kind kind, AtomicCondition atom,
                std::vector<ConditionPtr> children);

  std::string BuildString() const;

  Kind kind_;
  AtomicCondition atom_;
  std::vector<ConditionPtr> children_;
  // Built eagerly at construction (children are immutable and complete by
  // then), so shared nodes can be read from many threads without a lazy-init
  // race: cached plans are executed by concurrent mediator clients.
  std::string cached_string_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXPR_CONDITION_H_
