#ifndef GENCOMPACT_EXPR_COMPARE_OP_H_
#define GENCOMPACT_EXPR_COMPARE_OP_H_

#include <optional>
#include <string_view>

#include "common/value.h"

namespace gencompact {

/// Comparison predicates available in atomic conditions. `kContains` and
/// `kStartsWith` are the string predicates web sources commonly expose
/// (e.g. `title contains "dreams"` in the paper's bookstore example).
enum class CompareOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kContains,
  kStartsWith,
};

/// Surface syntax of the operator ("=", "!=", "<", "<=", ">", ">=",
/// "contains", "startswith").
const char* CompareOpSymbol(CompareOp op);

/// Inverse of CompareOpSymbol.
std::optional<CompareOp> ParseCompareOp(std::string_view symbol);

/// Applies `op` to (lhs, rhs). NULL operands compare false under every
/// operator (SQL-like semantics without three-valued logic). String
/// predicates on non-strings are false.
bool EvalCompare(CompareOp op, const Value& lhs, const Value& rhs);

}  // namespace gencompact

#endif  // GENCOMPACT_EXPR_COMPARE_OP_H_
