#include "expr/normal_forms.h"

#include "expr/canonical.h"

namespace gencompact {

namespace {

// Normal-form computation works on "term lists": a DNF is a list of terms,
// each term a list of leaf conditions (atoms or `true`). CNF is the dual.
using Term = std::vector<ConditionPtr>;
using TermList = std::vector<Term>;

// Computes the normal form of `cond` as a TermList. For DNF, `outer_kind` is
// kOr (list elements are disjuncts); for CNF it is kAnd (list elements are
// conjuncts, i.e. clauses).
Status Normalize(const ConditionPtr& cond, ConditionNode::Kind outer_kind,
                 size_t max_terms, TermList* out) {
  switch (cond->kind()) {
    case ConditionNode::Kind::kTrue:
    case ConditionNode::Kind::kAtom:
      *out = {Term{cond}};
      return Status::OK();
    case ConditionNode::Kind::kAnd:
    case ConditionNode::Kind::kOr: {
      // Normalize children first.
      std::vector<TermList> child_lists;
      child_lists.reserve(cond->children().size());
      for (const ConditionPtr& child : cond->children()) {
        TermList child_list;
        GC_RETURN_IF_ERROR(Normalize(child, outer_kind, max_terms, &child_list));
        child_lists.push_back(std::move(child_list));
      }
      if (cond->kind() == outer_kind) {
        // Same connector as the outer one: concatenate term lists.
        TermList result;
        for (TermList& child_list : child_lists) {
          for (Term& term : child_list) {
            result.push_back(std::move(term));
            if (result.size() > max_terms) {
              return Status::ResourceExhausted(
                  "normal form exceeds term budget");
            }
          }
        }
        *out = std::move(result);
        return Status::OK();
      }
      // Opposite connector: cartesian product of the children's term lists.
      TermList result = {Term{}};
      for (const TermList& child_list : child_lists) {
        TermList next;
        for (const Term& partial : result) {
          for (const Term& term : child_list) {
            Term merged = partial;
            merged.insert(merged.end(), term.begin(), term.end());
            next.push_back(std::move(merged));
            if (next.size() > max_terms) {
              return Status::ResourceExhausted(
                  "normal form exceeds term budget");
            }
          }
        }
        result = std::move(next);
      }
      *out = std::move(result);
      return Status::OK();
    }
  }
  return Status::Internal("unreachable condition kind");
}

ConditionPtr BuildFromTerms(const TermList& terms,
                            ConditionNode::Kind outer_kind) {
  const ConditionNode::Kind inner_kind = outer_kind == ConditionNode::Kind::kOr
                                             ? ConditionNode::Kind::kAnd
                                             : ConditionNode::Kind::kOr;
  std::vector<ConditionPtr> outer_children;
  outer_children.reserve(terms.size());
  for (const Term& term : terms) {
    outer_children.push_back(
        ConditionNode::Connector(inner_kind, std::vector<ConditionPtr>(term)));
  }
  return Canonicalize(
      ConditionNode::Connector(outer_kind, std::move(outer_children)));
}

}  // namespace

Result<ConditionPtr> ToDnf(const ConditionPtr& cond, size_t max_terms) {
  if (cond->is_true() || cond->is_atom()) return cond;
  TermList terms;
  GC_RETURN_IF_ERROR(
      Normalize(cond, ConditionNode::Kind::kOr, max_terms, &terms));
  return BuildFromTerms(terms, ConditionNode::Kind::kOr);
}

Result<ConditionPtr> ToCnf(const ConditionPtr& cond, size_t max_terms) {
  if (cond->is_true() || cond->is_atom()) return cond;
  TermList terms;
  GC_RETURN_IF_ERROR(
      Normalize(cond, ConditionNode::Kind::kAnd, max_terms, &terms));
  return BuildFromTerms(terms, ConditionNode::Kind::kAnd);
}

namespace {

bool IsLeaf(const ConditionNode& cond) {
  return cond.is_atom() || cond.is_true();
}

bool IsFlat(const ConditionNode& cond, ConditionNode::Kind inner_kind) {
  if (IsLeaf(cond)) return true;
  if (cond.kind() != inner_kind) return false;
  for (const ConditionPtr& child : cond.children()) {
    if (!IsLeaf(*child)) return false;
  }
  return true;
}

}  // namespace

bool IsCnf(const ConditionNode& cond) {
  if (IsFlat(cond, ConditionNode::Kind::kOr)) return true;
  if (cond.kind() != ConditionNode::Kind::kAnd) return false;
  for (const ConditionPtr& child : cond.children()) {
    if (!IsFlat(*child, ConditionNode::Kind::kOr)) return false;
  }
  return true;
}

bool IsDnf(const ConditionNode& cond) {
  if (IsFlat(cond, ConditionNode::Kind::kAnd)) return true;
  if (cond.kind() != ConditionNode::Kind::kOr) return false;
  for (const ConditionPtr& child : cond.children()) {
    if (!IsFlat(*child, ConditionNode::Kind::kAnd)) return false;
  }
  return true;
}

}  // namespace gencompact
