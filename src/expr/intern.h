#ifndef GENCOMPACT_EXPR_INTERN_H_
#define GENCOMPACT_EXPR_INTERN_H_

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "expr/condition.h"

namespace gencompact {

/// Process-wide hash-consing pool for condition trees.
///
/// Every ConditionNode factory (True / Atom / And / Or / Connector) routes
/// through Intern(): structurally equal trees come back as the *same*
/// ConditionPtr, so structural equality is pointer comparison and hashing is
/// a field load of the precomputed 64-bit fingerprint. Children are interned
/// before their parents (factories bottom out at leaves), which keeps the
/// pool's equality probe shallow: two candidate parents are equal iff their
/// kind/atom match and their child pointers match element-wise.
///
/// The pool is sharded by fingerprint and each shard independently locked,
/// mirroring the plan cache: planning runs concurrently and factories are
/// called from every client thread. Nodes are held by weak_ptr; the custom
/// deleter unlinks a node from its shard when the last external reference
/// drops, so the pool never pins memory (no leaks under ASan). Node ids are
/// monotonically increasing and never reused, so downstream caches keyed by
/// ConditionId can never confuse a dead condition with a new one.
class ConditionInterner {
 public:
  /// The process-wide pool (leaky singleton: node deleters registered in
  /// static-storage ConditionPtrs may run during program teardown).
  static ConditionInterner& Global();

  /// Returns the unique node for the given structure, creating it if absent.
  /// When interning is disabled (bench ablation), builds a fresh node with a
  /// fresh id and does not touch the pool.
  ConditionPtr Intern(ConditionNode::Kind kind, AtomicCondition atom,
                      std::vector<ConditionPtr> children);

  /// Structural fingerprint a node of this shape would carry. Deterministic
  /// in the structure alone (independent of interning mode), consistent with
  /// ConditionNode::StructurallyEquals.
  static uint64_t Fingerprint(ConditionNode::Kind kind,
                              const AtomicCondition& atom,
                              const std::vector<ConditionPtr>& children);

  struct Stats {
    size_t live_nodes = 0;  ///< entries currently in the pool
    size_t hits = 0;        ///< Intern() calls answered with an existing node
    size_t misses = 0;      ///< Intern() calls that created a node
  };
  Stats stats() const;

  /// Hash-consing on/off switch, for the interning ablation benchmark only:
  /// with it off, factories build fresh (still fingerprinted, uniquely
  /// numbered) nodes, so identity-keyed caches degrade to per-pointer
  /// behavior. Not meant to be toggled while other threads build conditions.
  static bool enabled();
  static void set_enabled(bool on);

 private:
  friend class ScopedInterningDisabled;

  struct Entry {
    const ConditionNode* node = nullptr;  // bucket identity for removal
    std::weak_ptr<const ConditionNode> weak;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, std::vector<Entry>> buckets;
    size_t hits = 0;
    size_t misses = 0;
  };

  // The deleter unlinks under the shard lock, then deletes *outside* it:
  // destroying a node drops its children, whose own deleters re-enter the
  // pool (possibly the same shard).
  struct Unlink {
    void operator()(const ConditionNode* node) const;
  };

  Shard& ShardFor(uint64_t fingerprint) {
    return shards_[(fingerprint >> 56) % kNumShards];
  }
  void Remove(const ConditionNode* node);

  static constexpr size_t kNumShards = 16;
  Shard shards_[kNumShards];
};

/// RAII guard disabling hash-consing for the enclosing scope. Bench/test
/// only (the interning ablation and the interned-vs-not parity test); do not
/// use while other threads construct conditions.
class ScopedInterningDisabled {
 public:
  ScopedInterningDisabled() : was_enabled_(ConditionInterner::enabled()) {
    ConditionInterner::set_enabled(false);
  }
  ~ScopedInterningDisabled() { ConditionInterner::set_enabled(was_enabled_); }
  ScopedInterningDisabled(const ScopedInterningDisabled&) = delete;
  ScopedInterningDisabled& operator=(const ScopedInterningDisabled&) = delete;

 private:
  bool was_enabled_;
};

/// A set of conditions under structural equality, allocation-light: bucketed
/// by fingerprint, verified by StructurallyEquals (a pointer comparison when
/// both sides are interned). Correct in both interning modes, which is what
/// the rewrite closure and simplify's idempotence pass need — the ablation
/// benchmark must not change their results.
class ConditionSet {
 public:
  /// Inserts `cond`; returns true iff it was not already present.
  bool Insert(const ConditionPtr& cond) {
    std::vector<ConditionPtr>& bucket = buckets_[cond->fingerprint()];
    for (const ConditionPtr& existing : bucket) {
      if (existing == cond || existing->StructurallyEquals(*cond)) return false;
    }
    bucket.push_back(cond);
    return true;
  }

  size_t size() const {
    size_t n = 0;
    for (const auto& [fp, bucket] : buckets_) n += bucket.size();
    return n;
  }

 private:
  std::unordered_map<uint64_t, std::vector<ConditionPtr>> buckets_;
};

}  // namespace gencompact

#endif  // GENCOMPACT_EXPR_INTERN_H_
