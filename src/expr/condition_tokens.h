#ifndef GENCOMPACT_EXPR_CONDITION_TOKENS_H_
#define GENCOMPACT_EXPR_CONDITION_TOKENS_H_

#include <string>
#include <vector>

#include "expr/condition.h"

namespace gencompact {

/// The terminal alphabet over which SSDL grammars are defined. A condition
/// tree serializes to a CondToken sequence, and the SSDL Check function parses
/// that sequence with the source's grammar (Section 4 of the paper).
struct CondToken {
  enum class Type {
    kAttr,    ///< attribute name
    kOp,      ///< comparison operator
    kConst,   ///< constant value
    kAnd,     ///< the ∧ connector
    kOr,      ///< the ∨ connector
    kLParen,
    kRParen,
    kTrue,    ///< the trivially-true condition (source download)
  };

  Type type = Type::kTrue;
  std::string attr;  ///< for kAttr
  CompareOp op = CompareOp::kEq;  ///< for kOp
  Value value;       ///< for kConst

  std::string ToString() const;
  bool operator==(const CondToken& other) const;
};

/// Serializes a CT to tokens. Convention (documented for grammar authors):
/// an atom is `attr op const`; a connector joins child serializations with
/// `and` / `or`; compound (connector) children are wrapped in parentheses;
/// the root is never wrapped. Child order is preserved.
std::vector<CondToken> TokenizeCondition(const ConditionNode& cond);

/// Space-joined rendering of a token sequence (for diagnostics and parse
/// caching keys).
std::string TokensToString(const std::vector<CondToken>& tokens);

}  // namespace gencompact

#endif  // GENCOMPACT_EXPR_CONDITION_TOKENS_H_
