#ifndef GENCOMPACT_EXPR_CANONICAL_H_
#define GENCOMPACT_EXPR_CANONICAL_H_

#include "expr/condition.h"

namespace gencompact {

/// Converts a CT to the paper's canonical form (Section 6.4): children of
/// every ∧ node are leaves or ∨ nodes, children of every ∨ node are leaves
/// or ∧ nodes (i.e. nested same-kind connectors are flattened). Child order
/// is preserved — source grammars may be order sensitive. `true` leaves are
/// simplified (absorbed in ∧, dominating in ∨). Runs in time linear in the
/// size of the input tree, as the paper requires.
ConditionPtr Canonicalize(const ConditionPtr& cond);

/// True iff `cond` is already in canonical form.
bool IsCanonical(const ConditionNode& cond);

}  // namespace gencompact

#endif  // GENCOMPACT_EXPR_CANONICAL_H_
